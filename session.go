package meerkat

import (
	"meerkat/internal/coordinator"
	"meerkat/internal/shardmap"
)

// Session pipelines multiple in-flight transactions over one set of client
// sockets. A plain Client is stop-and-wait — one transaction in flight, the
// wire idle between round trips — which on TransportUDP leaves the batched
// sendmmsg/recvmmsg rings nearly empty. A Session opens the same endpoints a
// single client would and multiplexes a bounded window of workers over them;
// each worker behaves exactly like a Client (same API, same retry loop),
// and their concurrent round trips keep the rings full so the per-syscall
// datagram batch grows with the window.
//
// Drive each worker from its own goroutine; a single worker is not safe for
// concurrent use, exactly like a Client.
type Session struct {
	inner   *coordinator.Session
	clients []*Client
}

// NewSession registers a pipelined client session of the given window width
// (clamped up to 1; see coordinator.MaxWindow for the ceiling). The session
// counts as one client id against the UDP port budget regardless of window.
//
// Deprecated for sharded deployments: a session created this way routes by
// static key hash and cannot follow shard splits. Open the cluster with
// meerkat.Open and use DB.Session instead.
func (c *Cluster) NewSession(window int) (*Session, error) {
	return c.newSession(window, nil, false)
}

// newSession is NewSession with the sharded-routing knobs: sm, when non-nil,
// is one shard-map cache shared by all workers (its refresh is atomic, and
// one worker's redirect re-routes the whole pipeline).
func (c *Cluster) newSession(window int, sm *shardmap.Cache, roDefault bool) (*Session, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClusterClosed
	}
	c.nextCli++
	id := c.nextCli
	c.mu.Unlock()

	inner, err := coordinator.NewSession(coordinator.Config{
		Topo:            c.topo,
		ClientID:        id,
		Net:             c.net,
		Clock:           c.clientClock(id),
		Timeout:         c.cfg.CommitTimeout,
		Retries:         c.cfg.Retries,
		BackoffBase:     c.cfg.BackoffBase,
		BackoffMax:      c.cfg.BackoffMax,
		DisableFastPath: c.cfg.DisableFastPath,
		ShardMap:        sm,
		Seed:            c.cfg.Seed + int64(id),
		Obs:             c.obs.NewShard(),
	}, window)
	if err != nil {
		return nil, err
	}
	s := &Session{inner: inner}
	for i := 0; i < inner.Window(); i++ {
		s.clients = append(s.clients, &Client{coord: inner.Worker(i), id: id, roDefault: roDefault})
	}
	return s, nil
}

// Window returns the session's pipeline width.
func (s *Session) Window() int { return len(s.clients) }

// Clients returns the session's workers, one per pipeline slot. Each is a
// full Client sharing the session's sockets; Client.Close on a session
// worker is a no-op (the session owns the endpoints).
func (s *Session) Clients() []*Client { return s.clients }

// Stats sums committed/aborted counts across the session's workers.
func (s *Session) Stats() (committed, aborted uint64) {
	for _, cl := range s.clients {
		c, a := cl.Stats()
		committed += c
		aborted += a
	}
	return
}

// Close releases the session's endpoints. Workers must be idle.
func (s *Session) Close() { s.inner.Close() }
