package meerkat_test

import "testing"

// BenchmarkReadOnlyTxn is the read-only fast path in its cheapest shape: one
// snapshot read, local commit — zero validation rounds, zero commit
// messages. Compare against BenchmarkTxnTimeline10/BenchmarkCommitSinglePartition
// for the two-round baseline.
func BenchmarkReadOnlyTxn(b *testing.B) {
	_, cl, keys := newHotpathCluster(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := cl.Begin()
		txn.ReadOnly()
		if _, err := txn.Read(keys[0]); err != nil {
			b.Fatal(err)
		}
		if ok, err := txn.Commit(); err != nil || !ok {
			b.Fatalf("ro commit: ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkReadOnlyTxnTimeline10 is the Retwis get-timeline shape on the
// fast path: ten keys in one snapshot round, local commit.
func BenchmarkReadOnlyTxnTimeline10(b *testing.B) {
	_, cl, keys := newHotpathCluster(b, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := cl.Begin()
		txn.ReadOnly()
		if _, err := txn.ReadMany(keys); err != nil {
			b.Fatal(err)
		}
		if ok, err := txn.Commit(); err != nil || !ok {
			b.Fatalf("ro commit: ok=%v err=%v", ok, err)
		}
	}
}

// TestReadOnlyTxnAllocGate pins the read-only commit's end-to-end allocation
// count (coordinator + transport + the whole replica group's handlers, since
// AllocsPerRun counts global mallocs). Dropping the validation round must
// not smuggle in churn: the snapshot path measured 12 allocs/op at
// introduction, below the classic validated read transaction's 16; the gate
// leaves two objects of headroom.
func TestReadOnlyTxnAllocGate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; gate runs without -race")
	}
	_, cl, keys := newHotpathCluster(t, 1)
	commit := func() {
		txn := cl.Begin()
		txn.ReadOnly()
		if _, err := txn.Read(keys[0]); err != nil {
			t.Fatal(err)
		}
		if ok, err := txn.Commit(); err != nil || !ok {
			t.Fatalf("ro commit: ok=%v err=%v", ok, err)
		}
		if !txn.CommittedReadOnly() {
			t.Fatal("fast path not taken; the gate would measure the wrong path")
		}
	}
	commit() // warm the coordinator's reusable timers and scratch
	allocs := testing.AllocsPerRun(200, commit)
	if allocs > 14 {
		t.Fatalf("read-only commit allocated %v objects/op, want <= 14 (classic validated read: ~16)", allocs)
	}
}

// TestEmptyTxnCommitsFree double-checks the empty-transaction short-circuit
// from outside the package: no messages and no per-commit heap garbage.
func TestEmptyTxnCommitsFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; gate runs without -race")
	}
	cluster, cl, _ := newHotpathCluster(t, 1)
	commit := func() {
		txn := cl.Begin()
		if ok, err := txn.Commit(); err != nil || !ok {
			t.Fatalf("empty commit: ok=%v err=%v", ok, err)
		}
	}
	commit()
	sent0, _, _ := cluster.NetworkStats()
	allocs := testing.AllocsPerRun(100, commit)
	sent1, _, _ := cluster.NetworkStats()
	if sent1 != sent0 {
		t.Fatalf("empty commits sent %d messages, want 0", sent1-sent0)
	}
	if allocs > 1 { // the Txn itself
		t.Fatalf("empty commit allocated %v objects/op, want <= 1", allocs)
	}
}
