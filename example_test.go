package meerkat_test

import (
	"fmt"
	"log"
	"strconv"

	"meerkat"
)

// Example shows the minimal lifecycle: cluster, client, one transaction.
func Example() {
	cluster, err := meerkat.NewCluster(meerkat.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	txn := client.Begin()
	txn.Write("greeting", []byte("hello"))
	committed, err := txn.Commit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed:", committed)
	// Output: committed: true
}

// ExampleClient_RunTxn shows the retry loop for optimistic conflicts: a
// read-modify-write that keeps retrying until its validation wins.
func ExampleClient_RunTxn() {
	cluster, err := meerkat.NewCluster(meerkat.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	cluster.Load("counter", []byte("41"))

	client, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	ok, err := client.RunTxn(16, func(t *meerkat.Txn) error {
		v, err := t.Read("counter")
		if err != nil {
			return err
		}
		n, _ := strconv.Atoi(string(v))
		t.Write("counter", []byte(strconv.Itoa(n+1)))
		return nil
	})
	if err != nil || !ok {
		log.Fatal(ok, err)
	}
	v, err := client.GetStrong("counter")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(v))
	// Output: 42
}

// ExampleCluster_CrashReplica shows fault tolerance: with one of three
// replicas down, transactions keep committing on the slow path.
func ExampleCluster_CrashReplica() {
	cluster, err := meerkat.NewCluster(meerkat.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	cluster.CrashReplica(0, 2)
	if err := client.Put("k", []byte("still works")); err != nil {
		log.Fatal(err)
	}
	v, err := client.GetStrong("k")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(v))
	// Output: still works
}
