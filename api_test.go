package meerkat

import (
	"context"
	"errors"
	"testing"
	"time"

	"meerkat/internal/faultnet"
)

// TestConfigValidate exercises the documented defaults and the rejection of
// malformed configurations.
func TestConfigValidate(t *testing.T) {
	var cfg Config
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if cfg.Replicas != 3 || cfg.Cores != 4 || cfg.Partitions != 1 {
		t.Fatalf("topology defaults not applied: %+v", cfg)
	}
	if cfg.CommitTimeout != 100*time.Millisecond || cfg.Retries != 10 {
		t.Fatalf("protocol defaults not applied: %+v", cfg)
	}
	if cfg.BackoffBase != 500*time.Microsecond || cfg.BackoffMax != 50*time.Millisecond {
		t.Fatalf("backoff defaults not applied: %+v", cfg)
	}

	bad := []Config{
		{Replicas: 2},
		{Replicas: -3},
		{DropProb: 1.5},
		{CommitTimeout: -time.Second},
		{BackoffBase: time.Second, BackoffMax: time.Millisecond},
		{Faults: &faultnet.Plan{Rules: []faultnet.Rule{{DropProb: 7}}}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("config %d validated: %+v", i, bad[i])
		}
	}
}

// TestSentinelClusterClosed checks that a closed cluster reports
// ErrClusterClosed from NewClient.
func TestSentinelClusterClosed(t *testing.T) {
	cluster, err := NewCluster(Config{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Close()
	if _, err := cluster.NewClient(); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("NewClient on closed cluster: %v, want ErrClusterClosed", err)
	}
}

// TestCommitCtxExpiredResolves drives the unknown-outcome path end to end:
// a commit under an already-expired context fails with an error unwrapping
// to both ErrTimeout and context.DeadlineExceeded, and Resolve then forces
// the final outcome through the recovery procedure.
func TestCommitCtxExpiredResolves(t *testing.T) {
	cluster, err := NewCluster(Config{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cl, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	txn := cl.Begin()
	txn.Write("ctx-key", []byte("v"))
	ok, err := txn.CommitCtx(ctx)
	if ok || err == nil {
		t.Fatalf("expired-context commit returned (%v, %v)", ok, err)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("commit error %v does not unwrap to ErrTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("commit error %v does not carry context.DeadlineExceeded", err)
	}

	committed, err := txn.Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	// No validate was ever sent, so recovery must decide abort — and the
	// key must be unreadable.
	if committed {
		t.Fatal("Resolve reported commit for a never-sent transaction")
	}
	if v, err := cl.GetStrong("ctx-key"); err != nil || v != nil {
		t.Fatalf("aborted write visible: (%q, %v)", v, err)
	}

	// Resolving twice is an error: the uncertainty is gone.
	if _, err := txn.Resolve(); err == nil {
		t.Fatal("second Resolve succeeded")
	}
}

// TestRunRetriesConflict forces a validation conflict on the first attempt
// and checks that Run retries to success.
func TestRunRetriesConflict(t *testing.T) {
	cluster, err := NewCluster(Config{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	a, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Put("counter", []byte("0")); err != nil {
		t.Fatal(err)
	}
	attempts := 0
	err = a.Run(context.Background(), func(txn *Txn) error {
		attempts++
		if _, err := txn.Read("counter"); err != nil {
			return err
		}
		if attempts == 1 {
			// A conflicting write from another client invalidates the
			// read set of attempt one.
			if err := b.Put("counter", []byte("9")); err != nil {
				return err
			}
		}
		txn.Write("counter", []byte("1"))
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if attempts < 2 {
		t.Fatalf("Run succeeded in %d attempts, want a conflict retry", attempts)
	}
	if v, err := a.GetStrong("counter"); err != nil || string(v) != "1" {
		t.Fatalf("counter = (%q, %v), want \"1\"", v, err)
	}
}

// TestRunCtxCanceled checks that Run exits with ErrTimeout once its context
// is canceled rather than retrying forever.
func TestRunCtxCanceled(t *testing.T) {
	cluster, err := NewCluster(Config{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cl, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = cl.Run(ctx, func(txn *Txn) error {
		txn.Write("k", []byte("v"))
		return nil
	})
	if !errors.Is(err, ErrTimeout) || !errors.Is(err, context.Canceled) {
		t.Fatalf("Run under canceled ctx: %v, want ErrTimeout wrapping context.Canceled", err)
	}
}

// TestRunPropagatesFnError checks that fn's own errors abort the loop
// unretried.
func TestRunPropagatesFnError(t *testing.T) {
	cluster, err := NewCluster(Config{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cl, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	calls := 0
	err = cl.Run(context.Background(), func(txn *Txn) error {
		calls++
		return ErrTxnAborted
	})
	if !errors.Is(err, ErrTxnAborted) {
		t.Fatalf("Run: %v, want ErrTxnAborted", err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1 (no retry on fn errors)", calls)
	}
}

// TestClusterFaultPlan boots a cluster with a fault plan, checks the
// injector is wired into the fabric (stats move, events fire) and that the
// workload still commits through it.
func TestClusterFaultPlan(t *testing.T) {
	plan := &faultnet.Plan{
		Seed:  11,
		Rules: []faultnet.Rule{{SrcNode: faultnet.Any, DstNode: faultnet.Any, SrcCore: faultnet.Any, DstCore: faultnet.Any, DropProb: 0.05}},
		Events: []faultnet.Event{
			{At: 1, Op: faultnet.OpHeal}, // benign marker event
		},
	}
	cluster, err := NewCluster(Config{Cores: 2, Seed: 1, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if cluster.FaultNetwork() == nil {
		t.Fatal("FaultNetwork is nil with Config.Faults set")
	}
	cl, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 50; i++ {
		if err := cl.Run(context.Background(), func(txn *Txn) error {
			txn.Write("k", []byte{byte(i)})
			return nil
		}); err != nil {
			t.Fatalf("Run %d under 5%% loss: %v", i, err)
		}
	}
	st := cluster.FaultNetwork().Stats()
	if st.Sent.Load() == 0 || st.Dropped.Load() == 0 {
		t.Fatalf("injector saw no traffic: sent=%d dropped=%d", st.Sent.Load(), st.Dropped.Load())
	}
	select {
	case ev := <-cluster.FaultEvents():
		if ev.Op != faultnet.OpHeal {
			t.Fatalf("event %+v, want heal", ev)
		}
	default:
		t.Fatal("scheduled event never fired")
	}
}
