package meerkat_test

import (
	"fmt"
	"testing"
	"time"

	"meerkat"
)

// newDurableHotpathCluster is newHotpathCluster with SyncBatch durability on
// a test-scoped data directory.
func newDurableHotpathCluster(tb testing.TB, nkeys int) (*meerkat.Cluster, *meerkat.Client, []string) {
	tb.Helper()
	cluster, err := meerkat.NewCluster(meerkat.Config{
		Durability: meerkat.Durability{DataDir: tb.TempDir()},
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(cluster.Close)
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%08d", i)
		cluster.Load(keys[i], []byte("v"))
	}
	cl, err := cluster.NewClient()
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(cl.Close)
	return cluster, cl, keys
}

// TestCommitDurableAllocGate pins the commit hot path's allocation count
// with SyncBatch durability enabled: appending the commit record to the
// per-core write-ahead log must stay allocation-free steady-state (persistent
// scratch message, reused pending buffer), so the gate is the same ≤19 as
// the in-memory path.
func TestCommitDurableAllocGate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; gate runs without -race")
	}
	_, cl, keys := newDurableHotpathCluster(t, 1)
	val := []byte("v2")
	commit := func() {
		txn := cl.Begin()
		if _, err := txn.Read(keys[0]); err != nil {
			t.Fatal(err)
		}
		txn.Write(keys[0], val)
		if _, err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the coordinator's reusable timers, the trecord maps, and the WAL
	// pending/spare buffer pair, and let the group-commit goroutine complete
	// a few cycles, so the gate measures steady state rather than growth.
	for i := 0; i < 30; i++ {
		commit()
	}
	time.Sleep(10 * time.Millisecond)
	allocs := testing.AllocsPerRun(1000, commit)
	if allocs > 19 {
		t.Fatalf("durable commit allocated %v objects/op, want <= 19 (same gate as in-memory)", allocs)
	}
}

// BenchmarkCommitDurable is BenchmarkCommitSinglePartition with SyncBatch
// durability, for eyeballing the WAL's hot-path cost.
func BenchmarkCommitDurable(b *testing.B) {
	_, cl, keys := newDurableHotpathCluster(b, 1)
	val := []byte("v2")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := cl.Begin()
		if _, err := txn.Read(keys[0]); err != nil {
			b.Fatal(err)
		}
		txn.Write(keys[0], val)
		if _, err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
