package meerkat

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"meerkat/internal/checker"
	"meerkat/internal/shardmap"
	"meerkat/internal/timestamp"
)

func newTestDB(t *testing.T, cfg Config) *DB {
	t.Helper()
	if cfg.Cores == 0 {
		cfg.Cores = 2
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(db.Close)
	return db
}

func newDBClient(t *testing.T, db *DB, opts ...ClientOption) *Client {
	t.Helper()
	cl, err := db.Client(opts...)
	if err != nil {
		t.Fatalf("DB.Client: %v", err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// keysOnShard generates n distinct keys hashing into the given group under
// the DB's current map (for tests that need to target a specific shard).
func keysOnShard(db *DB, group, n int) []string {
	m := db.source.Current()
	var out []string
	for i := 0; len(out) < n; i++ {
		k := fmt.Sprintf("sk%d", i)
		if m.GroupForKey(k) == group {
			out = append(out, k)
		}
	}
	return out
}

// keysByHashHalf generates n distinct keys split evenly between the lower and
// upper halves of the hash space — so a first split (which moves the upper
// half) moves exactly half of them.
func keysByHashHalf(n int) []string {
	var lower, upper []string
	for i := 0; len(lower)+len(upper) < n; i++ {
		k := fmt.Sprintf("ck%d", i)
		if shardmap.Hash(k) < 1<<31 {
			if len(lower) < (n+1)/2 {
				lower = append(lower, k)
			}
		} else if len(upper) < n/2 {
			upper = append(upper, k)
		}
	}
	return append(lower, upper...)
}

func TestOpenDefaultsSingleShard(t *testing.T) {
	db := newTestDB(t, Config{})
	owned, provisioned := db.Admin().Shards()
	if owned != 1 || provisioned != 1 {
		t.Fatalf("shards = (%d, %d), want (1, 1)", owned, provisioned)
	}
	if v := db.Admin().ShardMap().Version(); v != 1 {
		t.Fatalf("map version = %d, want 1", v)
	}
	cl := newDBClient(t, db)
	if err := cl.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := cl.GetStrong("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("GetStrong = %q, %v", got, err)
	}
	// A one-shard DB may also route statically (the pre-sharding behaviour).
	scl := newDBClient(t, db, WithRoutingMode(RouteStatic))
	if err := scl.Put("k2", []byte("v2")); err != nil {
		t.Fatal(err)
	}
}

func TestOpenConfigErrors(t *testing.T) {
	if _, err := Open(Config{Shards: 3, MaxShards: 2}); err == nil {
		t.Error("Open accepted MaxShards < Shards")
	}
	if _, err := Open(Config{Shards: 2, Partitions: 3}); err == nil {
		t.Error("Open accepted Partitions conflicting with MaxShards")
	}

	db := newTestDB(t, Config{Shards: 2})
	if _, err := db.Client(WithRoutingMode(RouteStatic)); err == nil {
		t.Error("Client accepted RouteStatic on a multi-shard DB")
	}
	if _, err := db.Client(WithPipeline(2)); err == nil {
		t.Error("Client accepted a pipeline window > 1; that is Session's job")
	}
	if s, err := db.Session(WithPipeline(3)); err != nil || s.Window() != 3 {
		t.Errorf("Session(WithPipeline(3)) = window %v, %v", s.Window(), err)
	} else {
		s.Close()
	}
}

func TestShardedCrossShardTxn(t *testing.T) {
	db := newTestDB(t, Config{Shards: 2, CommitTimeout: 50 * time.Millisecond})
	a := keysOnShard(db, 0, 1)[0]
	b := keysOnShard(db, 1, 1)[0]
	db.Load(a, []byte("1"))
	db.Load(b, []byte("2"))

	cl := newDBClient(t, db)
	// One transaction spanning both shards: reads from each, writes to each.
	err := cl.Run(context.Background(), func(txn *Txn) error {
		va, err := txn.Read(a)
		if err != nil {
			return err
		}
		vb, err := txn.Read(b)
		if err != nil {
			return err
		}
		txn.Write(a, append(va, vb...))
		txn.Write(b, append(vb, va...))
		return nil
	})
	if err != nil {
		t.Fatalf("cross-shard txn: %v", err)
	}
	got, err := cl.GetStrong(a)
	if err != nil || string(got) != "12" {
		t.Fatalf("%s = %q, %v; want \"12\"", a, got, err)
	}
	got, err = cl.GetStrong(b)
	if err != nil || string(got) != "21" {
		t.Fatalf("%s = %q, %v; want \"21\"", b, got, err)
	}
}

func TestShardSplitMigratesData(t *testing.T) {
	db := newTestDB(t, Config{Shards: 1, MaxShards: 2, CommitTimeout: 50 * time.Millisecond})
	cl := newDBClient(t, db)
	const n = 50
	for i := 0; i < n; i++ {
		if err := cl.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	dst, err := db.Admin().Split(0)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if dst != 1 {
		t.Fatalf("Split landed on group %d, want 1", dst)
	}
	m := db.Admin().ShardMap()
	if m.Version() != 2 {
		t.Fatalf("map version = %d, want 2", m.Version())
	}
	if got := m.Groups(); len(got) != 2 {
		t.Fatalf("owning groups = %v, want 2 groups", got)
	}

	// Every key still reads back — moved keys from the new owner, kept keys
	// from the old — through both a fresh client and the pre-split one.
	fresh := newDBClient(t, db)
	moved := 0
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%d", i)
		if m.GroupForKey(k) == dst {
			moved++
		}
		for _, c := range []*Client{cl, fresh} {
			v, err := c.GetStrong(k)
			if err != nil || string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("%s after split = %q, %v", k, v, err)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no key moved to the new shard; the split migrated nothing")
	}

	// Writes keep flowing, including to moved keys via the stale client.
	for i := 0; i < n; i++ {
		if err := cl.Put(fmt.Sprintf("k%d", i), []byte("post")); err != nil {
			t.Fatalf("put %d after split: %v", i, err)
		}
	}
	// A second split has no idle group left.
	if _, err := db.Admin().Split(0); !errors.Is(err, errNoIdleShard) {
		t.Fatalf("second split err = %v, want errNoIdleShard", err)
	}
}

// TestShardSplitStaleClientNeverCommitsOnOldOwner pins the routing-cache
// safety invariant: a client one map version behind — routing a moved key to
// its pre-split owner after the fence — is redirected, its commit aborts
// with ErrWrongShard/ErrStaleShardMap, and no effect lands on the old owner.
func TestShardSplitStaleClientNeverCommitsOnOldOwner(t *testing.T) {
	db := newTestDB(t, Config{Shards: 1, MaxShards: 2, CommitTimeout: 50 * time.Millisecond})
	stale := newDBClient(t, db) // caches map v1
	if _, err := db.Admin().Split(0); err != nil {
		t.Fatalf("Split: %v", err)
	}

	// A key now owned by group 1; the stale client still routes it to 0.
	key := keysOnShard(db, 1, 1)[0]

	// Blind write (no read: a read would refresh the cache first). The raw
	// commit must abort with the typed redirect, not commit on group 0.
	txn := stale.Begin()
	txn.Write(key, []byte("lost?"))
	ok, err := txn.Commit()
	if ok {
		t.Fatal("stale-routed commit reported success")
	}
	if !errors.Is(err, ErrWrongShard) || !errors.Is(err, ErrStaleShardMap) {
		t.Fatalf("stale-routed commit err = %v, want ErrWrongShard and ErrStaleShardMap", err)
	}
	// The old owner's replicas must not hold the key.
	for r := 0; r < db.c.cfg.Replicas; r++ {
		if rep := db.c.replicaAt(0, r); rep != nil {
			if _, exists := rep.Store().Read(key); exists {
				t.Fatalf("old owner replica %d holds %q written by a stale-routed commit", r, key)
			}
		}
	}

	// The redirect refreshed the cache, so the retry routes correctly — and
	// Client.Run does the whole dance transparently.
	if err := stale.Put(key, []byte("routed")); err != nil {
		t.Fatalf("put after refresh: %v", err)
	}
	if v, err := stale.GetStrong(key); err != nil || string(v) != "routed" {
		t.Fatalf("GetStrong after refresh = %q, %v", v, err)
	}
}

// TestSerializabilityCrossShard runs the randomized stress over a two-shard
// DB: multi-key transactions routinely span both replica groups, and the
// committed history must stay one-copy serializable in timestamp order.
func TestSerializabilityCrossShard(t *testing.T) {
	db := newTestDB(t, Config{Shards: 2, CommitTimeout: 50 * time.Millisecond})
	// Half the keyset on each shard, so random multi-key picks usually span
	// both (short formatted keys cluster in one hash half; pick explicitly).
	keyset := append(keysOnShard(db, 0, 4), keysOnShard(db, 1, 4)...)
	keys := len(keyset)
	initial := make(map[string]timestamp.Timestamp, keys)
	loadTS := timestamp.Timestamp{Time: 1, ClientID: 0}
	hist := checker.New()
	for _, k := range keyset {
		db.Load(k, []byte("0"))
		initial[k] = loadTS
		hist.SetInitialValue(k, []byte("0"))
	}

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		cl := newDBClient(t, db)
		wg.Add(1)
		go func(cl *Client, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < 40; j++ {
				txn := cl.Begin()
				nKeys := 2 + rng.Intn(2)
				ok := true
				seen := map[int]bool{}
				for k := 0; k < nKeys; k++ {
					ki := rng.Intn(keys)
					if seen[ki] {
						continue
					}
					seen[ki] = true
					key := keyset[ki]
					if _, err := txn.Read(key); err != nil {
						ok = false
						break
					}
					txn.Write(key, []byte(fmt.Sprintf("c%d-%d", seed, j)))
				}
				if !ok {
					continue
				}
				if committed, err := txn.Commit(); err == nil && committed {
					hist.Add(checker.CommittedTxn{
						ID: txn.inner.ID(), TS: txn.inner.Timestamp(),
						ReadSet: txn.inner.ReadSet(), WriteSet: txn.inner.WriteSet(),
					})
				}
			}
		}(cl, 600+int64(i))
	}
	wg.Wait()

	if hist.Len() == 0 {
		t.Fatal("nothing committed")
	}
	// The stress is only meaningful if committed transactions actually
	// spanned both shards.
	m := db.source.Current()
	cross := 0
	hist.Range(func(txn *checker.CommittedTxn) bool {
		groups := map[int]bool{}
		for _, w := range txn.WriteSet {
			groups[m.GroupForKey(w.Key)] = true
		}
		if len(groups) > 1 {
			cross++
		}
		return true
	})
	if cross == 0 {
		t.Fatal("no committed transaction spanned two shards")
	}
	if dups := hist.CheckUniqueTimestamps(); dups != nil {
		t.Fatalf("duplicate commit timestamps: %v", dups)
	}
	if violations := hist.Check(initial); violations != nil {
		for _, v := range violations {
			t.Error(v)
		}
	}
	t.Logf("committed %d transactions, %d cross-shard", hist.Len(), cross)
}

// TestChaosShardSplit splits a shard mid-workload under message loss while a
// source replica crashes and recovers around the split. Requirements: the
// committed history stays one-copy serializable, every acknowledged commit
// survives (the final strong read of each key is the max-timestamp
// acknowledged write), and clients ride the redirect transparently.
func TestChaosShardSplit(t *testing.T) {
	db := newTestDB(t, Config{
		Shards:        1,
		MaxShards:     2,
		Cores:         2,
		DropProb:      0.02,
		Seed:          13,
		CommitTimeout: 20 * time.Millisecond,
		Retries:       20,
		SweepInterval: 25 * time.Millisecond,
		StaleAfter:    50 * time.Millisecond,
	})
	// Half the keys in each hash half: the split moves half the keyset and
	// the post-split workload spans both shards.
	keyset := keysByHashHalf(8)
	keys := len(keyset)
	initial := make(map[string]timestamp.Timestamp, keys)
	loadTS := timestamp.Timestamp{Time: 1, ClientID: 0}
	hist := checker.New()
	for _, k := range keyset {
		db.Load(k, []byte("0"))
		initial[k] = loadTS
		hist.SetInitialValue(k, []byte("0"))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	stop := make(chan struct{})
	var unresolved sync.Map // key -> true when an outcome-unknown txn touched it
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		cl := newDBClient(t, db)
		wg.Add(1)
		go func(cl *Client, seed int) {
			defer wg.Done()
			j := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				j++
				key := keyset[(seed+j)%keys]
				val := []byte(fmt.Sprintf("c%d-%d", seed, j))
				var last *Txn
				err := cl.Run(ctx, func(txn *Txn) error {
					last = txn
					if _, err := txn.Read(key); err != nil {
						return err
					}
					txn.Write(key, val)
					return nil
				})
				if err == nil {
					hist.Add(checker.CommittedTxn{
						ID: last.inner.ID(), TS: last.inner.Timestamp(),
						ReadSet: last.inner.ReadSet(), WriteSet: last.inner.WriteSet(),
					})
				} else {
					// Outcome unknown (ctx gave out mid-resolve): the final-
					// value check below cannot reason about this key.
					unresolved.Store(key, true)
				}
			}
		}(cl, i)
	}

	// Chaos sequence: crash a source replica, split under load with the
	// group at 2/3, recover the replica into its post-split ownership.
	time.Sleep(75 * time.Millisecond)
	db.Admin().CrashReplica(0, 2)
	time.Sleep(50 * time.Millisecond)
	var dst int
	var splitErr error
	for attempt := 0; attempt < 3; attempt++ {
		// Split is retryable by design; under loss the fence may time out.
		if dst, splitErr = db.Admin().Split(0); splitErr == nil {
			break
		}
	}
	if splitErr != nil {
		t.Fatalf("Split under chaos: %v", splitErr)
	}
	time.Sleep(50 * time.Millisecond)
	if err := db.Admin().RecoverReplica(0, 2); err != nil {
		t.Errorf("recover source replica post-split: %v", err)
	}
	time.Sleep(75 * time.Millisecond)
	close(stop)
	wg.Wait()

	if hist.Len() == 0 {
		t.Fatal("nothing committed across the split")
	}
	if dups := hist.CheckUniqueTimestamps(); dups != nil {
		t.Fatalf("duplicate commit timestamps: %v", dups)
	}
	if violations := hist.Check(initial); violations != nil {
		for _, v := range violations {
			t.Error(v)
		}
	}

	// Zero acknowledged-commit loss: for every key no unknown-outcome txn
	// touched, the surviving value is the max-timestamp acknowledged write.
	finalWant := make(map[string][]byte, keys)
	finalTS := make(map[string]timestamp.Timestamp, keys)
	hist.Range(func(txn *checker.CommittedTxn) bool {
		for _, w := range txn.WriteSet {
			if finalTS[w.Key].Less(txn.TS) {
				finalTS[w.Key] = txn.TS
				finalWant[w.Key] = w.Value
			}
		}
		return true
	})
	cl := newDBClient(t, db)
	checked := 0
	for _, k := range keyset {
		if _, tainted := unresolved.Load(k); tainted {
			continue
		}
		want, wrote := finalWant[k]
		if !wrote {
			continue
		}
		got, err := cl.GetStrong(k)
		if err != nil {
			t.Fatalf("GetStrong(%s) after chaos: %v", k, err)
		}
		if string(got) != string(want) {
			t.Errorf("%s = %q after chaos, want last acknowledged write %q (acknowledged commit lost)", k, got, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("every key was touched by an unresolved transaction; the loss check verified nothing")
	}
	m := db.Admin().ShardMap()
	t.Logf("committed %d transactions across split to group %d (map v%d), %d/%d keys loss-checked",
		hist.Len(), dst, m.Version(), checked, keys)
}

// TestShardMapPersistsAcrossRestart: on a durable DB a completed split
// survives a full restart — the reopened cluster owns by the split map and
// the migrated data is on its new owner.
func TestShardMapPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Shards: 1, MaxShards: 2, Cores: 2,
		CommitTimeout: 50 * time.Millisecond,
		Durability:    Durability{DataDir: dir},
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := db.Client()
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := cl.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Admin().Split(0); err != nil {
		t.Fatalf("Split: %v", err)
	}
	cl.Close()
	db.Close()

	db2 := newTestDB(t, cfg)
	if v := db2.Admin().ShardMap().Version(); v != 2 {
		t.Fatalf("reopened map version = %d, want 2", v)
	}
	cl2 := newDBClient(t, db2)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%d", i)
		v, err := cl2.GetStrong(k)
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("%s after restart = %q, %v", k, v, err)
		}
	}
}
