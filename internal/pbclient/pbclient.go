// Package pbclient is the client for the two primary-backup baselines
// (KuaFu++ and Meerkat-PB). It performs Meerkat-style execution-phase reads
// against any replica (all four systems serve GETs from all replicas, §6.2)
// and submits the whole transaction to the primary for validation.
//
// For Meerkat-PB the client also proposes the transaction timestamp from its
// local clock (the primary merely validates at that timestamp); for KuaFu++
// the primary orders transactions itself with its shared counter.
package pbclient

import (
	"errors"
	"math/rand"
	"time"

	"meerkat/internal/clock"
	"meerkat/internal/message"
	"meerkat/internal/timestamp"
	"meerkat/internal/topo"
	"meerkat/internal/transport"
)

// ErrTimeout mirrors the coordinator package's timeout error.
var ErrTimeout = errors.New("pbclient: timed out, outcome unknown")

// Config parameterizes a client.
type Config struct {
	Topo     topo.Topology
	ClientID uint64
	Net      transport.Network
	Clock    clock.Clock

	// ClientTimestamps selects Meerkat-PB behaviour: the client proposes
	// the commit timestamp. When false (KuaFu++), the primary orders.
	ClientTimestamps bool

	Timeout time.Duration
	Retries int
	Seed    int64
}

// Client executes transactions against a primary-backup group. Not safe for
// concurrent use.
type Client struct {
	cfg Config
	gen *timestamp.Generator
	rng *rand.Rand
	ep  transport.Endpoint
	in  *transport.Inbox
	seq uint64
}

// New binds the client's endpoint.
func New(cfg Config) (*Client, error) {
	if cfg.Timeout == 0 {
		cfg.Timeout = 100 * time.Millisecond
	}
	if cfg.Retries == 0 {
		cfg.Retries = 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = int64(cfg.ClientID + 1)
	}
	c := &Client{
		cfg: cfg,
		gen: timestamp.NewGenerator(cfg.ClientID, cfg.Clock.Now),
		rng: rand.New(rand.NewSource(cfg.Seed)),
		in:  transport.NewInbox(256),
	}
	ep, err := cfg.Net.Listen(cfg.Topo.ClientAddr(cfg.ClientID), c.in.Handle)
	if err != nil {
		return nil, err
	}
	c.ep = ep
	return c, nil
}

// Close releases the client's endpoint.
func (c *Client) Close() { c.ep.Close() }

func (c *Client) drain() {
	for {
		select {
		case <-c.in.C:
		default:
			return
		}
	}
}

// Read fetches the latest committed version of key from a uniformly chosen
// replica core.
func (c *Client) Read(key string) (value []byte, version timestamp.Timestamp, ok bool, err error) {
	c.seq++
	seq := c.seq
	c.drain()
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		r := c.rng.Intn(c.cfg.Topo.Replicas)
		core := uint32(c.rng.Intn(c.cfg.Topo.Cores))
		c.ep.Send(c.cfg.Topo.ReplicaAddr(0, r, core), &message.Message{
			Type: message.TypeRead, Key: key, Seq: seq,
		})
		deadline := time.NewTimer(c.cfg.Timeout)
		for {
			select {
			case m := <-c.in.C:
				if m.Type != message.TypeReadReply || m.Seq != seq {
					continue
				}
				deadline.Stop()
				return m.Value, m.TS, m.OK, nil
			case <-deadline.C:
			}
			break
		}
	}
	return nil, timestamp.Timestamp{}, false, ErrTimeout
}

// Txn buffers a transaction's read and write sets client-side.
type Txn struct {
	c        *Client
	reads    []message.ReadSetEntry
	readVals [][]byte
	writes   []message.WriteSetEntry
	writeIdx map[string]int
	readIdx  map[string]int
}

// Begin starts a transaction.
func (c *Client) Begin() *Txn {
	return &Txn{c: c, writeIdx: make(map[string]int), readIdx: make(map[string]int)}
}

// Read returns key's value within the transaction (read-your-writes).
func (t *Txn) Read(key string) ([]byte, error) {
	if i, ok := t.writeIdx[key]; ok {
		return t.writes[i].Value, nil
	}
	if i, ok := t.readIdx[key]; ok {
		return t.readVals[i], nil
	}
	val, ver, _, err := t.c.Read(key)
	if err != nil {
		return nil, err
	}
	t.readIdx[key] = len(t.reads)
	t.reads = append(t.reads, message.ReadSetEntry{Key: key, WTS: ver, VHash: message.HashValue(val)})
	t.readVals = append(t.readVals, val)
	return val, nil
}

// ReadMany reads a batch of keys with the same snapshot semantics as per-key
// Read, returning values index-aligned with keys. The primary-backup
// baselines have no batched read message — their execution phase is not what
// the comparison studies — so this is a plain sequential loop kept only for
// interface parity with the Meerkat client.
func (t *Txn) ReadMany(keys []string) ([][]byte, error) {
	vals := make([][]byte, len(keys))
	for i, k := range keys {
		v, err := t.Read(k)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return vals, nil
}

// Write buffers a write.
func (t *Txn) Write(key string, value []byte) {
	if i, ok := t.writeIdx[key]; ok {
		t.writes[i].Value = value
		return
	}
	t.writeIdx[key] = len(t.writes)
	t.writes = append(t.writes, message.WriteSetEntry{Key: key, Value: value})
}

// Commit submits the transaction to the primary and waits for its decision.
func (t *Txn) Commit() (bool, error) {
	c := t.c
	tid := c.gen.NextID()
	var ts timestamp.Timestamp
	if c.cfg.ClientTimestamps {
		ts = c.gen.NextTimestamp()
	}
	// Pin one core for the transaction: Meerkat-PB's record partitioning
	// and KuaFu++'s pending-completion tracking both rely on retries
	// reaching the same core.
	core := uint32(c.rng.Intn(c.cfg.Topo.Cores))
	primary := c.cfg.Topo.ReplicaAddr(0, 0, core)
	c.drain()

	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		c.ep.Send(primary, &message.Message{
			Type: message.TypePBSubmit,
			Txn:  message.Txn{ID: tid, ReadSet: t.reads, WriteSet: t.writes},
			TS:   ts, CoreID: core,
		})
		deadline := time.NewTimer(c.cfg.Timeout)
		for {
			select {
			case m := <-c.in.C:
				if m.Type != message.TypePBReply || m.TID != tid {
					continue
				}
				deadline.Stop()
				return m.OK, nil
			case <-deadline.C:
			}
			break
		}
	}
	return false, ErrTimeout
}
