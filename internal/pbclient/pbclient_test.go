package pbclient

import (
	"sync/atomic"
	"testing"
	"time"

	"meerkat/internal/clock"
	"meerkat/internal/message"
	"meerkat/internal/timestamp"
	"meerkat/internal/topo"
	"meerkat/internal/transport"
)

// fakePrimary answers reads, and commits every submitted transaction,
// recording what it saw.
type fakePrimary struct {
	lastTxn  chan message.Txn
	lastTS   chan timestamp.Timestamp
	decision bool
}

func startFake(t *testing.T, net *transport.Inproc, tp topo.Topology, decision bool) *fakePrimary {
	t.Helper()
	f := &fakePrimary{
		lastTxn:  make(chan message.Txn, 16),
		lastTS:   make(chan timestamp.Timestamp, 16),
		decision: decision,
	}
	for r := 0; r < tp.Replicas; r++ {
		for c := 0; c < tp.Cores; c++ {
			addr := tp.ReplicaAddr(0, r, uint32(c))
			var epHolder atomic.Pointer[transport.Endpoint]
			ep, err := net.Listen(addr, func(m *message.Message) {
				self := epHolder.Load()
				if self == nil {
					return
				}
				switch m.Type {
				case message.TypeRead:
					(*self).Send(m.Src, &message.Message{
						Type: message.TypeReadReply, Key: m.Key, Seq: m.Seq,
						Value: []byte("v0"), TS: timestamp.Timestamp{Time: 1}, OK: true,
					})
				case message.TypePBSubmit:
					select {
					case f.lastTxn <- m.Txn:
					default:
					}
					select {
					case f.lastTS <- m.TS:
					default:
					}
					(*self).Send(m.Src, &message.Message{
						Type: message.TypePBReply, TID: m.Txn.ID, OK: f.decision,
					})
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			epHolder.Store(&ep)
		}
	}
	return f
}

func newClient(t *testing.T, net *transport.Inproc, tp topo.Topology, clientTS bool) *Client {
	t.Helper()
	cl, err := New(Config{
		Topo: tp, ClientID: 7, Net: net, Clock: clock.NewManual(1000),
		ClientTimestamps: clientTS, Timeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func TestTxnBuffersAndSubmits(t *testing.T) {
	tp := topo.Topology{Partitions: 1, Replicas: 3, Cores: 2}
	net := transport.NewInproc(transport.InprocConfig{})
	defer net.Close()
	f := startFake(t, net, tp, true)
	cl := newClient(t, net, tp, true)

	txn := cl.Begin()
	v, err := txn.Read("k")
	if err != nil || string(v) != "v0" {
		t.Fatalf("read %q %v", v, err)
	}
	txn.Write("k", []byte("v1"))
	txn.Write("other", []byte("w"))
	ok, err := txn.Commit()
	if err != nil || !ok {
		t.Fatalf("commit %v %v", ok, err)
	}

	sub := <-f.lastTxn
	if len(sub.ReadSet) != 1 || sub.ReadSet[0].Key != "k" {
		t.Fatalf("read set %+v", sub.ReadSet)
	}
	if len(sub.WriteSet) != 2 {
		t.Fatalf("write set %+v", sub.WriteSet)
	}
	ts := <-f.lastTS
	if ts.IsZero() {
		t.Fatal("client timestamps enabled but TS is zero")
	}
	if ts.ClientID != 7 {
		t.Fatalf("timestamp client id %d", ts.ClientID)
	}
}

func TestKuaFuModeOmitsTimestamp(t *testing.T) {
	tp := topo.Topology{Partitions: 1, Replicas: 3, Cores: 2}
	net := transport.NewInproc(transport.InprocConfig{})
	defer net.Close()
	f := startFake(t, net, tp, true)
	cl := newClient(t, net, tp, false)

	txn := cl.Begin()
	txn.Write("k", []byte("v"))
	if ok, err := txn.Commit(); !ok || err != nil {
		t.Fatalf("commit %v %v", ok, err)
	}
	if ts := <-f.lastTS; !ts.IsZero() {
		t.Fatalf("primary-ordered mode sent timestamp %v", ts)
	}
}

func TestAbortDecisionPropagates(t *testing.T) {
	tp := topo.Topology{Partitions: 1, Replicas: 3, Cores: 2}
	net := transport.NewInproc(transport.InprocConfig{})
	defer net.Close()
	startFake(t, net, tp, false) // primary aborts everything
	cl := newClient(t, net, tp, true)

	txn := cl.Begin()
	txn.Write("k", []byte("v"))
	ok, err := txn.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("aborted decision reported as commit")
	}
}

func TestReadYourWritesAndCaching(t *testing.T) {
	tp := topo.Topology{Partitions: 1, Replicas: 3, Cores: 2}
	net := transport.NewInproc(transport.InprocConfig{})
	defer net.Close()
	startFake(t, net, tp, true)
	cl := newClient(t, net, tp, true)

	txn := cl.Begin()
	txn.Write("k", []byte("mine"))
	if v, _ := txn.Read("k"); string(v) != "mine" {
		t.Fatalf("read-your-writes got %q", v)
	}
	// A cached read does not re-contact the replica (same value back).
	if v1, _ := txn.Read("fresh"); string(v1) != "v0" {
		t.Fatal("first read failed")
	}
	if v2, _ := txn.Read("fresh"); string(v2) != "v0" {
		t.Fatal("cached read changed")
	}
}

func TestCommitTimesOutWithoutPrimary(t *testing.T) {
	tp := topo.Topology{Partitions: 1, Replicas: 3, Cores: 1}
	net := transport.NewInproc(transport.InprocConfig{})
	defer net.Close()
	cl, err := New(Config{
		Topo: tp, ClientID: 1, Net: net, Clock: clock.NewManual(1),
		Timeout: 5 * time.Millisecond, Retries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	txn := cl.Begin()
	txn.Write("k", []byte("v"))
	if _, err := txn.Commit(); err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}
