// Package shardmap implements the cluster's versioned, hash-range shard map.
//
// A sharded deployment is N independent Meerkat replica groups; the map
// assigns every key — via a 32-bit FNV-1a hash — to the group owning the
// range its hash falls in. The map is immutable: resharding produces a new
// map with a higher version, and every layer of the system compares versions
// instead of contents.
//
//   - Clients hold a Cache and route each key locally (an atomic load, a
//     hash, and a branch-free binary search — zero allocations, zero
//     coordination on the hot path).
//   - Replicas hold an Ownership view and reject operations on keys they no
//     longer own with a WrongShard redirect carrying their map version.
//   - The cluster holds the single Source of truth; a shard split publishes
//     the successor map there after fencing the moved range with an epoch
//     change.
//
// Consistency rule: a replica group's view is installed *before* the new map
// becomes visible to any client (seal first, publish last), so at every
// instant the groups' views are at least as new as any client's cache — a
// stale client is always redirected, never silently served.
package shardmap

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
)

// HashBits is the width of the routing hash space: keys map to [0, 2^32).
const HashBits = 32

// Hash routes a key into the 32-bit shard space (FNV-1a).
func Hash(key string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

// Range is one contiguous slice of the hash space and the group owning it.
// A range covers [Start, next range's Start), the last wrapping to 2^32.
type Range struct {
	Start uint32 `json:"start"`
	Group int    `json:"group"`
}

// Map is an immutable, versioned assignment of the whole 32-bit hash space
// to replica groups. Construct with New, evolve with Split; never mutate.
type Map struct {
	version uint64
	starts  []uint32 // ascending, starts[0] == 0
	groups  []int    // groups[i] owns [starts[i], starts[i+1])
}

// New returns version-1 map dividing the hash space evenly across groups
// 0..groups-1. groups must be ≥ 1.
func New(groups int) *Map {
	if groups < 1 {
		panic("shardmap: New needs at least one group")
	}
	m := &Map{
		version: 1,
		starts:  make([]uint32, groups),
		groups:  make([]int, groups),
	}
	width := uint64(1<<HashBits) / uint64(groups)
	for i := 0; i < groups; i++ {
		m.starts[i] = uint32(uint64(i) * width)
		m.groups[i] = i
	}
	return m
}

// Version returns the map's version. Versions start at 1 and increase by one
// per split; a higher version always supersedes a lower one.
func (m *Map) Version() uint64 { return m.version }

// NumRanges returns how many contiguous ranges the map holds.
func (m *Map) NumRanges() int { return len(m.starts) }

// Ranges returns a copy of the map's ranges in hash order (introspection).
func (m *Map) Ranges() []Range {
	out := make([]Range, len(m.starts))
	for i := range m.starts {
		out[i] = Range{Start: m.starts[i], Group: m.groups[i]}
	}
	return out
}

// Groups returns the distinct groups owning at least one range, ascending.
func (m *Map) Groups() []int {
	seen := map[int]bool{}
	var out []int
	for _, g := range m.groups {
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	sort.Ints(out)
	return out
}

// GroupForHash returns the group owning hash h. Zero allocations: a manual
// binary search over the range starts (the hot routing path).
func (m *Map) GroupForHash(h uint32) int {
	// Find the last range whose start is <= h.
	lo, hi := 0, len(m.starts) // invariant: starts[lo-1] <= h < starts[hi]
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if m.starts[mid] <= h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return m.groups[lo-1]
}

// GroupForKey routes key to its owning group.
func (m *Map) GroupForKey(key string) int { return m.GroupForHash(Hash(key)) }

// Owns reports whether group owns hash h under this map.
func (m *Map) Owns(group int, h uint32) bool { return m.GroupForHash(h) == group }

// Split returns the successor map in which the upper half of src's widest
// range is reassigned to dst, plus the moved range's bounds [lo, hi) (hi==0
// means the range runs to the top of the hash space). The version increases
// by one. It fails if src owns no range or the widest range is too narrow to
// halve.
func (m *Map) Split(src, dst int) (next *Map, lo, hi uint32, err error) {
	// Locate src's widest range.
	best, bestWidth := -1, uint64(0)
	for i := range m.starts {
		if m.groups[i] != src {
			continue
		}
		w := m.width(i)
		if w > bestWidth {
			best, bestWidth = i, w
		}
	}
	if best < 0 {
		return nil, 0, 0, fmt.Errorf("shardmap: group %d owns no range", src)
	}
	if bestWidth < 2 {
		return nil, 0, 0, fmt.Errorf("shardmap: group %d's widest range cannot be halved", src)
	}
	mid := m.starts[best] + uint32(bestWidth/2)
	next = &Map{
		version: m.version + 1,
		starts:  make([]uint32, 0, len(m.starts)+1),
		groups:  make([]int, 0, len(m.groups)+1),
	}
	for i := range m.starts {
		next.starts = append(next.starts, m.starts[i])
		next.groups = append(next.groups, m.groups[i])
		if i == best {
			next.starts = append(next.starts, mid)
			next.groups = append(next.groups, dst)
		}
	}
	lo = mid
	if best+1 < len(m.starts) {
		hi = m.starts[best+1]
	} else {
		hi = 0 // wraps: range runs to the top of the hash space
	}
	return next, lo, hi, nil
}

// width is the size of range i in hash units.
func (m *Map) width(i int) uint64 {
	if i+1 < len(m.starts) {
		return uint64(m.starts[i+1]) - uint64(m.starts[i])
	}
	return uint64(1<<HashBits) - uint64(m.starts[i])
}

// InRange reports whether h falls in [lo, hi), where hi == 0 means the range
// runs to the top of the hash space.
func InRange(h, lo, hi uint32) bool {
	if hi == 0 {
		return h >= lo
	}
	return h >= lo && h < hi
}

// mapJSON is the persistence schema for a Map.
type mapJSON struct {
	Version uint64  `json:"version"`
	Ranges  []Range `json:"ranges"`
}

// MarshalJSON encodes the map for persistence/introspection.
func (m *Map) MarshalJSON() ([]byte, error) {
	return json.Marshal(mapJSON{Version: m.version, Ranges: m.Ranges()})
}

// UnmarshalJSON decodes a persisted map, validating its shape.
func (m *Map) UnmarshalJSON(b []byte) error {
	var j mapJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	if j.Version == 0 || len(j.Ranges) == 0 || j.Ranges[0].Start != 0 {
		return fmt.Errorf("shardmap: malformed persisted map (version %d, %d ranges)", j.Version, len(j.Ranges))
	}
	starts := make([]uint32, len(j.Ranges))
	groups := make([]int, len(j.Ranges))
	for i, r := range j.Ranges {
		if i > 0 && r.Start <= starts[i-1] {
			return fmt.Errorf("shardmap: persisted ranges out of order at %d", i)
		}
		if r.Group < 0 {
			return fmt.Errorf("shardmap: negative group at range %d", i)
		}
		starts[i] = r.Start
		groups[i] = r.Group
	}
	m.version = j.Version
	m.starts = starts
	m.groups = groups
	return nil
}

// Save atomically persists the map to path (temp file + rename), so a crash
// mid-write leaves either the old map or the new one, never a torn file.
func (m *Map) Save(path string) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Fsync the directory so the rename itself survives a crash.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadFile reads a map persisted with Save. A missing file returns
// (nil, nil) so callers can fall back to a fresh map.
func LoadFile(path string) (*Map, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	m := &Map{}
	if err := json.Unmarshal(b, m); err != nil {
		return nil, err
	}
	return m, nil
}

// View is one replica group's knowledge of its own ownership: the map it
// believes current plus its group id. Replicas consult it on every request
// touching a key; Owns is as cheap as client routing.
type View struct {
	Map   *Map
	Group int
}

// Owns reports whether this group owns hash h under its view of the map.
func (v *View) Owns(h uint32) bool { return v.Map.GroupForHash(h) == v.Group }

// Version returns the view's map version.
func (v *View) Version() uint64 { return v.Map.version }

// Ownership is the atomically-swappable View handle installed on every
// replica of a group. One Ownership is shared by all the group's replicas
// (and survives replica crash/recovery), so sealing a range is a single
// atomic store. The zero value is not usable; create with NewOwnership.
type Ownership struct {
	v atomic.Pointer[View]
}

// NewOwnership returns an Ownership holding the given initial view.
func NewOwnership(m *Map, group int) *Ownership {
	o := &Ownership{}
	o.v.Store(&View{Map: m, Group: group})
	return o
}

// Load returns the current view (never nil).
func (o *Ownership) Load() *View { return o.v.Load() }

// Install atomically replaces the view with map m (same group). Installing
// an older map than the current one is a no-op, so racing installers cannot
// roll ownership back.
func (o *Ownership) Install(m *Map) {
	for {
		cur := o.v.Load()
		if m.version <= cur.Map.version {
			return
		}
		if o.v.CompareAndSwap(cur, &View{Map: m, Group: cur.Group}) {
			return
		}
	}
}

// Source is the cluster's single authoritative map handle. Splits publish
// the successor map here after the fence completes; client caches refresh
// from it.
type Source struct {
	m atomic.Pointer[Map]
}

// NewSource returns a Source holding m.
func NewSource(m *Map) *Source {
	s := &Source{}
	s.m.Store(m)
	return s
}

// Current returns the authoritative map (never nil).
func (s *Source) Current() *Map { return s.m.Load() }

// Publish installs m as the authoritative map. Older versions are ignored.
func (s *Source) Publish(m *Map) {
	for {
		cur := s.m.Load()
		if m.version <= cur.version {
			return
		}
		if s.m.CompareAndSwap(cur, m) {
			return
		}
	}
}

// Cache is one client's routing cache: the last map it fetched from the
// Source. Reads are an atomic load (hot path); Refresh re-fetches after a
// redirect. A Cache may be shared by the workers of a pipelined session.
type Cache struct {
	src *Source
	cur atomic.Pointer[Map]
}

// NewCache returns a cache primed with the source's current map.
func NewCache(src *Source) *Cache {
	c := &Cache{src: src}
	c.cur.Store(src.Current())
	return c
}

// Current returns the cached map (never nil). Zero allocations.
func (c *Cache) Current() *Map { return c.cur.Load() }

// Refresh re-fetches the authoritative map and returns it. It reports
// whether the refresh advanced the cached version — callers use that to
// decide between an immediate retry (the redirect was explained by a stale
// cache) and a backoff (the map hasn't changed yet; the split is mid-fence).
func (c *Cache) Refresh() (m *Map, advanced bool) {
	m = c.src.Current()
	for {
		cur := c.cur.Load()
		if m.version <= cur.version {
			return cur, false
		}
		if c.cur.CompareAndSwap(cur, m) {
			return m, true
		}
	}
}
