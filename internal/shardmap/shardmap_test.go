package shardmap

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"
)

func TestNewCoversWholeSpace(t *testing.T) {
	for _, groups := range []int{1, 2, 3, 4, 7} {
		m := New(groups)
		if m.Version() != 1 {
			t.Fatalf("groups=%d: version %d, want 1", groups, m.Version())
		}
		if m.NumRanges() != groups {
			t.Fatalf("groups=%d: %d ranges", groups, m.NumRanges())
		}
		// Every group gets traffic and probes at range edges land correctly.
		hit := map[int]bool{}
		for i := 0; i < 10000; i++ {
			g := m.GroupForKey(fmt.Sprintf("key-%d", i))
			if g < 0 || g >= groups {
				t.Fatalf("groups=%d: key routed to %d", groups, g)
			}
			hit[g] = true
		}
		if len(hit) != groups {
			t.Fatalf("groups=%d: only %d groups hit", groups, len(hit))
		}
		for _, r := range m.Ranges() {
			if got := m.GroupForHash(r.Start); got != r.Group {
				t.Fatalf("start %d routed to %d, want %d", r.Start, got, r.Group)
			}
		}
		if got := m.GroupForHash(^uint32(0)); got != m.Ranges()[groups-1].Group {
			t.Fatalf("top of space routed to %d", got)
		}
	}
}

func TestSplit(t *testing.T) {
	m := New(1)
	m2, lo, hi, err := m.Split(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version() != 2 || m2.NumRanges() != 2 {
		t.Fatalf("version %d ranges %d", m2.Version(), m2.NumRanges())
	}
	if lo != 1<<31 || hi != 0 {
		t.Fatalf("moved range [%d, %d)", lo, hi)
	}
	// Original map is untouched (immutability).
	if m.NumRanges() != 1 || m.Version() != 1 {
		t.Fatal("Split mutated its receiver")
	}
	// Routing agrees with the moved range on both maps.
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("key-%d", i)
		h := Hash(k)
		want := 0
		if InRange(h, lo, hi) {
			want = 1
		}
		if got := m2.GroupForKey(k); got != want {
			t.Fatalf("key %q (hash %d): routed to %d, want %d", k, h, got, want)
		}
		if got := m.GroupForKey(k); got != 0 {
			t.Fatalf("old map routed %q to %d", k, got)
		}
	}
	// A second split of group 0 halves its remaining range.
	m3, lo3, hi3, err := m2.Split(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m3.Version() != 3 || m3.NumRanges() != 3 {
		t.Fatalf("version %d ranges %d", m3.Version(), m3.NumRanges())
	}
	if lo3 != 1<<30 || hi3 != 1<<31 {
		t.Fatalf("moved range [%d, %d)", lo3, hi3)
	}
	// Splitting a group that owns nothing fails.
	if _, _, _, err := m.Split(5, 6); err == nil {
		t.Fatal("split of rangeless group succeeded")
	}
}

func TestGroups(t *testing.T) {
	m := New(1)
	m2, _, _, _ := m.Split(0, 3)
	m3, _, _, _ := m2.Split(3, 1)
	got := m3.Groups()
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("groups %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("groups %v, want %v", got, want)
		}
	}
}

func TestOwnershipInstallMonotone(t *testing.T) {
	m1 := New(1)
	m2, _, _, _ := m1.Split(0, 1)
	o := NewOwnership(m1, 0)
	o.Install(m2)
	if o.Load().Version() != 2 {
		t.Fatalf("version %d after install", o.Load().Version())
	}
	o.Install(m1) // stale install must be a no-op
	if o.Load().Version() != 2 {
		t.Fatal("stale install rolled ownership back")
	}
	// Group 0 no longer owns the upper half.
	if o.Load().Owns(1<<31 + 5) {
		t.Fatal("group 0 still owns moved range")
	}
	if !o.Load().Owns(5) {
		t.Fatal("group 0 lost its kept range")
	}
}

func TestSourceCacheRefresh(t *testing.T) {
	m1 := New(2)
	src := NewSource(m1)
	c := NewCache(src)
	if c.Current().Version() != 1 {
		t.Fatal("cache not primed")
	}
	// Refresh with no change reports no advance (caller should back off).
	if _, advanced := c.Refresh(); advanced {
		t.Fatal("refresh advanced with unchanged source")
	}
	m2, _, _, _ := m1.Split(0, 2)
	src.Publish(m2)
	if m, advanced := c.Refresh(); !advanced || m.Version() != 2 {
		t.Fatalf("refresh: advanced=%v version=%d", advanced, m.Version())
	}
	// Stale publish is ignored.
	src.Publish(m1)
	if src.Current().Version() != 2 {
		t.Fatal("stale publish rolled source back")
	}
}

func TestPersistRoundTrip(t *testing.T) {
	m1 := New(1)
	m2, _, _, _ := m1.Split(0, 1)
	m3, _, _, _ := m2.Split(1, 2)
	path := filepath.Join(t.TempDir(), "shardmap.json")
	if err := m3.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version() != m3.Version() || got.NumRanges() != m3.NumRanges() {
		t.Fatalf("round trip: version %d ranges %d", got.Version(), got.NumRanges())
	}
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if got.GroupForKey(k) != m3.GroupForKey(k) {
			t.Fatalf("round trip routing differs on %q", k)
		}
	}
	// Missing file → (nil, nil).
	if m, err := LoadFile(filepath.Join(t.TempDir(), "absent.json")); m != nil || err != nil {
		t.Fatalf("missing file: %v %v", m, err)
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	cases := []string{
		`{"version":0,"ranges":[{"start":0,"group":0}]}`,      // version 0
		`{"version":1,"ranges":[]}`,                           // empty
		`{"version":1,"ranges":[{"start":5,"group":0}]}`,      // doesn't start at 0
		`{"version":1,"ranges":[{"start":0},{"start":0}]}`,    // out of order
		`{"version":1,"ranges":[{"start":0,"group":-1}]}`,     // negative group
		`{"version":1,"ranges":[{"start":9,"group":0},{}]}`,   // both
	}
	for _, c := range cases {
		m := &Map{}
		if err := json.Unmarshal([]byte(c), m); err == nil {
			t.Fatalf("unmarshal accepted %s", c)
		}
	}
}

func TestRoutingZeroAlloc(t *testing.T) {
	m, _, _, _ := New(2).Split(0, 2)
	src := NewSource(m)
	c := NewCache(src)
	keys := []string{"alice", "bob", "carol", "a-much-longer-key-name-1234567890"}
	n := testing.AllocsPerRun(1000, func() {
		cur := c.Current()
		for _, k := range keys {
			_ = cur.GroupForKey(k)
		}
	})
	if n != 0 {
		t.Fatalf("routing allocates %.1f per run, want 0", n)
	}
}
