package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"meerkat/internal/message"
	"meerkat/internal/occ"
	"meerkat/internal/timestamp"
	"meerkat/internal/vstore"
)

func ts(t int64) timestamp.Timestamp { return timestamp.Timestamp{Time: t, ClientID: 1} }

// testTxn builds a small transaction writing key=val and reading rkey.
func testTxn(seq uint64, key, val, rkey string) message.Txn {
	return message.Txn{
		ID:       timestamp.TxnID{Seq: seq, ClientID: 1},
		ReadSet:  []message.ReadSetEntry{{Key: rkey, WTS: ts(1)}},
		WriteSet: []message.WriteSetEntry{{Key: key, Value: []byte(val)}},
	}
}

// replayAll reopens the log at dir collecting every record (deep-copied; the
// decode target is reused across frames).
func replayAll(t *testing.T, dir string, opts Options) ([]message.Message, ReplayStats, *Log) {
	t.Helper()
	var got []message.Message
	l, rs, err := openLog(dir, opts, func(m *message.Message) error {
		cp := *m
		cp.Txn.ReadSet = append([]message.ReadSetEntry(nil), m.Txn.ReadSet...)
		cp.Txn.WriteSet = append([]message.WriteSetEntry(nil), m.Txn.WriteSet...)
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("openLog: %v", err)
	}
	return got, rs, l
}

func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rs, err := openLog(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Records != 0 {
		t.Fatalf("fresh log replayed %d records", rs.Records)
	}
	want := []message.Txn{
		testTxn(1, "a", "v1", "b"),
		testTxn(2, "b", "v2", "a"),
		testTxn(3, "c", "longer value to vary frame sizes", "a"),
	}
	for i, txn := range want {
		l.AppendCommit(&txn, ts(int64(10+i)))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, rs, l2 := replayAll(t, dir, Options{})
	defer l2.Close()
	if rs.Torn {
		t.Fatal("clean log reported torn")
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i].Txn, want[i]) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i].Txn, want[i])
		}
		if got[i].TS != ts(int64(10+i)) {
			t.Fatalf("record %d: TS %v want %v", i, got[i].TS, ts(int64(10+i)))
		}
	}
	if rs.Watermark != ts(12) {
		t.Fatalf("watermark %v, want %v", rs.Watermark, ts(12))
	}
}

// TestTornTail crashes mid-frame: replay must stop cleanly at the last valid
// record, truncate the garbage, and leave the log appendable.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _, err := openLog(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		txn := testTxn(i, "k", "v", "r")
		l.AppendCommit(&txn, ts(int64(i)))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop the last record mid-frame and smear garbage after.
	path := filepath.Join(dir, segName(1))
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(buf[:len(buf)-5], 0xDE, 0xAD)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	got, rs, l2 := replayAll(t, dir, Options{})
	if !rs.Torn {
		t.Fatal("torn tail not reported")
	}
	if len(got) != 2 {
		t.Fatalf("replayed %d records past a torn tail, want 2", len(got))
	}
	// The log must be appendable after truncation: new records replace the
	// torn region cleanly.
	txn := testTxn(9, "post", "crash", "r")
	l2.AppendCommit(&txn, ts(9))
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got, rs, l3 := replayAll(t, dir, Options{})
	defer l3.Close()
	if rs.Torn {
		t.Fatal("log torn after truncate+append")
	}
	if len(got) != 3 || got[2].Txn.ID.Seq != 9 {
		t.Fatalf("post-truncate replay: %d records (last %+v), want 3 ending in seq 9", len(got), got[len(got)-1].Txn.ID)
	}
}

// TestCorruptRecordStopsReplay flips a byte inside an early record: replay
// must stop before it — and discard later segments, which would otherwise
// replay records past a lost one.
func TestCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so the log spans several files.
	opts := Options{MaxSegmentBytes: 1}
	l, _, err := openLog(dir, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 4; i++ {
		txn := testTxn(i, "k", "v", "r")
		l.AppendCommit(&txn, ts(int64(i)))
		l.Flush() // each flush exceeds MaxSegmentBytes and rotates
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %v (err %v)", segs, err)
	}

	// Corrupt a payload byte in the second segment.
	path := filepath.Join(dir, segName(segs[1]))
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[frameHeader+2] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	got, rs, l2 := replayAll(t, dir, opts)
	defer l2.Close()
	if !rs.Torn {
		t.Fatal("corrupt record not reported as torn")
	}
	if len(got) != 1 {
		t.Fatalf("replayed %d records, want 1 (everything after the corruption dropped)", len(got))
	}
	left, _ := segments(dir)
	for _, s := range left {
		if s > segs[1] {
			t.Fatalf("segment %d after the corrupt one survived: %v", s, left)
		}
	}
}

// TestMarkAndTruncate drives the snapshot protocol's log half: rotate at the
// mark, truncate below it, and verify only post-mark records replay.
func TestMarkAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, _, err := openLog(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pre := testTxn(1, "old", "x", "r")
	l.AppendCommit(&pre, ts(1))
	mark, err := l.MarkSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	post := testTxn(2, "new", "y", "r")
	l.AppendCommit(&post, ts(2))
	if err := l.TruncateBefore(mark); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, rs, l2 := replayAll(t, dir, Options{})
	defer l2.Close()
	if rs.Torn {
		t.Fatal("truncated log reported torn")
	}
	if len(got) != 1 || got[0].Txn.ID.Seq != 2 {
		t.Fatalf("post-truncate replay %d records (first %+v), want just seq 2", len(got), got[0].Txn.ID)
	}
}

// TestCrashDropsPendingCloseKeepsIt pins the crash/graceful-stop semantics:
// Crash abandons the user-space buffer (a killed process would), Close
// flushes and fsyncs it.
func TestCrashDropsPendingCloseKeepsIt(t *testing.T) {
	// An interval long enough that the group-commit goroutine never runs.
	opts := Options{GroupCommitInterval: time.Hour}

	t.Run("crash", func(t *testing.T) {
		dir := t.TempDir()
		l, _, err := openLog(dir, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		txn := testTxn(1, "k", "v", "r")
		l.AppendCommit(&txn, ts(1))
		l.Crash()
		got, _, l2 := replayAll(t, dir, opts)
		defer l2.Close()
		if len(got) != 0 {
			t.Fatalf("crash preserved %d buffered records, want 0", len(got))
		}
	})

	t.Run("close", func(t *testing.T) {
		dir := t.TempDir()
		l, _, err := openLog(dir, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		txn := testTxn(1, "k", "v", "r")
		l.AppendCommit(&txn, ts(1))
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		got, _, l2 := replayAll(t, dir, opts)
		defer l2.Close()
		if len(got) != 1 {
			t.Fatalf("close preserved %d records, want 1", len(got))
		}
	})

	t.Run("sync-always-survives-crash", func(t *testing.T) {
		dir := t.TempDir()
		always := opts
		always.Sync = SyncAlways
		l, _, err := openLog(dir, always, nil)
		if err != nil {
			t.Fatal(err)
		}
		txn := testTxn(1, "k", "v", "r")
		l.AppendCommit(&txn, ts(1))
		st := l.Stats()
		if st.Syncs == 0 {
			t.Fatal("SyncAlways append did not fsync")
		}
		l.Crash()
		got, _, l2 := replayAll(t, dir, always)
		defer l2.Close()
		if len(got) != 1 {
			t.Fatalf("SyncAlways crash lost the record: replayed %d, want 1", len(got))
		}
	})
}

// TestStoreSnapshotRoundTrip exercises the whole Store protocol — snapshot
// over ExportShard/ImportState with multi-version entries, manifest commit,
// truncation, and reopen — asserting the recovered store matches the
// original exactly.
func TestStoreSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := Open(dir, 2, Options{GroupCommitInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	vs := rec.Store

	// Multi-version entries: k1 gets two versions (only the latest is
	// snapshot state) plus an advanced rts.
	vs.Load("k1", []byte("v1"), ts(1))
	vs.Load("k1", []byte("v2"), ts(2))
	vs.CommitRead("k1", ts(7))
	vs.Load("k2", []byte("w"), ts(3))

	if err := s.Snapshot(vs); err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	// Post-snapshot commits land in the logs of different cores.
	t1 := testTxn(10, "k3", "log-written", "k1")
	s.Log(0).AppendCommit(&t1, ts(8))
	t2 := testTxn(11, "k1", "v3", "k2")
	s.Log(1).AppendCommit(&t2, ts(9))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec2, err := Open(dir, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec2.SnapshotSeq != 1 || rec2.SnapshotKeys != 2 {
		t.Fatalf("recovered snapshot seq=%d keys=%d, want 1/2", rec2.SnapshotSeq, rec2.SnapshotKeys)
	}
	if rec2.Records != 2 {
		t.Fatalf("recovered %d log records, want 2", rec2.Records)
	}
	if rec2.Watermark != ts(9) {
		t.Fatalf("watermark %v, want %v", rec2.Watermark, ts(9))
	}

	got := rec2.Store
	if v, ok := got.Read("k1"); !ok || string(v.Value) != "v3" || v.WTS != ts(9) {
		t.Fatalf("k1 = %q@%v ok=%v, want v3@%v", v.Value, v.WTS, ok, ts(9))
	}
	if v, ok := got.Read("k2"); !ok || string(v.Value) != "w" {
		t.Fatalf("k2 = %q ok=%v, want w", v.Value, ok)
	}
	if v, ok := got.Read("k3"); !ok || string(v.Value) != "log-written" {
		t.Fatalf("k3 = %q ok=%v, want log-written", v.Value, ok)
	}
	// rts survives: from the snapshot (7) then advanced by t1's read at 8.
	if _, rts := got.Meta("k1"); rts != ts(8) {
		t.Fatalf("k1 rts %v, want %v", rts, ts(8))
	}
	if _, rts := got.Meta("k2"); rts != ts(9) {
		t.Fatalf("k2 rts %v, want %v", rts, ts(9))
	}
}

// TestStoreSecondSnapshotGC asserts a later snapshot supersedes the earlier
// one on disk and truncated segments actually disappear.
func TestStoreSecondSnapshotGC(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := Open(dir, 1, Options{GroupCommitInterval: time.Hour, MaxSegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	vs := rec.Store
	for i := uint64(1); i <= 3; i++ {
		txn := testTxn(i, "k", "v", "r")
		s.Log(0).AppendCommit(&txn, ts(int64(i)))
		vs.Load("k", []byte("v"), ts(int64(i)))
		s.Log(0).Flush()
	}
	if err := s.Snapshot(vs); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(vs); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, e := range ents {
		if !e.IsDir() && e.Name() != manifestName {
			snaps++
			if e.Name() != snapshotName(2) {
				t.Fatalf("unexpected file %s (old snapshot not GC'd?)", e.Name())
			}
		}
	}
	if snaps != 1 {
		t.Fatalf("%d snapshot files on disk, want 1", snaps)
	}
	segs, _ := segments(coreDir(dir, 0))
	if len(segs) != 1 {
		t.Fatalf("%d segments survive double snapshot, want 1 (got %v)", len(segs), segs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The replayed state after GC must still be complete.
	_, rec2, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := rec2.Store.Read("k"); !ok || v.WTS != ts(3) {
		t.Fatalf("k = %v@%v ok=%v after GC, want @%v", v.Value, v.WTS, ok, ts(3))
	}
}

// TestExportShardSince pins the delta-export filter the recovery path relies
// on: only keys written or read after the watermark are shipped — unless the
// wall-clock axis is engaged, which additionally ships keys applied locally
// after the given instant regardless of their timestamps.
func TestExportShardSince(t *testing.T) {
	vs := vstore.New(vstore.Config{Shards: 1})
	before := time.Now().UnixNano()
	vs.Load("old", []byte("x"), ts(1))
	vs.Load("new", []byte("y"), ts(10))
	vs.Load("readlater", []byte("z"), ts(2))
	vs.CommitRead("readlater", ts(11))

	full := vs.ExportShard(0)
	if len(full) != 3 {
		t.Fatalf("full export %d keys, want 3", len(full))
	}
	delta := vs.ExportShardSince(0, ts(5), 0)
	names := map[string]bool{}
	for _, ks := range delta {
		names[ks.Key] = true
	}
	if len(delta) != 2 || !names["new"] || !names["readlater"] {
		t.Fatalf("delta export %v, want {new, readlater}", names)
	}

	// Wall-clock axis: everything above was applied after `before`, so even
	// "old" (TS-filtered out) ships — the sweeper/backup-coordinator case of
	// a commit finalized long after its timestamp was assigned.
	wallDelta := vs.ExportShardSince(0, ts(5), before)
	if len(wallDelta) != 3 {
		t.Fatalf("wall-clock delta %d keys, want 3", len(wallDelta))
	}
	// A bound in the future ships nothing beyond the TS filter.
	future := vs.ExportShardSince(0, ts(5), time.Now().UnixNano()+int64(time.Hour))
	if len(future) != 2 {
		t.Fatalf("future wall-clock delta %d keys, want 2", len(future))
	}
}

// TestValidPrefixHugeLength pins the torn-tail handling of a corrupt frame
// length with the top bit set: replay must end cleanly at the frame, not
// convert the length to a negative int (32-bit platforms) and panic slicing.
func TestValidPrefixHugeLength(t *testing.T) {
	buf := make([]byte, frameHeader+16)
	binary.LittleEndian.PutUint32(buf, 0xFFFFFFFF)
	n, torn, err := validPrefix(buf, func([]byte) error {
		t.Fatal("corrupt frame delivered a payload")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || !torn {
		t.Fatalf("validPrefix = (%d, torn=%v), want (0, true)", n, torn)
	}
}

// TestSnapshotWaitsForApply pins the append+apply atomicity that makes log
// truncation safe: a snapshot that starts while a logged record's apply hook
// is still running must block until the apply lands, so the exported store
// always covers every record the mark flushed into pre-mark (truncatable)
// segments. Without the pairing, the snapshot would export the store before
// the apply, truncate the record's only durable copy, and lose the commit.
func TestSnapshotWaitsForApply(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vs := rec.Store
	entered := make(chan struct{})
	release := make(chan struct{})
	s.Log(0).SetApply(func(txn *message.Txn, tts timestamp.Timestamp) {
		close(entered)
		<-release
		occ.ApplyCommit(vs, txn, tts)
	})

	txn := testTxn(1, "k", "survivor", "r")
	go s.Log(0).AppendCommit(&txn, ts(7))
	<-entered

	snapDone := make(chan error, 1)
	go func() { snapDone <- s.Snapshot(vs) }()
	select {
	case <-snapDone:
		t.Fatal("snapshot completed while a logged record's apply was pending")
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-snapDone; err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The record's log segment was truncated by the snapshot; the commit must
	// survive the reopen regardless.
	_, rec2, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := rec2.Store.Read("k"); !ok || string(v.Value) != "survivor" || v.WTS != ts(7) {
		t.Fatalf(`Read("k") = %q@%v ok=%v after snapshot+reopen, want "survivor"@%v`, v.Value, v.WTS, ok, ts(7))
	}
}

// TestFlushFailureRetainsRecords pins the IO-error contract: a failed write
// must requeue the drained records (a later flush retries them), count the
// failure, and latch the error for Err — never silently drop frames that the
// replica already acknowledged as durable.
func TestFlushFailureRetainsRecords(t *testing.T) {
	dir := t.TempDir()
	l, _, err := openLog(dir, Options{GroupCommitInterval: time.Hour}, nil)
	if err != nil {
		t.Fatal(err)
	}
	txn := testTxn(1, "k", "v", "r")
	l.AppendCommit(&txn, ts(3))

	// Sabotage the segment file out from under the log; the next write fails.
	l.wmu.Lock()
	l.f.Close()
	seg := l.seg
	l.wmu.Unlock()
	if err := l.Flush(); err == nil {
		t.Fatal("Flush on a closed file succeeded")
	}
	if got := l.Stats().Failures; got == 0 {
		t.Fatal("failure not counted in Stats")
	}
	if l.Err() == nil {
		t.Fatal("failure not latched in Err")
	}

	// Repair the file; the retained records must flush and replay intact.
	f, err := os.OpenFile(filepath.Join(dir, segName(seg)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	l.wmu.Lock()
	l.f = f
	l.wmu.Unlock()
	if err := l.Flush(); err != nil {
		t.Fatalf("Flush after repair: %v", err)
	}
	if err := l.Err(); err == nil {
		t.Fatal("Err must stay sticky after recovery")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, rs, l2 := replayAll(t, dir, Options{})
	defer l2.Close()
	if rs.Torn {
		t.Fatal("repaired log reported torn")
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0].Txn, txn) {
		t.Fatalf("replayed %d records (%+v), want the retained one", len(got), got)
	}
}
