package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"meerkat/internal/message"
	"meerkat/internal/occ"
	"meerkat/internal/timestamp"
	"meerkat/internal/vstore"
)

// manifestName is the snapshot pointer file at the root of a replica's
// durability directory.
const manifestName = "MANIFEST"

// manifest is the JSON body of the MANIFEST file. It only needs to name the
// current snapshot: commit records are idempotent (Thomas write rule,
// monotone rts), so replaying not-yet-truncated pre-snapshot segments over
// the snapshot is harmless and no per-core offsets are required.
type manifest struct {
	Snapshot string `json:"snapshot"` // snapshot file name, e.g. "snapshot-00000003.snap"
	Seq      uint64 `json:"seq"`      // snapshot sequence number
}

func snapshotName(seq uint64) string { return fmt.Sprintf("snapshot-%08d.snap", seq) }

// coreDir names the per-core log directory under the replica's root.
func coreDir(dir string, core int) string {
	return filepath.Join(dir, fmt.Sprintf("core-%d", core))
}

// Recovered reports what Open replayed from disk.
type Recovered struct {
	Store        *vstore.Store       // the store, populated from snapshot + logs
	Watermark    timestamp.Timestamp // max committed timestamp observed on disk
	SnapshotSeq  uint64              // snapshot sequence replayed (0 = none)
	SnapshotKeys int                 // keys restored from the snapshot
	Records      int                 // commit records replayed from the logs
	Torn         bool                // some log ended at a torn/corrupt frame
}

// Store is one replica's durability state: a per-core set of write-ahead
// logs plus the snapshot/manifest machinery that truncates them.
type Store struct {
	dir      string
	opts     Options
	logs     []*Log
	ownSched *Scheduler // private group-commit scheduler, if Options had none

	snapMu  sync.Mutex // serializes snapshots (and protects snapSeq)
	snapSeq uint64

	snapStop chan struct{}
	snapDone chan struct{}

	mu     sync.Mutex
	closed bool
}

// Open opens (creating if necessary) the durability directory for a replica
// with the given core count, replays the current snapshot and every valid
// log record into a fresh versioned store, and returns both. The logs are
// left open for appending, torn tails truncated. Replay is idempotent, so a
// directory whose truncation was interrupted mid-way recovers identically.
func Open(dir string, cores int, opts Options) (*Store, *Recovered, error) {
	if cores <= 0 {
		return nil, nil, fmt.Errorf("wal: cores must be positive, got %d", cores)
	}
	opts.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}

	vs := vstore.New(vstore.Config{})
	rec := &Recovered{Store: vs}

	// Snapshot first: logs replay over it.
	man, err := readManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	if man != nil {
		keys, wm, err := replaySnapshot(filepath.Join(dir, man.Snapshot), vs)
		if err != nil {
			return nil, nil, err
		}
		rec.SnapshotSeq = man.Seq
		rec.SnapshotKeys = keys
		if rec.Watermark.Less(wm) {
			rec.Watermark = wm
		}
	}

	s := &Store{dir: dir, opts: opts, snapSeq: 0}
	if man != nil {
		s.snapSeq = man.Seq
	}
	if opts.Scheduler == nil {
		// One scheduler for all of this store's cores: their fsyncs batch
		// into (almost) one journal commit per tick instead of one each.
		s.ownSched = NewScheduler(opts.GroupCommitInterval)
		opts.Scheduler = s.ownSched
	}
	for c := 0; c < cores; c++ {
		l, rs, err := openLog(coreDir(dir, c), opts, func(m *message.Message) error {
			occ.ApplyCommit(vs, &m.Txn, m.TS)
			return nil
		})
		if err != nil {
			for _, open := range s.logs {
				open.Close()
			}
			if s.ownSched != nil {
				s.ownSched.Stop()
			}
			return nil, nil, err
		}
		s.logs = append(s.logs, l)
		rec.Records += rs.Records
		rec.Torn = rec.Torn || rs.Torn
		if rec.Watermark.Less(rs.Watermark) {
			rec.Watermark = rs.Watermark
		}
	}
	return s, rec, nil
}

// readManifest returns the current manifest, or nil if none exists yet.
func readManifest(dir string) (*manifest, error) {
	buf, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("wal: corrupt manifest: %w", err)
	}
	return &m, nil
}

// replaySnapshot imports every valid page of a snapshot file into vs,
// returning the key count and the max WTS/RTS watermark observed. A missing
// file is not an error (the manifest may outlive a manually removed
// snapshot); replay then starts from the logs alone.
func replaySnapshot(path string, vs *vstore.Store) (int, timestamp.Timestamp, error) {
	var wm timestamp.Timestamp
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, wm, nil
	}
	if err != nil {
		return 0, wm, err
	}
	keys := 0
	var states []vstore.KeyState
	_, _, err = validPrefix(buf, func(payload []byte) error {
		// Fresh message per page: the store retains the imported value
		// slices, so they must not share DecodeInto's recycled buffers.
		dec := &message.Message{}
		if err := message.DecodeInto(dec, payload); err != nil {
			return fmt.Errorf("wal: %s: %w", path, err)
		}
		if dec.Type != message.TypeWALSnapshot {
			return fmt.Errorf("wal: %s: unexpected record type %v", path, dec.Type)
		}
		states = states[:0]
		for i := range dec.State {
			ks := &dec.State[i]
			states = append(states, vstore.KeyState{
				Key: ks.Key, Value: ks.Value, WTS: ks.WTS, RTS: ks.RTS,
			})
			if wm.Less(ks.WTS) {
				wm = ks.WTS
			}
			if wm.Less(ks.RTS) {
				wm = ks.RTS
			}
		}
		vs.ImportState(states)
		keys += len(states)
		return nil
	})
	return keys, wm, err
}

// Log returns core c's write-ahead log.
func (s *Store) Log(c int) *Log { return s.logs[c] }

// Cores returns the number of per-core logs.
func (s *Store) Cores() int { return len(s.logs) }

// Dir returns the durability directory root.
func (s *Store) Dir() string { return s.dir }

// Snapshot serializes vs's committed state to a new snapshot file and
// truncates the logs behind it. The protocol, in crash-safe order:
//
//  1. Mark: flush + rotate every core's log to a fresh segment. Every record
//     a mark flushes into a pre-mark segment has already had its effects
//     applied to the store (AppendCommit holds the record in the pending
//     buffer until the apply hook has run, and the SyncAlways path applies
//     before releasing the writer lock the mark needs), so the step-2 export
//     is guaranteed to see it: truncating pre-mark segments in step 4 never
//     deletes a record's only copy. The export being live also means records
//     committed AFTER the mark may land in the snapshot — fine, replaying
//     their post-mark frames over it is idempotent.
//  2. Export every vstore shard into CRC-framed TypeWALSnapshot pages,
//     written to a temp file, fsynced, renamed into place, dir fsynced.
//  3. Atomically replace the MANIFEST (temp + rename + dir fsync). This is
//     the commit point of the snapshot.
//  4. Garbage-collect: delete superseded snapshot files and every whole
//     log segment below each core's mark.
//
// A crash at any point leaves a directory Open recovers from: before 3 the
// old manifest still rules (orphan temp/snapshot files are GC'd later);
// after 3 the new snapshot rules and stale segments merely replay as no-ops.
func (s *Store) Snapshot(vs *vstore.Store) error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()

	marks := make([]uint64, len(s.logs))
	for i, l := range s.logs {
		m, err := l.MarkSnapshot()
		if err != nil {
			return err
		}
		marks[i] = m
	}

	seq := s.snapSeq + 1
	name := snapshotName(seq)
	tmp := filepath.Join(s.dir, name+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	var buf []byte
	page := &message.Message{Type: message.TypeWALSnapshot}
	for shard := 0; shard < vs.NumShards(); shard++ {
		exported := vs.ExportShard(shard)
		if len(exported) == 0 {
			continue
		}
		page.Seq = uint64(shard)
		page.State = page.State[:0]
		for i := range exported {
			ks := &exported[i]
			page.State = append(page.State, message.KeyState{
				Key: ks.Key, Value: ks.Value, WTS: ks.WTS, RTS: ks.RTS,
			})
		}
		buf = appendFrame(buf[:0], page)
		if _, err := f.Write(buf); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := renameAndSyncDir(tmp, filepath.Join(s.dir, name), s.dir); err != nil {
		return err
	}

	// Commit point: publish the manifest.
	mb, err := json.Marshal(manifest{Snapshot: name, Seq: seq})
	if err != nil {
		return err
	}
	mtmp := filepath.Join(s.dir, manifestName+".tmp")
	if err := writeFileSync(mtmp, mb); err != nil {
		return err
	}
	if err := renameAndSyncDir(mtmp, filepath.Join(s.dir, manifestName), s.dir); err != nil {
		return err
	}
	s.snapSeq = seq

	// GC old snapshots (and orphaned temp files) and truncate the logs.
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		n := e.Name()
		if n == name || n == manifestName || e.IsDir() {
			continue
		}
		if strings.HasPrefix(n, "snapshot-") {
			os.Remove(filepath.Join(s.dir, n))
		}
	}
	for i, l := range s.logs {
		if err := l.TruncateBefore(marks[i]); err != nil {
			return err
		}
	}
	return nil
}

// writeFileSync writes data to path and fsyncs it.
func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// renameAndSyncDir renames old to new and fsyncs the containing directory so
// the rename itself is durable.
func renameAndSyncDir(oldPath, newPath, dir string) error {
	if err := os.Rename(oldPath, newPath); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Directory fsync is best-effort on platforms that reject it.
	d.Sync()
	return d.Close()
}

// StartSnapshotter begins periodic snapshots of vs every SnapshotInterval.
// It is a no-op if already started or if the interval is negative.
func (s *Store) StartSnapshotter(vs *vstore.Store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.snapStop != nil || s.opts.SnapshotInterval < 0 {
		return
	}
	s.snapStop = make(chan struct{})
	s.snapDone = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(s.opts.SnapshotInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				// Snapshot failures are not fatal: the logs keep growing and
				// the next tick retries.
				s.Snapshot(vs)
			}
		}
	}(s.snapStop, s.snapDone)
}

// stopSnapshotter stops the periodic snapshotter, if running.
func (s *Store) stopSnapshotter() {
	s.mu.Lock()
	stop, done := s.snapStop, s.snapDone
	s.snapStop, s.snapDone = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Flush forces every core's pending records to disk (write + fsync).
func (s *Store) Flush() error {
	var first error
	for _, l := range s.logs {
		if err := l.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close gracefully shuts the store down: stop the snapshotter, then flush +
// fsync + close every log. Safe to call more than once.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.stopSnapshotter()
	var first error
	for _, l := range s.logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.ownSched != nil {
		s.ownSched.Stop()
	}
	return first
}

// Crash simulates a process crash: pending buffers are dropped and files
// closed without fsync. See Log.Crash for the fidelity boundary.
func (s *Store) Crash() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.stopSnapshotter()
	for _, l := range s.logs {
		l.Crash()
	}
	if s.ownSched != nil {
		s.ownSched.Stop()
	}
}

// Stats aggregates the write counters of every core's log.
func (s *Store) Stats() Stats {
	var out Stats
	for _, l := range s.logs {
		st := l.Stats()
		out.Appends += st.Appends
		out.Syncs += st.Syncs
		out.BytesWritten += st.BytesWritten
		out.Segments += st.Segments
		out.Failures += st.Failures
	}
	return out
}

// Err returns the most recent IO error any core's log has hit, or nil if the
// store has never failed a write, fsync, or rotation. Sticky — see Log.Err.
func (s *Store) Err() error {
	for _, l := range s.logs {
		if err := l.Err(); err != nil {
			return err
		}
	}
	return nil
}
