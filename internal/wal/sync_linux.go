//go:build linux

package wal

import (
	"os"
	"syscall"
)

// fileSync makes f's appended data durable. On linux fdatasync suffices for
// a WAL: it flushes the data blocks and the size-extending metadata a replay
// needs, while skipping the timestamp-only inode updates a full fsync would
// journal on every group commit.
func fileSync(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if err != syscall.EINTR {
			return err
		}
	}
}
