// Package wal is Meerkat's durability subsystem: a zero-coordination-
// principle-compliant persistence layer in which every replica core appends
// commit records to its own write-ahead log — no shared log, the same
// partitioning argument as the in-memory trecord — while a group-commit
// stage batches fsyncs off the hot path and a snapshotter periodically
// serializes the versioned store and truncates the logs behind it.
//
// Layout on disk, per replica:
//
//	<dir>/
//	  MANIFEST                  current snapshot pointer (JSON, atomic rename)
//	  snapshot-<seq>.snap       CRC-framed vstore snapshot pages
//	  core-<id>/seg-<n>.wal     CRC-framed commit records, one dir per core
//
// Every file is a sequence of frames:
//
//	[u32 payload length][u32 CRC-32C of payload][payload]
//
// where the payload is the pooled internal/message binary encoding of a
// Message (TypeWALRecord in logs, TypeWALSnapshot in snapshot files). Replay
// consumes the longest valid prefix: a frame whose length overruns the file
// or whose checksum mismatches ends replay cleanly — the torn tail a crash
// mid-write leaves behind — and reopening for append truncates the tail so
// the log never accumulates garbage between valid records.
//
// Crash-restart recovery replays the local snapshot plus logs (commit
// records are idempotent: version installs follow the Thomas write rule and
// rts advancement is monotone) and reports a watermark, so the caller can
// fall back to the existing epoch-change state transfer for just the delta.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"meerkat/internal/message"
	"meerkat/internal/timestamp"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy uint8

const (
	// SyncBatch (default) buffers appends and lets the group-commit
	// goroutine write+fsync them every GroupCommitInterval — commit
	// acknowledgement is decoupled from disk latency, bounded data loss on
	// a whole-machine crash.
	SyncBatch SyncPolicy = iota
	// SyncNone never fsyncs (the OS flushes at its leisure). Survives
	// process crashes, not machine crashes.
	SyncNone
	// SyncAlways writes and fsyncs inside every append, before the commit
	// is applied to the store — full single-replica durability, at disk
	// latency on the commit path.
	SyncAlways
)

// String names the policy as accepted by command-line flags.
func (p SyncPolicy) String() string {
	switch p {
	case SyncBatch:
		return "batch"
	case SyncNone:
		return "none"
	case SyncAlways:
		return "always"
	}
	return fmt.Sprintf("sync(%d)", uint8(p))
}

// ParseSyncPolicy parses "none", "batch", or "always".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "none":
		return SyncNone, nil
	case "batch", "":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	}
	return SyncBatch, fmt.Errorf("wal: unknown sync policy %q (want none|batch|always)", s)
}

// Options tunes a Store and its per-core logs. The zero value applies the
// documented defaults.
type Options struct {
	// Sync is the fsync policy. Default SyncBatch.
	Sync SyncPolicy
	// GroupCommitInterval is the SyncBatch fsync cadence (also the write
	// drain cadence under SyncNone). Default 2ms.
	GroupCommitInterval time.Duration
	// Scheduler, when set, drives group commit for every log opened with
	// these options instead of a private per-store scheduler. Sharing one
	// scheduler across the stores that live on the same filesystem batches
	// their fsyncs into one journal commit per tick (see Scheduler). The
	// caller keeps ownership and must Stop it after the stores close.
	Scheduler *Scheduler
	// SnapshotInterval is how often Store.StartSnapshotter serializes the
	// versioned store and truncates logs behind it. Default 30s.
	SnapshotInterval time.Duration
	// MaxSegmentBytes rotates a core's active log segment once it exceeds
	// this size; whole segments behind the latest snapshot are deleted at
	// truncation. Default 64 MiB.
	MaxSegmentBytes int64
}

func (o *Options) fill() {
	if o.GroupCommitInterval == 0 {
		o.GroupCommitInterval = 2 * time.Millisecond
	}
	if o.SnapshotInterval == 0 {
		o.SnapshotInterval = 30 * time.Second
	}
	if o.MaxSegmentBytes == 0 {
		o.MaxSegmentBytes = 64 << 20
	}
}

// castagnoli is the CRC-32C table used for frame checksums (hardware-
// accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameHeader is the per-frame overhead: u32 payload length + u32 CRC-32C.
const frameHeader = 8

// flushHighWater is the pending-buffer size past which an append kicks the
// group-commit scheduler instead of waiting for its next tick. It is a
// memory backstop for when the disk falls behind the append rate, so it is
// sized to a few ticks' worth of records under heavy load, not to fire on
// every burst (each early kick is an extra journal commit).
const flushHighWater = 256 << 10

// maxRetainedBuffer bounds the capacity a drained pending buffer may carry
// back for reuse, so one burst does not pin memory forever.
const maxRetainedBuffer = 4 << 20

// Scheduler is the group-commit driver for a set of logs: one goroutine
// that, every GroupCommitInterval, makes two passes over the registered
// logs — first writing every pending buffer to its file, then fsyncing the
// dirty files back-to-back. The two-pass order is what makes per-core logs
// affordable on one filesystem: the first fsync's journal commit already
// carries the data just written to every other log, so the remaining fsyncs
// find almost nothing left to flush. Independent per-log fsync loops (the
// previous design) each paid a full journal commit — with R replicas × C
// cores on one disk that is R·C commits per tick, and the resulting
// journal-commit storm starves the CPU and collapses goodput long before
// the commit path ever waits on a lock.
//
// A store with no Options.Scheduler gets a private one (its cores still
// batch with each other); a cluster hosting several replicas in one process
// should share a single scheduler across them.
type Scheduler struct {
	interval time.Duration

	mu      sync.Mutex
	logs    []*Log
	scratch []*Log // reused snapshot of logs for lock-free passes

	kickCh   chan struct{}
	stopCh   chan struct{}
	doneCh   chan struct{}
	stopOnce sync.Once
}

// NewScheduler starts a group-commit scheduler ticking every interval
// (default 2ms). Stop it after every log registered with it has closed.
func NewScheduler(interval time.Duration) *Scheduler {
	if interval <= 0 {
		interval = 2 * time.Millisecond
	}
	s := &Scheduler{
		interval: interval,
		kickCh:   make(chan struct{}, 1),
		stopCh:   make(chan struct{}),
		doneCh:   make(chan struct{}),
	}
	go s.run()
	return s
}

func (s *Scheduler) register(l *Log) {
	s.mu.Lock()
	s.logs = append(s.logs, l)
	s.mu.Unlock()
}

func (s *Scheduler) unregister(l *Log) {
	s.mu.Lock()
	for i, o := range s.logs {
		if o == l {
			s.logs = append(s.logs[:i], s.logs[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// kick wakes the scheduler ahead of its tick (high-water backstop).
func (s *Scheduler) kick() {
	select {
	case s.kickCh <- struct{}{}:
	default:
	}
}

// run is the group-commit goroutine: write pass, then sync pass.
func (s *Scheduler) run() {
	defer close(s.doneCh)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
		case <-s.kickCh:
		}
		s.mu.Lock()
		logs := append(s.scratch[:0], s.logs...)
		s.mu.Unlock()
		for _, l := range logs {
			l.flush(false)
		}
		for _, l := range logs {
			if l.opts.Sync == SyncBatch {
				l.syncOnly()
			}
		}
		s.mu.Lock()
		s.scratch = logs[:0]
		s.mu.Unlock()
	}
}

// Stop shuts the scheduler goroutine down. Pending records are not flushed —
// close the logs first (Log.Close flushes and fsyncs on its own).
func (s *Scheduler) Stop() {
	s.stopOnce.Do(func() { close(s.stopCh) })
	<-s.doneCh
}

// appendFrame appends one CRC frame carrying the encoding of m to buf.
func appendFrame(buf []byte, m *message.Message) []byte {
	start := len(buf)
	var hdr [frameHeader]byte
	buf = append(buf, hdr[:]...)
	buf = message.Encode(buf, m)
	payload := buf[start+frameHeader:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// validPrefix walks the frames of buf, calling fn for each valid payload,
// and returns the byte length of the longest valid prefix plus whether the
// walk ended at a torn/corrupt frame (rather than exactly at EOF). fn errors
// abort the walk and are returned verbatim.
func validPrefix(buf []byte, fn func(payload []byte) error) (n int64, torn bool, err error) {
	off := 0
	for off < len(buf) {
		if off+frameHeader > len(buf) {
			return int64(off), true, nil
		}
		// The length is bounds-checked in uint64 space: on 32-bit platforms a
		// corrupt length >= 2^31 must end replay as a torn tail, not convert
		// to a negative int and slip past the check into a slicing panic.
		ln64 := uint64(binary.LittleEndian.Uint32(buf[off:]))
		crc := binary.LittleEndian.Uint32(buf[off+4:])
		if ln64 == 0 || ln64 > uint64(len(buf)-off-frameHeader) {
			// Zero-length frames are invalid by construction (an empty
			// payload cannot decode), which also rejects preallocated
			// zero regions.
			return int64(off), true, nil
		}
		ln := int(ln64)
		payload := buf[off+frameHeader : off+frameHeader+ln]
		if crc32.Checksum(payload, castagnoli) != crc {
			return int64(off), true, nil
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return int64(off), false, err
			}
		}
		off += frameHeader + ln
	}
	return int64(off), false, nil
}

// Stats is a point-in-time aggregate of a log's (or a whole Store's) write
// activity. FsyncsPerTxn in benchmarks is Syncs / committed transactions.
// A non-zero Failures means disk IO has failed at least once: buffered
// records are retained and retried, but durability is degraded until the
// count stops advancing (see Log.Err for the latest error).
type Stats struct {
	Appends      uint64 // records appended
	Syncs        uint64 // fsync calls issued
	BytesWritten uint64 // bytes handed to the file
	Segments     uint64 // segment rotations (incl. snapshot marks)
	Failures     uint64 // write/fsync/rotate errors (sticky signal, see Err)
}

// Log is one core's append-only segmented log. Appends come from the core's
// delivery goroutine (plus the cold preload path); writes, fsyncs, rotation,
// and truncation are serialized by an internal writer lock, so the group-
// commit goroutine and snapshotter never block an append for longer than a
// buffer swap.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex // guards pending, scratch, closed, apply ordering
	pending []byte
	scratch message.Message
	closed  bool

	// apply, when set (SetApply), is invoked by AppendCommit to install the
	// record's effects in the versioned store, atomically with the append
	// with respect to the group-commit drain. This pairing is what makes
	// snapshot truncation safe: a record can never sit in a pre-snapshot-mark
	// segment with its effects not yet visible to the snapshot's export.
	apply func(txn *message.Txn, ts timestamp.Timestamp)

	wmu   sync.Mutex // serializes file IO: write, sync, rotate, truncate
	f     *os.File
	seg   uint64 // active segment number
	size  int64  // active segment size
	dirty bool   // bytes written since last fsync
	spare []byte // drained buffer kept for reuse (wmu)

	appends  atomic.Uint64
	syncs    atomic.Uint64
	written  atomic.Uint64
	rotates  atomic.Uint64
	failures atomic.Uint64

	errMu   sync.Mutex
	lastErr error // latest IO failure (sticky until read via Err)

	sched    *Scheduler
	ownSched bool // the log created sched and must stop it on Close/Crash
}

// segName formats a segment file name; segment numbers start at 1.
func segName(n uint64) string { return fmt.Sprintf("seg-%08d.wal", n) }

// parseSeg inverts segName; ok is false for foreign files.
func parseSeg(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal"), 10, 64)
	if err != nil || n == 0 {
		return 0, false
	}
	return n, true
}

// segments lists the segment numbers present in dir, ascending.
func segments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, e := range ents {
		if n, ok := parseSeg(e.Name()); ok {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// ReplayStats reports what openLog recovered from disk.
type ReplayStats struct {
	Records   int                 // valid commit records replayed
	Torn      bool                // replay ended at a torn/corrupt frame
	Watermark timestamp.Timestamp // max commit timestamp replayed
}

// openLog opens (creating if needed) the log in dir, replays every valid
// record through apply in append order, truncates any torn tail, and leaves
// the log positioned for appending. Segments after a torn frame are
// discarded: a record may never be replayed while an earlier one is lost.
func openLog(dir string, opts Options, apply func(m *message.Message) error) (*Log, ReplayStats, error) {
	opts.fill()
	var stats ReplayStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, stats, err
	}
	segs, err := segments(dir)
	if err != nil {
		return nil, stats, err
	}

	l := &Log{dir: dir, opts: opts}
	if opts.Scheduler != nil {
		l.sched = opts.Scheduler
	} else {
		l.sched = NewScheduler(opts.GroupCommitInterval)
		l.ownSched = true
	}

	active := uint64(1)
	activeSize := int64(0)
	for i, seg := range segs {
		path := filepath.Join(dir, segName(seg))
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, stats, err
		}
		n, torn, err := validPrefix(buf, func(payload []byte) error {
			// A fresh message per frame: apply retains the decoded value
			// slices (replay loads them into the store), and DecodeInto
			// reuses buffer capacity across calls on a recycled target.
			dec := &message.Message{}
			if err := message.DecodeInto(dec, payload); err != nil {
				return fmt.Errorf("wal: %s: %w", path, err)
			}
			if dec.Type != message.TypeWALRecord {
				return fmt.Errorf("wal: %s: unexpected record type %v", path, dec.Type)
			}
			if err := apply(dec); err != nil {
				return err
			}
			stats.Records++
			if stats.Watermark.Less(dec.TS) {
				stats.Watermark = dec.TS
			}
			return nil
		})
		if err != nil {
			return nil, stats, err
		}
		active, activeSize = seg, n
		if torn {
			stats.Torn = true
			if err := os.Truncate(path, n); err != nil {
				return nil, stats, err
			}
			// Later segments would replay records past a lost one; drop
			// them so the log stays a valid prefix of history.
			for _, later := range segs[i+1:] {
				if err := os.Remove(filepath.Join(dir, segName(later))); err != nil {
					return nil, stats, err
				}
			}
			break
		}
	}

	f, err := os.OpenFile(filepath.Join(dir, segName(active)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, stats, err
	}
	l.f, l.seg, l.size = f, active, activeSize
	l.sched.register(l)
	return l, stats, nil
}

// SetApply registers the function AppendCommit uses to install a record's
// effects in the versioned store. Set it once, before the first append (the
// replica wires it at construction); a nil apply leaves AppendCommit as a
// pure append, for tests and tools that replay by hand.
func (l *Log) SetApply(fn func(txn *message.Txn, ts timestamp.Timestamp)) {
	l.mu.Lock()
	l.apply = fn
	l.mu.Unlock()
}

// AppendCommit appends one committed transaction's record — its identity,
// read set (for rts advancement on replay), write set, and commit timestamp —
// and, when an apply function is registered, installs the record's effects in
// the versioned store before returning. Under SyncBatch/SyncNone it returns
// after buffering (zero allocations steady-state); under SyncAlways only once
// the record is fsynced (write-ahead order: durable before observable).
//
// The append and the apply are atomic with respect to the group-commit drain
// and the snapshot mark: a record is never moved into a segment the snapshot
// protocol may truncate while its effects are still invisible to the store
// export. Without this pairing a snapshot could flush the record into a
// pre-mark segment, export the store before the apply lands, and then
// truncate the record's only durable copy — permanently losing a committed
// transaction. On IO failure the apply still runs (the in-memory protocol
// must proceed); the error is latched (Err, Stats.Failures) and the frames
// are retained for retry.
func (l *Log) AppendCommit(txn *message.Txn, ts timestamp.Timestamp) {
	if l.opts.Sync == SyncAlways {
		l.appendCommitSync(txn, ts)
		return
	}
	l.mu.Lock()
	appended := false
	if !l.closed {
		l.encodeLocked(txn, ts)
		appended = true
	}
	// Apply inside the same critical section the drain swaps buffers under
	// (see the comment on the apply field). A record arriving after Close
	// is not logged but is still applied, so the store never diverges from
	// the trecord during shutdown races.
	if l.apply != nil {
		l.apply(txn, ts)
	}
	high := len(l.pending) >= flushHighWater
	l.mu.Unlock()
	if appended {
		l.appends.Add(1)
		if high {
			l.kick()
		}
	}
}

// appendCommitSync is the SyncAlways path: encode, write+fsync, then apply,
// all under the writer lock so the snapshot mark (which also takes it) can
// never observe the record on disk with its effects missing from the store.
func (l *Log) appendCommitSync(txn *message.Txn, ts timestamp.Timestamp) {
	l.wmu.Lock()
	l.mu.Lock()
	appended := !l.closed
	if appended {
		l.encodeLocked(txn, ts)
	}
	apply := l.apply // read under mu; invoked below without it (see field doc)
	l.mu.Unlock()
	if appended {
		// Errors are latched by flushWLocked; the commit proceeds regardless
		// (degraded durability is surfaced via Err/Stats, not by stalling
		// the replica).
		l.flushWLocked(true)
	}
	if apply != nil {
		apply(txn, ts)
	}
	l.wmu.Unlock()
	if appended {
		l.appends.Add(1)
	}
}

// encodeLocked frames one commit record into the pending buffer. Caller
// holds l.mu.
func (l *Log) encodeLocked(txn *message.Txn, ts timestamp.Timestamp) {
	l.scratch.Type = message.TypeWALRecord
	l.scratch.Txn.ID = txn.ID
	l.scratch.Txn.ReadSet = txn.ReadSet
	l.scratch.Txn.WriteSet = txn.WriteSet
	l.scratch.Txn.OpSet = txn.OpSet
	l.scratch.TS = ts
	l.pending = appendFrame(l.pending, &l.scratch)
	// Drop the aliases so the log does not pin the transaction's sets
	// until the next append.
	l.scratch.Txn.ReadSet = nil
	l.scratch.Txn.WriteSet = nil
	l.scratch.Txn.OpSet = nil
}

// AppendLoad records a bulk-load install (Cluster.Load bypasses the
// transaction protocol, so its writes need their own durability path).
func (l *Log) AppendLoad(key string, value []byte, ts timestamp.Timestamp) {
	txn := message.Txn{WriteSet: []message.WriteSetEntry{{Key: key, Value: value}}}
	l.AppendCommit(&txn, ts)
}

// kick wakes the group-commit scheduler ahead of its tick.
func (l *Log) kick() { l.sched.kick() }

// syncOnly fsyncs the active segment if bytes were written since the last
// sync — the scheduler's second pass, after every registered log's pending
// buffer has been written.
func (l *Log) syncOnly() {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if l.f == nil || !l.dirty {
		return
	}
	if err := fileSync(l.f); err != nil {
		// The frames are in the file (dirty stays true); the next syncing
		// pass retries.
		l.fail(err)
		return
	}
	l.dirty = false
	l.syncs.Add(1)
}

// flush drains the pending buffer into the active segment, optionally
// fsyncing, and rotates the segment when it exceeds MaxSegmentBytes.
func (l *Log) flush(sync bool) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	return l.flushWLocked(sync)
}

// flushWLocked is flush with l.wmu held. IO failures never drop records:
// unwritten bytes are requeued ahead of newer appends (the next tick — or an
// explicit Flush — retries) and the error is latched so callers that ignore
// the return value still leave a sticky, observable signal (Err,
// Stats.Failures) instead of silently acknowledging lost durability.
func (l *Log) flushWLocked(sync bool) error {
	l.mu.Lock()
	buf := l.pending
	if len(buf) > 0 {
		// Swap in the spare so appends never wait on IO. An empty tick
		// must NOT swap: it would steal the pending buffer's capacity and
		// force the next append to reallocate it.
		l.pending = l.spare[:0]
		l.spare = nil
	} else {
		buf = nil
	}
	l.mu.Unlock()

	if l.f == nil {
		// Closed, or a failed rotation left no active segment: keep the
		// drained records queued so a later flush can still write them.
		l.requeue(buf, 0)
		return os.ErrClosed
	}
	if len(buf) > 0 {
		n, werr := l.f.Write(buf)
		if n > 0 {
			l.size += int64(n)
			l.written.Add(uint64(n))
			l.dirty = true
		}
		if werr != nil {
			// Requeue the unwritten tail. A short write may end mid-frame;
			// the segment is append-only, so the requeued bytes complete
			// that frame on the next successful flush.
			l.requeue(buf, n)
			l.fail(werr)
			return werr
		}
	}
	var err error
	if sync && l.dirty {
		if serr := fileSync(l.f); serr != nil {
			// The frames are in the file (dirty stays true); the next
			// syncing flush retries the fsync.
			l.fail(serr)
			err = serr
		} else {
			l.dirty = false
			l.syncs.Add(1)
		}
	}
	if buf != nil && cap(buf) <= maxRetainedBuffer {
		l.spare = buf[:0]
	}
	if err == nil && l.size >= l.opts.MaxSegmentBytes {
		if err = l.rotateWLocked(); err != nil {
			l.fail(err)
		}
	}
	return err
}

// requeue puts the unwritten suffix buf[n:] of a drained buffer back at the
// FRONT of pending, preserving record order relative to appends that arrived
// during the failed flush. Error path only; the copy is deliberate (buf may
// be retained as the spare).
func (l *Log) requeue(buf []byte, n int) {
	if n >= len(buf) {
		return
	}
	rest := buf[n:]
	l.mu.Lock()
	np := make([]byte, 0, len(rest)+len(l.pending))
	np = append(np, rest...)
	np = append(np, l.pending...)
	l.pending = np
	l.mu.Unlock()
}

// fail latches an IO error: Failures counts every occurrence, lastErr keeps
// the most recent one for Err.
func (l *Log) fail(err error) {
	l.failures.Add(1)
	l.errMu.Lock()
	l.lastErr = err
	l.errMu.Unlock()
}

// Err returns the most recent IO error the log has hit (write, fsync, or
// rotate), or nil if none ever occurred. The error is sticky: a log that
// failed once stays reportable even after later flushes succeed, because
// records acknowledged during the failure window may not be durable.
func (l *Log) Err() error {
	l.errMu.Lock()
	defer l.errMu.Unlock()
	return l.lastErr
}

// rotateWLocked seals the active segment (fsynced unless SyncNone) and opens
// the next one. Caller holds l.wmu.
func (l *Log) rotateWLocked() error {
	if l.opts.Sync != SyncNone && l.dirty {
		if err := fileSync(l.f); err != nil {
			return err
		}
		l.dirty = false
		l.syncs.Add(1)
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.seg++
	f, err := os.OpenFile(filepath.Join(l.dir, segName(l.seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.f = nil
		return err
	}
	l.f, l.size = f, 0
	l.rotates.Add(1)
	return nil
}

// MarkSnapshot flushes pending records and rotates to a fresh segment,
// returning its number: the first segment replay must consume after the
// snapshot being taken. Segments below it are deletable once the snapshot
// is durable (TruncateBefore).
func (l *Log) MarkSnapshot() (uint64, error) {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if err := l.flushWLocked(l.opts.Sync != SyncNone); err != nil {
		return l.seg, err
	}
	if l.size == 0 {
		return l.seg, nil // active segment is empty; it is its own mark
	}
	if err := l.rotateWLocked(); err != nil {
		return l.seg, err
	}
	return l.seg, nil
}

// TruncateBefore deletes whole segments numbered below seg — the log-
// truncation half of the snapshot protocol.
func (l *Log) TruncateBefore(seg uint64) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	segs, err := segments(l.dir)
	if err != nil {
		return err
	}
	for _, n := range segs {
		if n >= seg {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, segName(n))); err != nil {
			return err
		}
	}
	return nil
}

// Flush forces pending records to disk (write + fsync) regardless of policy.
func (l *Log) Flush() error { return l.flush(true) }

// Close gracefully shuts the log down: detach from the group-commit
// scheduler, flush and fsync everything pending, close the file.
func (l *Log) Close() error {
	l.stopRun()
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	err := l.flush(true)
	l.wmu.Lock()
	if l.f != nil {
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	l.wmu.Unlock()
	return err
}

// Crash simulates a process crash: the user-space pending buffer is dropped
// (as it would be) and the file is closed without fsync. Bytes already
// written reach disk at the OS's leisure — the fidelity boundary of an
// in-process simulation.
func (l *Log) Crash() {
	l.stopRun()
	l.mu.Lock()
	l.closed = true
	l.pending = nil
	l.mu.Unlock()
	l.wmu.Lock()
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	l.wmu.Unlock()
}

func (l *Log) stopRun() {
	l.sched.unregister(l)
	if l.ownSched {
		l.sched.Stop()
	}
}

// Stats returns the log's cumulative write counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:      l.appends.Load(),
		Syncs:        l.syncs.Load(),
		BytesWritten: l.written.Load(),
		Segments:     l.rotates.Load(),
		Failures:     l.failures.Load(),
	}
}
