package wal

import (
	"math/rand"
	"testing"

	"meerkat/internal/message"
	"meerkat/internal/timestamp"
)

// randomRecord builds a WAL commit record with fuzzer-chosen set sizes,
// mirroring the internal/message fuzz-harness pattern.
func randomRecord(rng *rand.Rand) *message.Message {
	rstr := func() string {
		b := make([]byte, rng.Intn(12))
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return string(b)
	}
	rbytes := func() []byte {
		if rng.Intn(3) == 0 {
			return nil
		}
		b := make([]byte, 1+rng.Intn(16))
		rng.Read(b)
		return b
	}
	rts := func() timestamp.Timestamp {
		return timestamp.Timestamp{Time: rng.Int63n(1 << 30), ClientID: uint64(rng.Intn(64))}
	}
	m := &message.Message{
		Type: message.TypeWALRecord,
		TS:   rts(),
		Txn:  message.Txn{ID: timestamp.TxnID{Seq: rng.Uint64() % 1000, ClientID: uint64(rng.Intn(16))}},
	}
	for i := rng.Intn(4); i > 0; i-- {
		m.Txn.ReadSet = append(m.Txn.ReadSet, message.ReadSetEntry{Key: rstr(), WTS: rts()})
	}
	for i := rng.Intn(4); i > 0; i-- {
		m.Txn.WriteSet = append(m.Txn.WriteSet, message.WriteSetEntry{Key: rstr(), Value: rbytes()})
	}
	return m
}

// randomFrames concatenates n random framed records.
func randomFrames(rng *rand.Rand, n int) []byte {
	var buf []byte
	for i := 0; i < n; i++ {
		buf = appendFrame(buf, randomRecord(rng))
	}
	return buf
}

// FuzzValidPrefix is the log-hardening fuzz target: arbitrary bytes must
// never panic the frame walker, the reported prefix must re-walk as fully
// valid, and every payload it yields must decode.
func FuzzValidPrefix(f *testing.F) {
	rng := rand.New(rand.NewSource(5))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}) // zero-length frame: invalid by fiat
	f.Add(randomFrames(rng, 1))
	f.Add(randomFrames(rng, 3))
	f.Add(randomFrames(rng, 5)[:20]) // torn mid-frame
	corrupt := randomFrames(rng, 2)
	corrupt[len(corrupt)/2] ^= 0xFF
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := &message.Message{}
		n, torn, err := validPrefix(data, func(payload []byte) error {
			// Frames only ever carry codec output, so a CRC-valid payload
			// from the fuzzer may still fail to decode — that must surface
			// as an error, never a panic.
			return message.DecodeInto(dec, payload)
		})
		if err != nil {
			return // decode rejected a CRC-colliding payload; fine
		}
		if n < 0 || n > int64(len(data)) {
			t.Fatalf("prefix length %d out of range [0,%d]", n, len(data))
		}
		if !torn && n != int64(len(data)) {
			t.Fatalf("not torn but prefix %d != len %d", n, len(data))
		}
		// The valid prefix must re-walk cleanly end to end.
		n2, torn2, err := validPrefix(data[:n], nil)
		if err != nil || torn2 || n2 != n {
			t.Fatalf("re-walk of valid prefix: n=%d torn=%v err=%v, want n=%d torn=false", n2, torn2, err, n)
		}
	})
}

// FuzzFrameRoundTrip frames fuzz-built records and asserts the walker
// recovers every one of them exactly, under arbitrary torn-tail truncation.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(int64(1), 3, 10_000)
	f.Add(int64(2), 1, 4)
	f.Add(int64(3), 8, 0)
	f.Fuzz(func(t *testing.T, seed int64, n int, cut int) {
		if n < 0 || n > 32 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		var want []*message.Message
		var buf []byte
		offsets := []int{0}
		for i := 0; i < n; i++ {
			m := randomRecord(rng)
			want = append(want, m)
			buf = appendFrame(buf, m)
			offsets = append(offsets, len(buf))
		}
		if cut < 0 || cut > len(buf) {
			cut = len(buf)
		}
		// Every record whose frame ends at or before the cut must replay.
		complete := 0
		for complete < n && offsets[complete+1] <= cut {
			complete++
		}
		got := 0
		dec := &message.Message{}
		_, _, err := validPrefix(buf[:cut], func(payload []byte) error {
			if err := message.DecodeInto(dec, payload); err != nil {
				t.Fatalf("record %d failed decode: %v", got, err)
			}
			if dec.Txn.ID != want[got].Txn.ID || dec.TS != want[got].TS {
				t.Fatalf("record %d: got %v@%v want %v@%v",
					got, dec.Txn.ID, dec.TS, want[got].Txn.ID, want[got].TS)
			}
			got++
			return nil
		})
		if err != nil {
			t.Fatalf("walk error: %v", err)
		}
		if got != complete {
			t.Fatalf("replayed %d records from a %d-byte cut, want %d", got, cut, complete)
		}
	})
}
