//go:build !linux

package wal

import "os"

// fileSync makes f's appended data durable (portable full fsync).
func fileSync(f *os.File) error { return f.Sync() }
