package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealMonotonicNonDecreasing(t *testing.T) {
	c := NewReal()
	prev := c.Now()
	for i := 0; i < 1000; i++ {
		now := c.Now()
		if now < prev {
			t.Fatalf("clock went backwards: %d -> %d", prev, now)
		}
		prev = now
	}
}

func TestRealAdvances(t *testing.T) {
	c := NewReal()
	a := c.Now()
	time.Sleep(2 * time.Millisecond)
	b := c.Now()
	if b-a < int64(time.Millisecond) {
		t.Fatalf("clock advanced only %dns over a 2ms sleep", b-a)
	}
}

func TestSkewedOffset(t *testing.T) {
	m := NewManual(1000)
	s := NewSkewed(m, 500, 0)
	if got := s.Now(); got != 1500 {
		t.Fatalf("Now() = %d, want 1500", got)
	}
	m.Advance(100)
	if got := s.Now(); got != 1600 {
		t.Fatalf("Now() = %d, want 1600", got)
	}
}

func TestSkewedNegativeOffset(t *testing.T) {
	m := NewManual(1000)
	s := NewSkewed(m, -300, 0)
	if got := s.Now(); got != 700 {
		t.Fatalf("Now() = %d, want 700", got)
	}
}

func TestSkewedDrift(t *testing.T) {
	m := NewManual(0)
	s := NewSkewed(m, 0, 10) // gains 10ns per second
	m.Advance(int64(3 * time.Second))
	want := int64(3*time.Second) + 30
	if got := s.Now(); got != want {
		t.Fatalf("Now() = %d, want %d", got, want)
	}
}

func TestManualSetAndAdvance(t *testing.T) {
	m := NewManual(5)
	if m.Now() != 5 {
		t.Fatal("start wrong")
	}
	if got := m.Advance(10); got != 15 {
		t.Fatalf("Advance returned %d, want 15", got)
	}
	m.Set(3)
	if m.Now() != 3 {
		t.Fatal("Set did not move clock backwards")
	}
}

func TestManualConcurrent(t *testing.T) {
	m := NewManual(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Advance(1)
				_ = m.Now()
			}
		}()
	}
	wg.Wait()
	if m.Now() != 8000 {
		t.Fatalf("Now() = %d, want 8000", m.Now())
	}
}

func TestFuncAdapter(t *testing.T) {
	n := int64(0)
	c := Func(func() int64 { n++; return n })
	if c.Now() != 1 || c.Now() != 2 {
		t.Fatal("Func adapter did not call through")
	}
}
