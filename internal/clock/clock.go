// Package clock provides the loosely synchronized clocks Meerkat clients use
// to propose transaction timestamps.
//
// Meerkat does not require clock synchronization for correctness — only for
// performance (badly skewed clocks make more transactions abort). The paper's
// testbed synchronizes client clocks with PTP; this package substitutes a
// monotonic clock with an injectable static offset and drift rate so tests
// can reproduce both the well-synchronized and the badly skewed regimes.
package clock

import (
	"sync/atomic"
	"time"
)

// Clock supplies local time readings in nanoseconds. Implementations must be
// safe for concurrent use.
type Clock interface {
	// Now returns the current local clock reading in nanoseconds.
	Now() int64
}

// Real is a Clock backed by the machine's monotonic clock.
type Real struct {
	base time.Time
}

// NewReal returns a Clock that reads the machine's monotonic clock, starting
// near zero (readings are offsets from construction time plus wall base).
// Using the wall clock as a base keeps readings comparable across processes
// on the same machine, matching the paper's PTP-synchronized deployment.
func NewReal() *Real {
	return &Real{base: time.Now()}
}

// Now implements Clock.
func (c *Real) Now() int64 {
	// UnixNano of the base plus the monotonic delta since construction: the
	// monotonic reading avoids wall-clock steps, the base keeps processes on
	// one machine loosely aligned.
	return c.base.UnixNano() + int64(time.Since(c.base))
}

// Skewed wraps a Clock with a static offset and a drift rate, simulating a
// client whose clock is out of sync. A drift of d means the skewed clock
// gains d nanoseconds per real second.
type Skewed struct {
	inner  Clock
	offset int64
	drift  int64 // ns gained per second of inner time
	start  int64
}

// NewSkewed returns a clock reading inner.Now() + offset + drift*(elapsed
// seconds). offset and drift may be negative.
func NewSkewed(inner Clock, offset, driftPerSec int64) *Skewed {
	return &Skewed{inner: inner, offset: offset, drift: driftPerSec, start: inner.Now()}
}

// Now implements Clock.
func (c *Skewed) Now() int64 {
	t := c.inner.Now()
	elapsed := t - c.start
	return t + c.offset + (elapsed/int64(time.Second))*c.drift
}

// Manual is a Clock driven entirely by the test: it returns a value that only
// changes when Advance or Set is called. Safe for concurrent use.
type Manual struct {
	now atomic.Int64
}

// NewManual returns a Manual clock starting at start.
func NewManual(start int64) *Manual {
	m := &Manual{}
	m.now.Store(start)
	return m
}

// Now implements Clock.
func (m *Manual) Now() int64 { return m.now.Load() }

// Advance moves the clock forward by d nanoseconds and returns the new
// reading.
func (m *Manual) Advance(d int64) int64 { return m.now.Add(d) }

// Set sets the clock to t, which may move it backwards.
func (m *Manual) Set(t int64) { m.now.Store(t) }

// Func adapts a plain function to the Clock interface.
type Func func() int64

// Now implements Clock.
func (f Func) Now() int64 { return f() }
