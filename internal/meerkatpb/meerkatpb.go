// Package meerkatpb implements Meerkat-PB, the paper's primary-backup
// variant of Meerkat (§6.1): it satisfies disjoint access parallelism but
// not coordination-free execution, isolating the cost of cross-replica
// coordination.
//
// Meerkat-PB shares Meerkat's data structures and concurrency control:
// clients propose timestamps from their own clocks, the trecord is
// partitioned per core, and storage metadata is per key. But only the
// primary runs the concurrency-control checks — clients submit transactions
// to it, and it alone decides which conflicting transactions commit. Each
// backup core is matched to a primary core and processes only that core's
// transactions, so replication adds no shared data structures; because
// committed transactions are timestamp-ordered and conflict-free, backups
// can apply them in any order.
package meerkatpb

import (
	"fmt"
	"sync/atomic"

	"meerkat/internal/message"
	"meerkat/internal/occ"
	"meerkat/internal/timestamp"
	"meerkat/internal/topo"
	"meerkat/internal/transport"
	"meerkat/internal/trecord"
	"meerkat/internal/vstore"
)

// Config parameterizes a Meerkat-PB replica. Replica 0 is the primary.
type Config struct {
	Topo  topo.Topology
	Index int
	Net   transport.Network
	Store *vstore.Store
}

// Replica is one Meerkat-PB node.
type Replica struct {
	cfg     Config
	store   *vstore.Store
	cores   []*core
	stopped atomic.Bool
}

// core is one server thread with its private trecord partition and pending
// table; backup acks return to the primary core that issued the replicate,
// so completion needs no cross-core traffic.
type core struct {
	r  *Replica
	id uint32
	// ep is published atomically: the delivery goroutine may run the
	// handler before Listen returns.
	ep      atomic.Pointer[transport.Endpoint]
	part    *trecord.Partition
	pending map[timestamp.TxnID]*pendingTxn
}

func (c *core) send(dst message.Addr, m *message.Message) {
	if ep := c.ep.Load(); ep != nil {
		(*ep).Send(dst, m)
	}
}

type pendingTxn struct {
	client message.Addr
	txn    message.Txn
	ts     timestamp.Timestamp
	acks   map[uint32]bool
}

// New creates a replica; call Start to bind endpoints.
func New(cfg Config) (*Replica, error) {
	if !cfg.Topo.Validate() || cfg.Topo.Partitions != 1 {
		return nil, fmt.Errorf("meerkatpb: invalid topology %+v", cfg.Topo)
	}
	st := cfg.Store
	if st == nil {
		st = vstore.New(vstore.Config{})
	}
	r := &Replica{cfg: cfg, store: st}
	for c := 0; c < cfg.Topo.Cores; c++ {
		r.cores = append(r.cores, &core{
			r: r, id: uint32(c),
			part:    trecord.NewPartition(),
			pending: make(map[timestamp.TxnID]*pendingTxn),
		})
	}
	return r, nil
}

// Store returns the storage layer for loading and verification.
func (r *Replica) Store() *vstore.Store { return r.store }

// IsPrimary reports whether this replica is the group's primary.
func (r *Replica) IsPrimary() bool { return r.cfg.Index == 0 }

// Start binds one endpoint per core.
func (r *Replica) Start() error {
	for _, c := range r.cores {
		addr := r.cfg.Topo.ReplicaAddr(0, r.cfg.Index, c.id)
		ep, err := r.cfg.Net.Listen(addr, c.handle)
		if err != nil {
			r.Stop()
			return err
		}
		c.ep.Store(&ep)
	}
	return nil
}

// Stop closes the replica's endpoints.
func (r *Replica) Stop() {
	if r.stopped.Swap(true) {
		return
	}
	for _, c := range r.cores {
		if ep := c.ep.Load(); ep != nil {
			(*ep).Close()
		}
	}
}

func (c *core) handle(m *message.Message) {
	switch m.Type {
	case message.TypeRead:
		v, ok := c.r.store.Read(m.Key)
		c.send(m.Src, &message.Message{
			Type: message.TypeReadReply, Key: m.Key, Seq: m.Seq,
			Value: v.Value, TS: v.WTS, OK: ok,
			ReplicaID: uint32(c.r.cfg.Index),
		})
	case message.TypePBSubmit:
		c.handleSubmit(m)
	case message.TypePBReplicate:
		c.handleReplicate(m)
	case message.TypePBAck:
		c.handleAck(m)
	}
}

// handleSubmit runs at the primary: validate at the client's proposed
// timestamp against the core-private record, then replicate committed
// writes to the matched backup cores.
func (c *core) handleSubmit(m *message.Message) {
	if !c.r.IsPrimary() {
		return
	}
	if rec := c.part.Get(m.Txn.ID); rec != nil {
		// A retry. Final: re-reply. In flight: re-replicate.
		if rec.Status.Final() {
			c.send(m.Src, &message.Message{
				Type: message.TypePBReply, TID: m.Txn.ID,
				OK: rec.Status == message.StatusCommitted,
			})
		} else if pt := c.pending[m.Txn.ID]; pt != nil {
			pt.client = m.Src
			c.replicate(pt)
		}
		return
	}

	st := occ.Validate(c.r.store, &m.Txn, m.TS)
	rec, _ := c.part.GetOrCreate(m.Txn.ID)
	rec.Txn = m.Txn
	rec.TS = m.TS
	rec.Registered = st == message.StatusValidatedOK
	if st == message.StatusValidatedAbort {
		rec.Status = message.StatusAborted
		c.send(m.Src, &message.Message{Type: message.TypePBReply, TID: m.Txn.ID, OK: false})
		return
	}
	rec.Status = message.StatusValidatedOK

	pt := &pendingTxn{client: m.Src, txn: m.Txn, ts: m.TS, acks: make(map[uint32]bool)}
	c.pending[m.Txn.ID] = pt
	c.replicate(pt)
}

// replicate ships the transaction's writes to this core's matched backup
// cores.
func (c *core) replicate(pt *pendingTxn) {
	entry := message.LogEntry{TID: pt.txn.ID, TS: pt.ts, WriteSet: pt.txn.WriteSet}
	for b := 1; b < c.r.cfg.Topo.Replicas; b++ {
		c.send(c.r.cfg.Topo.ReplicaAddr(0, b, c.id), &message.Message{
			Type: message.TypePBReplicate, TID: pt.txn.ID,
			Entries: []message.LogEntry{entry},
		})
	}
}

// handleReplicate runs at a backup core: install the timestamped writes.
// Versioned installs commute (Thomas write rule), so no ordering or shared
// state is needed — the matched core applies its primary twin's stream.
func (c *core) handleReplicate(m *message.Message) {
	for i := range m.Entries {
		e := &m.Entries[i]
		for j := range e.WriteSet {
			c.r.store.CommitWrite(e.WriteSet[j].Key, e.WriteSet[j].Value, e.TS)
		}
	}
	c.send(m.Src, &message.Message{
		Type: message.TypePBAck, TID: m.TID, ReplicaID: uint32(c.r.cfg.Index),
	})
}

// handleAck runs at the primary core: after f backups acknowledged, the
// transaction is durable; apply the write phase and release the client.
func (c *core) handleAck(m *message.Message) {
	pt := c.pending[m.TID]
	if pt == nil {
		return
	}
	pt.acks[m.ReplicaID] = true
	if len(pt.acks) < c.r.cfg.Topo.F() {
		return
	}
	delete(c.pending, m.TID)
	if rec := c.part.Get(pt.txn.ID); rec != nil {
		rec.Status = message.StatusCommitted
		rec.Registered = false
	}
	occ.ApplyCommit(c.r.store, &pt.txn, pt.ts)
	c.send(pt.client, &message.Message{Type: message.TypePBReply, TID: pt.txn.ID, OK: true})
}
