package meerkatpb_test

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"meerkat/internal/clock"
	"meerkat/internal/meerkatpb"
	"meerkat/internal/pbclient"
	"meerkat/internal/timestamp"
	"meerkat/internal/topo"
	"meerkat/internal/transport"
)

type cluster struct {
	topo topo.Topology
	net  *transport.Inproc
	reps []*meerkatpb.Replica
	next uint64
}

func newCluster(t *testing.T, cores int) *cluster {
	t.Helper()
	tp := topo.Topology{Partitions: 1, Replicas: 3, Cores: cores}
	c := &cluster{topo: tp, net: transport.NewInproc(transport.InprocConfig{})}
	for i := 0; i < 3; i++ {
		rep, err := meerkatpb.New(meerkatpb.Config{Topo: tp, Index: i, Net: c.net})
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Start(); err != nil {
			t.Fatal(err)
		}
		c.reps = append(c.reps, rep)
	}
	t.Cleanup(func() {
		for _, r := range c.reps {
			r.Stop()
		}
		c.net.Close()
	})
	return c
}

func (c *cluster) load(key, val string) {
	ts := timestamp.Timestamp{Time: 1, ClientID: 0}
	for _, r := range c.reps {
		r.Store().Load(key, []byte(val), ts)
	}
}

func (c *cluster) client(t *testing.T) *pbclient.Client {
	t.Helper()
	c.next++
	cl, err := pbclient.New(pbclient.Config{
		Topo: c.topo, ClientID: c.next, Net: c.net, Clock: clock.NewReal(),
		ClientTimestamps: true,
		Timeout:          50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func TestCommitAndReadBack(t *testing.T) {
	c := newCluster(t, 2)
	cl := c.client(t)

	txn := cl.Begin()
	txn.Write("k", []byte("v1"))
	if ok, err := txn.Commit(); !ok || err != nil {
		t.Fatalf("commit: %v, %v", ok, err)
	}
	txn = cl.Begin()
	v, err := txn.Read("k")
	if err != nil || string(v) != "v1" {
		t.Fatalf("read %q, %v", v, err)
	}
	if ok, err := txn.Commit(); !ok || err != nil {
		t.Fatalf("read txn: %v, %v", ok, err)
	}
}

func TestConflictAborts(t *testing.T) {
	c := newCluster(t, 2)
	c.load("k", "v0")
	cl1, cl2 := c.client(t), c.client(t)

	t1, t2 := cl1.Begin(), cl2.Begin()
	if _, err := t1.Read("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Read("k"); err != nil {
		t.Fatal(err)
	}
	t1.Write("k", []byte("a"))
	t2.Write("k", []byte("b"))
	ok1, _ := t1.Commit()
	ok2, _ := t2.Commit()
	if ok1 && ok2 {
		t.Fatal("both conflicting transactions committed")
	}
}

func TestNoLostUpdates(t *testing.T) {
	c := newCluster(t, 4)
	c.load("ctr", "0")

	var committed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		cl := c.client(t)
		wg.Add(1)
		go func(cl *pbclient.Client) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				for attempt := 0; attempt < 30; attempt++ {
					txn := cl.Begin()
					v, err := txn.Read("ctr")
					if err != nil {
						continue
					}
					n, _ := strconv.Atoi(string(v))
					txn.Write("ctr", []byte(strconv.Itoa(n+1)))
					if ok, err := txn.Commit(); err == nil && ok {
						mu.Lock()
						committed++
						mu.Unlock()
						break
					}
				}
			}
		}(cl)
	}
	wg.Wait()

	v, okv := c.reps[0].Store().Read("ctr")
	if !okv {
		t.Fatal("ctr missing at primary")
	}
	n, _ := strconv.Atoi(string(v.Value))
	if int64(n) != committed {
		t.Fatalf("ctr = %d, committed = %d (lost updates)", n, committed)
	}
	if committed == 0 {
		t.Fatal("nothing committed")
	}
}

func TestBackupsConverge(t *testing.T) {
	c := newCluster(t, 2)
	cl := c.client(t)
	for i := 0; i < 30; i++ {
		txn := cl.Begin()
		txn.Write(fmt.Sprintf("k%d", i%5), []byte(fmt.Sprintf("v%d", i)))
		if ok, err := txn.Commit(); !ok || err != nil {
			t.Fatalf("commit %d: %v %v", i, ok, err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		want, _ := c.reps[0].Store().Read(key)
		for r := 1; r < 3; r++ {
			got, ok := c.reps[r].Store().Read(key)
			if !ok || string(got.Value) != string(want.Value) {
				t.Fatalf("backup %d has %s=%q, primary %q", r, key, got.Value, want.Value)
			}
		}
	}
}

func TestOutOfOrderBackupApply(t *testing.T) {
	// Two transactions on different cores may reach backups in any order;
	// timestamped installs make the result order-free. Verify the final
	// value matches the primary regardless.
	c := newCluster(t, 4)
	c.load("k", "v0")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		cl := c.client(t)
		wg.Add(1)
		go func(cl *pbclient.Client, i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				txn := cl.Begin()
				txn.Write("k", []byte(fmt.Sprintf("c%d-%d", i, j)))
				txn.Commit()
			}
		}(cl, i)
	}
	wg.Wait()
	time.Sleep(50 * time.Millisecond)

	want, _ := c.reps[0].Store().Read("k")
	for r := 1; r < 3; r++ {
		got, _ := c.reps[r].Store().Read("k")
		if string(got.Value) != string(want.Value) || got.WTS != want.WTS {
			t.Fatalf("backup %d: %q@%v, primary %q@%v", r, got.Value, got.WTS, want.Value, want.WTS)
		}
	}
}

func TestReadOnlyTxnAlwaysCommits(t *testing.T) {
	c := newCluster(t, 2)
	c.load("k", "v")
	cl := c.client(t)
	for i := 0; i < 10; i++ {
		txn := cl.Begin()
		if _, err := txn.Read("k"); err != nil {
			t.Fatal(err)
		}
		ok, err := txn.Commit()
		if err != nil || !ok {
			t.Fatalf("read-only txn aborted: %v %v", ok, err)
		}
	}
}
