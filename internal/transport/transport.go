// Package transport delivers protocol messages between nodes and cores.
//
// It provides two implementations of the same interface:
//
//   - Inproc: an in-process network with one delivery queue per (node, core)
//     endpoint, standing in for the paper's eRPC kernel-bypass stack. A send
//     is a direct hand-off into the destination core's queue — no
//     serialization, no syscalls — so per-message cost is low enough to
//     expose application-level coordination bottlenecks, exactly the regime
//     Figure 1 of the paper demonstrates.
//
//   - UDP: a real loopback UDP transport on stdlib net, standing in for the
//     paper's traditional Linux UDP stack. Messages pay full binary
//     serialization and kernel socket costs.
//
// Core-level addressing reproduces the paper's NIC flow steering: the
// coordinator picks a core id for each transaction and every message for
// that transaction is delivered to that core's queue, keeping the trecord
// partition single-core-private.
package transport

import (
	"errors"

	"meerkat/internal/message"
)

// Handler processes one inbound message. For server endpoints the handler
// runs on the endpoint's dedicated delivery goroutine — the analogue of a
// server thread polling its NIC receive queue — so handlers for one core
// never run concurrently with each other.
type Handler func(m *message.Message)

// Outgoing pairs one message with its destination, for batched sends.
type Outgoing struct {
	Dst message.Addr
	M   *message.Message
}

// Endpoint is a bound (node, core) address that can send messages.
type Endpoint interface {
	// Addr returns the endpoint's own address.
	Addr() message.Addr
	// Send delivers m to the endpoint at dst, asynchronously and
	// unreliably: the message may be dropped, delayed, or reordered, per
	// the network's fault configuration (or the whims of a real kernel).
	// The transport stamps m.Src before delivery. Callers must not mutate
	// m after Send returns. A transport may briefly coalesce a Send with
	// neighbouring sends (see SendBatch); Flush forces anything buffered
	// onto the wire.
	Send(dst message.Addr, m *message.Message) error
	// SendBatch sends every message in batch, amortizing per-boundary
	// costs (syscalls on a real wire) across the batch where the
	// transport supports it. The messages are consumed during the call:
	// the transport either serializes or hands them off before
	// returning, so the caller may reuse the batch slice immediately —
	// but, as with Send, must never mutate the messages themselves
	// afterwards. Equivalent to calling Send once per element; the same
	// delivery guarantees (none) apply.
	SendBatch(batch []Outgoing) error
	// Flush forces out anything the transport has buffered but not yet
	// put on the wire. Transports that buffer nothing return nil
	// immediately. Send/SendBatch self-flush when their internal ring
	// fills, so Flush is a latency bound, not a correctness requirement —
	// except where a transport is configured with an explicit
	// coalescing delay.
	Flush() error
	// Close unbinds the endpoint and stops its delivery goroutine.
	Close() error
}

// Network creates endpoints sharing one message fabric.
type Network interface {
	// Listen binds addr and dispatches inbound messages to h.
	Listen(addr message.Addr, h Handler) (Endpoint, error)
	// Close shuts down the network and all endpoints.
	Close() error
}

// Errors shared by the implementations.
var (
	ErrClosed    = errors.New("transport: closed")
	ErrAddrInUse = errors.New("transport: address already bound")
	ErrNoRoute   = errors.New("transport: no such destination")
)
