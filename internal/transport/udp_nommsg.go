//go:build !linux || !(amd64 || arm64)

// Portable UDP wire for platforms without the raw sendmmsg/recvmmsg path:
// one syscall per datagram, exactly the pre-batching transport behavior.
// The batching contract still holds (SendBatch serializes the whole batch
// under one lock and delivers it in order); only the syscall amortization is
// absent, which UDPStats.SendCalls/RecvCalls make visible.
package transport

// udpPlat has no per-platform shared state on the fallback wire.
type udpPlat struct{}

// udpWire has no per-endpoint state on the fallback wire.
type udpWire struct{}

func (ep *udpEndpoint) wireInit() {}

func (ep *udpEndpoint) writeWire(slots []sendSlot) error {
	return ep.writeFallback(slots)
}

func (ep *udpEndpoint) readLoop() { ep.readLoopFallback() }
