//go:build race

package transport

// raceEnabled reports whether the race detector is on. Race instrumentation
// adds bookkeeping allocations, so the allocation-count gates are
// meaningless under -race and skip themselves.
const raceEnabled = true
