package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"meerkat/internal/message"
)

// Batching geometry shared by the Linux mmsg path and the portable fallback.
const (
	// sendRing is the maximum number of datagrams one sendmmsg moves; it
	// bounds the endpoint's pending-send buffer.
	sendRing = 32
	// recvRing is the number of datagrams one recvmmsg can drain.
	recvRing = 16
	// maxDatagram is the largest datagram the read loop accepts, and the
	// largest encode buffer a send slot retains across flushes.
	maxDatagram = 64 << 10
)

// Slot compaction bases for the UDP port map; see Port.
const (
	// recoverySlotBase is the first slot for per-partition recovery
	// coordinators (node ids >= 1<<15); replica node ids must stay below it.
	recoverySlotBase = 192
	// clientSlotBase is the first slot for clients (node ids >= 1<<16);
	// recovery-coordinator slots must stay below it.
	clientSlotBase = 256
)

// Typed port-map errors, so deployments can fail loudly at configuration
// time instead of binding (or sending to) the wrong socket.
var (
	// ErrPortRange means an address maps outside the 16-bit UDP port range.
	ErrPortRange = errors.New("transport: UDP port out of range")
	// ErrPortCollision means two distinct addresses compact onto the same
	// UDP port (e.g. a replica node id reaching into the recovery-
	// coordinator slot range).
	ErrPortCollision = errors.New("transport: UDP port map collision")
)

// UDP is a Network over real UDP sockets. Each (node, core) endpoint binds
// its own port — one socket per server thread, the software analogue of the
// paper's per-thread NIC send/receive queues steered by port number — and
// every message pays full binary serialization plus kernel socket costs.
// This is the stand-in for the paper's traditional Linux UDP stack baseline.
//
// Sends are batched: an endpoint buffers outgoing datagrams in a small ring
// and hands them to the kernel in one sendmmsg (Linux amd64/arm64; a
// WriteToUDP loop elsewhere), and the read loop drains inbound bursts with
// one recvmmsg into a ring of preallocated buffers. While an inbound burst
// is being delivered the endpoint is "corked": replies the handlers emit
// pile into the send ring and leave in a single syscall when the burst ends.
type UDP struct {
	host         string
	ip           net.IP // parsed once; per-send parsing is pure overhead
	basePort     int
	coresPerNode int
	flushDelay   time.Duration
	noBatch      bool

	// addrs caches resolved *net.UDPAddr per destination so the send path
	// does not rebuild (and re-allocate) the same sockaddr per message.
	// Entries are immutable once stored.
	addrs sync.Map // message.Addr -> *net.UDPAddr

	plat udpPlat // per-platform shared state (raw sockaddr cache on Linux)

	mu     sync.Mutex
	eps    []*udpEndpoint
	ports  map[int]message.Addr // bound port -> owning address
	closed bool
	final  UDPStats // counters folded in from endpoints at network Close
}

// NewUDP returns a UDP network on host (usually "127.0.0.1"). The port for
// address (node, core) is basePort + slot(node)*coresPerNode + core, so all
// processes sharing the same parameters agree on the port map.
func NewUDP(host string, basePort, coresPerNode int) *UDP {
	if coresPerNode <= 0 {
		coresPerNode = 128
	}
	return &UDP{
		host:         host,
		ip:           net.ParseIP(host),
		basePort:     basePort,
		coresPerNode: coresPerNode,
		ports:        make(map[int]message.Addr),
	}
}

// SetFlushDelay installs a coalescing window: instead of flushing on every
// Send/SendBatch boundary, an endpoint may hold buffered datagrams up to d
// waiting for more to share the syscall with (a micro-Nagle for the batched
// path). Zero restores flush-per-call. Must be called before Listen.
func (n *UDP) SetFlushDelay(d time.Duration) { n.flushDelay = d }

// SetBatchDisabled forces the portable one-syscall-per-datagram path even
// where sendmmsg/recvmmsg are available. It exists so benchmarks can measure
// the per-message baseline; production callers should leave batching on.
// Must be called before Listen.
func (n *UDP) SetBatchDisabled(v bool) { n.noBatch = v }

// udpAddr returns the cached sockaddr for dst, resolving it on first use.
func (n *UDP) udpAddr(dst message.Addr) *net.UDPAddr {
	if a, ok := n.addrs.Load(dst); ok {
		return a.(*net.UDPAddr)
	}
	a, _ := n.addrs.LoadOrStore(dst, &net.UDPAddr{IP: n.ip, Port: n.Port(dst)})
	return a.(*net.UDPAddr)
}

// Port returns the UDP port assigned to addr. Node ids are compacted into
// slots so the large client and recovery-coordinator id spaces (see
// internal/topo) still land in the 16-bit port range: replicas keep their
// ids, per-partition recovery coordinators (node >= 1<<15) map to slots from
// recoverySlotBase, and clients (node >= 1<<16) to slots from clientSlotBase.
func (n *UDP) Port(addr message.Addr) int {
	node := addr.Node
	var slot int
	switch {
	case node < 1<<15:
		slot = int(node)
	case node < 1<<16:
		slot = recoverySlotBase + int(node-1<<15)
	default:
		slot = clientSlotBase + int(node-1<<16)
	}
	return n.basePort + slot*n.coresPerNode + int(addr.Core)
}

// checkPort validates that addr's port lands inside the 16-bit range and
// returns it. It exists so Listen can fail with a typed error instead of
// binding port 70000 % 65536 or whatever the kernel would make of it.
func (n *UDP) checkPort(addr message.Addr) (int, error) {
	port := n.Port(addr)
	if port < 1 || port > 65535 {
		return 0, fmt.Errorf("%w: addr %+v maps to port %d (basePort=%d coresPerNode=%d)",
			ErrPortRange, addr, port, n.basePort, n.coresPerNode)
	}
	return port, nil
}

// ValidatePortMap statically checks that a deployment of the given shape —
// partitions×replicas replica nodes, one recovery coordinator per partition,
// and up to clients client nodes — maps every address it will bind onto a
// distinct in-range port. It returns ErrPortCollision when the compacted
// slot ranges overlap and ErrPortRange when the highest port overflows
// 16 bits, so misconfigurations surface before the first socket binds.
func (n *UDP) ValidatePortMap(partitions, replicas, clients int) error {
	if replicaNodes := partitions * replicas; replicaNodes > recoverySlotBase {
		return fmt.Errorf("%w: %d replica node ids overlap the recovery-coordinator slots starting at %d",
			ErrPortCollision, replicaNodes, recoverySlotBase)
	}
	if partitions > clientSlotBase-recoverySlotBase {
		return fmt.Errorf("%w: %d recovery-coordinator slots overlap the client slots starting at %d",
			ErrPortCollision, partitions, clientSlotBase)
	}
	if clients < 1 {
		clients = 1
	}
	// Highest port any of these addresses can bind: the last core of the
	// last client slot.
	maxPort := n.basePort + (clientSlotBase+clients-1)*n.coresPerNode + n.coresPerNode - 1
	if maxPort > 65535 {
		return fmt.Errorf("%w: %d clients at coresPerNode=%d reach port %d (basePort=%d)",
			ErrPortRange, clients, n.coresPerNode, maxPort, n.basePort)
	}
	return nil
}

// Listen implements Network.
func (n *UDP) Listen(addr message.Addr, h Handler) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if int(addr.Core) >= n.coresPerNode {
		return nil, fmt.Errorf("transport: core %d out of range (coresPerNode=%d)", addr.Core, n.coresPerNode)
	}
	port, err := n.checkPort(addr)
	if err != nil {
		return nil, err
	}
	if prev, ok := n.ports[port]; ok {
		if prev == addr {
			return nil, ErrAddrInUse
		}
		return nil, fmt.Errorf("%w: addr %+v and addr %+v both map to port %d",
			ErrPortCollision, prev, addr, port)
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{
		IP:   n.ip,
		Port: port,
	})
	if err != nil {
		return nil, err
	}
	ep := &udpEndpoint{net: n, addr: addr, conn: conn, h: h, port: port}
	ep.pend = make([]sendSlot, 0, sendRing)
	ep.wireInit()
	go ep.readLoop()
	n.eps = append(n.eps, ep)
	n.ports[port] = addr
	return ep, nil
}

// releasePort frees ep's port slot so a restarted node (replica recovery)
// can rebind the same address.
func (n *UDP) releasePort(ep *udpEndpoint) {
	n.mu.Lock()
	if n.ports[ep.port] == ep.addr {
		delete(n.ports, ep.port)
	}
	n.mu.Unlock()
}

// Close implements Network. Endpoint counters are folded into a final
// snapshot before the endpoint list is dropped, so Stats stays truthful for
// post-run scrapes.
func (n *UDP) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	eps := n.eps
	n.closed = true
	n.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	// Snapshot after closing so final flushes are counted.
	var s UDPStats
	for _, ep := range eps {
		s.add(ep)
	}
	n.mu.Lock()
	n.final = s
	n.eps = nil
	n.mu.Unlock()
	return nil
}

// UDPStats is a point-in-time aggregate of socket-level counters across all
// endpoints of a UDP network.
type UDPStats struct {
	Sent      uint64 // datagrams handed to the kernel
	Delivered uint64 // datagrams decoded and handed to handlers
	Dropped   uint64 // local send errors + corrupt inbound datagrams
	SendCalls uint64 // send syscalls (sendmmsg or per-datagram sendto)
	RecvCalls uint64 // receive syscalls (recvmmsg or per-datagram recvfrom)
}

// Syscalls returns the total number of socket syscalls the network issued.
func (s UDPStats) Syscalls() uint64 { return s.SendCalls + s.RecvCalls }

// DatagramsPerSend returns the average number of datagrams each send syscall
// moved — the batching factor the mmsg path achieves.
func (s UDPStats) DatagramsPerSend() float64 {
	if s.SendCalls == 0 {
		return 0
	}
	return float64(s.Sent) / float64(s.SendCalls)
}

// Sub returns s - prev field-wise, for interval measurements.
func (s UDPStats) Sub(prev UDPStats) UDPStats {
	return UDPStats{
		Sent:      s.Sent - prev.Sent,
		Delivered: s.Delivered - prev.Delivered,
		Dropped:   s.Dropped - prev.Dropped,
		SendCalls: s.SendCalls - prev.SendCalls,
		RecvCalls: s.RecvCalls - prev.RecvCalls,
	}
}

func (s *UDPStats) add(ep *udpEndpoint) {
	s.Sent += ep.sent.Load()
	s.Delivered += ep.delivered.Load()
	s.Dropped += ep.dropped.Load()
	s.SendCalls += ep.sendCalls.Load()
	s.RecvCalls += ep.recvCalls.Load()
}

// Stats sums the per-endpoint counters (plus the final snapshot of any
// already-closed network). Endpoints count into their own cache lines (each
// endpoint is its own heap object owned by one sender and one read loop), so
// the aggregation cost lands here, on the scrape path.
func (n *UDP) Stats() UDPStats {
	n.mu.Lock()
	s := n.final
	eps := n.eps
	n.mu.Unlock()
	for _, ep := range eps {
		s.add(ep)
	}
	return s
}

// sendSlot is one buffered outgoing datagram: the destination plus the
// encoded bytes. Slots keep their byte buffers across flushes, so the
// steady-state batched send path allocates nothing.
type sendSlot struct {
	dst message.Addr
	buf []byte
}

type udpEndpoint struct {
	net    *UDP
	addr   message.Addr
	conn   *net.UDPConn
	h      Handler
	port   int
	closed atomic.Bool

	sent      atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
	sendCalls atomic.Uint64
	recvCalls atomic.Uint64

	// mu guards the pending-send ring. The read loop corks the endpoint
	// while it delivers an inbound burst, so replies emitted by the
	// handlers coalesce into one flush when the burst ends.
	mu         sync.Mutex
	pend       []sendSlot
	corked     bool
	timerArmed bool
	flushTimer *time.Timer

	wire udpWire // per-platform mmsg state; zero value = fallback path
}

// Addr implements Endpoint.
func (ep *udpEndpoint) Addr() message.Addr { return ep.addr }

// Send implements Endpoint. The message is serialized into a ring slot
// immediately; unless the endpoint is corked (or a flush delay is
// configured) the datagram goes to the kernel before Send returns, exactly
// like the unbatched transport did.
func (ep *udpEndpoint) Send(dst message.Addr, m *message.Message) error {
	if ep.closed.Load() {
		return ErrClosed
	}
	m.Src = ep.addr
	ep.mu.Lock()
	ep.bufferLocked(dst, m)
	err := ep.sendPendingLocked()
	ep.mu.Unlock()
	return err
}

// SendBatch implements Endpoint: every message is serialized under one lock
// acquisition and the whole batch leaves in as few syscalls as the ring
// allows (one, for batches up to sendRing).
func (ep *udpEndpoint) SendBatch(batch []Outgoing) error {
	if ep.closed.Load() {
		return ErrClosed
	}
	ep.mu.Lock()
	for i := range batch {
		batch[i].M.Src = ep.addr
		ep.bufferLocked(batch[i].Dst, batch[i].M)
	}
	err := ep.sendPendingLocked()
	ep.mu.Unlock()
	return err
}

// Flush implements Endpoint: force out anything buffered, regardless of cork
// state or flush delay.
func (ep *udpEndpoint) Flush() error {
	if ep.closed.Load() {
		return ErrClosed
	}
	ep.mu.Lock()
	err := ep.flushLocked()
	ep.mu.Unlock()
	return err
}

// bufferLocked serializes m into the next ring slot, flushing first if the
// ring is full. Callers hold ep.mu.
func (ep *udpEndpoint) bufferLocked(dst message.Addr, m *message.Message) {
	if len(ep.pend) == sendRing {
		ep.flushLocked()
	}
	i := len(ep.pend)
	ep.pend = ep.pend[:i+1]
	s := &ep.pend[i]
	s.dst = dst
	s.buf = message.Encode(s.buf[:0], m)
}

// sendPendingLocked flushes the ring unless something is holding it open: a
// cork (an inbound burst is being delivered; the uncork flushes) or a
// configured coalescing delay (the timer flushes). Callers hold ep.mu.
func (ep *udpEndpoint) sendPendingLocked() error {
	if len(ep.pend) == 0 {
		return nil
	}
	if ep.corked {
		return nil
	}
	if d := ep.net.flushDelay; d > 0 && len(ep.pend) < sendRing {
		ep.armTimerLocked(d)
		return nil
	}
	return ep.flushLocked()
}

// flushLocked hands every pending datagram to the kernel and resets the
// ring, trimming any slot buffer an oversized message grew. Callers hold
// ep.mu.
func (ep *udpEndpoint) flushLocked() error {
	if len(ep.pend) == 0 {
		return nil
	}
	err := ep.writeWire(ep.pend)
	for i := range ep.pend {
		if cap(ep.pend[i].buf) > maxDatagram {
			ep.pend[i].buf = nil
		}
	}
	ep.pend = ep.pend[:0]
	return err
}

// armTimerLocked schedules a flush d from now, reusing one timer so the
// coalescing path stays allocation-free after the first send. Callers hold
// ep.mu.
func (ep *udpEndpoint) armTimerLocked(d time.Duration) {
	if ep.timerArmed {
		return
	}
	ep.timerArmed = true
	if ep.flushTimer == nil {
		ep.flushTimer = time.AfterFunc(d, ep.timerFlush)
	} else {
		ep.flushTimer.Reset(d)
	}
}

func (ep *udpEndpoint) timerFlush() {
	ep.mu.Lock()
	ep.timerArmed = false
	if !ep.corked {
		ep.flushLocked()
	}
	ep.mu.Unlock()
}

// cork holds the send ring open: Sends buffer but do not flush. The read
// loop corks around each inbound burst so handler replies share syscalls.
func (ep *udpEndpoint) cork() {
	ep.mu.Lock()
	ep.corked = true
	ep.mu.Unlock()
}

// uncork releases the ring and flushes whatever the burst's handlers
// buffered (deferring to the coalescing timer when one is configured).
func (ep *udpEndpoint) uncork() {
	ep.mu.Lock()
	ep.corked = false
	ep.sendPendingLocked()
	ep.mu.Unlock()
}

// writeFallback is the portable one-syscall-per-datagram wire: exactly the
// pre-batching behavior, used where mmsg is unavailable or disabled.
func (ep *udpEndpoint) writeFallback(slots []sendSlot) error {
	var firstErr error
	for i := range slots {
		_, err := ep.conn.WriteToUDP(slots[i].buf, ep.net.udpAddr(slots[i].dst))
		ep.sendCalls.Add(1)
		if err != nil {
			// UDP is best-effort end to end; surface only local socket
			// faults.
			ep.dropped.Add(1)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ep.sent.Add(1)
	}
	return firstErr
}

// readLoopFallback is the portable receive path: one recvfrom per datagram.
// The cork still wraps each delivery so a handler that fans out several
// replies hands them to the kernel in one batch on the mmsg path, and in
// order on this one.
func (ep *udpEndpoint) readLoopFallback() {
	buf := make([]byte, maxDatagram)
	for {
		nr, _, err := ep.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		ep.recvCalls.Add(1)
		m, derr := message.Decode(buf[:nr])
		if derr != nil {
			ep.dropped.Add(1)
			continue // corrupt datagram: drop, like any UDP consumer
		}
		ep.delivered.Add(1)
		ep.cork()
		ep.h(m)
		ep.uncork()
	}
}

// Close implements Endpoint.
func (ep *udpEndpoint) Close() error {
	if ep.closed.Swap(true) {
		return nil
	}
	ep.mu.Lock()
	ep.flushLocked()
	if ep.flushTimer != nil {
		ep.flushTimer.Stop()
	}
	ep.mu.Unlock()
	ep.net.releasePort(ep)
	return ep.conn.Close()
}
