package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"meerkat/internal/message"
)

// UDP is a Network over real UDP sockets. Each (node, core) endpoint binds
// its own port — one socket per server thread, the software analogue of the
// paper's per-thread NIC send/receive queues steered by port number — and
// every message pays full binary serialization plus kernel socket costs.
// This is the stand-in for the paper's traditional Linux UDP stack baseline.
type UDP struct {
	host         string
	ip           net.IP // parsed once; per-send parsing is pure overhead
	basePort     int
	coresPerNode int

	// addrs caches resolved *net.UDPAddr per destination so the send path
	// does not rebuild (and re-allocate) the same sockaddr per message.
	// Entries are immutable once stored.
	addrs sync.Map // message.Addr -> *net.UDPAddr

	mu     sync.Mutex
	eps    []*udpEndpoint
	closed bool
}

// NewUDP returns a UDP network on host (usually "127.0.0.1"). The port for
// address (node, core) is basePort + node*coresPerNode + core, so all
// processes sharing the same parameters agree on the port map.
func NewUDP(host string, basePort, coresPerNode int) *UDP {
	if coresPerNode <= 0 {
		coresPerNode = 128
	}
	return &UDP{host: host, ip: net.ParseIP(host), basePort: basePort, coresPerNode: coresPerNode}
}

// udpAddr returns the cached sockaddr for dst, resolving it on first use.
func (n *UDP) udpAddr(dst message.Addr) *net.UDPAddr {
	if a, ok := n.addrs.Load(dst); ok {
		return a.(*net.UDPAddr)
	}
	a, _ := n.addrs.LoadOrStore(dst, &net.UDPAddr{IP: n.ip, Port: n.Port(dst)})
	return a.(*net.UDPAddr)
}

// Port returns the UDP port assigned to addr. Node ids are compacted into
// slots so the large client and recovery-coordinator id spaces (see
// internal/topo) still land in the 16-bit port range: replicas keep their
// ids, per-partition recovery coordinators (node >= 1<<15) map to slots from
// 192, and clients (node >= 1<<16) to slots from 256.
func (n *UDP) Port(addr message.Addr) int {
	node := addr.Node
	var slot int
	switch {
	case node < 1<<15:
		slot = int(node)
	case node < 1<<16:
		slot = 192 + int(node-1<<15)
	default:
		slot = 256 + int(node-1<<16)
	}
	return n.basePort + slot*n.coresPerNode + int(addr.Core)
}

// Listen implements Network.
func (n *UDP) Listen(addr message.Addr, h Handler) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if int(addr.Core) >= n.coresPerNode {
		return nil, fmt.Errorf("transport: core %d out of range (coresPerNode=%d)", addr.Core, n.coresPerNode)
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{
		IP:   n.ip,
		Port: n.Port(addr),
	})
	if err != nil {
		return nil, err
	}
	ep := &udpEndpoint{net: n, addr: addr, conn: conn, h: h}
	go ep.readLoop()
	n.eps = append(n.eps, ep)
	return ep, nil
}

// Close implements Network.
func (n *UDP) Close() error {
	n.mu.Lock()
	eps := n.eps
	n.eps = nil
	n.closed = true
	n.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	return nil
}

// UDPStats is a point-in-time aggregate of socket-level counters across all
// endpoints of a UDP network.
type UDPStats struct {
	Sent      uint64 // datagrams handed to the kernel
	Delivered uint64 // datagrams decoded and handed to handlers
	Dropped   uint64 // local send errors + corrupt inbound datagrams
}

// Stats sums the per-endpoint counters. Endpoints count into their own
// cache lines (each endpoint is its own heap object owned by one sender and
// one read loop), so the aggregation cost lands here, on the scrape path.
func (n *UDP) Stats() UDPStats {
	var s UDPStats
	n.mu.Lock()
	eps := n.eps
	n.mu.Unlock()
	for _, ep := range eps {
		s.Sent += ep.sent.Load()
		s.Delivered += ep.delivered.Load()
		s.Dropped += ep.dropped.Load()
	}
	return s
}

type udpEndpoint struct {
	net    *UDP
	addr   message.Addr
	conn   *net.UDPConn
	h      Handler
	closed atomic.Bool

	sent      atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
}

func (ep *udpEndpoint) readLoop() {
	buf := make([]byte, 64<<10)
	for {
		nr, _, err := ep.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		m, err := message.Decode(buf[:nr])
		if err != nil {
			ep.dropped.Add(1)
			continue // corrupt datagram: drop, like any UDP consumer
		}
		ep.delivered.Add(1)
		ep.h(m)
	}
}

// Addr implements Endpoint.
func (ep *udpEndpoint) Addr() message.Addr { return ep.addr }

// Send implements Endpoint. The encode buffer comes from the shared message
// pool and is released as soon as the datagram is handed to the kernel
// (WriteToUDP copies it), so steady-state sends allocate nothing beyond what
// the kernel path itself costs.
func (ep *udpEndpoint) Send(dst message.Addr, m *message.Message) error {
	if ep.closed.Load() {
		return ErrClosed
	}
	m.Src = ep.addr
	enc := message.AcquireEncoder()
	_, err := ep.conn.WriteToUDP(enc.EncodeInto(m), ep.net.udpAddr(dst))
	enc.Release()
	if err != nil {
		// UDP is best-effort end to end; surface only local socket faults.
		ep.dropped.Add(1)
		return err
	}
	ep.sent.Add(1)
	return nil
}

// Close implements Endpoint.
func (ep *udpEndpoint) Close() error {
	if ep.closed.Swap(true) {
		return nil
	}
	return ep.conn.Close()
}
