package transport

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"meerkat/internal/message"
)

// InprocConfig tunes the in-process network.
type InprocConfig struct {
	// QueueDepth is the per-endpoint receive queue length, the analogue of
	// a NIC receive ring. Sends to a full queue are dropped, as a NIC
	// would. Defaults to 8192.
	QueueDepth int
	// DropProb is the probability each message is silently dropped.
	DropProb float64
	// Delay, if non-nil, returns an extra delivery delay sampled per
	// message. Delayed messages may be reordered relative to later sends.
	Delay func() time.Duration
	// Seed seeds the drop-decision RNG so fault schedules are repeatable.
	Seed int64
}

// InprocStats counts network activity. Read with the atomic Load methods.
type InprocStats struct {
	Sent      atomic.Uint64
	Delivered atomic.Uint64
	Dropped   atomic.Uint64 // random drops + full queues + filtered links
}

// Inproc is an in-process Network. Each endpoint owns a delivery queue
// drained by a dedicated goroutine, modelling one server thread polling one
// NIC queue. Sends between endpoints are direct channel hand-offs with no
// serialization, the stand-in for the paper's eRPC kernel-bypass stack.
type Inproc struct {
	cfg   InprocConfig
	stats InprocStats

	mu        sync.RWMutex
	endpoints map[message.Addr]*inprocEndpoint
	closed    bool

	// filter, when set, decides per (src, dst) whether a message may pass.
	// It implements partitions and crashed nodes.
	filter atomic.Pointer[func(src, dst message.Addr) bool]

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewInproc returns an in-process network with the given configuration.
func NewInproc(cfg InprocConfig) *Inproc {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8192
	}
	return &Inproc{
		cfg:       cfg,
		endpoints: make(map[message.Addr]*inprocEndpoint),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Stats returns the network's counters.
func (n *Inproc) Stats() *InprocStats { return &n.stats }

// SetLinkFilter installs f as the per-link admission check: messages from
// src to dst are dropped when f(src, dst) is false. Pass nil to clear.
// Safe to call while the network is in use.
func (n *Inproc) SetLinkFilter(f func(src, dst message.Addr) bool) {
	if f == nil {
		n.filter.Store(nil)
		return
	}
	n.filter.Store(&f)
}

// Isolate drops all traffic to and from the given nodes, simulating crashed
// or partitioned replicas. It replaces any previous filter.
func (n *Inproc) Isolate(nodes ...uint32) {
	down := make(map[uint32]bool, len(nodes))
	for _, id := range nodes {
		down[id] = true
	}
	n.SetLinkFilter(func(src, dst message.Addr) bool {
		return !down[src.Node] && !down[dst.Node]
	})
}

// Heal removes any link filter, restoring full connectivity.
func (n *Inproc) Heal() { n.SetLinkFilter(nil) }

// Listen implements Network.
func (n *Inproc) Listen(addr message.Addr, h Handler) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.endpoints[addr]; ok {
		return nil, ErrAddrInUse
	}
	ep := &inprocEndpoint{
		net:  n,
		addr: addr,
		h:    h,
		ch:   make(chan *message.Message, n.cfg.QueueDepth),
		quit: make(chan struct{}),
	}
	n.endpoints[addr] = ep
	go ep.run()
	return ep, nil
}

// Close implements Network.
func (n *Inproc) Close() error {
	n.mu.Lock()
	eps := make([]*inprocEndpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.closed = true
	n.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	return nil
}

// dispatch routes m from src to dst, applying drops, filters, and delays.
func (n *Inproc) dispatch(src, dst message.Addr, m *message.Message) error {
	n.stats.Sent.Add(1)

	if f := n.filter.Load(); f != nil && !(*f)(src, dst) {
		n.stats.Dropped.Add(1)
		return nil // silently dropped, like a real network
	}
	if n.cfg.DropProb > 0 {
		n.rngMu.Lock()
		drop := n.rng.Float64() < n.cfg.DropProb
		n.rngMu.Unlock()
		if drop {
			n.stats.Dropped.Add(1)
			return nil
		}
	}

	n.mu.RLock()
	ep, ok := n.endpoints[dst]
	n.mu.RUnlock()
	if !ok {
		n.stats.Dropped.Add(1)
		return nil // unreachable destination: a silent drop, not an error
	}

	if n.cfg.Delay != nil {
		if d := n.cfg.Delay(); d > 0 {
			time.AfterFunc(d, func() { ep.enqueue(m, &n.stats) })
			return nil
		}
	}
	ep.enqueue(m, &n.stats)
	return nil
}

type inprocEndpoint struct {
	net    *Inproc
	addr   message.Addr
	h      Handler
	ch     chan *message.Message
	quit   chan struct{}
	closed atomic.Bool
}

func (ep *inprocEndpoint) run() {
	for {
		select {
		case <-ep.quit:
			return
		case m := <-ep.ch:
			ep.h(m)
		}
	}
}

func (ep *inprocEndpoint) enqueue(m *message.Message, stats *InprocStats) {
	if ep.closed.Load() {
		stats.Dropped.Add(1)
		return
	}
	select {
	case ep.ch <- m:
		stats.Delivered.Add(1)
	default:
		stats.Dropped.Add(1) // receive ring overflow
	}
}

// Addr implements Endpoint.
func (ep *inprocEndpoint) Addr() message.Addr { return ep.addr }

// Send implements Endpoint.
func (ep *inprocEndpoint) Send(dst message.Addr, m *message.Message) error {
	if ep.closed.Load() {
		return ErrClosed
	}
	m.Src = ep.addr
	return ep.net.dispatch(ep.addr, dst, m)
}

// Close implements Endpoint.
func (ep *inprocEndpoint) Close() error {
	if ep.closed.Swap(true) {
		return nil
	}
	close(ep.quit)
	ep.net.mu.Lock()
	if ep.net.endpoints[ep.addr] == ep {
		delete(ep.net.endpoints, ep.addr)
	}
	ep.net.mu.Unlock()
	return nil
}

// Inbox is a Handler that buffers inbound messages into a channel, for
// callers (clients, coordinators) that consume replies synchronously.
type Inbox struct {
	C chan *message.Message
}

// NewInbox returns an Inbox with the given buffer depth.
func NewInbox(depth int) *Inbox {
	if depth <= 0 {
		depth = 256
	}
	return &Inbox{C: make(chan *message.Message, depth)}
}

// Handle implements Handler. Messages beyond the buffer are dropped, which
// the retry layer above absorbs.
func (in *Inbox) Handle(m *message.Message) {
	select {
	case in.C <- m:
	default:
	}
}
