package transport

import (
	"sync"
	"sync/atomic"
	"time"

	"meerkat/internal/message"
)

// InprocConfig tunes the in-process network.
type InprocConfig struct {
	// QueueDepth is the per-endpoint receive queue length, the analogue of
	// a NIC receive ring. Sends to a full queue are dropped, as a NIC
	// would. Defaults to 8192.
	QueueDepth int
	// DropProb is the probability each message is silently dropped.
	DropProb float64
	// Delay, if non-nil, returns an extra delivery delay sampled per
	// message. Delayed messages may be reordered relative to later sends.
	Delay func() time.Duration
	// Seed seeds the drop-decision PRNGs so fault schedules are repeatable.
	// Each endpoint derives its own PRNG state as
	//
	//	mix64(uint64(Seed) ^ node<<32 ^ core)
	//
	// (mix64 is the splitmix64 finalizer), so drop decisions are
	// deterministic given Seed and each endpoint's send sequence, without
	// any cross-endpoint synchronization.
	Seed int64
	// Batch is the maximum number of queued messages a delivery goroutine
	// drains per wakeup, the analogue of polling a NIC ring in bursts:
	// under load the handler loop runs without re-entering the scheduler
	// between messages. Defaults to 32; 1 disables batching.
	Batch int
	// ServiceTime, when positive, makes each delivery goroutine sleep
	// messages*ServiceTime after handling every drained burst — a fixed
	// per-message service-capacity model (one endpoint sustains at most
	// 1/ServiceTime messages per second). Benchmarks on machines with fewer
	// CPUs than simulated server cores use it to measure capacity scaling
	// (adding shards adds serving endpoints) instead of raw CPU contention.
	// Zero disables the model entirely.
	ServiceTime time.Duration
	// ServiceNodeLimit restricts ServiceTime to endpoints whose node id is
	// below it — pass the topology's client node base so only replica
	// endpoints are throttled, never client reply inboxes. Zero applies the
	// model to every endpoint.
	ServiceNodeLimit uint32
}

// InprocStats counts network activity. Read with the atomic Load methods.
type InprocStats struct {
	Sent      atomic.Uint64
	Delivered atomic.Uint64
	Dropped   atomic.Uint64 // random drops + full queues + filtered links
}

// Inproc is an in-process Network. Each endpoint owns a delivery queue
// drained by a dedicated goroutine, modelling one server thread polling one
// NIC queue. Sends between endpoints are direct channel hand-offs with no
// serialization, the stand-in for the paper's eRPC kernel-bypass stack.
// There is no shared mutable state on the send path — per the paper's
// zero-coordination discipline, concurrent senders contend only on the
// destination's channel.
type Inproc struct {
	cfg   InprocConfig
	stats InprocStats

	mu        sync.RWMutex
	endpoints map[message.Addr]*inprocEndpoint
	closed    bool

	// filter, when set, decides per (src, dst) whether a message may pass.
	// It implements partitions and crashed nodes.
	filter atomic.Pointer[func(src, dst message.Addr) bool]
}

// NewInproc returns an in-process network with the given configuration.
func NewInproc(cfg InprocConfig) *Inproc {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8192
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 32
	}
	return &Inproc{
		cfg:       cfg,
		endpoints: make(map[message.Addr]*inprocEndpoint),
	}
}

// Stats returns the network's counters.
func (n *Inproc) Stats() *InprocStats { return &n.stats }

// SetLinkFilter installs f as the per-link admission check: messages from
// src to dst are dropped when f(src, dst) is false. Pass nil to clear.
// Safe to call while the network is in use.
func (n *Inproc) SetLinkFilter(f func(src, dst message.Addr) bool) {
	if f == nil {
		n.filter.Store(nil)
		return
	}
	n.filter.Store(&f)
}

// Isolate drops all traffic to and from the given nodes, simulating crashed
// or partitioned replicas. It replaces any previous filter.
func (n *Inproc) Isolate(nodes ...uint32) {
	down := make(map[uint32]bool, len(nodes))
	for _, id := range nodes {
		down[id] = true
	}
	n.SetLinkFilter(func(src, dst message.Addr) bool {
		return !down[src.Node] && !down[dst.Node]
	})
}

// Heal removes any link filter, restoring full connectivity.
func (n *Inproc) Heal() { n.SetLinkFilter(nil) }

// Listen implements Network.
func (n *Inproc) Listen(addr message.Addr, h Handler) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.endpoints[addr]; ok {
		return nil, ErrAddrInUse
	}
	ep := &inprocEndpoint{
		net:  n,
		addr: addr,
		h:    h,
		ch:   make(chan *message.Message, n.cfg.QueueDepth),
		quit: make(chan struct{}),
	}
	ep.rng.state.Store(mix64(uint64(n.cfg.Seed) ^ uint64(addr.Node)<<32 ^ uint64(addr.Core)))
	n.endpoints[addr] = ep
	go ep.run()
	return ep, nil
}

// Close implements Network.
func (n *Inproc) Close() error {
	n.mu.Lock()
	eps := make([]*inprocEndpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.closed = true
	n.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	return nil
}

// dispatch routes m from the sending endpoint to dst, applying drops,
// filters, and delays. Drop decisions come from the sender's own PRNG, so
// concurrent senders never serialize on a shared RNG lock.
func (n *Inproc) dispatch(src *inprocEndpoint, dst message.Addr, m *message.Message) error {
	n.stats.Sent.Add(1)

	if f := n.filter.Load(); f != nil && !(*f)(src.addr, dst) {
		n.stats.Dropped.Add(1)
		return nil // silently dropped, like a real network
	}
	if n.cfg.DropProb > 0 && src.rng.float64() < n.cfg.DropProb {
		n.stats.Dropped.Add(1)
		return nil
	}

	n.mu.RLock()
	ep, ok := n.endpoints[dst]
	n.mu.RUnlock()
	if !ok {
		n.stats.Dropped.Add(1)
		return nil // unreachable destination: a silent drop, not an error
	}

	if n.cfg.Delay != nil {
		if d := n.cfg.Delay(); d > 0 {
			time.AfterFunc(d, func() { ep.enqueue(m, &n.stats) })
			return nil
		}
	}
	ep.enqueue(m, &n.stats)
	return nil
}

// dropRNG is a lock-free splitmix64 PRNG: each draw is one atomic add plus
// the finalizer, so concurrent sends on one endpoint neither race nor
// serialize. For a single-goroutine sender the sequence is exactly
// splitmix64(seed), making fault schedules repeatable given InprocConfig.Seed.
type dropRNG struct {
	state atomic.Uint64
}

// mix64 is the splitmix64 finalizer, used both to derive endpoint seeds and
// to whiten each draw.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// float64 returns a uniform draw in [0, 1).
func (r *dropRNG) float64() float64 {
	x := mix64(r.state.Add(0x9e3779b97f4a7c15))
	return float64(x>>11) / (1 << 53)
}

// SplitMix64 is a tiny single-goroutine PRNG for replica/core selection on
// the coordinator hot path: no lock, no heap allocation, and the same
// deterministic sequence per seed as the endpoint drop PRNGs (it is the same
// splitmix64 stream, unsynchronized). The zero value is a valid seed.
type SplitMix64 struct {
	state uint64
}

// SeedSplitMix64 returns a SplitMix64 whose stream is derived from seed via
// the splitmix64 finalizer, matching how endpoints derive their drop PRNGs.
func SeedSplitMix64(seed uint64) SplitMix64 {
	return SplitMix64{state: mix64(seed)}
}

// Uint64 returns the next draw.
func (r *SplitMix64) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// Intn returns a draw in [0, n). n must be positive.
func (r *SplitMix64) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

type inprocEndpoint struct {
	net    *Inproc
	addr   message.Addr
	h      Handler
	ch     chan *message.Message
	quit   chan struct{}
	closed atomic.Bool
	rng    dropRNG // per-endpoint drop PRNG; see InprocConfig.Seed
}

// run is the delivery loop: one blocking receive per wakeup, then a
// non-blocking drain of up to Batch-1 more queued messages. Bursts are
// handled without bouncing through the scheduler per message — the software
// analogue of NIC-ring burst polling.
func (ep *inprocEndpoint) run() {
	batch := ep.net.cfg.Batch
	service := ep.net.cfg.ServiceTime
	if limit := ep.net.cfg.ServiceNodeLimit; service > 0 && limit > 0 && ep.addr.Node >= limit {
		service = 0
	}
	for {
		select {
		case <-ep.quit:
			return
		case m := <-ep.ch:
			ep.h(m)
			handled := 1
		drain:
			for i := 1; i < batch; i++ {
				select {
				case m := <-ep.ch:
					ep.h(m)
					handled++
				default:
					break drain
				}
			}
			if service > 0 {
				// Capacity model: this endpoint spent handled*service of
				// simulated server time on the burst (see ServiceTime).
				time.Sleep(time.Duration(handled) * service)
			}
		}
	}
}

func (ep *inprocEndpoint) enqueue(m *message.Message, stats *InprocStats) {
	if ep.closed.Load() {
		stats.Dropped.Add(1)
		return
	}
	select {
	case ep.ch <- m:
		stats.Delivered.Add(1)
	default:
		stats.Dropped.Add(1) // receive ring overflow
	}
}

// Addr implements Endpoint.
func (ep *inprocEndpoint) Addr() message.Addr { return ep.addr }

// Send implements Endpoint.
func (ep *inprocEndpoint) Send(dst message.Addr, m *message.Message) error {
	if ep.closed.Load() {
		return ErrClosed
	}
	m.Src = ep.addr
	return ep.net.dispatch(ep, dst, m)
}

// SendBatch implements Endpoint. A send here is already a direct channel
// hand-off with no per-message boundary cost to amortize, so the batch maps
// onto N dispatches; the receive side still drains bursts Batch messages per
// wakeup (see run), which is where inproc's batching lives.
func (ep *inprocEndpoint) SendBatch(batch []Outgoing) error {
	if ep.closed.Load() {
		return ErrClosed
	}
	for i := range batch {
		batch[i].M.Src = ep.addr
		if err := ep.net.dispatch(ep, batch[i].Dst, batch[i].M); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements Endpoint. Inproc buffers nothing on the send side.
func (ep *inprocEndpoint) Flush() error { return nil }

// Close implements Endpoint.
func (ep *inprocEndpoint) Close() error {
	if ep.closed.Swap(true) {
		return nil
	}
	close(ep.quit)
	ep.net.mu.Lock()
	if ep.net.endpoints[ep.addr] == ep {
		delete(ep.net.endpoints, ep.addr)
	}
	ep.net.mu.Unlock()
	return nil
}

// Inbox is a Handler that buffers inbound messages into a channel, for
// callers (clients, coordinators) that consume replies synchronously.
type Inbox struct {
	C chan *message.Message
}

// NewInbox returns an Inbox with the given buffer depth.
func NewInbox(depth int) *Inbox {
	if depth <= 0 {
		depth = 256
	}
	return &Inbox{C: make(chan *message.Message, depth)}
}

// Handle implements Handler. Messages beyond the buffer are dropped, which
// the retry layer above absorbs.
func (in *Inbox) Handle(m *message.Message) {
	select {
	case in.C <- m:
	default:
	}
}

// Drain discards buffered messages without blocking, so a fresh request phase
// does not mistake a stale reply (from a timed-out earlier attempt) for its
// own.
func (in *Inbox) Drain() {
	for {
		select {
		case <-in.C:
		default:
			return
		}
	}
}
