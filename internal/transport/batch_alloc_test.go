package transport

import (
	"testing"

	"meerkat/internal/message"
)

// The batched send path must stay allocation-free in steady state: encode
// into retained ring-slot buffers, prebuilt syscall closures, cached
// sockaddrs. These gates hold on both the Linux sendmmsg path and the
// portable fallback (the ring machinery is shared; only the final write
// differs), so they run everywhere and keep non-Linux ports honest too.

func TestInprocSendBatchAllocGate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	n := NewInproc(InprocConfig{})
	defer n.Close()
	dst := message.Addr{Node: 1, Core: 0}
	if _, err := n.Listen(dst, func(*message.Message) {}); err != nil {
		t.Fatal(err)
	}
	src, err := n.Listen(message.Addr{Node: 0, Core: 0}, func(*message.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	batch := makeAllocBatch(dst)
	send := func() {
		if err := src.SendBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	send() // warm queues
	if allocs := testing.AllocsPerRun(200, send); allocs > 0 {
		t.Fatalf("inproc SendBatch allocates %.1f times per call, want 0", allocs)
	}
}

func TestUDPSendBatchAllocGate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	n := NewUDP("127.0.0.1", 28950, 8)
	defer n.Close()
	dst := message.Addr{Node: 1, Core: 0}
	if _, err := n.Listen(dst, func(*message.Message) {}); err != nil {
		t.Skipf("cannot bind UDP socket: %v", err)
	}
	src, err := n.Listen(message.Addr{Node: 0, Core: 0}, func(*message.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	batch := makeAllocBatch(dst)
	send := func() {
		if err := src.SendBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	send() // warm ring buffers and the sockaddr cache
	if allocs := testing.AllocsPerRun(200, send); allocs > 0 {
		t.Fatalf("UDP SendBatch allocates %.1f times per call, want 0", allocs)
	}
}

// makeAllocBatch builds a reusable batch shaped like a commit fan-out: a few
// small messages to one destination.
func makeAllocBatch(dst message.Addr) []Outgoing {
	batch := make([]Outgoing, 3)
	for i := range batch {
		batch[i] = Outgoing{Dst: dst, M: &message.Message{
			Type: message.TypePut, Seq: uint64(i), Key: "alloc-gate", Value: []byte("v"),
		}}
	}
	return batch
}
