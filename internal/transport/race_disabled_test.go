//go:build !race

package transport

// raceEnabled reports whether the race detector is on; see race_enabled_test.go.
const raceEnabled = false
