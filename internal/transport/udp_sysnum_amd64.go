//go:build linux && amd64

package transport

// The stdlib syscall package predates sendmmsg and never grew its number;
// recvmmsg is pinned alongside it for symmetry. These are ABI constants for
// linux/amd64.
const (
	sysSendmmsg = 307
	sysRecvmmsg = 299
)
