//go:build linux && arm64

package transport

// ABI syscall numbers for linux/arm64 (the asm-generic table).
const (
	sysSendmmsg = 269
	sysRecvmmsg = 243
)
