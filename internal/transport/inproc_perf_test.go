package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"meerkat/internal/message"
)

// TestInprocDropDeterminism asserts the per-endpoint PRNG contract: for a
// fixed Seed and a fixed single-goroutine send sequence, exactly the same
// messages are dropped on every run.
func TestInprocDropDeterminism(t *testing.T) {
	deliveredSeqs := func() []uint64 {
		n := NewInproc(InprocConfig{DropProb: 0.5, Seed: 1234})
		defer n.Close()
		inbox := NewInbox(2048)
		dst := message.Addr{Node: 1, Core: 0}
		if _, err := n.Listen(dst, inbox.Handle); err != nil {
			t.Fatal(err)
		}
		src, err := n.Listen(message.Addr{Node: 0, Core: 0}, func(*message.Message) {})
		if err != nil {
			t.Fatal(err)
		}
		const total = 1000
		for i := uint64(0); i < total; i++ {
			src.Send(dst, &message.Message{Type: message.TypePut, Seq: i})
		}
		// Sends are synchronous, so the drop/deliver split is final here;
		// wait for the delivery goroutine to forward everything it got.
		waitFor(t, "deliveries to settle", func() bool {
			return uint64(len(inbox.C)) == n.Stats().Delivered.Load()
		})
		var seqs []uint64
		for {
			select {
			case m := <-inbox.C:
				seqs = append(seqs, m.Seq)
				continue
			default:
			}
			break
		}
		return seqs
	}

	a, b := deliveredSeqs(), deliveredSeqs()
	if len(a) == 0 || len(a) == 1000 {
		t.Fatalf("degenerate drop schedule: %d/1000 delivered", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("runs delivered %d vs %d messages", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery schedules diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestInprocEndpointsDropIndependently asserts that two endpoints with the
// same network Seed still see different (derived) drop schedules — the seed
// derivation mixes the endpoint address.
func TestInprocEndpointsDropIndependently(t *testing.T) {
	n := NewInproc(InprocConfig{DropProb: 0.5, Seed: 7})
	defer n.Close()
	dst := message.Addr{Node: 9, Core: 0}
	var count atomic.Uint64
	n.Listen(dst, func(*message.Message) { count.Add(1) })

	schedule := func(node uint32) []bool {
		src, err := n.Listen(message.Addr{Node: node, Core: 0}, func(*message.Message) {})
		if err != nil {
			t.Fatal(err)
		}
		before := n.Stats().Dropped.Load()
		var out []bool
		for i := 0; i < 64; i++ {
			src.Send(dst, &message.Message{Type: message.TypePut})
			after := n.Stats().Dropped.Load()
			out = append(out, after > before)
			before = after
		}
		return out
	}
	a, b := schedule(1), schedule(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two endpoints produced identical 64-send drop schedules")
	}
}

// TestInprocBatchedDelivery checks that batched draining neither drops nor
// reorders: a burst much larger than Batch arrives complete and in order.
func TestInprocBatchedDelivery(t *testing.T) {
	n := NewInproc(InprocConfig{Batch: 8})
	defer n.Close()
	var got []uint64
	done := make(chan struct{})
	dst := message.Addr{Node: 1, Core: 0}
	const total = 500
	n.Listen(dst, func(m *message.Message) {
		got = append(got, m.Seq) // single delivery goroutine: no lock needed
		if len(got) == total {
			close(done)
		}
	})
	src, _ := n.Listen(message.Addr{Node: 0, Core: 0}, func(*message.Message) {})
	for i := uint64(0); i < total; i++ {
		src.Send(dst, &message.Message{Type: message.TypePut, Seq: i})
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("only %d/%d delivered", len(got), total)
	}
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("got[%d] = %d: batched drain reordered", i, s)
		}
	}
}

// BenchmarkInprocRoundTrip measures a request/reply echo through the
// in-process network: client send → server handler → reply send → client
// inbox. The fresh sub-benchmark allocates both messages per round trip (the
// pre-pooling behavior); pooled recycles them through the message pool, the
// ownership hand-off the transports are wired for.
func BenchmarkInprocRoundTrip(b *testing.B) {
	for _, mode := range []struct {
		name   string
		pooled bool
	}{{"fresh", false}, {"pooled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			n := NewInproc(InprocConfig{})
			defer n.Close()
			srvAddr := message.Addr{Node: 1, Core: 0}
			var srv atomic.Pointer[Endpoint]
			pooled := mode.pooled
			sep, err := n.Listen(srvAddr, func(m *message.Message) {
				var reply *message.Message
				if pooled {
					reply = message.AcquireMessage()
				} else {
					reply = &message.Message{}
				}
				reply.Type = message.TypePutReply
				reply.Seq = m.Seq
				dst := m.Src
				if pooled {
					message.ReleaseMessage(m)
				}
				if ep := srv.Load(); ep != nil {
					(*ep).Send(dst, reply)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
			srv.Store(&sep)
			inbox := NewInbox(16)
			cli, err := n.Listen(message.Addr{Node: 2, Core: 0}, inbox.Handle)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var req *message.Message
				if pooled {
					req = message.AcquireMessage()
				} else {
					req = &message.Message{}
				}
				req.Type = message.TypePut
				req.Seq = uint64(i)
				if err := cli.Send(srvAddr, req); err != nil {
					b.Fatal(err)
				}
				reply := <-inbox.C
				if reply.Seq != uint64(i) {
					b.Fatalf("reply %d for request %d", reply.Seq, i)
				}
				if pooled {
					message.ReleaseMessage(reply) // client is the reply's last owner
				}
			}
		})
	}
}
