package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"meerkat/internal/message"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestInprocDelivery(t *testing.T) {
	n := NewInproc(InprocConfig{})
	defer n.Close()

	var got atomic.Pointer[message.Message]
	dst := message.Addr{Node: 1, Core: 0}
	if _, err := n.Listen(dst, func(m *message.Message) { got.Store(m) }); err != nil {
		t.Fatal(err)
	}
	src, err := n.Listen(message.Addr{Node: 0, Core: 0}, func(*message.Message) {})
	if err != nil {
		t.Fatal(err)
	}

	m := &message.Message{Type: message.TypePut, Key: "k", Value: []byte("v")}
	if err := src.Send(dst, m); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delivery", func() bool { return got.Load() != nil })
	rm := got.Load()
	if rm.Key != "k" || string(rm.Value) != "v" {
		t.Fatalf("got %+v", rm)
	}
	if rm.Src != src.Addr() {
		t.Fatalf("Src = %v, want %v", rm.Src, src.Addr())
	}
}

func TestInprocAddrInUse(t *testing.T) {
	n := NewInproc(InprocConfig{})
	defer n.Close()
	addr := message.Addr{Node: 1, Core: 2}
	if _, err := n.Listen(addr, func(*message.Message) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen(addr, func(*message.Message) {}); err != ErrAddrInUse {
		t.Fatalf("err = %v, want ErrAddrInUse", err)
	}
}

func TestInprocPerCoreOrdering(t *testing.T) {
	// Messages between one src and one dst core must arrive in send order
	// when no delay/drop is configured (single queue, single drainer).
	n := NewInproc(InprocConfig{})
	defer n.Close()

	var mu sync.Mutex
	var seqs []uint64
	dst := message.Addr{Node: 1, Core: 3}
	if _, err := n.Listen(dst, func(m *message.Message) {
		mu.Lock()
		seqs = append(seqs, m.Seq)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	src, _ := n.Listen(message.Addr{Node: 0, Core: 0}, func(*message.Message) {})
	const total = 500
	for i := uint64(0); i < total; i++ {
		if err := src.Send(dst, &message.Message{Type: message.TypePut, Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all messages", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(seqs) == total
	})
	mu.Lock()
	defer mu.Unlock()
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("seqs[%d] = %d: out of order", i, s)
		}
	}
}

func TestInprocDropAll(t *testing.T) {
	n := NewInproc(InprocConfig{DropProb: 1.0, Seed: 1})
	defer n.Close()
	var count atomic.Int64
	dst := message.Addr{Node: 1, Core: 0}
	n.Listen(dst, func(*message.Message) { count.Add(1) })
	src, _ := n.Listen(message.Addr{Node: 0, Core: 0}, func(*message.Message) {})
	for i := 0; i < 100; i++ {
		src.Send(dst, &message.Message{Type: message.TypePut})
	}
	time.Sleep(20 * time.Millisecond)
	if count.Load() != 0 {
		t.Fatalf("%d messages delivered with DropProb=1", count.Load())
	}
	if n.Stats().Dropped.Load() != 100 {
		t.Fatalf("Dropped = %d, want 100", n.Stats().Dropped.Load())
	}
}

func TestInprocPartialDrop(t *testing.T) {
	n := NewInproc(InprocConfig{DropProb: 0.5, Seed: 42})
	defer n.Close()
	var count atomic.Int64
	dst := message.Addr{Node: 1, Core: 0}
	n.Listen(dst, func(*message.Message) { count.Add(1) })
	src, _ := n.Listen(message.Addr{Node: 0, Core: 0}, func(*message.Message) {})
	const total = 2000
	for i := 0; i < total; i++ {
		src.Send(dst, &message.Message{Type: message.TypePut})
	}
	waitFor(t, "deliveries to settle", func() bool {
		c := count.Load()
		time.Sleep(5 * time.Millisecond)
		return count.Load() == c && c > 0
	})
	got := count.Load()
	if got < total/4 || got > 3*total/4 {
		t.Fatalf("delivered %d of %d with DropProb=0.5", got, total)
	}
}

func TestInprocIsolateAndHeal(t *testing.T) {
	n := NewInproc(InprocConfig{})
	defer n.Close()
	var count atomic.Int64
	dst := message.Addr{Node: 2, Core: 0}
	n.Listen(dst, func(*message.Message) { count.Add(1) })
	src, _ := n.Listen(message.Addr{Node: 0, Core: 0}, func(*message.Message) {})

	n.Isolate(2)
	src.Send(dst, &message.Message{Type: message.TypePut})
	time.Sleep(10 * time.Millisecond)
	if count.Load() != 0 {
		t.Fatal("message crossed an isolated link")
	}

	n.Heal()
	src.Send(dst, &message.Message{Type: message.TypePut})
	waitFor(t, "post-heal delivery", func() bool { return count.Load() == 1 })
}

func TestInprocIsolateBlocksOutbound(t *testing.T) {
	n := NewInproc(InprocConfig{})
	defer n.Close()
	var count atomic.Int64
	dst := message.Addr{Node: 1, Core: 0}
	n.Listen(dst, func(*message.Message) { count.Add(1) })
	src, _ := n.Listen(message.Addr{Node: 2, Core: 0}, func(*message.Message) {})
	n.Isolate(2) // the *sender* is isolated
	src.Send(dst, &message.Message{Type: message.TypePut})
	time.Sleep(10 * time.Millisecond)
	if count.Load() != 0 {
		t.Fatal("isolated node's outbound message was delivered")
	}
}

func TestInprocDelay(t *testing.T) {
	n := NewInproc(InprocConfig{Delay: func() time.Duration { return 30 * time.Millisecond }})
	defer n.Close()
	var deliveredAt atomic.Int64
	dst := message.Addr{Node: 1, Core: 0}
	n.Listen(dst, func(*message.Message) { deliveredAt.Store(time.Now().UnixNano()) })
	src, _ := n.Listen(message.Addr{Node: 0, Core: 0}, func(*message.Message) {})
	start := time.Now()
	src.Send(dst, &message.Message{Type: message.TypePut})
	waitFor(t, "delayed delivery", func() bool { return deliveredAt.Load() != 0 })
	if lat := time.Duration(deliveredAt.Load() - start.UnixNano()); lat < 25*time.Millisecond {
		t.Fatalf("latency %v, want >= ~30ms", lat)
	}
}

func TestInprocUnknownDestinationDrops(t *testing.T) {
	n := NewInproc(InprocConfig{})
	defer n.Close()
	src, _ := n.Listen(message.Addr{Node: 0, Core: 0}, func(*message.Message) {})
	if err := src.Send(message.Addr{Node: 9, Core: 9}, &message.Message{Type: message.TypePut}); err != nil {
		t.Fatalf("send to unknown dest errored: %v", err)
	}
	if n.Stats().Dropped.Load() != 1 {
		t.Fatal("unknown destination not counted as drop")
	}
}

func TestInprocSendAfterClose(t *testing.T) {
	n := NewInproc(InprocConfig{})
	defer n.Close()
	src, _ := n.Listen(message.Addr{Node: 0, Core: 0}, func(*message.Message) {})
	src.Close()
	if err := src.Send(message.Addr{Node: 1, Core: 0}, &message.Message{}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	// Double close must be safe.
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	// Address is reusable after close.
	if _, err := n.Listen(message.Addr{Node: 0, Core: 0}, func(*message.Message) {}); err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
}

func TestInprocListenAfterNetworkClose(t *testing.T) {
	n := NewInproc(InprocConfig{})
	n.Close()
	if _, err := n.Listen(message.Addr{}, func(*message.Message) {}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestInprocQueueOverflowDrops(t *testing.T) {
	n := NewInproc(InprocConfig{QueueDepth: 4})
	defer n.Close()
	release := make(chan struct{})
	var count atomic.Int64
	dst := message.Addr{Node: 1, Core: 0}
	n.Listen(dst, func(*message.Message) {
		<-release // stall the drainer so the queue fills
		count.Add(1)
	})
	src, _ := n.Listen(message.Addr{Node: 0, Core: 0}, func(*message.Message) {})
	for i := 0; i < 50; i++ {
		src.Send(dst, &message.Message{Type: message.TypePut})
	}
	if n.Stats().Dropped.Load() == 0 {
		t.Fatal("no drops despite tiny queue and stalled drainer")
	}
	close(release)
}

func TestInprocConcurrentSenders(t *testing.T) {
	n := NewInproc(InprocConfig{})
	defer n.Close()
	var count atomic.Int64
	dst := message.Addr{Node: 1, Core: 0}
	n.Listen(dst, func(*message.Message) { count.Add(1) })

	const senders, each = 8, 500
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ep, err := n.Listen(message.Addr{Node: 10 + uint32(s), Core: 0}, func(*message.Message) {})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < each; i++ {
				ep.Send(dst, &message.Message{Type: message.TypePut})
			}
		}(s)
	}
	wg.Wait()
	waitFor(t, "all deliveries", func() bool { return count.Load() == senders*each })
}

func TestInbox(t *testing.T) {
	in := NewInbox(2)
	in.Handle(&message.Message{Seq: 1})
	in.Handle(&message.Message{Seq: 2})
	in.Handle(&message.Message{Seq: 3}) // dropped: buffer full
	if len(in.C) != 2 {
		t.Fatalf("buffered %d, want 2", len(in.C))
	}
	if m := <-in.C; m.Seq != 1 {
		t.Fatalf("first = %d, want 1", m.Seq)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	n := NewUDP("127.0.0.1", 28700, 8)
	defer n.Close()

	serverAddr := message.Addr{Node: 0, Core: 1}
	var got atomic.Pointer[message.Message]
	server, err := n.Listen(serverAddr, func(m *message.Message) { got.Store(m) })
	if err != nil {
		t.Skipf("cannot bind UDP socket: %v", err)
	}
	_ = server
	client, err := n.Listen(message.Addr{Node: 1, Core: 0}, func(*message.Message) {})
	if err != nil {
		t.Fatal(err)
	}

	m := &message.Message{Type: message.TypePut, Key: "k", Value: []byte("udp")}
	if err := client.Send(serverAddr, m); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "udp delivery", func() bool { return got.Load() != nil })
	rm := got.Load()
	if rm.Key != "k" || string(rm.Value) != "udp" {
		t.Fatalf("got %+v", rm)
	}
	if rm.Src != client.Addr() {
		t.Fatalf("Src = %v, want %v", rm.Src, client.Addr())
	}
}

func TestUDPReplyPath(t *testing.T) {
	n := NewUDP("127.0.0.1", 28800, 8)
	defer n.Close()

	serverAddr := message.Addr{Node: 0, Core: 0}
	var srvEp atomic.Pointer[udpEndpoint]
	srv, err := n.Listen(serverAddr, func(m *message.Message) {
		if ep := srvEp.Load(); ep != nil {
			ep.Send(m.Src, &message.Message{Type: message.TypePutReply, Seq: m.Seq})
		}
	})
	if err != nil {
		t.Skipf("cannot bind UDP socket: %v", err)
	}
	srvEp.Store(srv.(*udpEndpoint))

	inbox := NewInbox(16)
	client, err := n.Listen(message.Addr{Node: 1, Core: 0}, inbox.Handle)
	if err != nil {
		t.Fatal(err)
	}
	client.Send(serverAddr, &message.Message{Type: message.TypePut, Seq: 77})
	select {
	case m := <-inbox.C:
		if m.Type != message.TypePutReply || m.Seq != 77 {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no reply")
	}
}

func TestUDPCoreOutOfRange(t *testing.T) {
	n := NewUDP("127.0.0.1", 28900, 2)
	defer n.Close()
	if _, err := n.Listen(message.Addr{Node: 0, Core: 5}, func(*message.Message) {}); err == nil {
		t.Fatal("expected error for out-of-range core")
	}
}

func TestUDPPortMapping(t *testing.T) {
	n := NewUDP("127.0.0.1", 1000, 16)
	if p := n.Port(message.Addr{Node: 2, Core: 3}); p != 1000+2*16+3 {
		t.Fatalf("Port = %d", p)
	}
}
