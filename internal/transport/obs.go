package transport

import "meerkat/internal/obs"

// RegisterObs exposes the network's counters as scrape-time gauges on r.
// The gauge closures read the shared atomic counters only when a snapshot
// is taken, so export adds nothing to the send path.
func (n *Inproc) RegisterObs(r *obs.Registry) {
	r.RegisterGauge("net_inproc_sent", n.stats.Sent.Load)
	r.RegisterGauge("net_inproc_delivered", n.stats.Delivered.Load)
	r.RegisterGauge("net_inproc_dropped", n.stats.Dropped.Load)
}

// RegisterObs exposes the summed per-endpoint socket counters as scrape-time
// gauges on r.
func (n *UDP) RegisterObs(r *obs.Registry) {
	r.RegisterGauge("net_udp_sent", func() uint64 { return n.Stats().Sent })
	r.RegisterGauge("net_udp_delivered", func() uint64 { return n.Stats().Delivered })
	r.RegisterGauge("net_udp_dropped", func() uint64 { return n.Stats().Dropped })
	r.RegisterGauge("net_udp_send_syscalls", func() uint64 { return n.Stats().SendCalls })
	r.RegisterGauge("net_udp_recv_syscalls", func() uint64 { return n.Stats().RecvCalls })
}
