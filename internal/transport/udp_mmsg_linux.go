//go:build linux && (amd64 || arm64)

// sendmmsg/recvmmsg wire for the UDP transport: one syscall moves up to
// sendRing outgoing (or recvRing incoming) datagrams. The stdlib syscall
// package has no mmsg wrappers (and this module deliberately has no
// golang.org/x/sys dependency), so the two syscalls are issued directly
// against the connection's RawConn file descriptor, with the runtime poller
// still providing readiness blocking: the RawConn callbacks return false on
// EAGAIN, which parks the goroutine until the socket is ready.
package transport

import (
	"sync"
	"syscall"
	"unsafe"

	"meerkat/internal/message"
)

// mmsghdr mirrors the kernel's struct mmsghdr on 64-bit Linux: a msghdr
// plus the per-message transfer count, padded so the array stride is 64
// bytes.
type mmsghdr struct {
	Hdr syscall.Msghdr
	Len uint32
	_   [4]byte
}

// udpPlat is the per-network platform state: a cache of raw IPv4 sockaddrs
// keyed by destination address, so the hot send path never rebuilds one.
// Entries are immutable once stored.
type udpPlat struct {
	raw sync.Map // message.Addr -> *syscall.RawSockaddrInet4
}

// rawAddr returns the cached kernel sockaddr for dst, building it on first
// use. Only called when the wire is in mmsg mode, which requires an IPv4
// host.
func (n *UDP) rawAddr(dst message.Addr) *syscall.RawSockaddrInet4 {
	if v, ok := n.plat.raw.Load(dst); ok {
		return v.(*syscall.RawSockaddrInet4)
	}
	sa := &syscall.RawSockaddrInet4{Family: syscall.AF_INET}
	port := n.Port(dst)
	sa.Port = uint16(port>>8) | uint16(port&0xff)<<8 // htons
	copy(sa.Addr[:], n.ip.To4())
	v, _ := n.plat.raw.LoadOrStore(dst, sa)
	return v.(*syscall.RawSockaddrInet4)
}

// udpWire is the per-endpoint mmsg state. Send fields are guarded by the
// endpoint mutex; receive fields are owned by the read loop goroutine. The
// syscall closures are built once at init so the steady-state batched send
// path allocates nothing.
type udpWire struct {
	ok bool
	rc syscall.RawConn

	// Send side.
	vec      []mmsghdr
	iovs     []syscall.Iovec
	off, lim int
	n        int
	errno    syscall.Errno
	sendFn   func(fd uintptr) bool

	// Receive side.
	rvec   []mmsghdr
	riovs  []syscall.Iovec
	rbufs  [][]byte
	rn     int
	rerrno syscall.Errno
	recvFn func(fd uintptr) bool
}

// wireInit arms the mmsg path. When it declines (batching disabled, non-IPv4
// host, or no raw access) the zero-valued wire routes everything through the
// portable fallback.
func (ep *udpEndpoint) wireInit() {
	if ep.net.noBatch || ep.net.ip == nil || ep.net.ip.To4() == nil {
		return
	}
	rc, err := ep.conn.SyscallConn()
	if err != nil {
		return
	}
	w := &ep.wire
	w.rc = rc
	w.vec = make([]mmsghdr, sendRing)
	w.iovs = make([]syscall.Iovec, sendRing)
	w.rvec = make([]mmsghdr, recvRing)
	w.riovs = make([]syscall.Iovec, recvRing)
	w.rbufs = make([][]byte, recvRing)
	for i := range w.rbufs {
		w.rbufs[i] = make([]byte, maxDatagram)
		w.riovs[i].Base = &w.rbufs[i][0]
		w.riovs[i].Len = uint64(len(w.rbufs[i]))
		w.rvec[i].Hdr.Iov = &w.riovs[i]
		w.rvec[i].Hdr.Iovlen = 1
	}
	w.sendFn = func(fd uintptr) bool {
		for {
			nn, _, e := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&w.vec[w.off])), uintptr(w.lim-w.off), 0, 0, 0)
			switch e {
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // park until the socket is writable
			}
			w.n, w.errno = int(nn), e
			return true
		}
	}
	w.recvFn = func(fd uintptr) bool {
		for {
			nn, _, e := syscall.Syscall6(sysRecvmmsg, fd,
				uintptr(unsafe.Pointer(&w.rvec[0])), uintptr(len(w.rvec)), 0, 0, 0)
			switch e {
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // park until the socket is readable
			}
			w.rn, w.rerrno = int(nn), e
			return true
		}
	}
	w.ok = true
}

// writeWire hands slots to the kernel in as few sendmmsg calls as it will
// accept (one, absent short writes). Callers hold ep.mu; the slot buffers
// stay referenced by ep.pend until after this returns, so the iovec
// pointers remain live across the syscall.
func (ep *udpEndpoint) writeWire(slots []sendSlot) error {
	w := &ep.wire
	if !w.ok {
		return ep.writeFallback(slots)
	}
	for i := range slots {
		sa := ep.net.rawAddr(slots[i].dst)
		w.iovs[i].Base = &slots[i].buf[0]
		w.iovs[i].Len = uint64(len(slots[i].buf))
		w.vec[i].Hdr.Name = (*byte)(unsafe.Pointer(sa))
		w.vec[i].Hdr.Namelen = uint32(unsafe.Sizeof(*sa))
		w.vec[i].Hdr.Iov = &w.iovs[i]
		w.vec[i].Hdr.Iovlen = 1
	}
	w.off, w.lim = 0, len(slots)
	var firstErr error
	for w.off < w.lim {
		if err := w.rc.Write(w.sendFn); err != nil {
			// Raw access failed (socket closed): everything unsent drops.
			ep.dropped.Add(uint64(w.lim - w.off))
			return err
		}
		ep.sendCalls.Add(1)
		if w.errno != 0 {
			// sendmmsg faults on the head datagram: drop it, keep going.
			ep.dropped.Add(1)
			w.off++
			if firstErr == nil {
				firstErr = w.errno
			}
			continue
		}
		if w.n <= 0 {
			break // defensive: never spin on a 0-progress success
		}
		ep.sent.Add(uint64(w.n))
		w.off += w.n
	}
	return firstErr
}

// readLoop drains inbound bursts with recvmmsg: one syscall per burst, up to
// recvRing datagrams decoded and delivered per wakeup. The endpoint is
// corked for the duration of the burst, so replies the handlers send
// coalesce into one sendmmsg when the burst ends — this is how replica
// reply emission batches without the replica code knowing.
func (ep *udpEndpoint) readLoop() {
	w := &ep.wire
	if !w.ok {
		ep.readLoopFallback()
		return
	}
	for {
		if err := w.rc.Read(w.recvFn); err != nil {
			return // socket closed
		}
		if w.rerrno != 0 {
			if ep.closed.Load() {
				return
			}
			continue // transient socket error: drop the burst
		}
		ep.recvCalls.Add(1)
		n := w.rn
		ep.cork()
		for i := 0; i < n; i++ {
			m, err := message.Decode(w.rbufs[i][:w.rvec[i].Len])
			if err != nil {
				ep.dropped.Add(1)
				continue // corrupt datagram: drop, like any UDP consumer
			}
			ep.delivered.Add(1)
			ep.h(m)
		}
		ep.uncork()
	}
}
