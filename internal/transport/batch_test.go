package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"meerkat/internal/message"
)

// sendAndCollect pushes a batch through ep and waits until the receiver's
// delivery count reaches n.
func sendAndCollect(t *testing.T, ep Endpoint, batch []Outgoing, count *atomic.Int64, n int64) {
	t.Helper()
	if err := ep.SendBatch(batch); err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	if err := ep.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	waitFor(t, "batch delivery", func() bool { return count.Load() == n })
}

// testBatchEquivalence checks the core SendBatch contract on any transport:
// a batch of N messages arrives exactly like N individual Sends would —
// same payloads, Src stamped to the sender — and the batch slice is
// reusable afterwards.
func testBatchEquivalence(t *testing.T, n Network, canSkip bool) {
	var got sync.Map
	var count atomic.Int64
	dst := message.Addr{Node: 1, Core: 0}
	if _, err := n.Listen(dst, func(m *message.Message) {
		got.Store(m.Seq, m)
		count.Add(1)
	}); err != nil {
		if canSkip {
			t.Skipf("cannot bind socket: %v", err)
		}
		t.Fatal(err)
	}
	src, err := n.Listen(message.Addr{Node: 0, Core: 0}, func(*message.Message) {})
	if err != nil {
		t.Fatal(err)
	}

	// More messages than the UDP send ring (32) so the mid-batch flush path
	// runs too.
	const total = 50
	batch := make([]Outgoing, total)
	for i := range batch {
		batch[i] = Outgoing{Dst: dst, M: &message.Message{
			Type: message.TypePut, Seq: uint64(i),
			Key: fmt.Sprintf("k%d", i), Value: []byte{byte(i)},
		}}
	}
	sendAndCollect(t, src, batch, &count, total)

	for i := uint64(0); i < total; i++ {
		v, ok := got.Load(i)
		if !ok {
			t.Fatalf("message %d missing", i)
		}
		m := v.(*message.Message)
		if m.Key != fmt.Sprintf("k%d", i) || len(m.Value) != 1 || m.Value[0] != byte(i) {
			t.Fatalf("message %d corrupted: %+v", i, m)
		}
		if m.Src != src.Addr() {
			t.Fatalf("message %d Src = %v, want %v", i, m.Src, src.Addr())
		}
	}

	// The slice (not the messages) belongs to the caller again: refill and
	// resend.
	for i := range batch {
		batch[i].M = &message.Message{Type: message.TypePut, Seq: uint64(total + i)}
	}
	sendAndCollect(t, src, batch, &count, 2*total)
}

func TestInprocSendBatchEquivalence(t *testing.T) {
	n := NewInproc(InprocConfig{})
	defer n.Close()
	testBatchEquivalence(t, n, false)
}

func TestUDPSendBatchEquivalence(t *testing.T) {
	n := NewUDP("127.0.0.1", 28200, 8)
	defer n.Close()
	testBatchEquivalence(t, n, true)
}

func TestUDPSendBatchUnbatchedFallback(t *testing.T) {
	// The same contract must hold with batching disabled (the portable
	// WriteToUDP path).
	n := NewUDP("127.0.0.1", 28300, 8)
	n.SetBatchDisabled(true)
	defer n.Close()
	testBatchEquivalence(t, n, true)
}

func TestUDPSendBatchAfterClose(t *testing.T) {
	n := NewUDP("127.0.0.1", 28400, 8)
	defer n.Close()
	ep, err := n.Listen(message.Addr{Node: 0, Core: 0}, func(*message.Message) {})
	if err != nil {
		t.Skipf("cannot bind UDP socket: %v", err)
	}
	ep.Close()
	batch := []Outgoing{{Dst: message.Addr{Node: 1}, M: &message.Message{}}}
	if err := ep.SendBatch(batch); !errors.Is(err, ErrClosed) {
		t.Fatalf("SendBatch after close: %v, want ErrClosed", err)
	}
	if err := ep.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after close: %v, want ErrClosed", err)
	}
}

// TestUDPRecvRingRace hammers one server endpoint from concurrent senders
// while its handler replies to every request — the recvmmsg buffer ring is
// reused across iterations while the reply path corks and flushes the same
// endpoint. Run under -race this is the memory-safety check for the ring.
func TestUDPRecvRingRace(t *testing.T) {
	n := NewUDP("127.0.0.1", 28500, 8)
	defer n.Close()

	serverAddr := message.Addr{Node: 0, Core: 0}
	var srvEp atomic.Pointer[udpEndpoint]
	srv, err := n.Listen(serverAddr, func(m *message.Message) {
		if ep := srvEp.Load(); ep != nil {
			ep.Send(m.Src, &message.Message{Type: message.TypePutReply, Seq: m.Seq, Value: m.Value})
		}
	})
	if err != nil {
		t.Skipf("cannot bind UDP socket: %v", err)
	}
	srvEp.Store(srv.(*udpEndpoint))

	const senders = 4
	const each = 300
	var wg sync.WaitGroup
	var replies atomic.Int64
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var seen atomic.Int64
			ep, err := n.Listen(message.Addr{Node: 10 + uint32(s), Core: 0}, func(m *message.Message) {
				if m.Type == message.TypePutReply {
					seen.Add(1)
					replies.Add(1)
				}
			})
			if err != nil {
				t.Error(err)
				return
			}
			// Windowed stream: keep up to 8 requests in flight so the
			// server's recv ring sees real multi-datagram bursts, without
			// UDP overrun losing enough to stall the test.
			payload := []byte("ring-race-payload")
			for i := 0; i < each; i++ {
				for int64(i)-seen.Load() >= 8 {
					time.Sleep(50 * time.Microsecond)
				}
				ep.Send(serverAddr, &message.Message{Type: message.TypePut, Seq: uint64(i), Value: payload})
			}
		}(s)
	}
	wg.Wait()
	// UDP may drop under burst; require most replies back rather than all.
	waitFor(t, "most replies", func() bool { return replies.Load() >= senders*each*9/10 })
}

// TestUDPStatsSurviveClose is the regression test for the counters being
// lost when Close dropped the endpoint list: post-close scrapes must still
// see the traffic.
func TestUDPStatsSurviveClose(t *testing.T) {
	n := NewUDP("127.0.0.1", 28600, 8)
	var count atomic.Int64
	dst := message.Addr{Node: 1, Core: 0}
	if _, err := n.Listen(dst, func(*message.Message) { count.Add(1) }); err != nil {
		t.Skipf("cannot bind UDP socket: %v", err)
	}
	src, err := n.Listen(message.Addr{Node: 0, Core: 0}, func(*message.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	const total = 20
	for i := 0; i < total; i++ {
		if err := src.Send(dst, &message.Message{Type: message.TypePut, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "deliveries", func() bool { return count.Load() == total })
	n.Close()

	s := n.Stats()
	if s.Sent < total || s.Delivered < total {
		t.Fatalf("post-close stats lost traffic: %+v", s)
	}
	if s.SendCalls == 0 || s.RecvCalls == 0 {
		t.Fatalf("post-close stats lost syscall counters: %+v", s)
	}
	if s.DatagramsPerSend() < 1 {
		t.Fatalf("DatagramsPerSend = %v, want >= 1", s.DatagramsPerSend())
	}
}

// TestUDPFlushDelayCoalesces checks the micro-Nagle: with a flush delay,
// sends buffer and still arrive (the timer flushes), and an explicit Flush
// forces them out early.
func TestUDPFlushDelayCoalesces(t *testing.T) {
	n := NewUDP("127.0.0.1", 28100, 8)
	n.SetFlushDelay(2 * time.Millisecond)
	defer n.Close()

	var count atomic.Int64
	dst := message.Addr{Node: 1, Core: 0}
	if _, err := n.Listen(dst, func(*message.Message) { count.Add(1) }); err != nil {
		t.Skipf("cannot bind UDP socket: %v", err)
	}
	src, err := n.Listen(message.Addr{Node: 0, Core: 0}, func(*message.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		src.Send(dst, &message.Message{Type: message.TypePut, Seq: uint64(i)})
	}
	// The timer must deliver them even without an explicit Flush.
	waitFor(t, "timer flush", func() bool { return count.Load() == 3 })

	// And Flush bounds the latency without waiting out the delay.
	src.Send(dst, &message.Message{Type: message.TypePut, Seq: 99})
	if err := src.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "explicit flush", func() bool { return count.Load() == 4 })
}

func TestUDPValidatePortMap(t *testing.T) {
	n := NewUDP("127.0.0.1", 29000, 8)
	if err := n.ValidatePortMap(1, 3, 64); err != nil {
		t.Fatalf("valid map rejected: %v", err)
	}
	// 65 partitions x 3 replicas = 195 replica nodes, reaching into the
	// recovery-coordinator slots at 192.
	if err := n.ValidatePortMap(65, 3, 4); !errors.Is(err, ErrPortCollision) {
		t.Fatalf("collision map: %v, want ErrPortCollision", err)
	}
	// Enough clients to push the top port past 65535.
	if err := n.ValidatePortMap(1, 3, 10000); !errors.Is(err, ErrPortRange) {
		t.Fatalf("overflow map: %v, want ErrPortRange", err)
	}
}

func TestUDPListenPortCollision(t *testing.T) {
	n := NewUDP("127.0.0.1", 28000, 4)
	defer n.Close()
	// Plain node 195 occupies the slot of recovery coordinator partition 3
	// (recovery slots start at 192).
	if _, err := n.Listen(message.Addr{Node: 195, Core: 0}, func(*message.Message) {}); err != nil {
		t.Skipf("cannot bind UDP socket: %v", err)
	}
	_, err := n.Listen(message.Addr{Node: 1<<15 + 3, Core: 0}, func(*message.Message) {})
	if !errors.Is(err, ErrPortCollision) {
		t.Fatalf("colliding listen: %v, want ErrPortCollision", err)
	}
	// Same address twice is a different error: address in use.
	_, err = n.Listen(message.Addr{Node: 195, Core: 0}, func(*message.Message) {})
	if !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("duplicate listen: %v, want ErrAddrInUse", err)
	}
}
