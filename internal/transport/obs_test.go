package transport

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"meerkat/internal/message"
	"meerkat/internal/obs"
)

// TestInprocDropsVisibleInScrape induces queue-full and link-filter drops
// and checks they surface through the obs registry — both in a programmatic
// snapshot and in an actual HTTP /metrics scrape.
func TestInprocDropsVisibleInScrape(t *testing.T) {
	// QueueDepth 1 and Batch 1 with a handler that blocks until released:
	// the second in-flight message fills the queue, the rest overflow.
	release := make(chan struct{})
	n := NewInproc(InprocConfig{QueueDepth: 1, Batch: 1})
	defer n.Close()
	reg := obs.NewRegistry()
	n.RegisterObs(reg)

	sink := message.Addr{Node: 1}
	if _, err := n.Listen(sink, func(*message.Message) { <-release }); err != nil {
		t.Fatal(err)
	}
	src, err := n.Listen(message.Addr{Node: 2}, func(*message.Message) {})
	if err != nil {
		t.Fatal(err)
	}

	// First send may be consumed by the delivery goroutine (now blocked),
	// second sits in the queue; everything after overflows the ring.
	const sends = 10
	for i := 0; i < sends; i++ {
		if err := src.Send(sink, &message.Message{Type: message.TypeRead}); err != nil {
			t.Fatal(err)
		}
	}
	close(release)

	gauges := map[string]uint64{}
	for _, g := range reg.Snapshot().Gauges {
		gauges[g.Name] = g.Value
	}
	if gauges["net_inproc_sent"] != sends {
		t.Errorf("net_inproc_sent = %d, want %d", gauges["net_inproc_sent"], sends)
	}
	queueDrops := gauges["net_inproc_dropped"]
	if queueDrops < sends-2 {
		t.Errorf("net_inproc_dropped = %d, want >= %d (ring overflow)", queueDrops, sends-2)
	}
	if gauges["net_inproc_sent"] != gauges["net_inproc_delivered"]+gauges["net_inproc_dropped"] {
		t.Errorf("sent (%d) != delivered (%d) + dropped (%d)",
			gauges["net_inproc_sent"], gauges["net_inproc_delivered"], gauges["net_inproc_dropped"])
	}

	// Link-filter drops (partitions/crashes) must be visible too.
	n.Isolate(1)
	for i := 0; i < 3; i++ {
		if err := src.Send(sink, &message.Message{Type: message.TypeRead}); err != nil {
			t.Fatal(err)
		}
	}
	n.Heal()

	srv := httptest.NewServer(obs.Handler(reg))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var droppedLine string
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "meerkat_net_inproc_dropped ") {
			droppedLine = line
		}
	}
	if droppedLine == "" {
		t.Fatalf("/metrics scrape missing meerkat_net_inproc_dropped:\n%s", body)
	}
	want := queueDrops + 3
	if droppedLine != "meerkat_net_inproc_dropped "+uitoa(want) {
		t.Errorf("scrape line %q, want value %d", droppedLine, want)
	}
}

func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestUDPStatsVisibleInScrape exercises the UDP transport's per-endpoint
// counters end to end: real datagrams over loopback, summed at scrape time.
func TestUDPStatsVisibleInScrape(t *testing.T) {
	n := NewUDP("127.0.0.1", 38000, 4)
	defer n.Close()
	reg := obs.NewRegistry()
	n.RegisterObs(reg)

	got := make(chan *message.Message, 8)
	if _, err := n.Listen(message.Addr{Node: 1}, func(m *message.Message) { got <- m }); err != nil {
		t.Fatal(err)
	}
	src, err := n.Listen(message.Addr{Node: 2}, func(*message.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	const sends = 5
	for i := 0; i < sends; i++ {
		if err := src.Send(message.Addr{Node: 1}, &message.Message{Type: message.TypeRead}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < sends; i++ {
		select {
		case <-got:
		case <-time.After(2 * time.Second):
			t.Fatalf("only %d of %d datagrams delivered", i, sends)
		}
	}

	gauges := map[string]uint64{}
	for _, g := range reg.Snapshot().Gauges {
		gauges[g.Name] = g.Value
	}
	if gauges["net_udp_sent"] != sends {
		t.Errorf("net_udp_sent = %d, want %d", gauges["net_udp_sent"], sends)
	}
	if gauges["net_udp_delivered"] != sends {
		t.Errorf("net_udp_delivered = %d, want %d", gauges["net_udp_delivered"], sends)
	}
}
