package faultnet

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"meerkat/internal/message"
	"meerkat/internal/transport"
)

// collector buffers delivered messages behind a mutex for assertions.
type collector struct {
	mu   sync.Mutex
	msgs []*message.Message
}

func (c *collector) handle(m *message.Message) {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
}

func (c *collector) wait(n int, d time.Duration) int {
	deadline := time.Now().Add(d)
	for {
		c.mu.Lock()
		got := len(c.msgs)
		c.mu.Unlock()
		if got >= n || time.Now().After(deadline) {
			return got
		}
		time.Sleep(time.Millisecond)
	}
}

func (c *collector) seqs() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint64, len(c.msgs))
	for i, m := range c.msgs {
		out[i] = m.Seq
	}
	return out
}

func addr(node, core uint32) message.Addr { return message.Addr{Node: node, Core: core} }

// pipe builds a wrapped inproc network with a sender endpoint on node 1 and
// a receiving endpoint (with collector) on node 2.
func pipe(t *testing.T, plan *Plan) (*Network, transport.Endpoint, *collector) {
	t.Helper()
	n := Wrap(transport.NewInproc(transport.InprocConfig{}), plan)
	t.Cleanup(func() { n.Close() })
	var col collector
	if _, err := n.Listen(addr(2, 0), col.handle); err != nil {
		t.Fatal(err)
	}
	src, err := n.Listen(addr(1, 0), func(*message.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	return n, src, &col
}

func TestTransparentWithoutFaults(t *testing.T) {
	_, src, col := pipe(t, nil)
	for i := 0; i < 100; i++ {
		if err := src.Send(addr(2, 0), &message.Message{Type: message.TypeRead, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := col.wait(100, time.Second); got != 100 {
		t.Fatalf("delivered %d/100 without faults", got)
	}
}

func TestDropIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []uint64 {
		plan := &Plan{Seed: seed, Rules: []Rule{{
			SrcNode: Any, DstNode: Any, SrcCore: Any, DstCore: Any, DropProb: 0.3,
		}}}
		_, src, col := pipe(t, plan)
		for i := 0; i < 400; i++ {
			src.Send(addr(2, 0), &message.Message{Type: message.TypeRead, Seq: uint64(i)})
		}
		col.wait(400, 200*time.Millisecond) // waits out the tail
		return col.seqs()
	}
	a, b := run(7), run(7)
	if len(a) == 0 || len(a) == 400 {
		t.Fatalf("drop rule had no effect: %d/400 delivered", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different survivor counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different survivors at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(c) == len(a)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical drop patterns")
	}
}

func TestCrashAndRestartEvents(t *testing.T) {
	plan := &Plan{Events: []Event{
		{At: 10, Op: OpCrash, Node: 2},
		{At: 20, Op: OpRestart, Node: 2},
	}}
	n, src, col := pipe(t, plan)

	for i := 0; i < 9; i++ { // sends 1..9: before the crash
		src.Send(addr(2, 0), &message.Message{Type: message.TypeRead, Seq: uint64(i)})
	}
	if got := col.wait(9, time.Second); got != 9 {
		t.Fatalf("pre-crash delivered %d/9", got)
	}
	for i := 9; i < 19; i++ { // sends 10..19: black-holed
		src.Send(addr(2, 0), &message.Message{Type: message.TypeRead, Seq: uint64(i)})
	}
	time.Sleep(10 * time.Millisecond)
	if got := col.wait(9, 50*time.Millisecond); got != 9 {
		t.Fatalf("black-holed messages leaked through: %d", got)
	}
	for i := 19; i < 29; i++ { // send 20 fires the restart
		src.Send(addr(2, 0), &message.Message{Type: message.TypeRead, Seq: uint64(i)})
	}
	if got := col.wait(19, time.Second); got != 19 {
		t.Fatalf("post-restart delivered %d, want 19", got)
	}

	// Both events were published for the harness.
	for _, want := range []Op{OpCrash, OpRestart} {
		select {
		case ev := <-n.Events():
			if ev.Op != want || ev.Node != 2 {
				t.Fatalf("event %+v, want op %s node 2", ev, want)
			}
		default:
			t.Fatalf("missing %s event", want)
		}
	}
	if bh := n.Stats().Blackhole.Load(); bh != 10 {
		t.Fatalf("blackholed %d, want 10", bh)
	}
}

func TestPartitionSeparatesGroups(t *testing.T) {
	plan := &Plan{Events: []Event{
		{At: 0, Op: OpPartition, Groups: [][]uint32{{1}, {2}}},
	}}
	_, src, col := pipe(t, plan)
	for i := 0; i < 10; i++ {
		src.Send(addr(2, 0), &message.Message{Type: message.TypeRead, Seq: uint64(i)})
	}
	if got := col.wait(1, 30*time.Millisecond); got != 0 {
		t.Fatalf("partitioned nodes exchanged %d messages", got)
	}
}

func TestPartitionImplicitGroup(t *testing.T) {
	// Only node 9 is isolated; unlisted nodes 1 and 2 share the implicit
	// group and keep talking.
	plan := &Plan{Events: []Event{
		{At: 0, Op: OpPartition, Groups: [][]uint32{{9}}},
		{At: 15, Op: OpHeal},
	}}
	_, src, col := pipe(t, plan)
	for i := 0; i < 10; i++ {
		src.Send(addr(2, 0), &message.Message{Type: message.TypeRead, Seq: uint64(i)})
	}
	if got := col.wait(10, time.Second); got != 10 {
		t.Fatalf("implicit-group traffic blocked: %d/10", got)
	}
}

func TestDuplicateAndReorder(t *testing.T) {
	plan := &Plan{Seed: 3, Rules: []Rule{{
		SrcNode: Any, DstNode: Any, SrcCore: Any, DstCore: Any, DupProb: 1,
	}}}
	_, src, col := pipe(t, plan)
	src.Send(addr(2, 0), &message.Message{Type: message.TypeRead, Seq: 1})
	if got := col.wait(2, time.Second); got != 2 {
		t.Fatalf("DupProb=1 delivered %d copies, want 2", got)
	}

	plan2 := &Plan{Seed: 3, Rules: []Rule{{
		SrcNode: Any, DstNode: Any, SrcCore: Any, DstCore: Any, ReorderProb: 1,
	}}}
	_, src2, col2 := pipe(t, plan2)
	src2.Send(addr(2, 0), &message.Message{Type: message.TypeRead, Seq: 1})
	src2.Send(addr(2, 0), &message.Message{Type: message.TypeRead, Seq: 2})
	src2.Send(addr(2, 0), &message.Message{Type: message.TypeRead, Seq: 3})
	// Every message is held and released by its successor: 1 and 2 arrive
	// (each popped when the next message passes), 3 stays held.
	if got := col2.wait(2, time.Second); got != 2 {
		t.Fatalf("reorder released %d messages, want 2", got)
	}
	seqs := col2.seqs()
	if seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("reorder sequence %v", seqs)
	}
}

func TestDelayRuleDefersDelivery(t *testing.T) {
	plan := &Plan{Rules: []Rule{{
		SrcNode: Any, DstNode: Any, SrcCore: Any, DstCore: Any,
		DelayProb: 1, Delay: 30 * time.Millisecond,
	}}}
	_, src, col := pipe(t, plan)
	start := time.Now()
	src.Send(addr(2, 0), &message.Message{Type: message.TypeRead, Seq: 1})
	if got := col.wait(1, time.Second); got != 1 {
		t.Fatal("delayed message never arrived")
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Fatalf("delivery after %v, want >= ~30ms", el)
	}
}

func TestStallRuleInstalledAndCleared(t *testing.T) {
	plan := &Plan{Events: []Event{
		{At: 5, Op: OpRule, Rule: &Rule{
			ID: "stall-2-0", SrcNode: Any, SrcCore: Any, DstNode: 2, DstCore: 0,
			DropProb: 1,
		}},
		{At: 10, Op: OpClearRule, RuleID: "stall-2-0"},
	}}
	_, src, col := pipe(t, plan)
	for i := 0; i < 4; i++ { // sends 1..4 pass
		src.Send(addr(2, 0), &message.Message{Type: message.TypeRead, Seq: uint64(i)})
	}
	if got := col.wait(4, time.Second); got != 4 {
		t.Fatalf("pre-stall delivered %d/4", got)
	}
	for i := 4; i < 9; i++ { // sends 5..9 dropped by the stall rule
		src.Send(addr(2, 0), &message.Message{Type: message.TypeRead, Seq: uint64(i)})
	}
	for i := 9; i < 14; i++ { // send 10 clears; 10..14 pass
		src.Send(addr(2, 0), &message.Message{Type: message.TypeRead, Seq: uint64(i)})
	}
	if got := col.wait(9, time.Second); got != 9 {
		t.Fatalf("delivered %d, want 9 (4 before + 5 after the stall)", got)
	}
}

func TestPlanDumpRoundTripAndDeterminism(t *testing.T) {
	plan := &Plan{
		Seed:  42,
		Rules: []Rule{{ID: "loss", SrcNode: Any, DstNode: Any, SrcCore: Any, DstCore: Any, DropProb: 0.01}},
		Events: []Event{
			{At: 100, Op: OpCrash, Node: 3},
			{At: 500, Op: OpRestart, Node: 3},
		},
	}
	a, err := plan.Dump()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := plan.Dump()
	if !bytes.Equal(a, b) {
		t.Fatal("Dump is not byte-stable")
	}
	back, err := Load(a)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := back.Dump()
	if !bytes.Equal(a, c) {
		t.Fatal("Dump/Load/Dump changed the schedule")
	}
}

func TestPlanValidation(t *testing.T) {
	bad := []*Plan{
		{Rules: []Rule{{DropProb: 1.5}}},
		{Rules: []Rule{{Delay: -time.Second}}},
		{Events: []Event{{Op: "warp"}}},
		{Events: []Event{{At: 10, Op: OpCrash}, {At: 5, Op: OpHeal}}},
		{Events: []Event{{Op: OpRule}}},
		{Events: []Event{{Op: OpClearRule}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d validated", i)
		}
	}
	if err := (&Plan{}).Validate(); err != nil {
		t.Errorf("zero plan rejected: %v", err)
	}
}
