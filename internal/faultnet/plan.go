// Package faultnet is a deterministic fault-injection layer for any
// transport.Network. It wraps the real fabric and applies a scriptable
// schedule of faults on the send path: per-link drop/delay/duplicate/reorder
// rules, asymmetric partitions, node crash/restart black-holes, and slow-core
// stalls, all triggered either from the start or at a chosen global message
// count.
//
// # Determinism contract
//
// A Plan is pure data: given the same plan (including its seed), two runs
// inject the same fault schedule — the same rules activate and the same
// events fire at the same global send counts, and the serialized plan is
// byte-for-byte identical. Random per-message decisions (drops, duplicates,
// reorders, delay jitter) are drawn from a private splitmix64 stream per
// (source endpoint, destination endpoint) link, seeded as
//
//	mix64(seed ^ src.Node<<48 ^ src.Core<<32 ^ dst.Node<<16 ^ dst.Core)
//
// so each link's decision sequence is a pure function of the plan seed and
// that link's own send sequence — concurrent senders on different links never
// perturb each other's streams. What stays scheduler-dependent is which
// wall-clock message is the Nth send globally (event triggers count sends,
// not wall time) and how per-link streams interleave; the *schedule* — which
// faults exist and when they activate in the count domain — does not.
//
// The layer injects faults the underlying transport is already specified to
// exhibit (messages may be dropped, delayed, reordered, or duplicated), so
// correct protocol code needs no changes to run under it.
package faultnet

import (
	"encoding/json"
	"fmt"
	"time"
)

// Any matches every node or core in a Rule selector.
const Any = -1

// Rule is one steady-state link fault. Selectors match the transport
// addresses of the sending and receiving endpoints; Any (-1) is a wildcard.
// The first rule that matches a message applies; later rules are ignored for
// that message, which keeps the per-message draw sequence well defined.
type Rule struct {
	// ID names the rule so an event can remove it (OpClearRule).
	ID string `json:"id,omitempty"`

	// SrcNode/DstNode/SrcCore/DstCore select the link; Any matches all.
	SrcNode int `json:"src_node"`
	DstNode int `json:"dst_node"`
	SrcCore int `json:"src_core"`
	DstCore int `json:"dst_core"`

	// DropProb is the probability the message is silently discarded.
	DropProb float64 `json:"drop_prob,omitempty"`
	// DupProb is the probability the message is delivered twice.
	DupProb float64 `json:"dup_prob,omitempty"`
	// ReorderProb is the probability the message is held back and released
	// only after the next message on the same link, swapping their order.
	// At most one message per link is held at a time.
	ReorderProb float64 `json:"reorder_prob,omitempty"`
	// DelayProb gates the extra latency below; 1 delays every message the
	// rule matches (a slow link or a stalled core).
	DelayProb float64 `json:"delay_prob,omitempty"`
	// Delay is the base extra latency; Jitter adds a uniform random extra
	// in [0, Jitter).
	Delay  time.Duration `json:"delay,omitempty"`
	Jitter time.Duration `json:"jitter,omitempty"`
}

// matches reports whether the rule selects the (src, dst) link.
func (r *Rule) matches(srcNode, srcCore, dstNode, dstCore uint32) bool {
	return (r.SrcNode == Any || uint32(r.SrcNode) == srcNode) &&
		(r.DstNode == Any || uint32(r.DstNode) == dstNode) &&
		(r.SrcCore == Any || uint32(r.SrcCore) == srcCore) &&
		(r.DstCore == Any || uint32(r.DstCore) == dstCore)
}

// validate rejects out-of-range probabilities and negative delays.
func (r *Rule) validate() error {
	for _, p := range []float64{r.DropProb, r.DupProb, r.ReorderProb, r.DelayProb} {
		if p < 0 || p > 1 {
			return fmt.Errorf("faultnet: rule %q: probability %v out of [0,1]", r.ID, p)
		}
	}
	if r.Delay < 0 || r.Jitter < 0 {
		return fmt.Errorf("faultnet: rule %q: negative delay", r.ID)
	}
	return nil
}

// Op is the kind of a scheduled Event.
type Op string

// Event operations.
const (
	// OpCrash black-holes a node: every message to or from it is dropped.
	// The event is also delivered to the Events channel so a harness can
	// stop the real replica behind the node id.
	OpCrash Op = "crash"
	// OpRestart removes a node's black-hole. Delivered to the Events
	// channel so a harness can restart and recover the real replica.
	OpRestart Op = "restart"
	// OpPartition splits the network: nodes may talk only within their
	// group. Nodes not listed in any group form one implicit extra group.
	// Replaces any previous partition.
	OpPartition Op = "partition"
	// OpHeal removes the partition (crash black-holes are unaffected).
	OpHeal Op = "heal"
	// OpRule installs Event.Rule ahead of the currently active rules.
	OpRule Op = "rule"
	// OpClearRule removes every active rule whose ID equals Event.RuleID.
	OpClearRule Op = "clear-rule"
)

// Event is one scheduled fault transition, fired when the global send count
// reaches At. Events with equal At fire in plan order.
type Event struct {
	// At is the global message-send count that triggers the event; an
	// event with At == 0 fires before the first send.
	At uint64 `json:"at"`
	Op Op     `json:"op"`

	// Node is the target of OpCrash/OpRestart.
	Node uint32 `json:"node,omitempty"`
	// Groups are the partition components of OpPartition.
	Groups [][]uint32 `json:"groups,omitempty"`
	// Rule is installed by OpRule.
	Rule *Rule `json:"rule,omitempty"`
	// RuleID selects the rules removed by OpClearRule.
	RuleID string `json:"rule_id,omitempty"`
}

func (e *Event) validate() error {
	switch e.Op {
	case OpCrash, OpRestart, OpPartition, OpHeal:
	case OpRule:
		if e.Rule == nil {
			return fmt.Errorf("faultnet: %s event at %d has no rule", e.Op, e.At)
		}
		return e.Rule.validate()
	case OpClearRule:
		if e.RuleID == "" {
			return fmt.Errorf("faultnet: clear-rule event at %d has no rule id", e.At)
		}
	default:
		return fmt.Errorf("faultnet: unknown event op %q", e.Op)
	}
	return nil
}

// Plan is a complete, serializable fault schedule: a seed for the per-link
// decision streams, the rules active from the start, and the event script.
// The zero value is a valid no-fault plan.
type Plan struct {
	// Seed derives every per-link PRNG. Two runs of the same plan use the
	// same streams.
	Seed int64 `json:"seed"`
	// Rules are active from the first message.
	Rules []Rule `json:"rules,omitempty"`
	// Events fire in order of At (stable within equal counts).
	Events []Event `json:"events,omitempty"`
}

// Validate rejects malformed plans: out-of-range probabilities, negative
// delays, unknown ops, and events out of At order (sortedness is part of the
// plan's identity — the schedule artifact must replay exactly as written).
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i := range p.Rules {
		if err := p.Rules[i].validate(); err != nil {
			return err
		}
	}
	var last uint64
	for i := range p.Events {
		if err := p.Events[i].validate(); err != nil {
			return err
		}
		if p.Events[i].At < last {
			return fmt.Errorf("faultnet: events out of order: event %d at %d after %d",
				i, p.Events[i].At, last)
		}
		last = p.Events[i].At
	}
	return nil
}

// Dump renders the plan indented and field-stable, so the serialized
// schedule is a byte-for-byte reproducible artifact suitable for diffing
// across runs and uploading from CI on failure.
func (p *Plan) Dump() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// Load parses a plan previously serialized with Dump (schedule replay).
func Load(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("faultnet: parsing plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}
