package faultnet

import "meerkat/internal/obs"

// RegisterObs exposes the injector's fault counters as scrape-time gauges on
// r, so a run under injected faults shows its drop/dup/delay/reorder volume
// and event progress next to the protocol's own lifecycle counters. Gauge
// closures read the atomic counters only at snapshot time; nothing is added
// to the send path.
func (n *Network) RegisterObs(r *obs.Registry) {
	r.RegisterGauge("faultnet_sent", n.stats.Sent.Load)
	r.RegisterGauge("faultnet_dropped", n.stats.Dropped.Load)
	r.RegisterGauge("faultnet_blackholed", n.stats.Blackhole.Load)
	r.RegisterGauge("faultnet_duplicated", n.stats.Duplicated.Load)
	r.RegisterGauge("faultnet_delayed", n.stats.Delayed.Load)
	r.RegisterGauge("faultnet_reordered", n.stats.Reordered.Load)
	r.RegisterGauge("faultnet_events_fired", n.stats.EventsFired.Load)
}
