package faultnet

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"meerkat/internal/message"
	"meerkat/internal/transport"
)

// Stats counts injected faults. Read with the atomic Load methods; every
// counter is also exported as an obs gauge by RegisterObs.
type Stats struct {
	Sent        atomic.Uint64 // messages entering the injector
	Dropped     atomic.Uint64 // rule drops
	Blackhole   atomic.Uint64 // drops due to crash black-holes and partitions
	Duplicated  atomic.Uint64
	Delayed     atomic.Uint64
	Reordered   atomic.Uint64
	EventsFired atomic.Uint64
}

// PlanStats is a plain-value snapshot of Stats, for embedding in results
// and reports.
type PlanStats struct {
	Sent        uint64 `json:"sent"`
	Dropped     uint64 `json:"dropped"`
	Blackholed  uint64 `json:"blackholed"`
	Duplicated  uint64 `json:"duplicated"`
	Delayed     uint64 `json:"delayed"`
	Reordered   uint64 `json:"reordered"`
	EventsFired uint64 `json:"events_fired"`
}

// Summary loads every counter once and returns the plain-value snapshot.
func (s *Stats) Summary() PlanStats {
	return PlanStats{
		Sent:        s.Sent.Load(),
		Dropped:     s.Dropped.Load(),
		Blackholed:  s.Blackhole.Load(),
		Duplicated:  s.Duplicated.Load(),
		Delayed:     s.Delayed.Load(),
		Reordered:   s.Reordered.Load(),
		EventsFired: s.EventsFired.Load(),
	}
}

// netState is the injector's copy-on-write fault state: it is replaced
// wholesale when an event fires and read with one atomic load per send, so
// the steady state adds no locking to the send path.
type netState struct {
	down   map[uint32]bool   // crashed (black-holed) nodes
	groups []map[uint32]bool // partition components; nil = fully connected
	rules  []Rule            // active rules, first match wins
}

// reachable applies crash and partition state to the (src, dst) node pair.
func (s *netState) reachable(src, dst uint32) bool {
	if s.down[src] || s.down[dst] {
		return false
	}
	if s.groups == nil {
		return true
	}
	return s.groupOf(src) == s.groupOf(dst)
}

// groupOf returns the partition component index of node; nodes not listed in
// any component share the implicit component -1.
func (s *netState) groupOf(node uint32) int {
	for i, g := range s.groups {
		if g[node] {
			return i
		}
	}
	return -1
}

// linkState is the per-(src endpoint, dst endpoint) decision state: the
// splitmix64 stream and the at-most-one held (reordered) message. One sender
// goroutine drives each source endpoint in the intended wiring, so the mutex
// is uncontended; it exists to keep the layer safe under any usage.
type linkState struct {
	mu   sync.Mutex
	rng  uint64
	held *heldMsg
}

type heldMsg struct {
	dst message.Addr
	m   *message.Message
}

// next draws one uniform float64 in [0, 1) from the link's stream.
// Callers hold l.mu.
func (l *linkState) next() float64 {
	l.rng += 0x9e3779b97f4a7c15
	return float64(mix64(l.rng)>>11) / (1 << 53)
}

// mix64 is the splitmix64 finalizer (the same stream discipline the inproc
// transport uses for its drop PRNGs).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Network wraps a transport.Network and injects the plan's faults into every
// send. It implements transport.Network; endpoints returned by Listen wrap
// the inner transport's endpoints.
type Network struct {
	inner transport.Network
	plan  *Plan
	stats Stats

	msgCount atomic.Uint64
	state    atomic.Pointer[netState]

	// nextAt caches the trigger count of the next unfired event so the
	// steady-state send path pays one atomic load, not a mutex.
	nextAt  atomic.Uint64
	eventMu sync.Mutex
	nextIdx int // first unfired event (guarded by eventMu)

	linkMu sync.RWMutex
	links  map[[2]message.Addr]*linkState

	events chan Event // fired events, for the harness controller; may be nil
}

// Wrap layers the plan's faults over inner. The plan must be valid
// (Plan.Validate); Wrap panics otherwise, because a half-applied schedule is
// worse than no schedule. A nil plan yields a transparent wrapper.
func Wrap(inner transport.Network, plan *Plan) *Network {
	if plan == nil {
		plan = &Plan{}
	}
	if err := plan.Validate(); err != nil {
		panic(err)
	}
	n := &Network{
		inner: inner,
		plan:  plan,
		links: make(map[[2]message.Addr]*linkState),
		// Buffered to the event count: the firing send never blocks on a
		// slow consumer, and no event is ever lost.
		events: make(chan Event, len(plan.Events)),
	}
	st := &netState{rules: append([]Rule(nil), plan.Rules...)}
	n.state.Store(st)
	if len(plan.Events) > 0 {
		n.nextAt.Store(plan.Events[0].At)
		// Events scheduled at count 0 precede the first send.
		n.fireDue(0)
	} else {
		n.nextAt.Store(math.MaxUint64)
	}
	return n
}

// Plan returns the wrapped (immutable) schedule.
func (n *Network) Plan() *Plan { return n.plan }

// Stats returns the injector's fault counters.
func (n *Network) Stats() *Stats { return &n.stats }

// Events returns the channel on which fired events are delivered, in firing
// order. A harness that maps OpCrash/OpRestart onto real replica lifecycle
// (stop, state transfer, epoch change) consumes this; leaving the channel
// undrained is safe.
func (n *Network) Events() <-chan Event { return n.events }

// MessageCount returns the number of sends observed so far — the clock the
// event schedule runs on.
func (n *Network) MessageCount() uint64 { return n.msgCount.Load() }

// Listen implements transport.Network.
func (n *Network) Listen(addr message.Addr, h transport.Handler) (transport.Endpoint, error) {
	ep, err := n.inner.Listen(addr, h)
	if err != nil {
		return nil, err
	}
	return &endpoint{net: n, inner: ep}, nil
}

// Close implements transport.Network.
func (n *Network) Close() error { return n.inner.Close() }

// fireDue applies every event with At <= count, in plan order, exactly once.
func (n *Network) fireDue(count uint64) {
	n.eventMu.Lock()
	defer n.eventMu.Unlock()
	events := n.plan.Events
	for n.nextIdx < len(events) && events[n.nextIdx].At <= count {
		ev := events[n.nextIdx]
		n.nextIdx++
		n.apply(&ev)
		n.stats.EventsFired.Add(1)
		select {
		case n.events <- ev:
		default: // capacity == len(events); unreachable, but never block
		}
	}
	if n.nextIdx < len(events) {
		n.nextAt.Store(events[n.nextIdx].At)
	} else {
		n.nextAt.Store(math.MaxUint64)
	}
}

// apply installs one event into a fresh copy of the fault state.
// Callers hold eventMu.
func (n *Network) apply(ev *Event) {
	old := n.state.Load()
	st := &netState{
		down:   make(map[uint32]bool, len(old.down)),
		groups: old.groups,
		rules:  old.rules,
	}
	for node := range old.down {
		st.down[node] = true
	}
	switch ev.Op {
	case OpCrash:
		st.down[ev.Node] = true
	case OpRestart:
		delete(st.down, ev.Node)
	case OpPartition:
		st.groups = make([]map[uint32]bool, len(ev.Groups))
		for i, g := range ev.Groups {
			st.groups[i] = make(map[uint32]bool, len(g))
			for _, node := range g {
				st.groups[i][node] = true
			}
		}
	case OpHeal:
		st.groups = nil
	case OpRule:
		rules := make([]Rule, 0, len(old.rules)+1)
		rules = append(rules, *ev.Rule)
		rules = append(rules, old.rules...)
		st.rules = rules
	case OpClearRule:
		rules := make([]Rule, 0, len(old.rules))
		for _, r := range old.rules {
			if r.ID != ev.RuleID {
				rules = append(rules, r)
			}
		}
		st.rules = rules
	}
	n.state.Store(st)
}

// link returns (lazily creating) the decision state of the (src, dst) link.
func (n *Network) link(src, dst message.Addr) *linkState {
	key := [2]message.Addr{src, dst}
	n.linkMu.RLock()
	l := n.links[key]
	n.linkMu.RUnlock()
	if l != nil {
		return l
	}
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	if l = n.links[key]; l != nil {
		return l
	}
	seed := uint64(n.plan.Seed) ^
		uint64(src.Node)<<48 ^ uint64(src.Core)<<32 ^
		uint64(dst.Node)<<16 ^ uint64(dst.Core)
	l = &linkState{rng: mix64(seed)}
	n.links[key] = l
	return l
}

// endpoint wraps one inner endpoint, running every Send through the injector.
type endpoint struct {
	net   *Network
	inner transport.Endpoint
}

// Addr implements transport.Endpoint.
func (ep *endpoint) Addr() message.Addr { return ep.inner.Addr() }

// Close implements transport.Endpoint.
func (ep *endpoint) Close() error { return ep.inner.Close() }

// Send implements transport.Endpoint: count the send, fire due events, apply
// crash/partition state, then run the first matching rule's drop, duplicate,
// reorder, and delay draws against the link's private stream.
func (ep *endpoint) Send(dst message.Addr, m *message.Message) error {
	n := ep.net
	count := n.msgCount.Add(1)
	n.stats.Sent.Add(1)
	if count >= n.nextAt.Load() {
		n.fireDue(count)
	}

	src := ep.inner.Addr()
	st := n.state.Load()
	if !st.reachable(src.Node, dst.Node) {
		n.stats.Blackhole.Add(1)
		return nil // silently dropped, like a dead link
	}

	var rule *Rule
	for i := range st.rules {
		if st.rules[i].matches(src.Node, src.Core, dst.Node, dst.Core) {
			rule = &st.rules[i]
			break
		}
	}
	if rule == nil {
		return ep.inner.Send(dst, m)
	}

	l := n.link(src, dst)
	l.mu.Lock()
	if rule.DropProb > 0 && l.next() < rule.DropProb {
		l.mu.Unlock()
		n.stats.Dropped.Add(1)
		return nil
	}
	dup := rule.DupProb > 0 && l.next() < rule.DupProb
	reorder := rule.ReorderProb > 0 && l.next() < rule.ReorderProb
	var delay time.Duration
	if rule.DelayProb > 0 && l.next() < rule.DelayProb {
		delay = rule.Delay
		if rule.Jitter > 0 {
			l.rng += 0x9e3779b97f4a7c15
			delay += time.Duration(mix64(l.rng) % uint64(rule.Jitter))
		}
	}

	if reorder && delay == 0 {
		// Hold this message; release the previously held one (if any) now,
		// so at most one message per link is ever in the hold slot. The held
		// message departs when the link's next message passes through.
		prev := l.held
		l.held = &heldMsg{dst: dst, m: m}
		l.mu.Unlock()
		n.stats.Reordered.Add(1)
		if prev != nil {
			ep.inner.Send(prev.dst, prev.m)
		}
		return nil
	}
	held := l.held
	l.held = nil
	l.mu.Unlock()

	err := ep.send(dst, m, dup, delay)
	if held != nil {
		// A message passed the link: release the held one after it.
		ep.inner.Send(held.dst, held.m)
	}
	return err
}

// SendBatch implements transport.Endpoint. Each message runs through the
// injector individually — fault draws are per message, exactly as if the
// caller had issued N Sends — so fault schedules are identical whether the
// layer below batches or not.
func (ep *endpoint) SendBatch(batch []transport.Outgoing) error {
	var firstErr error
	for i := range batch {
		if err := ep.Send(batch[i].Dst, batch[i].M); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Flush implements transport.Endpoint, passing through to the wrapped wire.
func (ep *endpoint) Flush() error { return ep.inner.Flush() }

// send delivers m (and its duplicate) now or after the injected delay.
// Duplicates are distinct Message values sharing payload slices: receivers
// treat inbound messages as immutable, exactly as with a duplicating network.
func (ep *endpoint) send(dst message.Addr, m *message.Message, dup bool, delay time.Duration) error {
	if dup {
		ep.net.stats.Duplicated.Add(1)
	}
	if delay > 0 {
		ep.net.stats.Delayed.Add(1)
		inner := ep.inner
		time.AfterFunc(delay, func() {
			inner.Send(dst, m)
			if dup {
				m2 := *m
				inner.Send(dst, &m2)
			}
		})
		return nil
	}
	err := ep.inner.Send(dst, m)
	if dup {
		m2 := *m
		ep.inner.Send(dst, &m2)
	}
	return err
}
