package trecord

import (
	"sync"
	"testing"

	"meerkat/internal/message"
	"meerkat/internal/timestamp"
)

func tid(seq uint64) timestamp.TxnID { return timestamp.TxnID{Seq: seq, ClientID: 1} }

func TestGetOrCreate(t *testing.T) {
	p := NewPartition()
	r, created := p.GetOrCreate(tid(1))
	if !created || r == nil {
		t.Fatal("first GetOrCreate did not create")
	}
	if r.Txn.ID != tid(1) {
		t.Fatalf("record id = %v", r.Txn.ID)
	}
	r2, created := p.GetOrCreate(tid(1))
	if created || r2 != r {
		t.Fatal("second GetOrCreate did not return the same record")
	}
	if p.Get(tid(2)) != nil {
		t.Fatal("Get of missing tid returned a record")
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestPutReplaces(t *testing.T) {
	p := NewPartition()
	r1, _ := p.GetOrCreate(tid(1))
	r1.Status = message.StatusValidatedOK
	rep := &Record{Txn: message.Txn{ID: tid(1)}, Status: message.StatusCommitted}
	p.Put(rep)
	if got := p.Get(tid(1)); got != rep || got.Status != message.StatusCommitted {
		t.Fatal("Put did not replace record")
	}
}

func TestDelete(t *testing.T) {
	p := NewPartition()
	p.GetOrCreate(tid(1))
	p.Delete(tid(1))
	if p.Get(tid(1)) != nil || p.Len() != 0 {
		t.Fatal("Delete did not remove record")
	}
	p.Delete(tid(9)) // deleting a missing record must not panic
}

func TestRange(t *testing.T) {
	p := NewPartition()
	for i := uint64(1); i <= 5; i++ {
		p.GetOrCreate(tid(i))
	}
	n := 0
	p.Range(func(*Record) bool { n++; return true })
	if n != 5 {
		t.Fatalf("Range visited %d", n)
	}
	n = 0
	p.Range(func(*Record) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("Range early-stop visited %d", n)
	}
}

func TestSnapshot(t *testing.T) {
	p := NewPartition()
	r, _ := p.GetOrCreate(tid(1))
	r.TS = timestamp.Timestamp{Time: 9, ClientID: 1}
	r.Status = message.StatusValidatedOK
	r.View = 2
	r.AcceptView = 1
	r.Txn.ReadSet = []message.ReadSetEntry{{Key: "a"}}
	r.Registered = true

	snap := p.Snapshot(7)
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	e := snap[0]
	if e.CoreID != 7 || e.TS != r.TS || e.Status != r.Status || e.View != 2 || e.AcceptView != 1 {
		t.Fatalf("snapshot entry %+v", e)
	}
	if len(e.Txn.ReadSet) != 1 || e.Txn.ReadSet[0].Key != "a" {
		t.Fatal("snapshot lost txn body")
	}
}

func TestCompact(t *testing.T) {
	p := NewPartition()
	for i := uint64(1); i <= 6; i++ {
		r, _ := p.GetOrCreate(tid(i))
		switch i % 3 {
		case 0:
			r.Status = message.StatusCommitted
		case 1:
			r.Status = message.StatusAborted
		default:
			r.Status = message.StatusValidatedOK
		}
	}
	removed := p.Compact()
	if removed != 4 {
		t.Fatalf("Compact removed %d, want 4", removed)
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d after compact", p.Len())
	}
	p.Range(func(r *Record) bool {
		if r.Status.Final() {
			t.Errorf("final record %v survived compaction", r.Txn.ID)
		}
		return true
	})
}

func TestSharedConcurrentAccess(t *testing.T) {
	s := NewShared()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				id := timestamp.TxnID{Seq: uint64(i), ClientID: uint64(w)}
				s.Do(func(p *Partition) {
					r, _ := p.GetOrCreate(id)
					r.Status = message.StatusValidatedOK
				})
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 8000 {
		t.Fatalf("Len = %d, want 8000", s.Len())
	}
}
