// Package trecord implements the transaction record table of the paper's
// §4.2 (Figure 2): per-transaction state used for replication, recovery, and
// synchronization.
//
// To preserve disjoint access parallelism, Meerkat horizontally partitions
// the trecord among cores by transaction id: each core operates on its own
// Partition, which is therefore deliberately NOT safe for concurrent use —
// the owning core's message-delivery goroutine is its only user. (Epoch
// changes snapshot partitions through that same goroutine, so no lock is
// ever needed.)
//
// The TAPIR-like and KuaFu++ baselines instead share one record per replica
// across all cores; Shared wraps a Partition with a mutex to model exactly
// that cross-core coordination point.
package trecord

import (
	"sync"

	"meerkat/internal/message"
	"meerkat/internal/timestamp"
)

// Record is one transaction's entry: the fields of Figure 2 plus the View
// and AcceptView fields used by coordinator recovery (§5.3.2).
type Record struct {
	Txn        message.Txn
	TS         timestamp.Timestamp
	Status     message.Status
	View       uint64
	AcceptView uint64

	// Registered tracks whether this replica currently holds pending
	// reader/writer registrations in the vstore for this transaction
	// (true after a successful local validation, false once the write
	// phase or abort cleanup has run). It is replica-local bookkeeping
	// and is never sent on the wire.
	Registered bool

	// CreatedAt is the local monotonic time (ns) the record was created,
	// used by the sweeper to detect transactions whose coordinator has
	// stalled. Replica-local; never sent on the wire.
	CreatedAt int64

	// LastRecovery is the local monotonic time (ns) this replica last
	// initiated coordinator recovery for the transaction, bounding how
	// often backup coordinators retry. Replica-local.
	LastRecovery int64
}

// Partition is one core's slice of the trecord. Not safe for concurrent use;
// see the package comment.
type Partition struct {
	m map[timestamp.TxnID]*Record
}

// NewPartition returns an empty partition.
func NewPartition() *Partition {
	return &Partition{m: make(map[timestamp.TxnID]*Record)}
}

// Get returns the record for tid, or nil.
func (p *Partition) Get(tid timestamp.TxnID) *Record { return p.m[tid] }

// GetOrCreate returns the record for tid, creating an empty one if absent.
// created reports whether a new record was made.
func (p *Partition) GetOrCreate(tid timestamp.TxnID) (r *Record, created bool) {
	if r = p.m[tid]; r != nil {
		return r, false
	}
	r = &Record{Txn: message.Txn{ID: tid}}
	p.m[tid] = r
	return r, true
}

// Put installs rec under its transaction id, replacing any existing record.
func (p *Partition) Put(rec *Record) { p.m[rec.Txn.ID] = rec }

// Delete removes the record for tid.
func (p *Partition) Delete(tid timestamp.TxnID) { delete(p.m, tid) }

// Len returns the number of records.
func (p *Partition) Len() int { return len(p.m) }

// Range calls fn for each record until fn returns false.
func (p *Partition) Range(fn func(r *Record) bool) {
	for _, r := range p.m {
		if !fn(r) {
			return
		}
	}
}

// Snapshot exports the partition as wire entries tagged with coreID, for
// epoch-change aggregation.
func (p *Partition) Snapshot(coreID uint32) []message.TRecordEntry {
	out := make([]message.TRecordEntry, 0, len(p.m))
	for _, r := range p.m {
		out = append(out, message.TRecordEntry{
			Txn:        r.Txn,
			TS:         r.TS,
			Status:     r.Status,
			View:       r.View,
			AcceptView: r.AcceptView,
			CoreID:     coreID,
		})
	}
	return out
}

// Compact removes records with a final status (COMMITTED or ABORTED), the
// trimming the paper performs after an epoch change checkpoint. It returns
// the number of records removed.
func (p *Partition) Compact() int {
	n := 0
	for tid, r := range p.m {
		if r.Status.Final() {
			delete(p.m, tid)
			n++
		}
	}
	return n
}

// Shared is a whole-replica transaction record protected by a single mutex,
// shared by every core — the cross-core coordination point of the TAPIR-like
// and KuaFu++ baselines ("KuaFu++ and TAPIR share a single record per
// replica ... synchronized with simple mutexes").
type Shared struct {
	mu sync.Mutex
	p  *Partition
}

// NewShared returns an empty shared record.
func NewShared() *Shared {
	return &Shared{p: NewPartition()}
}

// Do runs fn with the record table locked. All access to the underlying
// partition must go through Do (or a Lock/Unlock pair); fn must not retain
// the partition.
func (s *Shared) Do(fn func(p *Partition)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.p)
}

// Lock acquires the record table's mutex and returns the partition. It is
// the closure-free variant of Do for per-message hot paths, where a captured
// closure would cost an allocation per message. The caller must call Unlock
// and must not retain the partition past it.
func (s *Shared) Lock() *Partition {
	s.mu.Lock()
	return s.p
}

// Unlock releases the mutex taken by Lock.
func (s *Shared) Unlock() { s.mu.Unlock() }

// Len returns the number of records (taking the lock).
func (s *Shared) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.Len()
}
