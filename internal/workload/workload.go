// Package workload generates the two benchmarks of the paper's evaluation:
// YCSB-T (transactional YCSB workload F — one read-modify-write per
// transaction) and Retwis, the Twitter-like transactional mix of Table 2.
// Key popularity follows a YCSB-style Zipfian distribution whose coefficient
// sweeps from 0 (uniform) through >0.9 (highly contended), exactly the axis
// of Figures 6 and 7.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// TxnSpec is one generated transaction: keys that are only read, keys that
// are read and then rewritten (read-modify-write), keys that are blindly
// written, and keys bumped by a server-side increment (no read, no
// read-version — the commutative-op alternative to an RMW). All keys within
// a spec are distinct.
type TxnSpec struct {
	Reads  []string
	RMWs   []string
	Writes []string
	Incrs  []string
	// Kind labels the transaction type (for mix accounting).
	Kind string
}

// NumOps returns the total operation count (reads + writes) of the spec.
func (s *TxnSpec) NumOps() int {
	return len(s.Reads) + 2*len(s.RMWs) + len(s.Writes) + len(s.Incrs)
}

// AppendGets appends every key the transaction reads — plain reads first,
// then the read halves of the read-modify-writes — to dst and returns it.
// It gives harnesses the whole read set up front so they can issue it as one
// batched read instead of one round trip per key.
func (s *TxnSpec) AppendGets(dst []string) []string {
	dst = append(dst, s.Reads...)
	return append(dst, s.RMWs...)
}

// Generator produces transaction specs. Implementations are not safe for
// concurrent use; give each client goroutine its own (sharing the rng-free
// key chooser state is fine because choosers are immutable).
type Generator interface {
	Next(rng *rand.Rand) TxnSpec
	Name() string
}

// KeyName formats key index i the way the loaders and generators agree on.
func KeyName(i int) string { return fmt.Sprintf("key-%08d", i) }

// Value returns a fresh value payload of n bytes (the paper uses 64-byte
// keys and values).
func Value(n int) []byte {
	v := make([]byte, n)
	for i := range v {
		v[i] = byte('a' + i%26)
	}
	return v
}

// KeyChooser picks key indices in [0, n) with some popularity distribution.
// Implementations are immutable and safe to share across goroutines; the
// caller supplies the rng.
type KeyChooser interface {
	Next(rng *rand.Rand) int
	N() int
}

// Uniform chooses keys uniformly (Zipf coefficient 0).
type Uniform struct {
	n int
}

// NewUniform returns a uniform chooser over [0, n).
func NewUniform(n int) *Uniform { return &Uniform{n: n} }

// Next implements KeyChooser.
func (u *Uniform) Next(rng *rand.Rand) int { return rng.Intn(u.n) }

// N implements KeyChooser.
func (u *Uniform) N() int { return u.n }

// Zipfian is the YCSB zipfian_generator: item ranks follow a Zipf
// distribution with coefficient theta in (0, 1). (math/rand's Zipf requires
// s > 1, which cannot express the YCSB range, hence this implementation.)
type Zipfian struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipfian returns a Zipfian chooser over [0, n) with coefficient theta.
// Popular items are the low indices; callers that want popular keys spread
// over the keyspace should permute indices (see Scrambled).
func NewZipfian(n int, theta float64) *Zipfian {
	z := &Zipfian{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1.0 - math.Pow(2.0/float64(n), 1.0-theta)) / (1.0 - z.zeta2/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements KeyChooser using the YCSB rejection-free formula.
func (z *Zipfian) Next(rng *rand.Rand) int {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return int(float64(z.n) * math.Pow(z.eta*u-z.eta+1.0, z.alpha))
}

// N implements KeyChooser.
func (z *Zipfian) N() int { return z.n }

// Scrambled wraps a chooser and spreads its popular indices over the
// keyspace with a multiplicative hash, so hot keys do not cluster in one
// hash-table shard or partition.
type Scrambled struct {
	inner KeyChooser
}

// NewScrambled returns a scrambled view of inner.
func NewScrambled(inner KeyChooser) *Scrambled { return &Scrambled{inner: inner} }

// Next implements KeyChooser.
func (s *Scrambled) Next(rng *rand.Rand) int {
	i := uint64(s.inner.Next(rng))
	i *= 0x9E3779B97F4A7C15 // Fibonacci hashing constant
	return int(i % uint64(s.inner.N()))
}

// N implements KeyChooser.
func (s *Scrambled) N() int { return s.inner.N() }

// NewChooser builds the chooser for a Zipf coefficient: uniform at 0,
// scrambled Zipfian otherwise.
func NewChooser(n int, theta float64) KeyChooser {
	if theta <= 0 {
		return NewUniform(n)
	}
	return NewScrambled(NewZipfian(n, theta))
}

// distinct fills out with k distinct key indices from the chooser.
func distinct(rng *rand.Rand, c KeyChooser, k int, out []int) []int {
	out = out[:0]
	for len(out) < k {
		cand := c.Next(rng)
		dup := false
		for _, x := range out {
			if x == cand {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, cand)
		}
	}
	return out
}

// YCSBT generates the transactional variant of YCSB workload F used in
// Figures 4, 6a, and 7a: each transaction is a single read-modify-write on
// one key.
type YCSBT struct {
	chooser KeyChooser
	scratch []int
}

// NewYCSBT returns a YCSB-T generator over keys chosen by chooser.
func NewYCSBT(chooser KeyChooser) *YCSBT {
	return &YCSBT{chooser: chooser}
}

// Name implements Generator.
func (y *YCSBT) Name() string { return "ycsb-t" }

// Next implements Generator.
func (y *YCSBT) Next(rng *rand.Rand) TxnSpec {
	return TxnSpec{
		RMWs: []string{KeyName(y.chooser.Next(rng))},
		Kind: "rmw",
	}
}

// Counter is the hot-counter workload of the commutative-op comparison:
// every transaction bumps one chooser-picked key. With ViaOp false it is the
// abort-prone OCC pattern (read the counter, write value+1 back); with ViaOp
// true the same logical update ships as a server-side increment carrying no
// read version, so concurrent bumps merge at the replicas instead of
// aborting each other. Same key popularity, same logical work — the
// difference in abort rate and goodput is exactly what typed ops buy.
type Counter struct {
	chooser KeyChooser
	// ViaOp selects the increment-op encoding over read+write-back.
	ViaOp bool
}

// NewCounter returns a counter generator over keys chosen by chooser.
func NewCounter(chooser KeyChooser, viaOp bool) *Counter {
	return &Counter{chooser: chooser, ViaOp: viaOp}
}

// Name implements Generator.
func (c *Counter) Name() string {
	if c.ViaOp {
		return "counter-incr"
	}
	return "counter-rmw"
}

// Next implements Generator.
func (c *Counter) Next(rng *rand.Rand) TxnSpec {
	k := KeyName(c.chooser.Next(rng))
	if c.ViaOp {
		return TxnSpec{Incrs: []string{k}, Kind: "incr"}
	}
	return TxnSpec{RMWs: []string{k}, Kind: "rmw"}
}

// Retwis generates the Table 2 mix:
//
//	Add User        1 get  3 puts   5%
//	Follow/Unfollow 2 gets 2 puts  15%
//	Post Tweet      3 gets 5 puts  30%
//	Load Timeline   rand(1,10) gets 50%
//
// Following the TAPIR Retwis client, puts overlap the gets where the counts
// allow (read-modify-writes on the user/tweet records) with the remainder
// as blind writes.
type Retwis struct {
	chooser KeyChooser
	scratch []int
	keys    []string
}

// NewRetwis returns a Retwis generator over keys chosen by chooser.
func NewRetwis(chooser KeyChooser) *Retwis {
	return &Retwis{chooser: chooser}
}

// Name implements Generator.
func (r *Retwis) Name() string { return "retwis" }

// pick returns k distinct key names.
func (r *Retwis) pick(rng *rand.Rand, k int) []string {
	r.scratch = distinct(rng, r.chooser, k, r.scratch)
	r.keys = r.keys[:0]
	for _, i := range r.scratch {
		r.keys = append(r.keys, KeyName(i))
	}
	return r.keys
}

// Next implements Generator.
func (r *Retwis) Next(rng *rand.Rand) TxnSpec {
	switch p := rng.Intn(100); {
	case p < 5: // Add User: 1 get, 3 puts
		k := r.pick(rng, 3)
		return TxnSpec{
			RMWs:   []string{k[0]},
			Writes: []string{k[1], k[2]},
			Kind:   "add-user",
		}
	case p < 20: // Follow/Unfollow: 2 gets, 2 puts
		k := r.pick(rng, 2)
		return TxnSpec{
			RMWs: []string{k[0], k[1]},
			Kind: "follow-unfollow",
		}
	case p < 50: // Post Tweet: 3 gets, 5 puts
		k := r.pick(rng, 5)
		return TxnSpec{
			RMWs:   []string{k[0], k[1], k[2]},
			Writes: []string{k[3], k[4]},
			Kind:   "post-tweet",
		}
	default: // Load Timeline: rand(1,10) gets
		n := 1 + rng.Intn(10)
		k := r.pick(rng, n)
		reads := make([]string, n)
		copy(reads, k)
		return TxnSpec{
			Reads: reads,
			Kind:  "load-timeline",
		}
	}
}

// RetwisMix is the Retwis transaction shapes re-weighted by read fraction:
// ReadFrac of the transactions are Load Timeline (pure gets, eligible for
// the read-only fast path) and the remainder keep Table 2's relative update
// proportions (Add User 10%, Follow/Unfollow 30%, Post Tweet 60% of the
// writing share — the 5/15/30 ratio with timelines factored out). At
// ReadFrac 0.5 this is exactly the classic Retwis mix; the read-only sweep
// runs it at 0.80/0.95/1.00 to show what dropping the validation round buys
// as the workload shifts read-heavy.
type RetwisMix struct {
	retwis Retwis
	// ReadFrac is the probability a transaction is a pure-read timeline
	// load, in [0, 1].
	ReadFrac float64
}

// NewRetwisMix returns a Retwis generator with the timeline (pure-read)
// share set to readFrac instead of Table 2's 50%.
func NewRetwisMix(chooser KeyChooser, readFrac float64) *RetwisMix {
	return &RetwisMix{retwis: Retwis{chooser: chooser}, ReadFrac: readFrac}
}

// Name implements Generator.
func (r *RetwisMix) Name() string {
	return fmt.Sprintf("retwis-read%d", int(r.ReadFrac*100+0.5))
}

// Next implements Generator.
func (r *RetwisMix) Next(rng *rand.Rand) TxnSpec {
	if rng.Float64() < r.ReadFrac {
		n := 1 + rng.Intn(10)
		k := r.retwis.pick(rng, n)
		reads := make([]string, n)
		copy(reads, k)
		return TxnSpec{Reads: reads, Kind: "load-timeline"}
	}
	switch p := rng.Intn(100); {
	case p < 10: // Add User
		k := r.retwis.pick(rng, 3)
		return TxnSpec{RMWs: []string{k[0]}, Writes: []string{k[1], k[2]}, Kind: "add-user"}
	case p < 40: // Follow/Unfollow
		k := r.retwis.pick(rng, 2)
		return TxnSpec{RMWs: []string{k[0], k[1]}, Kind: "follow-unfollow"}
	default: // Post Tweet
		k := r.retwis.pick(rng, 5)
		return TxnSpec{RMWs: []string{k[0], k[1], k[2]}, Writes: []string{k[3], k[4]}, Kind: "post-tweet"}
	}
}
