package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniformBounds(t *testing.T) {
	c := NewUniform(100)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		k := c.Next(rng)
		if k < 0 || k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
	}
	if c.N() != 100 {
		t.Fatalf("N = %d", c.N())
	}
}

func TestZipfianBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, theta := range []float64{0.1, 0.5, 0.9, 0.99} {
			z := NewZipfian(1000, theta)
			for i := 0; i < 200; i++ {
				k := z.Next(rng)
				if k < 0 || k >= 1000 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfianSkewIncreasesWithTheta(t *testing.T) {
	// Higher theta must concentrate more mass on the most popular key.
	const n = 10000
	const samples = 200000
	top := func(theta float64) float64 {
		z := NewZipfian(n, theta)
		rng := rand.New(rand.NewSource(42))
		hits := 0
		for i := 0; i < samples; i++ {
			if z.Next(rng) == 0 {
				hits++
			}
		}
		return float64(hits) / samples
	}
	t5, t9 := top(0.5), top(0.9)
	if !(t9 > t5) {
		t.Fatalf("top-key mass: theta=0.9 %.4f <= theta=0.5 %.4f", t9, t5)
	}
	if t9 < 0.01 {
		t.Fatalf("theta=0.9 top-key mass %.4f implausibly low", t9)
	}
}

func TestZipfianMatchesTheory(t *testing.T) {
	// P(key 0) should be 1/zeta(n, theta) within sampling error.
	const n = 1000
	theta := 0.8
	z := NewZipfian(n, theta)
	want := 1.0 / zeta(n, theta)
	rng := rand.New(rand.NewSource(7))
	const samples = 300000
	hits := 0
	for i := 0; i < samples; i++ {
		if z.Next(rng) == 0 {
			hits++
		}
	}
	got := float64(hits) / samples
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("P(top key) = %.4f, theory %.4f", got, want)
	}
}

func TestScrambledPreservesRangeAndSkew(t *testing.T) {
	s := NewScrambled(NewZipfian(1000, 0.9))
	rng := rand.New(rand.NewSource(3))
	counts := make(map[int]int)
	for i := 0; i < 100000; i++ {
		k := s.Next(rng)
		if k < 0 || k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// The hottest scrambled key should carry roughly the same mass as the
	// hottest raw key, just at a different index.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/100000 < 0.05 {
		t.Fatalf("scrambling destroyed skew: top mass %.4f", float64(max)/100000)
	}
}

func TestNewChooser(t *testing.T) {
	if _, ok := NewChooser(10, 0).(*Uniform); !ok {
		t.Fatal("theta=0 should give Uniform")
	}
	if _, ok := NewChooser(10, 0.5).(*Scrambled); !ok {
		t.Fatal("theta>0 should give Scrambled Zipfian")
	}
}

func TestYCSBTShape(t *testing.T) {
	g := NewYCSBT(NewUniform(100))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		s := g.Next(rng)
		if len(s.RMWs) != 1 || len(s.Reads) != 0 || len(s.Writes) != 0 {
			t.Fatalf("YCSB-T spec %+v", s)
		}
		if s.NumOps() != 2 {
			t.Fatalf("NumOps = %d, want 2 (1 get + 1 put)", s.NumOps())
		}
	}
	if g.Name() != "ycsb-t" {
		t.Fatal("name")
	}
}

func TestRetwisMixMatchesTable2(t *testing.T) {
	g := NewRetwis(NewUniform(100000))
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	const total = 200000
	for i := 0; i < total; i++ {
		s := g.Next(rng)
		counts[s.Kind]++

		switch s.Kind {
		case "add-user":
			if len(s.RMWs) != 1 || len(s.Writes) != 2 {
				t.Fatalf("add-user: %+v", s)
			}
		case "follow-unfollow":
			if len(s.RMWs) != 2 || len(s.Writes) != 0 {
				t.Fatalf("follow-unfollow: %+v", s)
			}
		case "post-tweet":
			if len(s.RMWs) != 3 || len(s.Writes) != 2 {
				t.Fatalf("post-tweet: %+v", s)
			}
		case "load-timeline":
			if n := len(s.Reads); n < 1 || n > 10 || len(s.RMWs) != 0 || len(s.Writes) != 0 {
				t.Fatalf("load-timeline: %+v", s)
			}
		default:
			t.Fatalf("unknown kind %q", s.Kind)
		}
	}
	check := func(kind string, want float64) {
		got := float64(counts[kind]) / total
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%s: %.3f of mix, want %.2f", kind, got, want)
		}
	}
	check("add-user", 0.05)
	check("follow-unfollow", 0.15)
	check("post-tweet", 0.30)
	check("load-timeline", 0.50)
}

func TestSpecKeysDistinct(t *testing.T) {
	g := NewRetwis(NewChooser(50, 0.95)) // tiny hot keyspace forces collisions
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		s := g.Next(rng)
		seen := map[string]bool{}
		for _, k := range append(append(append([]string{}, s.Reads...), s.RMWs...), s.Writes...) {
			if seen[k] {
				t.Fatalf("duplicate key %s in spec %+v", k, s)
			}
			seen[k] = true
		}
	}
}

func TestValueAndKeyName(t *testing.T) {
	if len(Value(64)) != 64 {
		t.Fatal("value size")
	}
	if KeyName(7) != "key-00000007" {
		t.Fatalf("KeyName = %q", KeyName(7))
	}
}

func BenchmarkZipfianNext(b *testing.B) {
	z := NewZipfian(1<<20, 0.9)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.Next(rng)
	}
}

func BenchmarkRetwisNext(b *testing.B) {
	g := NewRetwis(NewChooser(1<<20, 0.6))
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next(rng)
	}
}
