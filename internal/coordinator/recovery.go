package coordinator

import (
	"time"

	"meerkat/internal/message"
	"meerkat/internal/timestamp"
	"meerkat/internal/topo"
	"meerkat/internal/transport"
)

// Views uniquely identify proposals for one transaction (§5.3.2). A view
// packs a round number with a proposer id so that two proposers can never
// issue the same view: view = round<<20 | proposer. The original transaction
// coordinator always proposes in view 0.
const viewProposerBits = 20

// MakeView builds the view number for a proposer's round.
func MakeView(round, proposer uint64) uint64 {
	return round<<viewProposerBits | (proposer & (1<<viewProposerBits - 1))
}

// RoundOf extracts the round number of a view.
func RoundOf(view uint64) uint64 { return view >> viewProposerBits }

// DecideOutcome applies the backup coordinator's priority rules (§5.3.2) to
// the transaction records gathered from a majority of replicas. It returns
// the outcome to pursue and whether that outcome is already final (committed
// or aborted at some replica, so only a commit broadcast is needed).
//
// In order of priority, the safe outcome is one that has
//
//  1. been completed (COMMITTED or ABORTED) at any replica;
//  2. been proposed by a prior coordinator and accepted by at least one
//     replica — the proposal with the latest accept view wins;
//  3. been VALIDATED-OK or VALIDATED-ABORT by a majority of replicas;
//  4. possibly committed on the fast path: at least ceil(f/2)+1 replicas
//     report VALIDATED-OK. (A conflicting transaction cannot also have
//     gathered a fast quorum — the two supermajorities would overlap in a
//     replica that validated both, which the OCC checks forbid — so
//     proposing commit is safe.)
//
// Otherwise the transaction cannot have committed anywhere and abort is safe.
func DecideOutcome(records []message.TRecordEntry, f int) (proposal message.Status, final bool) {
	// Rule 1: a finalized record anywhere fixes the outcome.
	for i := range records {
		switch records[i].Status {
		case message.StatusCommitted:
			return message.StatusCommitted, true
		case message.StatusAborted:
			return message.StatusAborted, true
		}
	}

	// Rule 2: the accepted proposal with the latest view.
	bestView := uint64(0)
	var bestStatus message.Status
	for i := range records {
		r := &records[i]
		if (r.Status == message.StatusAcceptCommit || r.Status == message.StatusAcceptAbort) &&
			r.AcceptView >= bestView {
			bestView = r.AcceptView
			bestStatus = r.Status
		}
	}
	if bestStatus != message.StatusNone {
		return bestStatus, false
	}

	// Rules 3 and 4: counts of validated statuses.
	countOK, countAbort := 0, 0
	for i := range records {
		switch records[i].Status {
		case message.StatusValidatedOK:
			countOK++
		case message.StatusValidatedAbort:
			countAbort++
		}
	}
	switch {
	case countOK >= f+1:
		return message.StatusAcceptCommit, false
	case countAbort >= f+1:
		return message.StatusAcceptAbort, false
	case countOK >= (f+1)/2+1:
		return message.StatusAcceptCommit, false
	default:
		return message.StatusAcceptAbort, false
	}
}

// RecoverTxn runs the coordinator recovery protocol for tid in partition p,
// starting above view seenView. It is used by an original coordinator whose
// slow-path proposal was superseded; replicas use a Recoverer. It returns
// the transaction's final outcome.
func (c *Coordinator) RecoverTxn(p int, tid timestamp.TxnID, coreID uint32, seenView uint64) (bool, error) {
	// Client proposer ids live in the upper half of the proposer space so
	// they cannot collide with replica indices.
	proposer := (c.cfg.ClientID % (1 << (viewProposerBits - 1))) + (1 << (viewProposerBits - 1))
	return recoverTxn(recoverEnv{
		ep: c.commitEps[p], in: c.commitIns[p],
		topo: c.cfg.Topo, p: p,
		timeout: c.cfg.Timeout, retries: c.cfg.Retries,
	}, tid, coreID, proposer, seenView)
}

// Recoverer runs coordinator recovery on behalf of a replica acting as a
// backup coordinator. Each replica core that initiates recoveries shares one
// Recoverer; calls are serialized by the caller.
type Recoverer struct {
	topoCfg topo.Topology
	ep      transport.Endpoint
	in      *transport.Inbox
	prop    uint64
	timeout time.Duration
	retries int
}

// NewRecoverer binds a recovery endpoint at addr. proposer must be unique
// among backup coordinators (the replica index serves).
func NewRecoverer(net transport.Network, t topo.Topology, addr message.Addr, proposer uint64, timeout time.Duration, retries int) (*Recoverer, error) {
	in := transport.NewInbox(256)
	ep, err := net.Listen(addr, in.Handle)
	if err != nil {
		return nil, err
	}
	if timeout == 0 {
		timeout = 100 * time.Millisecond
	}
	if retries == 0 {
		retries = 10
	}
	return &Recoverer{topoCfg: t, ep: ep, in: in, prop: proposer, timeout: timeout, retries: retries}, nil
}

// Close releases the recovery endpoint.
func (r *Recoverer) Close() { r.ep.Close() }

// Recover completes tid in partition p with a consistent outcome, returning
// whether it committed.
func (r *Recoverer) Recover(p int, tid timestamp.TxnID, coreID uint32, seenView uint64) (bool, error) {
	return recoverTxn(recoverEnv{
		ep: r.ep, in: r.in, topo: r.topoCfg, p: p,
		timeout: r.timeout, retries: r.retries,
	}, tid, coreID, r.prop, seenView)
}

// recoverEnv carries the plumbing shared by client- and replica-initiated
// recovery.
type recoverEnv struct {
	ep      transport.Endpoint
	in      *transport.Inbox
	topo    topo.Topology
	p       int
	timeout time.Duration
	retries int
}

// recoverTxn is Bernstein's cooperative termination protocol instantiated
// with per-transaction consensus: a prepare-like coordinator change, the
// outcome decision, and a Paxos-like accept round.
func recoverTxn(env recoverEnv, tid timestamp.TxnID, coreID uint32, proposer, seenView uint64) (bool, error) {
	group := env.topo.GroupAddrs(env.p, coreID)
	majority := env.topo.Majority()
	f := env.topo.F()
	round := RoundOf(seenView) + 1
	var outs []transport.Outgoing // broadcast scratch, reused across phases

	for attempt := 0; attempt <= env.retries; attempt++ {
		view := MakeView(round, proposer)
		env.in.Drain()

		// Phase 1: coordinator change — a majority promises to ignore
		// lower-viewed proposals and reports its record for tid.
		req := message.Message{Type: message.TypeCoordChange, TID: tid, View: view, CoreID: coreID}
		outs = broadcast(env.ep, group, &req, outs)
		records := make([]message.TRecordEntry, 0, len(group))
		acked := make(map[uint32]bool, len(group))
		higher := uint64(0)
		deadline := time.NewTimer(env.timeout)
	collect:
		for {
			select {
			case m := <-env.in.C:
				if m.Type != message.TypeCoordChangeAck || m.TID != tid {
					continue
				}
				if !m.OK {
					if m.View > higher {
						higher = m.View
					}
					continue
				}
				if m.View != view || acked[m.ReplicaID] {
					continue
				}
				acked[m.ReplicaID] = true
				if len(m.Records) > 0 {
					records = append(records, m.Records[0])
				}
				if len(acked) >= majority {
					deadline.Stop()
					break collect
				}
			case <-deadline.C:
				break collect
			}
		}
		if len(acked) < majority {
			if higher >= view {
				round = RoundOf(higher) + 1
			} else {
				round++
			}
			continue
		}

		// Decide the safe outcome from the gathered records.
		proposal, final := DecideOutcome(records, f)
		if final {
			committed := proposal == message.StatusCommitted
			broadcastCommit(env.ep, group, tid, committed, coreID)
			return committed, nil
		}

		// Phase 2: accept. Recover the transaction body from any record
		// that has it, so replicas that missed the validate can still
		// apply the writes.
		var body message.Txn
		var ts timestamp.Timestamp
		for i := range records {
			if len(records[i].Txn.ReadSet) > 0 || len(records[i].Txn.WriteSet) > 0 {
				body = records[i].Txn
				ts = records[i].TS
				break
			}
		}
		accept := message.Message{
			Type: message.TypeAccept, TID: tid, Status: proposal, View: view,
			Txn: body, TS: ts, CoreID: coreID,
		}
		outs = broadcast(env.ep, group, &accept, outs)
		acks := make(map[uint32]bool, len(group))
		higher = 0
		deadline = time.NewTimer(env.timeout)
	collectAccept:
		for {
			select {
			case m := <-env.in.C:
				if m.Type != message.TypeAcceptReply || m.TID != tid {
					continue
				}
				if !m.OK {
					if m.View > higher {
						higher = m.View
					}
					continue
				}
				if m.View != view {
					continue
				}
				acks[m.ReplicaID] = true
				if len(acks) >= majority {
					deadline.Stop()
					committed := proposal == message.StatusAcceptCommit
					broadcastCommit(env.ep, group, tid, committed, coreID)
					return committed, nil
				}
			case <-deadline.C:
				break collectAccept
			}
		}
		if higher >= view {
			round = RoundOf(higher) + 1
		} else {
			round++
		}
	}
	return false, ErrTimeout
}

func broadcastCommit(ep transport.Endpoint, group []message.Addr, tid timestamp.TxnID, committed bool, coreID uint32) {
	st := message.StatusAborted
	if committed {
		st = message.StatusCommitted
	}
	req := message.Message{Type: message.TypeCommit, TID: tid, Status: st, CoreID: coreID}
	broadcast(ep, group, &req, nil)
}
