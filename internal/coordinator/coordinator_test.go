package coordinator

import (
	"testing"
	"testing/quick"

	"meerkat/internal/message"
)

func TestMakeViewRoundTrip(t *testing.T) {
	f := func(round uint64, proposer uint64) bool {
		round %= 1 << 40
		v := MakeView(round, proposer)
		return RoundOf(v) == round
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestViewsUniquePerProposer(t *testing.T) {
	// Same round, different proposers -> different views; later rounds
	// always order above earlier rounds regardless of proposer.
	a := MakeView(1, 0)
	b := MakeView(1, 1)
	if a == b {
		t.Fatal("views collide across proposers")
	}
	if !(MakeView(2, 0) > MakeView(1, 1<<19)) {
		t.Fatal("round does not dominate proposer in view ordering")
	}
	if MakeView(0, 0) != 0 {
		t.Fatal("view 0 must be the original coordinator's")
	}
}

func rec(st message.Status, acceptView uint64) message.TRecordEntry {
	return message.TRecordEntry{Status: st, AcceptView: acceptView}
}

func TestDecideOutcomeFinalWins(t *testing.T) {
	st, final := DecideOutcome([]message.TRecordEntry{
		rec(message.StatusValidatedOK, 0),
		rec(message.StatusCommitted, 0),
	}, 1)
	if !final || st != message.StatusCommitted {
		t.Fatalf("got %v final=%v", st, final)
	}
	st, final = DecideOutcome([]message.TRecordEntry{
		rec(message.StatusAborted, 0),
		rec(message.StatusValidatedOK, 0),
	}, 1)
	if !final || st != message.StatusAborted {
		t.Fatalf("got %v final=%v", st, final)
	}
}

func TestDecideOutcomeAcceptedLatestView(t *testing.T) {
	st, final := DecideOutcome([]message.TRecordEntry{
		rec(message.StatusAcceptCommit, 2),
		rec(message.StatusAcceptAbort, 7),
	}, 1)
	if final || st != message.StatusAcceptAbort {
		t.Fatalf("got %v final=%v", st, final)
	}
}

func TestDecideOutcomeMajorityValidated(t *testing.T) {
	st, _ := DecideOutcome([]message.TRecordEntry{
		rec(message.StatusValidatedOK, 0),
		rec(message.StatusValidatedOK, 0),
	}, 1)
	if st != message.StatusAcceptCommit {
		t.Fatalf("2xOK (f=1) -> %v", st)
	}
	st, _ = DecideOutcome([]message.TRecordEntry{
		rec(message.StatusValidatedAbort, 0),
		rec(message.StatusValidatedAbort, 0),
	}, 1)
	if st != message.StatusAcceptAbort {
		t.Fatalf("2xABORT (f=1) -> %v", st)
	}
}

func TestDecideOutcomeFastPathPossibility(t *testing.T) {
	// f=2: ceil(f/2)+1 = 2 VALIDATED-OK among 3 records -> must propose
	// commit (the txn may have fast-committed).
	st, _ := DecideOutcome([]message.TRecordEntry{
		rec(message.StatusValidatedOK, 0),
		rec(message.StatusValidatedOK, 0),
		rec(message.StatusNone, 0),
	}, 2)
	if st != message.StatusAcceptCommit {
		t.Fatalf("possible fast commit -> %v", st)
	}
}

func TestDecideOutcomeDefaultAbort(t *testing.T) {
	// Nothing proves a commit: abort is the safe outcome.
	st, final := DecideOutcome([]message.TRecordEntry{
		rec(message.StatusNone, 0),
		rec(message.StatusValidatedAbort, 0),
	}, 1)
	if final || st != message.StatusAcceptAbort {
		t.Fatalf("got %v final=%v", st, final)
	}
	st, _ = DecideOutcome(nil, 1)
	if st != message.StatusAcceptAbort {
		t.Fatalf("empty records -> %v", st)
	}
}

func TestDecideOutcomePriorityOrder(t *testing.T) {
	// An accepted record takes priority over validated majorities.
	st, final := DecideOutcome([]message.TRecordEntry{
		rec(message.StatusAcceptAbort, 3),
		rec(message.StatusValidatedOK, 0),
		rec(message.StatusValidatedOK, 0),
	}, 1)
	if final || st != message.StatusAcceptAbort {
		t.Fatalf("accepted decision not prioritized: %v", st)
	}
}
