package coordinator

import (
	"bytes"
	"context"
	"errors"

	"meerkat/internal/message"
	"meerkat/internal/obs"
	"meerkat/internal/timestamp"
)

// This file implements the client half of the read-only fast path: snapshot
// reads that commit with zero validation rounds.
//
// A read-only transaction picks a snapshot timestamp s from the client's
// clock and sends one snapshot multi-read (TS = s) per touched partition —
// to EVERY replica of the partition, not one. Each replica answers all keys
// at s and, in the same per-key critical section, raises the key's read
// timestamp to s, so nothing that has not validated there yet can ever
// commit at or below s. A reply is *confirmed* when its Watermark equals s:
// no prepared-but-undecided transaction sits at or below s on any requested
// key at that replica.
//
// Safety argument (see DESIGN.md "Read-only fast path" for the full
// version): any transaction T with timestamp ts <= s that commits — now or
// later, on the fast path, slow path, or through recovery — must hold
// VALIDATED-OK records at more replicas than can sit outside the confirmed
// set M. The pigeonhole member X in the intersection either (a) applied T
// already, so X's answers reflect it; (b) held T prepared-but-undecided, so
// X's watermark was below s and X was not confirmed — contradiction; or (c)
// validated T after serving the snapshot, which the rts guard forbids
// (ValidateWrite rejects ts < rts = s, and ts == s is impossible because s
// carries this client's unique id). The required |M| is Replicas-ceil(f/2):
// the smallest recovery rule that can resurrect a commit needs ceil(f/2)+1
// VALIDATED-OK records (DecideOutcome rule 4 and the epoch-change merge),
// and n-|M| must stay below that. For the default 3-replica topology this
// is just a majority (2 of 3).
//
// Values are merged across confirmed replies per key: the newest version
// wins. A plain write at the newest timestamp is final by construction
// (lower confirmed replies are benign lag: the write committed, they just
// have not applied it). An op-derived version is not: ops merging below a
// version re-materialize its value in place, so two replicas can hold the
// same WTS with different bytes, or one can be missing a merged op
// entirely. Op-derived results therefore settle only if every confirmed
// reply agrees exactly (same WTS, same bytes); anything else retries and
// eventually demotes to the classic validated path. The residual risk — all
// confirmed replies agreeing on coincidentally equal wrong bytes — is
// exactly the strength of the value-hash check the classic path already
// relies on (see message.ReadSetEntry).

// errROUnconfirmed reports that a snapshot read could not assemble enough
// confirmed, settled replies within its attempt budget. The caller retries
// at a rounded-down snapshot or demotes to the classic validated path.
var errROUnconfirmed = errors.New("coordinator: snapshot not confirmed")

// roAttempts bounds snapshot-read rounds per partition before giving up.
// The fast path is an optimization with a sound fallback, so the budget is
// deliberately tiny compared to cfg.Retries.
const roAttempts = 3

// roQuorum returns the confirmed-reply quorum the fast path needs per
// partition: Replicas - ceil(f/2), so that any transaction holding enough
// VALIDATED-OK records to ever commit (>= ceil(f/2)+1, recovery rule 4)
// must hold one inside the confirmed set.
func (c *Coordinator) roQuorum() int {
	f := c.cfg.Topo.F()
	return c.cfg.Topo.Replicas - (f+1)/2
}

// roKeyState accumulates one key's answers across confirmed replies.
type roKeyState struct {
	seen  int
	res   message.ReadResult
	mixed bool // confirmed replies disagree at the same version
	below bool // some confirmed reply is strictly older than res
}

// merge folds one confirmed reply's answer into the state.
func (s *roKeyState) merge(r *message.ReadResult) {
	if s.seen == 0 {
		s.seen = 1
		s.res = *r
		return
	}
	s.seen++
	switch {
	case r.OK == s.res.OK && r.WTS == s.res.WTS:
		if !bytes.Equal(r.Value, s.res.Value) {
			s.mixed = true // same version, different materialization
		}
	case r.OK && (!s.res.OK || s.res.WTS.Less(r.WTS)):
		s.below = true // previous best is now known to lag
		s.res = *r
	default:
		s.below = true // r lags the best
	}
}

// settled reports whether the key's merged answer is final with respect to
// the confirmed replies seen so far. Plain writes settle on the newest
// version; op-derived versions settle only on exact agreement.
func (s *roKeyState) settled() bool {
	if s.seen == 0 || s.mixed {
		return false
	}
	if !s.res.OK || s.res.Op == message.OpNone {
		return true
	}
	return !s.below
}

// sendSnapshotRead broadcasts one snapshot multi-read for partition p at
// snap to every replica (a uniformly chosen core on each).
func (c *Coordinator) sendSnapshotRead(p int, keys []string, snap timestamp.Timestamp, seq uint64) {
	core := uint32(c.rng.Intn(c.cfg.Topo.Cores))
	req := message.Message{Type: message.TypeMultiRead, Keys: keys, TS: snap, Seq: seq, MapVersion: c.mapVersion()}
	c.roOuts = broadcast(c.commitEps[p], c.group(p, core), &req, c.roOuts)
}

// snapshotReadCtx reads keys at snapshot timestamp snap: one snapshot
// multi-read round per touched partition, each requiring roQuorum confirmed
// replies whose merged answers settle. Results are index-aligned with keys
// in the scratch reused by the next read operation. minW is the lowest
// watermark observed across all replies (snap when none was lower) — the
// round-down hint on failure. The only errors are errROUnconfirmed and
// context/timeout errors from waitBudget.
func (c *Coordinator) snapshotReadCtx(ctx context.Context, keys []string, snap timestamp.Timestamp) ([]message.ReadResult, timestamp.Timestamp, error) {
	minW := snap
	if len(keys) == 0 {
		return nil, minW, nil
	}
	nparts := c.cfg.Topo.Partitions
	n := c.cfg.Topo.Replicas
	quorum := c.roQuorum()

	// Group keys by partition, exactly as ReadManyCtx does (shared scratch;
	// the two paths never run concurrently on one coordinator).
	if c.partIdx == nil || len(c.partIdx) < nparts {
		c.partIdx = make([]int, nparts)
		c.partOff = make([]int, nparts+1)
	}
	cursor, off := c.partIdx, c.partOff
	for p := 0; p < nparts; p++ {
		cursor[p] = 0
	}
	if cap(c.keyParts) < len(keys) {
		c.keyParts = make([]int, len(keys))
	}
	if cap(c.origIdx) < len(keys) {
		c.origIdx = make([]int, len(keys))
	}
	kp, origIdx := c.keyParts[:len(keys)], c.origIdx[:len(keys)]
	for i, k := range keys {
		p := c.partitionFor(k)
		kp[i] = p
		cursor[p]++
	}
	sum := 0
	for p := 0; p < nparts; p++ {
		off[p] = sum
		sum += cursor[p]
		cursor[p] = off[p]
	}
	off[nparts] = sum
	// The keys slice inside a sent message belongs to the transport; like
	// ReadManyCtx, allocate it fresh per operation, never a reused scratch.
	grouped := make([]string, len(keys))
	for i, p := range kp {
		grouped[cursor[p]] = keys[i]
		origIdx[cursor[p]] = i
		cursor[p]++
	}

	if cap(c.readRes) < len(keys) {
		c.readRes = make([]message.ReadResult, len(keys))
	}
	out := c.readRes[:len(keys)]
	if cap(c.roKeys) < len(keys) {
		c.roKeys = make([]roKeyState, len(keys))
	}
	state := c.roKeys[:len(keys)]

	c.readSeq++
	seq := c.readSeq
	// Fire every partition before collecting any reply, as in ReadManyCtx.
	for p := 0; p < nparts; p++ {
		if off[p+1] == off[p] {
			continue
		}
		c.commitIns[p].Drain()
		c.sendSnapshotRead(p, grouped[off[p]:off[p+1]], snap, seq)
	}

	ok := true
	for p := 0; p < nparts && ok; p++ {
		want := off[p+1] - off[p]
		if want == 0 {
			continue
		}
		in := c.commitIns[p]
		pseq := seq
		pstate := state[off[p]:off[p+1]]
		settledP := false
		for attempt := 0; attempt < roAttempts && !settledP; attempt++ {
			if attempt > 0 {
				c.obs.Inc(obs.ROReadRetry)
				sleep(ctx, backoffDelay(c.cfg.BackoffBase, c.cfg.BackoffMax, attempt-1, &c.rng), &c.rt)
				in.Drain()
				c.readSeq++
				pseq = c.readSeq
				c.sendSnapshotRead(p, grouped[off[p]:off[p+1]], snap, pseq)
			}
			// Every attempt starts from scratch: a stale reply from an
			// earlier attempt at the same snapshot must not poison the
			// settlement flags.
			for j := range pstate {
				pstate[j] = roKeyState{}
			}
			budget, berr := c.waitBudget(ctx)
			if berr != nil {
				return nil, minW, berr
			}
			var seen uint64
			replied, confirmed := 0, 0
			deadline := c.rt.arm(budget)
		collect:
			for {
				var m *message.Message
				select {
				case m = <-in.C:
				default:
					select {
					case m = <-in.C:
					case <-ctx.Done():
						break collect
					case <-deadline:
						break collect
					}
				}
				if m.Type != message.TypeMultiReadReply || m.Seq != pseq {
					continue
				}
				if m.WrongShard {
					// The replica no longer owns some requested key and, by
					// design, refused before touching its store — a sealed
					// copy must never raise read timestamps for a snapshot it
					// cannot vouch for. Refresh and re-route.
					c.obs.Inc(obs.TxnWrongShard)
					c.noteRedirect()
					return nil, minW, ErrWrongShard
				}
				if len(m.Reads) != want {
					continue
				}
				if m.ReplicaID >= 64 || seen&(1<<m.ReplicaID) != 0 {
					continue
				}
				seen |= 1 << m.ReplicaID
				replied++
				if m.Watermark.Less(minW) {
					minW = m.Watermark
				}
				if m.Watermark == snap {
					confirmed++
					for j := range m.Reads {
						pstate[j].merge(&m.Reads[j])
					}
					if confirmed >= quorum {
						settledP = true
						for j := range pstate {
							if !pstate[j].settled() {
								settledP = false
								break
							}
						}
						if settledP {
							break collect
						}
					}
				}
				if replied == n {
					break collect // everyone answered; not settled, retry
				}
			}
		}
		if !settledP {
			ok = false
			break
		}
		for j := range pstate {
			out[origIdx[off[p]+j]] = pstate[j].res
		}
	}
	if !ok {
		return nil, minW, errROUnconfirmed
	}
	return out, minW, nil
}

// snapshotBegin runs the first snapshot operation of a read-only
// transaction: it picks a fresh snapshot timestamp, and on an unconfirmed
// round makes one retry at the rounded-down watermark the replies
// advertised — provided it stays above lastTS, so one session's reads never
// travel backwards past its own commits. It returns the merged results and
// the snapshot timestamp that settled.
func (c *Coordinator) snapshotBegin(ctx context.Context, keys []string) ([]message.ReadResult, timestamp.Timestamp, error) {
	s := c.gen.NextTimestamp()
	res, minW, err := c.snapshotReadCtx(ctx, keys, s)
	if err == nil {
		return res, s, nil
	}
	if errors.Is(err, errROUnconfirmed) && c.lastTS.Less(minW) && minW.Less(s) && !minW.IsZero() {
		c.obs.Inc(obs.RORoundDown)
		if res, _, err2 := c.snapshotReadCtx(ctx, keys, minW); err2 == nil {
			return res, minW, nil
		}
	}
	return nil, timestamp.Timestamp{}, err
}

// ReadOnly declares the transaction read-only, routing its reads through the
// snapshot fast path: all reads are served at one snapshot timestamp, and —
// if every touched partition confirms the snapshot — Commit succeeds locally
// with zero validation rounds and zero messages. Call it before the first
// read. The declaration is advisory, not a straitjacket: a marked
// transaction that goes on to write, or whose snapshot cannot be confirmed,
// demotes to the classic validated path (the snapshot reads join the read
// set and validate like any others).
func (t *Txn) ReadOnly() {
	t.ro = true
	if len(t.reads) > 0 || len(t.writes) > 0 || len(t.ops) > 0 || t.c.cfg.DisableReadOnlyFastPath {
		return // too late, or ablated: commit classically
	}
	t.roViable = true
}

// snapshotFetch serves keys for a read-only-marked transaction via the
// snapshot path. The first call fixes the transaction's snapshot timestamp;
// later calls must confirm at exactly that timestamp (reads at two
// different snapshots would not be one consistent cut). On failure the
// transaction demotes: roViable is cleared and the caller re-reads through
// the classic path. The bool reports whether the snapshot path served the
// keys; a non-nil error is a hard context/timeout failure.
func (t *Txn) snapshotFetch(ctx context.Context, keys []string) ([]message.ReadResult, bool, error) {
	c := t.c
	var (
		res []message.ReadResult
		err error
	)
	if t.snapTS.IsZero() {
		var s timestamp.Timestamp
		res, s, err = c.snapshotBegin(ctx, keys)
		if err == nil {
			t.snapTS = s
			return res, true, nil
		}
	} else {
		res, _, err = c.snapshotReadCtx(ctx, keys, t.snapTS)
		if err == nil {
			return res, true, nil
		}
	}
	if !errors.Is(err, errROUnconfirmed) {
		return nil, false, err
	}
	c.obs.Inc(obs.ROFallback)
	t.roViable = false
	return nil, false, nil
}

// SnapshotRead performs a one-round strongly-consistent read of key: the
// value is serializable with respect to every committed transaction, like a
// validated read-only transaction, but costs a single snapshot round on the
// fast path. On an unconfirmed snapshot it demotes to the classic validated
// read. ok is false for a key that has never been written.
func (c *Coordinator) SnapshotRead(key string) ([]byte, timestamp.Timestamp, bool, error) {
	return c.SnapshotReadCtx(context.Background(), key)
}

// SnapshotReadCtx is SnapshotRead under a context.
func (c *Coordinator) SnapshotReadCtx(ctx context.Context, key string) ([]byte, timestamp.Timestamp, bool, error) {
	if !c.cfg.DisableReadOnlyFastPath {
		c.ro1[0] = key
		res, s, err := c.snapshotBegin(ctx, c.ro1[:])
		if err == nil {
			if c.lastTS.Less(s) {
				c.lastTS = s
			}
			c.obs.Inc(obs.TxnCommitRO)
			return res[0].Value, res[0].WTS, res[0].OK, nil
		}
		if errors.Is(err, errROUnconfirmed) {
			c.obs.Inc(obs.ROFallback)
		} else if !errors.Is(err, ErrWrongShard) {
			return nil, timestamp.Timestamp{}, false, err
		}
		// A wrong-shard redirect falls through too: the classic path's Run
		// loop re-routes with the refreshed map and retries.
	}
	// Classic path: a validated read-only transaction (read round plus
	// validation round), retried until it commits.
	var (
		val []byte
		ver timestamp.Timestamp
	)
	err := c.Run(ctx, func(t *Txn) error {
		v, rerr := t.ReadCtx(ctx, key)
		if rerr != nil {
			return rerr
		}
		val, ver = v, t.reads[0].WTS
		return nil
	})
	if err != nil {
		return nil, timestamp.Timestamp{}, false, err
	}
	return val, ver, !ver.IsZero(), nil
}
