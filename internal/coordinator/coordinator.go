// Package coordinator implements the Meerkat transaction coordinator
// (§5.1–§5.2): the execution phase (reads from any replica, buffered
// writes), the combined validation/replication phase with its supermajority
// fast path and Paxos-like slow path, and the write-phase commit broadcast.
//
// It also implements the consensus-based coordinator recovery procedure of
// §5.3.2, used both by backup coordinators on replicas (via the sweeper) and
// by an original coordinator whose slow-path proposal was superseded.
package coordinator

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"meerkat/internal/clock"
	"meerkat/internal/message"
	"meerkat/internal/obs"
	"meerkat/internal/shardmap"
	"meerkat/internal/timestamp"
	"meerkat/internal/topo"
	"meerkat/internal/transport"
)

// Errors returned by the commit protocol.
var (
	// ErrTimeout means the coordinator could not assemble the quorums it
	// needed within its retry budget; the transaction's outcome is
	// unknown (a backup coordinator will eventually finish it).
	ErrTimeout = errors.New("coordinator: timed out, outcome unknown")
	// ErrWrongShard means a replica refused a request because, under its
	// current shard map, it no longer owns some of the keys — the client
	// routed with a stale map. The coordinator's map cache has already been
	// refreshed by the time callers see this error. Unlike ErrTimeout, a
	// commit that returns ErrWrongShard is a known abort: the partition
	// either refused before creating any record or was driven to an
	// authoritative outcome through coordinator recovery.
	ErrWrongShard = errors.New("coordinator: wrong shard, routing map is stale")
)

// Config parameterizes a coordinator.
type Config struct {
	Topo     topo.Topology
	ClientID uint64
	Net      transport.Network
	Clock    clock.Clock

	// Timeout bounds each wait for a quorum of replies before the request
	// is resent. Defaults to 100ms.
	Timeout time.Duration
	// Retries is how many times each request is resent before giving up.
	// Defaults to 10.
	Retries int
	// BackoffBase and BackoffMax bound the capped exponential backoff
	// inserted before each resend: attempt k sleeps a uniformly jittered
	// duration in (0, min(BackoffBase<<k, BackoffMax)]. Under injected
	// faults (drops, partitions, a crashed replica) the backoff keeps a
	// fleet of retrying clients from hammering the surviving replicas in
	// lockstep. Defaults: 500µs base, 50ms cap.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// DisableFastPath forces every transaction through the slow path, an
	// ablation knob quantifying the fast path's round-trip saving.
	DisableFastPath bool
	// DisableReadOnlyFastPath forces read-only transactions through the
	// classic validated two-round commit, the ablation knob behind the
	// one-round-vs-two-round read experiment.
	DisableReadOnlyFastPath bool
	// ShardMap, when non-nil, routes each key to the replica group owning
	// its hash range under the cached cluster shard map, instead of the
	// topology's static key-hash modulo. On a wrong-shard redirect the
	// coordinator refreshes the cache; Run re-routes and retries. Nil keeps
	// the legacy static routing.
	ShardMap *shardmap.Cache
	// Seed seeds core/replica load-balancing choices. Zero means seed
	// from ClientID.
	Seed int64
	// Obs, when non-nil, receives the coordinator's transaction lifecycle
	// events (fast/slow-path commits, aborts by reason, retries) and commit
	// latency. The coordinator is single-goroutine, so one private shard
	// per coordinator keeps recording coordination-free.
	Obs *obs.Shard
}

func (c *Config) fill() {
	if c.Timeout == 0 {
		c.Timeout = 100 * time.Millisecond
	}
	if c.Retries == 0 {
		c.Retries = 10
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 500 * time.Microsecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 50 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = int64(c.ClientID + 1)
	}
}

// rtimer is a reusable retry timer: one time.Timer per wait site for the
// coordinator's lifetime instead of one per attempt. arm stops and drains any
// leftover state from the previous wait, so callers simply arm before each
// wait; a fired-but-unread expiry from an earlier wait is swallowed here
// rather than misread as a fresh timeout.
type rtimer struct{ t *time.Timer }

func (rt *rtimer) arm(d time.Duration) <-chan time.Time {
	if rt.t == nil {
		rt.t = time.NewTimer(d)
		return rt.t.C
	}
	if !rt.t.Stop() {
		select {
		case <-rt.t.C:
		default:
		}
	}
	rt.t.Reset(d)
	return rt.t.C
}

// phaseTimers bundles the two waits of one partition's validate phase (the
// full-quorum deadline and the straggler grace window) plus the phase's
// broadcast scratch. The zero value is ready: each concurrent per-partition
// goroutine owns its own, while single-partition commits reuse the
// coordinator's across transactions.
type phaseTimers struct {
	deadline rtimer
	grace    rtimer
	outs     []transport.Outgoing // broadcast headers, reused across attempts
}

// broadcast hands one copy of req per destination in group to ep as a single
// batch — one syscall on the real wire instead of one per replica. Every
// destination gets a freshly allocated copy (the transport owns a message
// once handed over, and stamps Src per send), while the Outgoing headers
// live in the caller's scratch, which is returned for reuse.
func broadcast(ep transport.Endpoint, group []message.Addr, req *message.Message, scratch []transport.Outgoing) []transport.Outgoing {
	outs := scratch[:0]
	for _, dst := range group {
		m := new(message.Message)
		*m = *req
		outs = append(outs, transport.Outgoing{Dst: dst, M: m})
	}
	ep.SendBatch(outs)
	return outs
}

// backoffDelay computes the capped exponential backoff before retry k
// (0-based): a uniformly jittered duration in (0, min(base<<k, max)]. Full
// jitter rather than base-plus-jitter, so colliding clients decorrelate as
// fast as possible. The draw comes from the caller's private stream — the
// concurrent per-partition phases of one commit must not contend (or race)
// on the coordinator's shared rng.
func backoffDelay(base, max time.Duration, k int, rng *transport.SplitMix64) time.Duration {
	d := max
	if k < 63 {
		if s := base << uint(k); s > 0 && s < max {
			d = s
		}
	}
	if d <= 0 {
		return 0
	}
	return time.Duration(rng.Uint64()%uint64(d)) + 1
}

// sleep parks the goroutine for d, or less if ctx expires first. Callers
// re-check the context via waitBudget right after, so no error is returned.
func sleep(ctx context.Context, d time.Duration, rt *rtimer) {
	if d <= 0 {
		return
	}
	select {
	case <-rt.arm(d):
	case <-ctx.Done():
	}
}

// waitBudget returns the quorum-wait budget for one protocol attempt under
// ctx: cfg.Timeout, clamped to the context's remaining time. An expired
// context yields an error that unwraps to both ErrTimeout and the context's
// own error — the outcome of an in-flight commit is unknown, exactly as on a
// retry-budget timeout.
func (c *Coordinator) waitBudget(ctx context.Context) (time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("%w: %w", ErrTimeout, err)
	}
	d := c.cfg.Timeout
	if deadline, ok := ctx.Deadline(); ok {
		r := time.Until(deadline)
		if r <= 0 {
			return 0, fmt.Errorf("%w: %w", ErrTimeout, context.DeadlineExceeded)
		}
		if r < d {
			d = r
		}
	}
	return d, nil
}

// Coordinator drives transactions for one client. It is not safe for
// concurrent use: each closed-loop client owns one.
type Coordinator struct {
	cfg Config
	gen *timestamp.Generator
	rng transport.SplitMix64 // replica/core load balancing; no lock, no heap

	// readEp serves the execution phase; commitEps[p] serves the commit
	// protocol for partition p. Separate endpoints give each concurrent
	// per-partition phase its own reply queue, so no demultiplexer is
	// needed. Multi-reads ride the commit endpoints: their replies land on
	// the requesting partition's private queue.
	readEp    transport.Endpoint
	readInbox *transport.Inbox
	commitEps []transport.Endpoint
	commitIns []*transport.Inbox

	readSeq uint64
	obs     *obs.Shard // nil-safe lifecycle recorder (see Config.Obs)

	// shared is true for Session workers: the endpoints belong to the
	// session, so Close leaves them alone.
	shared bool

	// Per-coordinator scratch, reused across operations (the coordinator is
	// single-goroutine by contract). None of it is ever placed into a sent
	// message: the transport may deliver a message after the send times out
	// here, so anything a message carries must be freshly allocated.
	rt         rtimer      // Read/ReadMany retry deadline
	pt         phaseTimers // validate-phase timers for inline (single-partition) commits
	done       chan int    // multi-partition commit fan-in, reused across commits
	partsBuf   []partTxn   // split output headers (per-partition sets stay fresh)
	resultsBuf []partResult
	keyParts   []int                // partition of each key/entry during split and ReadMany
	partIdx    []int                // per-partition scratch indexed by partition id
	partOff    []int                // ReadMany group offsets, len Partitions+1
	origIdx    []int                // ReadMany: original index of each grouped key
	readRes    []message.ReadResult // ReadMany result scratch, returned to the caller
	roKeys     []roKeyState         // snapshot-read settlement scratch, aligned with grouped keys
	roOuts     []transport.Outgoing // snapshot-read broadcast headers
	ro1        [1]string            // single-key scratch for SnapshotRead

	// lastTS is the highest timestamp this coordinator has committed at, on
	// either path. Snapshot round-down never goes below it, so one session's
	// reads can never miss that session's own writes.
	lastTS timestamp.Timestamp

	// rerouted latches that a wrong-shard redirect refreshed the shard-map
	// cache to a newer version, so Run's next retry can skip the backoff —
	// the re-routed attempt goes to a different replica group and cannot
	// re-collide with whatever aborted this one. Atomic because the
	// concurrent per-partition validate goroutines of one commit may all
	// observe redirects.
	rerouted atomic.Bool

	// groups[p*Cores+core] is the broadcast destination set for (p, core),
	// precomputed once so the per-commit phases never allocate it. Immutable
	// after New, hence safe to read from concurrent per-partition goroutines.
	groups [][]message.Addr
}

// group returns the precomputed broadcast addresses of core `core` on every
// replica of partition p.
func (c *Coordinator) group(p int, core uint32) []message.Addr {
	return c.groups[p*c.cfg.Topo.Cores+int(core)]
}

// partitionFor routes key to its partition: through the shard-map cache when
// the coordinator is shard-aware, else the topology's static key hash. The
// cache read is one atomic pointer load and the range lookup a binary search
// over a few entries — no allocation, no lock.
func (c *Coordinator) partitionFor(key string) int {
	if c.cfg.ShardMap != nil {
		return c.cfg.ShardMap.Current().GroupForKey(key)
	}
	return c.cfg.Topo.PartitionForKey(key)
}

// mapVersion is the shard-map version outgoing requests are stamped with, so
// replicas can tell how stale a redirected client is (0 = not shard-aware).
func (c *Coordinator) mapVersion() uint64 {
	if c.cfg.ShardMap == nil {
		return 0
	}
	return c.cfg.ShardMap.Current().Version()
}

// noteRedirect refreshes the shard-map cache after a wrong-shard reply and
// reports whether the refresh advanced to a newer map — in which case an
// immediate re-routed retry is worthwhile, and rerouted is latched for Run.
// Safe to call from the concurrent per-partition validate goroutines.
func (c *Coordinator) noteRedirect() bool {
	if c.cfg.ShardMap == nil {
		return false
	}
	_, advanced := c.cfg.ShardMap.Refresh()
	if advanced {
		c.obs.Inc(obs.MapRefresh)
		c.rerouted.Store(true)
	}
	return advanced
}

// newCore builds a coordinator without binding any endpoints; New installs
// its own, Session workers share the session's. cfg must already be filled
// and its topology validated.
func newCore(cfg Config) *Coordinator {
	c := &Coordinator{
		cfg:  cfg,
		gen:  timestamp.NewGenerator(cfg.ClientID, cfg.Clock.Now),
		rng:  transport.SeedSplitMix64(uint64(cfg.Seed)),
		obs:  cfg.Obs,
		done: make(chan int, cfg.Topo.Partitions),
	}
	c.groups = make([][]message.Addr, cfg.Topo.Partitions*cfg.Topo.Cores)
	for p := 0; p < cfg.Topo.Partitions; p++ {
		for core := 0; core < cfg.Topo.Cores; core++ {
			c.groups[p*cfg.Topo.Cores+core] = cfg.Topo.GroupAddrs(p, uint32(core))
		}
	}
	return c
}

// inboxDepth sizes reply inboxes: one operation's replies plus stragglers
// from retried earlier attempts, so size to the replica group with generous
// headroom rather than a flat constant.
func inboxDepth(t topo.Topology) int {
	depth := 8 * t.Replicas
	if depth < 256 {
		depth = 256
	}
	return depth
}

// New binds a coordinator's endpoints on cfg.Net.
func New(cfg Config) (*Coordinator, error) {
	cfg.fill()
	if !cfg.Topo.Validate() {
		return nil, fmt.Errorf("coordinator: invalid topology %+v", cfg.Topo)
	}
	c := newCore(cfg)
	depth := inboxDepth(cfg.Topo)
	base := cfg.Topo.ClientAddr(cfg.ClientID)
	c.readInbox = transport.NewInbox(depth)
	ep, err := cfg.Net.Listen(base, c.readInbox.Handle)
	if err != nil {
		return nil, err
	}
	c.readEp = ep
	for p := 0; p < cfg.Topo.Partitions; p++ {
		in := transport.NewInbox(depth)
		ep, err := cfg.Net.Listen(message.Addr{Node: base.Node, Core: uint32(1 + p)}, in.Handle)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.commitEps = append(c.commitEps, ep)
		c.commitIns = append(c.commitIns, in)
	}
	return c, nil
}

// Close releases the coordinator's endpoints. Session workers share the
// session's endpoints and leave closing them to Session.Close.
func (c *Coordinator) Close() {
	if c.shared {
		return
	}
	if c.readEp != nil {
		c.readEp.Close()
	}
	for _, ep := range c.commitEps {
		ep.Close()
	}
}

// Read performs one execution-phase read: it asks a uniformly chosen replica
// core of the key's partition for the latest committed version. A missing
// key returns ok=false with version Zero — still a meaningful read that the
// validation phase will check.
func (c *Coordinator) Read(key string) (value []byte, version timestamp.Timestamp, ok bool, err error) {
	return c.ReadCtx(context.Background(), key)
}

// ReadCtx is Read under a context: the per-attempt wait shrinks to the
// context's remaining time, and cancellation ends the retry loop early.
// Reads are idempotent, so a context-expired read is always safe to retry.
func (c *Coordinator) ReadCtx(ctx context.Context, key string) (value []byte, version timestamp.Timestamp, ok bool, err error) {
	c.readSeq++
	seq := c.readSeq
	c.readInbox.Drain()

	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			c.obs.Inc(obs.ReadRetry)
			// The coordinator is single-goroutine, so reads may draw their
			// backoff jitter from the shared rng.
			sleep(ctx, backoffDelay(c.cfg.BackoffBase, c.cfg.BackoffMax, attempt-1, &c.rng), &c.rt)
		}
		budget, berr := c.waitBudget(ctx)
		if berr != nil {
			return nil, timestamp.Timestamp{}, false, berr
		}
		// Routed per attempt: a wrong-shard redirect below refreshes the map
		// cache, and the resent read must go to the new owner.
		p := c.partitionFor(key)
		// Load-balance GETs across replicas and cores, as in §6.2.
		r := c.rng.Intn(c.cfg.Topo.Replicas)
		core := uint32(c.rng.Intn(c.cfg.Topo.Cores))
		dst := c.cfg.Topo.ReplicaAddr(p, r, core)
		err = c.readEp.Send(dst, &message.Message{Type: message.TypeRead, Key: key, Seq: seq, MapVersion: c.mapVersion()})
		if err != nil {
			return nil, timestamp.Timestamp{}, false, err
		}
		deadline := c.rt.arm(budget)
	wait:
		for {
			select {
			case m := <-c.readInbox.C:
				if m.Type != message.TypeReadReply || m.Seq != seq {
					continue // stale reply
				}
				if m.WrongShard {
					// Routed with a stale map. If the refresh advanced it,
					// the next attempt re-routes (reads are idempotent);
					// otherwise the split is still mid-fence and the caller
					// must back off before asking again.
					c.obs.Inc(obs.TxnWrongShard)
					if !c.noteRedirect() {
						return nil, timestamp.Timestamp{}, false, ErrWrongShard
					}
					break wait
				}
				return m.Value, m.TS, m.OK, nil
			case <-ctx.Done():
				break wait
			case <-deadline:
				break wait
			}
		}
	}
	return nil, timestamp.Timestamp{}, false, ErrTimeout
}

// sendMultiRead fires one batched read at a uniformly chosen replica core of
// partition p, through the partition's commit endpoint so the reply lands on
// a queue no other partition shares. The message — and the keys slice inside
// it — belongs to the transport once sent and is freshly allocated by the
// caller per ReadMany, never a reused scratch.
func (c *Coordinator) sendMultiRead(p int, keys []string, seq uint64) error {
	r := c.rng.Intn(c.cfg.Topo.Replicas)
	core := uint32(c.rng.Intn(c.cfg.Topo.Cores))
	dst := c.cfg.Topo.ReplicaAddr(p, r, core)
	return c.commitEps[p].Send(dst, &message.Message{Type: message.TypeMultiRead, Keys: keys, Seq: seq, MapVersion: c.mapVersion()})
}

// ReadMany performs one batched execution phase over keys: the keys are
// grouped by partition and one multi-read is sent to a uniformly chosen
// replica core of each touched partition, with every request in flight
// before any reply is awaited — a transaction's whole read set costs one
// round trip instead of one per key. Results are index-aligned with keys;
// missing keys come back OK=false with version Zero, exactly as in Read.
//
// Like single reads, batched reads are served from the lock-free versioned
// store by any replica core, so batching preserves the zero-coordination
// execution phase (§5.2.1) while amortizing its per-message cost.
//
// The returned slice is a scratch reused by the next ReadMany call on this
// coordinator; callers that need the results past that must copy them out.
func (c *Coordinator) ReadMany(keys []string) ([]message.ReadResult, error) {
	return c.ReadManyCtx(context.Background(), keys)
}

// ReadManyCtx is ReadMany under a context: per-attempt waits shrink to the
// context's remaining time and cancellation ends the per-partition retry
// loops early. Like single reads, batched reads are idempotent and safe to
// retry after a context-expired attempt.
func (c *Coordinator) ReadManyCtx(ctx context.Context, keys []string) ([]message.ReadResult, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	nparts := c.cfg.Topo.Partitions

	// Group keys by partition: count, then carve one fresh backing array
	// into contiguous ascending-partition spans. partOff[p] is the start of
	// partition p's span (len nparts+1, so span p is off[p]..off[p+1]);
	// origIdx maps each grouped slot back to its position in keys.
	if c.partIdx == nil || len(c.partIdx) < nparts {
		c.partIdx = make([]int, nparts)
		c.partOff = make([]int, nparts+1)
	}
	cursor, off := c.partIdx, c.partOff
	for p := 0; p < nparts; p++ {
		cursor[p] = 0
	}
	if cap(c.keyParts) < len(keys) {
		c.keyParts = make([]int, len(keys))
	}
	if cap(c.origIdx) < len(keys) {
		c.origIdx = make([]int, len(keys))
	}
	kp, origIdx := c.keyParts[:len(keys)], c.origIdx[:len(keys)]
	for i, k := range keys {
		p := c.partitionFor(k)
		kp[i] = p
		cursor[p]++
	}
	sum := 0
	for p := 0; p < nparts; p++ {
		off[p] = sum
		sum += cursor[p]
		cursor[p] = off[p]
	}
	off[nparts] = sum
	grouped := make([]string, len(keys))
	for i, p := range kp {
		grouped[cursor[p]] = keys[i]
		origIdx[cursor[p]] = i
		cursor[p]++
	}

	c.readSeq++
	seq := c.readSeq
	if cap(c.readRes) < len(keys) {
		c.readRes = make([]message.ReadResult, len(keys))
	}
	out := c.readRes[:len(keys)]

	// Fire every partition's request before collecting any reply, so the
	// per-partition round trips overlap without spawning goroutines.
	for p := 0; p < nparts; p++ {
		if off[p+1] == off[p] {
			continue
		}
		c.commitIns[p].Drain()
		if err := c.sendMultiRead(p, grouped[off[p]:off[p+1]], seq); err != nil {
			return nil, err
		}
		c.obs.Inc(obs.ReadMultiRound)
	}

	// Collect per partition; a timed-out partition is resent (to a freshly
	// chosen replica) without disturbing partitions already answered.
	for p := 0; p < nparts; p++ {
		want := off[p+1] - off[p]
		if want == 0 {
			continue
		}
		in := c.commitIns[p]
		got := false
		for attempt := 0; attempt <= c.cfg.Retries && !got; attempt++ {
			if attempt > 0 {
				c.obs.Inc(obs.ReadMultiRetry)
				sleep(ctx, backoffDelay(c.cfg.BackoffBase, c.cfg.BackoffMax, attempt-1, &c.rng), &c.rt)
			}
			budget, berr := c.waitBudget(ctx)
			if berr != nil {
				return nil, berr
			}
			if attempt > 0 {
				if err := c.sendMultiRead(p, grouped[off[p]:off[p+1]], seq); err != nil {
					return nil, err
				}
			}
			deadline := c.rt.arm(budget)
		wait:
			for {
				// Fast path: a reply that is already queued (the replica ran
				// while this goroutine was collecting another partition) is
				// taken without the full select machinery.
				var m *message.Message
				select {
				case m = <-in.C:
				default:
					select {
					case m = <-in.C:
					case <-ctx.Done():
						break wait
					case <-deadline:
						break wait
					}
				}
				if m.Type != message.TypeMultiReadReply || m.Seq != seq {
					continue // stale reply from an earlier operation
				}
				if m.WrongShard {
					// The whole grouping was computed from a stale map:
					// refresh and make the caller re-issue the batch, which
					// will regroup every key under the new map.
					c.obs.Inc(obs.TxnWrongShard)
					c.noteRedirect()
					return nil, ErrWrongShard
				}
				if len(m.Reads) != want {
					continue // stale reply from an earlier operation
				}
				for j := range m.Reads {
					out[origIdx[off[p]+j]] = m.Reads[j]
				}
				got = true
				break wait
			}
		}
		if !got {
			return nil, ErrTimeout
		}
	}
	return out, nil
}

// Txn accumulates a transaction's read and write sets on the client, with
// read-your-writes and read-caching semantics.
//
// Set membership is checked by linear scan, not an index map: OLTP read/write
// sets are a handful of entries (YCSB-T touches 4 keys, Retwis at most a
// dozen), where scanning a slice beats hashing and — unlike two lazily built
// maps — costs the commit hot path zero allocations.
type Txn struct {
	c        *Coordinator
	reads    []message.ReadSetEntry
	readVals [][]byte
	writes   []message.WriteSetEntry
	ops      []message.OpSetEntry

	// opErr latches a misuse of the op API (mixing op kinds on one key);
	// Commit surfaces it instead of shipping a transaction the replicas
	// cannot merge.
	opErr error

	// committedAt is the serialization timestamp, set once Commit decides.
	committedAt timestamp.Timestamp
	id          timestamp.TxnID

	// coreID and unresolved record where a timed-out commit was in flight —
	// the processing core and the touched partitions — so Resolve can drive
	// the recovery procedure for exactly those (partition, core) groups.
	// unresolved is non-empty only after Commit returned ErrTimeout.
	coreID     uint32
	unresolved []int

	// ro marks the transaction read-only (ReadOnly was called). roViable is
	// true while the snapshot fast path is still serving it, and clears on
	// demotion — a buffered write or op, or a snapshot that would not
	// confirm. snapTS is the snapshot timestamp, fixed by the first snapshot
	// read so the whole transaction observes one consistent cut.
	ro       bool
	roViable bool
	snapTS   timestamp.Timestamp
	// roCommitted records that Commit took the read-only fast path, in which
	// case committedAt is the snapshot timestamp.
	roCommitted bool
}

// Begin starts a new transaction.
func (c *Coordinator) Begin() *Txn {
	return &Txn{c: c}
}

// findWrite returns the write-set position of key, or -1.
func (t *Txn) findWrite(key string) int {
	for i := range t.writes {
		if t.writes[i].Key == key {
			return i
		}
	}
	return -1
}

// findRead returns the read-set position of key, or -1.
func (t *Txn) findRead(key string) int {
	for i := range t.reads {
		if t.reads[i].Key == key {
			return i
		}
	}
	return -1
}

// findOp returns the op-set position of key, or -1.
func (t *Txn) findOp(key string) int {
	for i := range t.ops {
		if t.ops[i].Key == key {
			return i
		}
	}
	return -1
}

// Read returns the value of key as of this transaction's snapshot: a
// buffered write if the transaction wrote the key, the previously read value
// if it already read it, or a fresh versioned read from a replica.
func (t *Txn) Read(key string) ([]byte, error) {
	return t.ReadCtx(context.Background(), key)
}

// ReadCtx is Read under a context (see Coordinator.ReadCtx).
//
// Reading a key with a buffered commutative op performs a real versioned read
// (which joins the read set and is validated like any other) and returns the
// op applied to the value read — read-your-ops. Note that this trades back
// the op's abort immunity for that key: the transaction now carries a read
// version a conflicting writer can invalidate.
func (t *Txn) ReadCtx(ctx context.Context, key string) ([]byte, error) {
	if i := t.findWrite(key); i >= 0 {
		return t.writes[i].Value, nil
	}
	if i := t.findRead(key); i >= 0 {
		return t.applyPendingOp(key, t.readVals[i]), nil
	}
	if t.roViable {
		t.c.ro1[0] = key
		res, served, err := t.snapshotFetch(ctx, t.c.ro1[:])
		if err != nil {
			return nil, err
		}
		if served {
			// The snapshot read still joins the read set: if the transaction
			// later demotes (a write, or an unconfirmable second fetch), it
			// commits classically and these reads validate like any others.
			v := res[0]
			t.reads = append(t.reads, message.ReadSetEntry{Key: key, WTS: v.WTS, VHash: message.HashValue(v.Value)})
			t.readVals = append(t.readVals, v.Value)
			return t.applyPendingOp(key, v.Value), nil
		}
		// Demoted: fall through to the classic read.
	}
	val, ver, _, err := t.c.ReadCtx(ctx, key)
	if err != nil {
		return nil, err
	}
	// VHash identifies the observed value, not just its timestamp: a
	// commutative op merging below ver would change the value without
	// moving ver, and validation must notice (see message.ReadSetEntry).
	t.reads = append(t.reads, message.ReadSetEntry{Key: key, WTS: ver, VHash: message.HashValue(val)})
	t.readVals = append(t.readVals, val)
	return t.applyPendingOp(key, val), nil
}

// applyPendingOp materializes the transaction's buffered op for key on top of
// a value read from the store, so reads observe the transaction's own ops.
func (t *Txn) applyPendingOp(key string, val []byte) []byte {
	if i := t.findOp(key); i >= 0 {
		o := &t.ops[i]
		return message.ApplyOp(nil, val, o.Kind, o.Delta, o.Arg)
	}
	return val
}

// ReadMany reads every key in keys as of this transaction's snapshot,
// batching all keys that need a replica round trip into one coordinator
// ReadMany call (one multi-read per touched partition, in parallel). The
// returned values are index-aligned with keys. Buffered writes, earlier
// reads, and duplicate keys within the batch are honored exactly as per-key
// Read would: each key is fetched at most once and lands in the read set at
// most once.
func (t *Txn) ReadMany(keys []string) ([][]byte, error) {
	return t.ReadManyCtx(context.Background(), keys)
}

// ReadManyCtx is ReadMany under a context (see Coordinator.ReadManyCtx).
func (t *Txn) ReadManyCtx(ctx context.Context, keys []string) ([][]byte, error) {
	vals := make([][]byte, len(keys))
	fetch := make([]string, 0, len(keys))
	for _, key := range keys {
		if t.findWrite(key) >= 0 || t.findRead(key) >= 0 {
			continue
		}
		dup := false
		for _, f := range fetch {
			if f == key {
				dup = true
				break
			}
		}
		if !dup {
			fetch = append(fetch, key)
		}
	}
	if len(fetch) > 0 {
		var res []message.ReadResult
		if t.roViable {
			r, served, err := t.snapshotFetch(ctx, fetch)
			if err != nil {
				return nil, err
			}
			if served {
				res = r
			}
		}
		if res == nil {
			r, err := t.c.ReadManyCtx(ctx, fetch)
			if err != nil {
				return nil, err
			}
			res = r
		}
		// Grow the read set once for the whole batch rather than along the
		// append doubling chain — under GOMAXPROCS=1 the GC competes with the
		// replicas for the CPU, so batch-path garbage is latency.
		if cap(t.reads)-len(t.reads) < len(fetch) {
			reads := make([]message.ReadSetEntry, len(t.reads), len(t.reads)+len(fetch))
			copy(reads, t.reads)
			t.reads = reads
			readVals := make([][]byte, len(t.readVals), len(t.readVals)+len(fetch))
			copy(readVals, t.readVals)
			t.readVals = readVals
		}
		for j, key := range fetch {
			t.reads = append(t.reads, message.ReadSetEntry{Key: key, WTS: res[j].WTS, VHash: message.HashValue(res[j].Value)})
			t.readVals = append(t.readVals, res[j].Value)
		}
	}
	for i, key := range keys {
		if j := t.findWrite(key); j >= 0 {
			vals[i] = t.writes[j].Value
		} else {
			vals[i] = t.applyPendingOp(key, t.readVals[t.findRead(key)])
		}
	}
	return vals, nil
}

// Write buffers a write; nothing reaches any replica until Commit. A write
// replaces any commutative op previously buffered for the key — the blind
// write's value does not depend on the op's outcome.
func (t *Txn) Write(key string, value []byte) {
	t.roViable = false // no longer read-only; commit classically
	if i := t.findOp(key); i >= 0 {
		t.ops = append(t.ops[:i], t.ops[i+1:]...)
	}
	if i := t.findWrite(key); i >= 0 {
		t.writes[i].Value = value
		return
	}
	t.writes = append(t.writes, message.WriteSetEntry{Key: key, Value: value})
}

// errMixedOps reports op kinds that cannot be folded into one entry.
var errMixedOps = errors.New("coordinator: mixed op kinds on one key in a single transaction")

// addOp buffers one commutative op for key. Ops on a key the transaction has
// already written fold into the buffered write immediately (the write is this
// transaction's view of the key). Repeat ops of the same kind fold into a
// single entry — increments sum, max/min keep the extreme, appends
// concatenate — so a key carries at most one op-set entry, which is what the
// replicas' merge requires (two ops at the same commit timestamp are
// indistinguishable from a replay). Mixing kinds on one key is not foldable
// without the key's value; it latches an error that Commit returns.
func (t *Txn) addOp(key string, kind message.OpKind, delta int64, arg []byte) {
	t.roViable = false // no longer read-only; commit classically
	if i := t.findWrite(key); i >= 0 {
		t.writes[i].Value = message.ApplyOp(nil, t.writes[i].Value, kind, delta, arg)
		return
	}
	i := t.findOp(key)
	if i < 0 {
		t.ops = append(t.ops, message.OpSetEntry{Key: key, Kind: kind, Delta: delta, Arg: arg})
		return
	}
	o := &t.ops[i]
	if o.Kind != kind {
		if t.opErr == nil {
			t.opErr = fmt.Errorf("%w: %s then %s on %q", errMixedOps, o.Kind, kind, key)
		}
		return
	}
	switch kind {
	case message.OpIncrement:
		o.Delta += delta
	case message.OpMax:
		if delta > o.Delta {
			o.Delta = delta
		}
	case message.OpMin:
		if delta < o.Delta {
			o.Delta = delta
		}
	case message.OpAppend:
		// Never append in place: arg may alias caller memory, and o.Arg may
		// alias a previous caller's.
		merged := make([]byte, 0, len(o.Arg)+len(arg))
		merged = append(merged, o.Arg...)
		merged = append(merged, arg...)
		o.Arg = merged
	}
}

// Add buffers a server-side increment of key by delta (negative deltas
// decrement). The op ships to the replicas instead of a read-version plus
// blind write, so concurrent Adds to the same key merge at their commit
// timestamps rather than aborting each other.
func (t *Txn) Add(key string, delta int64) { t.addOp(key, message.OpIncrement, delta, nil) }

// Append buffers a server-side append of b to key's value. The caller must
// not mutate b until Commit returns.
func (t *Txn) Append(key string, b []byte) { t.addOp(key, message.OpAppend, 0, b) }

// MergeMax buffers a server-side monotone merge: key's value becomes
// max(current, v), treating a missing or non-numeric value as v.
func (t *Txn) MergeMax(key string, v int64) { t.addOp(key, message.OpMax, v, nil) }

// MergeMin buffers the min-merge counterpart of MergeMax.
func (t *Txn) MergeMin(key string, v int64) { t.addOp(key, message.OpMin, v, nil) }

// ReadSetSize, WriteSetSize, and OpSetSize expose set sizes for tests and
// stats.
func (t *Txn) ReadSetSize() int  { return len(t.reads) }
func (t *Txn) WriteSetSize() int { return len(t.writes) }
func (t *Txn) OpSetSize() int    { return len(t.ops) }

// Commit runs the validation and write phases. It returns true if the
// transaction committed, false if it aborted due to conflicts, and an error
// if the outcome could not be determined within the retry budget. The error
// always unwraps to ErrTimeout; Resolve can then learn the final outcome.
func (t *Txn) Commit() (bool, error) {
	return t.c.commit(context.Background(), t)
}

// CommitCtx is Commit under a context: the context's deadline maps onto the
// commit protocol's per-attempt waits, and cancellation ends the retry loops
// early. A context-expired commit is outcome-unknown exactly like a
// retry-budget timeout — the returned error unwraps to both ErrTimeout and
// the context's error, and Resolve applies.
func (t *Txn) CommitCtx(ctx context.Context) (bool, error) {
	return t.c.commit(ctx, t)
}

// Resolve learns — or, if still undecided, forces — the final outcome of a
// transaction whose Commit returned ErrTimeout, by driving the
// cooperative-termination recovery procedure (§5.3.2) in every partition the
// commit touched. It returns whether the transaction committed. Without
// this, a client that timed out can never tell whether its writes landed;
// with it, a history survives fault injection with no maybe-committed holes.
//
// Each touched partition is driven to its recorded decision and the results
// are conjoined, mirroring how commit itself combines per-partition
// verdicts. The coordinator's single-goroutine contract applies: Resolve
// reuses the commit endpoints.
func (t *Txn) Resolve() (bool, error) {
	if len(t.unresolved) == 0 {
		return false, errors.New("coordinator: nothing to resolve (commit did not time out)")
	}
	committed := true
	for _, p := range t.unresolved {
		ok, err := t.c.RecoverTxn(p, t.id, t.coreID, 0)
		if err != nil {
			return false, err
		}
		committed = committed && ok
	}
	t.unresolved = t.unresolved[:0]
	if committed {
		t.c.obs.Inc(obs.TxnResolveCommit)
	} else {
		t.c.obs.Inc(obs.TxnResolveAbort)
	}
	return committed, nil
}

// Run executes fn inside transactions until one commits: the canonical
// retry loop. Conflict aborts retry after the capped, jittered backoff;
// read timeouts inside fn retry the same way (reads are idempotent); a
// commit timeout is resolved through the recovery procedure, so Run never
// reports success or failure while the outcome is actually unknown. Run
// returns nil once a transaction commits, the context's error (wrapped in
// ErrTimeout) once ctx expires, and fn's own error — aborting the loop — for
// anything else. fn may be called many times and must be safe to re-execute;
// it should build the transaction and return, leaving Commit to Run.
func (c *Coordinator) Run(ctx context.Context, fn func(*Txn) error) error {
	// Run executes on the coordinator's own goroutine, so the shared rng is
	// safe for its backoff jitter.
	immediate := false
	for attempt := 0; ; attempt++ {
		if attempt > 0 && !immediate {
			sleep(ctx, backoffDelay(c.cfg.BackoffBase, c.cfg.BackoffMax, attempt-1, &c.rng), &c.rt)
		}
		immediate = false
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w: %w", ErrTimeout, err)
		}
		t := c.Begin()
		if err := fn(t); err != nil {
			if errors.Is(err, ErrWrongShard) && ctx.Err() == nil {
				// A read hit a moved range; the map cache was refreshed at
				// the reply site. Retry — immediately if the refresh
				// advanced the map (the re-routed attempt goes to a
				// different group), with backoff if the split is still
				// mid-fence and the new map is not published yet.
				immediate = c.rerouted.Swap(false)
				continue
			}
			if errors.Is(err, ErrTimeout) && ctx.Err() == nil {
				continue // a timed-out read is safe to retry
			}
			return err
		}
		ok, err := t.CommitCtx(ctx)
		if err != nil {
			if errors.Is(err, ErrWrongShard) && ctx.Err() == nil {
				// The commit aborted on a wrong-shard redirect — a known
				// outcome, not a timeout. Re-route and retry, as above.
				immediate = c.rerouted.Swap(false)
				continue
			}
			if !errors.Is(err, ErrTimeout) || ctx.Err() != nil {
				return err
			}
			// Outcome unknown: resolve it rather than guess. A resolve
			// failure keeps the uncertainty, so surface the original error.
			committed, rerr := t.Resolve()
			if rerr != nil {
				return err
			}
			if committed {
				return nil
			}
			continue // resolved to abort: retry
		}
		if ok {
			return nil
		}
		// Conflict abort: back off and retry.
	}
}

// Timestamp returns the transaction's serialization timestamp (valid after
// Commit returned true): committed transactions are one-copy serializable in
// timestamp order.
func (t *Txn) Timestamp() timestamp.Timestamp { return t.committedAt }

// ID returns the transaction id assigned at commit time.
func (t *Txn) ID() timestamp.TxnID { return t.id }

// CommittedReadOnly reports whether Commit went through the read-only fast
// path — zero validation rounds — in which case Timestamp is the snapshot
// timestamp rather than a fresh generator draw.
func (t *Txn) CommittedReadOnly() bool { return t.roCommitted }

// ReadSet, WriteSet, and OpSet expose the transaction's sets for verification
// tooling (the serializability checker); callers must not mutate them.
func (t *Txn) ReadSet() []message.ReadSetEntry   { return t.reads }
func (t *Txn) WriteSet() []message.WriteSetEntry { return t.writes }
func (t *Txn) OpSet() []message.OpSetEntry       { return t.ops }

// partTxn is the slice of a transaction owned by one partition.
type partTxn struct {
	p   int
	txn message.Txn
}

// partResult is one partition's validate-phase outcome.
type partResult struct {
	commit bool
	slow   bool
	err    error
}

// split carves the transaction into per-partition pieces, emitted in
// ascending partition order so the send order is deterministic (and tests
// can assert on it). The partTxn headers live in a scratch reused across
// commits; the per-partition read/write sets are freshly allocated each
// time, because validated replicas alias them into their trecords.
func (c *Coordinator) split(t *Txn, tid timestamp.TxnID) []partTxn {
	if len(t.reads)+len(t.writes)+len(t.ops) == 0 {
		return nil // empty transaction: nothing to validate anywhere
	}
	nparts := c.cfg.Topo.Partitions
	if nparts == 1 {
		c.partsBuf = append(c.partsBuf[:0], partTxn{p: 0, txn: message.Txn{ID: tid, ReadSet: t.reads, WriteSet: t.writes, OpSet: t.ops}})
		return c.partsBuf
	}
	if c.partIdx == nil || len(c.partIdx) < nparts {
		c.partIdx = make([]int, nparts)
		c.partOff = make([]int, nparts+1)
	}
	idx := c.partIdx // idx[p] = 1 + position of partition p in out; 0 = untouched
	for p := 0; p < nparts; p++ {
		idx[p] = 0
	}
	n := len(t.reads) + len(t.writes) + len(t.ops)
	if cap(c.keyParts) < n {
		c.keyParts = make([]int, n)
	}
	kp := c.keyParts[:0]
	for i := range t.reads {
		kp = append(kp, c.partitionFor(t.reads[i].Key))
	}
	for i := range t.writes {
		kp = append(kp, c.partitionFor(t.writes[i].Key))
	}
	for i := range t.ops {
		kp = append(kp, c.partitionFor(t.ops[i].Key))
	}
	c.keyParts = kp
	for _, p := range kp {
		idx[p] = 1
	}
	out := c.partsBuf[:0]
	for p := 0; p < nparts; p++ {
		if idx[p] != 0 {
			out = append(out, partTxn{p: p, txn: message.Txn{ID: tid}})
			idx[p] = len(out)
		}
	}
	for i := range t.reads {
		tx := &out[idx[kp[i]]-1].txn
		tx.ReadSet = append(tx.ReadSet, t.reads[i])
	}
	for i := range t.writes {
		tx := &out[idx[kp[len(t.reads)+i]]-1].txn
		tx.WriteSet = append(tx.WriteSet, t.writes[i])
	}
	for i := range t.ops {
		tx := &out[idx[kp[len(t.reads)+len(t.writes)+i]]-1].txn
		tx.OpSet = append(tx.OpSet, t.ops[i])
	}
	c.partsBuf = out
	return out
}

// commit implements steps 1–6 of §5.2.2, extended to distributed
// transactions per §5.2.4: the validation phase runs in every partition the
// transaction touched, and the transaction commits only if every partition
// validates it.
func (c *Coordinator) commit(ctx context.Context, t *Txn) (bool, error) {
	if t.opErr != nil {
		return false, t.opErr
	}
	start := time.Now()
	// Read-only fast path: a transaction whose every read was served and
	// confirmed at one snapshot timestamp, and that buffered no writes or
	// ops, is already serialized at that snapshot — each touched replica
	// vouched, under the per-key read-timestamp guard, that nothing can
	// commit at or below it on the keys read. Commit is local: zero
	// validation rounds, zero messages.
	if t.roViable && len(t.writes) == 0 && len(t.ops) == 0 && !t.snapTS.IsZero() {
		t.committedAt = t.snapTS
		t.id = c.gen.NextID()
		t.roCommitted = true
		if c.lastTS.Less(t.snapTS) {
			c.lastTS = t.snapTS
		}
		c.obs.Inc(obs.TxnCommitRO)
		c.obs.Observe(obs.HistCommit, time.Since(start))
		return true, nil
	}
	// Step 1: pick the processing core, the proposed timestamp, and the
	// transaction id. The timestamp comes from the client's loosely
	// synchronized clock — no coordination.
	coreID := uint32(c.rng.Intn(c.cfg.Topo.Cores))
	ts := c.gen.NextTimestamp()
	tid := c.gen.NextID()
	t.committedAt = ts
	t.id = tid
	t.coreID = coreID
	t.unresolved = t.unresolved[:0]

	parts := c.split(t, tid)
	if len(parts) == 0 {
		return true, nil // empty transaction commits trivially; no lifecycle
	}

	// Steps 2–5 in each touched partition. A single-partition transaction —
	// the common case under uniform key hashing — runs inline on the
	// caller's goroutine with the coordinator's reusable timers: no goroutine
	// spawn, no channel round trip. Multi-partition transactions fan out one
	// goroutine per partition, rejoining through the persistent done channel.
	if cap(c.resultsBuf) < len(parts) {
		c.resultsBuf = make([]partResult, len(parts))
	}
	results := c.resultsBuf[:len(parts)]
	if len(parts) == 1 {
		ok, slow, err := c.validatePhase(ctx, parts[0].p, &parts[0].txn, ts, coreID, &c.pt)
		results[0] = partResult{commit: ok, slow: slow, err: err}
	} else {
		for i := range parts {
			go func(i int) {
				var pt phaseTimers
				ok, slow, err := c.validatePhase(ctx, parts[i].p, &parts[i].txn, ts, coreID, &pt)
				results[i] = partResult{commit: ok, slow: slow, err: err}
				c.done <- i
			}(i)
		}
		for range parts {
			<-c.done
		}
	}

	// The transaction commits fast only if every partition decided on the
	// fast path; one slow partition makes it a slow-path commit. An abort's
	// reason is taken from how the aborting partition decided: a fast-path
	// supermajority of VALIDATED-ABORT is a validation conflict, a slow-path
	// decision is an accept-abort.
	committed, anySlow, abortSlow, redirected := true, false, false, false
	for _, r := range results {
		if r.err != nil {
			if errors.Is(r.err, ErrWrongShard) {
				// A known abort on a wrong-shard redirect (see
				// validatePhase), not an unknown outcome: record it and keep
				// joining, so the abort broadcast below still reaches every
				// partition and finalizes any straggler VALIDATED-OK
				// records.
				committed = false
				redirected = true
				anySlow = anySlow || r.slow
				continue
			}
			if errors.Is(r.err, ErrTimeout) {
				c.obs.Inc(obs.TxnAbortTimeout)
				// Outcome unknown: remember which (partition, core) groups
				// the protocol ran in, so Resolve can finish the job.
				for i := range parts {
					t.unresolved = append(t.unresolved, parts[i].p)
				}
			}
			return false, r.err
		}
		anySlow = anySlow || r.slow
		if !r.commit {
			committed = false
			abortSlow = abortSlow || r.slow
		}
	}

	// Step 3/6: asynchronously broadcast the final outcome. The paper
	// piggybacks this on the client's next message; sending immediately on
	// a non-blocking transport is equivalent.
	st := message.StatusCommitted
	if !committed {
		st = message.StatusAborted
	}
	outcome := message.Message{Type: message.TypeCommit, TID: tid, Status: st, CoreID: coreID}
	for i := range parts {
		// One batch per partition endpoint: the whole replica group's
		// commit notifications leave in one syscall on the real wire (each
		// destination still gets its own freshly allocated copy — the
		// transport stamps Src on send, so messages must not be shared).
		// The fan-in above already happened, so c.pt's scratch is free even
		// for multi-partition commits.
		c.pt.outs = broadcast(c.commitEps[parts[i].p], c.group(parts[i].p, coreID), &outcome, c.pt.outs)
	}

	if committed && c.lastTS.Less(ts) {
		c.lastTS = ts // snapshot round-down floor (see snapshotBegin)
	}
	if redirected {
		// Surface the redirect: Run refreshes its routing and retries the
		// whole transaction against the new map instead of treating this as
		// a conflict. TxnWrongShard was counted where the redirect landed.
		c.obs.Observe(obs.HistAbort, time.Since(start))
		return false, ErrWrongShard
	}
	switch {
	case committed && !anySlow:
		c.obs.Inc(obs.TxnCommitFast)
		c.obs.Observe(obs.HistCommit, time.Since(start))
	case committed:
		c.obs.Inc(obs.TxnCommitSlow)
		c.obs.Observe(obs.HistCommit, time.Since(start))
	case abortSlow:
		c.obs.Inc(obs.TxnAbortAcceptAbort)
		c.obs.Observe(obs.HistAbort, time.Since(start))
	default:
		c.obs.Inc(obs.TxnAbortValidation)
		c.obs.Observe(obs.HistAbort, time.Since(start))
	}
	return committed, nil
}

// validatePhase runs the commit protocol for one partition and returns the
// partition's decision: true to commit, false to abort. slow reports whether
// the decision went through the slow path (an accept round) rather than the
// fast-path supermajority. pt supplies the phase's timers, reused across
// retry attempts (and, for inline single-partition commits, across
// transactions).
func (c *Coordinator) validatePhase(ctx context.Context, p int, txn *message.Txn, ts timestamp.Timestamp, coreID uint32, pt *phaseTimers) (commit, slow bool, err error) {
	ep, in := c.commitEps[p], c.commitIns[p]
	in.Drain()
	group := c.group(p, coreID)
	n := c.cfg.Topo.Replicas
	fast := c.cfg.Topo.FastQuorum()
	majority := c.cfg.Topo.Majority()

	// Backoff jitter draws come from a phase-local stream, never the shared
	// c.rng: multi-partition commits run one validatePhase per goroutine.
	jrng := transport.SeedSplitMix64(uint64(c.cfg.Seed) ^ txn.ID.Seq<<8 ^ uint64(p))

	req := message.Message{Type: message.TypeValidate, Txn: *txn, TID: txn.ID, TS: ts, CoreID: coreID, MapVersion: c.mapVersion()}

	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			c.obs.Inc(obs.TxnRetry)
			sleep(ctx, backoffDelay(c.cfg.BackoffBase, c.cfg.BackoffMax, attempt-1, &jrng), &pt.grace)
		}
		budget, berr := c.waitBudget(ctx)
		if berr != nil {
			return false, false, berr
		}
		pt.outs = broadcast(ep, group, &req, pt.outs)

		// Step 3: collect validate-replies, watching for the fast-path
		// supermajority of matching responses. Once a majority is in, give
		// the stragglers only a short grace window before taking the slow
		// path — a crashed replica must not cost a full timeout per txn.
		// Repliers are tracked in a bitmask, not a map: replica counts are
		// topologically tiny (quorums of 3 or 5), and a map here costs an
		// allocation per commit attempt on the hot path.
		var seen uint64 // bit i set <=> replica i replied
		replied := 0
		countOK, countAbort, countWrong := 0, 0, 0
		deadline := pt.deadline.arm(budget)
		var grace <-chan time.Time
	collect:
		for {
			// Fast path: replies already queued (all replicas typically ran
			// while this goroutine was parked on the first one) skip the
			// select machinery; grace and deadline only matter once the
			// queue is empty.
			var m *message.Message
			select {
			case m = <-in.C:
			default:
				select {
				case <-grace:
					break collect
				case m = <-in.C:
				case <-ctx.Done():
					break collect
				case <-deadline:
					break collect
				}
			}
			if m.Type != message.TypeValidateReply || m.TID != txn.ID {
				continue
			}
			if m.ReplicaID >= 64 || seen&(1<<m.ReplicaID) != 0 {
				continue
			}
			seen |= 1 << m.ReplicaID
			replied++
			if m.WrongShard {
				// The replica refused: under its current map it no longer
				// owns part of this piece — a shard split sealed the range
				// between the client's routing decision and this validate.
				// Keep collecting; how many replicas validated OK before the
				// seal decides (below) whether a plain abort is safe.
				countWrong++
			} else {
				switch m.Status {
				case message.StatusValidatedOK:
					countOK++
				case message.StatusValidatedAbort:
					countAbort++
				case message.StatusCommitted:
					// Another coordinator already finished it.
					return true, false, nil
				case message.StatusAborted:
					return false, false, nil
				}
				if !c.cfg.DisableFastPath {
					if countOK >= fast {
						return true, false, nil
					}
					if countAbort >= fast {
						return false, false, nil
					}
				}
			}
			if replied == n {
				break collect
			}
			if replied >= majority && grace == nil {
				g := c.cfg.Timeout / 10
				if g <= 0 {
					g = time.Millisecond
				}
				grace = pt.grace.arm(g)
			}
		}

		// Wrong-shard redirects: the client routed this piece with a stale
		// map. Aborting outright is only safe if no merge or recovery rule
		// could later decide commit — the epoch merge re-validates anything
		// with ceil(f/2)+1 VALIDATED-OK records (rule 4), and replicas that
		// never replied must be assumed to have validated OK before the
		// seal. Below that worst-case threshold the redirect is a provably
		// safe abort; at or above it, learn the authoritative outcome
		// through coordinator recovery instead of guessing.
		if countWrong > 0 {
			c.obs.Inc(obs.TxnWrongShard)
			c.noteRedirect()
			if countOK+(n-replied) >= (c.cfg.Topo.F()+1)/2+1 {
				commit, err = c.RecoverTxn(p, txn.ID, coreID, 0)
				if err == nil && !commit {
					// Known abort via recovery: surface the redirect so the
					// caller re-routes instead of conflict-backing-off.
					err = ErrWrongShard
				}
				return commit, true, err
			}
			return false, false, ErrWrongShard
		}

		// Step 4: the fast path condition was not met. With a majority of
		// replies, take the slow path; otherwise resend the validate.
		if replied >= majority {
			proposal := message.StatusAcceptAbort
			if countOK >= majority {
				proposal = message.StatusAcceptCommit
			}
			commit, err = c.slowPath(ctx, p, txn, ts, coreID, proposal, 0, pt, &jrng)
			return commit, true, err
		}
	}
	return false, false, ErrTimeout
}

// slowPath runs steps 4–6 of the commit protocol: an accept round that gets
// a majority of replicas to durably record the proposed outcome. If the
// proposal is superseded by a higher view (a backup coordinator took over),
// the coordinator escalates to the recovery procedure to learn the final
// outcome.
func (c *Coordinator) slowPath(ctx context.Context, p int, txn *message.Txn, ts timestamp.Timestamp, coreID uint32, proposal message.Status, view uint64, pt *phaseTimers, jrng *transport.SplitMix64) (bool, error) {
	ep, in := c.commitEps[p], c.commitIns[p]
	group := c.group(p, coreID)
	majority := c.cfg.Topo.Majority()

	req := message.Message{
		Type: message.TypeAccept, TID: txn.ID, Status: proposal, View: view,
		Txn: *txn, TS: ts, CoreID: coreID,
	}

	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			c.obs.Inc(obs.TxnRetry)
			sleep(ctx, backoffDelay(c.cfg.BackoffBase, c.cfg.BackoffMax, attempt-1, jrng), &pt.grace)
		}
		budget, berr := c.waitBudget(ctx)
		if berr != nil {
			return false, berr
		}
		pt.outs = broadcast(ep, group, &req, pt.outs)
		var acked uint64 // bitmask, as in validatePhase
		acks := 0
		superseded := uint64(0)
		deadline := pt.deadline.arm(budget)
	collect:
		for {
			var m *message.Message
			select {
			case m = <-in.C:
			default:
				select {
				case m = <-in.C:
				case <-ctx.Done():
					break collect
				case <-deadline:
					break collect
				}
			}
			if m.Type != message.TypeAcceptReply || m.TID != txn.ID {
				continue
			}
			if !m.OK {
				if m.View > superseded {
					superseded = m.View
				}
				continue
			}
			if m.View != view {
				continue
			}
			if m.ReplicaID >= 64 || acked&(1<<m.ReplicaID) != 0 {
				continue
			}
			acked |= 1 << m.ReplicaID
			acks++
			if acks >= majority {
				return proposal == message.StatusAcceptCommit, nil
			}
		}
		if superseded > view {
			// A backup coordinator holds a higher view: join the recovery
			// protocol at a view above it to learn the decided outcome.
			return c.RecoverTxn(p, txn.ID, coreID, superseded)
		}
	}
	return false, ErrTimeout
}
