// Package coordinator implements the Meerkat transaction coordinator
// (§5.1–§5.2): the execution phase (reads from any replica, buffered
// writes), the combined validation/replication phase with its supermajority
// fast path and Paxos-like slow path, and the write-phase commit broadcast.
//
// It also implements the consensus-based coordinator recovery procedure of
// §5.3.2, used both by backup coordinators on replicas (via the sweeper) and
// by an original coordinator whose slow-path proposal was superseded.
package coordinator

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"meerkat/internal/clock"
	"meerkat/internal/message"
	"meerkat/internal/obs"
	"meerkat/internal/timestamp"
	"meerkat/internal/topo"
	"meerkat/internal/transport"
)

// Errors returned by the commit protocol.
var (
	// ErrTimeout means the coordinator could not assemble the quorums it
	// needed within its retry budget; the transaction's outcome is
	// unknown (a backup coordinator will eventually finish it).
	ErrTimeout = errors.New("coordinator: timed out, outcome unknown")
)

// Config parameterizes a coordinator.
type Config struct {
	Topo     topo.Topology
	ClientID uint64
	Net      transport.Network
	Clock    clock.Clock

	// Timeout bounds each wait for a quorum of replies before the request
	// is resent. Defaults to 100ms.
	Timeout time.Duration
	// Retries is how many times each request is resent before giving up.
	// Defaults to 10.
	Retries int
	// DisableFastPath forces every transaction through the slow path, an
	// ablation knob quantifying the fast path's round-trip saving.
	DisableFastPath bool
	// Seed seeds core/replica load-balancing choices. Zero means seed
	// from ClientID.
	Seed int64
	// Obs, when non-nil, receives the coordinator's transaction lifecycle
	// events (fast/slow-path commits, aborts by reason, retries) and commit
	// latency. The coordinator is single-goroutine, so one private shard
	// per coordinator keeps recording coordination-free.
	Obs *obs.Shard
}

func (c *Config) fill() {
	if c.Timeout == 0 {
		c.Timeout = 100 * time.Millisecond
	}
	if c.Retries == 0 {
		c.Retries = 10
	}
	if c.Seed == 0 {
		c.Seed = int64(c.ClientID + 1)
	}
}

// Coordinator drives transactions for one client. It is not safe for
// concurrent use: each closed-loop client owns one.
type Coordinator struct {
	cfg Config
	gen *timestamp.Generator
	rng *rand.Rand

	// readEp serves the execution phase; commitEps[p] serves the commit
	// protocol for partition p. Separate endpoints give each concurrent
	// per-partition phase its own reply queue, so no demultiplexer is
	// needed.
	readEp    transport.Endpoint
	readInbox *transport.Inbox
	commitEps []transport.Endpoint
	commitIns []*transport.Inbox

	readSeq uint64
	obs     *obs.Shard // nil-safe lifecycle recorder (see Config.Obs)
}

// New binds a coordinator's endpoints on cfg.Net.
func New(cfg Config) (*Coordinator, error) {
	cfg.fill()
	if !cfg.Topo.Validate() {
		return nil, fmt.Errorf("coordinator: invalid topology %+v", cfg.Topo)
	}
	c := &Coordinator{
		cfg: cfg,
		gen: timestamp.NewGenerator(cfg.ClientID, cfg.Clock.Now),
		rng: rand.New(rand.NewSource(cfg.Seed)),
		obs: cfg.Obs,
	}
	base := cfg.Topo.ClientAddr(cfg.ClientID)
	c.readInbox = transport.NewInbox(256)
	ep, err := cfg.Net.Listen(base, c.readInbox.Handle)
	if err != nil {
		return nil, err
	}
	c.readEp = ep
	for p := 0; p < cfg.Topo.Partitions; p++ {
		in := transport.NewInbox(256)
		ep, err := cfg.Net.Listen(message.Addr{Node: base.Node, Core: uint32(1 + p)}, in.Handle)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.commitEps = append(c.commitEps, ep)
		c.commitIns = append(c.commitIns, in)
	}
	return c, nil
}

// Close releases the coordinator's endpoints.
func (c *Coordinator) Close() {
	if c.readEp != nil {
		c.readEp.Close()
	}
	for _, ep := range c.commitEps {
		ep.Close()
	}
}

// drain discards any stale buffered replies (from retries of prior
// operations) so they cannot be mistaken for replies to the next one.
func drain(in *transport.Inbox) {
	for {
		select {
		case <-in.C:
		default:
			return
		}
	}
}

// Read performs one execution-phase read: it asks a uniformly chosen replica
// core of the key's partition for the latest committed version. A missing
// key returns ok=false with version Zero — still a meaningful read that the
// validation phase will check.
func (c *Coordinator) Read(key string) (value []byte, version timestamp.Timestamp, ok bool, err error) {
	p := c.cfg.Topo.PartitionForKey(key)
	c.readSeq++
	seq := c.readSeq
	drain(c.readInbox)

	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			c.obs.Inc(obs.ReadRetry)
		}
		// Load-balance GETs across replicas and cores, as in §6.2.
		r := c.rng.Intn(c.cfg.Topo.Replicas)
		core := uint32(c.rng.Intn(c.cfg.Topo.Cores))
		dst := c.cfg.Topo.ReplicaAddr(p, r, core)
		err = c.readEp.Send(dst, &message.Message{Type: message.TypeRead, Key: key, Seq: seq})
		if err != nil {
			return nil, timestamp.Timestamp{}, false, err
		}
		deadline := time.NewTimer(c.cfg.Timeout)
		for {
			select {
			case m := <-c.readInbox.C:
				if m.Type != message.TypeReadReply || m.Seq != seq {
					continue // stale reply
				}
				deadline.Stop()
				return m.Value, m.TS, m.OK, nil
			case <-deadline.C:
			}
			break
		}
	}
	return nil, timestamp.Timestamp{}, false, ErrTimeout
}

// Txn accumulates a transaction's read and write sets on the client, with
// read-your-writes and read-caching semantics.
type Txn struct {
	c        *Coordinator
	reads    []message.ReadSetEntry
	readVals [][]byte
	writes   []message.WriteSetEntry
	writeIdx map[string]int
	readIdx  map[string]int

	// committedAt is the serialization timestamp, set once Commit decides.
	committedAt timestamp.Timestamp
	id          timestamp.TxnID
}

// Begin starts a new transaction. The read/write index maps are created
// lazily on first use, so read-only or write-only transactions skip the
// allocations entirely (lookups on a nil map are legal and fast).
func (c *Coordinator) Begin() *Txn {
	return &Txn{c: c}
}

// Read returns the value of key as of this transaction's snapshot: a
// buffered write if the transaction wrote the key, the previously read value
// if it already read it, or a fresh versioned read from a replica.
func (t *Txn) Read(key string) ([]byte, error) {
	if i, ok := t.writeIdx[key]; ok {
		return t.writes[i].Value, nil
	}
	if i, ok := t.readIdx[key]; ok {
		return t.readVals[i], nil
	}
	val, ver, _, err := t.c.Read(key)
	if err != nil {
		return nil, err
	}
	if t.readIdx == nil {
		t.readIdx = make(map[string]int)
	}
	t.readIdx[key] = len(t.reads)
	t.reads = append(t.reads, message.ReadSetEntry{Key: key, WTS: ver})
	t.readVals = append(t.readVals, val)
	return val, nil
}

// Write buffers a write; nothing reaches any replica until Commit.
func (t *Txn) Write(key string, value []byte) {
	if i, ok := t.writeIdx[key]; ok {
		t.writes[i].Value = value
		return
	}
	if t.writeIdx == nil {
		t.writeIdx = make(map[string]int)
	}
	t.writeIdx[key] = len(t.writes)
	t.writes = append(t.writes, message.WriteSetEntry{Key: key, Value: value})
}

// ReadSetSize and WriteSetSize expose set sizes for tests and stats.
func (t *Txn) ReadSetSize() int  { return len(t.reads) }
func (t *Txn) WriteSetSize() int { return len(t.writes) }

// Commit runs the validation and write phases. It returns true if the
// transaction committed, false if it aborted due to conflicts, and an error
// if the outcome could not be determined within the retry budget.
func (t *Txn) Commit() (bool, error) {
	return t.c.commit(t)
}

// Timestamp returns the transaction's serialization timestamp (valid after
// Commit returned true): committed transactions are one-copy serializable in
// timestamp order.
func (t *Txn) Timestamp() timestamp.Timestamp { return t.committedAt }

// ID returns the transaction id assigned at commit time.
func (t *Txn) ID() timestamp.TxnID { return t.id }

// ReadSet and WriteSet expose the transaction's sets for verification
// tooling (the serializability checker); callers must not mutate them.
func (t *Txn) ReadSet() []message.ReadSetEntry   { return t.reads }
func (t *Txn) WriteSet() []message.WriteSetEntry { return t.writes }

// partTxn is the slice of a transaction owned by one partition.
type partTxn struct {
	p   int
	txn message.Txn
}

// split carves the transaction into per-partition pieces.
func (c *Coordinator) split(t *Txn, tid timestamp.TxnID) []partTxn {
	if c.cfg.Topo.Partitions == 1 {
		return []partTxn{{p: 0, txn: message.Txn{ID: tid, ReadSet: t.reads, WriteSet: t.writes}}}
	}
	m := make(map[int]*message.Txn)
	get := func(p int) *message.Txn {
		tx := m[p]
		if tx == nil {
			tx = &message.Txn{ID: tid}
			m[p] = tx
		}
		return tx
	}
	for _, r := range t.reads {
		p := c.cfg.Topo.PartitionForKey(r.Key)
		tx := get(p)
		tx.ReadSet = append(tx.ReadSet, r)
	}
	for _, w := range t.writes {
		p := c.cfg.Topo.PartitionForKey(w.Key)
		tx := get(p)
		tx.WriteSet = append(tx.WriteSet, w)
	}
	out := make([]partTxn, 0, len(m))
	for p, tx := range m {
		out = append(out, partTxn{p: p, txn: *tx})
	}
	return out
}

// commit implements steps 1–6 of §5.2.2, extended to distributed
// transactions per §5.2.4: the validation phase runs in every partition the
// transaction touched, and the transaction commits only if every partition
// validates it.
func (c *Coordinator) commit(t *Txn) (bool, error) {
	start := time.Now()
	// Step 1: pick the processing core, the proposed timestamp, and the
	// transaction id. The timestamp comes from the client's loosely
	// synchronized clock — no coordination.
	coreID := uint32(c.rng.Intn(c.cfg.Topo.Cores))
	ts := c.gen.NextTimestamp()
	tid := c.gen.NextID()
	t.committedAt = ts
	t.id = tid

	parts := c.split(t, tid)
	if len(parts) == 0 {
		return true, nil // empty transaction commits trivially; no lifecycle
	}

	// Steps 2–5 in each touched partition, in parallel.
	type partResult struct {
		commit bool
		slow   bool
		err    error
	}
	results := make([]partResult, len(parts))
	done := make(chan int, len(parts))
	for i := range parts {
		go func(i int) {
			ok, slow, err := c.validatePhase(parts[i].p, &parts[i].txn, ts, coreID)
			results[i] = partResult{commit: ok, slow: slow, err: err}
			done <- i
		}(i)
	}
	for range parts {
		<-done
	}

	// The transaction commits fast only if every partition decided on the
	// fast path; one slow partition makes it a slow-path commit. An abort's
	// reason is taken from how the aborting partition decided: a fast-path
	// supermajority of VALIDATED-ABORT is a validation conflict, a slow-path
	// decision is an accept-abort.
	committed, anySlow, abortSlow := true, false, false
	for _, r := range results {
		if r.err != nil {
			if errors.Is(r.err, ErrTimeout) {
				c.obs.Inc(obs.TxnAbortTimeout)
			}
			return false, r.err
		}
		anySlow = anySlow || r.slow
		if !r.commit {
			committed = false
			abortSlow = abortSlow || r.slow
		}
	}

	// Step 3/6: asynchronously broadcast the final outcome. The paper
	// piggybacks this on the client's next message; sending immediately on
	// a non-blocking transport is equivalent.
	st := message.StatusCommitted
	if !committed {
		st = message.StatusAborted
	}
	for i := range parts {
		ep := c.commitEps[parts[i].p]
		for _, dst := range c.cfg.Topo.GroupAddrs(parts[i].p, coreID) {
			// One message per destination: the transport stamps Src on
			// send, so messages must not be shared across Sends.
			ep.Send(dst, &message.Message{Type: message.TypeCommit, TID: tid, Status: st, CoreID: coreID})
		}
	}

	switch {
	case committed && !anySlow:
		c.obs.Inc(obs.TxnCommitFast)
		c.obs.Observe(obs.HistCommit, time.Since(start))
	case committed:
		c.obs.Inc(obs.TxnCommitSlow)
		c.obs.Observe(obs.HistCommit, time.Since(start))
	case abortSlow:
		c.obs.Inc(obs.TxnAbortAcceptAbort)
		c.obs.Observe(obs.HistAbort, time.Since(start))
	default:
		c.obs.Inc(obs.TxnAbortValidation)
		c.obs.Observe(obs.HistAbort, time.Since(start))
	}
	return committed, nil
}

// validatePhase runs the commit protocol for one partition and returns the
// partition's decision: true to commit, false to abort. slow reports whether
// the decision went through the slow path (an accept round) rather than the
// fast-path supermajority.
func (c *Coordinator) validatePhase(p int, txn *message.Txn, ts timestamp.Timestamp, coreID uint32) (commit, slow bool, err error) {
	ep, in := c.commitEps[p], c.commitIns[p]
	drain(in)
	group := c.cfg.Topo.GroupAddrs(p, coreID)
	n := c.cfg.Topo.Replicas
	fast := c.cfg.Topo.FastQuorum()
	majority := c.cfg.Topo.Majority()

	req := message.Message{Type: message.TypeValidate, Txn: *txn, TID: txn.ID, TS: ts, CoreID: coreID}

	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			c.obs.Inc(obs.TxnRetry)
		}
		for _, dst := range group {
			m := req // copy per destination: Send stamps Src
			ep.Send(dst, &m)
		}

		// Step 3: collect validate-replies, watching for the fast-path
		// supermajority of matching responses. Once a majority is in, give
		// the stragglers only a short grace window before taking the slow
		// path — a crashed replica must not cost a full timeout per txn.
		// Repliers are tracked in a bitmask, not a map: replica counts are
		// topologically tiny (quorums of 3 or 5), and a map here costs an
		// allocation per commit attempt on the hot path.
		var seen uint64 // bit i set <=> replica i replied
		replied := 0
		countOK, countAbort := 0, 0
		deadline := time.NewTimer(c.cfg.Timeout)
		var grace <-chan time.Time
	collect:
		for {
			select {
			case <-grace:
				break collect
			case m := <-in.C:
				if m.Type != message.TypeValidateReply || m.TID != txn.ID {
					continue
				}
				if m.ReplicaID >= 64 || seen&(1<<m.ReplicaID) != 0 {
					continue
				}
				seen |= 1 << m.ReplicaID
				replied++
				switch m.Status {
				case message.StatusValidatedOK:
					countOK++
				case message.StatusValidatedAbort:
					countAbort++
				case message.StatusCommitted:
					// Another coordinator already finished it.
					deadline.Stop()
					return true, false, nil
				case message.StatusAborted:
					deadline.Stop()
					return false, false, nil
				}
				if !c.cfg.DisableFastPath {
					if countOK >= fast {
						deadline.Stop()
						return true, false, nil
					}
					if countAbort >= fast {
						deadline.Stop()
						return false, false, nil
					}
				}
				if replied == n {
					deadline.Stop()
					break collect
				}
				if replied >= majority && grace == nil {
					g := c.cfg.Timeout / 10
					if g <= 0 {
						g = time.Millisecond
					}
					gt := time.NewTimer(g)
					defer gt.Stop()
					grace = gt.C
				}
			case <-deadline.C:
				break collect
			}
		}

		// Step 4: the fast path condition was not met. With a majority of
		// replies, take the slow path; otherwise resend the validate.
		if replied >= majority {
			proposal := message.StatusAcceptAbort
			if countOK >= majority {
				proposal = message.StatusAcceptCommit
			}
			commit, err = c.slowPath(p, txn, ts, coreID, proposal, 0)
			return commit, true, err
		}
	}
	return false, false, ErrTimeout
}

// slowPath runs steps 4–6 of the commit protocol: an accept round that gets
// a majority of replicas to durably record the proposed outcome. If the
// proposal is superseded by a higher view (a backup coordinator took over),
// the coordinator escalates to the recovery procedure to learn the final
// outcome.
func (c *Coordinator) slowPath(p int, txn *message.Txn, ts timestamp.Timestamp, coreID uint32, proposal message.Status, view uint64) (bool, error) {
	ep, in := c.commitEps[p], c.commitIns[p]
	group := c.cfg.Topo.GroupAddrs(p, coreID)
	majority := c.cfg.Topo.Majority()

	req := message.Message{
		Type: message.TypeAccept, TID: txn.ID, Status: proposal, View: view,
		Txn: *txn, TS: ts, CoreID: coreID,
	}

	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			c.obs.Inc(obs.TxnRetry)
		}
		for _, dst := range group {
			m := req // copy per destination: Send stamps Src
			ep.Send(dst, &m)
		}
		var acked uint64 // bitmask, as in validatePhase
		acks := 0
		superseded := uint64(0)
		deadline := time.NewTimer(c.cfg.Timeout)
	collect:
		for {
			select {
			case m := <-in.C:
				if m.Type != message.TypeAcceptReply || m.TID != txn.ID {
					continue
				}
				if !m.OK {
					if m.View > superseded {
						superseded = m.View
					}
					continue
				}
				if m.View != view {
					continue
				}
				if m.ReplicaID >= 64 || acked&(1<<m.ReplicaID) != 0 {
					continue
				}
				acked |= 1 << m.ReplicaID
				acks++
				if acks >= majority {
					deadline.Stop()
					return proposal == message.StatusAcceptCommit, nil
				}
			case <-deadline.C:
				break collect
			}
		}
		if superseded > view {
			// A backup coordinator holds a higher view: join the recovery
			// protocol at a view above it to learn the decided outcome.
			return c.RecoverTxn(p, txn.ID, coreID, superseded)
		}
	}
	return false, ErrTimeout
}
