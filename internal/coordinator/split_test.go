package coordinator

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"meerkat/internal/clock"
	"meerkat/internal/message"
	"meerkat/internal/timestamp"
	"meerkat/internal/topo"
	"meerkat/internal/transport"
)

func newSplitCoordinator(t *testing.T, partitions int) *Coordinator {
	t.Helper()
	net := transport.NewInproc(transport.InprocConfig{})
	t.Cleanup(func() { net.Close() })
	c, err := New(Config{
		Topo:     topo.Topology{Partitions: partitions, Replicas: 3, Cores: 2},
		ClientID: 1,
		Net:      net,
		Clock:    clock.NewManual(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestSplitSinglePartitionPassthrough(t *testing.T) {
	c := newSplitCoordinator(t, 1)
	txn := c.Begin()
	txn.reads = []message.ReadSetEntry{{Key: "a"}, {Key: "b"}}
	txn.writes = []message.WriteSetEntry{{Key: "c"}}
	parts := c.split(txn, timestamp.TxnID{Seq: 1, ClientID: 1})
	if len(parts) != 1 || parts[0].p != 0 {
		t.Fatalf("parts %+v", parts)
	}
	if len(parts[0].txn.ReadSet) != 2 || len(parts[0].txn.WriteSet) != 1 {
		t.Fatalf("sets %+v", parts[0].txn)
	}
}

func TestSplitPartitionsCoverAndAgree(t *testing.T) {
	// Property: splitting preserves every read/write exactly once, routes
	// each key to its owning partition, and stamps every piece with the
	// transaction id.
	c := newSplitCoordinator(t, 4)
	tp := c.cfg.Topo
	f := func(seed int64, nReads, nWrites uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		txn := c.Begin()
		for i := 0; i < int(nReads%24); i++ {
			txn.reads = append(txn.reads, message.ReadSetEntry{Key: fmt.Sprintf("rk-%d", rng.Intn(1000))})
		}
		for i := 0; i < int(nWrites%24); i++ {
			txn.writes = append(txn.writes, message.WriteSetEntry{Key: fmt.Sprintf("wk-%d", rng.Intn(1000))})
		}
		tid := timestamp.TxnID{Seq: uint64(seed), ClientID: 1}
		parts := c.split(txn, tid)

		reads, writes := 0, 0
		for _, pt := range parts {
			if pt.txn.ID != tid {
				return false
			}
			for _, r := range pt.txn.ReadSet {
				if tp.PartitionForKey(r.Key) != pt.p {
					return false
				}
				reads++
			}
			for _, w := range pt.txn.WriteSet {
				if tp.PartitionForKey(w.Key) != pt.p {
					return false
				}
				writes++
			}
		}
		return reads == len(txn.reads) && writes == len(txn.writes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitAscendingPartitionOrder(t *testing.T) {
	// Property: pieces come out in strictly ascending partition order, so
	// the commit fan-out's send order is deterministic. Also pins order
	// within a piece: reads and writes keep their insertion order.
	c := newSplitCoordinator(t, 4)
	f := func(seed int64, nReads, nWrites uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		txn := c.Begin()
		for i := 0; i < int(nReads%24); i++ {
			txn.reads = append(txn.reads, message.ReadSetEntry{Key: fmt.Sprintf("rk-%d", rng.Intn(1000))})
		}
		for i := 0; i < int(nWrites%24); i++ {
			txn.writes = append(txn.writes, message.WriteSetEntry{Key: fmt.Sprintf("wk-%d", rng.Intn(1000))})
		}
		parts := c.split(txn, timestamp.TxnID{Seq: uint64(seed), ClientID: 1})
		for i := 1; i < len(parts); i++ {
			if parts[i-1].p >= parts[i].p {
				return false
			}
		}
		// Within each piece, reads must appear in read-set order.
		for _, pt := range parts {
			j := 0
			for _, r := range txn.reads {
				if c.cfg.Topo.PartitionForKey(r.Key) != pt.p {
					continue
				}
				if j >= len(pt.txn.ReadSet) || pt.txn.ReadSet[j].Key != r.Key {
					return false
				}
				j++
			}
			if j != len(pt.txn.ReadSet) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitEmptyTxn(t *testing.T) {
	c := newSplitCoordinator(t, 4)
	parts := c.split(c.Begin(), timestamp.TxnID{Seq: 1, ClientID: 1})
	if len(parts) != 0 {
		t.Fatalf("empty txn split into %d parts", len(parts))
	}
}
