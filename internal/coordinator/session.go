package coordinator

import (
	"fmt"

	"meerkat/internal/message"
	"meerkat/internal/topo"
	"meerkat/internal/transport"
)

// Worker-demux bit layout. A session multiplexes several logical clients
// ("workers") over one set of endpoints, so every reply must carry enough to
// route it back to the worker whose transaction it answers. Two existing
// fields already round-trip through the replicas untouched:
//
//   - transaction ids: replies to validate/accept/commit/coord-change carry
//     the TxnID, whose ClientID is the issuing worker's id. Worker i runs as
//     client (base | i<<workerIDShift), so the index is recoverable from the
//     id's high bits without widening any message.
//   - read sequence numbers: read and multi-read replies echo Seq. Worker i
//     seeds its readSeq at i<<readSeqShift, leaving 2^48 sequence numbers per
//     worker — centuries of reads — before streams could collide.
const (
	workerIDShift = 32 // worker index lives in ClientID bits [32, 48)
	readSeqShift  = 48 // worker index lives in read Seq bits [48, 64)

	// MaxWindow bounds a session's pipeline width: worker indices must fit
	// the bit fields above (and 2^16 in-flight transactions per socket is
	// far past any syscall-amortization gain).
	MaxWindow = 1 << 16
)

// Session multiplexes up to `window` concurrently outstanding transactions
// over ONE set of client sockets. A plain Coordinator is stop-and-wait: one
// transaction in flight per endpoint, so on the real-UDP transport the wire
// idles between round trips and every message costs its own syscalls. A
// Session binds the same endpoints a single coordinator would (one read
// endpoint plus one commit endpoint per partition) and hands them to
// `window` workers — each a full Coordinator driven by its own goroutine —
// demultiplexing replies by the worker index carried in transaction ids and
// read sequence numbers. Combined with the transport's batched sends, the
// pipelined workers fill sendmmsg/recvmmsg rings instead of moving one
// datagram per syscall.
//
// Each worker is single-goroutine exactly like a plain Coordinator; the
// Session itself has no locks on any hot path (the routing handlers read
// immutable state).
type Session struct {
	cfg     Config
	readEp  transport.Endpoint
	commit  []transport.Endpoint
	workers []*Coordinator
}

// NewSession binds one endpoint set on cfg.Net and builds window pipelined
// workers over it. cfg.ClientID must leave the worker-index bits clear (ids
// below 1<<32, which every id the public API hands out satisfies). Worker i
// operates as client id cfg.ClientID | i<<32, with derived seeds; cfg.Obs,
// when set, is shared by all workers (obs.Shard methods are atomic).
func NewSession(cfg Config, window int) (*Session, error) {
	cfg.fill()
	if !cfg.Topo.Validate() {
		return nil, fmt.Errorf("coordinator: invalid topology %+v", cfg.Topo)
	}
	if window < 1 {
		window = 1
	}
	if window > MaxWindow {
		return nil, fmt.Errorf("coordinator: session window %d exceeds %d", window, MaxWindow)
	}
	if cfg.ClientID >= 1<<workerIDShift {
		return nil, fmt.Errorf("coordinator: session client id %d overflows the worker-demux bits", cfg.ClientID)
	}

	s := &Session{cfg: cfg}
	depth := inboxDepth(cfg.Topo)
	// Shared broadcast-address table: workers never mutate it, so one copy
	// serves the whole pipeline.
	var groups [][]message.Addr
	for i := 0; i < window; i++ {
		wcfg := cfg
		wcfg.ClientID = cfg.ClientID | uint64(i)<<workerIDShift
		wcfg.Seed = cfg.Seed + int64(i)*0x9e3779b9
		w := newCore(wcfg)
		if groups == nil {
			groups = w.groups
		} else {
			w.groups = groups
		}
		w.shared = true
		w.readSeq = uint64(i) << readSeqShift
		w.readInbox = transport.NewInbox(depth)
		for p := 0; p < cfg.Topo.Partitions; p++ {
			w.commitIns = append(w.commitIns, transport.NewInbox(depth))
		}
		s.workers = append(s.workers, w)
	}

	base := cfg.Topo.ClientAddr(cfg.ClientID)
	ep, err := cfg.Net.Listen(base, s.routeRead)
	if err != nil {
		return nil, err
	}
	s.readEp = ep
	for p := 0; p < cfg.Topo.Partitions; p++ {
		p := p
		ep, err := cfg.Net.Listen(message.Addr{Node: base.Node, Core: uint32(1 + p)},
			func(m *message.Message) { s.routeCommit(p, m) })
		if err != nil {
			s.Close()
			return nil, err
		}
		s.commit = append(s.commit, ep)
	}
	for _, w := range s.workers {
		w.readEp = s.readEp
		w.commitEps = s.commit
	}
	return s, nil
}

// routeRead demultiplexes execution-phase replies (which echo the request's
// Seq) onto the issuing worker's read inbox.
func (s *Session) routeRead(m *message.Message) {
	if i := int(m.Seq >> readSeqShift); i < len(s.workers) {
		s.workers[i].readInbox.Handle(m)
	}
}

// routeCommit demultiplexes partition p's commit-protocol replies. Multi-read
// replies ride the commit endpoints and carry Seq; everything else in the
// commit protocol carries the transaction id, whose ClientID holds the
// worker index.
func (s *Session) routeCommit(p int, m *message.Message) {
	var i int
	if m.Type == message.TypeMultiReadReply {
		i = int(m.Seq >> readSeqShift)
	} else {
		i = int(m.TID.ClientID >> workerIDShift)
	}
	if i < len(s.workers) {
		s.workers[i].commitIns[p].Handle(m)
	}
}

// Window returns the session's pipeline width.
func (s *Session) Window() int { return len(s.workers) }

// Worker returns the i'th pipelined coordinator. Each worker is a full
// Coordinator — Begin/Commit/Run/ReadMany all work — but is single-goroutine
// like any other: drive each worker from its own goroutine.
func (s *Session) Worker(i int) *Coordinator { return s.workers[i] }

// Topology returns the topology the session was built for.
func (s *Session) Topology() topo.Topology { return s.cfg.Topo }

// Close releases the session's endpoints. Workers must be idle.
func (s *Session) Close() {
	if s.readEp != nil {
		s.readEp.Close()
	}
	for _, ep := range s.commit {
		ep.Close()
	}
}
