//go:build race

package message

// raceEnabled reports whether the race detector is on. Race instrumentation
// defeats sync.Pool fast paths and adds bookkeeping allocations, so the
// allocation-count gates are meaningless under -race and skip themselves.
const raceEnabled = true
