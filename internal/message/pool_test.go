package message

import (
	"reflect"
	"testing"

	"meerkat/internal/timestamp"
)

// smallMessage is a typical hot-path message: a validate request with a
// two-key read set and a one-key write set.
func smallMessage() *Message {
	return &Message{
		Type: TypeValidate,
		Txn: Txn{
			ID: timestamp.TxnID{Seq: 7, ClientID: 3},
			ReadSet: []ReadSetEntry{
				{Key: "user_1", WTS: timestamp.Timestamp{Time: 10, ClientID: 1}},
				{Key: "user_2", WTS: timestamp.Timestamp{Time: 11, ClientID: 2}},
			},
			WriteSet: []WriteSetEntry{{Key: "user_1", Value: []byte("balance=42")}},
		},
		TID:    timestamp.TxnID{Seq: 7, ClientID: 3},
		TS:     timestamp.Timestamp{Time: 99, ClientID: 3},
		CoreID: 2,
	}
}

func TestEncodeIntoMatchesEncode(t *testing.T) {
	for _, m := range []*Message{smallMessage(), sampleMessage(), {Type: TypeCommit}} {
		e := AcquireEncoder()
		got := e.EncodeInto(m)
		want := Encode(nil, m)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("EncodeInto != Encode for %v", m.Type)
		}
		// A second encode replaces, not appends.
		if got2 := e.EncodeInto(m); len(got2) != len(want) {
			t.Errorf("second EncodeInto len = %d, want %d", len(got2), len(want))
		}
		e.Release()
	}
}

func TestDecodeIntoRoundTrip(t *testing.T) {
	m := AcquireMessage()
	defer ReleaseMessage(m)
	// Decode a large message, then a small one, into the same Message: the
	// second decode must fully overwrite the first (no residue), even though
	// it reuses the larger capacity.
	for _, src := range []*Message{sampleMessage(), smallMessage(), {Type: TypeCommit}} {
		buf := Encode(nil, src)
		if err := DecodeInto(m, buf); err != nil {
			t.Fatalf("DecodeInto(%v): %v", src.Type, err)
		}
		// Compare via a fresh Decode, which the round-trip tests anchor to
		// the source message; DeepEqual on values ignores spare capacity.
		want, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m, want) {
			t.Fatalf("reused decode mismatch for %v:\ngot:  %+v\nwant: %+v", src.Type, m, want)
		}
	}
}

func TestMessageReset(t *testing.T) {
	m := AcquireMessage()
	buf := Encode(nil, sampleMessage())
	if err := DecodeInto(m, buf); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.Type != TypeInvalid || m.Key != "" || m.OK || len(m.Txn.ReadSet) != 0 ||
		len(m.Records) != 0 || len(m.Entries) != 0 || len(m.State) != 0 || len(m.Value) != 0 ||
		len(m.Keys) != 0 || len(m.Reads) != 0 {
		t.Fatalf("Reset left state behind: %+v", m)
	}
	ReleaseMessage(m)
}

// TestPooledEncodeZeroAllocs is the allocation regression gate for the send
// path: encoding a small message through a pooled Encoder must not allocate.
func TestPooledEncodeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; gate runs without -race")
	}
	m := smallMessage()
	// Prime the pool with a sized buffer.
	e := AcquireEncoder()
	e.EncodeInto(m)
	e.Release()
	allocs := testing.AllocsPerRun(200, func() {
		enc := AcquireEncoder()
		enc.EncodeInto(m)
		enc.Release()
	})
	if allocs != 0 {
		t.Fatalf("pooled encode allocated %v objects/op, want 0", allocs)
	}
}

// TestPooledMultiReadZeroAllocs gates the batched execution phase's codec
// cost: encoding a multi-read request and a multi-read reply through pooled
// Encoders, and decoding the reply into a recycled Message (the coordinator's
// steady state — reply values reuse the previous decode's capacity), must not
// allocate. Request decode is exempt: key strings are freshly allocated by
// design, since the replica's vstore lookup retains them.
func TestPooledMultiReadZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; gate runs without -race")
	}
	req := &Message{Type: TypeMultiRead, Seq: 9, Keys: []string{"user_1", "user_2", "user_3"}}
	reply := &Message{Type: TypeMultiReadReply, Seq: 9, ReplicaID: 2, Reads: []ReadResult{
		{Value: []byte("balance=42"), WTS: timestamp.Timestamp{Time: 10, ClientID: 1}, OK: true},
		{Value: []byte("balance=43"), WTS: timestamp.Timestamp{Time: 11, ClientID: 1}, OK: true},
		{OK: false},
	}}
	replyBuf := Encode(nil, reply)
	// Prime the pools with sized buffers and a decoded message.
	e := AcquireEncoder()
	e.EncodeInto(req)
	e.Release()
	dst := AcquireMessage()
	if err := DecodeInto(dst, replyBuf); err != nil {
		t.Fatal(err)
	}
	ReleaseMessage(dst)
	allocs := testing.AllocsPerRun(200, func() {
		enc := AcquireEncoder()
		enc.EncodeInto(req)
		enc.EncodeInto(reply)
		enc.Release()
		m := AcquireMessage()
		if err := DecodeInto(m, replyBuf); err != nil {
			t.Fatal(err)
		}
		ReleaseMessage(m)
	})
	if allocs != 0 {
		t.Fatalf("pooled multi-read codec allocated %v objects/op, want 0", allocs)
	}
}

// BenchmarkEncodeDecode measures the encode→decode round trip — the
// serialization cost of one UDP message each way. The baseline sub-benchmark
// is the pre-pooling behavior (fresh buffer, fresh Message per op); pooled
// uses the reusable Encoder and DecodeInto with a recycled Message.
func BenchmarkEncodeDecode(b *testing.B) {
	src := sampleMessage()
	b.Run("baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf := Encode(nil, src)
			if _, err := Decode(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		enc := AcquireEncoder()
		defer enc.Release()
		dst := AcquireMessage()
		defer ReleaseMessage(dst)
		for i := 0; i < b.N; i++ {
			buf := enc.EncodeInto(src)
			if err := DecodeInto(dst, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}
