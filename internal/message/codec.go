package message

import (
	"encoding/binary"
	"errors"
	"fmt"

	"meerkat/internal/timestamp"
)

// The binary wire format is a flat little-endian encoding. Every field of
// Message is encoded unconditionally; slices and strings carry a uvarint
// length prefix. The format is only consumed by this package, so there is no
// versioning beyond the leading type byte.

// ErrTruncated is returned by Decode when the buffer ends mid-message.
var ErrTruncated = errors.New("message: truncated buffer")

type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}
func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) bytes(b []byte) {
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) ts(t timestamp.Timestamp) {
	e.i64(t.Time)
	e.u64(t.ClientID)
}
func (e *encoder) tid(id timestamp.TxnID) {
	e.u64(id.Seq)
	e.u64(id.ClientID)
}
func (e *encoder) txn(t *Txn) {
	e.tid(t.ID)
	e.uvarint(uint64(len(t.ReadSet)))
	for i := range t.ReadSet {
		e.str(t.ReadSet[i].Key)
		e.ts(t.ReadSet[i].WTS)
		e.u64(t.ReadSet[i].VHash)
	}
	e.uvarint(uint64(len(t.WriteSet)))
	for i := range t.WriteSet {
		e.str(t.WriteSet[i].Key)
		e.bytes(t.WriteSet[i].Value)
	}
	e.uvarint(uint64(len(t.OpSet)))
	for i := range t.OpSet {
		e.str(t.OpSet[i].Key)
		e.u8(uint8(t.OpSet[i].Kind))
		e.i64(t.OpSet[i].Delta)
		e.bytes(t.OpSet[i].Arg)
	}
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i64() int64 { return int64(d.u64()) }

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// length reads a uvarint length prefix and bounds-checks it against the
// remaining buffer so a corrupt prefix cannot force a huge allocation.
func (d *decoder) length() int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail()
		return 0
	}
	return int(n)
}

func (d *decoder) str() string {
	n := d.length()
	if d.err != nil {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// bytes decodes a length-prefixed byte slice into dst, reusing dst's
// capacity when it suffices. An empty field decodes as nil, so round trips
// preserve nil-ness.
func (d *decoder) bytes(dst []byte) []byte {
	n := d.length()
	if d.err != nil || n == 0 {
		return nil
	}
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]byte, n)
	}
	copy(dst, d.buf[d.off:d.off+n])
	d.off += n
	return dst
}

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) ts() timestamp.Timestamp {
	t := d.i64()
	c := d.u64()
	return timestamp.Timestamp{Time: t, ClientID: c}
}

func (d *decoder) tid() timestamp.TxnID {
	s := d.u64()
	c := d.u64()
	return timestamp.TxnID{Seq: s, ClientID: c}
}

// grow resizes s to n elements, reusing its backing array when the capacity
// suffices. n == 0 yields nil so decoded empty slices stay nil, matching the
// encoder's treatment of empty fields.
func grow[T any](s []T, n int) []T {
	if n == 0 {
		return nil
	}
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// txn decodes a transaction into t, reusing t's read/write-set capacity.
func (d *decoder) txn(t *Txn) {
	t.ID = d.tid()
	n := d.length()
	if d.err != nil {
		n = 0
	}
	t.ReadSet = grow(t.ReadSet, n)
	for i := 0; i < n && d.err == nil; i++ {
		t.ReadSet[i].Key = d.str()
		t.ReadSet[i].WTS = d.ts()
		t.ReadSet[i].VHash = d.u64()
	}
	n = d.length()
	if d.err != nil {
		n = 0
	}
	t.WriteSet = grow(t.WriteSet, n)
	for i := 0; i < n && d.err == nil; i++ {
		t.WriteSet[i].Key = d.str()
		t.WriteSet[i].Value = d.bytes(t.WriteSet[i].Value)
	}
	n = d.length()
	if d.err != nil {
		n = 0
	}
	t.OpSet = grow(t.OpSet, n)
	for i := 0; i < n && d.err == nil; i++ {
		t.OpSet[i].Key = d.str()
		t.OpSet[i].Kind = OpKind(d.u8())
		t.OpSet[i].Delta = d.i64()
		t.OpSet[i].Arg = d.bytes(t.OpSet[i].Arg)
	}
}

// Encode appends the wire encoding of m to buf and returns the extended
// slice. Pass nil to allocate a fresh buffer.
func Encode(buf []byte, m *Message) []byte {
	e := encoder{buf: buf}
	e.u8(uint8(m.Type))
	e.u32(m.Src.Node)
	e.u32(m.Src.Core)
	e.txn(&m.Txn)
	e.tid(m.TID)
	e.ts(m.TS)
	e.u8(uint8(m.Status))
	e.u64(m.View)
	e.u32(m.CoreID)
	e.str(m.Key)
	e.bytes(m.Value)
	e.bool(m.OK)
	e.u64(m.Epoch)
	e.uvarint(uint64(len(m.Records)))
	for i := range m.Records {
		r := &m.Records[i]
		e.txn(&r.Txn)
		e.ts(r.TS)
		e.u8(uint8(r.Status))
		e.u64(r.View)
		e.u64(r.AcceptView)
		e.u32(r.CoreID)
	}
	e.u64(m.Seq)
	e.uvarint(uint64(len(m.Entries)))
	for i := range m.Entries {
		le := &m.Entries[i]
		e.u64(le.Seq)
		e.tid(le.TID)
		e.ts(le.TS)
		e.uvarint(uint64(len(le.WriteSet)))
		for j := range le.WriteSet {
			e.str(le.WriteSet[j].Key)
			e.bytes(le.WriteSet[j].Value)
		}
	}
	e.uvarint(uint64(len(m.State)))
	for i := range m.State {
		ks := &m.State[i]
		e.str(ks.Key)
		e.bytes(ks.Value)
		e.ts(ks.WTS)
		e.ts(ks.RTS)
	}
	e.u32(m.ReplicaID)
	e.uvarint(uint64(len(m.Keys)))
	for i := range m.Keys {
		e.str(m.Keys[i])
	}
	e.uvarint(uint64(len(m.Reads)))
	for i := range m.Reads {
		r := &m.Reads[i]
		e.bytes(r.Value)
		e.ts(r.WTS)
		e.bool(r.OK)
		e.u8(uint8(r.Op))
	}
	e.ts(m.Watermark)
	e.u64(m.MapVersion)
	e.bool(m.WrongShard)
	return e.buf
}

// Decode parses one message from buf. Trailing bytes are an error, so framing
// bugs surface immediately rather than as silent field corruption.
func Decode(buf []byte) (*Message, error) {
	m := &Message{}
	if err := DecodeInto(m, buf); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeInto parses one message from buf into m, overwriting every field and
// reusing m's slice capacity where it suffices — a Message recycled through
// the pool (or reused across a receive loop) decodes without reallocating
// its sets. On error m's contents are unspecified. Trailing bytes are an
// error, as in Decode.
func DecodeInto(m *Message, buf []byte) error {
	d := decoder{buf: buf}
	m.Type = Type(d.u8())
	m.Src.Node = d.u32()
	m.Src.Core = d.u32()
	d.txn(&m.Txn)
	m.TID = d.tid()
	m.TS = d.ts()
	m.Status = Status(d.u8())
	m.View = d.u64()
	m.CoreID = d.u32()
	m.Key = d.str()
	m.Value = d.bytes(m.Value)
	m.OK = d.bool()
	m.Epoch = d.u64()
	n := d.length()
	if d.err != nil {
		n = 0
	}
	m.Records = grow(m.Records, n)
	for i := 0; i < n && d.err == nil; i++ {
		r := &m.Records[i]
		d.txn(&r.Txn)
		r.TS = d.ts()
		r.Status = Status(d.u8())
		r.View = d.u64()
		r.AcceptView = d.u64()
		r.CoreID = d.u32()
	}
	m.Seq = d.u64()
	n = d.length()
	if d.err != nil {
		n = 0
	}
	m.Entries = grow(m.Entries, n)
	for i := 0; i < n && d.err == nil; i++ {
		le := &m.Entries[i]
		le.Seq = d.u64()
		le.TID = d.tid()
		le.TS = d.ts()
		wn := d.length()
		if d.err != nil {
			wn = 0
		}
		le.WriteSet = grow(le.WriteSet, wn)
		for j := 0; j < wn && d.err == nil; j++ {
			le.WriteSet[j].Key = d.str()
			le.WriteSet[j].Value = d.bytes(le.WriteSet[j].Value)
		}
	}
	n = d.length()
	if d.err != nil {
		n = 0
	}
	m.State = grow(m.State, n)
	for i := 0; i < n && d.err == nil; i++ {
		ks := &m.State[i]
		ks.Key = d.str()
		ks.Value = d.bytes(ks.Value)
		ks.WTS = d.ts()
		ks.RTS = d.ts()
	}
	m.ReplicaID = d.u32()
	n = d.length()
	if d.err != nil {
		n = 0
	}
	m.Keys = grow(m.Keys, n)
	for i := 0; i < n && d.err == nil; i++ {
		m.Keys[i] = d.str()
	}
	n = d.length()
	if d.err != nil {
		n = 0
	}
	m.Reads = grow(m.Reads, n)
	for i := 0; i < n && d.err == nil; i++ {
		r := &m.Reads[i]
		r.Value = d.bytes(r.Value)
		r.WTS = d.ts()
		r.OK = d.bool()
		r.Op = OpKind(d.u8())
	}
	m.Watermark = d.ts()
	m.MapVersion = d.u64()
	m.WrongShard = d.bool()
	if d.err != nil {
		return d.err
	}
	if d.off != len(buf) {
		return fmt.Errorf("message: %d trailing bytes", len(buf)-d.off)
	}
	return nil
}
