package message

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"meerkat/internal/timestamp"
)

// randomMessage builds a message with fuzzer-chosen field sizes, exercising
// every slice-bearing field of the wire format.
func randomMessage(rng *rand.Rand) *Message {
	rstr := func() string {
		b := make([]byte, rng.Intn(12))
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return string(b)
	}
	rbytes := func() []byte {
		if rng.Intn(3) == 0 {
			return nil
		}
		b := make([]byte, 1+rng.Intn(16))
		rng.Read(b)
		return b
	}
	rts := func() timestamp.Timestamp {
		return timestamp.Timestamp{Time: rng.Int63n(1 << 30), ClientID: uint64(rng.Intn(64))}
	}
	rtxn := func() Txn {
		t := Txn{ID: timestamp.TxnID{Seq: rng.Uint64() % 1000, ClientID: uint64(rng.Intn(16))}}
		for i := rng.Intn(4); i > 0; i-- {
			t.ReadSet = append(t.ReadSet, ReadSetEntry{Key: rstr(), WTS: rts()})
		}
		for i := rng.Intn(4); i > 0; i-- {
			t.WriteSet = append(t.WriteSet, WriteSetEntry{Key: rstr(), Value: rbytes()})
		}
		for i := rng.Intn(4); i > 0; i-- {
			t.OpSet = append(t.OpSet, OpSetEntry{
				Key:   rstr(),
				Kind:  OpKind(1 + rng.Intn(int(OpMin))),
				Delta: rng.Int63n(1<<40) - (1 << 39),
				Arg:   rbytes(),
			})
		}
		return t
	}
	m := &Message{
		Type:   Type(rng.Intn(int(TypeWALSnapshot) + 1)),
		Txn:    rtxn(),
		TID:    timestamp.TxnID{Seq: rng.Uint64() % 1000, ClientID: 5},
		TS:     rts(),
		Status: Status(rng.Intn(int(StatusAborted) + 1)),
		View:   rng.Uint64() % 100,
		CoreID: uint32(rng.Intn(8)),
		Key:    rstr(),
		Value:  rbytes(),
		OK:     rng.Intn(2) == 0,
		Epoch:  rng.Uint64() % 100,
		Seq:    rng.Uint64() % 100,
	}
	for i := rng.Intn(3); i > 0; i-- {
		m.Records = append(m.Records, TRecordEntry{
			Txn: rtxn(), TS: rts(), Status: StatusCommitted,
			View: rng.Uint64() % 10, AcceptView: rng.Uint64() % 10, CoreID: uint32(rng.Intn(8)),
		})
	}
	for i := rng.Intn(3); i > 0; i-- {
		le := LogEntry{Seq: rng.Uint64() % 100, TID: timestamp.TxnID{Seq: 1}, TS: rts()}
		for j := rng.Intn(3); j > 0; j-- {
			le.WriteSet = append(le.WriteSet, WriteSetEntry{Key: rstr(), Value: rbytes()})
		}
		m.Entries = append(m.Entries, le)
	}
	for i := rng.Intn(3); i > 0; i-- {
		m.State = append(m.State, KeyState{Key: rstr(), Value: rbytes(), WTS: rts(), RTS: rts()})
	}
	for i := rng.Intn(4); i > 0; i-- {
		m.Keys = append(m.Keys, rstr())
	}
	for i := rng.Intn(4); i > 0; i-- {
		m.Reads = append(m.Reads, ReadResult{
			Value: rbytes(), WTS: rts(), OK: rng.Intn(2) == 0,
			Op: OpKind(rng.Intn(int(OpMin) + 1)),
		})
	}
	if rng.Intn(2) == 0 {
		m.Watermark = rts()
	}
	return m
}

// TestDecodeTruncatedPrefixes asserts that decoding ANY strict prefix of a
// valid encoding fails with an ErrTruncated-class error — never a panic,
// never a silent success — across a corpus of random messages.
func TestDecodeTruncatedPrefixes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		buf := Encode(nil, randomMessage(rng))
		for n := 0; n < len(buf); n++ {
			_, err := Decode(buf[:n])
			if err == nil {
				t.Fatalf("msg %d: decode of %d/%d-byte prefix succeeded", i, n, len(buf))
			}
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("msg %d: prefix %d/%d: err = %v, want ErrTruncated", i, n, len(buf), err)
			}
		}
	}
}

// TestDecodeCorruptedBytes flips each byte of a corpus of encodings and
// asserts Decode never panics; if it succeeds (the flip landed in a value
// byte, or produced a non-canonical varint), the decoded message must still
// round-trip at the value level.
func TestDecodeCorruptedBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		buf := Encode(nil, randomMessage(rng))
		for off := 0; off < len(buf); off++ {
			corrupt := append([]byte(nil), buf...)
			corrupt[off] ^= 0xFF
			m, err := Decode(corrupt)
			if err != nil {
				continue
			}
			m2, err := Decode(Encode(nil, m))
			if err != nil {
				t.Fatalf("msg %d: byte %d: re-decode of decoded corrupt message failed: %v", i, off, err)
			}
			if !reflect.DeepEqual(m, m2) {
				t.Fatalf("msg %d: byte %d: corrupted decode does not round-trip", i, off)
			}
		}
	}
}

// TestDecodeHugeLengthPrefix plants an absurd uvarint length where the key
// length belongs and asserts Decode fails cheaply instead of attempting the
// multi-gigabyte allocation the prefix claims.
func TestDecodeHugeLengthPrefix(t *testing.T) {
	m := &Message{Type: TypeRead, Key: "abc"}
	buf := Encode(nil, m)
	// Locate the key's length-prefixed bytes (0x03 'a' 'b' 'c') and replace
	// the 1-byte length with a 5-byte uvarint claiming ~17 GiB.
	pat := []byte{3, 'a', 'b', 'c'}
	idx := -1
	for i := 0; i+len(pat) <= len(buf); i++ {
		if string(buf[i:i+len(pat)]) == string(pat) {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("key bytes not found in encoding")
	}
	evil := append([]byte(nil), buf[:idx]...)
	evil = append(evil, 0xFF, 0xFF, 0xFF, 0xFF, 0x3F) // uvarint ≈ 1.7e10
	evil = append(evil, buf[idx+1:]...)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Decode(evil); err == nil {
			t.Fatal("decode with huge length prefix succeeded")
		}
	})
	// One Message allocation per run is expected; the claimed 17 GiB is not.
	if allocs > 4 {
		t.Fatalf("decode of corrupt length prefix allocated %v objects/op", allocs)
	}
}

// FuzzDecode is the codec-hardening fuzz target: arbitrary bytes must never
// panic the decoder, and anything that decodes must round-trip exactly.
func FuzzDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(3))
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add(Encode(nil, &Message{Type: TypeCommit}))
	f.Add(Encode(nil, sampleMessage()))
	f.Add(Encode(nil, &Message{Type: TypeMultiRead, Seq: 3, Keys: []string{"a", "b", "c"}}))
	f.Add(Encode(nil, &Message{Type: TypeMultiReadReply, Seq: 3, ReplicaID: 1, Reads: []ReadResult{
		{Value: []byte("v"), WTS: timestamp.Timestamp{Time: 2, ClientID: 1}, OK: true},
		{OK: false},
	}}))
	// Snapshot read at TS=s and its confirmed reply (Watermark == TS,
	// op-derived version flagged in Op).
	f.Add(Encode(nil, &Message{Type: TypeMultiRead, Seq: 4, Keys: []string{"a", "b"},
		TS: timestamp.Timestamp{Time: 9, ClientID: 7}}))
	f.Add(Encode(nil, &Message{Type: TypeMultiReadReply, Seq: 4, ReplicaID: 2,
		Watermark: timestamp.Timestamp{Time: 9, ClientID: 7},
		Reads: []ReadResult{
			{Value: []byte("3"), WTS: timestamp.Timestamp{Time: 5, ClientID: 1}, OK: true, Op: OpIncrement},
			{OK: false},
		}}))
	f.Add(Encode(nil, &Message{Type: TypeValidate, Txn: Txn{
		ID: timestamp.TxnID{Seq: 5, ClientID: 2},
		OpSet: []OpSetEntry{
			{Key: "ctr", Kind: OpIncrement, Delta: 1},
			{Key: "log", Kind: OpAppend, Arg: []byte("x")},
			{Key: "hi", Kind: OpMax, Delta: -3},
			{Key: "lo", Kind: OpMin, Delta: 12},
		},
	}}))
	for i := 0; i < 8; i++ {
		f.Add(Encode(nil, randomMessage(rng)))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// Byte identity can differ (non-canonical varints decode fine), but
		// the value must round-trip exactly.
		m2, err := Decode(Encode(nil, m))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatal("decoded message does not round-trip")
		}
		// DecodeInto on a recycled message must agree with Decode.
		m3 := AcquireMessage()
		defer ReleaseMessage(m3)
		if err := DecodeInto(m3, data); err != nil {
			t.Fatalf("DecodeInto disagrees with Decode: %v", err)
		}
		if !reflect.DeepEqual(m, m3) {
			t.Fatal("DecodeInto result differs from Decode")
		}
	})
}
