package message

import (
	"bytes"
	"testing"

	"meerkat/internal/timestamp"
)

func TestApplyOpSemantics(t *testing.T) {
	cases := []struct {
		name  string
		prev  []byte
		kind  OpKind
		delta int64
		arg   []byte
		want  []byte
	}{
		{"incr-missing", nil, OpIncrement, 5, nil, []byte("5")},
		{"incr-existing", []byte("37"), OpIncrement, 5, nil, []byte("42")},
		{"incr-negative", []byte("3"), OpIncrement, -10, nil, []byte("-7")},
		{"incr-non-numeric", []byte("zebra"), OpIncrement, 2, nil, []byte("2")},
		{"max-missing-negative", nil, OpMax, -5, nil, []byte("-5")},
		{"max-wins", []byte("10"), OpMax, 99, nil, []byte("99")},
		{"max-loses", []byte("100"), OpMax, 99, nil, []byte("100")},
		{"min-missing", nil, OpMin, 7, nil, []byte("7")},
		{"min-wins", []byte("10"), OpMin, 3, nil, []byte("3")},
		{"min-loses", []byte("1"), OpMin, 3, nil, []byte("1")},
		{"append-missing", nil, OpAppend, 0, []byte("ab"), []byte("ab")},
		{"append-existing", []byte("xy"), OpAppend, 0, []byte("zw"), []byte("xyzw")},
		{"none-preserves", []byte("v"), OpNone, 9, []byte("q"), []byte("v")},
	}
	for _, c := range cases {
		got := ApplyOp(nil, c.prev, c.kind, c.delta, c.arg)
		if !bytes.Equal(got, c.want) {
			t.Errorf("%s: ApplyOp = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestApplyOpAppendsToDst(t *testing.T) {
	dst := []byte("prefix-")
	got := ApplyOp(dst, []byte("1"), OpIncrement, 1, nil)
	if string(got) != "prefix-2" {
		t.Fatalf("ApplyOp did not append to dst: %q", got)
	}
}

func TestApplyOpDoesNotAliasInputs(t *testing.T) {
	prev := []byte("ab")
	arg := []byte("cd")
	got := ApplyOp(nil, prev, OpAppend, 0, arg)
	prev[0], arg[0] = 'X', 'Y'
	if string(got) != "abcd" {
		t.Fatalf("ApplyOp result aliases an input: %q", got)
	}
}

func TestIntValueRoundTrip(t *testing.T) {
	for _, n := range []int64{0, 1, -1, 42, -9223372036854775808, 9223372036854775807} {
		v := AppendIntValue(nil, n)
		got, ok := ParseIntValue(v)
		if !ok || got != n {
			t.Fatalf("round trip of %d: got %d ok=%v", n, got, ok)
		}
	}
	if _, ok := ParseIntValue(nil); ok {
		t.Fatal("ParseIntValue(nil) reported ok")
	}
	if _, ok := ParseIntValue([]byte("12x")); ok {
		t.Fatal("ParseIntValue of non-numeric value reported ok")
	}
}

func TestOpKindStrings(t *testing.T) {
	for k := OpNone; k <= OpMin; k++ {
		if k.String() == "" {
			t.Fatalf("empty name for kind %d", k)
		}
	}
	if OpNone.Valid() || !OpIncrement.Valid() || !OpMin.Valid() || OpKind(200).Valid() {
		t.Fatal("OpKind.Valid misclassifies")
	}
	if !OpIncrement.Numeric() || !OpMax.Numeric() || !OpMin.Numeric() || OpAppend.Numeric() {
		t.Fatal("OpKind.Numeric misclassifies")
	}
}

// TestPooledOpSetZeroAllocs gates the commutative-op codec cost, mirroring
// the multi-read gate: encoding an op-only validate through a pooled Encoder
// and decoding it into a recycled Message (the replica's steady state — op
// args reuse the previous decode's capacity) must not allocate. Key strings
// are exempt on the request decode for the same reason as multi-read keys —
// but an op-only validate decode is measured WITH its key allocations here,
// so the bound is the op-set length, not zero.
func TestPooledOpSetZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; gate runs without -race")
	}
	m := &Message{
		Type: TypeValidate,
		Txn: Txn{
			ID: timestamp.TxnID{Seq: 7, ClientID: 3},
			OpSet: []OpSetEntry{
				{Key: "counter_1", Kind: OpIncrement, Delta: 1},
				{Key: "feed_1", Kind: OpAppend, Arg: []byte("post:17")},
			},
		},
		TID: timestamp.TxnID{Seq: 7, ClientID: 3},
		TS:  timestamp.Timestamp{Time: 99, ClientID: 3},
	}
	buf := Encode(nil, m)
	// Prime pools.
	e := AcquireEncoder()
	e.EncodeInto(m)
	e.Release()
	dst := AcquireMessage()
	if err := DecodeInto(dst, buf); err != nil {
		t.Fatal(err)
	}
	ReleaseMessage(dst)

	allocs := testing.AllocsPerRun(200, func() {
		enc := AcquireEncoder()
		enc.EncodeInto(m)
		enc.Release()
	})
	if allocs != 0 {
		t.Fatalf("pooled op-set encode allocated %v objects/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		got := AcquireMessage()
		if err := DecodeInto(got, buf); err != nil {
			t.Fatal(err)
		}
		ReleaseMessage(got)
	})
	// Two key-string allocations per decode (retained by the store by
	// design); everything else must reuse pooled capacity.
	if allocs > 2 {
		t.Fatalf("pooled op-set decode allocated %v objects/op, want <= 2 (key strings)", allocs)
	}
}
