// Package message defines the wire messages exchanged by Meerkat and the
// three comparison systems (KuaFu++, TAPIR-like, Meerkat-PB), along with a
// compact binary codec used by the UDP transport.
//
// All systems share this message layer, mirroring the paper's prototype in
// which all four systems share one transport layer "avoiding differences due
// to different approaches to serializing and deserializing wire formats".
package message

import (
	"fmt"

	"meerkat/internal/timestamp"
)

// Type identifies a protocol message.
type Type uint8

// Message types. The first group is the Meerkat/TAPIR transaction protocol,
// the second is recovery, the third serves the primary-backup baselines
// (KuaFu++ and Meerkat-PB), and the last is the tiny PUT-only KV used to
// reproduce Figure 1.
const (
	TypeInvalid Type = iota

	// Execution phase.
	TypeRead      // coordinator -> any replica: read one key
	TypeReadReply // replica -> coordinator: value + version

	// Validation phase (Meerkat and TAPIR-like).
	TypeValidate      // coordinator -> all replicas: OCC-validate txn at ts
	TypeValidateReply // replica -> coordinator: VALIDATED-OK / VALIDATED-ABORT
	TypeAccept        // coordinator -> all replicas: slow-path proposal
	TypeAcceptReply   // replica -> coordinator
	TypeCommit        // coordinator -> all replicas: final outcome (async)

	// Recovery.
	TypeEpochChange         // recovery coordinator -> replicas
	TypeEpochChangeAck      // replica -> recovery coordinator, carries trecord
	TypeEpochChangeComplete // recovery coordinator -> replicas, merged trecord
	TypeCoordChange         // backup coordinator -> replicas (prepare-like)
	TypeCoordChangeAck      // replica -> backup coordinator

	// Primary-backup baselines.
	TypePBSubmit    // client -> primary: whole txn (KuaFu++ / Meerkat-PB)
	TypePBReply     // primary -> client: outcome
	TypePBReplicate // primary -> backups: ordered log entries / core-matched txn
	TypePBAck       // backup -> primary

	// Figure 1 micro-benchmark.
	TypePut      // client -> server: blind put
	TypePutReply // server -> client

	// Local control messages (delivered through a core's own queue so all
	// trecord access stays on the owning core).
	TypeEpochChangeCompleteAck // replica core -> recovery coordinator
	TypeSweep                  // core -> itself: scan for stalled txns

	// Replica state transfer (recovery, §5.3.1). A StateRequest paginates by
	// shard in Seq and carries two optional delta bounds: TS (ship keys whose
	// WTS/RTS passed it) and — reusing the otherwise-unused View field as a
	// UnixNano wall clock — the donor-side apply-time bound (ship keys whose
	// commit the donor applied at or after it).
	TypeStateRequest // recovering replica -> live replica: one shard
	TypeStateReply   // live replica -> recovering replica

	// Batched execution phase: one round trip fetches a whole read set's
	// worth of keys from one partition (§5.2.1's "reads go to any replica",
	// amortized). Appended after the earlier types so existing type numbers
	// stay stable on the wire.
	TypeMultiRead      // coordinator -> any replica: read Keys, in order
	TypeMultiReadReply // replica -> coordinator: Reads[i] answers Keys[i]

	// Durability records (internal/wal). These never cross the network; they
	// are the payloads of CRC-framed entries in the per-core write-ahead logs
	// and snapshot files, reusing this codec so the log format gets the same
	// pooled, fuzz-hardened encode/decode as the wire.
	TypeWALRecord   // one committed transaction: Txn + TS
	TypeWALSnapshot // one page of a vstore snapshot: State + Seq (shard)
)

var typeNames = [...]string{
	TypeInvalid:             "invalid",
	TypeRead:                "read",
	TypeReadReply:           "read-reply",
	TypeValidate:            "validate",
	TypeValidateReply:       "validate-reply",
	TypeAccept:              "accept",
	TypeAcceptReply:         "accept-reply",
	TypeCommit:              "commit",
	TypeEpochChange:         "epoch-change",
	TypeEpochChangeAck:      "epoch-change-ack",
	TypeEpochChangeComplete: "epoch-change-complete",
	TypeCoordChange:         "coordinator-change",
	TypeCoordChangeAck:      "coordinator-change-ack",
	TypePBSubmit:            "pb-submit",
	TypePBReply:             "pb-reply",
	TypePBReplicate:         "pb-replicate",
	TypePBAck:               "pb-ack",
	TypePut:                 "put",
	TypePutReply:            "put-reply",

	TypeEpochChangeCompleteAck: "epoch-change-complete-ack",
	TypeSweep:                  "sweep",
	TypeStateRequest:           "state-request",
	TypeStateReply:             "state-reply",
	TypeMultiRead:              "multi-read",
	TypeMultiReadReply:         "multi-read-reply",
	TypeWALRecord:              "wal-record",
	TypeWALSnapshot:            "wal-snapshot",
}

// String returns the message type's protocol name.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Status is the state of a transaction as recorded in the trecord and
// carried in protocol messages.
type Status uint8

// Transaction statuses, in the vocabulary of the paper's Figure 2 and §5.
const (
	StatusNone           Status = iota
	StatusValidatedOK           // replica validated the txn successfully
	StatusValidatedAbort        // replica's OCC checks failed
	StatusAcceptCommit          // slow-path proposal to commit, accepted
	StatusAcceptAbort           // slow-path proposal to abort, accepted
	StatusCommitted             // final: committed
	StatusAborted               // final: aborted
)

var statusNames = [...]string{
	StatusNone:           "NONE",
	StatusValidatedOK:    "VALIDATED-OK",
	StatusValidatedAbort: "VALIDATED-ABORT",
	StatusAcceptCommit:   "ACCEPT-COMMIT",
	StatusAcceptAbort:    "ACCEPT-ABORT",
	StatusCommitted:      "COMMITTED",
	StatusAborted:        "ABORTED",
}

// String returns the status name as used in the paper.
func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Final reports whether s is a terminal outcome (COMMITTED or ABORTED).
func (s Status) Final() bool { return s == StatusCommitted || s == StatusAborted }

// ReadSetEntry records one read the transaction performed during execution:
// the key, the version (write timestamp) that was read, and a hash of the
// value observed.
//
// The value hash exists because of commutative ops: an op committing below
// the latest version re-materializes the values above it, so — unlike under
// the plain Thomas write rule — the observable value at a given WTS can
// change after it was read. Validation therefore checks both that the read
// saw the latest write timestamp AND that the value at that timestamp is
// still the value the transaction observed; the hash is computed by the
// client (HashValue over the raw bytes read), so replicas compare it against
// their own materialization without any extra wire round trip.
type ReadSetEntry struct {
	Key   string
	WTS   timestamp.Timestamp
	VHash uint64
}

// WriteSetEntry records one buffered write.
type WriteSetEntry struct {
	Key   string
	Value []byte
}

// Txn is a transaction's identity and read/write/op sets, as shipped in a
// validate request. OpSet carries the commutative server-side operations
// (see OpSetEntry): they validate without read-version checks and are folded
// into the version chain at commit-timestamp order.
type Txn struct {
	ID       timestamp.TxnID
	ReadSet  []ReadSetEntry
	WriteSet []WriteSetEntry
	OpSet    []OpSetEntry
}

// Empty reports whether the transaction carries no reads, writes, or ops —
// the replica-side test for "this validate/accept body teaches us nothing".
func (t *Txn) Empty() bool {
	return len(t.ReadSet) == 0 && len(t.WriteSet) == 0 && len(t.OpSet) == 0
}

// TRecordEntry is one transaction record, as exchanged during epoch changes.
// It mirrors the fields of the paper's Figure 2 plus the two recovery fields
// View and AcceptView (§5.3.2).
type TRecordEntry struct {
	Txn        Txn
	TS         timestamp.Timestamp
	Status     Status
	View       uint64
	AcceptView uint64
	CoreID     uint32 // trecord partition the entry belongs to
}

// ReadResult is one key's answer in a multi-read reply: the latest committed
// value and version, or OK=false (with zero WTS) for a key that has never
// been written — still a meaningful read that validation will check.
//
// Op carries the kind of the version that produced the value (OpNone for a
// plain write). Snapshot reads need it: op-derived versions re-materialize in
// place when older ops merge below them, so the read-only fast path applies a
// stricter settlement rule to them than to plain writes.
type ReadResult struct {
	Value []byte
	WTS   timestamp.Timestamp
	OK    bool
	Op    OpKind
}

// KeyState is one key's committed state as shipped during replica state
// transfer: latest version plus read timestamp.
type KeyState struct {
	Key   string
	Value []byte
	WTS   timestamp.Timestamp
	RTS   timestamp.Timestamp
}

// LogEntry is one ordered entry in the KuaFu++ shared replication log.
type LogEntry struct {
	Seq      uint64 // position assigned by the primary's atomic counter
	TID      timestamp.TxnID
	TS       timestamp.Timestamp
	WriteSet []WriteSetEntry
}

// Addr identifies a message endpoint: a node and a core (server thread) on
// that node. Core-level addressing is how the prototype reproduces the
// paper's NIC flow steering — every message for a given transaction is
// delivered to the same core's queue.
type Addr struct {
	Node uint32
	Core uint32
}

// String formats the address as "node/core".
func (a Addr) String() string { return fmt.Sprintf("%d/%d", a.Node, a.Core) }

// Message is a single protocol message. It is a flat union: each Type uses a
// subset of the fields. Flat structs keep the inproc hot path free of
// interface conversions and per-type allocations.
type Message struct {
	Type Type
	Src  Addr // reply address, filled by the transport on send

	// Transaction protocol fields.
	Txn    Txn
	TID    timestamp.TxnID
	TS     timestamp.Timestamp
	Status Status
	View   uint64
	CoreID uint32

	// Read / Put fields.
	Key   string
	Value []byte
	OK    bool

	// Recovery fields.
	Epoch   uint64
	Records []TRecordEntry

	// Primary-backup fields.
	Seq     uint64
	Entries []LogEntry

	// State transfer payload.
	State []KeyState

	// ReplicaID identifies the responding replica in replies.
	ReplicaID uint32

	// Batched execution phase. A multi-read request carries Keys; the reply
	// carries Reads, index-aligned with the request's Keys. (Encoded after
	// the fields above so the offsets of the original wire format are
	// unchanged.)
	//
	// A multi-read request with a non-zero TS is a snapshot read: the replica
	// answers every key at that timestamp (newest version at or below TS) and
	// raises each key's read timestamp to TS so no later validation can slip
	// a write underneath the snapshot.
	Keys  []string
	Reads []ReadResult

	// Watermark is attached to multi-read replies: the minimum, over the
	// requested keys, of the timestamp up to which this replica can vouch
	// that no prepared-but-undecided transaction will still commit. For a
	// snapshot read at TS=s, Watermark == s means the reply is *confirmed* —
	// every answered version is final with respect to this replica.
	Watermark timestamp.Timestamp

	// Shard routing (encoded last; the offsets of every earlier field are
	// unchanged). MapVersion on a request is the shard-map version the client
	// routed with; on a redirect reply it is the replica's own view version,
	// so the client knows whether a refresh can help yet. WrongShard set on a
	// reply means the replica no longer owns (one of) the requested keys
	// under its current shard map: the request was not executed and the
	// client must refresh its map and re-route.
	MapVersion uint64
	WrongShard bool
}

// String gives a short human-readable rendering for logs and test failures.
func (m *Message) String() string {
	switch m.Type {
	case TypeRead:
		return fmt.Sprintf("read{%q}", m.Key)
	case TypeReadReply:
		return fmt.Sprintf("read-reply{%q @%v ok=%v}", m.Key, m.TS, m.OK)
	case TypeValidate:
		return fmt.Sprintf("validate{%v @%v core=%d}", m.Txn.ID, m.TS, m.CoreID)
	case TypeValidateReply:
		return fmt.Sprintf("validate-reply{%v %v r%d}", m.TID, m.Status, m.ReplicaID)
	case TypeAccept:
		return fmt.Sprintf("accept{%v %v view=%d}", m.TID, m.Status, m.View)
	case TypeAcceptReply:
		return fmt.Sprintf("accept-reply{%v ok=%v r%d}", m.TID, m.OK, m.ReplicaID)
	case TypeCommit:
		return fmt.Sprintf("commit{%v %v}", m.TID, m.Status)
	case TypeMultiRead:
		return fmt.Sprintf("multi-read{%d keys seq=%d}", len(m.Keys), m.Seq)
	case TypeMultiReadReply:
		return fmt.Sprintf("multi-read-reply{%d reads seq=%d r%d}", len(m.Reads), m.Seq, m.ReplicaID)
	default:
		return fmt.Sprintf("%v{tid=%v}", m.Type, m.TID)
	}
}
