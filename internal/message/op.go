package message

import "strconv"

// Commutative server-side operations. Instead of shipping a read version
// plus a blind write (the RMW pattern OCC aborts under contention), a
// transaction may ship the operation itself: increment by a delta, append
// bytes, merge a maximum or minimum. Two operations of the same kind applied
// in either order produce the same value, so the store can fold them into
// the version chain at commit-timestamp order and validation never needs a
// read-version check — a hot-key counter becomes a merge, not an abort.
//
// The operand encoding is shared with clients: Increment/MaxMerge/MinMerge
// treat the stored value as a signed 64-bit integer in decimal ASCII
// (FormatInt/ParseIntValue); Append is raw bytes. ApplyOp is the single
// definition of each operation's semantics — the versioned store, WAL
// replay, and client-side materialization all call it, so every observer
// agrees on the merged value.

// HashValue returns the 64-bit FNV-1a hash of a stored value, the function
// behind ReadSetEntry.VHash. nil and empty hash identically (the codec does
// not distinguish them), so a missing key and an empty value validate the
// same way they read the same.
func HashValue(v []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range v {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// OpKind identifies a commutative operation.
type OpKind uint8

const (
	// OpNone is the zero value; it never appears in a valid op set.
	OpNone OpKind = iota
	// OpIncrement adds Delta to the value, read as a decimal int64
	// (a missing or non-numeric value counts as 0).
	OpIncrement
	// OpAppend appends Arg to the value's bytes.
	OpAppend
	// OpMax replaces the value with max(value, Delta); a missing or
	// non-numeric value is treated as unset, so Delta wins.
	OpMax
	// OpMin replaces the value with min(value, Delta), as OpMax.
	OpMin
)

var opNames = [...]string{
	OpNone:      "none",
	OpIncrement: "increment",
	OpAppend:    "append",
	OpMax:       "max",
	OpMin:       "min",
}

// String names the op kind.
func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return "op(" + strconv.Itoa(int(k)) + ")"
}

// Valid reports whether k is one of the defined operations (not OpNone).
func (k OpKind) Valid() bool { return k > OpNone && k <= OpMin }

// Numeric reports whether k operates on the decimal-int64 interpretation of
// the value (OpIncrement/OpMax/OpMin).
func (k OpKind) Numeric() bool { return k == OpIncrement || k == OpMax || k == OpMin }

// OpSetEntry is one commutative operation in a transaction's op set: the
// target key, the kind, and its operand (Delta for the numeric kinds, Arg
// for OpAppend). A transaction carries at most one op per key — the client
// folds repeats together — so a committed op set installs exactly one new
// version per key.
type OpSetEntry struct {
	Key   string
	Kind  OpKind
	Delta int64  // OpIncrement / OpMax / OpMin operand
	Arg   []byte // OpAppend operand
}

// ParseIntValue reads a stored value as the decimal int64 the numeric ops
// operate on. ok is false for a missing (nil) or non-numeric value.
func ParseIntValue(v []byte) (int64, bool) {
	if len(v) == 0 {
		return 0, false
	}
	n, err := strconv.ParseInt(string(v), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// AppendIntValue formats n in the stored-value encoding, appending to dst.
func AppendIntValue(dst []byte, n int64) []byte {
	return strconv.AppendInt(dst, n, 10)
}

// ApplyOp returns the value produced by applying one operation to prev (nil
// means the key had no value). The result is appended to dst — pass a
// scratch buffer to control allocation, or nil. It never aliases prev or
// arg. The function is total and deterministic: every input produces a
// value, so replicas applying the same ops in the same timestamp order
// converge byte-for-byte.
func ApplyOp(dst []byte, prev []byte, kind OpKind, delta int64, arg []byte) []byte {
	switch kind {
	case OpIncrement:
		base, _ := ParseIntValue(prev)
		return AppendIntValue(dst, base+delta)
	case OpMax:
		if cur, ok := ParseIntValue(prev); ok && cur > delta {
			return AppendIntValue(dst, cur)
		}
		return AppendIntValue(dst, delta)
	case OpMin:
		if cur, ok := ParseIntValue(prev); ok && cur < delta {
			return AppendIntValue(dst, cur)
		}
		return AppendIntValue(dst, delta)
	case OpAppend:
		dst = append(dst, prev...)
		return append(dst, arg...)
	}
	// OpNone (and unknown kinds) preserve the previous value, so a decoded
	// record with a foreign kind degrades to a no-op rather than corrupting.
	return append(dst, prev...)
}
