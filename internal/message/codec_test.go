package message

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"meerkat/internal/timestamp"
)

func sampleMessage() *Message {
	return &Message{
		Type: TypeValidate,
		Src:  Addr{Node: 3, Core: 7},
		Txn: Txn{
			ID: timestamp.TxnID{Seq: 42, ClientID: 9},
			ReadSet: []ReadSetEntry{
				{Key: "a", WTS: timestamp.Timestamp{Time: 3, ClientID: 1}},
				{Key: "b", WTS: timestamp.Timestamp{Time: 9, ClientID: 2}},
			},
			WriteSet: []WriteSetEntry{
				{Key: "a", Value: []byte("hello")},
			},
			OpSet: []OpSetEntry{
				{Key: "ctr", Kind: OpIncrement, Delta: -7},
				{Key: "log", Kind: OpAppend, Arg: []byte("entry")},
				{Key: "hi", Kind: OpMax, Delta: 99},
			},
		},
		TID:    timestamp.TxnID{Seq: 42, ClientID: 9},
		TS:     timestamp.Timestamp{Time: 100, ClientID: 9},
		Status: StatusValidatedOK,
		View:   2,
		CoreID: 5,
		Key:    "k",
		Value:  []byte{1, 2, 3},
		OK:     true,
		Epoch:  7,
		Records: []TRecordEntry{
			{
				Txn: Txn{
					ID:       timestamp.TxnID{Seq: 1, ClientID: 2},
					ReadSet:  []ReadSetEntry{{Key: "x", WTS: timestamp.Timestamp{Time: 1, ClientID: 1}}},
					WriteSet: []WriteSetEntry{{Key: "y", Value: []byte("v")}},
				},
				TS:         timestamp.Timestamp{Time: 50, ClientID: 2},
				Status:     StatusCommitted,
				View:       1,
				AcceptView: 1,
				CoreID:     3,
			},
		},
		Seq: 11,
		Entries: []LogEntry{
			{
				Seq: 1,
				TID: timestamp.TxnID{Seq: 2, ClientID: 3},
				TS:  timestamp.Timestamp{Time: 4, ClientID: 3},
				WriteSet: []WriteSetEntry{
					{Key: "z", Value: []byte("w")},
				},
			},
		},
		ReplicaID: 2,
		Keys:      []string{"k1", "k2", "k3"},
		Reads: []ReadResult{
			{Value: []byte("v1"), WTS: timestamp.Timestamp{Time: 8, ClientID: 1}, OK: true},
			{Value: nil, OK: false},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sampleMessage()
	buf := Encode(nil, m)
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", m, got)
	}
}

func TestEncodeDecodeEmptyMessage(t *testing.T) {
	m := &Message{Type: TypeCommit}
	buf := Encode(nil, m)
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", m, got)
	}
}

func TestEncodeAppendsToBuffer(t *testing.T) {
	prefix := []byte("prefix")
	m := &Message{Type: TypePut, Key: "k", Value: []byte("v")}
	buf := Encode(append([]byte(nil), prefix...), m)
	if !bytes.HasPrefix(buf, prefix) {
		t.Fatal("Encode did not append to provided buffer")
	}
	got, err := Decode(buf[len(prefix):])
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Key != "k" || string(got.Value) != "v" {
		t.Fatalf("decoded %+v", got)
	}
}

func TestDecodeTruncated(t *testing.T) {
	buf := Encode(nil, sampleMessage())
	for _, n := range []int{0, 1, 5, len(buf) / 2, len(buf) - 1} {
		if _, err := Decode(buf[:n]); err == nil {
			t.Errorf("Decode of %d-byte prefix succeeded, want error", n)
		}
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	buf := Encode(nil, sampleMessage())
	buf = append(buf, 0xFF)
	if _, err := Decode(buf); err == nil {
		t.Fatal("Decode with trailing bytes succeeded, want error")
	}
}

func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(300)
		buf := make([]byte, n)
		rng.Read(buf)
		// Must not panic; error or success are both fine.
		_, _ = Decode(buf)
	}
}

func TestDecodeCorruptLengthPrefix(t *testing.T) {
	// A huge uvarint length must fail cleanly, not attempt the allocation.
	m := &Message{Type: TypeRead, Key: "abc"}
	buf := Encode(nil, m)
	// Corrupt a byte in the middle and ensure no panic.
	for i := range buf {
		b := make([]byte, len(buf))
		copy(b, buf)
		b[i] ^= 0xFF
		_, _ = Decode(b)
	}
}

// quickTxn builds a Txn from fuzzer-chosen primitives.
func quickTxn(seq, cid uint64, keys []string, vals [][]byte) Txn {
	t := Txn{ID: timestamp.TxnID{Seq: seq, ClientID: cid}}
	for i, k := range keys {
		t.ReadSet = append(t.ReadSet, ReadSetEntry{Key: k, WTS: timestamp.Timestamp{Time: int64(i), ClientID: cid}})
	}
	for i, v := range vals {
		t.WriteSet = append(t.WriteSet, WriteSetEntry{Key: string(rune('a' + i%26)), Value: v})
	}
	return t
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seq, cid uint64, keys []string, vals [][]byte, key string, value []byte, ok bool, view, epoch uint64) bool {
		m := &Message{
			Type:   TypeValidate,
			Txn:    quickTxn(seq, cid, keys, vals),
			TID:    timestamp.TxnID{Seq: seq, ClientID: cid},
			TS:     timestamp.Timestamp{Time: int64(seq), ClientID: cid},
			Status: StatusValidatedOK,
			View:   view,
			Key:    key,
			Value:  value,
			OK:     ok,
			Epoch:  epoch,
		}
		// Normalize: codec decodes empty slices as nil.
		if len(m.Value) == 0 {
			m.Value = nil
		}
		for i := range m.Txn.WriteSet {
			if len(m.Txn.WriteSet[i].Value) == 0 {
				m.Txn.WriteSet[i].Value = nil
			}
		}
		buf := Encode(nil, m)
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStatusStrings(t *testing.T) {
	if StatusValidatedOK.String() != "VALIDATED-OK" {
		t.Errorf("got %q", StatusValidatedOK.String())
	}
	if StatusCommitted.String() != "COMMITTED" {
		t.Errorf("got %q", StatusCommitted.String())
	}
	if !StatusCommitted.Final() || !StatusAborted.Final() {
		t.Error("final statuses not Final()")
	}
	if StatusValidatedOK.Final() || StatusNone.Final() {
		t.Error("non-final statuses reported Final()")
	}
	if Status(200).String() == "" {
		t.Error("unknown status should still format")
	}
}

func TestTypeStrings(t *testing.T) {
	if TypeValidate.String() != "validate" {
		t.Errorf("got %q", TypeValidate.String())
	}
	if Type(200).String() == "" {
		t.Error("unknown type should still format")
	}
}

func TestMessageString(t *testing.T) {
	for ty := TypeInvalid; ty <= TypePutReply; ty++ {
		m := &Message{Type: ty}
		if m.String() == "" {
			t.Errorf("empty String() for %v", ty)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	m := sampleMessage()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], m)
	}
}

func BenchmarkDecode(b *testing.B) {
	buf := Encode(nil, sampleMessage())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStateTransferRoundTrip(t *testing.T) {
	m := &Message{
		Type: TypeStateReply,
		Seq:  42,
		OK:   true,
		State: []KeyState{
			{Key: "a", Value: []byte("v1"), WTS: timestamp.Timestamp{Time: 5, ClientID: 1}, RTS: timestamp.Timestamp{Time: 9, ClientID: 2}},
			{Key: "b", Value: nil, WTS: timestamp.Timestamp{Time: 7, ClientID: 3}},
		},
		ReplicaID: 1,
	}
	buf := Encode(nil, m)
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", m, got)
	}
}
