package message

import "sync"

// Hot-path pooling. Encoding a message for the UDP transport needs a
// transient buffer whose lifetime ends the moment the datagram is handed to
// the kernel, and the in-process transport recycles whole Message structs
// between request/reply pairs. Both cycle through sync.Pools here instead of
// the allocator, keeping the steady-state send path allocation-free. The
// ownership rules are documented in DESIGN.md ("Hot-path performance").

// maxPooledEncoderCap bounds the buffer capacity an Encoder may carry back
// into the pool, so one huge state-transfer encoding does not pin its buffer
// for the rest of the process lifetime.
const maxPooledEncoderCap = 64 << 10

// Encoder is a reusable encode buffer with acquire/release semantics. The
// zero value is usable; AcquireEncoder avoids even the Encoder allocation.
type Encoder struct {
	buf []byte
}

var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// AcquireEncoder returns a pooled Encoder. Pair with Release.
func AcquireEncoder() *Encoder { return encoderPool.Get().(*Encoder) }

// EncodeInto encodes m, replacing the encoder's previous contents, and
// returns the encoded bytes. The bytes alias the encoder's internal buffer:
// they are valid only until the next EncodeInto or Release and must not be
// retained past either.
func (e *Encoder) EncodeInto(m *Message) []byte {
	e.buf = Encode(e.buf[:0], m)
	return e.buf
}

// Bytes returns the most recently encoded contents.
func (e *Encoder) Bytes() []byte { return e.buf }

// Release returns the encoder to the pool, invalidating any bytes previously
// returned by EncodeInto. Oversized buffers are dropped rather than pooled.
func (e *Encoder) Release() {
	if cap(e.buf) > maxPooledEncoderCap {
		e.buf = nil
	}
	encoderPool.Put(e)
}

var messagePool = sync.Pool{New: func() any { return new(Message) }}

// AcquireMessage returns a pooled, zeroed Message (its sets may retain
// capacity from a previous life, but their lengths are zero). Pair with
// ReleaseMessage once no other goroutine can still hold a reference — for a
// request/reply exchange that is the receiver of the final reply, per the
// ownership rules in DESIGN.md.
func AcquireMessage() *Message { return messagePool.Get().(*Message) }

// ReleaseMessage resets m and returns it to the pool. The caller must be the
// sole owner: a message still sitting in a transport queue or inbox must not
// be released.
func ReleaseMessage(m *Message) {
	m.Reset()
	messagePool.Put(m)
}

// Reset clears m for reuse, keeping top-level slice capacity so a recycled
// message re-decodes (or is re-built) without reallocating its sets.
func (m *Message) Reset() {
	rs, ws, ops := m.Txn.ReadSet[:0], m.Txn.WriteSet[:0], m.Txn.OpSet[:0]
	recs, ents, sts := m.Records[:0], m.Entries[:0], m.State[:0]
	keys, reads := m.Keys[:0], m.Reads[:0]
	val := m.Value[:0]
	*m = Message{}
	m.Txn.ReadSet, m.Txn.WriteSet, m.Txn.OpSet = rs, ws, ops
	m.Records, m.Entries, m.State = recs, ents, sts
	m.Keys, m.Reads = keys, reads
	m.Value = val
}
