package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}

func TestSingleObservation(t *testing.T) {
	var h Histogram
	h.Record(time.Microsecond)
	if h.Count() != 1 {
		t.Fatal("count")
	}
	if h.Mean() != time.Microsecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	p := h.Percentile(0.5)
	if p < 900*time.Nanosecond || p > 1100*time.Nanosecond {
		t.Fatalf("p50 = %v, want ~1µs", p)
	}
}

func TestPercentileAccuracy(t *testing.T) {
	// Uniform latencies 1µs..1ms: bucketed percentiles must be within the
	// documented ~9% relative error.
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	var all []time.Duration
	for i := 0; i < 100000; i++ {
		d := time.Duration(1000+rng.Intn(999000)) * time.Nanosecond
		h.Record(d)
		all = append(all, d)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := float64(h.Percentile(q))
		// True quantile of the uniform distribution.
		want := 1000.0 + q*999000.0
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("P%.0f = %v, want ~%v", q*100, time.Duration(got), time.Duration(want))
		}
	}
}

func TestPercentileRoundTrip(t *testing.T) {
	// A histogram holding a single repeated value must report that value at
	// every quantile within the documented <9% relative error. The old
	// lower-bound percentile systematically understated (up to -12.5%); the
	// midpoint stays inside the bound on both sides.
	for _, ns := range []uint64{256, 300, 1000, 4096, 12345, 1e6, 7777777, 5e8} {
		var h Histogram
		d := time.Duration(ns)
		for i := 0; i < 1000; i++ {
			h.Record(d)
		}
		for _, q := range []float64{0, 0.5, 0.99, 0.999} {
			got := float64(h.Percentile(q))
			if rel := (got - float64(ns)) / float64(ns); rel < -0.09 || rel > 0.09 {
				t.Errorf("value %dns: P%g = %v (rel err %+.3f), want within 9%%",
					ns, q*100, time.Duration(got), rel)
			}
		}
	}
}

func TestBucketHelpers(t *testing.T) {
	// Exported bucket helpers must agree with Record/Percentile bucketing.
	for _, ns := range []uint64{1, 256, 1000, 65536, 1e9} {
		b := BucketIndex(ns)
		if b < 0 || b >= NumBuckets {
			t.Fatalf("BucketIndex(%d) = %d out of range", ns, b)
		}
		var h, h2 Histogram
		h.Record(time.Duration(ns))
		h2.AddBucket(b, 1)
		if h.Percentile(0.5) != h2.Percentile(0.5) {
			t.Fatalf("ns=%d: Record p50 %v != AddBucket p50 %v",
				ns, h.Percentile(0.5), h2.Percentile(0.5))
		}
		if h2.Max() != time.Duration(BucketMidNS(b)) {
			t.Fatalf("ns=%d: AddBucket max %v != mid %d", ns, h2.Max(), BucketMidNS(b))
		}
	}
	var h Histogram
	h.AddBucket(-1, 5)
	h.AddBucket(NumBuckets, 5)
	h.AddBucket(3, 0)
	if h.Count() != 0 {
		t.Fatal("out-of-range AddBucket must be ignored")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		var h Histogram
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 1000; i++ {
			h.Record(time.Duration(rng.Intn(10000000)))
		}
		prev := time.Duration(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			p := h.Percentile(q)
			if p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestExtremes(t *testing.T) {
	var h Histogram
	h.Record(1)              // below floor
	h.Record(10 * time.Hour) // above ceiling
	if h.Count() != 2 {
		t.Fatal("count")
	}
	if h.Percentile(0) > 256*2 {
		t.Fatalf("tiny observation landed at %v", h.Percentile(0))
	}
	if h.Max() != 10*time.Hour {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Record(time.Microsecond)
		b.Record(time.Millisecond)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if p := a.Percentile(0.25); p > 2*time.Microsecond {
		t.Fatalf("p25 = %v", p)
	}
	if p := a.Percentile(0.75); p < 500*time.Microsecond {
		t.Fatalf("p75 = %v", p)
	}
	if a.String() == "" {
		t.Fatal("String empty")
	}
}

func TestCounters(t *testing.T) {
	a := Counters{Committed: 80, Aborted: 20, Errors: 1, Ops: 300}
	b := Counters{Committed: 20, Aborted: 0}
	a.Merge(b)
	if a.Committed != 100 || a.Aborted != 20 || a.Errors != 1 || a.Ops != 300 {
		t.Fatalf("merged %+v", a)
	}
	if r := a.AbortRate(); r < 0.16 || r > 0.17 {
		t.Fatalf("abort rate %f", r)
	}
	var zero Counters
	if zero.AbortRate() != 0 {
		t.Fatal("zero counters abort rate")
	}
}
