// Package stats provides the measurement plumbing for the benchmark
// harness: log-bucketed latency histograms and per-client counters that
// aggregate without hot-path sharing (a shared counter in the measurement
// path would itself violate the Zero-Coordination Principle the benchmarks
// are trying to observe).
package stats

import (
	"fmt"
	"math/bits"
	"time"
)

// histBuckets spans 256ns..~1.1s in 64 log2-spaced buckets at 8 buckets per
// octave, which keeps percentile error under ~9%.
const (
	histMinShift = 8 // 2^8 ns = 256ns floor
	histBuckets  = 184
	histSub      = 8 // sub-buckets per octave
)

// Histogram is a fixed-size log-bucketed latency histogram. It is not safe
// for concurrent use; each client records into its own and histograms are
// merged after the run.
type Histogram struct {
	counts [histBuckets]uint64
	total  uint64
	sum    uint64 // ns, for mean
	max    uint64
}

func bucketOf(ns uint64) int {
	if ns < 1<<histMinShift {
		return 0
	}
	oct := uint(63 - bits.LeadingZeros64(ns)) // floor(log2(ns))
	sub := (ns >> (oct - 3)) & (histSub - 1)
	b := int(oct-histMinShift)*histSub + int(sub)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketLow returns the lower bound (ns) of bucket b.
func bucketLow(b int) uint64 {
	oct := uint(b/histSub) + histMinShift
	sub := uint64(b % histSub)
	return 1<<oct + sub<<(oct-3)
}

// bucketMid returns the midpoint (ns) of bucket b. Percentiles report the
// midpoint rather than the lower bound: the lower bound systematically
// understates tail latency by up to a full bucket width (~12.5%), while the
// midpoint is off by at most half a width (within the documented <9% bound).
func bucketMid(b int) uint64 {
	low := bucketLow(b)
	var width uint64
	if b+1 < histBuckets {
		width = bucketLow(b+1) - low
	} else {
		width = low >> 3 // overflow bucket: one sub-bucket step
	}
	return low + width/2
}

// NumBuckets is the histogram's fixed bucket count, exported so other
// packages (internal/obs) can shard raw bucket counters with identical
// bucketing and merge them back into a Histogram at scrape time.
const NumBuckets = histBuckets

// BucketIndex returns the bucket a latency of ns nanoseconds lands in.
func BucketIndex(ns uint64) int { return bucketOf(ns) }

// BucketMidNS returns the representative (midpoint) latency of bucket b in
// nanoseconds.
func BucketMidNS(b int) uint64 { return bucketMid(b) }

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	h.counts[bucketOf(ns)]++
	h.total++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// AddBucket adds n observations at bucket b, attributing each the bucket's
// midpoint latency. It reconstructs a Histogram from externally sharded raw
// bucket counts (internal/obs); mean and max become bucket-approximate.
func (h *Histogram) AddBucket(b int, n uint64) {
	if n == 0 || b < 0 || b >= histBuckets {
		return
	}
	mid := bucketMid(b)
	h.counts[b] += n
	h.total += n
	h.sum += mid * n
	if mid > h.max {
		h.max = mid
	}
}

// Merge adds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the mean latency.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / h.total)
}

// Max returns the largest observation (bucket-exact).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Percentile returns the latency at quantile q in [0,1], e.g. 0.99.
func (h *Histogram) Percentile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	want := uint64(q * float64(h.total))
	if want >= h.total {
		want = h.total - 1
	}
	var seen uint64
	for b, c := range h.counts {
		seen += c
		if seen > want {
			return time.Duration(bucketMid(b))
		}
	}
	return time.Duration(h.max)
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.total, h.Mean(), h.Percentile(0.50), h.Percentile(0.99), h.Max())
}

// Counters are the per-client outcome tallies, merged after a run.
type Counters struct {
	Committed uint64
	Aborted   uint64
	Errors    uint64
	Ops       uint64 // reads+writes issued by committed+aborted txns
}

// Merge adds other into c.
func (c *Counters) Merge(other Counters) {
	c.Committed += other.Committed
	c.Aborted += other.Aborted
	c.Errors += other.Errors
	c.Ops += other.Ops
}

// AbortRate returns aborted/(committed+aborted), the paper's Figure 7
// metric.
func (c *Counters) AbortRate() float64 {
	den := c.Committed + c.Aborted
	if den == 0 {
		return 0
	}
	return float64(c.Aborted) / float64(den)
}
