package timestamp

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroOrdersFirst(t *testing.T) {
	ts := Timestamp{Time: 1, ClientID: 0}
	if !Zero.Less(ts) {
		t.Fatalf("Zero should order before %v", ts)
	}
	if !Zero.IsZero() {
		t.Fatal("Zero.IsZero() = false")
	}
	if ts.IsZero() {
		t.Fatalf("%v.IsZero() = true", ts)
	}
}

func TestLessLexicographic(t *testing.T) {
	cases := []struct {
		a, b Timestamp
		want bool
	}{
		{Timestamp{1, 1}, Timestamp{2, 1}, true},
		{Timestamp{2, 1}, Timestamp{1, 1}, false},
		{Timestamp{1, 1}, Timestamp{1, 2}, true},
		{Timestamp{1, 2}, Timestamp{1, 1}, false},
		{Timestamp{1, 1}, Timestamp{1, 1}, false},
		{Timestamp{5, 9}, Timestamp{6, 1}, true},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareConsistentWithLess(t *testing.T) {
	f := func(at, bt int64, ac, bc uint64) bool {
		a := Timestamp{Time: at, ClientID: ac}
		b := Timestamp{Time: bt, ClientID: bc}
		c := a.Compare(b)
		switch {
		case a.Less(b):
			return c == -1 && b.Compare(a) == 1
		case b.Less(a):
			return c == 1 && b.Compare(a) == -1
		default:
			return c == 0 && a == b
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTotalOrderProperties(t *testing.T) {
	// Antisymmetry and totality: exactly one of a<b, b<a, a==b holds.
	f := func(at, bt int64, ac, bc uint64) bool {
		a := Timestamp{Time: at, ClientID: ac}
		b := Timestamp{Time: bt, ClientID: bc}
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a == b {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransitivity(t *testing.T) {
	f := func(t1, t2, t3 int64, c1, c2, c3 uint64) bool {
		a := Timestamp{t1, c1}
		b := Timestamp{t2, c2}
		c := Timestamp{t3, c3}
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	a := Timestamp{1, 2}
	b := Timestamp{1, 3}
	if Max(a, b) != b || Max(b, a) != b {
		t.Errorf("Max(%v,%v) wrong", a, b)
	}
	if Min(a, b) != a || Min(b, a) != a {
		t.Errorf("Min(%v,%v) wrong", a, b)
	}
	if Max(a, a) != a || Min(a, a) != a {
		t.Error("Max/Min not reflexive")
	}
}

func TestLessEqGreater(t *testing.T) {
	a := Timestamp{1, 1}
	b := Timestamp{2, 1}
	if !a.LessEq(b) || !a.LessEq(a) || b.LessEq(a) {
		t.Error("LessEq wrong")
	}
	if !b.Greater(a) || a.Greater(b) || a.Greater(a) {
		t.Error("Greater wrong")
	}
}

func TestGeneratorMonotonic(t *testing.T) {
	// A clock that stalls and even steps backwards must still yield strictly
	// increasing timestamps.
	reads := []int64{5, 5, 3, 10, 10, 2}
	i := 0
	g := NewGenerator(7, func() int64 {
		v := reads[i%len(reads)]
		i++
		return v
	})
	var prev Timestamp
	for n := 0; n < 20; n++ {
		ts := g.NextTimestamp()
		if !prev.Less(ts) {
			t.Fatalf("timestamp %v not greater than previous %v", ts, prev)
		}
		if ts.ClientID != 7 {
			t.Fatalf("ClientID = %d, want 7", ts.ClientID)
		}
		prev = ts
	}
}

func TestGeneratorIDsUnique(t *testing.T) {
	g := NewGenerator(3, func() int64 { return 0 })
	seen := make(map[TxnID]bool)
	for n := 0; n < 1000; n++ {
		id := g.NextID()
		if seen[id] {
			t.Fatalf("duplicate id %v", id)
		}
		if id.ClientID != 3 {
			t.Fatalf("ClientID = %d, want 3", id.ClientID)
		}
		seen[id] = true
	}
}

func TestTimestampsUniqueAcrossClients(t *testing.T) {
	// Same clock reading on two clients must still give distinct timestamps.
	g1 := NewGenerator(1, func() int64 { return 42 })
	g2 := NewGenerator(2, func() int64 { return 42 })
	a, b := g1.NextTimestamp(), g2.NextTimestamp()
	if a == b {
		t.Fatalf("timestamps collide: %v", a)
	}
	if a.Compare(b) == 0 {
		t.Fatal("distinct timestamps compare equal")
	}
}

func TestSortByLess(t *testing.T) {
	ts := []Timestamp{{3, 1}, {1, 2}, {1, 1}, {2, 9}, {0, 5}}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
	want := []Timestamp{{0, 5}, {1, 1}, {1, 2}, {2, 9}, {3, 1}}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v", i, ts[i], want[i])
		}
	}
}

func TestTxnIDString(t *testing.T) {
	id := TxnID{Seq: 4, ClientID: 9}
	if got := id.String(); got != "9:4" {
		t.Errorf("String() = %q, want %q", got, "9:4")
	}
	if got := (Timestamp{10, 2}).String(); got != "10.2" {
		t.Errorf("String() = %q, want %q", got, "10.2")
	}
}

func TestTxnIDLess(t *testing.T) {
	a := TxnID{Seq: 1, ClientID: 1}
	b := TxnID{Seq: 2, ClientID: 1}
	c := TxnID{Seq: 1, ClientID: 2}
	if !a.Less(b) || b.Less(a) {
		t.Error("seq ordering wrong")
	}
	if !a.Less(c) || c.Less(a) {
		t.Error("client ordering wrong")
	}
	if a.Less(a) {
		t.Error("Less not irreflexive")
	}
}
