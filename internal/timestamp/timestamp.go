// Package timestamp defines the globally unique, totally ordered timestamps
// and transaction identifiers used throughout Meerkat.
//
// Meerkat serializes transactions in timestamp order. To avoid any
// coordination when choosing timestamps, a coordinator builds one from its
// local (loosely synchronized) clock plus its globally unique client id:
// the pair (Time, ClientID) is unique as long as each client's clock reading
// is strictly monotonic, which internal/clock guarantees.
package timestamp

import "fmt"

// Timestamp is a proposed (or committed) serialization point for a
// transaction: the coordinator's local clock reading paired with the
// coordinator's unique client id to break ties.
//
// The zero Timestamp is smaller than every timestamp a client can generate
// and is used as "no such transaction" in several protocol messages.
type Timestamp struct {
	Time     int64  // local clock reading, arbitrary units (ns in practice)
	ClientID uint64 // unique id of the proposing coordinator
}

// Zero is the zero timestamp, ordered before all client-generated timestamps.
var Zero = Timestamp{}

// IsZero reports whether t is the zero timestamp.
func (t Timestamp) IsZero() bool { return t == Zero }

// Less reports whether t orders strictly before u. Ordering is lexicographic
// on (Time, ClientID), which yields a total order because ids are unique.
func (t Timestamp) Less(u Timestamp) bool {
	if t.Time != u.Time {
		return t.Time < u.Time
	}
	return t.ClientID < u.ClientID
}

// LessEq reports whether t orders before or equal to u.
func (t Timestamp) LessEq(u Timestamp) bool { return !u.Less(t) }

// Greater reports whether t orders strictly after u.
func (t Timestamp) Greater(u Timestamp) bool { return u.Less(t) }

// Compare returns -1, 0, or +1 as t orders before, equal to, or after u.
func (t Timestamp) Compare(u Timestamp) int {
	switch {
	case t.Less(u):
		return -1
	case u.Less(t):
		return 1
	default:
		return 0
	}
}

// Prev returns the immediate predecessor of t in the total (Time, ClientID)
// order: the largest timestamp strictly less than t. The read-only fast path
// uses it to cap a snapshot just below a pending writer's proposed timestamp.
// Prev of the zero timestamp is the zero timestamp itself (nothing orders
// below it).
func (t Timestamp) Prev() Timestamp {
	if t.ClientID > 0 {
		return Timestamp{Time: t.Time, ClientID: t.ClientID - 1}
	}
	if t.Time == 0 {
		return Zero
	}
	return Timestamp{Time: t.Time - 1, ClientID: ^uint64(0)}
}

// Max returns the later of t and u.
func Max(t, u Timestamp) Timestamp {
	if t.Less(u) {
		return u
	}
	return t
}

// Min returns the earlier of t and u.
func Min(t, u Timestamp) Timestamp {
	if u.Less(t) {
		return u
	}
	return t
}

// String formats the timestamp as "time.clientID" for logs and tests.
func (t Timestamp) String() string {
	return fmt.Sprintf("%d.%d", t.Time, t.ClientID)
}

// TxnID uniquely identifies a transaction: a sequence number local to the
// issuing client paired with that client's unique id.
type TxnID struct {
	Seq      uint64
	ClientID uint64
}

// IsZero reports whether id is the zero TxnID.
func (id TxnID) IsZero() bool { return id == TxnID{} }

// Less orders TxnIDs lexicographically on (ClientID, Seq). The order carries
// no protocol meaning; it exists so ids can key sorted structures
// deterministically.
func (id TxnID) Less(o TxnID) bool {
	if id.ClientID != o.ClientID {
		return id.ClientID < o.ClientID
	}
	return id.Seq < o.Seq
}

// String formats the id as "clientID:seq".
func (id TxnID) String() string {
	return fmt.Sprintf("%d:%d", id.ClientID, id.Seq)
}

// Generator hands out TxnIDs and timestamps for a single coordinator. It is
// not safe for concurrent use; each client owns one.
type Generator struct {
	clientID uint64
	seq      uint64
	lastTime int64
	now      func() int64
}

// NewGenerator returns a Generator for the given client. now supplies local
// clock readings (see internal/clock); Next makes readings strictly monotonic
// even if now stalls or steps backwards.
func NewGenerator(clientID uint64, now func() int64) *Generator {
	return &Generator{clientID: clientID, now: now}
}

// NextID returns a fresh transaction id.
func (g *Generator) NextID() TxnID {
	g.seq++
	return TxnID{Seq: g.seq, ClientID: g.clientID}
}

// NextTimestamp returns a fresh proposed timestamp, strictly greater than any
// timestamp this generator returned before.
func (g *Generator) NextTimestamp() Timestamp {
	t := g.now()
	if t <= g.lastTime {
		t = g.lastTime + 1
	}
	g.lastTime = t
	return Timestamp{Time: t, ClientID: g.clientID}
}
