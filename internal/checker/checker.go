// Package checker verifies one-copy serializability of committed transaction
// histories.
//
// Meerkat serializes committed transactions in timestamp order (§5.4), which
// makes checking cheap: replay the committed transactions sorted by their
// commit timestamps against an ideal single-copy store, and require that
// every read observed exactly the version the replay produces. Any lost
// update, dirty read, write skew, or fractured multi-partition transaction
// shows up as a version mismatch.
package checker

import (
	"fmt"
	"sort"
	"sync"

	"meerkat/internal/message"
	"meerkat/internal/timestamp"
)

// CommittedTxn is one committed transaction as observed by its coordinator.
type CommittedTxn struct {
	ID       timestamp.TxnID
	TS       timestamp.Timestamp
	ReadSet  []message.ReadSetEntry
	WriteSet []message.WriteSetEntry
	OpSet    []message.OpSetEntry

	// ReadOnly marks a transaction committed on the read-only fast path: TS
	// is its snapshot timestamp. A snapshot observes every write at or below
	// it (inclusive), so at an equal timestamp the replay orders writers
	// first; and because a rounded-down snapshot timestamp is derived from
	// other transactions' timestamps rather than drawn fresh from the
	// client's generator, read-only timestamps are exempt from the
	// uniqueness check.
	ReadOnly bool
}

// History accumulates committed transactions from any number of client
// goroutines.
type History struct {
	mu       sync.Mutex
	txns     []CommittedTxn
	initVals map[string][]byte
}

// New returns an empty history.
func New() *History { return &History{} }

// SetInitialValue records the preloaded value of key, letting Check verify
// read value hashes for that key from the very first transaction. Keys that
// appear in Check's initial map without a recorded value skip hash checks
// until a replayed write makes their value known again; keys outside the
// initial map are known missing (nil) from the start.
func (h *History) SetInitialValue(key string, val []byte) {
	h.mu.Lock()
	if h.initVals == nil {
		h.initVals = make(map[string][]byte)
	}
	h.initVals[key] = append([]byte(nil), val...)
	h.mu.Unlock()
}

// Add records a committed transaction. Safe for concurrent use.
func (h *History) Add(t CommittedTxn) {
	h.mu.Lock()
	h.txns = append(h.txns, t)
	h.mu.Unlock()
}

// Range calls fn for every recorded transaction in insertion order until fn
// returns false. fn must not retain the pointer past the call.
func (h *History) Range(fn func(*CommittedTxn) bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.txns {
		if !fn(&h.txns[i]) {
			return
		}
	}
}

// Len returns the number of recorded transactions.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.txns)
}

// Violation describes one serializability violation found by Check.
type Violation struct {
	Txn       timestamp.TxnID
	TS        timestamp.Timestamp
	Key       string
	ReadWTS   timestamp.Timestamp // version the transaction claims it read
	SerialWTS timestamp.Timestamp // version serial replay says it must have read
	// ValueHash marks a value-hash mismatch: the transaction read the right
	// version timestamp but a value the serial replay does not produce. This
	// is the failure mode commutative ops introduce — a mid-chain merge
	// re-materializes a version without advancing its timestamp — so it can
	// only be caught by comparing what was read, not when.
	ValueHash bool
	ReadVHash uint64 // hash of the value the transaction read
	WantVHash uint64 // hash of the value serial replay produces
}

// Error renders the violation.
func (v Violation) Error() string {
	if v.ValueHash {
		return fmt.Sprintf("txn %v@%v read %q@%v with value hash %x but timestamp-order replay gives %x",
			v.Txn, v.TS, v.Key, v.ReadWTS, v.ReadVHash, v.WantVHash)
	}
	return fmt.Sprintf("txn %v@%v read %q@%v but timestamp-order replay gives @%v",
		v.Txn, v.TS, v.Key, v.ReadWTS, v.SerialWTS)
}

// Check replays the history in timestamp order and returns every violation
// found (nil means the history is one-copy serializable in timestamp order).
// initial maps preloaded keys to the timestamp they were loaded at.
func (h *History) Check(initial map[string]timestamp.Timestamp) []Violation {
	h.mu.Lock()
	txns := make([]CommittedTxn, len(h.txns))
	copy(txns, h.txns)
	initVals := h.initVals
	h.mu.Unlock()

	sort.Slice(txns, func(i, j int) bool {
		if txns[i].TS != txns[j].TS {
			return txns[i].TS.Less(txns[j].TS)
		}
		// A snapshot read at TS s observes a write committed exactly at s,
		// so at equal timestamps writers replay before read-only readers.
		if txns[i].ReadOnly != txns[j].ReadOnly {
			return !txns[i].ReadOnly
		}
		return txns[i].ID.Less(txns[j].ID)
	})

	state := make(map[string]timestamp.Timestamp, len(initial))
	for k, ts := range initial {
		state[k] = ts
	}

	// Value replay runs alongside the timestamp replay. A key's value is
	// "known" when the replay can derive it: keys outside initial are known
	// missing (nil), keys with a recorded initial value start known, and any
	// replayed write makes its key known. Ops preserve knowledge (ApplyOp is
	// deterministic); reads of unknown values skip the hash comparison.
	vals := make(map[string][]byte, len(initVals))
	known := make(map[string]bool, len(initVals))
	for k := range initial {
		if v, ok := initVals[k]; ok {
			vals[k] = v
			known[k] = true
		}
	}
	valueOf := func(k string) ([]byte, bool) {
		if known[k] {
			return vals[k], true
		}
		if _, preloaded := initial[k]; preloaded {
			return nil, false
		}
		return nil, true // never written: reads as missing
	}

	var out []Violation
	for _, t := range txns {
		for _, r := range t.ReadSet {
			if got := state[r.Key]; got != r.WTS {
				out = append(out, Violation{
					Txn: t.ID, TS: t.TS, Key: r.Key,
					ReadWTS: r.WTS, SerialWTS: got,
				})
				continue
			}
			// VHash 0 means the history was recorded without hashes
			// (hand-built tests); skip rather than fabricate a mismatch.
			if r.VHash == 0 {
				continue
			}
			if v, ok := valueOf(r.Key); ok {
				if want := message.HashValue(v); want != r.VHash {
					out = append(out, Violation{
						Txn: t.ID, TS: t.TS, Key: r.Key, ReadWTS: r.WTS,
						ValueHash: true, ReadVHash: r.VHash, WantVHash: want,
					})
				}
			}
		}
		for _, w := range t.WriteSet {
			// The Thomas write rule can leave an older committed write
			// invisible; replay applies the same rule.
			if state[w.Key].Less(t.TS) {
				state[w.Key] = t.TS
				vals[w.Key] = w.Value
				known[w.Key] = true
			}
		}
		for _, o := range t.OpSet {
			// A committed op installs a version at t.TS like a write; in
			// timestamp-order replay it always lands on top, so the store's
			// mid-chain merge cases reduce to a plain ApplyOp here.
			if state[o.Key].Less(t.TS) {
				state[o.Key] = t.TS
			}
			if v, ok := valueOf(o.Key); ok {
				vals[o.Key] = message.ApplyOp(nil, v, o.Kind, o.Delta, o.Arg)
				known[o.Key] = true
			}
		}
	}
	return out
}

// CheckUniqueTimestamps verifies that no two committed transactions share a
// serialization timestamp — a prerequisite for the timestamp order to be a
// total order. Read-only transactions are exempt: they install nothing, so
// their position among same-timestamp peers is immaterial, and a rounded-down
// snapshot timestamp is legitimately derived from other transactions'
// timestamps rather than drawn fresh.
func (h *History) CheckUniqueTimestamps() []timestamp.Timestamp {
	h.mu.Lock()
	defer h.mu.Unlock()
	seen := make(map[timestamp.Timestamp]bool, len(h.txns))
	var dups []timestamp.Timestamp
	for _, t := range h.txns {
		if t.ReadOnly {
			continue
		}
		if seen[t.TS] {
			dups = append(dups, t.TS)
		}
		seen[t.TS] = true
	}
	return dups
}
