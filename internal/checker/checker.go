// Package checker verifies one-copy serializability of committed transaction
// histories.
//
// Meerkat serializes committed transactions in timestamp order (§5.4), which
// makes checking cheap: replay the committed transactions sorted by their
// commit timestamps against an ideal single-copy store, and require that
// every read observed exactly the version the replay produces. Any lost
// update, dirty read, write skew, or fractured multi-partition transaction
// shows up as a version mismatch.
package checker

import (
	"fmt"
	"sort"
	"sync"

	"meerkat/internal/message"
	"meerkat/internal/timestamp"
)

// CommittedTxn is one committed transaction as observed by its coordinator.
type CommittedTxn struct {
	ID       timestamp.TxnID
	TS       timestamp.Timestamp
	ReadSet  []message.ReadSetEntry
	WriteSet []message.WriteSetEntry
}

// History accumulates committed transactions from any number of client
// goroutines.
type History struct {
	mu   sync.Mutex
	txns []CommittedTxn
}

// New returns an empty history.
func New() *History { return &History{} }

// Add records a committed transaction. Safe for concurrent use.
func (h *History) Add(t CommittedTxn) {
	h.mu.Lock()
	h.txns = append(h.txns, t)
	h.mu.Unlock()
}

// Len returns the number of recorded transactions.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.txns)
}

// Violation describes one serializability violation found by Check.
type Violation struct {
	Txn       timestamp.TxnID
	TS        timestamp.Timestamp
	Key       string
	ReadWTS   timestamp.Timestamp // version the transaction claims it read
	SerialWTS timestamp.Timestamp // version serial replay says it must have read
}

// Error renders the violation.
func (v Violation) Error() string {
	return fmt.Sprintf("txn %v@%v read %q@%v but timestamp-order replay gives @%v",
		v.Txn, v.TS, v.Key, v.ReadWTS, v.SerialWTS)
}

// Check replays the history in timestamp order and returns every violation
// found (nil means the history is one-copy serializable in timestamp order).
// initial maps preloaded keys to the timestamp they were loaded at.
func (h *History) Check(initial map[string]timestamp.Timestamp) []Violation {
	h.mu.Lock()
	txns := make([]CommittedTxn, len(h.txns))
	copy(txns, h.txns)
	h.mu.Unlock()

	sort.Slice(txns, func(i, j int) bool { return txns[i].TS.Less(txns[j].TS) })

	state := make(map[string]timestamp.Timestamp, len(initial))
	for k, ts := range initial {
		state[k] = ts
	}

	var out []Violation
	for _, t := range txns {
		for _, r := range t.ReadSet {
			if got := state[r.Key]; got != r.WTS {
				out = append(out, Violation{
					Txn: t.ID, TS: t.TS, Key: r.Key,
					ReadWTS: r.WTS, SerialWTS: got,
				})
			}
		}
		for _, w := range t.WriteSet {
			// The Thomas write rule can leave an older committed write
			// invisible; replay applies the same rule.
			if state[w.Key].Less(t.TS) {
				state[w.Key] = t.TS
			}
		}
	}
	return out
}

// CheckUniqueTimestamps verifies that no two committed transactions share a
// serialization timestamp — a prerequisite for the timestamp order to be a
// total order.
func (h *History) CheckUniqueTimestamps() []timestamp.Timestamp {
	h.mu.Lock()
	defer h.mu.Unlock()
	seen := make(map[timestamp.Timestamp]bool, len(h.txns))
	var dups []timestamp.Timestamp
	for _, t := range h.txns {
		if seen[t.TS] {
			dups = append(dups, t.TS)
		}
		seen[t.TS] = true
	}
	return dups
}
