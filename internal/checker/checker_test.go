package checker

import (
	"testing"

	"meerkat/internal/message"
	"meerkat/internal/timestamp"
)

func ts(t int64) timestamp.Timestamp { return timestamp.Timestamp{Time: t, ClientID: 1} }

func TestCleanHistoryPasses(t *testing.T) {
	h := New()
	// T1 writes k@10; T2 reads k@10 and writes k@20; T3 reads k@20.
	h.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 1, ClientID: 1}, TS: ts(10),
		WriteSet: []message.WriteSetEntry{{Key: "k"}},
	})
	h.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 2, ClientID: 1}, TS: ts(20),
		ReadSet:  []message.ReadSetEntry{{Key: "k", WTS: ts(10)}},
		WriteSet: []message.WriteSetEntry{{Key: "k"}},
	})
	h.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 3, ClientID: 1}, TS: ts(30),
		ReadSet: []message.ReadSetEntry{{Key: "k", WTS: ts(20)}},
	})
	if v := h.Check(nil); v != nil {
		t.Fatalf("clean history flagged: %v", v)
	}
}

func TestLostUpdateDetected(t *testing.T) {
	h := New()
	// Both T2 and T3 read the initial version and write: a lost update.
	init := map[string]timestamp.Timestamp{"k": ts(1)}
	h.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 1, ClientID: 1}, TS: ts(10),
		ReadSet:  []message.ReadSetEntry{{Key: "k", WTS: ts(1)}},
		WriteSet: []message.WriteSetEntry{{Key: "k"}},
	})
	h.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 1, ClientID: 2}, TS: ts(20),
		ReadSet:  []message.ReadSetEntry{{Key: "k", WTS: ts(1)}}, // stale!
		WriteSet: []message.WriteSetEntry{{Key: "k"}},
	})
	v := h.Check(init)
	if len(v) != 1 {
		t.Fatalf("got %d violations, want 1: %v", len(v), v)
	}
	if v[0].Key != "k" || v[0].SerialWTS != ts(10) {
		t.Fatalf("violation %+v", v[0])
	}
	if v[0].Error() == "" {
		t.Fatal("empty violation message")
	}
}

func TestUnsortedInsertionOrderIrrelevant(t *testing.T) {
	h := New()
	// Insert out of timestamp order; replay must sort.
	h.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 2, ClientID: 1}, TS: ts(20),
		ReadSet: []message.ReadSetEntry{{Key: "k", WTS: ts(10)}},
	})
	h.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 1, ClientID: 1}, TS: ts(10),
		WriteSet: []message.WriteSetEntry{{Key: "k"}},
	})
	if v := h.Check(nil); v != nil {
		t.Fatalf("flagged: %v", v)
	}
}

func TestThomasRuleWriteOrder(t *testing.T) {
	// A committed write with an older timestamp than an existing version
	// must not regress the replay state.
	h := New()
	h.Add(CommittedTxn{ID: timestamp.TxnID{Seq: 1, ClientID: 1}, TS: ts(20),
		WriteSet: []message.WriteSetEntry{{Key: "k"}}})
	h.Add(CommittedTxn{ID: timestamp.TxnID{Seq: 1, ClientID: 2}, TS: ts(15),
		WriteSet: []message.WriteSetEntry{{Key: "k"}}}) // blind older write
	h.Add(CommittedTxn{ID: timestamp.TxnID{Seq: 2, ClientID: 1}, TS: ts(30),
		ReadSet: []message.ReadSetEntry{{Key: "k", WTS: ts(20)}}})
	if v := h.Check(nil); v != nil {
		t.Fatalf("flagged: %v", v)
	}
}

func TestReadOfMissingKey(t *testing.T) {
	h := New()
	// Reading a never-written key observes version Zero.
	h.Add(CommittedTxn{ID: timestamp.TxnID{Seq: 1, ClientID: 1}, TS: ts(10),
		ReadSet: []message.ReadSetEntry{{Key: "nope", WTS: timestamp.Zero}}})
	if v := h.Check(nil); v != nil {
		t.Fatalf("flagged: %v", v)
	}
	// But reading a version that replay says should not exist fails.
	h.Add(CommittedTxn{ID: timestamp.TxnID{Seq: 2, ClientID: 1}, TS: ts(20),
		ReadSet: []message.ReadSetEntry{{Key: "nope", WTS: ts(5)}}})
	if v := h.Check(nil); len(v) != 1 {
		t.Fatalf("got %v", v)
	}
}

func TestUniqueTimestamps(t *testing.T) {
	h := New()
	h.Add(CommittedTxn{TS: ts(10)})
	h.Add(CommittedTxn{TS: ts(20)})
	if d := h.CheckUniqueTimestamps(); d != nil {
		t.Fatalf("false duplicates: %v", d)
	}
	h.Add(CommittedTxn{TS: ts(10)})
	if d := h.CheckUniqueTimestamps(); len(d) != 1 {
		t.Fatalf("missed duplicate: %v", d)
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
}
