package checker

import (
	"testing"

	"meerkat/internal/message"
	"meerkat/internal/timestamp"
)

func ts(t int64) timestamp.Timestamp { return timestamp.Timestamp{Time: t, ClientID: 1} }

func TestCleanHistoryPasses(t *testing.T) {
	h := New()
	// T1 writes k@10; T2 reads k@10 and writes k@20; T3 reads k@20.
	h.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 1, ClientID: 1}, TS: ts(10),
		WriteSet: []message.WriteSetEntry{{Key: "k"}},
	})
	h.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 2, ClientID: 1}, TS: ts(20),
		ReadSet:  []message.ReadSetEntry{{Key: "k", WTS: ts(10)}},
		WriteSet: []message.WriteSetEntry{{Key: "k"}},
	})
	h.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 3, ClientID: 1}, TS: ts(30),
		ReadSet: []message.ReadSetEntry{{Key: "k", WTS: ts(20)}},
	})
	if v := h.Check(nil); v != nil {
		t.Fatalf("clean history flagged: %v", v)
	}
}

func TestLostUpdateDetected(t *testing.T) {
	h := New()
	// Both T2 and T3 read the initial version and write: a lost update.
	init := map[string]timestamp.Timestamp{"k": ts(1)}
	h.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 1, ClientID: 1}, TS: ts(10),
		ReadSet:  []message.ReadSetEntry{{Key: "k", WTS: ts(1)}},
		WriteSet: []message.WriteSetEntry{{Key: "k"}},
	})
	h.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 1, ClientID: 2}, TS: ts(20),
		ReadSet:  []message.ReadSetEntry{{Key: "k", WTS: ts(1)}}, // stale!
		WriteSet: []message.WriteSetEntry{{Key: "k"}},
	})
	v := h.Check(init)
	if len(v) != 1 {
		t.Fatalf("got %d violations, want 1: %v", len(v), v)
	}
	if v[0].Key != "k" || v[0].SerialWTS != ts(10) {
		t.Fatalf("violation %+v", v[0])
	}
	if v[0].Error() == "" {
		t.Fatal("empty violation message")
	}
}

func TestUnsortedInsertionOrderIrrelevant(t *testing.T) {
	h := New()
	// Insert out of timestamp order; replay must sort.
	h.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 2, ClientID: 1}, TS: ts(20),
		ReadSet: []message.ReadSetEntry{{Key: "k", WTS: ts(10)}},
	})
	h.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 1, ClientID: 1}, TS: ts(10),
		WriteSet: []message.WriteSetEntry{{Key: "k"}},
	})
	if v := h.Check(nil); v != nil {
		t.Fatalf("flagged: %v", v)
	}
}

func TestThomasRuleWriteOrder(t *testing.T) {
	// A committed write with an older timestamp than an existing version
	// must not regress the replay state.
	h := New()
	h.Add(CommittedTxn{ID: timestamp.TxnID{Seq: 1, ClientID: 1}, TS: ts(20),
		WriteSet: []message.WriteSetEntry{{Key: "k"}}})
	h.Add(CommittedTxn{ID: timestamp.TxnID{Seq: 1, ClientID: 2}, TS: ts(15),
		WriteSet: []message.WriteSetEntry{{Key: "k"}}}) // blind older write
	h.Add(CommittedTxn{ID: timestamp.TxnID{Seq: 2, ClientID: 1}, TS: ts(30),
		ReadSet: []message.ReadSetEntry{{Key: "k", WTS: ts(20)}}})
	if v := h.Check(nil); v != nil {
		t.Fatalf("flagged: %v", v)
	}
}

func TestReadOfMissingKey(t *testing.T) {
	h := New()
	// Reading a never-written key observes version Zero.
	h.Add(CommittedTxn{ID: timestamp.TxnID{Seq: 1, ClientID: 1}, TS: ts(10),
		ReadSet: []message.ReadSetEntry{{Key: "nope", WTS: timestamp.Zero}}})
	if v := h.Check(nil); v != nil {
		t.Fatalf("flagged: %v", v)
	}
	// But reading a version that replay says should not exist fails.
	h.Add(CommittedTxn{ID: timestamp.TxnID{Seq: 2, ClientID: 1}, TS: ts(20),
		ReadSet: []message.ReadSetEntry{{Key: "nope", WTS: ts(5)}}})
	if v := h.Check(nil); len(v) != 1 {
		t.Fatalf("got %v", v)
	}
}

func TestUniqueTimestamps(t *testing.T) {
	h := New()
	h.Add(CommittedTxn{TS: ts(10)})
	h.Add(CommittedTxn{TS: ts(20)})
	if d := h.CheckUniqueTimestamps(); d != nil {
		t.Fatalf("false duplicates: %v", d)
	}
	h.Add(CommittedTxn{TS: ts(10)})
	if d := h.CheckUniqueTimestamps(); len(d) != 1 {
		t.Fatalf("missed duplicate: %v", d)
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
}

// TestOpHistoryReplay verifies that Check folds committed commutative ops
// into its serial replay: ops install versions like writes for the
// timestamp replay, and the value replay recomputes each merge so read
// hashes are verified against the serial value.
func TestOpHistoryReplay(t *testing.T) {
	h := New()
	h.SetInitialValue("n", []byte("0"))
	// Two increments then a reader that saw the merged "2"@20.
	h.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 1, ClientID: 1}, TS: ts(10),
		OpSet: []message.OpSetEntry{{Key: "n", Kind: message.OpIncrement, Delta: 1}},
	})
	h.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 2, ClientID: 1}, TS: ts(20),
		OpSet: []message.OpSetEntry{{Key: "n", Kind: message.OpIncrement, Delta: 1}},
	})
	h.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 3, ClientID: 1}, TS: ts(30),
		ReadSet: []message.ReadSetEntry{
			{Key: "n", WTS: ts(20), VHash: message.HashValue([]byte("2"))},
		},
	})
	if v := h.Check(map[string]timestamp.Timestamp{"n": {}}); v != nil {
		t.Fatalf("clean op history flagged: %v", v)
	}

	// A reader whose version timestamp matches but whose value hash does
	// not — the signature of reading a value a later-arriving op merged
	// away — must be flagged as a value-hash violation.
	h.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 4, ClientID: 1}, TS: ts(40),
		ReadSet: []message.ReadSetEntry{
			{Key: "n", WTS: ts(20), VHash: message.HashValue([]byte("1"))},
		},
	})
	v := h.Check(map[string]timestamp.Timestamp{"n": {}})
	if len(v) != 1 || !v[0].ValueHash {
		t.Fatalf("want one value-hash violation, got %v", v)
	}

	// Reads recorded without hashes (VHash 0) skip the value comparison.
	h2 := New()
	h2.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 1, ClientID: 1}, TS: ts(10),
		OpSet: []message.OpSetEntry{{Key: "m", Kind: message.OpAppend, Arg: []byte("x")}},
	})
	h2.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 2, ClientID: 1}, TS: ts(20),
		ReadSet: []message.ReadSetEntry{{Key: "m", WTS: ts(10)}},
	})
	if v := h2.Check(nil); v != nil {
		t.Fatalf("hashless history flagged: %v", v)
	}
}

// TestOpHistoryUnknownInitialValueSkipsHashes: a preloaded key without a
// recorded initial value cannot be value-replayed until a write re-anchors
// it, so hash checks are skipped rather than fabricated.
func TestOpHistoryUnknownInitialValueSkipsHashes(t *testing.T) {
	h := New()
	h.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 1, ClientID: 1}, TS: ts(10),
		OpSet: []message.OpSetEntry{{Key: "u", Kind: message.OpIncrement, Delta: 5}},
	})
	h.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 2, ClientID: 1}, TS: ts(20),
		ReadSet: []message.ReadSetEntry{
			{Key: "u", WTS: ts(10), VHash: message.HashValue([]byte("whatever"))},
		},
		WriteSet: []message.WriteSetEntry{{Key: "u", Value: []byte("9")}},
	})
	// After the write at ts 20 the value is known again: a bad hash at a
	// later read is caught.
	h.Add(CommittedTxn{
		ID: timestamp.TxnID{Seq: 3, ClientID: 1}, TS: ts(30),
		ReadSet: []message.ReadSetEntry{
			{Key: "u", WTS: ts(20), VHash: message.HashValue([]byte("8"))},
		},
	})
	v := h.Check(map[string]timestamp.Timestamp{"u": {}})
	if len(v) != 1 || !v[0].ValueHash || v[0].TS != ts(30) {
		t.Fatalf("want exactly the ts(30) value-hash violation, got %v", v)
	}
}
