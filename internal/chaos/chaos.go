// Package chaos runs the paper's workloads through the deterministic
// fault-injection layer (internal/faultnet) and verifies that the system's
// behaviour under faults matches its claims: every surviving history is
// one-copy serializable (internal/checker), no transaction outcome is left
// unknown (timed-out commits are resolved through the recovery procedure),
// and the commit mix shifts from the fast path to the slow path while a
// replica is unreachable (internal/obs).
//
// The harness is the bridge between the injector's transport-level faults
// and the cluster's replica lifecycle: it consumes the injector's fired
// events and mirrors crash/restart black-holes onto real CrashReplica /
// RecoverReplica calls, so an injected crash exercises state transfer and
// epoch change, not just message loss.
//
// Determinism: the fault schedule is pure data — Run with a fixed seed
// produces a byte-for-byte identical serialized plan (Result.Plan) and, for
// the schedules shipped here, the same checker verdict on every run. The
// interleaving of client transactions remains scheduler-dependent; the
// faults they run under do not.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"meerkat"
	"meerkat/internal/checker"
	"meerkat/internal/faultnet"
	"meerkat/internal/obs"
	"meerkat/internal/timestamp"
	"meerkat/internal/topo"
	"meerkat/internal/workload"
)

// Config parameterizes one chaos run. The zero value (plus a seed) is a
// usable smoke configuration.
type Config struct {
	// Seed drives everything random: the fault plan, the per-client
	// workload generators, and the injector's per-link decision streams.
	Seed int64
	// Workload is "ycsb-t" (default) or "retwis".
	Workload string
	// Clients is the number of closed-loop client goroutines. Default 4.
	Clients int
	// Keys is the preloaded keyspace size. Default 256.
	Keys int
	// Theta is the Zipf coefficient of key popularity. Default 0 (uniform).
	Theta float64
	// TailTxns is how many transactions the clients commit after the last
	// scheduled fault event has fired, so recovery is exercised by real
	// traffic before the run ends. Default 50.
	TailTxns int
	// Timeout bounds the whole run. Default 2 minutes.
	Timeout time.Duration
	// Plan overrides the fault schedule; nil uses DefaultPlan(Seed).
	Plan *faultnet.Plan
	// Cores per replica. Default 2 (keeps -race runs cheap).
	Cores int
	// CommitTimeout is the cluster's per-round-trip wait. Default 25ms —
	// short, so a dropped message costs a quick resend, not a long stall.
	CommitTimeout time.Duration
	// Durability passes through to the cluster: with a DataDir set, injected
	// crashes abandon unflushed buffers and restarts recover from disk
	// before the delta state transfer, so the checker verdict covers the
	// whole persistence path.
	Durability meerkat.Durability
	// Ops replaces the workload's read-modify-write keys with server-side
	// increments: the transaction ships Add(key, 1) instead of reading the
	// key and writing it back. The recorded histories then mix plain
	// reads/writes with commutative ops, and the checker's value replay
	// verifies merge results across faults, crashes, and WAL recovery.
	Ops bool
	// ReadOnlyMix is the fraction of transactions run as read-only snapshot
	// transactions (Txn.ReadOnly) over the generated spec's keys. Under
	// faults the snapshot fast path demotes freely to the validated path;
	// either way the committed reads join the history, and the checker
	// verifies they saw a consistent cut.
	ReadOnlyMix float64
}

func (c *Config) fill() {
	if c.Workload == "" {
		c.Workload = "ycsb-t"
	}
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.Keys == 0 {
		c.Keys = 256
	}
	if c.TailTxns == 0 {
		c.TailTxns = 50
	}
	if c.Timeout == 0 {
		c.Timeout = 2 * time.Minute
	}
	if c.Cores == 0 {
		c.Cores = 2
	}
	if c.CommitTimeout == 0 {
		c.CommitTimeout = 25 * time.Millisecond
	}
	if c.Plan == nil {
		c.Plan = DefaultPlan(c.Seed)
	}
}

// DefaultPlan is the canonical smoke schedule over a 3-replica group
// (nodes 0, 1, 2): a light uniform drop rule from the start, a partition
// window isolating replica 1, and — after the network heals — a crash and
// later restart of replica 2. Event triggers are global send counts; the
// harness keeps traffic flowing until every event has fired, so the whole
// schedule always executes.
func DefaultPlan(seed int64) *faultnet.Plan {
	t := topo.Topology{Partitions: 1, Replicas: 3, Cores: 1}
	iso := t.ReplicaNode(0, 1)
	victim := t.ReplicaNode(0, 2)
	return &faultnet.Plan{
		Seed: seed,
		Rules: []faultnet.Rule{{
			ID:      "ambient-loss",
			SrcNode: faultnet.Any, DstNode: faultnet.Any,
			SrcCore: faultnet.Any, DstCore: faultnet.Any,
			DropProb: 0.02,
		}},
		Events: []faultnet.Event{
			{At: 500, Op: faultnet.OpPartition, Groups: [][]uint32{{iso}}},
			{At: 1500, Op: faultnet.OpHeal},
			{At: 2500, Op: faultnet.OpCrash, Node: victim},
			{At: 7000, Op: faultnet.OpRestart, Node: victim},
		},
	}
}

// Result is one chaos run's outcome.
type Result struct {
	// Plan is the serialized fault schedule that ran — the byte-for-byte
	// reproducible artifact. Persist it to replay the run.
	Plan []byte

	// Committed is the number of transactions in the verified history;
	// Resolved of those had an unknown outcome that the client settled
	// through the recovery procedure (commit or abort); Unresolved counts
	// transactions whose outcome is STILL unknown after resolution was
	// attempted — any nonzero value voids the checker verdict, because the
	// history may be missing committed writes.
	Committed  int
	Resolved   uint64
	Unresolved int
	// RunErrors counts Client.Run calls that failed outright.
	RunErrors int

	// Crashes and Restarts count replica lifecycle transitions the harness
	// performed on behalf of the schedule.
	Crashes  int
	Restarts int

	// FastCommits and SlowCommits are the cluster-wide commit-path counts;
	// under a crash window the slow path must appear. ROCommits counts
	// read-only fast-path commits (zero validation rounds); ROFallbacks
	// counts snapshot attempts that demoted to the validated path.
	FastCommits uint64
	SlowCommits uint64
	ROCommits   uint64
	ROFallbacks uint64

	// Violations and DupTimestamps are the checker verdict: the history is
	// one-copy serializable iff both are empty.
	Violations    []checker.Violation
	DupTimestamps int

	// Faults summarizes the injector's activity.
	Faults faultnet.PlanStats
}

// Ok reports the overall verdict: a fully resolved, serializable history.
func (r *Result) Ok() bool {
	return r.Unresolved == 0 && len(r.Violations) == 0 && r.DupTimestamps == 0
}

// Run executes one chaos run: boot a faulted cluster, preload the keyspace,
// drive the workload from cfg.Clients closed-loop clients while mirroring
// crash/restart events onto the replica lifecycle, keep going until the
// whole fault schedule has fired plus cfg.TailTxns commits of recovered
// traffic, then check the history.
func Run(cfg Config) (*Result, error) {
	cfg.fill()
	planBytes, err := cfg.Plan.Dump()
	if err != nil {
		return nil, err
	}
	res := &Result{Plan: planBytes}

	cluster, err := meerkat.NewCluster(meerkat.Config{
		Cores:         cfg.Cores,
		Seed:          cfg.Seed,
		Faults:        cfg.Plan,
		CommitTimeout: cfg.CommitTimeout,
		Durability:    cfg.Durability,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	// Preload every key so the checker's initial state is exact.
	initial := make(map[string]timestamp.Timestamp, cfg.Keys)
	loadTS := timestamp.Timestamp{Time: 1, ClientID: 0}
	value := workload.Value(64)
	for i := 0; i < cfg.Keys; i++ {
		k := workload.KeyName(i)
		cluster.Load(k, value)
		initial[k] = loadTS
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()

	// The lifecycle controller mirrors fired crash/restart events onto the
	// real replicas. A restart is retried: right after the black-hole lifts
	// the ambient drop rule can still fail a state transfer.
	ctlDone := make(chan struct{})
	go func() {
		defer close(ctlDone)
		for {
			select {
			case ev := <-cluster.FaultEvents():
				p, r, ok := cluster.ReplicaOf(ev.Node)
				switch {
				case ev.Op == faultnet.OpCrash && ok:
					cluster.CrashReplica(p, r)
					res.Crashes++
				case ev.Op == faultnet.OpRestart && ok:
					for try := 0; try < 100; try++ {
						if err := cluster.RecoverReplica(p, r); err == nil {
							res.Restarts++
							break
						}
						select {
						case <-ctx.Done():
							return
						case <-time.After(20 * time.Millisecond):
						}
					}
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	// Clients run until the schedule has fully fired and TailTxns more
	// transactions have committed on the recovered cluster (or ctx
	// expires). Event triggers are send counts, so continuing to generate
	// traffic is what guarantees every event eventually fires.
	nEvents := uint64(len(cfg.Plan.Events))
	fnet := cluster.FaultNetwork()
	allFired := func() bool { return fnet.Stats().EventsFired.Load() >= nEvents }

	hist := checker.New()
	// Give the checker the preloaded values so its value replay can verify
	// read hashes (and op merge results) from the first transaction.
	for i := 0; i < cfg.Keys; i++ {
		hist.SetInitialValue(workload.KeyName(i), value)
	}
	var tail atomic.Int64
	var stop atomic.Bool
	var unresolved, runErrors atomic.Int64

	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := cluster.NewClient()
			if err != nil {
				runErrors.Add(1)
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			gen := newGenerator(cfg, rng)
			var gets, incrs []string
			for !stop.Load() && ctx.Err() == nil {
				spec := gen.Next(rng)
				gets = spec.AppendGets(gets[:0])
				incrs = incrs[:0]
				ro := cfg.ReadOnlyMix > 0 && rng.Float64() < cfg.ReadOnlyMix
				if cfg.Ops && !ro {
					// RMW keys ship as server-side increments: drop their
					// reads (AppendGets puts plain reads first) and carry
					// the keys in the op set instead.
					gets = gets[:len(spec.Reads)]
					incrs = append(incrs, spec.RMWs...)
				}
				var last *meerkat.Txn
				err := cl.Run(ctx, func(t *meerkat.Txn) error {
					last = t
					if ro {
						// A read-only snapshot transaction over the spec's
						// whole key set (RMW keys read, not written).
						t.ReadOnly()
						if len(gets) == 0 {
							return nil
						}
						_, err := t.ReadManyCtx(ctx, gets)
						return err
					}
					if len(gets) > 0 {
						if _, err := t.ReadManyCtx(ctx, gets); err != nil {
							return err
						}
					}
					for _, k := range incrs {
						t.Add(k, 1)
					}
					if !cfg.Ops {
						for _, k := range spec.RMWs {
							t.Write(k, value)
						}
					}
					for _, k := range spec.Writes {
						t.Write(k, value)
					}
					return nil
				})
				if err != nil {
					runErrors.Add(1)
					if errors.Is(err, meerkat.ErrTimeout) && last != nil {
						// Run could not settle the outcome; the history
						// may be missing a committed transaction.
						unresolved.Add(1)
					}
					continue
				}
				hist.Add(checker.CommittedTxn{
					ID: last.ID(), TS: last.Timestamp(),
					ReadSet: last.ReadSet(), WriteSet: last.WriteSet(),
					OpSet:    last.OpSet(),
					ReadOnly: last.CommittedReadOnly(),
				})
				if allFired() && tail.Add(1) >= int64(cfg.TailTxns) {
					stop.Store(true)
				}
			}
		}(c)
	}
	wg.Wait()
	cancel()
	<-ctlDone

	if ctx.Err() != nil && !allFired() {
		return nil, fmt.Errorf("chaos: deadline before schedule completed (%d/%d events fired)",
			fnet.Stats().EventsFired.Load(), nEvents)
	}

	snap := cluster.Obs().Snapshot()
	res.Committed = hist.Len()
	res.Resolved = snap.Counters[obs.TxnResolveCommit] + snap.Counters[obs.TxnResolveAbort]
	res.Unresolved = int(unresolved.Load())
	res.RunErrors = int(runErrors.Load())
	res.FastCommits = snap.Counters[obs.TxnCommitFast]
	res.SlowCommits = snap.Counters[obs.TxnCommitSlow]
	res.ROCommits = snap.Counters[obs.TxnCommitRO]
	res.ROFallbacks = snap.Counters[obs.ROFallback]
	res.Faults = fnet.Stats().Summary()
	res.Violations = hist.Check(initial)
	res.DupTimestamps = len(hist.CheckUniqueTimestamps())
	return res, nil
}

// newGenerator builds the workload generator for cfg.
func newGenerator(cfg Config, rng *rand.Rand) workload.Generator {
	chooser := workload.NewChooser(cfg.Keys, cfg.Theta)
	if cfg.Workload == "retwis" {
		return workload.NewRetwis(chooser)
	}
	return workload.NewYCSBT(chooser)
}
