package chaos

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"meerkat"
	"meerkat/internal/faultnet"
)

// dumpArtifact persists the run's fault schedule when CHAOS_ARTIFACT_DIR is
// set, so a CI failure leaves behind the exact plan needed to replay it.
func dumpArtifact(t *testing.T, res *Result) {
	t.Helper()
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" || res == nil || len(res.Plan) == 0 {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("chaos: cannot create artifact dir: %v", err)
		return
	}
	path := filepath.Join(dir, t.Name()+"-plan.json")
	if err := os.WriteFile(path, res.Plan, 0o644); err != nil {
		t.Logf("chaos: cannot write fault schedule: %v", err)
		return
	}
	t.Logf("chaos: fault schedule written to %s", path)
}

// TestChaosSmoke is the tier-1 chaos gate: the default schedule (ambient
// loss, a partition window, one replica crash and restart) with a fixed seed
// must yield a fully resolved, one-copy-serializable history, and the crash
// window must force at least one slow-path commit.
func TestChaosSmoke(t *testing.T) {
	res, err := Run(Config{Seed: 7, Timeout: 90 * time.Second})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if !res.Ok() {
		dumpArtifact(t, res)
		t.Fatalf("checker rejected history: unresolved=%d violations=%v dup_ts=%d",
			res.Unresolved, res.Violations, res.DupTimestamps)
	}
	if res.Committed == 0 {
		dumpArtifact(t, res)
		t.Fatal("no transactions committed")
	}
	if res.Crashes != 1 || res.Restarts != 1 {
		dumpArtifact(t, res)
		t.Fatalf("lifecycle mismatch: crashes=%d restarts=%d, want 1/1", res.Crashes, res.Restarts)
	}
	if res.SlowCommits == 0 {
		dumpArtifact(t, res)
		t.Fatalf("no slow-path commits during the crash window (fast=%d)", res.FastCommits)
	}
	if res.Faults.Dropped == 0 || res.Faults.Blackholed == 0 {
		dumpArtifact(t, res)
		t.Fatalf("injector idle: %+v", res.Faults)
	}
	t.Logf("committed=%d resolved=%d run_errors=%d fast=%d slow=%d faults=%+v",
		res.Committed, res.Resolved, res.RunErrors, res.FastCommits, res.SlowCommits, res.Faults)
}

// TestChaosReproducible runs the same seeded configuration twice and checks
// the determinism contract: byte-identical fault schedules and the same
// checker verdict.
func TestChaosReproducible(t *testing.T) {
	cfg := Config{
		Seed:     21,
		Clients:  2,
		Keys:     64,
		TailTxns: 10,
		Timeout:  60 * time.Second,
		Plan: &faultnet.Plan{
			Seed: 21,
			Rules: []faultnet.Rule{{
				ID:      "ambient-loss",
				SrcNode: faultnet.Any, DstNode: faultnet.Any,
				SrcCore: faultnet.Any, DstCore: faultnet.Any,
				DropProb: 0.02,
			}},
			Events: []faultnet.Event{
				{At: 200, Op: faultnet.OpPartition, Groups: [][]uint32{{1}}},
				{At: 600, Op: faultnet.OpHeal},
				{At: 1000, Op: faultnet.OpCrash, Node: 2},
				{At: 2200, Op: faultnet.OpRestart, Node: 2},
			},
		},
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !bytes.Equal(a.Plan, b.Plan) {
		t.Fatal("fault schedules differ between runs with the same seed")
	}
	if !a.Ok() || !b.Ok() {
		dumpArtifact(t, a)
		t.Fatalf("verdicts: a.Ok=%v b.Ok=%v, want both true (a: unresolved=%d violations=%v; b: unresolved=%d violations=%v)",
			a.Ok(), b.Ok(), a.Unresolved, a.Violations, b.Unresolved, b.Violations)
	}
}

// TestDefaultPlanStable pins DefaultPlan's serialized form: the dump must be
// identical across calls (the reproducibility artifact is pure data).
func TestDefaultPlanStable(t *testing.T) {
	a, err := DefaultPlan(7).Dump()
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultPlan(7).Dump()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("DefaultPlan dump not stable")
	}
	if p, err := faultnet.Load(a); err != nil || len(p.Events) != 4 {
		t.Fatalf("round trip: %v, events=%d", err, len(p.Events))
	}
}

// TestChaosReadOnlyMix folds snapshot read-only transactions into the fault
// schedule: 30% of the traffic is marked RO and rides the one-round fast
// path when the watermark confirms, racing ambient loss, a partition
// window, and a replica crash+restart. Dropped replies and the downed
// replica shrink the confirmation quorum, so this exercises the retry,
// round-down, and demotion paths too; whatever path each transaction took,
// the checker must accept the merged history, and at least one transaction
// must actually have committed read-only for the run to count.
func TestChaosReadOnlyMix(t *testing.T) {
	res, err := Run(Config{Seed: 11, Ops: true, ReadOnlyMix: 0.3, Timeout: 90 * time.Second})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if !res.Ok() {
		dumpArtifact(t, res)
		t.Fatalf("checker rejected history with RO mix: unresolved=%d violations=%v dup_ts=%d",
			res.Unresolved, res.Violations, res.DupTimestamps)
	}
	if res.Committed == 0 {
		t.Fatal("no transactions committed")
	}
	if res.ROCommits == 0 {
		dumpArtifact(t, res)
		t.Fatalf("no read-only fast-path commits under the mix (fallbacks=%d)", res.ROFallbacks)
	}
	t.Logf("committed=%d ro=%d ro_fallbacks=%d fast=%d slow=%d faults=%+v",
		res.Committed, res.ROCommits, res.ROFallbacks, res.FastCommits, res.SlowCommits, res.Faults)
}

// TestChaosDiskRecovery is TestChaosSmoke with durability enabled: the
// injected crash abandons the victim's unflushed WAL buffers, and its
// restart replays snapshot + logs from disk before the delta state
// transfer. The history must stay one-copy serializable — persistence must
// not re-introduce coordination bugs or lose acknowledged commits. Ops is
// set, so the RMW traffic ships as server-side increments and the verdict
// covers commutative-op replay through the WAL and crash recovery: the
// checker's value replay recomputes every merge and compares read hashes.
func TestChaosDiskRecovery(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(Config{
		Seed:    7,
		Ops:     true,
		Timeout: 90 * time.Second,
		Durability: meerkat.Durability{
			DataDir:             dir,
			GroupCommitInterval: time.Millisecond,
			SnapshotInterval:    100 * time.Millisecond, // exercise truncation mid-run
		},
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if !res.Ok() {
		dumpArtifact(t, res)
		t.Fatalf("checker rejected durable history: unresolved=%d violations=%v dup_ts=%d",
			res.Unresolved, res.Violations, res.DupTimestamps)
	}
	if res.Committed == 0 {
		t.Fatal("no transactions committed")
	}
	if res.Crashes < 1 || res.Restarts < 1 {
		t.Fatalf("lifecycle mismatch: crashes=%d restarts=%d, want >= 1 each", res.Crashes, res.Restarts)
	}
	// The run must actually have hit the disk: every replica directory gets
	// per-core logs, and the crashed replica's survive into recovery.
	for r := 0; r < 3; r++ {
		repDir := filepath.Join(dir, fmt.Sprintf("p0-r%d", r))
		ents, err := os.ReadDir(repDir)
		if err != nil || len(ents) == 0 {
			t.Fatalf("replica %d left no durability state in %s: %v", r, repDir, err)
		}
	}
}
