package topo

import (
	"testing"
	"testing/quick"
)

func TestQuorumSizes(t *testing.T) {
	cases := []struct {
		replicas, f, majority, fast int
	}{
		{1, 0, 1, 1},
		{3, 1, 2, 3},
		{5, 2, 3, 4},
		{7, 3, 4, 6},
		{9, 4, 5, 7},
	}
	for _, c := range cases {
		tp := Topology{Partitions: 1, Replicas: c.replicas, Cores: 1}
		if tp.F() != c.f {
			t.Errorf("n=%d: F=%d, want %d", c.replicas, tp.F(), c.f)
		}
		if tp.Majority() != c.majority {
			t.Errorf("n=%d: Majority=%d, want %d", c.replicas, tp.Majority(), c.majority)
		}
		if tp.FastQuorum() != c.fast {
			t.Errorf("n=%d: FastQuorum=%d, want %d", c.replicas, tp.FastQuorum(), c.fast)
		}
	}
}

func TestQuorumIntersectionProperties(t *testing.T) {
	// Any two majorities intersect; a fast quorum and a majority intersect
	// in at least ceil(f/2)+1 replicas (the epoch-change safety argument).
	for n := 1; n <= 21; n += 2 {
		tp := Topology{Partitions: 1, Replicas: n, Cores: 1}
		f := tp.F()
		if 2*tp.Majority() <= n {
			t.Errorf("n=%d: two majorities may not intersect", n)
		}
		inter := tp.FastQuorum() + tp.Majority() - n
		if inter < (f+1)/2+1 {
			t.Errorf("n=%d: fast/majority intersection %d < %d", n, inter, (f+1)/2+1)
		}
	}
}

func TestValidate(t *testing.T) {
	good := Topology{Partitions: 1, Replicas: 3, Cores: 4}
	if !good.Validate() {
		t.Error("valid topology rejected")
	}
	for _, bad := range []Topology{
		{Partitions: 0, Replicas: 3, Cores: 1},
		{Partitions: 1, Replicas: 2, Cores: 1}, // even replica count
		{Partitions: 1, Replicas: 3, Cores: 0},
	} {
		if bad.Validate() {
			t.Errorf("invalid topology accepted: %+v", bad)
		}
	}
}

func TestAddressesDisjoint(t *testing.T) {
	tp := Topology{Partitions: 3, Replicas: 3, Cores: 4}
	seen := map[uint32]bool{}
	for p := 0; p < tp.Partitions; p++ {
		for r := 0; r < tp.Replicas; r++ {
			id := tp.ReplicaNode(p, r)
			if seen[id] {
				t.Fatalf("node id %d reused", id)
			}
			if id >= ClientNodeBase {
				t.Fatalf("replica node id %d collides with client space", id)
			}
			seen[id] = true
		}
	}
	if a := tp.ClientAddr(5); a.Node < ClientNodeBase {
		t.Fatalf("client addr %v in replica space", a)
	}
}

func TestGroupAddrs(t *testing.T) {
	tp := Topology{Partitions: 2, Replicas: 3, Cores: 4}
	addrs := tp.GroupAddrs(1, 2)
	if len(addrs) != 3 {
		t.Fatalf("got %d addrs", len(addrs))
	}
	for r, a := range addrs {
		if a.Core != 2 {
			t.Errorf("addr %d core = %d", r, a.Core)
		}
		if a.Node != tp.ReplicaNode(1, r) {
			t.Errorf("addr %d node = %d", r, a.Node)
		}
	}
}

func TestPartitionForKeyStableAndInRange(t *testing.T) {
	tp := Topology{Partitions: 4, Replicas: 3, Cores: 1}
	f := func(key string) bool {
		p := tp.PartitionForKey(key)
		return p >= 0 && p < 4 && p == tp.PartitionForKey(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	single := Topology{Partitions: 1, Replicas: 3, Cores: 1}
	if single.PartitionForKey("anything") != 0 {
		t.Fatal("single partition must map everything to 0")
	}
}

func TestPartitionSpread(t *testing.T) {
	tp := Topology{Partitions: 4, Replicas: 3, Cores: 1}
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[tp.PartitionForKey(string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune(i)))]++
	}
	for p, c := range counts {
		if c == 0 {
			t.Errorf("partition %d received no keys", p)
		}
	}
}
