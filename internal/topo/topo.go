// Package topo describes a Meerkat deployment: how many partitions the data
// is split across (§5.2.4), how many replicas each partition group has
// (n = 2f+1), and how many cores (server threads) each replica runs. It also
// fixes the address conventions every component uses, and the quorum sizes
// of the commit protocol.
package topo

import (
	"hash/fnv"

	"meerkat/internal/message"
)

// ClientNodeBase is the first node id assigned to clients; replica node ids
// stay below it.
const ClientNodeBase = 1 << 16

// Topology is an immutable description of a deployment.
type Topology struct {
	// Partitions is the number of data partitions; each has its own
	// replica group. Must be >= 1.
	Partitions int
	// Replicas is the number of replicas per partition group (n = 2f+1).
	Replicas int
	// Cores is the number of server threads per replica.
	Cores int
}

// Validate reports whether the topology is well formed.
func (t Topology) Validate() bool {
	return t.Partitions >= 1 && t.Replicas >= 1 && t.Replicas%2 == 1 && t.Cores >= 1
}

// F returns the number of replica failures each partition group tolerates.
func (t Topology) F() int { return (t.Replicas - 1) / 2 }

// Majority returns the slow-path quorum size, f+1.
func (t Topology) Majority() int { return t.F() + 1 }

// FastQuorum returns the fast-path supermajority, f + ceil(f/2) + 1.
func (t Topology) FastQuorum() int {
	f := t.F()
	return f + (f+1)/2 + 1
}

// ReplicaNode returns the node id of replica r of partition p.
func (t Topology) ReplicaNode(p, r int) uint32 {
	return uint32(p*t.Replicas + r)
}

// ReplicaAddr returns the address of core c on replica r of partition p.
func (t Topology) ReplicaAddr(p, r int, core uint32) message.Addr {
	return message.Addr{Node: t.ReplicaNode(p, r), Core: core}
}

// GroupAddrs returns the addresses of core `core` on every replica of
// partition p — the destination set for a validate/accept/commit broadcast.
func (t Topology) GroupAddrs(p int, core uint32) []message.Addr {
	out := make([]message.Addr, t.Replicas)
	for r := 0; r < t.Replicas; r++ {
		out[r] = t.ReplicaAddr(p, r, core)
	}
	return out
}

// ClientAddr returns the address for client id. Each client owns one
// endpoint (core 0 of its own node).
func (t Topology) ClientAddr(clientID uint64) message.Addr {
	return message.Addr{Node: ClientNodeBase + uint32(clientID), Core: 0}
}

// PartitionForKey maps a key to its owning partition.
func (t Topology) PartitionForKey(key string) int {
	if t.Partitions == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(t.Partitions))
}
