package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"meerkat"
	"meerkat/internal/obs"
)

// This file measures the wire-level cost of the transport stack: the same
// Meerkat cluster and Retwis workload over (a) the in-process fabric, (b)
// real loopback UDP forced onto one syscall per datagram, and (c) real UDP
// with the batched sendmmsg/recvmmsg path, with and without pipelined client
// sessions keeping the rings full. The figure of merit is socket syscalls
// per committed transaction — the coordination the batched transport
// amortizes away — alongside goodput, which should close most of the gap to
// the kernel-bypass-class inproc reference.

// UDPOptions parameterizes the UDP transport sweep beyond the shared
// Options.
type UDPOptions struct {
	Options
	// Window is the pipeline width of the session rows (in-flight
	// transactions per socket set). Default 16.
	Window int
	// FlushDelay holds buffered datagrams up to this long waiting to share
	// a sendmmsg (micro-Nagle) in the pipelined row. Default 20µs — about
	// one round-trip of slack, enough for concurrent workers' messages to
	// meet in one syscall without moving the latency percentiles.
	FlushDelay time.Duration
	// BasePort places the throwaway UDP port maps; each row uses its own
	// stride so a row's lingering sockets can never collide with the next.
	// Default 27000.
	BasePort int
}

func (o *UDPOptions) fill() {
	o.Options.fill()
	if o.Window == 0 {
		o.Window = 16
	}
	if o.FlushDelay == 0 {
		o.FlushDelay = 20 * time.Microsecond
	}
	if o.BasePort == 0 {
		o.BasePort = 27000
	}
	if o.Clients == 0 {
		// Equal closed-loop client counts across rows keep the comparison
		// honest; the pipelined row reaches the same total via sessions of
		// Window workers each.
		o.Clients = 16
	}
}

// UDPSweep measures the transport comparison and returns one Point per row.
// Rows that cannot bind sockets (sandboxes without loopback UDP) are
// reported and skipped rather than failing the sweep.
func UDPSweep(w io.Writer, opts UDPOptions) ([]Point, error) {
	opts.fill()
	rows := []struct {
		name   string
		window int
		cfg    meerkat.Config
	}{
		{"inproc", 1, meerkat.Config{}},
		{"udp-unbatched", 1, meerkat.Config{
			Transport: meerkat.TransportUDP, UDPNoBatch: true,
		}},
		{"udp-batched", 1, meerkat.Config{
			Transport: meerkat.TransportUDP,
		}},
		{"udp-pipelined", opts.Window, meerkat.Config{
			Transport: meerkat.TransportUDP, UDPFlushDelay: opts.FlushDelay,
		}},
	}
	fmt.Fprintf(w, "# retwis uniform, %d closed-loop clients: transport stack comparison\n", opts.Clients)
	fmt.Fprintf(w, "%-14s %7s %12s %9s %10s %10s %13s %11s\n",
		"transport", "window", "goodput", "abort%", "p50", "p99", "syscalls/txn", "dgrams/call")
	var out []Point
	port := opts.BasePort
	for _, row := range rows {
		cfg := row.cfg
		if cfg.Transport == meerkat.TransportUDP {
			cfg.UDPBasePort = port
			port += 1024 // fresh port stride per UDP row
		}
		p, err := runUDPPoint(row.name, cfg, row.window, opts)
		if err != nil {
			if cfg.Transport == meerkat.TransportUDP {
				fmt.Fprintf(w, "%-14s skipped: %v\n", row.name, err)
				continue
			}
			return out, err
		}
		out = append(out, p)
		fmt.Fprintf(w, "%-14s %7d %12.0f %8.1f%% %10v %10v %13.2f %11.2f\n",
			p.System, row.window, p.Goodput, p.AbortRate*100, p.P50, p.P99,
			p.SyscallsPerTxn, p.DatagramsPerSyscall)
	}
	return out, nil
}

// runUDPPoint builds a cluster per cfg, drives it with the closed-loop
// harness, and annotates the Point with the syscall counters the run cost.
func runUDPPoint(name string, cfg meerkat.Config, window int, opts UDPOptions) (Point, error) {
	cfg.Obs = opts.Obs
	cluster, err := meerkat.NewCluster(cfg)
	if err != nil {
		return Point{}, err
	}
	sys := &udpSystem{name: name, cluster: cluster, window: window}
	defer sys.Close()
	res, err := Run(RunConfig{
		System:       sys,
		NewGenerator: genFactory("retwis", opts.Keys, 0),
		Clients:      opts.Clients,
		Keys:         opts.Keys,
		Warmup:       opts.Warmup,
		Measure:      opts.Measure,
		Seed:         opts.Seed,
	})
	if err != nil {
		return Point{}, err
	}
	p := Point{
		System:    name,
		X:         float64(window),
		Goodput:   res.Goodput(),
		AbortRate: res.AbortRate(),
		P50:       res.Latency.Percentile(0.50),
		P99:       res.Latency.Percentile(0.99),
		P999:      res.Latency.Percentile(0.999),
		Path:      res.Path,
	}
	// Syscall counters cover the whole run (warmup included), so divide by
	// all commits the clients saw, not just the measured window's.
	if net, ok := cluster.UDPStats(); ok {
		if committed := sys.committed(); committed > 0 {
			p.SyscallsPerTxn = float64(net.Syscalls()) / float64(committed)
		}
		if net.SendSyscalls > 0 {
			p.DatagramsPerSyscall = float64(net.Sent) / float64(net.SendSyscalls)
		}
	}
	return p, nil
}

// udpSystem adapts one meerkat.Cluster (any transport) to the harness's
// System interface. With window > 1 it hands out pipelined session workers —
// every `window` NewClient calls share one socket set — instead of plain
// stop-and-wait clients, so the harness's client goroutines become the
// in-flight transactions that fill the transport's syscall batches.
type udpSystem struct {
	name    string
	cluster *meerkat.Cluster
	window  int

	mu       sync.Mutex
	sessions []*meerkat.Session
	spare    []*meerkat.Client
	handed   []*meerkat.Client
}

func (s *udpSystem) Name() string                  { return s.name }
func (s *udpSystem) Obs() *obs.Registry            { return s.cluster.Obs() }
func (s *udpSystem) Load(key string, value []byte) { s.cluster.Load(key, value) }

func (s *udpSystem) NewClient() (Client, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.window <= 1 {
		cl, err := s.cluster.NewClient()
		if err != nil {
			return nil, err
		}
		s.handed = append(s.handed, cl)
		return &meerkatClient{cl}, nil
	}
	if len(s.spare) == 0 {
		sess, err := s.cluster.NewSession(s.window)
		if err != nil {
			return nil, err
		}
		s.sessions = append(s.sessions, sess)
		s.spare = append(s.spare, sess.Clients()...)
	}
	cl := s.spare[0]
	s.spare = s.spare[1:]
	s.handed = append(s.handed, cl)
	return &meerkatClient{cl}, nil
}

// committed sums commit counts over every client the run used — the
// denominator for syscalls/txn.
func (s *udpSystem) committed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total uint64
	for _, cl := range s.handed {
		c, _ := cl.Stats()
		total += c
	}
	return total
}

func (s *udpSystem) Close() {
	s.mu.Lock()
	sessions := s.sessions
	s.sessions = nil
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.Close()
	}
	s.cluster.Close()
}
