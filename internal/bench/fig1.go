package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"meerkat/internal/message"
	"meerkat/internal/transport"
	"meerkat/internal/workload"
)

// Fig1 reproduces the paper's Figure 1 micro-benchmark: a PUT-only
// key-value server measured on a kernel-bypass-class transport (inproc) and
// on a traditional kernel UDP stack, with and without an artificial
// cross-core bottleneck (a shared atomic counter incremented on every PUT).

// Fig1Transport selects the stack under test.
type Fig1Transport int

// Transports for Figure 1.
const (
	Fig1Inproc Fig1Transport = iota // stand-in for eRPC kernel bypass
	Fig1UDP                         // real loopback UDP (kernel stack)
)

func (t Fig1Transport) String() string {
	if t == Fig1UDP {
		return "udp"
	}
	return "erpc"
}

// Fig1Config sizes one Figure 1 measurement.
type Fig1Config struct {
	Transport     Fig1Transport
	ServerThreads int
	Clients       int // defaults to 2x server threads
	SharedCounter bool
	Keys          int // defaults to 65536
	Measure       time.Duration
	UDPBasePort   int // defaults to 31000
}

// Fig1Result is one Figure 1 data point.
type Fig1Result struct {
	Transport     string
	ServerThreads int
	SharedCounter bool
	Puts          uint64
	Elapsed       time.Duration
}

// Throughput returns PUTs per second.
func (r *Fig1Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Puts) / r.Elapsed.Seconds()
}

// putStore is the minimal DAP-friendly blind-put store: sharded maps with
// per-shard locks, so disjoint PUTs touch disjoint cache lines.
type putStore struct {
	shards [256]struct {
		mu sync.Mutex
		m  map[string][]byte
	}
}

func newPutStore() *putStore {
	s := &putStore{}
	for i := range s.shards {
		s.shards[i].m = make(map[string][]byte)
	}
	return s
}

func (s *putStore) put(key string, value []byte) {
	h := uint8(0)
	for i := 0; i < len(key); i++ {
		h = h*131 + key[i]
	}
	sh := &s.shards[h]
	sh.mu.Lock()
	sh.m[key] = value
	sh.mu.Unlock()
}

// RunFig1 runs one Figure 1 configuration and returns the data point.
func RunFig1(cfg Fig1Config) (Fig1Result, error) {
	if cfg.Clients == 0 {
		cfg.Clients = 2 * cfg.ServerThreads
	}
	if cfg.Keys == 0 {
		cfg.Keys = 65536
	}
	if cfg.Measure == 0 {
		cfg.Measure = 300 * time.Millisecond
	}
	if cfg.UDPBasePort == 0 {
		cfg.UDPBasePort = 31000
	}

	var net transport.Network
	switch cfg.Transport {
	case Fig1UDP:
		net = transport.NewUDP("127.0.0.1", cfg.UDPBasePort, cfg.ServerThreads+1)
	default:
		net = transport.NewInproc(transport.InprocConfig{})
	}
	defer net.Close()

	store := newPutStore()
	var counter atomic.Uint64 // the artificial scalability bottleneck

	// Server threads: one endpoint per core on node 0. The endpoint is
	// published through an atomic pointer because the delivery goroutine
	// may run the handler before Listen returns.
	for i := 0; i < cfg.ServerThreads; i++ {
		var self atomic.Pointer[transport.Endpoint]
		ep, err := net.Listen(message.Addr{Node: 0, Core: uint32(i)}, func(m *message.Message) {
			if m.Type != message.TypePut {
				return
			}
			store.put(m.Key, m.Value)
			if cfg.SharedCounter {
				counter.Add(1)
			}
			if e := self.Load(); e != nil {
				(*e).Send(m.Src, &message.Message{Type: message.TypePutReply, Seq: m.Seq})
			}
		})
		if err != nil {
			return Fig1Result{}, fmt.Errorf("fig1: listen server %d: %w", i, err)
		}
		self.Store(&ep)
	}

	// Closed-loop clients.
	var stop atomic.Bool
	puts := make([]uint64, cfg.Clients)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		in := transport.NewInbox(16)
		ep, err := net.Listen(message.Addr{Node: uint32(1 + c), Core: 0}, in.Handle)
		if err != nil {
			return Fig1Result{}, fmt.Errorf("fig1: listen client %d: %w", c, err)
		}
		wg.Add(1)
		go func(c int, ep transport.Endpoint, in *transport.Inbox) {
			defer wg.Done()
			defer ep.Close()
			rng := rand.New(rand.NewSource(int64(c + 1)))
			value := workload.Value(64)
			seq := uint64(0)
			for !stop.Load() {
				seq++
				key := workload.KeyName(rng.Intn(cfg.Keys))
				core := uint32(rng.Intn(cfg.ServerThreads))
				ep.Send(message.Addr{Node: 0, Core: core}, &message.Message{
					Type: message.TypePut, Key: key, Value: value, Seq: seq,
				})
				deadline := time.NewTimer(time.Second)
			wait:
				for {
					select {
					case m := <-in.C:
						if m.Type == message.TypePutReply && m.Seq == seq {
							deadline.Stop()
							// Atomic because the measuring goroutine reads
							// concurrently; one counter per client, so no
							// cross-client cache-line traffic of note.
							atomic.AddUint64(&puts[c], 1)
							break wait
						}
					case <-deadline.C:
						break wait // lost datagram: move on
					}
				}
			}
		}(c, ep, in)
	}

	// Short warmup, then measure.
	time.Sleep(50 * time.Millisecond)
	var before uint64
	for c := range puts {
		before += atomic.LoadUint64(&puts[c])
	}
	start := time.Now()
	time.Sleep(cfg.Measure)
	var after uint64
	for c := range puts {
		after += atomic.LoadUint64(&puts[c])
	}
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()

	return Fig1Result{
		Transport:     cfg.Transport.String(),
		ServerThreads: cfg.ServerThreads,
		SharedCounter: cfg.SharedCounter,
		Puts:          after - before,
		Elapsed:       elapsed,
	}, nil
}
