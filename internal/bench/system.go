// Package bench is the benchmark harness behind the paper's evaluation
// (§6): it assembles the four prototype systems of Table 1 behind one
// client interface, drives them with closed-loop clients running the YCSB-T
// and Retwis workloads, and reports goodput and abort rates.
//
//	System      cross-core coordination   cross-replica coordination
//	KuaFu++     yes (counter+log+record)  yes (primary-backup)
//	TAPIR       yes (shared record)       no
//	Meerkat-PB  no                        yes (primary-backup)
//	Meerkat     no                        no
package bench

import (
	"context"
	"fmt"
	"time"

	"meerkat"
	"meerkat/internal/clock"
	"meerkat/internal/kuafu"
	"meerkat/internal/meerkatpb"
	"meerkat/internal/obs"
	"meerkat/internal/pbclient"
	"meerkat/internal/timestamp"
	"meerkat/internal/topo"
	"meerkat/internal/transport"
	"meerkat/internal/vstore"
)

// Txn is the common transaction surface the harness drives. ReadMany is the
// batched execution phase: Meerkat serves it in one round trip per touched
// partition, while the PB baselines fall back to a per-key loop.
type Txn interface {
	Read(key string) ([]byte, error)
	ReadMany(keys []string) ([][]byte, error)
	Write(key string, value []byte)
	Commit() (bool, error)
}

// Client issues transactions; one per closed-loop client goroutine.
type Client interface {
	Begin() Txn
	// Run executes fn inside transactions until one commits, retrying
	// conflict aborts, and reports how many attempts it took (>= 1 on
	// success). It is the canonical loop the harness measures: the Meerkat
	// systems route it through the public Client.Run (backoff, resolution
	// of unknown outcomes), the PB baselines through a plain retry loop.
	Run(ctx context.Context, fn func(Txn) error) (attempts int, err error)
	Close()
}

// System is one of the four evaluation prototypes.
type System interface {
	Name() string
	NewClient() (Client, error)
	Load(key string, value []byte)
	Close()
	// Obs returns the system's observability registry (never nil). The
	// harness snapshots it around the measured window for path-ratio
	// breakdowns; systems without lifecycle instrumentation (the PB
	// baselines) expose transport gauges only.
	Obs() *obs.Registry
}

// SystemKind names the four prototypes.
type SystemKind string

// The four systems of Table 1.
const (
	SystemMeerkat   SystemKind = "meerkat"
	SystemMeerkatPB SystemKind = "meerkat-pb"
	SystemTAPIR     SystemKind = "tapir"
	SystemKuaFu     SystemKind = "kuafu++"
)

// AllSystems lists the four prototypes in the paper's presentation order.
var AllSystems = []SystemKind{SystemMeerkat, SystemMeerkatPB, SystemTAPIR, SystemKuaFu}

// SystemConfig sizes a system under test.
type SystemConfig struct {
	Kind     SystemKind
	Replicas int // default 3
	Cores    int // server threads per replica
	Timeout  time.Duration
	Retries  int
	// Obs, when non-nil, is wired through the system so one registry (and
	// one HTTP exporter) can observe a whole sweep. Defaults to a fresh
	// registry per system.
	Obs *obs.Registry
	// DisableReadOnlyFastPath forces marked read-only transactions through
	// the classic validated commit (Meerkat systems only) — the two-round
	// baseline of the read-only sweep's ablation.
	DisableReadOnlyFastPath bool
}

// NewSystem builds and starts the requested system on an in-process
// network.
func NewSystem(cfg SystemConfig) (System, error) {
	if cfg.Replicas == 0 {
		cfg.Replicas = 3
	}
	if cfg.Cores == 0 {
		cfg.Cores = 4
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 200 * time.Millisecond
	}
	if cfg.Retries == 0 {
		cfg.Retries = 20
	}
	switch cfg.Kind {
	case SystemMeerkat, SystemTAPIR:
		cl, err := meerkat.NewCluster(meerkat.Config{
			Replicas:                cfg.Replicas,
			Cores:                   cfg.Cores,
			SharedTRecord:           cfg.Kind == SystemTAPIR,
			CommitTimeout:           cfg.Timeout,
			Retries:                 cfg.Retries,
			Obs:                     cfg.Obs,
			DisableReadOnlyFastPath: cfg.DisableReadOnlyFastPath,
		})
		if err != nil {
			return nil, err
		}
		return &meerkatSystem{kind: cfg.Kind, cluster: cl}, nil
	case SystemMeerkatPB, SystemKuaFu:
		return newPBSystem(cfg)
	default:
		return nil, fmt.Errorf("bench: unknown system %q", cfg.Kind)
	}
}

// meerkatSystem adapts the public meerkat API (which also serves as the
// TAPIR-like baseline via SharedTRecord).
type meerkatSystem struct {
	kind    SystemKind
	cluster *meerkat.Cluster
}

func (s *meerkatSystem) Name() string { return string(s.kind) }

func (s *meerkatSystem) Obs() *obs.Registry { return s.cluster.Obs() }

func (s *meerkatSystem) Load(key string, value []byte) { s.cluster.Load(key, value) }

func (s *meerkatSystem) Close() { s.cluster.Close() }

func (s *meerkatSystem) NewClient() (Client, error) {
	cl, err := s.cluster.NewClient()
	if err != nil {
		return nil, err
	}
	return &meerkatClient{cl}, nil
}

type meerkatClient struct{ cl *meerkat.Client }

func (c *meerkatClient) Begin() Txn { return c.cl.Begin() }
func (c *meerkatClient) Close()     { c.cl.Close() }

func (c *meerkatClient) Run(ctx context.Context, fn func(Txn) error) (int, error) {
	attempts := 0
	err := c.cl.Run(ctx, func(t *meerkat.Txn) error {
		attempts++
		return fn(t)
	})
	return attempts, err
}

// pbSystem hosts the KuaFu++ and Meerkat-PB replica groups.
type pbSystem struct {
	cfg    SystemConfig
	topo   topo.Topology
	net    *transport.Inproc
	obs    *obs.Registry
	stores []*vstore.Store
	stop   []func()
	nextID uint64
}

func newPBSystem(cfg SystemConfig) (System, error) {
	tp := topo.Topology{Partitions: 1, Replicas: cfg.Replicas, Cores: cfg.Cores}
	s := &pbSystem{cfg: cfg, topo: tp, net: transport.NewInproc(transport.InprocConfig{})}
	s.obs = cfg.Obs
	if s.obs == nil {
		s.obs = obs.NewRegistry()
	}
	s.net.RegisterObs(s.obs)
	for i := 0; i < cfg.Replicas; i++ {
		switch cfg.Kind {
		case SystemKuaFu:
			rep, err := kuafu.New(kuafu.Config{Topo: tp, Index: i, Net: s.net})
			if err != nil {
				return nil, err
			}
			if err := rep.Start(); err != nil {
				return nil, err
			}
			s.stores = append(s.stores, rep.Store())
			s.stop = append(s.stop, rep.Stop)
		case SystemMeerkatPB:
			rep, err := meerkatpb.New(meerkatpb.Config{Topo: tp, Index: i, Net: s.net})
			if err != nil {
				return nil, err
			}
			if err := rep.Start(); err != nil {
				return nil, err
			}
			s.stores = append(s.stores, rep.Store())
			s.stop = append(s.stop, rep.Stop)
		}
	}
	return s, nil
}

func (s *pbSystem) Name() string { return string(s.cfg.Kind) }

func (s *pbSystem) Obs() *obs.Registry { return s.obs }

func (s *pbSystem) Load(key string, value []byte) {
	ts := timestamp.Timestamp{Time: 1, ClientID: 0}
	for _, st := range s.stores {
		st.Load(key, value, ts)
	}
}

func (s *pbSystem) Close() {
	for _, stop := range s.stop {
		stop()
	}
	s.net.Close()
}

func (s *pbSystem) NewClient() (Client, error) {
	s.nextID++
	cl, err := pbclient.New(pbclient.Config{
		Topo:             s.topo,
		ClientID:         s.nextID,
		Net:              s.net,
		Clock:            clock.NewReal(),
		ClientTimestamps: s.cfg.Kind == SystemMeerkatPB,
		Timeout:          s.cfg.Timeout,
		Retries:          s.cfg.Retries,
	})
	if err != nil {
		return nil, err
	}
	return &pbClientAdapter{cl}, nil
}

type pbClientAdapter struct{ cl *pbclient.Client }

func (c *pbClientAdapter) Begin() Txn { return c.cl.Begin() }
func (c *pbClientAdapter) Close()     { c.cl.Close() }

func (c *pbClientAdapter) Run(ctx context.Context, fn func(Txn) error) (int, error) {
	for attempts := 1; ; attempts++ {
		if err := ctx.Err(); err != nil {
			return attempts - 1, err
		}
		txn := c.cl.Begin()
		if err := fn(txn); err != nil {
			return attempts, err
		}
		ok, err := txn.Commit()
		if err != nil {
			return attempts, err
		}
		if ok {
			return attempts, nil
		}
	}
}
