package bench

import (
	"fmt"
	"io"

	"meerkat/internal/workload"
)

// This file measures what the read-only fast path buys on read-heavy
// Retwis: the same re-weighted mix (80/95/100% pure-read timeline loads)
// run twice per read fraction, once with the fast path ablated
// (DisableReadOnlyFastPath — every transaction pays the validation round,
// the two-round baseline) and once with marked read-only transactions
// committing locally off their snapshot reads. The one-round rows also
// report how many commits actually took the fast path, so a confirmation
// shortfall (retries, demotions) is visible rather than silently priced in.

// ROOptions parameterizes the read-fraction sweep beyond the shared
// Options.
type ROOptions struct {
	Options
	// ReadFracs overrides the swept pure-read transaction fractions.
	// Defaults to 0.80, 0.95, 1.00.
	ReadFracs []float64
}

// ROSweep measures the two-round validated baseline versus the one-round
// read-only fast path across Retwis read fractions on the Meerkat system
// and returns two Points per fraction, X carrying the read fraction.
func ROSweep(w io.Writer, opts ROOptions) ([]Point, error) {
	opts.Options.fill()
	if opts.Clients == 0 {
		opts.Clients = 64
	}
	if len(opts.ReadFracs) == 0 {
		opts.ReadFracs = []float64{0.80, 0.95, 1.00}
	}
	fmt.Fprintf(w, "# retwis re-weighted by read fraction, %d closed-loop clients, %d keys: validated two-round commit vs read-only one-round fast path\n",
		opts.Clients, opts.Keys)
	fmt.Fprintf(w, "%-10s %6s %12s %9s %10s %10s %8s\n",
		"row", "read%", "goodput", "abort%", "p50", "p99", "ro-share")
	var out []Point
	for _, frac := range opts.ReadFracs {
		for _, disable := range []bool{true, false} {
			p, err := runROPoint(frac, disable, opts)
			if err != nil {
				return out, err
			}
			out = append(out, p)
			roShare := "-"
			if !disable {
				total := p.Path.ROCommits + p.Path.FastCommits + p.Path.SlowCommits
				if total > 0 {
					roShare = fmt.Sprintf("%.0f%%", 100*float64(p.Path.ROCommits)/float64(total))
				}
			}
			fmt.Fprintf(w, "%-10s %5.0f%% %12.0f %8.1f%% %10v %10v %8s\n",
				p.System, frac*100, p.Goodput, p.AbortRate*100, p.P50, p.P99, roShare)
		}
	}
	return out, nil
}

// runROPoint measures one (read fraction, path) cell on a fresh cluster.
func runROPoint(frac float64, disableFastPath bool, opts ROOptions) (Point, error) {
	sys, err := NewSystem(SystemConfig{
		Kind:                    SystemMeerkat,
		Obs:                     opts.Obs,
		DisableReadOnlyFastPath: disableFastPath,
	})
	if err != nil {
		return Point{}, err
	}
	defer sys.Close()
	name := "one-round"
	if disableFastPath {
		name = "two-round"
	}
	res, err := Run(RunConfig{
		System: sys,
		NewGenerator: func() workload.Generator {
			return workload.NewRetwisMix(workload.NewChooser(opts.Keys, 0.75), frac)
		},
		Clients: opts.Clients,
		Keys:    opts.Keys,
		Warmup:  opts.Warmup,
		Measure: opts.Measure,
		Seed:    opts.Seed,
	})
	if err != nil {
		return Point{}, err
	}
	return Point{
		System:    name,
		X:         frac,
		Goodput:   res.Goodput(),
		AbortRate: res.AbortRate(),
		P50:       res.Latency.Percentile(0.50),
		P99:       res.Latency.Percentile(0.99),
		P999:      res.Latency.Percentile(0.999),
		Path:      res.Path,
	}, nil
}
