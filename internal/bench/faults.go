package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"meerkat"
	"meerkat/internal/faultnet"
	"meerkat/internal/workload"
)

// This file is the kill-one-replica experiment: a Meerkat cluster runs the
// YCSB-T workload while the fault injector crashes one replica and later
// restarts it. The timeline shows the zero-coordination failure story: with a
// replica down the supermajority fast quorum is unreachable, so goodput dips
// onto the slow path (which keeps committing on a simple majority); after the
// restart — state transfer plus epoch change — the fast path, and goodput,
// recover.
//
// The schedule is pure data (a faultnet.Plan keyed on global send counts), so
// a fixed seed reproduces the same fault sequence; only the wall-clock
// placement of the dip varies with host speed.

// FaultOptions sizes the kill-one-replica timeline.
type FaultOptions struct {
	// Clients is the closed-loop client count. Default 8.
	Clients int
	// Keys is the preloaded keyspace. Default 4096 (kept small so the
	// restarted replica's state transfer is brisk).
	Keys int
	// Cores per replica. Default 2.
	Cores int
	// Seed drives the workload and the injector streams. Default 1.
	Seed int64
	// Interval is the sample width of the timeline. Default 250ms.
	Interval time.Duration
	// CrashAt and RestartAt are the injector triggers, in global send
	// counts. Defaults 60000 and 85000: the gap is sized so the crash
	// window spans several samples even though slow-path traffic sends
	// far fewer messages per second.
	CrashAt   uint64
	RestartAt uint64
	// Tail is how many samples to record after the restart has been
	// mirrored onto the replica (the recovery side of the dip). Default 8.
	Tail int
	// MaxSamples bounds the run if the schedule stalls. Default 240.
	MaxSamples int
	// CommitTimeout is the cluster's per-round-trip wait. Default 15ms —
	// short, so the fast-quorum wait that precedes every slow-path commit
	// during the crash window stays cheap.
	CommitTimeout time.Duration
}

func (o *FaultOptions) fill() {
	if o.Clients == 0 {
		o.Clients = 8
	}
	if o.Keys == 0 {
		o.Keys = 4096
	}
	if o.Cores == 0 {
		o.Cores = 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Interval == 0 {
		o.Interval = 250 * time.Millisecond
	}
	if o.CrashAt == 0 {
		o.CrashAt = 60000
	}
	if o.RestartAt == 0 {
		o.RestartAt = o.CrashAt + 25000
	}
	if o.Tail == 0 {
		o.Tail = 8
	}
	if o.MaxSamples == 0 {
		o.MaxSamples = 240
	}
	if o.CommitTimeout == 0 {
		o.CommitTimeout = 15 * time.Millisecond
	}
}

// FaultPlan builds the kill-one-replica schedule: crash the last replica of
// partition 0 at crashAt sends, restart it at restartAt.
func FaultPlan(seed int64, crashAt, restartAt uint64, victim uint32) *faultnet.Plan {
	return &faultnet.Plan{
		Seed: seed,
		Events: []faultnet.Event{
			{At: crashAt, Op: faultnet.OpCrash, Node: victim},
			{At: restartAt, Op: faultnet.OpRestart, Node: victim},
		},
	}
}

// FaultTimeline runs the kill-one-replica experiment and returns one Point
// per sample interval: X is seconds since the run started, Goodput is
// committed transactions per second within the interval (from the cluster's
// commit counters), and Path carries the fast/slow split that makes the
// coordination shift visible. Sampling continues until opts.Tail samples
// after the replica restart, or opts.MaxSamples.
func FaultTimeline(w io.Writer, opts FaultOptions) ([]Point, error) {
	opts.fill()
	cluster, err := meerkat.NewCluster(meerkat.Config{
		Cores:         opts.Cores,
		Seed:          opts.Seed,
		CommitTimeout: opts.CommitTimeout,
		Faults:        FaultPlan(opts.Seed, opts.CrashAt, opts.RestartAt, 2),
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	value := workload.Value(64)
	for i := 0; i < opts.Keys; i++ {
		cluster.Load(workload.KeyName(i), value)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Lifecycle controller: mirror the injector's crash/restart onto the
	// real replica so the dip exercises state transfer and epoch change.
	// crashedAt / restartedAt hold sample-clock nanoseconds (0 = not yet).
	start := time.Now()
	var crashedAt, restartedAt atomic.Int64
	ctlDone := make(chan struct{})
	go func() {
		defer close(ctlDone)
		for {
			select {
			case ev := <-cluster.FaultEvents():
				p, r, ok := cluster.ReplicaOf(ev.Node)
				if !ok {
					continue
				}
				switch ev.Op {
				case faultnet.OpCrash:
					cluster.CrashReplica(p, r)
					crashedAt.Store(int64(time.Since(start)) | 1)
				case faultnet.OpRestart:
					for {
						if err := cluster.RecoverReplica(p, r); err == nil {
							restartedAt.Store(int64(time.Since(start)) | 1)
							break
						}
						select {
						case <-ctx.Done():
							return
						case <-time.After(10 * time.Millisecond):
						}
					}
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < opts.Clients; i++ {
		cl, err := cluster.NewClient()
		if err != nil {
			cancel()
			wg.Wait()
			<-ctlDone
			return nil, err
		}
		wg.Add(1)
		go func(cl *meerkat.Client, i int) {
			defer wg.Done()
			defer cl.Close()
			rng := rand.New(rand.NewSource(opts.Seed + int64(i)*7919))
			gen := workload.NewYCSBT(workload.NewUniform(opts.Keys))
			var gets []string
			for ctx.Err() == nil {
				spec := gen.Next(rng)
				gets = spec.AppendGets(gets[:0])
				cl.Run(ctx, func(t *meerkat.Txn) error {
					if len(gets) > 0 {
						if _, err := t.ReadManyCtx(ctx, gets); err != nil {
							return err
						}
					}
					for _, k := range spec.RMWs {
						t.Write(k, value)
					}
					for _, k := range spec.Writes {
						t.Write(k, value)
					}
					return nil
				})
			}
		}(cl, i)
	}

	fmt.Fprintf(w, "# kill-one-replica timeline: crash at %d sends, restart at %d (seed %d)\n",
		opts.CrashAt, opts.RestartAt, opts.Seed)
	fmt.Fprintf(w, "%8s %12s %9s %8s %8s %7s  %s\n",
		"t", "goodput", "abort%", "fast", "slow", "fast%", "phase")

	var points []Point
	prev := cluster.Obs().Snapshot()
	tail := 0
	for sample := 0; sample < opts.MaxSamples && tail < opts.Tail; sample++ {
		time.Sleep(opts.Interval)
		snap := cluster.Obs().Snapshot()
		d := snap.Sub(prev)
		prev = snap
		elapsed := time.Since(start)

		path := pathStats(d)
		commits := path.FastCommits + path.SlowCommits
		aborts := path.ValidationAborts + path.AcceptAborts
		p := Point{
			System:  string(SystemMeerkat),
			X:       elapsed.Seconds(),
			Goodput: float64(commits) / opts.Interval.Seconds(),
			Path:    path,
		}
		if commits+aborts > 0 {
			p.AbortRate = float64(aborts) / float64(commits+aborts)
		}
		points = append(points, p)

		phase := "healthy"
		switch {
		case restartedAt.Load() != 0 && elapsed > time.Duration(restartedAt.Load()):
			phase = "recovered"
			tail++
		case crashedAt.Load() != 0 && elapsed > time.Duration(crashedAt.Load()):
			phase = "crashed"
		}
		fmt.Fprintf(w, "%7.2fs %12.0f %8.1f%% %8d %8d %6.1f%%  %s\n",
			p.X, p.Goodput, p.AbortRate*100, path.FastCommits, path.SlowCommits,
			path.FastFraction()*100, phase)
	}
	cancel()
	wg.Wait()
	<-ctlDone

	if restartedAt.Load() == 0 {
		fired := cluster.FaultNetwork().Stats().EventsFired.Load()
		return points, fmt.Errorf("bench: fault schedule incomplete after %d samples (%d/2 events fired)",
			len(points), fired)
	}
	return points, nil
}
