package bench

import (
	"encoding/json"
	"os"
	"sort"
	"time"
)

// JSONPoint is the machine-readable form of one measured data point, written
// by WriteJSON for downstream plotting and regression tracking.
type JSONPoint struct {
	System    string  `json:"system"`
	X         float64 `json:"x"`
	Goodput   float64 `json:"goodput_tps"`
	AbortRate float64 `json:"abort_rate"`
	P50NS     int64   `json:"p50_ns"`
	P99NS     int64   `json:"p99_ns"`
	P999NS    int64   `json:"p999_ns"`

	FastCommits      uint64  `json:"fast_commits"`
	SlowCommits      uint64  `json:"slow_commits"`
	FastFraction     float64 `json:"fast_fraction"`
	ValidationAborts uint64  `json:"validation_aborts"`
	AcceptAborts     uint64  `json:"accept_aborts"`
	TimeoutAborts    uint64  `json:"timeout_aborts"`
	Retries          uint64  `json:"retries"`

	// Wire-level cost, present only for the UDP transport experiment.
	SyscallsPerTxn      float64 `json:"syscalls_per_txn,omitempty"`
	DatagramsPerSyscall float64 `json:"datagrams_per_syscall,omitempty"`
}

// JSONReport is the top-level structure WriteJSON emits: every experiment's
// points keyed by experiment name.
type JSONReport struct {
	GeneratedAt string                 `json:"generated_at"`
	Experiments map[string][]JSONPoint `json:"experiments"`
}

// Report accumulates points across experiments for a final WriteJSON.
type Report struct {
	exps map[string][]Point
}

// Add records the points of one experiment under name. Appending to the same
// name merges (e.g. fig6a and fig7a share a sweep).
func (r *Report) Add(name string, pts []Point) {
	if r.exps == nil {
		r.exps = make(map[string][]Point)
	}
	r.exps[name] = append(r.exps[name], pts...)
}

// Empty reports whether nothing was recorded.
func (r *Report) Empty() bool { return len(r.exps) == 0 }

// WriteJSON writes the accumulated report to path, indented for diffing.
func (r *Report) WriteJSON(path string) error {
	out := JSONReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Experiments: make(map[string][]JSONPoint, len(r.exps)),
	}
	names := make([]string, 0, len(r.exps))
	for name := range r.exps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pts := make([]JSONPoint, len(r.exps[name]))
		for i, p := range r.exps[name] {
			pts[i] = JSONPoint{
				System:           p.System,
				X:                p.X,
				Goodput:          p.Goodput,
				AbortRate:        p.AbortRate,
				P50NS:            p.P50.Nanoseconds(),
				P99NS:            p.P99.Nanoseconds(),
				P999NS:           p.P999.Nanoseconds(),
				FastCommits:      p.Path.FastCommits,
				SlowCommits:      p.Path.SlowCommits,
				FastFraction:     p.Path.FastFraction(),
				ValidationAborts: p.Path.ValidationAborts,
				AcceptAborts:     p.Path.AcceptAborts,
				TimeoutAborts:    p.Path.TimeoutAborts,
				Retries:          p.Path.Retries,

				SyscallsPerTxn:      p.SyscallsPerTxn,
				DatagramsPerSyscall: p.DatagramsPerSyscall,
			}
		}
		out.Experiments[name] = pts
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
