package bench

import (
	"fmt"
	"io"

	"meerkat/internal/workload"
)

// This file measures what the typed commutative operations buy under
// contention: the same hot-counter workload swept across Zipf skew, once as
// the classic OCC read-modify-write (read the counter, write value+1 back)
// and once as a server-side Increment op. The RMW rows abort whenever two
// clients race on a hot key; the op rows carry no read version, so the
// replicas merge concurrent bumps at their commit timestamps and the abort
// rate stays near zero no matter how skewed the key popularity gets.

// OpsZipfOptions parameterizes the skew sweep beyond the shared Options.
type OpsZipfOptions struct {
	Options
	// Thetas overrides the swept Zipf coefficients. Defaults to the
	// contention ladder 0.5, 0.7, 0.9, 0.95, 0.99.
	Thetas []float64
}

// OpsZipfSweep measures RMW-via-Put versus RMW-via-Increment across Zipf skew
// on the Meerkat system and returns two Points per theta, X carrying the
// coefficient.
func OpsZipfSweep(w io.Writer, opts OpsZipfOptions) ([]Point, error) {
	opts.Options.fill()
	if opts.Clients == 0 {
		opts.Clients = 128
	}
	if len(opts.Thetas) == 0 {
		opts.Thetas = []float64{0.5, 0.7, 0.9, 0.95, 0.99}
	}
	// A small keyspace keeps the Zipf head genuinely hot at the default
	// client count — the point is contention on the head, not I/O volume.
	if opts.Keys > 256 {
		opts.Keys = 256
	}
	fmt.Fprintf(w, "# hot-counter workload, %d closed-loop clients, %d keys: RMW write-back vs server-side increment across Zipf skew\n",
		opts.Clients, opts.Keys)
	fmt.Fprintf(w, "%-14s %6s %12s %9s %10s %10s\n",
		"row", "theta", "goodput", "abort%", "p50", "p99")
	var out []Point
	for _, theta := range opts.Thetas {
		for _, viaOp := range []bool{false, true} {
			p, err := runZipfPoint(theta, viaOp, opts)
			if err != nil {
				return out, err
			}
			out = append(out, p)
			fmt.Fprintf(w, "%-14s %6.2f %12.0f %8.1f%% %10v %10v\n",
				p.System, theta, p.Goodput, p.AbortRate*100, p.P50, p.P99)
		}
	}
	return out, nil
}

// runZipfPoint measures one (theta, encoding) cell on a fresh cluster.
func runZipfPoint(theta float64, viaOp bool, opts OpsZipfOptions) (Point, error) {
	sys, err := NewSystem(SystemConfig{Kind: SystemMeerkat, Obs: opts.Obs})
	if err != nil {
		return Point{}, err
	}
	defer sys.Close()
	name := "rmw-put"
	if viaOp {
		name = "incr-op"
	}
	res, err := Run(RunConfig{
		System: sys,
		NewGenerator: func() workload.Generator {
			return workload.NewCounter(workload.NewChooser(opts.Keys, theta), viaOp)
		},
		Clients: opts.Clients,
		Keys:    opts.Keys,
		Warmup:  opts.Warmup,
		Measure: opts.Measure,
		Seed:    opts.Seed,
	})
	if err != nil {
		return Point{}, err
	}
	return Point{
		System:    name,
		X:         theta,
		Goodput:   res.Goodput(),
		AbortRate: res.AbortRate(),
		P50:       res.Latency.Percentile(0.50),
		P99:       res.Latency.Percentile(0.99),
		P999:      res.Latency.Percentile(0.999),
		Path:      res.Path,
	}, nil
}
