package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"meerkat"
	"meerkat/internal/workload"
)

// This file measures what durability costs the commit hot path: the same
// Meerkat cluster and Retwis workload fully in memory, then with the
// per-core write-ahead log under each fsync policy. The figures of merit
// are goodput retained versus the in-memory row and fsyncs per committed
// transaction — group commit's whole point is to keep the latter far below
// one while SyncAlways shows the price of paying disk latency inline.

// WALOptions parameterizes the durability sweep beyond the shared Options.
type WALOptions struct {
	Options
	// Dir is the parent directory for the per-row data directories; empty
	// uses a throwaway directory under os.TempDir that the sweep removes.
	Dir string
	// GroupCommitInterval overrides the batch fsync cadence (default 2ms).
	GroupCommitInterval time.Duration
}

// WALSweep measures the durability comparison and returns one Point per
// row: in-memory, then the WAL under none/batch/always fsync policies.
func WALSweep(w io.Writer, opts WALOptions) ([]Point, error) {
	opts.Options.fill()
	if opts.Clients == 0 {
		opts.Clients = 8
	}
	if opts.Dir == "" {
		dir, err := os.MkdirTemp("", "meerkat-bench-wal-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		opts.Dir = dir
	}
	rows := []struct {
		name    string
		durable bool
		sync    meerkat.SyncPolicy
	}{
		{"mem", false, 0},
		{"wal-none", true, meerkat.SyncNone},
		{"wal-batch", true, meerkat.SyncBatch},
		{"wal-always", true, meerkat.SyncAlways},
	}
	fmt.Fprintf(w, "# retwis uniform, %d closed-loop clients: durability cost (goodput, fsyncs amortized by group commit)\n", opts.Clients)
	fmt.Fprintf(w, "%-11s %12s %9s %10s %10s %11s\n",
		"row", "goodput", "abort%", "p50", "p99", "fsyncs/txn")
	var out []Point
	for _, row := range rows {
		cfg := meerkat.Config{Obs: opts.Obs}
		if row.durable {
			cfg.Durability = meerkat.Durability{
				DataDir:             fmt.Sprintf("%s/%s", opts.Dir, row.name),
				Sync:                row.sync,
				GroupCommitInterval: opts.GroupCommitInterval,
				SnapshotInterval:    -1, // measure the log, not the snapshotter
			}
		}
		p, err := runWALPoint(row.name, cfg, opts)
		if err != nil {
			return out, err
		}
		out = append(out, p)
		fmt.Fprintf(w, "%-11s %12.0f %8.1f%% %10v %10v %11.4f\n",
			p.System, p.Goodput, p.AbortRate*100, p.P50, p.P99, p.FsyncsPerTxn)
	}
	return out, nil
}

// runWALPoint builds a cluster per cfg, drives it with the closed-loop
// harness, and annotates the Point with the WAL's fsync amortization.
func runWALPoint(name string, cfg meerkat.Config, opts WALOptions) (Point, error) {
	cluster, err := meerkat.NewCluster(cfg)
	if err != nil {
		return Point{}, err
	}
	sys := &meerkatSystem{kind: SystemKind(name), cluster: cluster}
	defer sys.Close()
	// Preload outside the harness so the bulk-load appends (one per key,
	// fsynced inline under SyncAlways) can be snapshotted away before the
	// measured traffic starts.
	val := workload.Value(64)
	for i := 0; i < opts.Keys; i++ {
		cluster.Load(workload.KeyName(i), val)
	}
	base, _ := cluster.WALStats()
	res, err := Run(RunConfig{
		System:       sys,
		NewGenerator: genFactory("retwis", opts.Keys, 0),
		Clients:      opts.Clients,
		Keys:         opts.Keys,
		Warmup:       opts.Warmup,
		Measure:      opts.Measure,
		Seed:         opts.Seed,
		SkipLoad:     true,
	})
	if err != nil {
		return Point{}, err
	}
	p := Point{
		System:    name,
		Goodput:   res.Goodput(),
		AbortRate: res.AbortRate(),
		P50:       res.Latency.Percentile(0.50),
		P99:       res.Latency.Percentile(0.99),
		P999:      res.Latency.Percentile(0.999),
		Path:      res.Path,
	}
	// The WAL counters cover warmup + measure (preload was snapshotted
	// away), a longer span than the measured window — so derive the commit
	// count for the same span from the append delta: every replica logs
	// every commit exactly once.
	if s, ok := cluster.WALStats(); ok {
		syncs := s.Syncs - base.Syncs
		appends := s.Appends - base.Appends
		if commits := appends / 3; commits > 0 {
			p.FsyncsPerTxn = float64(syncs) / float64(commits)
		}
	}
	return p, nil
}
