package bench

import (
	"io"
	"strings"
	"testing"
	"time"

	"meerkat/internal/workload"
)

func smokeRun(t *testing.T, kind SystemKind) Result {
	t.Helper()
	sys, err := NewSystem(SystemConfig{Kind: kind, Cores: 2})
	if err != nil {
		t.Fatalf("NewSystem(%s): %v", kind, err)
	}
	defer sys.Close()
	res, err := Run(RunConfig{
		System:       sys,
		NewGenerator: genFactory("ycsb-t", 1024, 0),
		Clients:      4,
		Keys:         1024,
		Warmup:       20 * time.Millisecond,
		Measure:      100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run(%s): %v", kind, err)
	}
	return res
}

func TestAllSystemsCommitWork(t *testing.T) {
	for _, kind := range AllSystems {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			res := smokeRun(t, kind)
			if res.Counters.Committed == 0 {
				t.Fatalf("%s committed nothing: %+v", kind, res.Counters)
			}
			if res.Counters.Errors > res.Counters.Committed/10 {
				t.Fatalf("%s error rate too high: %+v", kind, res.Counters)
			}
			if res.Goodput() <= 0 {
				t.Fatalf("%s goodput %f", kind, res.Goodput())
			}
			if res.Latency.Count() == 0 {
				t.Fatalf("%s recorded no latencies", kind)
			}
		})
	}
}

func TestRetwisWorkloadRuns(t *testing.T) {
	sys, err := NewSystem(SystemConfig{Kind: SystemMeerkat, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res, err := Run(RunConfig{
		System:       sys,
		NewGenerator: genFactory("retwis", 2048, 0.6),
		Clients:      4,
		Keys:         2048,
		Warmup:       20 * time.Millisecond,
		Measure:      100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Committed == 0 {
		t.Fatalf("retwis committed nothing: %+v", res.Counters)
	}
}

func TestHighContentionAbortsRise(t *testing.T) {
	// The qualitative core of Figure 7: Meerkat's abort rate at theta=0.95
	// on a small keyspace must exceed its uniform abort rate.
	measure := func(theta float64) float64 {
		sys, err := NewSystem(SystemConfig{Kind: SystemMeerkat, Cores: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		res, err := Run(RunConfig{
			System:       sys,
			NewGenerator: genFactory("ycsb-t", 512, theta),
			Clients:      8,
			Keys:         512,
			Warmup:       20 * time.Millisecond,
			Measure:      150 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.AbortRate()
	}
	low, high := measure(0), measure(0.95)
	if high <= low {
		t.Fatalf("abort rate did not rise with contention: uniform %.3f, zipf0.95 %.3f", low, high)
	}
}

func TestFig1InprocSmoke(t *testing.T) {
	r, err := RunFig1(Fig1Config{
		Transport:     Fig1Inproc,
		ServerThreads: 2,
		Clients:       4,
		Measure:       100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Puts == 0 {
		t.Fatal("no PUTs completed")
	}
	if r.Transport != "erpc" {
		t.Fatalf("transport label %q", r.Transport)
	}
}

func TestFig1UDPSmoke(t *testing.T) {
	r, err := RunFig1(Fig1Config{
		Transport:     Fig1UDP,
		ServerThreads: 2,
		Clients:       2,
		Measure:       100 * time.Millisecond,
		UDPBasePort:   33000,
	})
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	if r.Puts == 0 {
		t.Fatal("no PUTs completed over UDP")
	}
}

func TestFig1CounterConfig(t *testing.T) {
	r, err := RunFig1(Fig1Config{
		Transport:     Fig1Inproc,
		ServerThreads: 2,
		Clients:       4,
		SharedCounter: true,
		Measure:       50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.SharedCounter || r.Puts == 0 {
		t.Fatalf("result %+v", r)
	}
}

func TestTablePrinters(t *testing.T) {
	var b strings.Builder
	Table1(&b)
	if !strings.Contains(b.String(), "meerkat-pb") {
		t.Fatal("Table1 missing rows")
	}
	b.Reset()
	Table2(&b, 20000)
	out := b.String()
	for _, kind := range []string{"add-user", "follow-unfollow", "post-tweet", "load-timeline"} {
		if !strings.Contains(out, kind) {
			t.Fatalf("Table2 missing %s:\n%s", kind, out)
		}
	}
}

func TestZipfSweepTiny(t *testing.T) {
	pts, err := ZipfSweep(io.Discard, "ycsb-t", []float64{0, 0.9}, 2, Options{
		Measure: 60 * time.Millisecond,
		Warmup:  20 * time.Millisecond,
		Keys:    512,
		Clients: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.Goodput <= 0 {
			t.Fatalf("zero goodput: %+v", p)
		}
	}
}

func TestThreadSweepTiny(t *testing.T) {
	pts, err := ThreadSweep(io.Discard, "ycsb-t", []int{1}, Options{
		Measure: 50 * time.Millisecond,
		Warmup:  10 * time.Millisecond,
		Keys:    512,
		Clients: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(AllSystems) {
		t.Fatalf("got %d points", len(pts))
	}
}

func TestRunSpecShapes(t *testing.T) {
	sys, err := NewSystem(SystemConfig{Kind: SystemMeerkat, Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Load(workload.KeyName(0), []byte("v"))
	sys.Load(workload.KeyName(1), []byte("v"))
	cl, err := sys.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	spec := workload.TxnSpec{
		Reads:  []string{workload.KeyName(0)},
		RMWs:   []string{workload.KeyName(1)},
		Writes: []string{workload.KeyName(2)},
	}
	var gets []string
	ok, err := runSpec(cl, &spec, []byte("x"), &gets)
	if err != nil || !ok {
		t.Fatalf("runSpec: %v %v", ok, err)
	}
	// The scratch holds the assembled read set (reads then RMW reads).
	if len(gets) != 2 || gets[0] != workload.KeyName(0) || gets[1] != workload.KeyName(1) {
		t.Fatalf("gets scratch = %v", gets)
	}
}
