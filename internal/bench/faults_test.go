package bench

import (
	"io"
	"testing"
	"time"
)

// TestFaultTimelineSmoke runs a miniature kill-one-replica timeline and
// checks the coordination shift the experiment exists to show: slow-path
// commits appear while the replica is down, and the fast path is committing
// again in the recovered tail.
func TestFaultTimelineSmoke(t *testing.T) {
	pts, err := FaultTimeline(io.Discard, FaultOptions{
		Clients:  4,
		Keys:     256,
		Seed:     3,
		Interval: 100 * time.Millisecond,
		CrashAt:  4000, RestartAt: 8000,
		Tail: 2,
	})
	if err != nil {
		t.Fatalf("FaultTimeline: %v", err)
	}
	if len(pts) < 3 {
		t.Fatalf("only %d samples", len(pts))
	}
	var slow, fastTail uint64
	for _, p := range pts {
		slow += p.Path.SlowCommits
	}
	for _, p := range pts[len(pts)-2:] {
		fastTail += p.Path.FastCommits
	}
	if slow == 0 {
		t.Error("no slow-path commits during the crash window")
	}
	if fastTail == 0 {
		t.Error("no fast-path commits after recovery")
	}
}
