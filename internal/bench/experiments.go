package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"meerkat/internal/obs"
	"meerkat/internal/workload"
)

// This file defines the experiment sweeps that regenerate the evaluation's
// figures from the real implementation. Absolute numbers depend on the host
// (the paper used 3x40-core servers with kernel-bypass NICs; see
// EXPERIMENTS.md), but the comparisons — which system wins, how abort rates
// move with contention — come from these sweeps. The companion simulator
// (internal/sim) regenerates the multicore scaling *shapes* that a
// small host cannot exhibit.

// Options bounds experiment durations so the full suite stays tractable.
type Options struct {
	Measure time.Duration // per-point measured window
	Warmup  time.Duration
	Keys    int
	Clients int // closed-loop clients per point (0 = 2x threads)
	Seed    int64
	// Obs, when non-nil, is wired through every system the sweep builds,
	// so one live exporter observes the whole run.
	Obs *obs.Registry
}

func (o *Options) fill() {
	if o.Measure == 0 {
		o.Measure = 500 * time.Millisecond
	}
	if o.Warmup == 0 {
		o.Warmup = 100 * time.Millisecond
	}
	if o.Keys == 0 {
		o.Keys = 65536
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Point is one measured data point of a figure.
type Point struct {
	System    string
	X         float64 // threads (Figs 4/5) or Zipf coefficient (Figs 6/7)
	Goodput   float64
	AbortRate float64
	P50       time.Duration
	P99       time.Duration
	P999      time.Duration
	Path      PathStats // coordination-path breakdown of the window

	// Wire-level cost, set by the UDP transport experiment only: socket
	// syscalls per committed transaction and datagrams moved per send
	// syscall (the batching the transport amortizes; 1.0 means no
	// amortization).
	SyscallsPerTxn      float64
	DatagramsPerSyscall float64

	// FsyncsPerTxn is set by the WAL durability experiment only: fsync
	// calls per committed transaction (group commit amortizes this far
	// below 1; SyncAlways pays at least one per commit per replica).
	FsyncsPerTxn float64
}

// genFactory builds per-client generator factories for a workload/theta.
func genFactory(name string, keys int, theta float64) func() workload.Generator {
	chooser := workload.NewChooser(keys, theta)
	if name == "retwis" {
		return func() workload.Generator { return workload.NewRetwis(chooser) }
	}
	return func() workload.Generator { return workload.NewYCSBT(chooser) }
}

// runPoint measures one (system, workload, theta, threads) cell.
func runPoint(kind SystemKind, wl string, theta float64, threads int, opts Options) (Point, error) {
	opts.fill()
	sys, err := NewSystem(SystemConfig{Kind: kind, Cores: threads, Obs: opts.Obs})
	if err != nil {
		return Point{}, err
	}
	defer sys.Close()
	clients := opts.Clients
	if clients == 0 {
		clients = 2 * threads
	}
	res, err := Run(RunConfig{
		System:       sys,
		NewGenerator: genFactory(wl, opts.Keys, theta),
		Clients:      clients,
		Keys:         opts.Keys,
		Warmup:       opts.Warmup,
		Measure:      opts.Measure,
		Seed:         opts.Seed,
	})
	if err != nil {
		return Point{}, err
	}
	return Point{
		System:    string(kind),
		Goodput:   res.Goodput(),
		AbortRate: res.AbortRate(),
		P50:       res.Latency.Percentile(0.50),
		P99:       res.Latency.Percentile(0.99),
		P999:      res.Latency.Percentile(0.999),
		Path:      res.Path,
	}, nil
}

// ThreadSweep regenerates the measured analogue of Figure 4 (wl="ycsb-t")
// or Figure 5 (wl="retwis"): goodput as server threads grow, uniform keys,
// for all four systems.
func ThreadSweep(w io.Writer, wl string, threads []int, opts Options) ([]Point, error) {
	var out []Point
	fmt.Fprintf(w, "# %s uniform: goodput (txns/sec) vs server threads\n", wl)
	fmt.Fprintf(w, "%-12s %8s %12s %9s %10s %10s %7s\n", "system", "threads", "goodput", "abort%", "p50", "p99", "fast%")
	for _, kind := range AllSystems {
		for _, th := range threads {
			p, err := runPoint(kind, wl, 0, th, opts)
			if err != nil {
				return out, err
			}
			p.X = float64(th)
			out = append(out, p)
			fmt.Fprintf(w, "%-12s %8d %12.0f %8.1f%% %10v %10v %6.1f%%\n",
				p.System, th, p.Goodput, p.AbortRate*100, p.P50, p.P99, p.Path.FastFraction()*100)
		}
	}
	return out, nil
}

// ZipfSweep regenerates Figures 6 and 7: goodput and abort rate for Meerkat
// vs Meerkat-PB across Zipf coefficients at a fixed thread count
// (wl="ycsb-t" for 6a/7a, "retwis" for 6b/7b).
func ZipfSweep(w io.Writer, wl string, thetas []float64, threads int, opts Options) ([]Point, error) {
	var out []Point
	fmt.Fprintf(w, "# %s, %d server threads: goodput and abort rate vs zipf coefficient\n", wl, threads)
	fmt.Fprintf(w, "%-12s %8s %12s %9s %10s %10s %7s\n", "system", "zipf", "goodput", "abort%", "p50", "p99", "fast%")
	for _, kind := range []SystemKind{SystemMeerkat, SystemMeerkatPB} {
		for _, theta := range thetas {
			p, err := runPoint(kind, wl, theta, threads, opts)
			if err != nil {
				return out, err
			}
			p.X = theta
			out = append(out, p)
			fmt.Fprintf(w, "%-12s %8.2f %12.0f %8.1f%% %10v %10v %6.1f%%\n",
				p.System, theta, p.Goodput, p.AbortRate*100, p.P50, p.P99, p.Path.FastFraction()*100)
		}
	}
	return out, nil
}

// Fig1Sweep regenerates the measured analogue of Figure 1: PUT throughput
// over the inproc (kernel-bypass-class) and UDP transports, with and
// without the shared atomic counter.
func Fig1Sweep(w io.Writer, threads []int, measure time.Duration) ([]Fig1Result, error) {
	var out []Fig1Result
	fmt.Fprintf(w, "# PUT throughput (ops/sec) vs server threads\n")
	fmt.Fprintf(w, "%-8s %8s %9s %14s\n", "stack", "threads", "counter", "puts/sec")
	port := 31000
	for _, tr := range []Fig1Transport{Fig1Inproc, Fig1UDP} {
		for _, counter := range []bool{false, true} {
			for _, th := range threads {
				r, err := RunFig1(Fig1Config{
					Transport:     tr,
					ServerThreads: th,
					SharedCounter: counter,
					Measure:       measure,
					UDPBasePort:   port,
				})
				if err != nil {
					return out, err
				}
				port += 512 // fresh ports per UDP run
				out = append(out, r)
				fmt.Fprintf(w, "%-8s %8d %9v %14.0f\n", r.Transport, th, counter, r.Throughput())
			}
		}
	}
	return out, nil
}

// Table1 prints the coordination matrix of the four prototypes (§6.1).
func Table1(w io.Writer) {
	fmt.Fprintln(w, "# Table 1: coordination structure of the evaluation prototypes")
	fmt.Fprintf(w, "%-12s %-24s %-26s\n", "system", "cross-core coordination", "cross-replica coordination")
	fmt.Fprintf(w, "%-12s %-24s %-26s\n", "kuafu++", "yes (counter+log+record)", "yes (primary-backup)")
	fmt.Fprintf(w, "%-12s %-24s %-26s\n", "tapir", "yes (shared record)", "no")
	fmt.Fprintf(w, "%-12s %-24s %-26s\n", "meerkat-pb", "no", "yes (primary-backup)")
	fmt.Fprintf(w, "%-12s %-24s %-26s\n", "meerkat", "no", "no")
}

// Table2 prints the Retwis mix as generated, to compare with the paper's
// Table 2.
func Table2(w io.Writer, samples int) {
	gen := workload.NewRetwis(workload.NewUniform(1 << 20))
	rng := newRand(1)
	counts := map[string]int{}
	gets := map[string]int{}
	puts := map[string]int{}
	for i := 0; i < samples; i++ {
		s := gen.Next(rng)
		counts[s.Kind]++
		gets[s.Kind] += len(s.Reads) + len(s.RMWs)
		puts[s.Kind] += len(s.RMWs) + len(s.Writes)
	}
	fmt.Fprintln(w, "# Table 2: generated Retwis mix")
	fmt.Fprintf(w, "%-16s %8s %8s %10s\n", "transaction", "gets", "puts", "workload%")
	for _, kind := range []string{"add-user", "follow-unfollow", "post-tweet", "load-timeline"} {
		n := counts[kind]
		if n == 0 {
			continue
		}
		fmt.Fprintf(w, "%-16s %8.1f %8.1f %9.1f%%\n",
			kind, float64(gets[kind])/float64(n), float64(puts[kind])/float64(n),
			100*float64(n)/float64(samples))
	}
}

// newRand isolates the single math/rand dependency of the table printers.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
