package bench

import (
	"fmt"
	"io"
	"time"

	"meerkat/internal/stats"
	"meerkat/internal/workload"
)

// LatencySweep measures unloaded commit latency across the four systems —
// the quantitative backing for the paper's §6.2 remark that Meerkat "does
// not sacrifice latency to achieve scalability ... the protocol saves one
// round trip compared to most state-of-the-art systems". One synchronous
// client per system issues YCSB-T transactions; reported are p50/p99 and
// the mean.
//
// Expected shape: Meerkat's fast path costs one validate round trip; the
// primary-backup systems pay submit + replicate + ack before replying, so
// at equal message cost their unloaded latency is comparable or higher
// once the replication round is on the critical path. (On a loaded system
// the queueing differences of Figure 4 dominate instead.)
func LatencySweep(w io.Writer, txns int, keys int) error {
	if txns <= 0 {
		txns = 2000
	}
	if keys <= 0 {
		keys = 4096
	}
	fmt.Fprintln(w, "# unloaded commit latency, YCSB-T (1 RMW), 3 replicas")
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s\n", "system", "mean", "p50", "p99", "commit%")
	for _, kind := range AllSystems {
		sys, err := NewSystem(SystemConfig{Kind: kind, Cores: 2})
		if err != nil {
			return err
		}
		val := workload.Value(64)
		for i := 0; i < keys; i++ {
			sys.Load(workload.KeyName(i), val)
		}
		cl, err := sys.NewClient()
		if err != nil {
			sys.Close()
			return err
		}
		gen := workload.NewYCSBT(workload.NewUniform(keys))
		rng := newRand(7)
		var hist stats.Histogram
		var gets []string
		committed := 0
		for i := 0; i < txns; i++ {
			spec := gen.Next(rng)
			start := time.Now()
			ok, err := runSpec(cl, &spec, val, &gets)
			if err != nil {
				continue
			}
			hist.Record(time.Since(start))
			if ok {
				committed++
			}
		}
		cl.Close()
		sys.Close()
		fmt.Fprintf(w, "%-12s %10v %10v %10v %9.1f%%\n",
			kind, hist.Mean(), hist.Percentile(0.5), hist.Percentile(0.99),
			100*float64(committed)/float64(txns))
	}
	return nil
}

// RetwisLatency measures unloaded latency per Retwis transaction kind on
// Meerkat. Retwis is the workload the batched execution phase targets:
// load-timeline reads up to ten keys and pays one coordinator round trip per
// touched partition instead of one per key, so its p50 is the experiment's
// headline number. One synchronous client, Table 2's mix.
func RetwisLatency(w io.Writer, txns int, keys int) error {
	if txns <= 0 {
		txns = 8000
	}
	if keys <= 0 {
		keys = 4096
	}
	sys, err := NewSystem(SystemConfig{Kind: SystemMeerkat, Cores: 2})
	if err != nil {
		return err
	}
	defer sys.Close()
	val := workload.Value(64)
	for i := 0; i < keys; i++ {
		sys.Load(workload.KeyName(i), val)
	}
	cl, err := sys.NewClient()
	if err != nil {
		return err
	}
	defer cl.Close()
	gen := workload.NewRetwis(workload.NewUniform(keys))
	rng := newRand(7)
	hists := make(map[string]*stats.Histogram)
	order := []string{} // first-seen order keeps the output stable
	var gets []string
	for i := 0; i < txns; i++ {
		spec := gen.Next(rng)
		start := time.Now()
		if _, err := runSpec(cl, &spec, val, &gets); err != nil {
			continue
		}
		h := hists[spec.Kind]
		if h == nil {
			h = &stats.Histogram{}
			hists[spec.Kind] = h
			order = append(order, spec.Kind)
		}
		h.Record(time.Since(start))
	}
	fmt.Fprintln(w, "# unloaded latency by Retwis txn kind, meerkat, 3 replicas")
	fmt.Fprintf(w, "%-16s %8s %10s %10s %10s\n", "kind", "count", "mean", "p50", "p99")
	for _, kind := range order {
		h := hists[kind]
		fmt.Fprintf(w, "%-16s %8d %10v %10v %10v\n",
			kind, h.Count(), h.Mean(), h.Percentile(0.5), h.Percentile(0.99))
	}
	return nil
}
