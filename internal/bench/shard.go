package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"meerkat"
	"meerkat/internal/obs"
	"meerkat/internal/shardmap"
	"meerkat/internal/workload"
)

// This file measures what the sharded cluster layer buys: Retwis goodput at
// 1, 2, and 4 shards, plus a timeline of a shard split landing under load.
//
// A single host cannot show shard scaling directly — every "shard" is the
// same CPU — so the sweep runs under the in-process transport's capacity
// model (Config.InprocServiceTime): each replica endpoint is capped at one
// message per service interval, exactly the per-machine packet budget that
// makes sharding pay on real hardware. Adding shards adds replica endpoints,
// i.e. capacity; whether goodput follows depends on the client-side routing
// actually spreading load and on transactions staying on few shards. Clients
// are homed round-robin across shards and pick Locality of their keys from
// their home shard — the deployed Retwis pattern, where a user's profile,
// tweets, and timeline live together and only follows cross users.

// ShardOptions sizes the shard-count sweep beyond the shared Options.
type ShardOptions struct {
	Options
	// Shards lists the swept shard counts. Default 1, 2, 4.
	Shards []int
	// MaxShards is the provisioned group count, constant across cells so
	// every cell runs on identical hardware and only the shard map differs.
	// Default: the largest swept shard count.
	MaxShards int
	// Cores per replica. Default 1: the capacity model meters per-endpoint,
	// so one core per replica keeps "more shards" the only capacity lever.
	Cores int
	// ServiceTime is the per-message service interval of every replica
	// endpoint (the capacity model). Default 200µs.
	ServiceTime time.Duration
	// Locality is the probability each key a client picks lives on its home
	// shard. Default 0.95; the remainder is uniform over the whole keyspace,
	// so cross-shard transactions stay a steady fraction of the mix.
	Locality float64
}

func (o *ShardOptions) fill() {
	if o.Keys == 0 {
		o.Keys = 16384
	}
	o.Options.fill()
	if o.Clients == 0 {
		// Enough closed-loop demand to saturate the single-shard cell's
		// endpoint capacity; below that, queueing latency rather than
		// capacity sets goodput and the scaling curve flattens.
		o.Clients = 128
	}
	if len(o.Shards) == 0 {
		o.Shards = []int{1, 2, 4}
	}
	if o.MaxShards == 0 {
		for _, n := range o.Shards {
			if n > o.MaxShards {
				o.MaxShards = n
			}
		}
	}
	if o.Cores == 0 {
		o.Cores = 1
	}
	if o.ServiceTime == 0 {
		o.ServiceTime = 200 * time.Microsecond
	}
	if o.Locality == 0 {
		o.Locality = 0.95
	}
}

// homedChooser picks key indices from one shard's slice of the keyspace with
// probability locality, and uniformly from the whole keyspace otherwise.
// Immutable, like every KeyChooser.
type homedChooser struct {
	home     []int
	n        int
	locality float64
}

func (c *homedChooser) Next(rng *rand.Rand) int {
	if rng.Float64() < c.locality {
		return c.home[rng.Intn(len(c.home))]
	}
	return rng.Intn(c.n)
}

func (c *homedChooser) N() int { return c.n }

// shardedSystem adapts a sharded meerkat.DB to the harness System interface.
// It precomputes which keys each shard owns so client generators can be
// homed.
type shardedSystem struct {
	db      *meerkat.DB
	shards  int
	byGroup [][]int // key indices owned by each shard under the v1 map
}

func newShardedSystem(shards int, opts ShardOptions) (*shardedSystem, error) {
	db, err := meerkat.Open(meerkat.Config{
		Shards:            shards,
		MaxShards:         opts.MaxShards,
		Cores:             opts.Cores,
		InprocServiceTime: opts.ServiceTime,
		// The saturated single-shard cell queues tens of milliseconds per
		// message round; a roomy per-round wait keeps timeouts out of the
		// measurement.
		CommitTimeout: 500 * time.Millisecond,
		Seed:          opts.Seed,
		Obs:           opts.Obs,
	})
	if err != nil {
		return nil, err
	}
	m := shardmap.New(shards)
	byGroup := make([][]int, shards)
	for i := 0; i < opts.Keys; i++ {
		g := m.GroupForKey(workload.KeyName(i))
		byGroup[g] = append(byGroup[g], i)
	}
	for g, keys := range byGroup {
		if len(keys) == 0 {
			db.Close()
			return nil, fmt.Errorf("bench: shard %d of %d owns none of the %d keys", g, shards, opts.Keys)
		}
	}
	return &shardedSystem{db: db, shards: shards, byGroup: byGroup}, nil
}

func (s *shardedSystem) Name() string { return fmt.Sprintf("%d-shard", s.shards) }

func (s *shardedSystem) Obs() *obs.Registry { return s.db.Cluster().Obs() }

func (s *shardedSystem) Load(key string, value []byte) { s.db.Load(key, value) }

func (s *shardedSystem) Close() { s.db.Close() }

func (s *shardedSystem) NewClient() (Client, error) {
	cl, err := s.db.Client()
	if err != nil {
		return nil, err
	}
	return &meerkatClient{cl}, nil
}

// chooser returns the homed chooser for one client's home shard.
func (s *shardedSystem) chooser(home int, n int, locality float64) workload.KeyChooser {
	return &homedChooser{home: s.byGroup[home%s.shards], n: n, locality: locality}
}

// ShardSweep measures Retwis goodput at each swept shard count under the
// endpoint capacity model and returns one Point per cell, X carrying the
// shard count. The last line reports the scaling ratio of the largest cell
// over the single-shard baseline.
func ShardSweep(w io.Writer, opts ShardOptions) ([]Point, error) {
	opts.fill()
	fmt.Fprintf(w, "# retwis over the sharded cluster layer: %d closed-loop clients homed round-robin, %d keys, %.0f%% key locality, %v/message endpoint capacity model\n",
		opts.Clients, opts.Keys, opts.Locality*100, opts.ServiceTime)
	fmt.Fprintf(w, "%-8s %12s %8s %9s %10s %10s\n",
		"shards", "goodput", "speedup", "abort%", "p50", "p99")
	var out []Point
	base := 0.0
	for _, shards := range opts.Shards {
		sys, err := newShardedSystem(shards, opts)
		if err != nil {
			return out, err
		}
		var clientSeq atomic.Int64
		res, err := Run(RunConfig{
			System: sys,
			NewGenerator: func() workload.Generator {
				home := int(clientSeq.Add(1) - 1)
				return workload.NewRetwis(sys.chooser(home, opts.Keys, opts.Locality))
			},
			Clients: opts.Clients,
			Keys:    opts.Keys,
			Warmup:  opts.Warmup,
			Measure: opts.Measure,
			Seed:    opts.Seed,
		})
		sys.Close()
		if err != nil {
			return out, err
		}
		p := Point{
			System:    sys.Name(),
			X:         float64(shards),
			Goodput:   res.Goodput(),
			AbortRate: res.AbortRate(),
			P50:       res.Latency.Percentile(0.50),
			P99:       res.Latency.Percentile(0.99),
			P999:      res.Latency.Percentile(0.999),
			Path:      res.Path,
		}
		out = append(out, p)
		speedup := "-"
		if base == 0 {
			base = p.Goodput
		} else if base > 0 {
			speedup = fmt.Sprintf("%.2fx", p.Goodput/base)
		}
		fmt.Fprintf(w, "%-8d %12.0f %8s %8.1f%% %10v %10v\n",
			shards, p.Goodput, speedup, p.AbortRate*100, p.P50, p.P99)
	}
	return out, nil
}

// ShardSplitOptions sizes the split-under-load timeline.
type ShardSplitOptions struct {
	// Clients is the closed-loop client count. Default 32.
	Clients int
	// Keys is the preloaded keyspace. Default 8192 (the split migrates
	// roughly half of it).
	Keys int
	// Cores per replica. Default 1 (see ShardOptions.Cores).
	Cores int
	// Seed drives workload randomness. Default 1.
	Seed int64
	// Interval is the sample width. Default 200ms.
	Interval time.Duration
	// Lead is how many samples run on the single shard before the split
	// fires. Default 5.
	Lead int
	// Tail is how many samples to record after the split returns. Default 10.
	Tail int
	// MaxSamples bounds the run. Default 240.
	MaxSamples int
	// ServiceTime is the endpoint capacity model. Default 200µs.
	ServiceTime time.Duration
	// Locality homes each client's keys on its post-split shard (before the
	// split everything lives on shard 0 regardless). Default 0.95.
	Locality float64
}

func (o *ShardSplitOptions) fill() {
	if o.Clients == 0 {
		o.Clients = 32
	}
	if o.Keys == 0 {
		o.Keys = 8192
	}
	if o.Cores == 0 {
		o.Cores = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Interval == 0 {
		o.Interval = 200 * time.Millisecond
	}
	if o.Lead == 0 {
		o.Lead = 5
	}
	if o.Tail == 0 {
		o.Tail = 10
	}
	if o.MaxSamples == 0 {
		o.MaxSamples = 240
	}
	if o.ServiceTime == 0 {
		o.ServiceTime = 200 * time.Microsecond
	}
	if o.Locality == 0 {
		o.Locality = 0.95
	}
}

// ShardSplitTimeline runs Retwis against a 1-shard cluster (a second shard
// provisioned idle), fires Admin.Split mid-run, and samples goodput per
// interval: the dip while shard 0 seals, fences, and migrates half the
// keyspace, then the recovery onto doubled capacity as clients chase the
// redirects onto the new owner. X is seconds since the run started.
func ShardSplitTimeline(w io.Writer, opts ShardSplitOptions) ([]Point, error) {
	opts.fill()
	db, err := meerkat.Open(meerkat.Config{
		Shards:            1,
		MaxShards:         2,
		Cores:             opts.Cores,
		InprocServiceTime: opts.ServiceTime,
		Seed:              opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	defer db.Close()

	value := workload.Value(64)
	for i := 0; i < opts.Keys; i++ {
		db.Load(workload.KeyName(i), value)
	}

	// Home clients by the post-split map: before the split every key lives
	// on shard 0 anyway, so homing only shapes where load lands afterwards.
	final := shardmap.New(2)
	byGroup := make([][]int, 2)
	for i := 0; i < opts.Keys; i++ {
		g := final.GroupForKey(workload.KeyName(i))
		byGroup[g] = append(byGroup[g], i)
	}

	var wg sync.WaitGroup
	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel(); wg.Wait() }()
	for i := 0; i < opts.Clients; i++ {
		cl, err := db.Client()
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(cl *meerkat.Client, i int) {
			defer wg.Done()
			defer cl.Close()
			rng := rand.New(rand.NewSource(opts.Seed + int64(i)*7919))
			gen := workload.NewRetwis(&homedChooser{
				home: byGroup[i%2], n: opts.Keys, locality: opts.Locality,
			})
			var gets []string
			for ctx.Err() == nil {
				spec := gen.Next(rng)
				gets = spec.AppendGets(gets[:0])
				cl.Run(ctx, func(t *meerkat.Txn) error {
					if len(spec.RMWs)+len(spec.Writes) == 0 {
						t.ReadOnly()
					}
					if len(gets) > 0 {
						if _, err := t.ReadManyCtx(ctx, gets); err != nil {
							return err
						}
					}
					for _, k := range spec.RMWs {
						t.Write(k, value)
					}
					for _, k := range spec.Writes {
						t.Write(k, value)
					}
					return nil
				})
			}
		}(cl, i)
	}

	fmt.Fprintf(w, "# shard split under load: %d clients, %d keys, split fires after %d samples (%v/message endpoint capacity model)\n",
		opts.Clients, opts.Keys, opts.Lead, opts.ServiceTime)
	fmt.Fprintf(w, "%8s %12s %9s %8s %8s %8s  %s\n",
		"t", "goodput", "abort%", "fast", "slow", "ro", "phase")

	start := time.Now()
	// splitAt and splitDone hold nanoseconds since start (0 = not yet).
	var splitAt, splitDone atomic.Int64
	var splitErr error
	splitOnce := make(chan struct{})
	go func() {
		select {
		case <-splitOnce:
		case <-ctx.Done():
			return
		}
		splitAt.Store(int64(time.Since(start)) | 1)
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if _, err = db.Admin().Split(0); err == nil {
				break
			}
		}
		splitErr = err
		splitDone.Store(int64(time.Since(start)) | 1)
	}()

	var points []Point
	prev := db.Cluster().Obs().Snapshot()
	tail := 0
	for sample := 0; sample < opts.MaxSamples && tail < opts.Tail; sample++ {
		time.Sleep(opts.Interval)
		snap := db.Cluster().Obs().Snapshot()
		d := snap.Sub(prev)
		prev = snap
		elapsed := time.Since(start)

		path := pathStats(d)
		commits := path.FastCommits + path.SlowCommits + path.ROCommits
		aborts := path.ValidationAborts + path.AcceptAborts
		p := Point{
			System:  "split",
			X:       elapsed.Seconds(),
			Goodput: float64(commits) / opts.Interval.Seconds(),
			Path:    path,
		}
		if commits+aborts > 0 {
			p.AbortRate = float64(aborts) / float64(commits+aborts)
		}
		points = append(points, p)

		phase := "1-shard"
		switch {
		case splitDone.Load() != 0:
			phase = "2-shard"
			tail++
		case splitAt.Load() != 0:
			phase = "splitting"
		}
		fmt.Fprintf(w, "%7.2fs %12.0f %8.1f%% %8d %8d %8d  %s\n",
			p.X, p.Goodput, p.AbortRate*100, path.FastCommits, path.SlowCommits,
			path.ROCommits, phase)

		if sample+1 == opts.Lead {
			close(splitOnce)
		}
	}

	if splitDone.Load() == 0 {
		return points, fmt.Errorf("bench: split did not complete within %d samples", len(points))
	}
	if splitErr != nil {
		return points, fmt.Errorf("bench: shard split failed: %w", splitErr)
	}
	return points, nil
}
