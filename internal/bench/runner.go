package bench

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"meerkat/internal/obs"
	"meerkat/internal/stats"
	"meerkat/internal/workload"
)

// RunConfig describes one benchmark run: a system, a workload, and the
// closed-loop client population.
type RunConfig struct {
	System System

	// NewGenerator builds one workload generator per client goroutine.
	NewGenerator func() workload.Generator

	// Clients is the closed-loop client count. Defaults to 8.
	Clients int
	// Keys is the number of pre-loaded keys. Defaults to 65536.
	Keys int
	// ValueSize is the value payload size. Defaults to 64 (the paper's).
	ValueSize int

	// Warmup runs before measurement starts; Measure is the measured
	// window. Defaults: 100ms / 500ms (the paper warms up for 5 minutes
	// on real hardware; in-process runs stabilize in milliseconds).
	Warmup  time.Duration
	Measure time.Duration

	// Seed makes client randomness reproducible.
	Seed int64

	// SkipLoad skips pre-loading (the caller already loaded the store).
	SkipLoad bool
}

// PathStats is the coordination-path breakdown of the measured window,
// derived from the system's observability counters (Meerkat/TAPIR systems;
// zero for the PB baselines, which take neither path).
type PathStats struct {
	FastCommits      uint64 // fast path: supermajority agreement, 1 RTT
	SlowCommits      uint64 // slow path: at least one accept round
	ValidationAborts uint64 // fast-path validation conflicts
	AcceptAborts     uint64 // slow-path ACCEPT-ABORT decisions
	TimeoutAborts    uint64 // outcome unknown within the retry budget
	Retries          uint64 // validate/accept round resends
	ROCommits        uint64 // read-only fast path: snapshot reads, local commit
	ROFallbacks      uint64 // marked-RO transactions demoted to validation
}

// FastFraction is the share of commits that took the fast path.
func (p PathStats) FastFraction() float64 {
	total := p.FastCommits + p.SlowCommits
	if total == 0 {
		return 0
	}
	return float64(p.FastCommits) / float64(total)
}

// pathStats extracts the breakdown from an obs counter delta.
func pathStats(d obs.Snapshot) PathStats {
	return PathStats{
		FastCommits:      d.Counter(obs.TxnCommitFast),
		SlowCommits:      d.Counter(obs.TxnCommitSlow),
		ValidationAborts: d.Counter(obs.TxnAbortValidation),
		AcceptAborts:     d.Counter(obs.TxnAbortAcceptAbort),
		TimeoutAborts:    d.Counter(obs.TxnAbortTimeout),
		Retries:          d.Counter(obs.TxnRetry),
		ROCommits:        d.Counter(obs.TxnCommitRO),
		ROFallbacks:      d.Counter(obs.ROFallback),
	}
}

// Result is one benchmark measurement.
type Result struct {
	System   string
	Clients  int
	Counters stats.Counters
	Latency  stats.Histogram
	Elapsed  time.Duration
	// Path is the coordination-path breakdown over the measured window
	// (snapshot delta of the system's obs registry).
	Path PathStats
}

// Goodput returns committed transactions per second — the paper's
// throughput metric ("more precisely, goodput", §6.2).
func (r *Result) Goodput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Counters.Committed) / r.Elapsed.Seconds()
}

// AbortRate returns the abort fraction at this load (Figure 7's metric).
func (r *Result) AbortRate() float64 { return r.Counters.AbortRate() }

// phase values for the run state machine.
const (
	phaseWarmup int32 = iota
	phaseMeasure
	phaseDone
)

// Run loads the store, spawns the closed-loop clients, and measures.
func Run(cfg RunConfig) (Result, error) {
	if cfg.Clients == 0 {
		cfg.Clients = 8
	}
	if cfg.Keys == 0 {
		cfg.Keys = 65536
	}
	if cfg.ValueSize == 0 {
		cfg.ValueSize = 64
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 100 * time.Millisecond
	}
	if cfg.Measure == 0 {
		cfg.Measure = 500 * time.Millisecond
	}

	if !cfg.SkipLoad {
		val := workload.Value(cfg.ValueSize)
		for i := 0; i < cfg.Keys; i++ {
			cfg.System.Load(workload.KeyName(i), val)
		}
	}

	var phase atomic.Int32
	type clientStats struct {
		counters stats.Counters
		hist     stats.Histogram
	}
	perClient := make([]clientStats, cfg.Clients)
	clients := make([]Client, cfg.Clients)
	for i := range clients {
		cl, err := cfg.System.NewClient()
		if err != nil {
			return Result{}, err
		}
		clients[i] = cl
	}

	value := workload.Value(cfg.ValueSize)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := clients[i]
			defer cl.Close()
			gen := cfg.NewGenerator()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
			cs := &perClient[i]
			ctx := context.Background()
			var gets []string
			for {
				ph := phase.Load()
				if ph == phaseDone {
					return
				}
				spec := gen.Next(rng)
				start := time.Now()
				attempts, err := cl.Run(ctx, func(txn Txn) error {
					return execSpec(txn, &spec, value, &gets)
				})
				if ph != phaseMeasure {
					continue
				}
				if err != nil {
					cs.counters.Errors++
					continue
				}
				// One commit after attempts-1 conflict aborts; latency is
				// the whole loop, retries included — what a caller of the
				// canonical Run API observes.
				cs.counters.Committed++
				cs.counters.Aborted += uint64(attempts - 1)
				cs.counters.Ops += uint64(spec.NumOps())
				cs.hist.Record(time.Since(start))
			}
		}(i)
	}

	time.Sleep(cfg.Warmup)
	phase.Store(phaseMeasure)
	before := cfg.System.Obs().Snapshot()
	start := time.Now()
	time.Sleep(cfg.Measure)
	phase.Store(phaseDone)
	elapsed := time.Since(start)
	wg.Wait()
	// Snapshot after the clients drain so transactions straddling the
	// window's end are counted on exactly one side.
	delta := cfg.System.Obs().Snapshot().Sub(before)

	res := Result{System: cfg.System.Name(), Clients: cfg.Clients, Elapsed: elapsed,
		Path: pathStats(delta)}
	for i := range perClient {
		res.Counters.Merge(perClient[i].counters)
		res.Latency.Merge(&perClient[i].hist)
	}
	return res, nil
}

// execSpec builds one generated transaction inside txn: the whole read set
// (plain reads plus the read halves of the read-modify-writes) goes out as
// one batched ReadMany, then the writes are buffered. The commit belongs to
// the caller — Client.Run for the measured loop, runSpec for one-shot use.
// gets is a per-caller scratch reused across transactions for assembling the
// read set; it never reaches the transport (ReadMany copies what it sends).
func execSpec(txn Txn, spec *workload.TxnSpec, value []byte, gets *[]string) error {
	if len(spec.RMWs)+len(spec.Writes)+len(spec.Incrs) == 0 {
		// A pure-read spec rides the read-only fast path on systems that
		// have one. The mark is advisory and the capability an assertion —
		// the PB baselines simply validate as usual.
		if ro, ok := txn.(interface{ ReadOnly() }); ok {
			ro.ReadOnly()
		}
	}
	if len(spec.Reads)+len(spec.RMWs) > 0 {
		g := spec.Reads
		if len(spec.RMWs) > 0 {
			g = spec.AppendGets((*gets)[:0])
			*gets = g
		}
		if _, err := txn.ReadMany(g); err != nil {
			return err
		}
	}
	for _, k := range spec.RMWs {
		txn.Write(k, value)
	}
	for _, k := range spec.Writes {
		txn.Write(k, value)
	}
	if len(spec.Incrs) > 0 {
		// Server-side increments are a Meerkat-side extension; the Txn
		// interface stays the four-method baseline surface all four
		// systems share, so the op capability is an assertion.
		a, ok := txn.(interface{ Add(key string, delta int64) })
		if !ok {
			return errOpsUnsupported
		}
		for _, k := range spec.Incrs {
			a.Add(k, 1)
		}
	}
	return nil
}

// errOpsUnsupported rejects increment specs on systems whose transaction
// surface has no commutative ops (the PB baselines).
var errOpsUnsupported = errors.New("bench: system does not support server-side ops")

// runSpec executes one generated transaction as a single attempt: build via
// execSpec, then commit.
func runSpec(cl Client, spec *workload.TxnSpec, value []byte, gets *[]string) (bool, error) {
	txn := cl.Begin()
	if err := execSpec(txn, spec, value, gets); err != nil {
		return false, err
	}
	return txn.Commit()
}
