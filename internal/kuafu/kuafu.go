// Package kuafu implements KuaFu++, the paper's classic log-based
// primary-backup baseline (§6.1): the system that violates both halves of
// the Zero-Coordination Principle.
//
// The primary decides transaction ordering with a shared atomic counter and
// places each committed transaction into a shared, mutex-protected log for
// replication; replicas also funnel replay through their shared log. Like
// the paper's prototype (and unlike the original KuaFu), correctness comes
// from OCC validation at the primary rather than replay barriers, so backup
// cores apply updates in parallel; the shared log and counter remain as the
// cross-core coordination points, and the primary-backup round is the
// cross-replica coordination point.
//
// KuaFu++ shares the transport, storage, and OCC layers with Meerkat, so the
// performance gap measured in the evaluation isolates exactly the
// coordination structure.
package kuafu

import (
	"fmt"
	"sync"
	"sync/atomic"

	"meerkat/internal/message"
	"meerkat/internal/occ"
	"meerkat/internal/timestamp"
	"meerkat/internal/topo"
	"meerkat/internal/transport"
	"meerkat/internal/trecord"
	"meerkat/internal/vstore"
)

// tsClient is the ClientID used in primary-assigned timestamps; distinct
// from the bulk-load id (0) so counter value 1 cannot collide with loads.
const tsClient = 1

// Config parameterizes a KuaFu++ replica. Replica 0 of the group is the
// primary. Partitions must be 1 (the baseline, like the paper's, is
// unpartitioned).
type Config struct {
	Topo  topo.Topology
	Index int
	Net   transport.Network
	Store *vstore.Store
}

// Replica is one KuaFu++ node.
type Replica struct {
	cfg   Config
	store *vstore.Store

	// counter is the shared atomic counter the primary uses to order
	// transactions — a deliberate cross-core contention point.
	counter atomic.Uint64

	// log is the shared replication log, protected by one mutex on every
	// node — the second deliberate contention point.
	logMu sync.Mutex
	log   []message.LogEntry

	// rec is the shared transaction record ("KuaFu++ and TAPIR share a
	// single record per replica").
	rec *trecord.Shared

	cores   []*core
	stopped atomic.Bool
}

// core is one server thread. pending is core-local: backups ack to the core
// that sent the replicate, so no cross-core hand-off is needed for
// completion.
type core struct {
	r  *Replica
	id uint32
	// ep is published atomically: the delivery goroutine may run the
	// handler before Listen returns.
	ep      atomic.Pointer[transport.Endpoint]
	pending map[uint64]*pendingTxn
}

func (c *core) send(dst message.Addr, m *message.Message) {
	if ep := c.ep.Load(); ep != nil {
		(*ep).Send(dst, m)
	}
}

type pendingTxn struct {
	client message.Addr
	txn    message.Txn
	ts     timestamp.Timestamp
	acks   map[uint32]bool // backup replica ids that acknowledged
}

// New creates a replica; call Start to bind endpoints.
func New(cfg Config) (*Replica, error) {
	if !cfg.Topo.Validate() || cfg.Topo.Partitions != 1 {
		return nil, fmt.Errorf("kuafu: invalid topology %+v", cfg.Topo)
	}
	st := cfg.Store
	if st == nil {
		st = vstore.New(vstore.Config{})
	}
	r := &Replica{cfg: cfg, store: st, rec: trecord.NewShared()}
	for c := 0; c < cfg.Topo.Cores; c++ {
		r.cores = append(r.cores, &core{r: r, id: uint32(c), pending: make(map[uint64]*pendingTxn)})
	}
	return r, nil
}

// Store returns the storage layer for loading and verification.
func (r *Replica) Store() *vstore.Store { return r.store }

// IsPrimary reports whether this replica is the group's primary.
func (r *Replica) IsPrimary() bool { return r.cfg.Index == 0 }

// LogLen returns the shared log length (tests).
func (r *Replica) LogLen() int {
	r.logMu.Lock()
	defer r.logMu.Unlock()
	return len(r.log)
}

// Start binds one endpoint per core.
func (r *Replica) Start() error {
	for _, c := range r.cores {
		addr := r.cfg.Topo.ReplicaAddr(0, r.cfg.Index, c.id)
		ep, err := r.cfg.Net.Listen(addr, c.handle)
		if err != nil {
			r.Stop()
			return err
		}
		c.ep.Store(&ep)
	}
	return nil
}

// Stop closes the replica's endpoints.
func (r *Replica) Stop() {
	if r.stopped.Swap(true) {
		return
	}
	for _, c := range r.cores {
		if ep := c.ep.Load(); ep != nil {
			(*ep).Close()
		}
	}
}

func (c *core) handle(m *message.Message) {
	switch m.Type {
	case message.TypeRead:
		v, ok := c.r.store.Read(m.Key)
		c.send(m.Src, &message.Message{
			Type: message.TypeReadReply, Key: m.Key, Seq: m.Seq,
			Value: v.Value, TS: v.WTS, OK: ok,
			ReplicaID: uint32(c.r.cfg.Index),
		})
	case message.TypePBSubmit:
		c.handleSubmit(m)
	case message.TypePBReplicate:
		c.handleReplicate(m)
	case message.TypePBAck:
		c.handleAck(m)
	}
}

// handleSubmit runs at the primary: order the transaction with the shared
// counter, validate it with OCC under the shared record lock, append it to
// the shared log, and replicate to the backups.
func (c *core) handleSubmit(m *message.Message) {
	if !c.r.IsPrimary() {
		return // clients only submit to the primary
	}
	var st message.Status
	var ts timestamp.Timestamp
	var seq uint64
	duplicate := false
	c.r.rec.Do(func(p *trecord.Partition) {
		if rec := p.Get(m.Txn.ID); rec != nil {
			// Retry of an in-flight or finished transaction.
			duplicate = true
			st = rec.Status
			return
		}
		seq = c.r.counter.Add(1) // shared atomic counter: the order
		ts = timestamp.Timestamp{Time: int64(seq), ClientID: tsClient}
		st = occ.Validate(c.r.store, &m.Txn, ts)
		rec, _ := p.GetOrCreate(m.Txn.ID)
		rec.Txn = m.Txn
		rec.TS = ts
		rec.Status = st
		rec.Registered = st == message.StatusValidatedOK
		if st == message.StatusValidatedAbort {
			rec.Status = message.StatusAborted
		}
	})

	if duplicate {
		if st.Final() {
			c.send(m.Src, &message.Message{
				Type: message.TypePBReply, TID: m.Txn.ID,
				OK: st == message.StatusCommitted,
			})
			return
		}
		// Still replicating: re-ship the log entry in case the first
		// replicate (or its ack) was lost; the reply comes from handleAck.
		for seq, pt := range c.pending {
			if pt.txn.ID == m.Txn.ID {
				entry := message.LogEntry{Seq: seq, TID: pt.txn.ID, TS: pt.ts, WriteSet: pt.txn.WriteSet}
				for b := 1; b < c.r.cfg.Topo.Replicas; b++ {
					c.send(c.r.cfg.Topo.ReplicaAddr(0, b, c.id), &message.Message{
						Type: message.TypePBReplicate, Seq: seq,
						Entries: []message.LogEntry{entry},
					})
				}
				pt.client = m.Src
				break
			}
		}
		return
	}

	if st == message.StatusValidatedAbort {
		c.send(m.Src, &message.Message{Type: message.TypePBReply, TID: m.Txn.ID, OK: false})
		return
	}

	// Append the committed order to the shared log...
	entry := message.LogEntry{Seq: seq, TID: m.Txn.ID, TS: ts, WriteSet: m.Txn.WriteSet}
	c.r.logMu.Lock()
	c.r.log = append(c.r.log, entry)
	c.r.logMu.Unlock()

	// ...and ship it to the backups (same core id, so acks return here).
	for b := 1; b < c.r.cfg.Topo.Replicas; b++ {
		c.send(c.r.cfg.Topo.ReplicaAddr(0, b, c.id), &message.Message{
			Type: message.TypePBReplicate, Seq: seq,
			Entries: []message.LogEntry{entry},
		})
	}
	c.pending[seq] = &pendingTxn{client: m.Src, txn: m.Txn, ts: ts, acks: make(map[uint32]bool)}
}

// handleReplicate runs at a backup: append to the shared log (the paper's
// log-synchronization bottleneck), then apply the updates in parallel —
// timestamped versioned writes commute, so no replay order is needed.
func (c *core) handleReplicate(m *message.Message) {
	c.r.logMu.Lock()
	c.r.log = append(c.r.log, m.Entries...)
	c.r.logMu.Unlock()
	for i := range m.Entries {
		e := &m.Entries[i]
		for j := range e.WriteSet {
			c.r.store.CommitWrite(e.WriteSet[j].Key, e.WriteSet[j].Value, e.TS)
		}
	}
	c.send(m.Src, &message.Message{
		Type: message.TypePBAck, Seq: m.Seq, ReplicaID: uint32(c.r.cfg.Index),
	})
}

// handleAck runs at the primary: once f backups hold the log entry, the
// transaction is durable — apply the write phase and release the client.
func (c *core) handleAck(m *message.Message) {
	pt := c.pending[m.Seq]
	if pt == nil {
		return // duplicate ack
	}
	pt.acks[m.ReplicaID] = true
	if len(pt.acks) < c.r.cfg.Topo.F() {
		return
	}
	delete(c.pending, m.Seq)
	c.r.rec.Do(func(p *trecord.Partition) {
		if rec := p.Get(pt.txn.ID); rec != nil {
			rec.Status = message.StatusCommitted
			rec.Registered = false
		}
	})
	occ.ApplyCommit(c.r.store, &pt.txn, pt.ts)
	c.send(pt.client, &message.Message{Type: message.TypePBReply, TID: pt.txn.ID, OK: true})
}
