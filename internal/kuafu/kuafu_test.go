package kuafu_test

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"meerkat/internal/clock"
	"meerkat/internal/kuafu"
	"meerkat/internal/pbclient"
	"meerkat/internal/timestamp"
	"meerkat/internal/topo"
	"meerkat/internal/transport"
)

type cluster struct {
	topo topo.Topology
	net  *transport.Inproc
	reps []*kuafu.Replica
	next uint64
}

func newCluster(t *testing.T, cores int) *cluster {
	t.Helper()
	tp := topo.Topology{Partitions: 1, Replicas: 3, Cores: cores}
	c := &cluster{topo: tp, net: transport.NewInproc(transport.InprocConfig{})}
	for i := 0; i < 3; i++ {
		rep, err := kuafu.New(kuafu.Config{Topo: tp, Index: i, Net: c.net})
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Start(); err != nil {
			t.Fatal(err)
		}
		c.reps = append(c.reps, rep)
	}
	t.Cleanup(func() {
		for _, r := range c.reps {
			r.Stop()
		}
		c.net.Close()
	})
	return c
}

func (c *cluster) load(key, val string) {
	ts := timestamp.Timestamp{Time: 1, ClientID: 0}
	for _, r := range c.reps {
		r.Store().Load(key, []byte(val), ts)
	}
}

func (c *cluster) client(t *testing.T) *pbclient.Client {
	t.Helper()
	c.next++
	cl, err := pbclient.New(pbclient.Config{
		Topo: c.topo, ClientID: c.next, Net: c.net, Clock: clock.NewReal(),
		Timeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func TestCommitAndReadBack(t *testing.T) {
	c := newCluster(t, 2)
	cl := c.client(t)

	txn := cl.Begin()
	txn.Write("k", []byte("v1"))
	ok, err := txn.Commit()
	if err != nil || !ok {
		t.Fatalf("commit: %v, %v", ok, err)
	}

	txn = cl.Begin()
	v, err := txn.Read("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "v1" {
		t.Fatalf("read %q", v)
	}
	if ok, err := txn.Commit(); !ok || err != nil {
		t.Fatalf("read txn: %v, %v", ok, err)
	}
}

func TestStaleReadAborts(t *testing.T) {
	c := newCluster(t, 2)
	c.load("k", "v0")
	cl1, cl2 := c.client(t), c.client(t)

	// Both read, both try to write: the second submission must abort.
	t1, t2 := cl1.Begin(), cl2.Begin()
	if _, err := t1.Read("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Read("k"); err != nil {
		t.Fatal(err)
	}
	t1.Write("k", []byte("a"))
	t2.Write("k", []byte("b"))
	ok1, err1 := t1.Commit()
	ok2, err2 := t2.Commit()
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v %v", err1, err2)
	}
	if ok1 && ok2 {
		t.Fatal("both conflicting transactions committed")
	}
	if !ok1 && !ok2 {
		t.Fatal("both conflicting transactions aborted")
	}
}

func TestNoLostUpdates(t *testing.T) {
	c := newCluster(t, 4)
	c.load("ctr", "0")

	var committed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		cl := c.client(t)
		wg.Add(1)
		go func(cl *pbclient.Client) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				for attempt := 0; attempt < 30; attempt++ {
					txn := cl.Begin()
					v, err := txn.Read("ctr")
					if err != nil {
						continue
					}
					n, _ := strconv.Atoi(string(v))
					txn.Write("ctr", []byte(strconv.Itoa(n+1)))
					ok, err := txn.Commit()
					if err == nil && ok {
						mu.Lock()
						committed++
						mu.Unlock()
						break
					}
				}
			}
		}(cl)
	}
	wg.Wait()

	// Read through the primary's store (authoritative).
	v, okv := c.reps[0].Store().Read("ctr")
	if !okv {
		t.Fatal("ctr missing at primary")
	}
	n, _ := strconv.Atoi(string(v.Value))
	if int64(n) != committed {
		t.Fatalf("ctr = %d, committed = %d (lost updates)", n, committed)
	}
	if committed == 0 {
		t.Fatal("nothing committed")
	}
}

func TestBackupsConverge(t *testing.T) {
	c := newCluster(t, 2)
	cl := c.client(t)
	for i := 0; i < 30; i++ {
		txn := cl.Begin()
		txn.Write(fmt.Sprintf("k%d", i%5), []byte(fmt.Sprintf("v%d", i)))
		if ok, err := txn.Commit(); !ok || err != nil {
			t.Fatalf("commit %d: %v %v", i, ok, err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		want, _ := c.reps[0].Store().Read(key)
		for r := 1; r < 3; r++ {
			got, ok := c.reps[r].Store().Read(key)
			if !ok || string(got.Value) != string(want.Value) {
				t.Fatalf("backup %d has %s=%q, primary %q", r, key, got.Value, want.Value)
			}
		}
	}
}

func TestSharedLogGrows(t *testing.T) {
	c := newCluster(t, 2)
	cl := c.client(t)
	for i := 0; i < 10; i++ {
		txn := cl.Begin()
		txn.Write(fmt.Sprintf("k%d", i), []byte("v"))
		if ok, _ := txn.Commit(); !ok {
			t.Fatalf("commit %d failed", i)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if got := c.reps[0].LogLen(); got != 10 {
		t.Fatalf("primary log has %d entries, want 10", got)
	}
	for r := 1; r < 3; r++ {
		if got := c.reps[r].LogLen(); got != 10 {
			t.Fatalf("backup %d log has %d entries, want 10", r, got)
		}
	}
	if !c.reps[0].IsPrimary() || c.reps[1].IsPrimary() {
		t.Fatal("primary designation wrong")
	}
}

func TestSubmitRetryIsIdempotent(t *testing.T) {
	// Lossy network: client retries must not double-apply a transaction.
	tp := topo.Topology{Partitions: 1, Replicas: 3, Cores: 2}
	net := transport.NewInproc(transport.InprocConfig{DropProb: 0.05, Seed: 3})
	var reps []*kuafu.Replica
	for i := 0; i < 3; i++ {
		rep, _ := kuafu.New(kuafu.Config{Topo: tp, Index: i, Net: net})
		if err := rep.Start(); err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
	}
	defer func() {
		for _, r := range reps {
			r.Stop()
		}
		net.Close()
	}()
	for _, r := range reps {
		r.Store().Load("ctr", []byte("0"), timestamp.Timestamp{Time: 1, ClientID: 0})
	}
	cl, err := pbclient.New(pbclient.Config{
		Topo: tp, ClientID: 1, Net: net, Clock: clock.NewReal(),
		Timeout: 10 * time.Millisecond, Retries: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	committed := 0
	for i := 0; i < 20; i++ {
		txn := cl.Begin()
		v, err := txn.Read("ctr")
		if err != nil {
			continue
		}
		n, _ := strconv.Atoi(string(v))
		txn.Write("ctr", []byte(strconv.Itoa(n+1)))
		if ok, err := txn.Commit(); err == nil && ok {
			committed++
		}
	}
	time.Sleep(50 * time.Millisecond)
	v, _ := reps[0].Store().Read("ctr")
	n, _ := strconv.Atoi(string(v.Value))
	if n != committed {
		t.Fatalf("ctr = %d, committed = %d", n, committed)
	}
}
