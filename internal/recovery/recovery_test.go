package recovery

import (
	"fmt"
	"testing"
	"time"

	"meerkat/internal/message"
	"meerkat/internal/replica"
	"meerkat/internal/timestamp"
	"meerkat/internal/topo"
	"meerkat/internal/transport"
	"meerkat/internal/vstore"
)

func tid(seq uint64) timestamp.TxnID { return timestamp.TxnID{Seq: seq, ClientID: 1} }
func ts(t int64) timestamp.Timestamp { return timestamp.Timestamp{Time: t, ClientID: 1} }

func entry(seq uint64, st message.Status) message.TRecordEntry {
	return message.TRecordEntry{
		Txn:    message.Txn{ID: tid(seq)},
		TS:     ts(int64(seq) * 10),
		Status: st,
	}
}

func statusOf(merged []message.TRecordEntry, id timestamp.TxnID) message.Status {
	for _, e := range merged {
		if e.Txn.ID == id {
			return e.Status
		}
	}
	return message.StatusNone
}

func TestMergeRule1FinalizedWins(t *testing.T) {
	// One replica committed, others still only validated: COMMITTED wins.
	merged := MergeTrecords(map[uint32][]message.TRecordEntry{
		0: {entry(1, message.StatusCommitted)},
		1: {entry(1, message.StatusValidatedOK)},
	}, 1)
	if got := statusOf(merged, tid(1)); got != message.StatusCommitted {
		t.Fatalf("status = %v", got)
	}
	merged = MergeTrecords(map[uint32][]message.TRecordEntry{
		0: {entry(2, message.StatusAborted)},
		1: {entry(2, message.StatusValidatedOK)},
	}, 1)
	if got := statusOf(merged, tid(2)); got != message.StatusAborted {
		t.Fatalf("status = %v", got)
	}
}

func TestMergeRule2AcceptedLatestView(t *testing.T) {
	eOld := entry(1, message.StatusAcceptCommit)
	eOld.AcceptView = 1
	eNew := entry(1, message.StatusAcceptAbort)
	eNew.AcceptView = 5
	merged := MergeTrecords(map[uint32][]message.TRecordEntry{
		0: {eOld},
		1: {eNew},
	}, 1)
	if got := statusOf(merged, tid(1)); got != message.StatusAborted {
		t.Fatalf("status = %v, want latest accepted decision (abort)", got)
	}
}

func TestMergeRule3MajorityValidated(t *testing.T) {
	merged := MergeTrecords(map[uint32][]message.TRecordEntry{
		0: {entry(1, message.StatusValidatedOK)},
		1: {entry(1, message.StatusValidatedOK)},
	}, 1)
	if got := statusOf(merged, tid(1)); got != message.StatusCommitted {
		t.Fatalf("f+1 VALIDATED-OK -> %v, want COMMITTED", got)
	}
	merged = MergeTrecords(map[uint32][]message.TRecordEntry{
		0: {entry(2, message.StatusValidatedAbort)},
		1: {entry(2, message.StatusValidatedAbort)},
	}, 1)
	if got := statusOf(merged, tid(2)); got != message.StatusAborted {
		t.Fatalf("f+1 VALIDATED-ABORT -> %v, want ABORTED", got)
	}
}

func TestMergeRule4FastPathRevalidation(t *testing.T) {
	// f=2 (n=5): a txn with ceil(f/2)+1 = 2 VALIDATED-OK replies among the
	// f+1 = 3 gathered (fewer than the f+1 = 3 rule 3 needs) might have
	// fast-committed on the 4-replica supermajority; it is re-validated
	// against the merged committed set. Here it conflicts with nothing, so
	// it commits.
	clean := message.TRecordEntry{
		Txn: message.Txn{
			ID:       tid(1),
			WriteSet: []message.WriteSetEntry{{Key: "a", Value: []byte("v")}},
		},
		TS:     ts(10),
		Status: message.StatusValidatedOK,
	}
	merged := MergeTrecords(map[uint32][]message.TRecordEntry{
		0: {clean},
		1: {clean},
		2: {}, // the third gathered replica never saw it
	}, 2)
	if got := statusOf(merged, tid(1)); got != message.StatusCommitted {
		t.Fatalf("clean fast-path candidate -> %v, want COMMITTED", got)
	}

	// With only one VALIDATED-OK, a fast-path commit is impossible (the
	// supermajority would intersect the gathered quorum in 2 replicas), so
	// the merge aborts it without re-validation.
	merged = MergeTrecords(map[uint32][]message.TRecordEntry{
		0: {clean},
		1: {},
		2: {},
	}, 2)
	if got := statusOf(merged, tid(1)); got != message.StatusAborted {
		t.Fatalf("single-OK candidate -> %v, want ABORTED", got)
	}
}

func TestMergeRule4ConflictAborts(t *testing.T) {
	// A fast-path candidate conflicting with an already-committed txn must
	// abort: committed wrote "a" at ts 50; candidate read "a" at version 10
	// with proposed ts 60 — stale read.
	committedTxn := message.TRecordEntry{
		Txn: message.Txn{
			ID:       tid(1),
			WriteSet: []message.WriteSetEntry{{Key: "a", Value: []byte("new")}},
		},
		TS:     ts(50),
		Status: message.StatusCommitted,
	}
	candidate := message.TRecordEntry{
		Txn: message.Txn{
			ID:       timestamp.TxnID{Seq: 2, ClientID: 2},
			ReadSet:  []message.ReadSetEntry{{Key: "a", WTS: ts(10)}},
			WriteSet: []message.WriteSetEntry{{Key: "a", Value: []byte("mine")}},
		},
		TS:     timestamp.Timestamp{Time: 60, ClientID: 2},
		Status: message.StatusValidatedOK,
	}
	merged := MergeTrecords(map[uint32][]message.TRecordEntry{
		0: {committedTxn, candidate},
		1: {committedTxn, candidate},
		2: {committedTxn},
	}, 2)
	if got := statusOf(merged, candidate.Txn.ID); got != message.StatusAborted {
		t.Fatalf("conflicting candidate -> %v, want ABORTED", got)
	}
}

func TestMergeRule5UnknownAborts(t *testing.T) {
	// Seen only as VALIDATED-ABORT at one replica (no majority, no
	// fast-path OK evidence): abort.
	merged := MergeTrecords(map[uint32][]message.TRecordEntry{
		0: {entry(1, message.StatusValidatedAbort)},
		1: {},
	}, 1)
	if got := statusOf(merged, tid(1)); got != message.StatusAborted {
		t.Fatalf("status = %v, want ABORTED", got)
	}
}

func TestMergeAllFinal(t *testing.T) {
	// Every merged entry must carry a final status.
	merged := MergeTrecords(map[uint32][]message.TRecordEntry{
		0: {entry(1, message.StatusValidatedOK), entry(2, message.StatusValidatedAbort), entry(3, message.StatusAcceptCommit)},
		1: {entry(1, message.StatusValidatedOK), entry(4, message.StatusNone)},
	}, 1)
	for _, e := range merged {
		if !e.Status.Final() {
			t.Fatalf("merged entry %v has non-final status %v", e.Txn.ID, e.Status)
		}
	}
	if len(merged) != 4 {
		t.Fatalf("merged %d entries, want 4", len(merged))
	}
}

func TestMergeDeterministic(t *testing.T) {
	in := map[uint32][]message.TRecordEntry{
		0: {entry(3, message.StatusValidatedOK), entry(1, message.StatusCommitted)},
		1: {entry(2, message.StatusValidatedOK), entry(1, message.StatusCommitted)},
		2: {entry(2, message.StatusValidatedOK), entry(3, message.StatusValidatedAbort)},
	}
	a := MergeTrecords(in, 1)
	b := MergeTrecords(in, 1)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i].Txn.ID != b[i].Txn.ID || a[i].Status != b[i].Status {
			t.Fatalf("nondeterministic merge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMergePrefersEntryWithBody(t *testing.T) {
	// If one replica has the txn body and another only a placeholder (from
	// a coordinator change), the merged entry must carry the body.
	full := message.TRecordEntry{
		Txn: message.Txn{
			ID:       tid(1),
			WriteSet: []message.WriteSetEntry{{Key: "a", Value: []byte("v")}},
		},
		TS:     ts(10),
		Status: message.StatusValidatedOK,
	}
	placeholder := entry(1, message.StatusValidatedOK)
	merged := MergeTrecords(map[uint32][]message.TRecordEntry{
		0: {placeholder},
		1: {full},
	}, 1)
	for _, e := range merged {
		if e.Txn.ID == tid(1) && len(e.Txn.WriteSet) == 0 {
			t.Fatal("merged entry lost the transaction body")
		}
	}
}

func TestSyncStore(t *testing.T) {
	src := vstore.New(vstore.Config{})
	src.Load("a", []byte("v1"), ts(1))
	src.CommitWrite("a", []byte("v2"), ts(5))
	src.CommitRead("a", ts(9))
	src.Load("b", []byte("w"), ts(2))

	dst := vstore.New(vstore.Config{})
	SyncStore(dst, src)

	v, ok := dst.Read("a")
	if !ok || string(v.Value) != "v2" || v.WTS != ts(5) {
		t.Fatalf("a = %+v ok=%v", v, ok)
	}
	if _, rts := dst.Meta("a"); rts != ts(9) {
		t.Fatalf("rts = %v, want %v", rts, ts(9))
	}
	if v, ok := dst.Read("b"); !ok || string(v.Value) != "w" {
		t.Fatalf("b = %+v ok=%v", v, ok)
	}
}

func TestSyncStoreRemote(t *testing.T) {
	tp := topo.Topology{Partitions: 1, Replicas: 3, Cores: 2}
	net := transport.NewInproc(transport.InprocConfig{})
	defer net.Close()

	donor := vstore.New(vstore.Config{})
	for i := 0; i < 500; i++ {
		donor.Load(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("v%d", i)), ts(int64(i+1)))
	}
	donor.CommitRead("key-7", ts(1000))

	rep, err := replica.New(replica.Config{Topo: tp, Partition: 0, Index: 1, Net: net, Store: donor})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()

	dst := vstore.New(vstore.Config{})
	if err := SyncStoreRemote(net, tp, 0, 1, dst, Options{Timeout: 200 * time.Millisecond}); err != nil {
		t.Fatalf("SyncStoreRemote: %v", err)
	}
	if dst.Len() != 500 {
		t.Fatalf("transferred %d keys, want 500", dst.Len())
	}
	v, ok := dst.Read("key-42")
	if !ok || string(v.Value) != "v42" {
		t.Fatalf("key-42 = %+v ok=%v", v, ok)
	}
	if _, rts := dst.Meta("key-7"); rts != ts(1000) {
		t.Fatalf("rts not transferred: %v", rts)
	}
}
