// Package recovery implements Meerkat's epoch change protocol (§5.3.1),
// which brings all replicas of a partition group to a consistent trecord
// after replica failure and recovery, and doubles as the checkpointing
// mechanism that lets replicas trim their records.
//
// The protocol is inspired by Viewstamped Replication: a designated recovery
// coordinator (the (epoch mod n)th replica; the designation is enforced by
// the caller) polls all replicas, which pause validation and ship their
// trecords; the coordinator merges them with the rules of §5.3.1 and
// installs the merged, all-final trecord everywhere.
package recovery

import (
	"errors"
	"sort"
	"time"

	"meerkat/internal/message"
	"meerkat/internal/obs"
	"meerkat/internal/occ"
	"meerkat/internal/timestamp"
	"meerkat/internal/topo"
	"meerkat/internal/transport"
	"meerkat/internal/vstore"
)

// epochCoordNodeBase is the node id space for ephemeral epoch-change
// coordinator endpoints: above all replica ids, below client ids.
const epochCoordNodeBase = 1 << 15

// ErrNoQuorum means the epoch change could not reach a majority of replicas.
var ErrNoQuorum = errors.New("recovery: no quorum of replicas reachable")

// Options tunes an epoch change run.
type Options struct {
	// Timeout bounds each wait for acknowledgements. Defaults to 1s.
	Timeout time.Duration
	// Retries is how many times requests are resent. Defaults to 5.
	Retries int
	// Obs, when non-nil, records epoch-change lifecycle counters
	// (runs completed, merged entries, rule-4 re-validations).
	Obs *obs.Shard
	// Since restricts SyncStoreRemote to keys whose committed state changed
	// after this timestamp — the delta transfer a replica that already
	// replayed its local write-ahead log uses. Zero (the default) transfers
	// everything.
	Since timestamp.Timestamp
	// SinceWall (UnixNano, 0 = disabled) widens the delta along a second
	// axis: donors also ship keys whose commit they applied at or after this
	// local wall-clock instant, regardless of the commit's timestamp. It
	// covers transactions finalized late with old timestamps (sweeper or
	// backup-coordinator outcomes) that a pure TS filter would miss. Pass
	// the moment the recovering replica went down, minus clock-skew slack.
	SinceWall int64
}

func (o *Options) fill() {
	if o.Timeout == 0 {
		o.Timeout = time.Second
	}
	if o.Retries == 0 {
		o.Retries = 5
	}
}

// coreKey identifies one core of one replica.
type coreKey struct {
	replica uint32
	core    uint32
}

// RunEpochChange drives an epoch change to the given epoch number in
// partition p. It returns the merged trecord it installed. The caller is
// responsible for invoking it on (or on behalf of) the designated recovery
// coordinator and for choosing epoch strictly greater than the current one.
func RunEpochChange(net transport.Network, t topo.Topology, p int, epoch uint64, opts Options) ([]message.TRecordEntry, error) {
	opts.fill()
	in := transport.NewInbox(4096)
	ep, err := net.Listen(message.Addr{Node: epochCoordNodeBase + uint32(p), Core: 0}, in.Handle)
	if err != nil {
		return nil, err
	}
	defer ep.Close()

	// All cores of all replicas in the group.
	var targets []message.Addr
	for r := 0; r < t.Replicas; r++ {
		for c := 0; c < t.Cores; c++ {
			targets = append(targets, t.ReplicaAddr(p, r, uint32(c)))
		}
	}

	// Phase 1: pause and collect per-core trecord snapshots. A replica
	// counts once all of its cores have acknowledged.
	//
	// The merge wants the records of every replica it can possibly reach, not
	// just a bare majority: a transaction's only commit evidence can live
	// wholly on one replica (its finalize message was dropped elsewhere, and
	// the peer that did apply it crashed and recovered with an empty record),
	// and a merge built without that replica silently aborts a transaction
	// whose coordinator already reported commit. So keep resending to
	// stragglers until every replica has answered, and settle for a majority
	// only once the retry budget is spent.
	acks := make(map[coreKey][]message.TRecordEntry)
	replicaDone := func() int {
		counts := make(map[uint32]int)
		for k := range acks {
			counts[k.replica]++
		}
		n := 0
		for _, c := range counts {
			if c == t.Cores {
				n++
			}
		}
		return n
	}

	for attempt := 0; attempt <= opts.Retries && replicaDone() < t.Replicas; attempt++ {
		for _, dst := range targets {
			if _, ok := acks[coreKey{dst.Node - t.ReplicaNode(p, 0), dst.Core}]; ok {
				continue
			}
			ep.Send(dst, &message.Message{Type: message.TypeEpochChange, Epoch: epoch})
		}
		// Once a majority is in, later rounds only chase stragglers whose
		// messages were lost; don't stall recovery a full timeout for each.
		wait := opts.Timeout
		if replicaDone() >= t.Majority() {
			wait = opts.Timeout / 5
		}
		deadline := time.NewTimer(wait)
	collect:
		for {
			select {
			case m := <-in.C:
				if m.Type != message.TypeEpochChangeAck || m.Epoch != epoch {
					continue
				}
				acks[coreKey{m.ReplicaID, m.CoreID}] = m.Records
				if replicaDone() == t.Replicas {
					deadline.Stop()
					break collect
				}
			case <-deadline.C:
				break collect
			}
		}
	}
	if replicaDone() < t.Majority() {
		return nil, ErrNoQuorum
	}

	// Merge the snapshots from replicas that fully acknowledged.
	perReplica := make(map[uint32][]message.TRecordEntry)
	counts := make(map[uint32]int)
	for k := range acks {
		counts[k.replica]++
	}
	for k, recs := range acks {
		if counts[k.replica] == t.Cores {
			perReplica[k.replica] = append(perReplica[k.replica], recs...)
		}
	}
	merged := mergeTrecords(perReplica, t.F(), opts.Obs)
	opts.Obs.Add(obs.EpochMergedTxn, uint64(len(merged)))

	// Phase 2: install the merged trecord and resume.
	done := make(map[coreKey]bool)
	for attempt := 0; attempt <= opts.Retries; attempt++ {
		for _, dst := range targets {
			if done[coreKey{dst.Node - t.ReplicaNode(p, 0), dst.Core}] {
				continue
			}
			ep.Send(dst, &message.Message{
				Type: message.TypeEpochChangeComplete, Epoch: epoch, Records: merged,
			})
		}
		deadline := time.NewTimer(opts.Timeout)
		for {
			stop := false
			select {
			case m := <-in.C:
				if m.Type != message.TypeEpochChangeCompleteAck || m.Epoch != epoch {
					continue
				}
				done[coreKey{m.ReplicaID, m.CoreID}] = true
				if len(done) == t.Replicas*t.Cores {
					deadline.Stop()
					opts.Obs.Inc(obs.EpochChangeRun)
					return merged, nil
				}
			case <-deadline.C:
				stop = true
			}
			if stop {
				break
			}
		}
		// A majority of fully-resumed replicas suffices to declare the
		// epoch change complete; stragglers resume when the resent
		// complete message reaches them.
		resumed := make(map[uint32]int)
		for k := range done {
			resumed[k.replica]++
		}
		full := 0
		for _, c := range resumed {
			if c == t.Cores {
				full++
			}
		}
		if full >= t.Majority() {
			opts.Obs.Inc(obs.EpochChangeRun)
			return merged, nil
		}
	}
	return merged, ErrNoQuorum
}

// MergeTrecords applies the merge rules of §5.3.1 to per-replica trecord
// snapshots and returns the new, all-final trecord:
//
//  1. transactions COMMITTED or ABORTED at any replica keep that outcome;
//  2. transactions accepted from a (backup) coordinator adopt the decision
//     with the latest view;
//  3. transactions with a majority (f+1) of matching VALIDATED-* statuses
//     become COMMITTED/ABORTED accordingly;
//  4. transactions that might have committed on the fast path (at least
//     ceil(f/2)+1 VALIDATED-OK) are re-validated with OCC checks against
//     the transactions already committed in the merged trecord;
//  5. everything else is ABORTED.
func MergeTrecords(perReplica map[uint32][]message.TRecordEntry, f int) []message.TRecordEntry {
	return mergeTrecords(perReplica, f, nil)
}

// mergeTrecords is MergeTrecords with an optional obs shard recording the
// number of rule-4 re-validations.
func mergeTrecords(perReplica map[uint32][]message.TRecordEntry, f int, o *obs.Shard) []message.TRecordEntry {
	type txnState struct {
		entry   message.TRecordEntry // representative (first seen with a body)
		byRep   map[uint32]message.Status
		accepts []message.TRecordEntry
	}
	txns := make(map[timestamp.TxnID]*txnState)
	order := make([]timestamp.TxnID, 0)

	for rep, recs := range perReplica {
		seen := make(map[timestamp.TxnID]bool)
		for i := range recs {
			e := recs[i]
			st := txns[e.Txn.ID]
			if st == nil {
				st = &txnState{entry: e, byRep: make(map[uint32]message.Status)}
				txns[e.Txn.ID] = st
				order = append(order, e.Txn.ID)
			}
			// Prefer a representative that carries the transaction body.
			if st.entry.Txn.Empty() && !e.Txn.Empty() {
				st.entry = e
			}
			if seen[e.Txn.ID] {
				continue // duplicate from a shared-record replica's cores
			}
			seen[e.Txn.ID] = true
			st.byRep[rep] = e.Status
			if e.Status == message.StatusAcceptCommit || e.Status == message.StatusAcceptAbort {
				st.accepts = append(st.accepts, e)
			}
		}
	}

	// Deterministic processing order (map iteration is random).
	sort.Slice(order, func(i, j int) bool { return order[i].Less(order[j]) })

	var merged []message.TRecordEntry
	var candidates []message.TRecordEntry // rule 4, re-validated below
	emit := func(e message.TRecordEntry, st message.Status) {
		e.Status = st
		merged = append(merged, e)
	}

	for _, tid := range order {
		st := txns[tid]
		// Rule 1: finalized anywhere.
		final := message.StatusNone
		for _, s := range st.byRep {
			if s == message.StatusCommitted || s == message.StatusAborted {
				final = s
				break
			}
		}
		if final != message.StatusNone {
			emit(st.entry, final)
			continue
		}
		// Rule 2: accepted decision with the latest view.
		if len(st.accepts) > 0 {
			best := st.accepts[0]
			for _, a := range st.accepts[1:] {
				if a.AcceptView > best.AcceptView {
					best = a
				}
			}
			if best.Status == message.StatusAcceptCommit {
				emit(st.entry, message.StatusCommitted)
			} else {
				emit(st.entry, message.StatusAborted)
			}
			continue
		}
		// Rule 3: majority of matching validated statuses.
		ok, abort := 0, 0
		for _, s := range st.byRep {
			switch s {
			case message.StatusValidatedOK:
				ok++
			case message.StatusValidatedAbort:
				abort++
			}
		}
		switch {
		case ok >= f+1:
			emit(st.entry, message.StatusCommitted)
		case abort >= f+1:
			emit(st.entry, message.StatusAborted)
		case ok >= (f+1)/2+1:
			// Rule 4: possible fast-path commit; re-validate below.
			candidates = append(candidates, st.entry)
		default:
			// Rule 5.
			emit(st.entry, message.StatusAborted)
		}
	}

	// Rule 4 re-validation: replay the already-committed transactions into
	// a scratch store, then run Algorithm 1 for each candidate in
	// timestamp order. A candidate that validates must be the transaction
	// that fast-committed (a conflicting committed transaction would make
	// it fail, and per §5.4 both cannot have committed).
	if len(candidates) > 0 {
		o.Add(obs.EpochRevalidated, uint64(len(candidates)))
		scratch := vstore.New(vstore.Config{Shards: 64})
		for i := range merged {
			if merged[i].Status == message.StatusCommitted {
				occ.ApplyCommit(scratch, &merged[i].Txn, merged[i].TS)
			}
		}
		sort.Slice(candidates, func(i, j int) bool {
			return candidates[i].TS.Less(candidates[j].TS)
		})
		for _, cand := range candidates {
			if occ.Validate(scratch, &cand.Txn, cand.TS) == message.StatusValidatedOK {
				occ.ApplyCommit(scratch, &cand.Txn, cand.TS)
				emit(cand, message.StatusCommitted)
			} else {
				emit(cand, message.StatusAborted)
			}
		}
	}

	return merged
}

// SyncStoreRemote transfers the committed state of a live replica into dst
// over the network, shard by shard — the state-transfer step a recovering
// replica runs before the epoch change reconciles in-flight transactions.
// It works across processes (unlike SyncStore, which needs both stores in
// memory). from is the donor replica's index in partition p.
func SyncStoreRemote(net transport.Network, t topo.Topology, p, from int, dst *vstore.Store, opts Options) error {
	opts.fill()
	in := transport.NewInbox(64)
	ep, err := net.Listen(message.Addr{Node: epochCoordNodeBase + uint32(p), Core: 1}, in.Handle)
	if err != nil {
		return err
	}
	defer ep.Close()

	donor := t.ReplicaAddr(p, from, 0)
	for shard := uint64(0); ; {
		got := false
		for attempt := 0; attempt <= opts.Retries && !got; attempt++ {
			// View carries the wall-clock bound: unused by TypeStateRequest
			// otherwise, so this adds nothing to the wire format.
			ep.Send(donor, &message.Message{
				Type: message.TypeStateRequest, Seq: shard,
				TS: opts.Since, View: uint64(opts.SinceWall),
			})
			deadline := time.NewTimer(opts.Timeout)
		wait:
			for {
				select {
				case m := <-in.C:
					if m.Type != message.TypeStateReply || m.Seq != shard {
						continue
					}
					deadline.Stop()
					states := make([]vstore.KeyState, len(m.State))
					for i := range m.State {
						states[i] = vstore.KeyState{
							Key: m.State[i].Key, Value: m.State[i].Value,
							WTS: m.State[i].WTS, RTS: m.State[i].RTS,
						}
					}
					dst.ImportState(states)
					if !m.OK {
						return nil // last shard
					}
					got = true
					break wait
				case <-deadline.C:
					break wait
				}
			}
		}
		if !got {
			return ErrNoQuorum
		}
		shard++
	}
}

// SyncStore copies the committed state of src into dst: each key's latest
// version and its read timestamp. It is the state-transfer step a recovering
// replica performs before rejoining (the epoch change then reconciles any
// in-flight transactions). The copy is taken key by key with src live, which
// is safe because version installs are monotonic.
func SyncStore(dst, src *vstore.Store) {
	src.Range(func(key string, v vstore.Version) bool {
		dst.Load(key, v.Value, v.WTS)
		if _, rts := src.Meta(key); !rts.IsZero() {
			dst.CommitRead(key, rts)
		}
		return true
	})
}
