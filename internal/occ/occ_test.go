package occ

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"meerkat/internal/message"
	"meerkat/internal/timestamp"
	"meerkat/internal/vstore"
)

func ts(t int64) timestamp.Timestamp { return timestamp.Timestamp{Time: t, ClientID: 1} }

// vh hashes a value the way clients stamp ReadSetEntry.VHash.
func vh(s string) uint64 { return message.HashValue([]byte(s)) }

func tsc(t int64, c uint64) timestamp.Timestamp { return timestamp.Timestamp{Time: t, ClientID: c} }

func newStore() *vstore.Store {
	s := vstore.New(vstore.Config{})
	s.Load("a", []byte("a0"), ts(1))
	s.Load("b", []byte("b0"), ts(1))
	s.Load("c", []byte("c0"), ts(1))
	return s
}

func rmw(key string, readWTS timestamp.Timestamp, val string) *message.Txn {
	return &message.Txn{
		ID:       timestamp.TxnID{Seq: 1, ClientID: 1},
		ReadSet:  []message.ReadSetEntry{{Key: key, WTS: readWTS, VHash: vh(key + "0")}},
		WriteSet: []message.WriteSetEntry{{Key: key, Value: []byte(val)}},
	}
}

func TestValidateCleanRMW(t *testing.T) {
	s := newStore()
	txn := rmw("a", ts(1), "a1")
	if got := Validate(s, txn, ts(10)); got != message.StatusValidatedOK {
		t.Fatalf("Validate = %v", got)
	}
	r, w := s.Pending("a")
	if r != 1 || w != 1 {
		t.Fatalf("pending = (%d,%d), want (1,1)", r, w)
	}
	ApplyCommit(s, txn, ts(10))
	r, w = s.Pending("a")
	if r != 0 || w != 0 {
		t.Fatalf("pending after commit = (%d,%d)", r, w)
	}
	v, _ := s.Read("a")
	if string(v.Value) != "a1" || v.WTS != ts(10) {
		t.Fatalf("read %+v after commit", v)
	}
	wts, rts := s.Meta("a")
	if wts != ts(10) || rts != ts(10) {
		t.Fatalf("meta = (%v,%v)", wts, rts)
	}
}

func TestValidateStaleReadAborts(t *testing.T) {
	s := newStore()
	s.CommitWrite("a", []byte("a9"), ts(9))
	txn := rmw("a", ts(1), "a1") // read version 1, but 9 is committed
	if got := Validate(s, txn, ts(10)); got != message.StatusValidatedAbort {
		t.Fatalf("Validate = %v, want abort", got)
	}
	r, w := s.Pending("a")
	if r != 0 || w != 0 {
		t.Fatalf("abort leaked pending state: (%d,%d)", r, w)
	}
}

func TestValidateReadAbortCleansEarlierReads(t *testing.T) {
	s := newStore()
	s.CommitWrite("b", []byte("b9"), ts(9))
	txn := &message.Txn{
		ID: timestamp.TxnID{Seq: 1, ClientID: 1},
		ReadSet: []message.ReadSetEntry{
			{Key: "a", WTS: ts(1), VHash: vh("a0")}, // fine
			{Key: "b", WTS: ts(1), VHash: vh("b0")}, // stale -> abort
		},
	}
	if got := Validate(s, txn, ts(10)); got != message.StatusValidatedAbort {
		t.Fatalf("Validate = %v", got)
	}
	if r, _ := s.Pending("a"); r != 0 {
		t.Fatal("reader for 'a' not backed out")
	}
}

func TestValidateWriteAbortCleansEverything(t *testing.T) {
	s := newStore()
	s.CommitRead("c", ts(20)) // rts of c = 20 blocks writes below
	txn := &message.Txn{
		ID:      timestamp.TxnID{Seq: 1, ClientID: 1},
		ReadSet: []message.ReadSetEntry{{Key: "a", WTS: ts(1), VHash: vh("a0")}},
		WriteSet: []message.WriteSetEntry{
			{Key: "b", Value: []byte("b1")}, // fine
			{Key: "c", Value: []byte("c1")}, // ts 10 < rts 20 -> abort
		},
	}
	if got := Validate(s, txn, ts(10)); got != message.StatusValidatedAbort {
		t.Fatalf("Validate = %v", got)
	}
	for _, k := range []string{"a", "b", "c"} {
		r, w := s.Pending(k)
		if r != 0 || w != 0 {
			t.Fatalf("key %q leaked pending state (%d,%d)", k, r, w)
		}
	}
}

func TestPairwiseConflictDetection(t *testing.T) {
	// The serializability argument (§5.4) rests on this: of two conflicting
	// transactions, whichever validates second at a given replica aborts.
	s := newStore()
	t1 := rmw("a", ts(1), "t1")
	t1.ID = timestamp.TxnID{Seq: 1, ClientID: 1}
	t2 := rmw("a", ts(1), "t2")
	t2.ID = timestamp.TxnID{Seq: 1, ClientID: 2}

	if Validate(s, t1, tsc(10, 1)) != message.StatusValidatedOK {
		t.Fatal("t1 failed validation")
	}
	// t2 read version 1 and proposes ts 12 > pending writer 10: read check
	// fails (pending writer below ts).
	if Validate(s, t2, tsc(12, 2)) != message.StatusValidatedAbort {
		t.Fatal("t2 passed validation despite conflict with pending t1")
	}
	ApplyCommit(s, t1, tsc(10, 1))
}

func TestWriteSkewBlocked(t *testing.T) {
	// Classic write skew: T1 reads a writes b, T2 reads b writes a,
	// concurrently. At a single replica, at most one may validate.
	s := newStore()
	t1 := &message.Txn{
		ID:       timestamp.TxnID{Seq: 1, ClientID: 1},
		ReadSet:  []message.ReadSetEntry{{Key: "a", WTS: ts(1), VHash: vh("a0")}},
		WriteSet: []message.WriteSetEntry{{Key: "b", Value: []byte("1")}},
	}
	t2 := &message.Txn{
		ID:       timestamp.TxnID{Seq: 1, ClientID: 2},
		ReadSet:  []message.ReadSetEntry{{Key: "b", WTS: ts(1), VHash: vh("b0")}},
		WriteSet: []message.WriteSetEntry{{Key: "a", Value: []byte("2")}},
	}
	s1 := Validate(s, t1, tsc(10, 1))
	s2 := Validate(s, t2, tsc(11, 2))
	if s1 == message.StatusValidatedOK && s2 == message.StatusValidatedOK {
		t.Fatal("both write-skew transactions validated at one replica")
	}
}

func TestReadOnlyBelowPendingWriterCommits(t *testing.T) {
	// Versioned storage lets a read at an earlier timestamp commit despite
	// a pending later write (§3, "versioned backing storage").
	s := newStore()
	w := rmw("a", ts(1), "later")
	if Validate(s, w, ts(100)) != message.StatusValidatedOK {
		t.Fatal("writer failed validation")
	}
	ro := &message.Txn{
		ID:      timestamp.TxnID{Seq: 2, ClientID: 2},
		ReadSet: []message.ReadSetEntry{{Key: "a", WTS: ts(1), VHash: vh("a0")}},
	}
	if Validate(s, ro, tsc(50, 2)) != message.StatusValidatedOK {
		t.Fatal("read below pending writer did not validate")
	}
	ApplyCommit(s, ro, tsc(50, 2))
	ApplyCommit(s, w, ts(100))
}

func TestApplyAbortBacksOutRegistrations(t *testing.T) {
	s := newStore()
	txn := rmw("a", ts(1), "v")
	if Validate(s, txn, ts(10)) != message.StatusValidatedOK {
		t.Fatal("validate failed")
	}
	ApplyAbort(s, txn, ts(10))
	r, w := s.Pending("a")
	if r != 0 || w != 0 {
		t.Fatalf("pending = (%d,%d) after ApplyAbort", r, w)
	}
	// The aborted write must not be visible.
	v, _ := s.Read("a")
	if string(v.Value) != "a0" {
		t.Fatalf("aborted write visible: %q", v.Value)
	}
}

func TestApplyCommitForUnvalidatedTxnIsSafe(t *testing.T) {
	// A replica that learns a commit via epoch change applies it without
	// ever having validated it locally.
	s := newStore()
	txn := rmw("a", ts(1), "sync")
	ApplyCommit(s, txn, ts(10))
	v, _ := s.Read("a")
	if string(v.Value) != "sync" {
		t.Fatalf("got %q", v.Value)
	}
	// Applying twice is idempotent (Thomas rule).
	ApplyCommit(s, txn, ts(10))
	if got := len(s.Versions("a")); got != 2 { // v@1 and v@10
		t.Fatalf("version chain length %d", got)
	}
}

func TestBlindWriteNoReads(t *testing.T) {
	s := newStore()
	txn := &message.Txn{
		ID:       timestamp.TxnID{Seq: 1, ClientID: 1},
		WriteSet: []message.WriteSetEntry{{Key: "a", Value: []byte("blind")}},
	}
	if Validate(s, txn, ts(10)) != message.StatusValidatedOK {
		t.Fatal("blind write failed validation")
	}
	ApplyCommit(s, txn, ts(10))
	v, _ := s.Read("a")
	if string(v.Value) != "blind" {
		t.Fatalf("got %q", v.Value)
	}
}

func TestConcurrentValidationSerializable(t *testing.T) {
	// Hammer a small key space with concurrent RMWs through the full
	// Validate/Apply cycle and then check the committed history is
	// serializable in timestamp order: replaying committed transactions
	// sorted by ts must reproduce each transaction's observed reads.
	s := vstore.New(vstore.Config{MaxVersions: -1})
	const keys = 4
	for i := 0; i < keys; i++ {
		s.Load(fmt.Sprintf("k%d", i), []byte("0"), tsc(0, 0))
	}

	type committed struct {
		txn *message.Txn
		ts  timestamp.Timestamp
	}
	var mu sync.Mutex
	var history []committed

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", rng.Intn(keys))
				v, _ := s.Read(key)
				tsv := timestamp.Timestamp{Time: int64(w*1000000 + i*100 + rng.Intn(50)), ClientID: uint64(w + 1)}
				txn := &message.Txn{
					ID:       timestamp.TxnID{Seq: uint64(i), ClientID: uint64(w + 1)},
					ReadSet:  []message.ReadSetEntry{{Key: key, WTS: v.WTS, VHash: message.HashValue(v.Value)}},
					WriteSet: []message.WriteSetEntry{{Key: key, Value: []byte(fmt.Sprintf("w%d-i%d", w, i))}},
				}
				if Validate(s, txn, tsv) == message.StatusValidatedOK {
					ApplyCommit(s, txn, tsv)
					mu.Lock()
					history = append(history, committed{txn, tsv})
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	// Serial replay in timestamp order.
	sort.Slice(history, func(i, j int) bool { return history[i].ts.Less(history[j].ts) })
	state := map[string]timestamp.Timestamp{} // key -> wts of latest write in replay
	for _, h := range history {
		for _, r := range h.txn.ReadSet {
			if got := state[r.Key]; got != r.WTS {
				t.Fatalf("txn %v at %v read %q@%v, but serial replay has %v",
					h.txn.ID, h.ts, r.Key, r.WTS, got)
			}
		}
		for _, w := range h.txn.WriteSet {
			state[w.Key] = h.ts
		}
	}
	if len(history) == 0 {
		t.Fatal("no transactions committed")
	}
}

func BenchmarkValidateApplyRMW(b *testing.B) {
	s := vstore.New(vstore.Config{})
	const n = 1 << 16
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		s.Load(keys[i], []byte("v"), tsc(1, 0))
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(rand.Int63()))
		i := 0
		for pb.Next() {
			k := keys[rng.Intn(n)]
			v, _ := s.Read(k)
			tsv := timestamp.Timestamp{Time: int64(i + 2), ClientID: uint64(rng.Uint64())}
			txn := &message.Txn{
				ReadSet:  []message.ReadSetEntry{{Key: k, WTS: v.WTS, VHash: message.HashValue(v.Value)}},
				WriteSet: []message.WriteSetEntry{{Key: k, Value: []byte("v")}},
			}
			if Validate(s, txn, tsv) == message.StatusValidatedOK {
				ApplyCommit(s, txn, tsv)
			}
			i++
		}
	})
}

func TestQuickPairwiseConflictProperty(t *testing.T) {
	// Property (the heart of §5.4's correctness argument): for any pair of
	// transactions with overlapping access sets where at least one writes
	// the overlap, sequential validation at a single store never admits
	// both at timestamps that would break timestamp-order serializability.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := vstore.New(vstore.Config{Shards: 16})
		keys := []string{"a", "b", "c"}
		for _, k := range keys {
			s.Load(k, []byte("0"), tsc(1, 0))
		}
		mk := func(cid uint64) (*message.Txn, timestamp.Timestamp) {
			txn := &message.Txn{ID: timestamp.TxnID{Seq: 1, ClientID: cid}}
			for _, k := range keys {
				if rng.Intn(2) == 0 {
					v, _ := s.Read(k)
					txn.ReadSet = append(txn.ReadSet, message.ReadSetEntry{Key: k, WTS: v.WTS, VHash: message.HashValue(v.Value)})
				}
				if rng.Intn(2) == 0 {
					txn.WriteSet = append(txn.WriteSet, message.WriteSetEntry{Key: k, Value: []byte("x")})
				}
			}
			return txn, timestamp.Timestamp{Time: int64(10 + rng.Intn(10)), ClientID: cid}
		}
		t1, ts1 := mk(1)
		t2, ts2 := mk(2)

		st1 := Validate(s, t1, ts1)
		st2 := Validate(s, t2, ts2)
		if st1 == message.StatusValidatedOK {
			ApplyCommit(s, t1, ts1)
		}
		if st2 == message.StatusValidatedOK {
			ApplyCommit(s, t2, ts2)
		}
		if st1 != message.StatusValidatedOK || st2 != message.StatusValidatedOK {
			return true // at most one admitted: nothing to check
		}
		// Both admitted: they must be serializable in timestamp order.
		// Check the later transaction's reads against the earlier's writes:
		// if the later read a key the earlier wrote, it must have read the
		// earlier's version or the earlier's write must order after it.
		first, firstTS, second, secondTS := t1, ts1, t2, ts2
		if ts2.Less(ts1) {
			first, firstTS, second, secondTS = t2, ts2, t1, ts1
		}
		_ = secondTS
		for _, w := range first.WriteSet {
			for _, r := range second.ReadSet {
				if w.Key == r.Key && r.WTS.Less(firstTS) {
					// Second read an older version but serializes after
					// first's write — only admissible if second validated
					// BEFORE first registered, which sequential validation
					// forbids. Violation.
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
