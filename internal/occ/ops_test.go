package occ

import (
	"testing"

	"meerkat/internal/message"
	"meerkat/internal/timestamp"
	"meerkat/internal/vstore"
)

func opTxn(seq uint64, key string, kind message.OpKind, delta int64) *message.Txn {
	return &message.Txn{
		ID:    timestamp.TxnID{Seq: seq, ClientID: seq},
		OpSet: []message.OpSetEntry{{Key: key, Kind: kind, Delta: delta}},
	}
}

// TestConcurrentOpsNeverConflict is the tentpole's OCC property: any number
// of commutative ops on the same key, validated concurrently (all pending at
// once, commits interleaved), all pass validation — op-op contention merges
// instead of aborting.
func TestConcurrentOpsNeverConflict(t *testing.T) {
	s := newStore()
	const n = 16
	txns := make([]*message.Txn, n)
	for i := 0; i < n; i++ {
		txns[i] = opTxn(uint64(i+1), "a", message.OpIncrement, 1)
		// Every transaction validates while ALL earlier ones are still
		// pending writers on "a".
		if got := Validate(s, txns[i], ts(int64(10+i))); got != message.StatusValidatedOK {
			t.Fatalf("op txn %d aborted with %d pending ops on the key", i, i)
		}
	}
	// Commit in a scrambled order; every merge must land.
	for _, i := range []int{3, 0, 15, 7, 1, 2, 14, 5, 4, 6, 9, 8, 11, 10, 13, 12} {
		ApplyCommit(s, txns[i], ts(int64(10+i)))
	}
	v, _ := s.Read("a")
	if string(v.Value) != "16" {
		t.Fatalf("merged value = %q, want 16 (a0 is non-numeric, counts as 0)", v.Value)
	}
	if r, w := s.Pending("a"); r != 0 || w != 0 {
		t.Fatalf("pending after commits = (%d,%d)", r, w)
	}
}

// TestOpVsRMWConflicts pins the asymmetry: ops never abort each other, but an
// op still respects reads — it cannot interpose before a committed or pending
// read, and a pending op makes a concurrent read-validation fail (the read
// cannot know the merged value yet).
func TestOpVsRMWConflicts(t *testing.T) {
	// A pending op blocks read validation at a later timestamp (min-writer
	// check), exactly like a pending write would.
	s := newStore()
	op := opTxn(1, "a", message.OpIncrement, 1)
	if Validate(s, op, ts(10)) != message.StatusValidatedOK {
		t.Fatal("op validation failed on clean key")
	}
	r := rmw("a", ts(1), "a1")
	if Validate(s, r, ts(20)) != message.StatusValidatedAbort {
		t.Fatal("read at ts 20 validated past a pending op at ts 10")
	}
	ApplyCommit(s, op, ts(10))

	// An op behind a committed read aborts: it would change a value the
	// reader already observed.
	s2 := newStore()
	rd := &message.Txn{ID: timestamp.TxnID{Seq: 9, ClientID: 9},
		ReadSet: []message.ReadSetEntry{{Key: "b", WTS: ts(1), VHash: vh("b0")}}}
	if Validate(s2, rd, ts(50)) != message.StatusValidatedOK {
		t.Fatal("read validation failed on clean key")
	}
	ApplyCommit(s2, rd, ts(50))
	late := opTxn(2, "b", message.OpIncrement, 1)
	if Validate(s2, late, ts(40)) != message.StatusValidatedAbort {
		t.Fatal("op at ts 40 validated under a committed read at ts 50")
	}
	if _, w := s2.Pending("b"); w != 0 {
		t.Fatalf("failed op validation left %d pending writers", w)
	}
}

// TestOpValidateBackout asserts a failed mixed validation backs out every
// partial registration, including op entries.
func TestOpValidateBackout(t *testing.T) {
	s := newStore()
	// Commit a read at ts 50 so any writer/op below aborts on "c".
	rd := &message.Txn{ID: timestamp.TxnID{Seq: 1, ClientID: 1},
		ReadSet: []message.ReadSetEntry{{Key: "c", WTS: ts(1), VHash: vh("c0")}}}
	if Validate(s, rd, ts(50)) != message.StatusValidatedOK {
		t.Fatal("setup read failed")
	}
	ApplyCommit(s, rd, ts(50))

	txn := &message.Txn{
		ID:       timestamp.TxnID{Seq: 2, ClientID: 2},
		ReadSet:  []message.ReadSetEntry{{Key: "a", WTS: ts(1), VHash: vh("a0")}},
		WriteSet: []message.WriteSetEntry{{Key: "b", Value: []byte("x")}},
		OpSet: []message.OpSetEntry{
			{Key: "a", Kind: message.OpIncrement, Delta: 1},
			{Key: "c", Kind: message.OpIncrement, Delta: 1}, // aborts here
		},
	}
	if Validate(s, txn, ts(40)) != message.StatusValidatedAbort {
		t.Fatal("validation unexpectedly passed")
	}
	for _, k := range []string{"a", "b", "c"} {
		if r, w := s.Pending(k); r != 0 || w != 0 {
			t.Fatalf("key %s left pending (%d,%d) after backout", k, r, w)
		}
	}
}

// TestOpAbortBackout asserts ApplyAbort clears op registrations left by a
// successful validation.
func TestOpAbortBackout(t *testing.T) {
	s := newStore()
	txn := &message.Txn{
		ID:       timestamp.TxnID{Seq: 3, ClientID: 3},
		WriteSet: []message.WriteSetEntry{{Key: "a", Value: []byte("x")}},
		OpSet:    []message.OpSetEntry{{Key: "b", Kind: message.OpAppend, Arg: []byte("y")}},
	}
	if Validate(s, txn, ts(10)) != message.StatusValidatedOK {
		t.Fatal("validation failed")
	}
	ApplyAbort(s, txn, ts(10))
	for _, k := range []string{"a", "b"} {
		if r, w := s.Pending(k); r != 0 || w != 0 {
			t.Fatalf("key %s left pending (%d,%d) after abort", k, r, w)
		}
	}
	if v, _ := s.Read("b"); string(v.Value) != "b0" {
		t.Fatalf("aborted op changed the value: %q", v.Value)
	}
}

// TestMixedTxnSerializability: a transaction carrying reads, writes, AND ops
// keeps plain-OCC semantics for the read/write part while its op part merges.
func TestMixedTxnSerializability(t *testing.T) {
	s := vstore.New(vstore.Config{})
	s.Load("bal", []byte("100"), ts(1))
	s.Load("audit", []byte(""), ts(1))

	txn := &message.Txn{
		ID:       timestamp.TxnID{Seq: 4, ClientID: 4},
		ReadSet:  []message.ReadSetEntry{{Key: "bal", WTS: ts(1), VHash: vh("100")}},
		WriteSet: []message.WriteSetEntry{{Key: "bal", Value: []byte("90")}},
		OpSet:    []message.OpSetEntry{{Key: "audit", Kind: message.OpAppend, Arg: []byte("-10;")}},
	}
	if Validate(s, txn, ts(10)) != message.StatusValidatedOK {
		t.Fatal("mixed txn validation failed")
	}
	ApplyCommit(s, txn, ts(10))
	if v, _ := s.Read("bal"); string(v.Value) != "90" {
		t.Fatalf("bal = %q", v.Value)
	}
	if v, _ := s.Read("audit"); string(v.Value) != "-10;" {
		t.Fatalf("audit = %q", v.Value)
	}

	// A second mixed txn whose read is now stale aborts entirely — the op
	// does not leak through a failed validation.
	stale := &message.Txn{
		ID:      timestamp.TxnID{Seq: 5, ClientID: 5},
		ReadSet: []message.ReadSetEntry{{Key: "bal", WTS: ts(1), VHash: vh("100")}}, // stale: latest is ts 10
		OpSet:   []message.OpSetEntry{{Key: "audit", Kind: message.OpAppend, Arg: []byte("XX")}},
	}
	if Validate(s, stale, ts(20)) != message.StatusValidatedAbort {
		t.Fatal("stale mixed txn validated")
	}
	if v, _ := s.Read("audit"); string(v.Value) != "-10;" {
		t.Fatalf("aborted txn's op leaked: %q", v.Value)
	}
}

// TestOpMergeBelowReadAbortsStaleReader pins the reason ReadSetEntry carries a
// value hash. An op that merges BELOW the latest version re-materializes the
// value at an existing wts without advancing it, so a reader who observed the
// old value passes the timestamp equality check; only the hash comparison
// proves it read a value that no longer exists in the serial order.
func TestOpMergeBelowReadAbortsStaleReader(t *testing.T) {
	s := vstore.New(vstore.Config{})
	opA := opTxn(1, "n", message.OpIncrement, 10)
	opB := opTxn(2, "n", message.OpIncrement, 1)
	if Validate(s, opA, ts(20)) != message.StatusValidatedOK {
		t.Fatal("opA validation failed")
	}
	if Validate(s, opB, ts(30)) != message.StatusValidatedOK {
		t.Fatal("opB validation failed")
	}
	// opB commits first; a reader observes "1"@30 while opA is still pending.
	ApplyCommit(s, opB, ts(30))
	v, _ := s.Read("n")
	if string(v.Value) != "1" {
		t.Fatalf("pre-merge value = %q, want 1", v.Value)
	}
	rd := &message.Txn{
		ID:      timestamp.TxnID{Seq: 8, ClientID: 8},
		ReadSet: []message.ReadSetEntry{{Key: "n", WTS: v.WTS, VHash: message.HashValue(v.Value)}},
	}
	// opA merges below: the version at wts 30 re-materializes to "11".
	ApplyCommit(s, opA, ts(20))
	if Validate(s, rd, ts(40)) != message.StatusValidatedAbort {
		t.Fatal("reader of a re-materialized value validated on timestamp alone")
	}
	// A fresh read of the merged value validates cleanly.
	v2, _ := s.Read("n")
	if string(v2.Value) != "11" {
		t.Fatalf("merged value = %q, want 11", v2.Value)
	}
	rd2 := &message.Txn{
		ID:      timestamp.TxnID{Seq: 9, ClientID: 9},
		ReadSet: []message.ReadSetEntry{{Key: "n", WTS: v2.WTS, VHash: message.HashValue(v2.Value)}},
	}
	if Validate(s, rd2, ts(41)) != message.StatusValidatedOK {
		t.Fatal("fresh reader of the merged value failed validation")
	}
}
