package occ

import (
	"sync"
	"testing"

	"meerkat/internal/timestamp"
)

func wts(t int64, c uint64) timestamp.Timestamp {
	return timestamp.Timestamp{Time: t, ClientID: c}
}

func TestWatermarkAdvances(t *testing.T) {
	w := NewWatermarkTracker()
	if got := w.Watermark(); got != timestamp.Zero {
		t.Fatalf("fresh tracker watermark %v, want zero", got)
	}
	// No pending: the bound is the caller's cap.
	if got := w.Advance(wts(10, 1)); got != wts(10, 1) {
		t.Fatalf("advance with empty pending = %v, want cap", got)
	}
	// A pending transaction below the cap drags the bound just under it.
	id := timestamp.TxnID{Seq: 1, ClientID: 9}
	w.Add(id, wts(5, 3))
	if got := w.Advance(wts(10, 1)); got != wts(5, 2) {
		t.Fatalf("advance with pending 5:3 = %v, want 5:2", got)
	}
	// The published watermark never regresses below what it has seen.
	if got := w.Watermark(); got != wts(10, 1) {
		t.Fatalf("published watermark %v, want the earlier 10:1", got)
	}
	w.Finalize(id)
	if w.Pending() != 0 {
		t.Fatalf("pending = %d after finalize", w.Pending())
	}
}

// TestWatermarkMonotoneUnderRace hammers one tracker from concurrent
// adders, finalizers, and advancers — the shapes a replica core's validate,
// accept, commit, and snapshot-read handlers produce — and asserts the
// published watermark never moves backwards. Run under -race this also
// proves the tracker's internal locking.
func TestWatermarkMonotoneUnderRace(t *testing.T) {
	w := NewWatermarkTracker()
	const workers = 8
	const perWorker = 2000

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			last := timestamp.Zero
			for i := 0; i < perWorker; i++ {
				id := timestamp.TxnID{Seq: uint64(i), ClientID: uint64(g)}
				tstamp := wts(int64(i%97)+1, uint64(g+1))
				switch i % 3 {
				case 0:
					w.Add(id, tstamp)
				case 1:
					w.Finalize(id)
				default:
					w.Advance(tstamp)
				}
				got := w.Watermark()
				if got.Less(last) {
					t.Errorf("watermark regressed: %v after %v", got, last)
					return
				}
				last = got
			}
		}(g)
	}
	wg.Wait()
}
