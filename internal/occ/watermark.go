package occ

import (
	"sync"

	"meerkat/internal/timestamp"
)

// WatermarkTracker maintains one replica core's commit watermark: the highest
// timestamp below which no transaction this core has prepared — validated OK
// or accepted a commit proposal for — can still be undecided. A core adds a
// transaction when it becomes prepared-but-undecided and removes it when the
// outcome is finalized; the watermark sits just below the earliest pending
// timestamp.
//
// The watermark is advisory: it summarizes only this core's trecord
// partition, so the read-only fast path never trusts it for safety (the
// per-key confirmation bound computed inside vstore.SnapshotRead is what
// carries the safety argument — it sees pending writers from every core).
// The tracker exists for the advertised watermark on plain multi-read
// replies, for round-down hints, and as a diagnostic that the prepared set
// drains.
//
// All methods are safe for concurrent use. The published watermark returned
// by Watermark is monotone: it never regresses, even as lower-timestamped
// transactions enter the pending set afterwards (another reason it cannot be
// a safety carrier).
type WatermarkTracker struct {
	mu      sync.Mutex
	pending map[timestamp.TxnID]timestamp.Timestamp
	pub     timestamp.Timestamp
}

// NewWatermarkTracker returns an empty tracker.
func NewWatermarkTracker() *WatermarkTracker {
	return &WatermarkTracker{pending: make(map[timestamp.TxnID]timestamp.Timestamp)}
}

// Add records that txn tid is prepared at ts and undecided. Re-adding the
// same tid (a duplicate validate, or accept after validate) keeps the latest
// timestamp.
func (w *WatermarkTracker) Add(tid timestamp.TxnID, ts timestamp.Timestamp) {
	w.mu.Lock()
	w.pending[tid] = ts
	w.mu.Unlock()
}

// Finalize records that tid's outcome is decided. Unknown tids are ignored
// (a commit can arrive for a transaction this core never validated).
func (w *WatermarkTracker) Finalize(tid timestamp.TxnID) {
	w.mu.Lock()
	delete(w.pending, tid)
	w.mu.Unlock()
}

// Pending returns the number of prepared-but-undecided transactions.
func (w *WatermarkTracker) Pending() int {
	w.mu.Lock()
	n := len(w.pending)
	w.mu.Unlock()
	return n
}

// Advance computes the instantaneous bound min(cap, just-below-earliest-
// pending), folds it into the published watermark (which only moves
// forward), and returns the instantaneous bound. cap is the highest
// timestamp the caller can vouch for from its own context — e.g. the
// snapshot timestamp it just served.
func (w *WatermarkTracker) Advance(cap timestamp.Timestamp) timestamp.Timestamp {
	w.mu.Lock()
	b := cap
	for _, ts := range w.pending {
		if p := ts.Prev(); p.Less(b) {
			b = p
		}
	}
	if w.pub.Less(b) {
		w.pub = b
	}
	w.mu.Unlock()
	return b
}

// Watermark returns the published (monotone) watermark.
func (w *WatermarkTracker) Watermark() timestamp.Timestamp {
	w.mu.Lock()
	p := w.pub
	w.mu.Unlock()
	return p
}
