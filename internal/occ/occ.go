// Package occ implements the paper's Algorithm 1 — Meerkat's parallel
// optimistic concurrency-control checks — plus the write phase (§5.2.3).
//
// The checks run against the versioned store with per-key locks only, so
// validations of transactions with disjoint read/write sets proceed with no
// shared state whatsoever. The same algorithm serves Meerkat, the TAPIR-like
// baseline, Meerkat-PB, and KuaFu++'s primary-side validation, matching the
// paper's shared storage/concurrency-control layer.
package occ

import (
	"meerkat/internal/message"
	"meerkat/internal/timestamp"
	"meerkat/internal/vstore"
)

// Validate performs the OCC checks of Algorithm 1 for txn at proposed
// timestamp ts. On success it returns StatusValidatedOK, leaving the
// transaction's timestamp registered in the pending readers/writers of every
// key it touched (to be cleared by ApplyCommit or ApplyAbort). On failure it
// returns StatusValidatedAbort with all partial registrations backed out.
func Validate(s *vstore.Store, txn *message.Txn, ts timestamp.Timestamp) message.Status {
	// Validate the read set. A read is valid if it saw the latest committed
	// version (e.wts <= r.wts) and no pending writer could commit a newer
	// version that ts should have observed (ts <= min(e.writers)).
	for i := range txn.ReadSet {
		r := &txn.ReadSet[i]
		if !s.ValidateRead(r.Key, r.WTS, r.VHash, ts) {
			// Back out the readers registered so far.
			for j := 0; j < i; j++ {
				s.RemoveReader(txn.ReadSet[j].Key, ts)
			}
			return message.StatusValidatedAbort
		}
	}

	// Validate the write set. A write is valid if it would not interpose
	// itself before a committed read (ts >= e.rts) or a pending validated
	// read (ts >= max(e.readers)).
	for i := range txn.WriteSet {
		w := &txn.WriteSet[i]
		if !s.ValidateWrite(w.Key, ts) {
			for j := range txn.ReadSet {
				s.RemoveReader(txn.ReadSet[j].Key, ts)
			}
			for j := 0; j < i; j++ {
				s.RemoveWriter(txn.WriteSet[j].Key, ts)
			}
			return message.StatusValidatedAbort
		}
	}

	// Validate the op set. A commutative op validates exactly like a write —
	// it must not interpose before a committed or pending read — but carries
	// no read version, so it never aborts on a concurrent writer or op: two
	// ops on the same key at different timestamps both pass (the store merges
	// them in timestamp order at commit), which is what turns hot-key
	// contention into merges instead of aborts.
	for i := range txn.OpSet {
		o := &txn.OpSet[i]
		if !s.ValidateWrite(o.Key, ts) {
			for j := range txn.ReadSet {
				s.RemoveReader(txn.ReadSet[j].Key, ts)
			}
			for j := range txn.WriteSet {
				s.RemoveWriter(txn.WriteSet[j].Key, ts)
			}
			for j := 0; j < i; j++ {
				s.RemoveWriter(txn.OpSet[j].Key, ts)
			}
			return message.StatusValidatedAbort
		}
	}

	return message.StatusValidatedOK
}

// ApplyCommit performs OCC's write phase for a committed transaction: reads
// advance each key's rts and writes install new versions at ts (skipped by
// the Thomas write rule when a newer version already exists). Pending
// registrations from a prior successful Validate are cleared as a side
// effect; it is also safe to call for transactions this replica never
// validated (e.g. learned through an epoch change), since clearing a
// registration that does not exist is a no-op and version installs are
// idempotent.
func ApplyCommit(s *vstore.Store, txn *message.Txn, ts timestamp.Timestamp) {
	for i := range txn.ReadSet {
		s.CommitRead(txn.ReadSet[i].Key, ts)
	}
	for i := range txn.WriteSet {
		s.CommitWrite(txn.WriteSet[i].Key, txn.WriteSet[i].Value, ts)
	}
	for i := range txn.OpSet {
		o := &txn.OpSet[i]
		s.CommitOp(o.Key, o.Kind, o.Delta, o.Arg, ts)
	}
}

// RegisterPending registers txn's write and op intents as pending writers
// without running the OCC checks. The slow-path accept phase uses it for
// transactions this replica never validated: an accepted-but-undecided write
// left unregistered would let the replica confirm a read-only snapshot the
// transaction can later commit below. ApplyCommit and ApplyAbort clear the
// registrations exactly as they would a validated transaction's.
func RegisterPending(s *vstore.Store, txn *message.Txn, ts timestamp.Timestamp) {
	for i := range txn.WriteSet {
		s.AddWriter(txn.WriteSet[i].Key, ts)
	}
	for i := range txn.OpSet {
		s.AddWriter(txn.OpSet[i].Key, ts)
	}
}

// ApplyAbort backs out the pending registrations left by a successful
// Validate for a transaction that ultimately aborted. Call it only when this
// replica's validation returned StatusValidatedOK (a failed Validate cleans
// up after itself).
func ApplyAbort(s *vstore.Store, txn *message.Txn, ts timestamp.Timestamp) {
	for i := range txn.ReadSet {
		s.RemoveReader(txn.ReadSet[i].Key, ts)
	}
	for i := range txn.WriteSet {
		s.RemoveWriter(txn.WriteSet[i].Key, ts)
	}
	for i := range txn.OpSet {
		s.RemoveWriter(txn.OpSet[i].Key, ts)
	}
}
