package replica_test

import (
	"testing"
	"time"

	"meerkat/internal/coordinator"
	"meerkat/internal/message"
	"meerkat/internal/replica"
	"meerkat/internal/timestamp"
	"meerkat/internal/topo"
	"meerkat/internal/transport"
)

type harness struct {
	t    *testing.T
	topo topo.Topology
	net  *transport.Inproc
	reps []*replica.Replica
	ep   transport.Endpoint
	in   *transport.Inbox
}

func newHarness(t *testing.T, shared bool, sweep time.Duration) *harness {
	t.Helper()
	tp := topo.Topology{Partitions: 1, Replicas: 3, Cores: 2}
	h := &harness{t: t, topo: tp, net: transport.NewInproc(transport.InprocConfig{})}
	for i := 0; i < 3; i++ {
		rep, err := replica.New(replica.Config{
			Topo: tp, Partition: 0, Index: i, Net: h.net,
			SharedRecord:  shared,
			SweepInterval: sweep,
			StaleAfter:    2 * sweep,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Start(); err != nil {
			t.Fatal(err)
		}
		h.reps = append(h.reps, rep)
	}
	h.in = transport.NewInbox(64)
	ep, err := h.net.Listen(message.Addr{Node: topo.ClientNodeBase + 99, Core: 0}, h.in.Handle)
	if err != nil {
		t.Fatal(err)
	}
	h.ep = ep
	t.Cleanup(func() {
		for _, r := range h.reps {
			r.Stop()
		}
		h.net.Close()
	})
	return h
}

func (h *harness) send(rep int, m *message.Message) {
	h.t.Helper()
	if err := h.ep.Send(h.topo.ReplicaAddr(0, rep, m.CoreID), m); err != nil {
		h.t.Fatal(err)
	}
}

func (h *harness) recv(want message.Type) *message.Message {
	h.t.Helper()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case m := <-h.in.C:
			if m.Type == want {
				return m
			}
		case <-deadline:
			h.t.Fatalf("timed out waiting for %v", want)
		}
	}
}

func ts(t int64, c uint64) timestamp.Timestamp { return timestamp.Timestamp{Time: t, ClientID: c} }

func rmwTxn(seq, client uint64, key, val string, readWTS timestamp.Timestamp) message.Txn {
	return message.Txn{
		ID: timestamp.TxnID{Seq: seq, ClientID: client},
		// The reads here observe a missing key (version Zero, no value), so the
		// hash matches the store's empty-chain hash.
		ReadSet:  []message.ReadSetEntry{{Key: key, WTS: readWTS, VHash: message.HashValue(nil)}},
		WriteSet: []message.WriteSetEntry{{Key: key, Value: []byte(val)}},
	}
}

func TestValidateReplyAndIdempotence(t *testing.T) {
	h := newHarness(t, false, 0)
	txn := rmwTxn(1, 1, "k", "v", timestamp.Zero)
	val := &message.Message{Type: message.TypeValidate, Txn: txn, TID: txn.ID, TS: ts(10, 1), CoreID: 0}

	h.send(0, val)
	r1 := h.recv(message.TypeValidateReply)
	if r1.Status != message.StatusValidatedOK || r1.TID != txn.ID {
		t.Fatalf("reply %+v", r1)
	}
	// A retry must re-reply with the recorded status, not re-validate.
	h.send(0, val)
	r2 := h.recv(message.TypeValidateReply)
	if r2.Status != message.StatusValidatedOK {
		t.Fatalf("duplicate validate reply %+v", r2)
	}
}

func TestConflictingValidateAborts(t *testing.T) {
	h := newHarness(t, false, 0)
	t1 := rmwTxn(1, 1, "k", "a", timestamp.Zero)
	t2 := rmwTxn(1, 2, "k", "b", timestamp.Zero)

	h.send(0, &message.Message{Type: message.TypeValidate, Txn: t1, TID: t1.ID, TS: ts(10, 1), CoreID: 0})
	if r := h.recv(message.TypeValidateReply); r.Status != message.StatusValidatedOK {
		t.Fatalf("t1: %+v", r)
	}
	// t2 reads version Zero but proposes ts above t1's pending write.
	h.send(0, &message.Message{Type: message.TypeValidate, Txn: t2, TID: t2.ID, TS: ts(20, 2), CoreID: 0})
	if r := h.recv(message.TypeValidateReply); r.Status != message.StatusValidatedAbort {
		t.Fatalf("t2: %+v", r)
	}
}

func TestCommitAppliesWrites(t *testing.T) {
	h := newHarness(t, false, 0)
	txn := rmwTxn(1, 1, "k", "v", timestamp.Zero)
	h.send(0, &message.Message{Type: message.TypeValidate, Txn: txn, TID: txn.ID, TS: ts(10, 1), CoreID: 0})
	h.recv(message.TypeValidateReply)
	h.send(0, &message.Message{Type: message.TypeCommit, TID: txn.ID, Status: message.StatusCommitted, CoreID: 0})

	deadline := time.Now().Add(time.Second)
	for {
		if v, ok := h.reps[0].Store().Read("k"); ok && string(v.Value) == "v" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("commit never applied")
		}
		time.Sleep(time.Millisecond)
	}
	// Duplicate commit and commit for an unknown txn are ignored.
	h.send(0, &message.Message{Type: message.TypeCommit, TID: txn.ID, Status: message.StatusCommitted, CoreID: 0})
	h.send(0, &message.Message{Type: message.TypeCommit, TID: timestamp.TxnID{Seq: 99, ClientID: 9}, Status: message.StatusCommitted, CoreID: 0})
	time.Sleep(10 * time.Millisecond)
	if vs := h.reps[0].Store().Versions("k"); len(vs) != 1 {
		t.Fatalf("duplicate commit re-applied: %d versions", len(vs))
	}
}

func TestAbortCleansPendingState(t *testing.T) {
	h := newHarness(t, false, 0)
	txn := rmwTxn(1, 1, "k", "v", timestamp.Zero)
	h.send(0, &message.Message{Type: message.TypeValidate, Txn: txn, TID: txn.ID, TS: ts(10, 1), CoreID: 0})
	h.recv(message.TypeValidateReply)
	h.send(0, &message.Message{Type: message.TypeCommit, TID: txn.ID, Status: message.StatusAborted, CoreID: 0})
	deadline := time.Now().Add(time.Second)
	for {
		r, w := h.reps[0].Store().Pending("k")
		if r == 0 && w == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pending state leaked: (%d,%d)", r, w)
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := h.reps[0].Store().Read("k"); ok {
		t.Fatal("aborted write visible")
	}
}

func TestCoordChangeViewFencing(t *testing.T) {
	h := newHarness(t, false, 0)
	tid := timestamp.TxnID{Seq: 1, ClientID: 1}

	// View 5 promised.
	h.send(0, &message.Message{Type: message.TypeCoordChange, TID: tid, View: 5, CoreID: 0})
	ack := h.recv(message.TypeCoordChangeAck)
	if !ack.OK || ack.View != 5 || len(ack.Records) != 1 {
		t.Fatalf("ack %+v", ack)
	}
	// Lower view rejected, reports current view.
	h.send(0, &message.Message{Type: message.TypeCoordChange, TID: tid, View: 3, CoreID: 0})
	nack := h.recv(message.TypeCoordChangeAck)
	if nack.OK || nack.View != 5 {
		t.Fatalf("nack %+v", nack)
	}
	// Accept with a stale view rejected.
	h.send(0, &message.Message{Type: message.TypeAccept, TID: tid, Status: message.StatusAcceptCommit, View: 3, CoreID: 0})
	arep := h.recv(message.TypeAcceptReply)
	if arep.OK {
		t.Fatalf("stale accept accepted: %+v", arep)
	}
	// Accept at the promised view succeeds.
	h.send(0, &message.Message{Type: message.TypeAccept, TID: tid, Status: message.StatusAcceptCommit, View: 5, CoreID: 0})
	arep = h.recv(message.TypeAcceptReply)
	if !arep.OK || arep.View != 5 {
		t.Fatalf("accept at promised view: %+v", arep)
	}
}

func TestEpochChangePausesValidation(t *testing.T) {
	h := newHarness(t, false, 0)
	// Pause core 0 of replica 0.
	h.send(0, &message.Message{Type: message.TypeEpochChange, Epoch: 1, CoreID: 0})
	ack := h.recv(message.TypeEpochChangeAck)
	if ack.Epoch != 1 {
		t.Fatalf("ack %+v", ack)
	}
	// Validation on the paused core is dropped (no reply).
	txn := rmwTxn(1, 1, "k", "v", timestamp.Zero)
	h.send(0, &message.Message{Type: message.TypeValidate, Txn: txn, TID: txn.ID, TS: ts(10, 1), CoreID: 0})
	select {
	case m := <-h.in.C:
		if m.Type == message.TypeValidateReply {
			t.Fatalf("paused core validated: %+v", m)
		}
	case <-time.After(50 * time.Millisecond):
	}
	// Resume with an empty merged trecord; validation works again.
	h.send(0, &message.Message{Type: message.TypeEpochChangeComplete, Epoch: 1, CoreID: 0})
	h.recv(message.TypeEpochChangeCompleteAck)
	h.send(0, &message.Message{Type: message.TypeValidate, Txn: txn, TID: txn.ID, TS: ts(10, 1), CoreID: 0})
	if r := h.recv(message.TypeValidateReply); r.Status != message.StatusValidatedOK {
		t.Fatalf("post-resume validate: %+v", r)
	}
	if h.reps[0].Epoch() != 1 {
		t.Fatalf("epoch = %d", h.reps[0].Epoch())
	}
}

func TestBackupCoordinatorCompletesOrphan(t *testing.T) {
	// A coordinator validates on all replicas and vanishes before sending
	// commit. A Recoverer (backup coordinator) must finish the transaction
	// with a consistent outcome and unblock the key.
	h := newHarness(t, false, 0)
	txn := rmwTxn(1, 1, "k", "v", timestamp.Zero)
	for rep := 0; rep < 3; rep++ {
		h.send(rep, &message.Message{Type: message.TypeValidate, Txn: txn, TID: txn.ID, TS: ts(10, 1), CoreID: 0})
	}
	for i := 0; i < 3; i++ {
		h.recv(message.TypeValidateReply)
	}

	rec, err := coordinator.NewRecoverer(h.net, h.topo,
		message.Addr{Node: topo.ClientNodeBase + 500, Core: 0}, 2, 100*time.Millisecond, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	committed, err := rec.Recover(0, txn.ID, 0, 0)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !committed {
		t.Fatal("validated-everywhere transaction was aborted by recovery")
	}
	// The write must be applied and pending state cleared.
	deadline := time.Now().Add(time.Second)
	for {
		v, ok := h.reps[0].Store().Read("k")
		r, w := h.reps[0].Store().Pending("k")
		if ok && string(v.Value) == "v" && r == 0 && w == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovery did not finish cleanly: ok=%v pending=(%d,%d)", ok, r, w)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBackupCoordinatorAbortsUnvalidatedOrphan(t *testing.T) {
	// The orphan only reached one replica: recovery cannot prove a commit,
	// so it must abort everywhere.
	h := newHarness(t, false, 0)
	txn := rmwTxn(1, 1, "k", "v", timestamp.Zero)
	h.send(0, &message.Message{Type: message.TypeValidate, Txn: txn, TID: txn.ID, TS: ts(10, 1), CoreID: 0})
	h.recv(message.TypeValidateReply)

	rec, err := coordinator.NewRecoverer(h.net, h.topo,
		message.Addr{Node: topo.ClientNodeBase + 500, Core: 0}, 2, 100*time.Millisecond, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	committed, err := rec.Recover(0, txn.ID, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("under-validated orphan committed")
	}
	deadline := time.Now().Add(time.Second)
	for {
		r, w := h.reps[0].Store().Pending("k")
		if r == 0 && w == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("abort did not clean pending state: (%d,%d)", r, w)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestConcurrentBackupCoordinatorsAgree(t *testing.T) {
	// Two backup coordinators race to finish the same orphan: views ensure
	// both reach the same outcome.
	h := newHarness(t, false, 0)
	txn := rmwTxn(1, 1, "k", "v", timestamp.Zero)
	for rep := 0; rep < 3; rep++ {
		h.send(rep, &message.Message{Type: message.TypeValidate, Txn: txn, TID: txn.ID, TS: ts(10, 1), CoreID: 0})
	}
	for i := 0; i < 3; i++ {
		h.recv(message.TypeValidateReply)
	}

	results := make(chan bool, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			rec, err := coordinator.NewRecoverer(h.net, h.topo,
				message.Addr{Node: topo.ClientNodeBase + 600 + uint32(i), Core: 0},
				uint64(i), 50*time.Millisecond, 10)
			if err != nil {
				t.Error(err)
				results <- false
				return
			}
			defer rec.Close()
			committed, err := rec.Recover(0, txn.ID, 0, 0)
			if err != nil {
				t.Errorf("recover %d: %v", i, err)
			}
			results <- committed
		}(i)
	}
	a, b := <-results, <-results
	if a != b {
		t.Fatalf("backup coordinators disagreed: %v vs %v", a, b)
	}
	if !a {
		t.Fatal("fully validated transaction aborted")
	}
}

func TestSweeperFinishesOrphan(t *testing.T) {
	// With sweeping enabled, an orphaned transaction is finished by the
	// replicas themselves, no external recovery needed.
	h := newHarness(t, false, 20*time.Millisecond)
	txn := rmwTxn(1, 1, "k", "v", timestamp.Zero)
	for rep := 0; rep < 3; rep++ {
		h.send(rep, &message.Message{Type: message.TypeValidate, Txn: txn, TID: txn.ID, TS: ts(10, 1), CoreID: 0})
	}
	for i := 0; i < 3; i++ {
		h.recv(message.TypeValidateReply)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		v, ok := h.reps[0].Store().Read("k")
		r, w := h.reps[0].Store().Pending("k")
		if ok && string(v.Value) == "v" && r == 0 && w == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweeper never finished the orphan: ok=%v pending=(%d,%d)", ok, r, w)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSharedRecordModeProtocol(t *testing.T) {
	// The TAPIR-like shared-record mode must run the same protocol.
	h := newHarness(t, true, 0)
	txn := rmwTxn(1, 1, "k", "v", timestamp.Zero)
	h.send(0, &message.Message{Type: message.TypeValidate, Txn: txn, TID: txn.ID, TS: ts(10, 1), CoreID: 0})
	if r := h.recv(message.TypeValidateReply); r.Status != message.StatusValidatedOK {
		t.Fatalf("validate: %+v", r)
	}
	// Same tid on the *other* core sees the same shared record.
	h.send(0, &message.Message{Type: message.TypeValidate, Txn: txn, TID: txn.ID, TS: ts(10, 1), CoreID: 1})
	if r := h.recv(message.TypeValidateReply); r.Status != message.StatusValidatedOK {
		t.Fatalf("cross-core duplicate: %+v", r)
	}
	h.send(0, &message.Message{Type: message.TypeCommit, TID: txn.ID, Status: message.StatusCommitted, CoreID: 0})
	deadline := time.Now().Add(time.Second)
	for {
		if v, ok := h.reps[0].Store().Read("k"); ok && string(v.Value) == "v" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("commit not applied in shared mode")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReadServedByAnyCore(t *testing.T) {
	h := newHarness(t, false, 0)
	h.reps[2].Store().Load("k", []byte("v"), ts(1, 0))
	h.send(2, &message.Message{Type: message.TypeRead, Key: "k", Seq: 7, CoreID: 1})
	r := h.recv(message.TypeReadReply)
	if !r.OK || string(r.Value) != "v" || r.Seq != 7 || r.TS != ts(1, 0) {
		t.Fatalf("read reply %+v", r)
	}
	// Missing key reads as not-found with version Zero.
	h.send(2, &message.Message{Type: message.TypeRead, Key: "nope", Seq: 8, CoreID: 0})
	r = h.recv(message.TypeReadReply)
	if r.OK || !r.TS.IsZero() {
		t.Fatalf("missing-key reply %+v", r)
	}
}
