package replica_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"meerkat/internal/clock"
	"meerkat/internal/coordinator"
	"meerkat/internal/replica"
	"meerkat/internal/timestamp"
	"meerkat/internal/topo"
	"meerkat/internal/transport"
)

// multiReadStack is a full replica group plus coordinator-building, for
// end-to-end batched-read tests (this package already sits above both layers,
// so the equivalence tests live here rather than in internal/coordinator).
type multiReadStack struct {
	t    testing.TB
	topo topo.Topology
	net  *transport.Inproc
	reps []*replica.Replica
}

func newMultiReadStack(t testing.TB, partitions int) *multiReadStack {
	t.Helper()
	tp := topo.Topology{Partitions: partitions, Replicas: 3, Cores: 2}
	s := &multiReadStack{t: t, topo: tp, net: transport.NewInproc(transport.InprocConfig{})}
	for p := 0; p < partitions; p++ {
		for i := 0; i < 3; i++ {
			rep, err := replica.New(replica.Config{Topo: tp, Partition: p, Index: i, Net: s.net})
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.Start(); err != nil {
				t.Fatal(err)
			}
			s.reps = append(s.reps, rep)
		}
	}
	t.Cleanup(func() {
		for _, r := range s.reps {
			r.Stop()
		}
		s.net.Close()
	})
	return s
}

func (s *multiReadStack) load(key string, val []byte) {
	ts := timestamp.Timestamp{Time: 1, ClientID: 0}
	p := s.topo.PartitionForKey(key)
	for i := 0; i < s.topo.Replicas; i++ {
		s.reps[p*s.topo.Replicas+i].Store().Load(key, val, ts)
	}
}

func (s *multiReadStack) newCoordinator(clientID uint64) *coordinator.Coordinator {
	s.t.Helper()
	c, err := coordinator.New(coordinator.Config{
		Topo: s.topo, ClientID: clientID, Net: s.net, Clock: clock.NewReal(),
		Timeout: 500 * time.Millisecond,
	})
	if err != nil {
		s.t.Fatal(err)
	}
	s.t.Cleanup(c.Close)
	return c
}

// TestMultiReadMatchesSequentialReads checks the batched execution phase
// against the single-key one on a quiescent store: for every batch shape,
// ReadMany must return exactly the value, version, and presence flag that
// per-key Reads return — including missing keys and duplicate keys within
// one batch — across both single- and multi-partition topologies.
func TestMultiReadMatchesSequentialReads(t *testing.T) {
	for _, partitions := range []int{1, 4} {
		t.Run(fmt.Sprintf("partitions=%d", partitions), func(t *testing.T) {
			s := newMultiReadStack(t, partitions)
			const nkeys = 32
			for i := 0; i < nkeys; i++ {
				s.load(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("val-%d", i)))
			}
			c := s.newCoordinator(1)

			batch := []string{"key-0", "key-7", "missing-a", "key-31", "key-7", "key-15", "missing-b"}
			got, err := c.ReadMany(batch)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(batch) {
				t.Fatalf("ReadMany returned %d results for %d keys", len(got), len(batch))
			}
			for i, k := range batch {
				val, ver, ok, err := c.Read(k)
				if err != nil {
					t.Fatal(err)
				}
				if got[i].OK != ok || got[i].WTS != ver || !bytes.Equal(got[i].Value, val) {
					t.Errorf("key %q: ReadMany = (%q, %v, %v), Read = (%q, %v, %v)",
						k, got[i].Value, got[i].WTS, got[i].OK, val, ver, ok)
				}
			}
		})
	}
}

// TestTxnReadManySemantics checks the transaction-level batch against the
// per-key path: buffered writes win, prior reads are reused, and duplicate
// keys inside one batch produce exactly one read-set entry.
func TestTxnReadManySemantics(t *testing.T) {
	s := newMultiReadStack(t, 2)
	s.load("a", []byte("va"))
	s.load("b", []byte("vb"))
	s.load("c", []byte("vc"))
	c := s.newCoordinator(1)

	txn := c.Begin()
	txn.Write("b", []byte("local"))
	if _, err := txn.Read("c"); err != nil {
		t.Fatal(err)
	}
	vals, err := txn.ReadMany([]string{"a", "b", "c", "a", "missing"})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("va"), []byte("local"), []byte("vc"), []byte("va"), nil}
	for i := range want {
		if !bytes.Equal(vals[i], want[i]) {
			t.Errorf("vals[%d] = %q, want %q", i, vals[i], want[i])
		}
	}
	// Read set: c (from Read), a, missing. b is write-buffered and the
	// duplicate a must not appear twice.
	if n := txn.ReadSetSize(); n != 3 {
		t.Errorf("read set size = %d, want 3 (c, a, missing)", n)
	}
	if ok, err := txn.Commit(); err != nil || !ok {
		t.Fatalf("commit: %v %v", ok, err)
	}
}

// TestMultiReadUnderConcurrentWriters runs batched readers against committing
// writers; under -race this is the aliasing check for the coordinator's
// grouping scratch (sent key slices must be immutable once handed to the
// transport). Each returned result must be a consistent committed version:
// value "v<n>" always carries the version some writer committed it at.
func TestMultiReadUnderConcurrentWriters(t *testing.T) {
	s := newMultiReadStack(t, 2)
	const nkeys = 8
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		s.load(keys[i], []byte("v0"))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := s.newCoordinator(uint64(100 + w))
			for n := 1; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				txn := c.Begin()
				k := keys[(w*3+n)%nkeys]
				if _, err := txn.Read(k); err != nil {
					t.Error(err)
					return
				}
				txn.Write(k, []byte(fmt.Sprintf("v%d-%d", w, n)))
				if _, err := txn.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	c := s.newCoordinator(1)
	for iter := 0; iter < 300; iter++ {
		got, err := c.ReadMany(keys)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if !got[i].OK {
				t.Fatalf("key %q missing under concurrent writers", keys[i])
			}
			if len(got[i].Value) == 0 {
				t.Fatalf("key %q: empty value", keys[i])
			}
		}
	}
	close(stop)
	wg.Wait()
}
