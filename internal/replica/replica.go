// Package replica implements a Meerkat multicore transactional database
// instance (§4.1): the three-layer system of versioned storage, concurrency
// control, and replication that runs on every replica server.
//
// Each replica runs Cores server threads. Every core owns one transport
// endpoint (its "NIC queue") and one trecord partition; because a core's
// handler runs only on its endpoint's delivery goroutine, the partition
// needs no locks. Transactions are steered to a core by the coordinator's
// chosen core id, reproducing the paper's Receive-Side Scaling trick, so all
// messages for one transaction are handled by one core.
//
// The SharedRecord option replaces the per-core partitions with a single
// mutex-protected record per replica — exactly the cross-core coordination
// point of the paper's TAPIR-like baseline — leaving every other code path
// identical, which is what makes the Meerkat/TAPIR comparison an ablation of
// the trecord design alone.
package replica

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"meerkat/internal/coordinator"
	"meerkat/internal/message"
	"meerkat/internal/obs"
	"meerkat/internal/occ"
	"meerkat/internal/shardmap"
	"meerkat/internal/timestamp"
	"meerkat/internal/topo"
	"meerkat/internal/transport"
	"meerkat/internal/trecord"
	"meerkat/internal/vstore"
	"meerkat/internal/wal"
)

// RecovererCore is the core number used for a replica's backup-coordinator
// endpoint; it is outside the range of real server threads.
const RecovererCore = 1 << 20

// Config parameterizes a replica.
type Config struct {
	Topo      topo.Topology
	Partition int // which partition group this replica belongs to
	Index     int // replica index within the group, 0..Replicas-1
	Net       transport.Network

	// Store, when non-nil, is used as the versioned storage layer
	// (pre-loaded databases, tests); otherwise an empty store is created.
	Store *vstore.Store

	// WAL, when non-nil, is the replica's durability layer: each core
	// appends commit records to its own log before applying them (write-
	// ahead ordering), and Start launches the periodic snapshotter. The
	// WAL must have exactly Topo.Cores logs. The replica takes ownership:
	// Stop closes it gracefully (flush + fsync), Crash drops it.
	WAL *wal.Store

	// SharedRecord selects the TAPIR-like baseline: one transaction
	// record per replica, shared across cores behind a mutex.
	SharedRecord bool

	// SweepInterval enables the backup-coordinator sweeper: every
	// interval, each core scans its records for transactions stalled
	// longer than StaleAfter and completes them through coordinator
	// recovery. Zero disables sweeping.
	SweepInterval time.Duration
	// StaleAfter is how long a non-final record may sit before the
	// sweeper considers its coordinator failed. Defaults to 5x
	// SweepInterval.
	StaleAfter time.Duration
	// RecoveryTimeout/RecoveryRetries parameterize the recovery runs this
	// replica initiates.
	RecoveryTimeout time.Duration
	RecoveryRetries int

	// CompactOnEpochChange trims finalized records from the trecord after
	// an epoch change installs the merged (all-final) trecord — the
	// checkpoint trimming of §5.3.1. Retries of trimmed transactions can
	// no longer be answered from the record, so enable it only when
	// clients give up well within an epoch.
	CompactOnEpochChange bool

	// Obs, when non-nil, receives replica-side lifecycle events. Each core
	// draws its own shard from the registry, so recording follows the same
	// per-core ownership discipline as the trecord itself.
	Obs *obs.Registry

	// Ownership, when non-nil, is this replica group's shard-ownership view
	// (shared by all the group's replicas and surviving crash recovery).
	// Requests touching a key the view says this group no longer owns are
	// answered with a WrongShard redirect instead of being executed, which
	// is what makes a shard split's seal effective: after the new view is
	// installed, no new transaction can validate against the moved range
	// here. Nil means the group owns every key (unsharded deployment) and
	// costs a single nil check on the hot path.
	Ownership *shardmap.Ownership

	// Recovering marks a replica rejoining after a crash: its store was
	// rebuilt from a donor copy (plus any local WAL replay), but it is blind
	// to transactions that were in flight around the transfer — it holds
	// none of their pending registrations, so its snapshot-read bound would
	// wrongly confirm snapshots those transactions can still commit under.
	// Until the first epoch change completes (which decides and applies
	// every in-flight transaction), the replica serves snapshot reads with
	// an unconfirmed watermark.
	Recovering bool
}

// Replica is one Meerkat database instance.
type Replica struct {
	cfg    Config
	store  *vstore.Store
	cores  []*core
	shared *trecord.Shared // non-nil iff cfg.SharedRecord
	epoch  atomic.Uint64

	recoverer *coordinator.Recoverer
	recMu     sync.Mutex // serializes recovery runs initiated here

	// recovering is set at construction for crash-recovered replicas and
	// cleared once every core has installed an epoch-change merge; while
	// set, snapshot reads report an unconfirmed watermark (see
	// Config.Recovering). recoveryLeft counts the cores still to install
	// (the store is replica-wide, so one caught-up core does not make the
	// whole store trustworthy).
	recovering   atomic.Bool
	recoveryLeft atomic.Int32

	started bool
	stopped atomic.Bool
}

// core is one server thread: an endpoint, a trecord partition, and the
// message handlers. All fields past ep are owned by the delivery goroutine.
type core struct {
	r  *Replica
	id uint32
	// ep is published atomically: a transport's delivery goroutine may
	// invoke the handler before Listen returns to Start.
	ep     atomic.Pointer[transport.Endpoint]
	part   *trecord.Partition // used only when !SharedRecord
	paused bool
	// recovered marks that this core has installed an epoch-change merge
	// since a crash recovery (see Replica.recoveryLeft).
	recovered bool
	obs       *obs.Shard            // per-core lifecycle recorder (nil-safe)
	log       *wal.Log              // this core's write-ahead log (nil without durability)
	wm        *occ.WatermarkTracker // this core's commit watermark (advisory)

	sweepStop chan struct{}
}

// send transmits m from this core's endpoint, dropping it if the endpoint
// is not yet published (a message raced the bind; the sender will retry).
func (c *core) send(dst message.Addr, m *message.Message) {
	if ep := c.ep.Load(); ep != nil {
		(*ep).Send(dst, m)
	}
}

// New creates a replica. Call Start to bind its endpoints.
func New(cfg Config) (*Replica, error) {
	if !cfg.Topo.Validate() {
		return nil, fmt.Errorf("replica: invalid topology %+v", cfg.Topo)
	}
	if cfg.Index < 0 || cfg.Index >= cfg.Topo.Replicas {
		return nil, fmt.Errorf("replica: index %d out of range", cfg.Index)
	}
	if cfg.StaleAfter == 0 {
		cfg.StaleAfter = 5 * cfg.SweepInterval
	}
	if cfg.WAL != nil && cfg.WAL.Cores() != cfg.Topo.Cores {
		return nil, fmt.Errorf("replica: WAL has %d logs, topology has %d cores",
			cfg.WAL.Cores(), cfg.Topo.Cores)
	}
	st := cfg.Store
	if st == nil {
		st = vstore.New(vstore.Config{})
	}
	r := &Replica{cfg: cfg, store: st}
	r.recovering.Store(cfg.Recovering)
	if cfg.Recovering {
		r.recoveryLeft.Store(int32(cfg.Topo.Cores))
	}
	if cfg.SharedRecord {
		r.shared = trecord.NewShared()
	}
	for c := 0; c < cfg.Topo.Cores; c++ {
		cc := &core{r: r, id: uint32(c), obs: cfg.Obs.NewShard(), wm: occ.NewWatermarkTracker()}
		if !cfg.SharedRecord {
			cc.part = trecord.NewPartition()
		}
		if cfg.WAL != nil {
			cc.log = cfg.WAL.Log(c)
			// The apply hook runs inside AppendCommit's critical section:
			// appending and applying atomically is what makes snapshot log
			// truncation safe (see finalize and wal.Store.Snapshot).
			cc.log.SetApply(func(txn *message.Txn, ts timestamp.Timestamp) {
				occ.ApplyCommit(st, txn, ts)
			})
		}
		r.cores = append(r.cores, cc)
	}
	return r, nil
}

// Store returns the replica's versioned storage layer, for pre-loading and
// verification.
func (r *Replica) Store() *vstore.Store { return r.store }

// WAL returns the replica's durability layer, or nil when running
// in-memory only.
func (r *Replica) WAL() *wal.Store { return r.cfg.WAL }

// Node returns the replica's node id.
func (r *Replica) Node() uint32 {
	return r.cfg.Topo.ReplicaNode(r.cfg.Partition, r.cfg.Index)
}

// Epoch returns the replica's current epoch number.
func (r *Replica) Epoch() uint64 { return r.epoch.Load() }

// Records returns the total number of transaction records currently held
// across all cores. The per-core partitions are unsynchronized, so call it
// only while the replica is quiescent (tests and diagnostics).
func (r *Replica) Records() int {
	if r.shared != nil {
		return r.shared.Len()
	}
	n := 0
	for _, c := range r.cores {
		n += c.part.Len()
	}
	return n
}

// Start binds one endpoint per core and starts sweepers if configured.
func (r *Replica) Start() error {
	if r.started {
		return fmt.Errorf("replica: already started")
	}
	r.started = true
	for _, c := range r.cores {
		addr := message.Addr{Node: r.Node(), Core: c.id}
		ep, err := r.cfg.Net.Listen(addr, c.handle)
		if err != nil {
			r.Stop()
			return err
		}
		c.ep.Store(&ep)
	}
	if r.cfg.WAL != nil {
		r.cfg.WAL.StartSnapshotter(r.store)
	}
	if r.cfg.SweepInterval > 0 {
		rec, err := coordinator.NewRecoverer(
			r.cfg.Net, r.cfg.Topo,
			message.Addr{Node: r.Node(), Core: RecovererCore},
			uint64(r.cfg.Index),
			r.cfg.RecoveryTimeout, r.cfg.RecoveryRetries,
		)
		if err != nil {
			r.Stop()
			return err
		}
		r.recoverer = rec
		for _, c := range r.cores {
			c.sweepStop = make(chan struct{})
			go c.sweepLoop()
		}
	}
	return nil
}

// Stop gracefully closes all endpoints, stops sweepers, and — with
// durability enabled — flushes and fsyncs every core's log before closing
// it, so a stopped replica loses nothing. The replica cannot be restarted;
// create a new one (with durability, Open replays its directory).
func (r *Replica) Stop() {
	r.shutdown(false)
}

// Crash simulates a process crash: endpoints close, but the write-ahead
// logs are dropped without flushing their pending buffers (wal.Store.Crash).
// This is what a chaos CrashReplica should call so that recovery is
// exercised against realistically torn logs.
func (r *Replica) Crash() {
	r.shutdown(true)
}

func (r *Replica) shutdown(crash bool) {
	if r.stopped.Swap(true) {
		return
	}
	for _, c := range r.cores {
		if c.sweepStop != nil {
			close(c.sweepStop)
		}
		if ep := c.ep.Load(); ep != nil {
			(*ep).Close()
		}
	}
	if r.recoverer != nil {
		r.recoverer.Close()
	}
	if r.cfg.WAL != nil {
		if crash {
			r.cfg.WAL.Crash()
		} else {
			r.cfg.WAL.Close()
		}
	}
}

// Load installs an initial version of key, bypassing concurrency control
// (bulk-loading before a run). With durability enabled the load goes through
// core 0's log, whose apply hook installs the version — appending and
// applying atomically, so a concurrent snapshot cannot truncate the load
// record before the export observes it.
func (r *Replica) Load(key string, value []byte, ts timestamp.Timestamp) {
	if r.cfg.WAL != nil {
		r.cfg.WAL.Log(0).AppendLoad(key, value, ts)
		return
	}
	r.store.Load(key, value, ts)
}

// withRecords runs fn against the record table a transaction on this core
// belongs to: the core-private partition (Meerkat) or the shared record
// behind its mutex (TAPIR-like). Cold paths (recovery, epoch change,
// sweeping) use it for the convenience of the closure; the per-message hot
// handlers use lockRecords/unlockRecords instead, which cost no closure
// allocation.
func (c *core) withRecords(fn func(p *trecord.Partition)) {
	if c.part != nil {
		fn(c.part)
		return
	}
	c.r.shared.Do(fn)
}

// lockRecords returns the record table for this core, locking it in shared
// mode. Pair with unlockRecords; the partition must not be retained past it.
func (c *core) lockRecords() *trecord.Partition {
	if c.part != nil {
		return c.part
	}
	return c.r.shared.Lock()
}

// unlockRecords releases the lock taken by lockRecords (a no-op in per-core
// mode, where the partition is private to this delivery goroutine).
func (c *core) unlockRecords() {
	if c.part == nil {
		c.r.shared.Unlock()
	}
}

// handle dispatches one inbound message. It runs on the core's delivery
// goroutine.
func (c *core) handle(m *message.Message) {
	switch m.Type {
	case message.TypeRead:
		c.handleRead(m)
	case message.TypeMultiRead:
		c.handleMultiRead(m)
	case message.TypeValidate:
		c.handleValidate(m)
	case message.TypeAccept:
		c.handleAccept(m)
	case message.TypeCommit:
		c.handleCommit(m)
	case message.TypeCoordChange:
		c.handleCoordChange(m)
	case message.TypeEpochChange:
		c.handleEpochChange(m)
	case message.TypeEpochChangeComplete:
		c.handleEpochChangeComplete(m)
	case message.TypeStateRequest:
		c.handleStateRequest(m)
	case message.TypeSweep:
		c.handleSweep()
	}
}

// handleStateRequest serves one shard of the versioned store to a
// recovering replica (state transfer, §5.3.1). The requester paginates by
// shard index in Seq; OK reports whether more shards remain. TS, when
// non-zero, is a delta watermark: only keys written or read after it are
// shipped, so a replica that replayed its local write-ahead log fetches a
// fraction of the store. View, when non-zero, carries a second, wall-clock
// bound (UnixNano): also ship keys whose commit was applied on this donor
// at or after it, which covers commits finalized late with old timestamps
// (sweeper / backup-coordinator outcomes) that the TS filter would miss.
func (c *core) handleStateRequest(m *message.Message) {
	shard := int(m.Seq)
	exported := c.r.store.ExportShardSince(shard, m.TS, int64(m.View))
	state := make([]message.KeyState, 0, len(exported))
	for _, ks := range exported {
		state = append(state, message.KeyState{
			Key: ks.Key, Value: ks.Value, WTS: ks.WTS, RTS: ks.RTS,
		})
	}
	c.send(m.Src, &message.Message{
		Type:      message.TypeStateReply,
		Seq:       m.Seq,
		OK:        shard+1 < c.r.store.NumShards(),
		State:     state,
		ReplicaID: uint32(c.r.cfg.Index),
	})
}

// ownView returns this group's shard-ownership view, or nil when the group
// owns every key (unsharded deployment — one nil check on the hot path).
func (c *core) ownView() *shardmap.View {
	if c.r.cfg.Ownership == nil {
		return nil
	}
	return c.r.cfg.Ownership.Load()
}

// ownsKeys reports whether view v (nil = owns everything) covers every key
// of keys.
func ownsKeys(v *shardmap.View, keys []string) bool {
	if v == nil {
		return true
	}
	for _, k := range keys {
		if !v.Owns(shardmap.Hash(k)) {
			return false
		}
	}
	return true
}

// ownsTxn reports whether view v covers every key the transaction touches.
func ownsTxn(v *shardmap.View, t *message.Txn) bool {
	if v == nil {
		return true
	}
	for i := range t.ReadSet {
		if !v.Owns(shardmap.Hash(t.ReadSet[i].Key)) {
			return false
		}
	}
	for i := range t.WriteSet {
		if !v.Owns(shardmap.Hash(t.WriteSet[i].Key)) {
			return false
		}
	}
	for i := range t.OpSet {
		if !v.Owns(shardmap.Hash(t.OpSet[i].Key)) {
			return false
		}
	}
	return true
}

// handleRead serves an execution-phase read from the versioned store. Reads
// never touch the trecord, so any core of any replica can serve them.
func (c *core) handleRead(m *message.Message) {
	if v := c.ownView(); v != nil && !v.Owns(shardmap.Hash(m.Key)) {
		c.obs.Inc(obs.WrongShardRedirect)
		c.send(m.Src, &message.Message{
			Type: message.TypeReadReply,
			Key:  m.Key, Seq: m.Seq,
			WrongShard: true, MapVersion: v.Version(),
			ReplicaID: uint32(c.r.cfg.Index),
		})
		return
	}
	v, ok := c.r.store.Read(m.Key)
	c.send(m.Src, &message.Message{
		Type: message.TypeReadReply,
		Key:  m.Key, Seq: m.Seq,
		Value: v.Value, TS: v.WTS, OK: ok,
		ReplicaID: uint32(c.r.cfg.Index),
	})
}

// handleMultiRead serves a whole batch of execution-phase reads in one
// handler pass: one reply slot per requested key, index-aligned with the
// request. Like single reads, the batch only touches the lock-free versioned
// store — never the trecord — so any core of any replica can serve it, and
// batching adds no coordination.
func (c *core) handleMultiRead(m *message.Message) {
	if !m.TS.IsZero() {
		c.handleSnapshotRead(m)
		return
	}
	if v := c.ownView(); !ownsKeys(v, m.Keys) {
		c.redirectMultiRead(m, v)
		return
	}
	reads := make([]message.ReadResult, len(m.Keys))
	for i, k := range m.Keys {
		v, ok := c.r.store.Read(k)
		reads[i] = message.ReadResult{Value: v.Value, WTS: v.WTS, OK: ok, Op: v.Op}
	}
	c.obs.Inc(obs.MultiReadServed)
	c.send(m.Src, &message.Message{
		Type:      message.TypeMultiReadReply,
		Seq:       m.Seq,
		Reads:     reads,
		Watermark: c.wm.Watermark(),
		ReplicaID: uint32(c.r.cfg.Index),
	})
}

// redirectMultiRead answers a (multi-)read whose key set is no longer fully
// owned here with a WrongShard redirect. No store state is touched.
func (c *core) redirectMultiRead(m *message.Message, v *shardmap.View) {
	c.obs.Inc(obs.WrongShardRedirect)
	c.send(m.Src, &message.Message{
		Type: message.TypeMultiReadReply,
		Seq:  m.Seq,
		WrongShard: true, MapVersion: v.Version(),
		ReplicaID: uint32(c.r.cfg.Index),
	})
}

// handleSnapshotRead serves a multi-read pinned at snapshot timestamp m.TS
// for the read-only fast path. Every key is answered at that timestamp
// (newest version at or below it), and — inside the same per-key critical
// section — the store raises the key's read timestamp to it, so no
// yet-unvalidated write can ever commit under the snapshot. The reply's
// Watermark is the minimum per-key confirmation bound: it equals m.TS
// exactly when no pending (prepared-but-undecided) writer sits at or below
// the snapshot on any requested key, i.e. when every answered version is
// final with respect to this replica.
func (c *core) handleSnapshotRead(m *message.Message) {
	// Ownership is checked before any store access: an unowned snapshot read
	// must not raise read timestamps here — the moved range's rts now lives
	// with the new owner, and raising it on a sealed copy would be dead state.
	if v := c.ownView(); !ownsKeys(v, m.Keys) {
		c.redirectMultiRead(m, v)
		return
	}
	reads := make([]message.ReadResult, len(m.Keys))
	wmin := m.TS
	for i, k := range m.Keys {
		v, bound, ok := c.r.store.SnapshotRead(k, m.TS)
		reads[i] = message.ReadResult{Value: v.Value, WTS: v.WTS, OK: ok, Op: v.Op}
		if bound.Less(wmin) {
			wmin = bound
		}
	}
	c.wm.Advance(wmin)
	if c.paused || c.r.recovering.Load() {
		// A crash-recovered replica is blind to transactions in flight
		// around its state transfer (their pending registrations died with
		// the old process), so its per-key bound cannot be trusted until the
		// first epoch change decides and applies all of them. Likewise a
		// core paused mid-epoch-change hasn't installed the merge yet and
		// may be missing outcomes it is about to learn. Serve the values in
		// both cases, but never confirm.
		wmin = timestamp.Zero
	}
	c.obs.Inc(obs.SnapshotRead)
	c.send(m.Src, &message.Message{
		Type:      message.TypeMultiReadReply,
		Seq:       m.Seq,
		Reads:     reads,
		Watermark: wmin,
		ReplicaID: uint32(c.r.cfg.Index),
	})
}

// handleValidate runs step 2 of the commit protocol: create the trecord
// entry and perform the OCC checks of Algorithm 1.
func (c *core) handleValidate(m *message.Message) {
	if c.paused {
		return // epoch change in progress; the coordinator will retry
	}
	p := c.lockRecords()
	var reply *message.Message
	rec := p.Get(m.Txn.ID)
	if rec != nil && rec.Status != message.StatusNone {
		// Duplicate (a retry): re-reply with the recorded status. This takes
		// precedence over the ownership check — a record finalized before (or
		// by) a shard split's fence is historical truth, and a retry must
		// learn that outcome, not a redirect.
		reply = c.validateReply(m.Txn.ID, rec.Status, rec.View)
	} else if v := c.ownView(); !ownsTxn(v, &m.Txn) {
		// New validation touching a key this group no longer owns: refuse
		// without creating a record — post-seal, nothing new may prepare
		// against the moved range here. The client refreshes its map and
		// re-routes.
		c.obs.Inc(obs.WrongShardRedirect)
		reply = &message.Message{
			Type: message.TypeValidateReply,
			TID:  m.Txn.ID,
			WrongShard: true, MapVersion: v.Version(),
			ReplicaID: uint32(c.r.cfg.Index),
		}
	} else {
		if rec == nil {
			rec, _ = p.GetOrCreate(m.Txn.ID)
		}
		rec.Txn = m.Txn
		rec.TS = m.TS
		rec.CreatedAt = nanotime()
		st := occ.Validate(c.r.store, &rec.Txn, m.TS)
		rec.Status = st
		rec.Registered = st == message.StatusValidatedOK
		if st == message.StatusValidatedOK {
			c.wm.Add(m.Txn.ID, m.TS)
			c.obs.Inc(obs.ValidateOK)
		} else {
			c.obs.Inc(obs.ValidateAbort)
		}
		reply = c.validateReply(m.Txn.ID, st, rec.View)
	}
	c.unlockRecords()
	c.send(m.Src, reply)
}

func (c *core) validateReply(tid timestamp.TxnID, st message.Status, view uint64) *message.Message {
	return &message.Message{
		Type: message.TypeValidateReply,
		TID:  tid, Status: st, View: view,
		ReplicaID: uint32(c.r.cfg.Index),
	}
}

// handleAccept runs the replica side of the slow path (step 5), which
// doubles as the accept phase of coordinator recovery: adopt the proposed
// outcome unless a higher view has been promised.
func (c *core) handleAccept(m *message.Message) {
	if c.paused {
		return
	}
	p := c.lockRecords()
	var reply *message.Message
	rec, created := p.GetOrCreate(m.TID)
	if created {
		rec.CreatedAt = nanotime()
	}
	// A replica that missed the validate learns the transaction body
	// from the accept, so it can apply the write phase on commit.
	if rec.Txn.Empty() && !m.Txn.Empty() {
		rec.Txn = m.Txn
		rec.TS = m.TS
	}
	if rec.Txn.ID.IsZero() {
		rec.Txn.ID = m.TID
	}
	switch {
	case rec.Status.Final():
		// Already decided; ack so the (backup) coordinator finishes.
		// Consistency is guaranteed: all coordinators reach the same
		// decision (§5.3.2).
		c.obs.Inc(obs.AcceptAcked)
		reply = &message.Message{
			Type: message.TypeAcceptReply, TID: m.TID, OK: true,
			View: m.View, ReplicaID: uint32(c.r.cfg.Index),
		}
	case m.View < rec.View:
		c.obs.Inc(obs.AcceptRejected)
		reply = &message.Message{
			Type: message.TypeAcceptReply, TID: m.TID, OK: false,
			View: rec.View, ReplicaID: uint32(c.r.cfg.Index),
		}
	default:
		rec.View = m.View
		rec.AcceptView = m.View
		rec.Status = m.Status // ACCEPT-COMMIT or ACCEPT-ABORT
		if m.Status == message.StatusAcceptCommit {
			// A replica that never validated this transaction (dropped
			// validate, or its own validation aborted and backed out) has
			// nothing registered in the store, so snapshot reads here would
			// not see the accepted write as pending and could confirm a
			// snapshot the transaction commits below. Register the intents
			// now; finalize clears them through the usual commit/abort paths.
			if !rec.Registered && !rec.Txn.Empty() {
				occ.RegisterPending(c.r.store, &rec.Txn, rec.TS)
				rec.Registered = true
			}
			c.wm.Add(m.TID, rec.TS)
		} else {
			c.wm.Finalize(m.TID)
		}
		c.obs.Inc(obs.AcceptAcked)
		reply = &message.Message{
			Type: message.TypeAcceptReply, TID: m.TID, OK: true,
			View: m.View, ReplicaID: uint32(c.r.cfg.Index),
		}
	}
	c.unlockRecords()
	c.send(m.Src, reply)
}

// handleCommit runs the write phase (§5.2.3): finalize the record and apply
// or back out its effects.
func (c *core) handleCommit(m *message.Message) {
	if c.paused {
		return // the epoch-change merge will finalize it consistently
	}
	p := c.lockRecords()
	if rec := p.Get(m.TID); rec != nil {
		if c.finalize(rec, m.Status) {
			if m.Status == message.StatusCommitted {
				c.obs.Inc(obs.CommitApplied)
			} else {
				c.obs.Inc(obs.AbortApplied)
			}
		}
	}
	// A nil record means this replica never saw the transaction (dropped
	// validate); it will learn the outcome during the next epoch change.
	c.unlockRecords()
}

// finalize moves rec to final status st and applies (commit) or backs out
// (abort) its effects in the store. Idempotent: a record already final is
// left untouched. Reports whether it transitioned the record (so callers can
// count applies exactly once).
//
// With durability enabled, a commit goes through AppendCommit, whose apply
// hook (wired in New) installs the effects inside the log's own critical
// section — write-ahead ordering (the record is buffered, or fsynced under
// SyncAlways, before its effects become observable) AND atomicity against
// the snapshot mark (a pre-mark segment can never be truncated while it
// holds the only copy of a record the store export has not yet observed).
// Only commits are logged; aborts leave no observable state, so replay needs
// nothing from them.
func (c *core) finalize(rec *trecord.Record, st message.Status) bool {
	if rec.Status.Final() {
		return false
	}
	wasRegistered := rec.Registered
	rec.Registered = false
	rec.Status = st
	c.wm.Finalize(rec.Txn.ID)
	switch {
	case st == message.StatusCommitted && c.log != nil:
		c.log.AppendCommit(&rec.Txn, rec.TS)
	case st == message.StatusCommitted:
		occ.ApplyCommit(c.r.store, &rec.Txn, rec.TS)
	case wasRegistered:
		occ.ApplyAbort(c.r.store, &rec.Txn, rec.TS)
	}
	if st == message.StatusCommitted && len(rec.Txn.OpSet) > 0 {
		c.obs.Inc(obs.OpCommitApplied)
		c.obs.Add(obs.OpMerged, uint64(len(rec.Txn.OpSet)))
	}
	return true
}

// handleCoordChange is the prepare-like phase of coordinator recovery: if
// the proposed view is newer than any this replica has seen for the
// transaction, promise it and report the transaction's record.
func (c *core) handleCoordChange(m *message.Message) {
	if c.paused {
		return
	}
	var reply *message.Message
	c.withRecords(func(p *trecord.Partition) {
		rec, created := p.GetOrCreate(m.TID)
		if created {
			rec.CreatedAt = nanotime()
		}
		if m.View <= rec.View {
			// Only strictly newer views supersede. View 0 belongs to the
			// original coordinator and needs no coordinator change.
			reply = &message.Message{
				Type: message.TypeCoordChangeAck, TID: m.TID, OK: false,
				View: rec.View, ReplicaID: uint32(c.r.cfg.Index),
			}
			return
		}
		rec.View = m.View
		c.obs.Inc(obs.CoordChange)
		reply = &message.Message{
			Type: message.TypeCoordChangeAck, TID: m.TID, OK: true,
			View: m.View, ReplicaID: uint32(c.r.cfg.Index),
			Records: []message.TRecordEntry{{
				Txn: rec.Txn, TS: rec.TS, Status: rec.Status,
				View: rec.View, AcceptView: rec.AcceptView, CoreID: c.id,
			}},
		}
	})
	c.send(m.Src, reply)
}

// handleEpochChange pauses the core and ships its trecord partition to the
// recovery coordinator (§5.3.1).
func (c *core) handleEpochChange(m *message.Message) {
	cur := c.r.epoch.Load()
	if m.Epoch < cur {
		return // stale epoch change
	}
	c.r.epoch.Store(m.Epoch)
	c.paused = true
	c.obs.Inc(obs.EpochChangePause)
	var snap []message.TRecordEntry
	c.withRecords(func(p *trecord.Partition) {
		snap = p.Snapshot(c.id)
	})
	c.send(m.Src, &message.Message{
		Type: message.TypeEpochChangeAck, Epoch: m.Epoch,
		Records: snap, ReplicaID: uint32(c.r.cfg.Index), CoreID: c.id,
	})
}

// handleEpochChangeComplete installs the merged trecord and resumes normal
// operation. Every entry in the merged trecord is final; local records
// absent from it are aborted (they did not survive the merge).
func (c *core) handleEpochChangeComplete(m *message.Message) {
	if m.Epoch < c.r.epoch.Load() {
		return
	}
	c.r.epoch.Store(m.Epoch)
	merged := make(map[timestamp.TxnID]bool, len(m.Records))
	for i := range m.Records {
		merged[m.Records[i].Txn.ID] = true
	}
	c.withRecords(func(p *trecord.Partition) {
		for i := range m.Records {
			e := &m.Records[i]
			// In per-core mode install only this core's slice; in shared
			// mode the record table is replica-wide, so install all (the
			// finality guard makes repeats across cores idempotent).
			if c.part != nil && e.CoreID != c.id {
				continue
			}
			c.install(p, e)
		}
		var drop []*trecord.Record
		p.Range(func(rec *trecord.Record) bool {
			if !rec.Status.Final() && !merged[rec.Txn.ID] {
				drop = append(drop, rec)
			}
			return true
		})
		for _, rec := range drop {
			c.finalize(rec, message.StatusAborted)
		}
		if c.r.cfg.CompactOnEpochChange {
			p.Compact()
		}
	})
	// The merged trecord decided and applied every in-flight transaction
	// this core is responsible for; once every core has installed its
	// slice, a crash-recovered replica is caught up and its snapshot-read
	// bounds are trustworthy again.
	if c.r.recovering.Load() && !c.recovered {
		c.recovered = true
		if c.r.recoveryLeft.Add(-1) == 0 {
			c.r.recovering.Store(false)
		}
	}
	c.paused = false
	c.send(m.Src, &message.Message{
		Type: message.TypeEpochChangeCompleteAck, Epoch: m.Epoch,
		ReplicaID: uint32(c.r.cfg.Index), CoreID: c.id,
	})
}

// install merges one final entry from an epoch change into the record table
// and applies its effects.
func (c *core) install(p *trecord.Partition, e *message.TRecordEntry) {
	rec := p.Get(e.Txn.ID)
	if rec == nil {
		rec = &trecord.Record{
			Txn: e.Txn, TS: e.TS,
			View: e.View, AcceptView: e.AcceptView,
			CreatedAt: nanotime(),
		}
		p.Put(rec)
		c.finalize(rec, e.Status)
		return
	}
	if rec.Status.Final() {
		return
	}
	if rec.Txn.Empty() {
		rec.Txn = e.Txn
		rec.TS = e.TS
	}
	rec.View = e.View
	rec.AcceptView = e.AcceptView
	c.finalize(rec, e.Status)
}

// sweepLoop periodically injects a sweep message into the core's own queue,
// so the scan itself runs on the delivery goroutine like everything else.
func (c *core) sweepLoop() {
	t := time.NewTicker(c.r.cfg.SweepInterval)
	defer t.Stop()
	self := (*c.ep.Load()).Addr() // sweepLoop starts after the bind
	for {
		select {
		case <-c.sweepStop:
			return
		case <-t.C:
			c.send(self, &message.Message{Type: message.TypeSweep})
		}
	}
}

// handleSweep scans for transactions whose coordinator appears to have
// failed — non-final records older than StaleAfter — and completes each via
// coordinator recovery (§5.3.2).
func (c *core) handleSweep() {
	if c.paused || c.r.recoverer == nil {
		return
	}
	now := nanotime()
	stale := int64(c.r.cfg.StaleAfter)
	type job struct {
		tid  timestamp.TxnID
		view uint64
	}
	var jobs []job
	c.withRecords(func(p *trecord.Partition) {
		p.Range(func(rec *trecord.Record) bool {
			if rec.Status.Final() {
				return true
			}
			if now-rec.CreatedAt < stale || now-rec.LastRecovery < stale {
				return true
			}
			rec.LastRecovery = now
			jobs = append(jobs, job{tid: rec.Txn.ID, view: rec.View})
			return true
		})
	})
	c.obs.Add(obs.SweepRecovery, uint64(len(jobs)))
	for _, j := range jobs {
		go func(j job) {
			c.r.recMu.Lock()
			defer c.r.recMu.Unlock()
			if c.r.stopped.Load() {
				return
			}
			c.r.recoverer.Recover(c.r.cfg.Partition, j.tid, c.id, j.view)
		}(j)
	}
}

// nanotime returns a monotonic reading for record aging.
func nanotime() int64 { return time.Since(processStart).Nanoseconds() }

var processStart = time.Now()
