package vstore

import (
	"fmt"
	"math/rand"
	"testing"

	"meerkat/internal/message"
	"meerkat/internal/timestamp"
)

// opEvent is one committed operation (plain write or commutative op) in a
// synthetic history the tests replay in shuffled orders.
type opEvent struct {
	ts    timestamp.Timestamp
	kind  message.OpKind // OpNone = plain write
	value []byte         // plain write payload
	delta int64
	arg   []byte
}

// applyEvents commits events against a fresh store in the given order and
// returns the resulting latest version of "k".
func applyEvents(events []opEvent, order []int, maxVersions int) Version {
	s := New(Config{MaxVersions: maxVersions})
	for _, i := range order {
		e := events[i]
		if e.kind == message.OpNone {
			s.CommitWrite("k", e.value, e.ts)
		} else {
			s.CommitOp("k", e.kind, e.delta, e.arg, e.ts)
		}
	}
	v, _ := s.Read("k")
	return v
}

func TestCommitOpBasics(t *testing.T) {
	s := New(Config{})
	s.CommitOp("k", message.OpIncrement, 5, nil, ts(1))
	if v, ok := s.Read("k"); !ok || string(v.Value) != "5" {
		t.Fatalf("increment from missing: %+v ok=%v", v, ok)
	}
	s.CommitOp("k", message.OpIncrement, -2, nil, ts(2))
	if v, _ := s.Read("k"); string(v.Value) != "3" || v.WTS != ts(2) {
		t.Fatalf("second increment: %+v", v)
	}
	s.CommitWrite("k", []byte("100"), ts(3))
	s.CommitOp("k", message.OpIncrement, 1, nil, ts(4))
	if v, _ := s.Read("k"); string(v.Value) != "101" {
		t.Fatalf("increment over write: %+v", v)
	}

	s.CommitOp("log", message.OpAppend, 0, []byte("a"), ts(1))
	s.CommitOp("log", message.OpAppend, 0, []byte("b"), ts(2))
	if v, _ := s.Read("log"); string(v.Value) != "ab" {
		t.Fatalf("appends: %+v", v)
	}

	s.CommitOp("hi", message.OpMax, 10, nil, ts(1))
	s.CommitOp("hi", message.OpMax, 3, nil, ts(2))
	if v, _ := s.Read("hi"); string(v.Value) != "10" || v.WTS != ts(2) {
		t.Fatalf("max fold: %+v", v)
	}
	s.CommitOp("lo", message.OpMin, 10, nil, ts(1))
	s.CommitOp("lo", message.OpMin, 3, nil, ts(2))
	if v, _ := s.Read("lo"); string(v.Value) != "3" {
		t.Fatalf("min fold: %+v", v)
	}

	merged, recovered := s.OpStats()
	if merged != 9 || recovered != 0 {
		t.Fatalf("OpStats = (%d, %d), want (9, 0)", merged, recovered)
	}
}

// TestOpOutOfOrderConvergence is the core merge-record property: applying the
// same committed events in ANY order yields the same materialized value and
// WTS, because out-of-order arrivals fold at their timestamp position and the
// versions above re-materialize.
func TestOpOutOfOrderConvergence(t *testing.T) {
	histories := [][]opEvent{
		{ // pure increment run
			{ts: ts(1), kind: message.OpIncrement, delta: 1},
			{ts: ts(2), kind: message.OpIncrement, delta: 10},
			{ts: ts(3), kind: message.OpIncrement, delta: 100},
			{ts: ts(4), kind: message.OpIncrement, delta: 1000},
		},
		{ // write below ops: ops must re-materialize when the write lands late
			{ts: ts(1), kind: message.OpNone, value: []byte("500")},
			{ts: ts(2), kind: message.OpIncrement, delta: 1},
			{ts: ts(3), kind: message.OpIncrement, delta: 2},
		},
		{ // write above ops masks them
			{ts: ts(1), kind: message.OpIncrement, delta: 7},
			{ts: ts(2), kind: message.OpNone, value: []byte("9")},
			{ts: ts(3), kind: message.OpIncrement, delta: 1},
		},
		{ // append ordering is timestamp order, not arrival order
			{ts: ts(1), kind: message.OpAppend, arg: []byte("a")},
			{ts: ts(2), kind: message.OpAppend, arg: []byte("b")},
			{ts: ts(3), kind: message.OpAppend, arg: []byte("c")},
			{ts: ts(4), kind: message.OpNone, value: []byte("X")},
			{ts: ts(5), kind: message.OpAppend, arg: []byte("d")},
		},
		{ // mixed kinds interleaved with writes
			{ts: ts(1), kind: message.OpNone, value: []byte("5")},
			{ts: ts(2), kind: message.OpMax, delta: 9},
			{ts: ts(3), kind: message.OpIncrement, delta: 1},
			{ts: ts(4), kind: message.OpMin, delta: 3},
			{ts: ts(5), kind: message.OpIncrement, delta: 40},
		},
	}
	rng := rand.New(rand.NewSource(42))
	for hi, events := range histories {
		order := make([]int, len(events))
		for i := range order {
			order[i] = i
		}
		want := applyEvents(events, order, -1)
		for trial := 0; trial < 50; trial++ {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			got := applyEvents(events, order, -1)
			if string(got.Value) != string(want.Value) || got.WTS != want.WTS {
				t.Fatalf("history %d order %v: got (%q, %v), want (%q, %v)",
					hi, order, got.Value, got.WTS, want.Value, want.WTS)
			}
		}
	}
}

// TestOpConvergenceRandomHistories drives the same property over randomly
// generated histories of writes and all four op kinds.
func TestOpConvergenceRandomHistories(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		events := make([]opEvent, n)
		for i := range events {
			e := opEvent{ts: ts(int64(i + 1))}
			switch rng.Intn(5) {
			case 0:
				e.value = []byte(fmt.Sprintf("%d", rng.Intn(100)))
			case 1:
				e.kind, e.delta = message.OpIncrement, int64(rng.Intn(50)-25)
			case 2:
				e.kind, e.delta = message.OpMax, int64(rng.Intn(100))
			case 3:
				e.kind, e.delta = message.OpMin, int64(rng.Intn(100))
			case 4:
				e.kind, e.arg = message.OpAppend, []byte{byte('a' + rng.Intn(26))}
			}
			events[i] = e
		}
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		want := applyEvents(events, order, -1)
		for s := 0; s < 10; s++ {
			rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
			got := applyEvents(events, order, -1)
			if string(got.Value) != string(want.Value) || got.WTS != want.WTS {
				t.Fatalf("trial %d order %v: got (%q, %v), want (%q, %v)",
					trial, order, got.Value, got.WTS, want.Value, want.WTS)
			}
		}
	}
}

// TestOpDuplicateReplayIdempotent asserts a commit record applied twice (WAL
// replay, duplicate finalize) folds once.
func TestOpDuplicateReplayIdempotent(t *testing.T) {
	s := New(Config{})
	s.CommitOp("k", message.OpIncrement, 5, nil, ts(1))
	s.CommitOp("k", message.OpIncrement, 3, nil, ts(2))
	s.CommitOp("k", message.OpIncrement, 5, nil, ts(1)) // replay
	s.CommitOp("k", message.OpIncrement, 3, nil, ts(2)) // replay
	if v, _ := s.Read("k"); string(v.Value) != "8" {
		t.Fatalf("after replay: %q, want 8", v.Value)
	}
}

// TestOpRecoveryBelowTrimmedHistory exercises the arithmetic-recovery path: a
// same-kind op arriving below the retained window still lands exactly.
func TestOpRecoveryBelowTrimmedHistory(t *testing.T) {
	s := New(Config{MaxVersions: 2})
	for i := 1; i <= 6; i++ {
		s.CommitOp("k", message.OpIncrement, 1, nil, ts(int64(i*10)))
	}
	// Only versions at ts 50, 60 retained (values "5", "6"); base is trimmed.
	s.CommitOp("k", message.OpIncrement, 100, nil, ts(5))
	if v, _ := s.Read("k"); string(v.Value) != "106" {
		t.Fatalf("after below-window increment: %q, want 106", v.Value)
	}
	if _, recovered := s.OpStats(); recovered != 1 {
		t.Fatalf("recovered = %d, want 1", recovered)
	}

	// Append recovery splices in front of the retained suffix.
	s2 := New(Config{MaxVersions: 2})
	for i := 1; i <= 4; i++ {
		s2.CommitOp("log", message.OpAppend, 0, []byte{byte('a' - 1 + i)}, ts(int64(i*10)))
	}
	// Retained: ts 30 ("abc"), ts 40 ("abcd").
	s2.CommitOp("log", message.OpAppend, 0, []byte("Z"), ts(5))
	if v, _ := s2.Read("log"); string(v.Value) != "abZcd" {
		t.Fatalf("after below-window append: %q, want abZcd", v.Value)
	}

	// Max/min recovery folds the operand into each retained extreme.
	s3 := New(Config{MaxVersions: 2})
	for i := 1; i <= 4; i++ {
		s3.CommitOp("hi", message.OpMax, int64(i*10), nil, ts(int64(i*10)))
	}
	s3.CommitOp("hi", message.OpMax, 99, nil, ts(5))
	if v, _ := s3.Read("hi"); string(v.Value) != "99" {
		t.Fatalf("after below-window max: %q, want 99", v.Value)
	}
}

// TestOpMaskedByImportedState asserts state-transfer idempotence: an op whose
// effect is already folded into an imported materialized value must not
// double-apply when replayed below it.
func TestOpMaskedByImportedState(t *testing.T) {
	s := New(Config{})
	// The exporter folded increments at ts 1..3 into value "3" with WTS 3.
	s.ImportState([]KeyState{{Key: "k", Value: []byte("3"), WTS: ts(3)}})
	s.CommitOp("k", message.OpIncrement, 1, nil, ts(2)) // late replay, already included
	if v, _ := s.Read("k"); string(v.Value) != "3" {
		t.Fatalf("imported value changed by masked replay: %q", v.Value)
	}
	s.CommitOp("k", message.OpIncrement, 1, nil, ts(4)) // genuinely new
	if v, _ := s.Read("k"); string(v.Value) != "4" {
		t.Fatalf("post-import op: %q, want 4", v.Value)
	}
}

// TestOpVersionChainAscendingWithOps extends the chain invariant to op
// histories: whatever the arrival order, retained versions ascend in WTS.
func TestOpVersionChainAscendingWithOps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := New(Config{MaxVersions: -1})
	times := rng.Perm(40)
	for _, tt := range times {
		if tt%3 == 0 {
			s.CommitWrite("k", []byte("w"), ts(int64(tt+1)))
		} else {
			s.CommitOp("k", message.OpIncrement, 1, nil, ts(int64(tt+1)))
		}
	}
	vs := s.Versions("k")
	for i := 1; i < len(vs); i++ {
		if !vs[i-1].WTS.Less(vs[i].WTS) {
			t.Fatalf("chain not ascending at %d: %v then %v", i, vs[i-1].WTS, vs[i].WTS)
		}
	}
}

// TestReadAtSeesConsistentOpHistory asserts ReadAt materializes the folded
// value as of any timestamp, including ones that landed out of order.
func TestReadAtSeesConsistentOpHistory(t *testing.T) {
	s := New(Config{MaxVersions: -1})
	s.CommitOp("k", message.OpIncrement, 100, nil, ts(30))
	s.CommitOp("k", message.OpIncrement, 10, nil, ts(20))
	s.CommitWrite("k", []byte("1"), ts(10))
	cases := []struct {
		at   int64
		want string
	}{{10, "1"}, {20, "11"}, {30, "111"}, {99, "111"}}
	for _, c := range cases {
		v, ok := s.ReadAt("k", ts(c.at))
		if !ok || string(v.Value) != c.want {
			t.Fatalf("ReadAt(%d) = %q ok=%v, want %q", c.at, v.Value, ok, c.want)
		}
	}
}
