package vstore

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"meerkat/internal/timestamp"
)

// TestReadFastPathZeroAllocs is the regression gate for the lock-free read
// path: a read hit must be two atomic loads — no locks, no allocations.
func TestReadFastPathZeroAllocs(t *testing.T) {
	s := New(Config{})
	s.Load("hot", []byte("v"), timestamp.Timestamp{Time: 1, ClientID: 1})
	// Warm the sync.Map so the key is promoted to the read-only portion
	// (promotion happens after enough lock-free misses of the dirty map).
	for i := 0; i < 64; i++ {
		s.Read("hot")
	}
	key := "hot"
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := s.Read(key); !ok {
			t.Fatal("read miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("fast-path read allocated %v objects/op, want 0", allocs)
	}
}

// TestReadAtFastPath checks both ReadAt paths: the lock-free latest-version
// hit and the locked history walk.
func TestReadAtFastPath(t *testing.T) {
	s := New(Config{})
	for i := 1; i <= 4; i++ {
		s.Load("k", []byte{byte(i)}, timestamp.Timestamp{Time: int64(10 * i), ClientID: 1})
	}
	// Fast path: ts at or above the latest version.
	if v, ok := s.ReadAt("k", timestamp.Timestamp{Time: 100, ClientID: 1}); !ok || v.Value[0] != 4 {
		t.Fatalf("ReadAt(100) = %v, %v", v, ok)
	}
	// Slow path: ts between older versions.
	if v, ok := s.ReadAt("k", timestamp.Timestamp{Time: 25, ClientID: 1}); !ok || v.Value[0] != 2 {
		t.Fatalf("ReadAt(25) = %v, %v", v, ok)
	}
	// Below the oldest version.
	if _, ok := s.ReadAt("k", timestamp.Timestamp{Time: 5, ClientID: 1}); ok {
		t.Fatal("ReadAt(5) found a version")
	}
}

// TestConcurrentReadersNeverTorn runs lock-free readers against writers
// installing versions and asserts no reader ever observes a torn or
// uncommitted version: every value self-describes the timestamp it was
// committed at, and per-key observed timestamps never move backwards.
// Run with -race (the CI race job does) to also verify the memory model.
func TestConcurrentReadersNeverTorn(t *testing.T) {
	const (
		keys    = 16
		writers = 4
		readers = 4
		rounds  = 2000
	)
	s := New(Config{})
	keyName := func(k int) string { return fmt.Sprintf("key%02d", k) }

	// value encodes (time, clientID) so a reader can check value<->WTS
	// consistency: a torn read would pair one version's value with another's
	// timestamp.
	mkVal := func(ts timestamp.Timestamp) []byte {
		b := make([]byte, 16)
		binary.LittleEndian.PutUint64(b[:8], uint64(ts.Time))
		binary.LittleEndian.PutUint64(b[8:], ts.ClientID)
		return b
	}

	var stop atomic.Bool
	var writerWG, readerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 1; i <= rounds; i++ {
				ts := timestamp.Timestamp{Time: int64(i), ClientID: uint64(w + 1)}
				k := keyName((w*7 + i) % keys)
				if !s.ValidateWrite(k, ts) {
					continue
				}
				s.CommitWrite(k, mkVal(ts), ts)
			}
		}(w)
	}

	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			last := make(map[string]timestamp.Timestamp, keys)
			for i := 0; !stop.Load(); i++ {
				k := keyName((r*3 + i) % keys)
				v, ok := s.Read(k)
				if !ok {
					continue
				}
				if len(v.Value) != 16 {
					errs <- fmt.Errorf("torn value: %d bytes", len(v.Value))
					return
				}
				got := timestamp.Timestamp{
					Time:     int64(binary.LittleEndian.Uint64(v.Value[:8])),
					ClientID: binary.LittleEndian.Uint64(v.Value[8:]),
				}
				if got != v.WTS {
					errs <- fmt.Errorf("torn read on %s: value says %v, WTS says %v", k, got, v.WTS)
					return
				}
				if prev, seen := last[k]; seen && v.WTS.Less(prev) {
					errs <- fmt.Errorf("non-monotonic read on %s: %v after %v", k, v.WTS, prev)
					return
				}
				last[k] = v.WTS
			}
		}(r)
	}

	writerWG.Wait()
	stop.Store(true)
	readerWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// BenchmarkVstoreRead measures the lock-free read hit under parallelism —
// the YCSB-T read hot path.
func BenchmarkVstoreRead(b *testing.B) {
	s := New(Config{})
	const n = 1024
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%04d", i)
		s.Load(keys[i], []byte("value"), timestamp.Timestamp{Time: 1, ClientID: 1})
	}
	for _, k := range keys { // warm the read-only map portion
		s.Read(k)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, ok := s.Read(keys[i&(n-1)]); !ok {
				b.Fatal("miss")
			}
			i++
		}
	})
}
