package vstore

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"meerkat/internal/message"
	"meerkat/internal/timestamp"
)

func ts(t int64) timestamp.Timestamp { return timestamp.Timestamp{Time: t, ClientID: 1} }

// vh hashes a value the way a client computing ReadSetEntry.VHash would.
func vh(v string) uint64 { return message.HashValue([]byte(v)) }

func TestReadMissingKey(t *testing.T) {
	s := New(Config{})
	if _, ok := s.Read("nope"); ok {
		t.Fatal("read of missing key succeeded")
	}
	if _, ok := s.ReadAt("nope", ts(100)); ok {
		t.Fatal("ReadAt of missing key succeeded")
	}
}

func TestLoadAndRead(t *testing.T) {
	s := New(Config{})
	s.Load("k", []byte("v1"), ts(1))
	v, ok := s.Read("k")
	if !ok || string(v.Value) != "v1" || v.WTS != ts(1) {
		t.Fatalf("got %+v ok=%v", v, ok)
	}
}

func TestReadReturnsLatest(t *testing.T) {
	s := New(Config{})
	s.Load("k", []byte("v1"), ts(1))
	s.CommitWrite("k", []byte("v2"), ts(5))
	s.CommitWrite("k", []byte("v3"), ts(9))
	v, _ := s.Read("k")
	if string(v.Value) != "v3" || v.WTS != ts(9) {
		t.Fatalf("got %+v", v)
	}
}

func TestReadAtFindsOlderVersion(t *testing.T) {
	s := New(Config{})
	s.Load("k", []byte("v1"), ts(1))
	s.CommitWrite("k", []byte("v2"), ts(5))
	s.CommitWrite("k", []byte("v3"), ts(9))

	cases := []struct {
		at    int64
		want  string
		found bool
	}{
		{0, "", false},
		{1, "v1", true},
		{4, "v1", true},
		{5, "v2", true},
		{8, "v2", true},
		{9, "v3", true},
		{100, "v3", true},
	}
	for _, c := range cases {
		v, ok := s.ReadAt("k", ts(c.at))
		if ok != c.found {
			t.Errorf("ReadAt(%d): found=%v, want %v", c.at, ok, c.found)
			continue
		}
		if ok && string(v.Value) != c.want {
			t.Errorf("ReadAt(%d) = %q, want %q", c.at, v.Value, c.want)
		}
	}
}

func TestThomasWriteRule(t *testing.T) {
	s := New(Config{})
	s.Load("k", []byte("new"), ts(10))
	// A write with an older timestamp commits but is never observable.
	s.CommitWrite("k", []byte("stale"), ts(5))
	v, _ := s.Read("k")
	if string(v.Value) != "new" {
		t.Fatalf("stale write became visible: %q", v.Value)
	}
	if got := len(s.Versions("k")); got != 1 {
		t.Fatalf("version chain has %d entries, want 1", got)
	}
	// Equal timestamp is also skipped (same transaction ts cannot happen,
	// but the rule must be stable).
	s.CommitWrite("k", []byte("dup"), ts(10))
	v, _ = s.Read("k")
	if string(v.Value) != "new" {
		t.Fatalf("equal-ts write became visible: %q", v.Value)
	}
}

func TestValidateReadFreshVersion(t *testing.T) {
	s := New(Config{})
	s.Load("k", []byte("v"), ts(5))
	// Reader saw version 5, proposes ts 10: OK.
	if !s.ValidateRead("k", ts(5), vh("v"), ts(10)) {
		t.Fatal("fresh read failed validation")
	}
	r, w := s.Pending("k")
	if r != 1 || w != 0 {
		t.Fatalf("pending = (%d,%d), want (1,0)", r, w)
	}
}

func TestValidateReadStaleVersion(t *testing.T) {
	s := New(Config{})
	s.Load("k", []byte("v"), ts(5))
	s.CommitWrite("k", []byte("v2"), ts(8))
	// Reader saw version 5 but latest is 8: must abort.
	if s.ValidateRead("k", ts(5), vh("v"), ts(10)) {
		t.Fatal("stale read passed validation")
	}
	if r, _ := s.Pending("k"); r != 0 {
		t.Fatal("failed validation left a pending reader")
	}
}

func TestValidateReadPendingWriterBelow(t *testing.T) {
	s := New(Config{})
	s.Load("k", []byte("v"), ts(5))
	if !s.ValidateWrite("k", ts(7)) {
		t.Fatal("setup write failed")
	}
	// A pending writer at 7 < our read ts 10: even if it commits, our read
	// of version 5 would be stale as of 10. Abort.
	if s.ValidateRead("k", ts(5), vh("v"), ts(10)) {
		t.Fatal("read above a pending writer passed validation")
	}
	// But a read below the pending writer is fine.
	if !s.ValidateRead("k", ts(5), vh("v"), ts(6)) {
		t.Fatal("read below pending writer failed validation")
	}
}

func TestValidateWriteBelowRTS(t *testing.T) {
	s := New(Config{})
	s.Load("k", []byte("v"), ts(5))
	s.CommitRead("k", ts(10)) // committed read at 10
	if s.ValidateWrite("k", ts(8)) {
		t.Fatal("write below rts passed validation")
	}
	if !s.ValidateWrite("k", ts(12)) {
		t.Fatal("write above rts failed validation")
	}
}

func TestValidateWriteBelowPendingReader(t *testing.T) {
	s := New(Config{})
	s.Load("k", []byte("v"), ts(5))
	if !s.ValidateRead("k", ts(5), vh("v"), ts(10)) {
		t.Fatal("setup read failed")
	}
	// Write at 8 would interpose between version 5 and the pending read
	// at 10: abort.
	if s.ValidateWrite("k", ts(8)) {
		t.Fatal("write below pending reader passed validation")
	}
	if !s.ValidateWrite("k", ts(11)) {
		t.Fatal("write above pending reader failed validation")
	}
}

func TestAbortCleanup(t *testing.T) {
	s := New(Config{})
	s.Load("k", []byte("v"), ts(5))
	s.ValidateRead("k", ts(5), vh("v"), ts(10))
	s.ValidateWrite("k", ts(10))
	s.RemoveReader("k", ts(10))
	s.RemoveWriter("k", ts(10))
	r, w := s.Pending("k")
	if r != 0 || w != 0 {
		t.Fatalf("pending = (%d,%d) after cleanup", r, w)
	}
	// Cleanup of unknown keys must not panic.
	s.RemoveReader("nope", ts(1))
	s.RemoveWriter("nope", ts(1))
}

func TestCommitReadAdvancesRTS(t *testing.T) {
	s := New(Config{})
	s.Load("k", []byte("v"), ts(5))
	s.ValidateRead("k", ts(5), vh("v"), ts(10))
	s.CommitRead("k", ts(10))
	if _, rts := s.Meta("k"); rts != ts(10) {
		t.Fatalf("rts = %v, want %v", rts, ts(10))
	}
	// rts never regresses.
	s.CommitRead("k", ts(7))
	if _, rts := s.Meta("k"); rts != ts(10) {
		t.Fatalf("rts regressed to %v", rts)
	}
	if r, _ := s.Pending("k"); r != 0 {
		t.Fatal("CommitRead left a pending reader")
	}
}

func TestCommitWriteClearsPendingWriter(t *testing.T) {
	s := New(Config{})
	s.ValidateWrite("k", ts(10))
	s.CommitWrite("k", []byte("v"), ts(10))
	if _, w := s.Pending("k"); w != 0 {
		t.Fatal("CommitWrite left a pending writer")
	}
	if wts, _ := s.Meta("k"); wts != ts(10) {
		t.Fatalf("wts = %v", wts)
	}
}

func TestFirstWriteOfKey(t *testing.T) {
	// Reading a missing key yields WTS Zero; a concurrent first write must
	// then invalidate the read.
	s := New(Config{})
	if !s.ValidateRead("k", timestamp.Zero, vh(""), ts(10)) {
		t.Fatal("read of missing key failed validation")
	}
	s.RemoveReader("k", ts(10))
	s.CommitWrite("k", []byte("v"), ts(5))
	if s.ValidateRead("k", timestamp.Zero, vh(""), ts(10)) {
		t.Fatal("read validated against Zero version after a write committed")
	}
}

func TestMaxVersionsTrim(t *testing.T) {
	s := New(Config{MaxVersions: 3})
	for i := 1; i <= 10; i++ {
		s.CommitWrite("k", []byte{byte(i)}, ts(int64(i)))
	}
	vs := s.Versions("k")
	if len(vs) != 3 {
		t.Fatalf("kept %d versions, want 3", len(vs))
	}
	if vs[0].WTS != ts(8) || vs[2].WTS != ts(10) {
		t.Fatalf("wrong versions kept: %v..%v", vs[0].WTS, vs[2].WTS)
	}
}

func TestUnboundedVersions(t *testing.T) {
	s := New(Config{MaxVersions: -1})
	for i := 1; i <= 50; i++ {
		s.CommitWrite("k", nil, ts(int64(i)))
	}
	if got := len(s.Versions("k")); got != 50 {
		t.Fatalf("kept %d versions, want 50", got)
	}
}

func TestLenAndRange(t *testing.T) {
	s := New(Config{})
	for i := 0; i < 20; i++ {
		s.Load(fmt.Sprintf("key-%d", i), []byte("v"), ts(1))
	}
	if s.Len() != 20 {
		t.Fatalf("Len = %d", s.Len())
	}
	seen := map[string]bool{}
	s.Range(func(k string, v Version) bool {
		seen[k] = true
		return true
	})
	if len(seen) != 20 {
		t.Fatalf("Range visited %d keys", len(seen))
	}
	// Early stop.
	n := 0
	s.Range(func(string, Version) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("Range visited %d keys after early stop", n)
	}
}

func TestShardsMustBePowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a non-power-of-two shard count")
		}
	}()
	New(Config{Shards: 100})
}

func TestVersionChainAlwaysAscending(t *testing.T) {
	// Property: regardless of commit order, the version chain is strictly
	// ascending in WTS and the latest version has the max committed ts.
	f := func(times []int64) bool {
		s := New(Config{MaxVersions: -1})
		var maxTS timestamp.Timestamp
		any := false
		for _, tt := range times {
			w := ts(tt)
			s.CommitWrite("k", []byte{1}, w)
			if !any || maxTS.Less(w) {
				// Only strictly newer writes install.
				if !any || maxTS.Less(w) {
					maxTS = timestamp.Max(maxTS, w)
				}
				any = true
			}
		}
		vs := s.Versions("k")
		for i := 1; i < len(vs); i++ {
			if !vs[i-1].WTS.Less(vs[i].WTS) {
				return false
			}
		}
		if any && len(vs) > 0 && vs[len(vs)-1].WTS != maxTS {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointKeys(t *testing.T) {
	// DAP smoke test: transactions on disjoint keys running from many
	// goroutines must all validate and commit without interference.
	s := New(Config{})
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				tsv := timestamp.Timestamp{Time: int64(i + 1), ClientID: uint64(w)}
				if !s.ValidateRead(key, timestamp.Zero, vh(""), tsv) {
					errs <- fmt.Errorf("read validation failed for %s", key)
					return
				}
				if !s.ValidateWrite(key, tsv) {
					errs <- fmt.Errorf("write validation failed for %s", key)
					return
				}
				s.CommitRead(key, tsv)
				s.CommitWrite(key, []byte("v"), tsv)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", s.Len(), workers*perWorker)
	}
}

func TestConcurrentSameKeyNoTornState(t *testing.T) {
	// Hammer one key from many goroutines with the full validate/commit or
	// validate/abort flow; afterwards no pending readers/writers may leak.
	s := New(Config{})
	s.Load("hot", []byte("v0"), ts(0))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				tsv := timestamp.Timestamp{Time: int64(rng.Intn(1000000)), ClientID: uint64(w + 1)}
				v, _ := s.Read("hot")
				okR := s.ValidateRead("hot", v.WTS, message.HashValue(v.Value), tsv)
				okW := okR && s.ValidateWrite("hot", tsv)
				if okR && okW {
					s.CommitRead("hot", tsv)
					s.CommitWrite("hot", []byte("v"), tsv)
				} else {
					if okR {
						s.RemoveReader("hot", tsv)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	r, w := s.Pending("hot")
	if r != 0 || w != 0 {
		t.Fatalf("leaked pending state: readers=%d writers=%d", r, w)
	}
	vs := s.Versions("hot")
	for i := 1; i < len(vs); i++ {
		if !vs[i-1].WTS.Less(vs[i].WTS) {
			t.Fatal("version chain not ascending")
		}
	}
}

func BenchmarkReadDisjoint(b *testing.B) {
	s := New(Config{})
	const n = 1 << 16
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		s.Load(keys[i], []byte("value"), ts(1))
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := rand.Intn(n)
		for pb.Next() {
			s.Read(keys[i&(n-1)])
			i++
		}
	})
}

func BenchmarkValidateCommitDisjoint(b *testing.B) {
	s := New(Config{})
	const n = 1 << 16
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		s.Load(keys[i], []byte("value"), ts(1))
	}
	b.ReportAllocs()
	var ctr int64
	b.RunParallel(func(pb *testing.PB) {
		i := rand.Intn(n)
		for pb.Next() {
			k := keys[i&(n-1)]
			tsv := timestamp.Timestamp{Time: int64(i + 2), ClientID: uint64(i)}
			v, _ := s.Read(k)
			if s.ValidateRead(k, v.WTS, message.HashValue(v.Value), tsv) && s.ValidateWrite(k, tsv) {
				s.CommitRead(k, tsv)
				s.CommitWrite(k, []byte("value"), tsv)
			}
			i++
		}
	})
	_ = ctr
}

func TestExportImportState(t *testing.T) {
	src := New(Config{Shards: 4})
	src.Load("a", []byte("v1"), ts(1))
	src.CommitWrite("a", []byte("v2"), ts(5))
	src.CommitRead("a", ts(8))
	src.Load("b", []byte("w"), ts(2))
	src.ValidateWrite("c", ts(9)) // pending only: must NOT transfer

	if src.NumShards() != 4 {
		t.Fatalf("NumShards = %d", src.NumShards())
	}
	dst := New(Config{Shards: 4})
	total := 0
	for i := 0; i < src.NumShards(); i++ {
		states := src.ExportShard(i)
		total += len(states)
		dst.ImportState(states)
	}
	if total != 2 {
		t.Fatalf("exported %d keys, want 2 (pending-only key excluded)", total)
	}
	v, ok := dst.Read("a")
	if !ok || string(v.Value) != "v2" || v.WTS != ts(5) {
		t.Fatalf("a = %+v ok=%v", v, ok)
	}
	if _, rts := dst.Meta("a"); rts != ts(8) {
		t.Fatalf("rts = %v", rts)
	}
	if _, ok := dst.Read("c"); ok {
		t.Fatal("pending-only key transferred")
	}
	// Out-of-range shard indices are harmless.
	if src.ExportShard(-1) != nil || src.ExportShard(99) != nil {
		t.Fatal("out-of-range export returned data")
	}
	// Re-import is idempotent (Thomas rule + monotone rts).
	dst.ImportState(src.ExportShard(0))
	if got := len(dst.Versions("a")); got > 1 {
		t.Fatalf("re-import duplicated versions: %d", got)
	}
}
