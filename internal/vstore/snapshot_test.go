package vstore

import "testing"

// TestSnapshotReadConfirmsWithoutPendingWriters covers the happy path of the
// read-only fast path's per-key guard: with no pending writer at or below the
// snapshot, the bound equals the snapshot itself (the reply confirms) and the
// returned version is the newest one at or under it.
func TestSnapshotReadConfirmsWithoutPendingWriters(t *testing.T) {
	s := New(Config{})
	s.Load("k", []byte("v1"), ts(1))
	s.CommitWrite("k", []byte("v2"), ts(5))

	v, bound, ok := s.SnapshotRead("k", ts(10))
	if !ok || string(v.Value) != "v2" || v.WTS != ts(5) {
		t.Fatalf("got %+v ok=%v, want v2@5", v, ok)
	}
	if bound != ts(10) {
		t.Fatalf("bound = %v, want snapshot %v (no pending writers)", bound, ts(10))
	}
}

// TestSnapshotReadBoundRoundsBelowPendingWriter: a pending writer at or below
// the snapshot is undecided, so the key's bound must drop to just below that
// writer — the reply then reports the snapshot unconfirmed and the coordinator
// retries or rounds down.
func TestSnapshotReadBoundRoundsBelowPendingWriter(t *testing.T) {
	s := New(Config{})
	s.Load("k", []byte("v1"), ts(1))
	w := ts(7)
	s.AddWriter("k", w)

	v, bound, ok := s.SnapshotRead("k", ts(10))
	if !ok || v.WTS != ts(1) {
		t.Fatalf("got %+v ok=%v, want v1@1", v, ok)
	}
	if bound != w.Prev() {
		t.Fatalf("bound = %v, want %v (just below pending writer)", bound, w.Prev())
	}

	// A pending writer above the snapshot cannot commit under it, so it
	// must not depress the bound.
	if _, bound, _ = s.SnapshotRead("k", ts(6)); bound != ts(6) {
		t.Fatalf("bound = %v, want %v (writer at 7 is above snapshot 6)", bound, ts(6))
	}
}

// TestSnapshotReadBlocksLaterWriteUnderSnapshot: serving a snapshot read
// raises the key's rts, so a write that validates afterwards cannot commit at
// or below the snapshot — including at exactly the snapshot timestamp, the
// equality case a rounded-down (writer.Prev-derived) snapshot can produce.
func TestSnapshotReadBlocksLaterWriteUnderSnapshot(t *testing.T) {
	s := New(Config{})
	s.Load("k", []byte("v1"), ts(1))
	snap := ts(10)
	if _, bound, _ := s.SnapshotRead("k", snap); bound != snap {
		t.Fatalf("unconfirmed snapshot: bound %v", bound)
	}

	if s.ValidateWrite("k", ts(9)) {
		t.Fatal("write below served snapshot validated")
	}
	if s.ValidateWrite("k", snap) {
		t.Fatal("write at exactly the served snapshot timestamp validated")
	}
	if !s.ValidateWrite("k", ts(11)) {
		t.Fatal("write above served snapshot rejected")
	}
}

// TestSnapshotReadMissingKey: a snapshot read of a key with no committed
// version still reports a bound (the key exists only as a guard entry) and
// not-found.
func TestSnapshotReadMissingKey(t *testing.T) {
	s := New(Config{})
	_, bound, ok := s.SnapshotRead("nope", ts(10))
	if ok {
		t.Fatal("snapshot read of missing key reported a version")
	}
	if bound != ts(10) {
		t.Fatalf("bound = %v, want %v", bound, ts(10))
	}
	// The rts guard must hold for missing keys too: the snapshot observed
	// "no value", so no write may now commit under it and contradict that.
	if s.ValidateWrite("nope", ts(4)) {
		t.Fatal("write under a served (missing-key) snapshot validated")
	}
}

// TestSnapshotReadOlderVersion: the snapshot pins reads to the newest version
// at or below it even when newer committed versions exist.
func TestSnapshotReadOlderVersion(t *testing.T) {
	s := New(Config{})
	s.Load("k", []byte("v1"), ts(1))
	s.CommitWrite("k", []byte("v2"), ts(5))
	s.CommitWrite("k", []byte("v3"), ts(9))

	v, bound, ok := s.SnapshotRead("k", ts(6))
	if !ok || string(v.Value) != "v2" || v.WTS != ts(5) {
		t.Fatalf("got %+v ok=%v, want v2@5", v, ok)
	}
	if bound != ts(6) {
		t.Fatalf("bound = %v, want %v", bound, ts(6))
	}
}

// TestSnapshotReadBoundWithMultiplePendingWriters: the bound rounds below the
// earliest undecided writer under the snapshot, not an arbitrary one.
func TestSnapshotReadBoundWithMultiplePendingWriters(t *testing.T) {
	s := New(Config{})
	s.Load("k", []byte("v1"), ts(1))
	s.AddWriter("k", ts(8))
	s.AddWriter("k", ts(3))

	if _, bound, _ := s.SnapshotRead("k", ts(10)); bound != ts(3).Prev() {
		t.Fatalf("bound = %v, want %v (below earliest pending writer)", bound, ts(3).Prev())
	}

	// Once the earliest writer resolves, the bound climbs to below the next.
	s.RemoveWriter("k", ts(3))
	if _, bound, _ := s.SnapshotRead("k", ts(10)); bound != ts(8).Prev() {
		t.Fatalf("bound = %v, want %v after abort of earliest writer", bound, ts(8).Prev())
	}
	s.CommitWrite("k", []byte("v2"), ts(8))
	if _, bound, _ := s.SnapshotRead("k", ts(10)); bound != ts(10) {
		t.Fatalf("bound = %v, want %v after all writers resolved", bound, ts(10))
	}
}
