// Package vstore implements Meerkat's versioned storage layer: a sharded
// concurrent hash table whose entries carry, per key, the version history
// plus the concurrency-control metadata of the paper's §4.2 —
//
//   - wts: the write timestamp of the latest committed version,
//   - rts: the largest timestamp of any committed transaction that read the
//     key,
//   - readers: timestamps of pending (validated, not yet finalized)
//     transactions that read the key,
//   - writers: timestamps of pending transactions that wrote the key.
//
// All state is partitioned per key and protected by a per-key lock, so
// transactions touching disjoint keys never contend — the storage half of
// the Zero-Coordination Principle. The same store backs Meerkat, Meerkat-PB,
// TAPIR-like, and KuaFu++, mirroring the paper's shared storage layer.
//
// Reads take a lock-free fast path: the key index is a sync.Map per shard
// (lock-free hits once a key is in the read-mostly portion) and each entry
// publishes its latest committed version through an atomic.Pointer snapshot.
// A read of a committed key therefore touches zero mutexes; only validation
// and version install — the paper's "small atomic regions" — take the
// per-key lock. See DESIGN.md ("Hot-path performance") for the invariant.
package vstore

import (
	"sync"
	"sync/atomic"
	"time"

	"meerkat/internal/message"
	"meerkat/internal/timestamp"
)

// Version is one committed value of a key. A version produced by a
// commutative operation (CommitOp) records the operation alongside the
// materialized value: Op/OpDelta/OpArg are the merge record that lets the
// store re-materialize this version when an older write or op is folded in
// beneath it. Plain writes have Op == OpNone and their value never depends
// on a predecessor.
type Version struct {
	Value   []byte
	WTS     timestamp.Timestamp // timestamp of the transaction that wrote it
	Op      message.OpKind      // OpNone for plain writes
	OpDelta int64               // numeric-op operand
	OpArg   []byte              // append-op operand
}

// tsSet is a small unordered set of timestamps. Pending reader/writer sets
// hold one element per in-flight conflicting transaction, so linear scans
// beat any tree or map at realistic sizes.
type tsSet struct {
	ts []timestamp.Timestamp
}

func (s *tsSet) add(t timestamp.Timestamp) { s.ts = append(s.ts, t) }

func (s *tsSet) remove(t timestamp.Timestamp) {
	for i := range s.ts {
		if s.ts[i] == t {
			last := len(s.ts) - 1
			s.ts[i] = s.ts[last]
			s.ts = s.ts[:last]
			return
		}
	}
}

// min returns the smallest timestamp and true, or false if empty.
func (s *tsSet) min() (timestamp.Timestamp, bool) {
	if len(s.ts) == 0 {
		return timestamp.Timestamp{}, false
	}
	m := s.ts[0]
	for _, t := range s.ts[1:] {
		if t.Less(m) {
			m = t
		}
	}
	return m, true
}

// max returns the largest timestamp and true, or false if empty.
func (s *tsSet) max() (timestamp.Timestamp, bool) {
	if len(s.ts) == 0 {
		return timestamp.Timestamp{}, false
	}
	m := s.ts[0]
	for _, t := range s.ts[1:] {
		if m.Less(t) {
			m = t
		}
	}
	return m, true
}

// entry is the per-key record. Its mutex is the only lock a non-conflicting
// transaction ever takes in the storage layer, and only for the duration of
// one check or install — the paper's "small atomic regions". Plain reads
// bypass even that: latest holds an immutable snapshot of the newest
// committed version, published atomically by installLocked.
type entry struct {
	mu sync.Mutex

	// latest is the lock-free read snapshot: a pointer to an immutable copy
	// of versions' last element, nil iff the key has no committed version.
	// Written only under mu; read without any lock.
	latest atomic.Pointer[Version]

	versions []Version // ascending by WTS; last is the latest committed
	rts      timestamp.Timestamp
	readers  tsSet
	writers  tsSet

	// appliedAt is the local wall clock (UnixNano) of the last committed
	// mutation of this entry — version install, rts advance, or load. It is
	// deliberately NOT the transaction timestamp: a transaction finalized via
	// the sweeper or a backup coordinator can commit with a TS assigned long
	// before, and delta state transfer must still ship it to a replica that
	// was down when the commit was applied. See ExportShardSince.
	appliedAt int64

	// baseTrimmed records that the value preceding versions[0] is unknown:
	// either installLocked trimmed history to MaxVersions, or the entry was
	// imported via state transfer (which ships only the latest version). An
	// op folded in below versions[0] then cannot re-materialize from its
	// true predecessor and takes the arithmetic-recovery path instead.
	baseTrimmed bool

	// vhash caches message.HashValue of the latest version's value,
	// refreshed by publishLatestLocked. Read validation compares it against
	// the hash the client computed over the bytes it read: an op that merged
	// below the latest version re-materializes the value WITHOUT advancing
	// wts, so matching timestamps alone would let a reader validate against
	// a value that no longer exists. Meaningful only when versions is
	// non-empty (the empty chain validates as HashValue(nil)).
	vhash uint64
}

// wtsLocked returns the latest committed write timestamp (Zero if none).
// Caller holds e.mu.
func (e *entry) wtsLocked() timestamp.Timestamp {
	if len(e.versions) == 0 {
		return timestamp.Timestamp{}
	}
	return e.versions[len(e.versions)-1].WTS
}

const defaultShards = 256

// Config tunes a Store.
type Config struct {
	// Shards is the number of hash-table shards; must be a power of two.
	// Defaults to 256.
	Shards int
	// MaxVersions bounds the per-key version history; older versions are
	// trimmed on install. 0 means keep 8 (enough for the out-of-order
	// reads the protocol generates). Negative means unbounded.
	MaxVersions int
}

// Store is the versioned storage layer.
type Store struct {
	shards      []shard
	mask        uint64
	maxVersions int

	// Commutative-op telemetry: opsMerged counts committed ops folded into
	// version chains; opsRecovered counts the out-of-window folds that had
	// to use arithmetic recovery because the op's predecessor version was
	// trimmed (see entry.recoverPrefixLocked).
	opsMerged    atomic.Uint64
	opsRecovered atomic.Uint64
}

// shard holds one slice of the key index. sync.Map fits the access pattern
// exactly: after warmup the keyset is stable, so lookups hit the read-only
// portion — an atomic load, no mutex, no allocation. Values are *entry.
type shard struct {
	m sync.Map
}

// New returns an empty Store.
func New(cfg Config) *Store {
	n := cfg.Shards
	if n <= 0 {
		n = defaultShards
	}
	if n&(n-1) != 0 {
		panic("vstore: Shards must be a power of two")
	}
	maxV := cfg.MaxVersions
	if maxV == 0 {
		maxV = 8
	}
	return &Store{shards: make([]shard, n), mask: uint64(n - 1), maxVersions: maxV}
}

// fnv1a hashes key without allocating.
func fnv1a(key string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return h
}

func (s *Store) shardFor(key string) *shard {
	return &s.shards[fnv1a(key)&s.mask]
}

// get returns the entry for key, or nil if absent. Lock-free on the hit
// path: sync.Map.Load on a warm key is an atomic load of the read-only map.
func (s *Store) get(key string) *entry {
	if v, ok := s.shardFor(key).m.Load(key); ok {
		return v.(*entry)
	}
	return nil
}

// getOrCreate returns the entry for key, creating it if absent.
func (s *Store) getOrCreate(key string) *entry {
	sh := s.shardFor(key)
	if v, ok := sh.m.Load(key); ok {
		return v.(*entry)
	}
	v, _ := sh.m.LoadOrStore(key, &entry{})
	return v.(*entry)
}

// Load installs an initial version of key at ts, bypassing concurrency
// control. It is meant for bulk-loading the database before a run.
func (s *Store) Load(key string, value []byte, ts timestamp.Timestamp) {
	e := s.getOrCreate(key)
	e.mu.Lock()
	e.installLocked(value, ts, s.maxVersions)
	e.mu.Unlock()
}

// Read returns the latest committed version of key. ok is false if the key
// has never been written; the returned WTS is then Zero, which is exactly
// the version a read-set entry should carry so that validation detects a
// concurrent first write.
//
// Read takes no locks: it is two atomic loads (shard index, version
// snapshot), so read-dominated workloads contend on nothing.
func (s *Store) Read(key string) (Version, bool) {
	e := s.get(key)
	if e == nil {
		return Version{}, false
	}
	if v := e.latest.Load(); v != nil {
		return *v, true
	}
	return Version{}, false
}

// ReadAt returns the newest committed version of key with WTS <= ts. It
// serves reads that must not observe writes later than a chosen timestamp.
// When the latest committed version already satisfies ts — the common case
// for current-time reads — it is answered from the lock-free snapshot;
// only older-version reads walk the history under the per-key lock.
func (s *Store) ReadAt(key string, ts timestamp.Timestamp) (Version, bool) {
	e := s.get(key)
	if e == nil {
		return Version{}, false
	}
	if v := e.latest.Load(); v == nil {
		return Version{}, false
	} else if v.WTS.LessEq(ts) {
		return *v, true
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := len(e.versions) - 1; i >= 0; i-- {
		if e.versions[i].WTS.LessEq(ts) {
			return e.versions[i], true
		}
	}
	return Version{}, false
}

// SnapshotRead serves one key of a read-only snapshot transaction at snap.
// In a single critical section it
//
//  1. raises the key's read timestamp to snap, so any write or op that has
//     not yet validated here can never commit at or below snap
//     (ValidateWrite checks ts < rts), and
//  2. computes the key's *confirmation bound*: snap itself if no pending
//     writer sits at or below snap, else just below the earliest such writer
//     (that writer's outcome is still undecided, so versions at or under
//     snap are not yet final with respect to this replica).
//
// The returned version is the newest committed one with WTS <= snap (ok
// false if none). The entry is created if missing: the rts guard must hold
// for never-written keys too, otherwise a later first write could slide
// under an already-confirmed snapshot.
func (s *Store) SnapshotRead(key string, snap timestamp.Timestamp) (Version, timestamp.Timestamp, bool) {
	e := s.getOrCreate(key)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.rts.Less(snap) {
		e.rts = snap
		e.appliedAt = time.Now().UnixNano()
	}
	bound := snap
	if w, ok := e.writers.min(); ok && w.LessEq(snap) {
		bound = w.Prev()
	}
	for i := len(e.versions) - 1; i >= 0; i-- {
		if e.versions[i].WTS.LessEq(snap) {
			return e.versions[i], bound, true
		}
	}
	return Version{}, bound, false
}

// ValidateRead performs the read-set half of the paper's Algorithm 1 for a
// single key: it aborts if the latest committed version is newer than the
// one the transaction read (e.wts > readWTS), if the value at that version
// is no longer the value the transaction observed (readVHash differs — a
// commutative op merged in below it; see entry.vhash), or if a pending
// writer could commit between that version and ts (ts > min(writers)). On
// success the transaction's timestamp is recorded in the key's pending
// readers.
func (s *Store) ValidateRead(key string, readWTS timestamp.Timestamp, readVHash uint64, ts timestamp.Timestamp) bool {
	e := s.getOrCreate(key)
	e.mu.Lock()
	defer e.mu.Unlock()
	if readWTS.Less(e.wtsLocked()) {
		return false
	}
	h := emptyVHash
	if len(e.versions) > 0 {
		h = e.vhash
	}
	if h != readVHash {
		return false
	}
	if w, ok := e.writers.min(); ok && w.Less(ts) {
		return false
	}
	e.readers.add(ts)
	return true
}

// emptyVHash is the hash a client computes for a missing key (it read nil).
var emptyVHash = message.HashValue(nil)

// ValidateWrite performs the write-set half of Algorithm 1 for a single key:
// it aborts if the write at ts would interpose itself before a committed
// read (ts < rts) or before a pending validated read (ts < max(readers)).
// On success the transaction's timestamp is recorded in the key's pending
// writers.
func (s *Store) ValidateWrite(key string, ts timestamp.Timestamp) bool {
	e := s.getOrCreate(key)
	e.mu.Lock()
	defer e.mu.Unlock()
	// Equality aborts too: commit timestamps are client-unique, so ts == rts
	// never happens between ordinary transactions — but a rounded-down
	// snapshot raises rts to a derived timestamp (a pending writer's Prev),
	// which CAN collide with another writer's exact proposal. That snapshot
	// was served without this write, so committing at the same timestamp
	// would serialize the write before the read it never reached.
	if ts.LessEq(e.rts) {
		return false
	}
	if r, ok := e.readers.max(); ok && ts.Less(r) {
		return false
	}
	e.writers.add(ts)
	return true
}

// AddWriter registers ts as a pending writer of key without any OCC check.
// The slow-path accept phase uses it: a replica adopting ACCEPT-COMMIT for a
// transaction it never validated must still surface the undecided write to
// the snapshot-read bound, and the accept decision is Paxos's to make, not
// OCC's to refuse. The registration is cleared by the same CommitWrite/
// CommitOp/RemoveWriter paths as a validated one's.
func (s *Store) AddWriter(key string, ts timestamp.Timestamp) {
	e := s.getOrCreate(key)
	e.mu.Lock()
	e.writers.add(ts)
	e.mu.Unlock()
}

// RemoveReader backs out a pending read registration (abort cleanup).
func (s *Store) RemoveReader(key string, ts timestamp.Timestamp) {
	if e := s.get(key); e != nil {
		e.mu.Lock()
		e.readers.remove(ts)
		e.mu.Unlock()
	}
}

// RemoveWriter backs out a pending write registration (abort cleanup).
func (s *Store) RemoveWriter(key string, ts timestamp.Timestamp) {
	if e := s.get(key); e != nil {
		e.mu.Lock()
		e.writers.remove(ts)
		e.mu.Unlock()
	}
}

// CommitRead finalizes a committed read: it advances the key's rts to ts and
// clears the pending reader registration.
func (s *Store) CommitRead(key string, ts timestamp.Timestamp) {
	e := s.getOrCreate(key)
	e.mu.Lock()
	if e.rts.Less(ts) {
		e.rts = ts
		e.appliedAt = time.Now().UnixNano()
	}
	e.readers.remove(ts)
	e.mu.Unlock()
}

// CommitWrite finalizes a committed write: it clears the pending writer
// registration and installs the new version at ts. Under the Thomas write
// rule, a write older than the latest committed version is skipped — the
// transaction still commits, but the stale value is never observable.
func (s *Store) CommitWrite(key string, value []byte, ts timestamp.Timestamp) {
	e := s.getOrCreate(key)
	e.mu.Lock()
	e.writers.remove(ts)
	e.installLocked(value, ts, s.maxVersions)
	e.mu.Unlock()
}

// CommitOp finalizes a committed commutative operation: it clears the pending
// writer registration and folds the op into the version chain at ts. Unlike a
// blind write, an op that arrives out of timestamp order is not dropped by the
// Thomas rule — it is merged at its position and the newer op-versions above
// it are re-materialized, so every replica converges on the value of applying
// all committed ops in timestamp order regardless of arrival order.
//
// delta carries the operand for numeric kinds (Increment/Max/Min); arg carries
// the appended bytes for Append. The caller may not mutate arg afterwards (the
// version chain retains it, like CommitWrite retains value).
func (s *Store) CommitOp(key string, kind message.OpKind, delta int64, arg []byte, ts timestamp.Timestamp) {
	if !kind.Valid() {
		s.RemoveWriter(key, ts)
		return
	}
	e := s.getOrCreate(key)
	e.mu.Lock()
	e.writers.remove(ts)
	recovered := e.insertLocked(Version{WTS: ts, Op: kind, OpDelta: delta, OpArg: arg}, s.maxVersions)
	e.mu.Unlock()
	s.opsMerged.Add(1)
	if recovered {
		s.opsRecovered.Add(1)
	}
}

// OpStats reports the commutative-op counters: merged is the number of
// committed ops folded into version chains, recovered the subset that
// arrived below the retained history and took the arithmetic-recovery path
// (see recoverPrefixLocked).
func (s *Store) OpStats() (merged, recovered uint64) {
	return s.opsMerged.Load(), s.opsRecovered.Load()
}

// installLocked appends a plain write (value, ts) to the version chain, or —
// when ts is older than the latest version — folds it in at its timestamp
// position (see insertLocked). Caller holds e.mu.
func (e *entry) installLocked(value []byte, ts timestamp.Timestamp, maxVersions int) {
	e.insertLocked(Version{Value: value, WTS: ts}, maxVersions)
}

// insertLocked folds one committed version — a plain write or a commutative
// op (v.Op != OpNone, v.Value ignored) — into the chain at its timestamp
// position. Caller holds e.mu. It publishes the chain's (possibly new) last
// version through e.latest; the published Version is a copy and is never
// mutated afterwards (versions may be trimmed, moved, or re-materialized —
// the snapshot may not alias them).
//
// The rules, in order:
//
//   - A version with the same WTS already exists: skip. Commit records are
//     replayed (WAL recovery, duplicate finalize), and a transaction installs
//     at most one version per key, so same-WTS means already applied.
//   - ts is newer than every retained version: append. Ops materialize from
//     the previous latest value here — the hot path.
//   - The next-newer retained version is a plain write: skip. This is the
//     Thomas write rule extended to ops — the plain write's value does not
//     depend on its predecessor, so it masks the incoming version entirely.
//     It is also what makes state-transfer imports idempotent: an imported
//     materialized value (always Op == OpNone) at a newer WTS absorbs any
//     late replay of the ops whose effects it already includes.
//   - The next-newer retained version is an op: insert at position, then
//     re-materialize the run of op-versions above from their new
//     predecessors, stopping at the first plain write (which masks
//     everything below it). A plain write inserted this way supplies the
//     base itself; an op needs its predecessor's value — if that
//     predecessor was trimmed (baseTrimmed and position 0), exact
//     re-materialization is impossible and recoverPrefixLocked folds the
//     op into the retained prefix arithmetically instead.
//
// Returns true when the op had to take the arithmetic-recovery path.
func (e *entry) insertLocked(v Version, maxVersions int) (recovered bool) {
	if !timestamp.Zero.Less(v.WTS) {
		// The empty chain behaves as a plain write at the Zero timestamp:
		// versions at or below it are never observable.
		return false
	}
	pos := len(e.versions)
	for pos > 0 && v.WTS.Less(e.versions[pos-1].WTS) {
		pos--
	}
	if pos > 0 && e.versions[pos-1].WTS == v.WTS {
		return false // already applied (idempotent replay)
	}
	if pos == len(e.versions) {
		// Append path: newer than everything retained.
		if v.Op != message.OpNone {
			var prev []byte
			if pos > 0 {
				prev = e.versions[pos-1].Value
			}
			v.Value = message.ApplyOp(nil, prev, v.Op, v.OpDelta, v.OpArg)
		}
		e.versions = append(e.versions, v)
	} else if e.versions[pos].Op == message.OpNone {
		return false // masked by a newer plain write (Thomas write rule)
	} else if v.Op != message.OpNone && pos == 0 && e.baseTrimmed {
		// The op's predecessor was trimmed: fold it into the retained
		// op-run arithmetically.
		e.recoverPrefixLocked(v.Op, v.OpDelta, v.OpArg)
		e.publishLatestLocked()
		return true
	} else {
		if v.Op != message.OpNone {
			var prev []byte
			if pos > 0 {
				prev = e.versions[pos-1].Value
			}
			v.Value = message.ApplyOp(nil, prev, v.Op, v.OpDelta, v.OpArg)
		}
		e.versions = append(e.versions, Version{})
		copy(e.versions[pos+1:], e.versions[pos:])
		e.versions[pos] = v
		// Re-materialize the op-run above the insert from its new
		// predecessors; the first plain write is independent of them.
		for j := pos + 1; j < len(e.versions) && e.versions[j].Op != message.OpNone; j++ {
			e.versions[j].Value = message.ApplyOp(nil, e.versions[j-1].Value,
				e.versions[j].Op, e.versions[j].OpDelta, e.versions[j].OpArg)
		}
	}
	if maxVersions > 0 && len(e.versions) > maxVersions {
		n := copy(e.versions, e.versions[len(e.versions)-maxVersions:])
		e.versions = e.versions[:n]
		e.baseTrimmed = true
	}
	e.publishLatestLocked()
	return false
}

// publishLatestLocked refreshes the lock-free read snapshot from the chain's
// last version. Caller holds e.mu. Always stores a fresh copy: the chain's
// backing array may be trimmed, shifted, or re-materialized later, and the
// published snapshot must never alias mutable storage.
func (e *entry) publishLatestLocked() {
	last := &e.versions[len(e.versions)-1]
	e.latest.Store(&Version{Value: last.Value, WTS: last.WTS, Op: last.Op,
		OpDelta: last.OpDelta, OpArg: last.OpArg})
	e.vhash = message.HashValue(last.Value)
	e.appliedAt = time.Now().UnixNano()
}

// recoverPrefixLocked folds an op whose true position is below every
// retained version into the retained prefix. Exact reconstruction needs the
// trimmed predecessor value, which is gone; but the op algebra still allows
// exact recovery for the common same-kind runs:
//
//   - increment: adding delta below an increment run shifts every
//     materialized sum in the run by delta.
//   - max/min: folding the operand into each accumulated extreme is the
//     same as merging it first (associative + commutative).
//   - append: each run value is <lost base> + <args so far>; the incoming
//     arg splices in front of the accumulated suffix.
//
// The fold stops at the first plain write, which masks the op. Mixed-kind
// runs fall back to the same per-version folds, which is best-effort (the
// interleaving of kinds is not invertible without the base); both paths are
// deterministic, and the caller counts every recovery so operators can see
// when history pressure (MaxVersions too small for the op reordering window)
// is costing precision.
func (e *entry) recoverPrefixLocked(kind message.OpKind, delta int64, arg []byte) {
	suffixLen := 0
	for j := 0; j < len(e.versions) && e.versions[j].Op != message.OpNone; j++ {
		v := &e.versions[j]
		switch kind {
		case message.OpIncrement:
			base, _ := message.ParseIntValue(v.Value)
			v.Value = message.AppendIntValue(nil, base+delta)
		case message.OpMax:
			if cur, ok := message.ParseIntValue(v.Value); !ok || cur < delta {
				v.Value = message.AppendIntValue(nil, delta)
			}
		case message.OpMin:
			if cur, ok := message.ParseIntValue(v.Value); !ok || cur > delta {
				v.Value = message.AppendIntValue(nil, delta)
			}
		case message.OpAppend:
			if v.Op == message.OpAppend {
				suffixLen += len(v.OpArg)
			}
			cut := len(v.Value) - suffixLen
			if cut < 0 {
				cut = 0
			}
			nv := make([]byte, 0, len(v.Value)+len(arg))
			nv = append(nv, v.Value[:cut]...)
			nv = append(nv, arg...)
			nv = append(nv, v.Value[cut:]...)
			v.Value = nv
		}
	}
}

// Pending reports the sizes of the key's pending reader and writer sets.
// Zero values are returned for unknown keys. Intended for tests and for the
// recovery path's sanity checks.
func (s *Store) Pending(key string) (readers, writers int) {
	e := s.get(key)
	if e == nil {
		return 0, 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.readers.ts), len(e.writers.ts)
}

// Meta returns the key's committed metadata (latest wts and rts).
func (s *Store) Meta(key string) (wts, rts timestamp.Timestamp) {
	e := s.get(key)
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.wtsLocked(), e.rts
}

// Versions returns a copy of the key's committed version chain, oldest
// first. Intended for tests.
func (s *Store) Versions(key string) []Version {
	e := s.get(key)
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Version, len(e.versions))
	copy(out, e.versions)
	return out
}

// Len returns the number of keys present (committed or with pending state).
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].m.Range(func(_, _ any) bool {
			n++
			return true
		})
	}
	return n
}

// Counts reports the number of keys present and the total committed versions
// retained across all of them. It is a scrape-path helper (observability
// gauges): it walks every shard and briefly takes each per-key lock, so it
// must not be called from transaction processing.
func (s *Store) Counts() (keys, versions uint64) {
	for i := range s.shards {
		s.shards[i].m.Range(func(_, v any) bool {
			e := v.(*entry)
			keys++
			e.mu.Lock()
			versions += uint64(len(e.versions))
			e.mu.Unlock()
			return true
		})
	}
	return
}

// KeyState is one key's transferable committed state: the latest version
// and the read timestamp. It is the unit of replica state transfer.
type KeyState struct {
	Key   string
	Value []byte
	WTS   timestamp.Timestamp
	RTS   timestamp.Timestamp
}

// NumShards returns the shard count, the pagination unit for state export.
func (s *Store) NumShards() int { return len(s.shards) }

// ExportShard snapshots the committed state of one shard for state
// transfer. Pending readers/writers are deliberately excluded: in-flight
// transactions are reconciled by the epoch change that follows a transfer.
func (s *Store) ExportShard(i int) []KeyState {
	return s.ExportShardSince(i, timestamp.Timestamp{}, 0)
}

// ExportShardSince is ExportShard restricted to keys whose committed state
// changed after a bound, along either of two axes:
//
//   - since (transaction time): the key was written (WTS) or read (RTS) past
//     it. A recovering replica that replayed a local snapshot+log passes its
//     watermark minus a margin to fetch only the recent-TS delta.
//   - sinceWall (local wall clock, UnixNano, 0 = disabled): the key's last
//     committed mutation was applied on THIS store at or after sinceWall.
//     This catches commits whose TS predates any reasonable margin — e.g. a
//     transaction finalized by the sweeper or a backup coordinator long
//     after its TS was assigned — as long as the donor applied them while
//     the requester was down.
//
// A key passing either filter is exported; zero bounds export everything.
func (s *Store) ExportShardSince(i int, since timestamp.Timestamp, sinceWall int64) []KeyState {
	if i < 0 || i >= len(s.shards) {
		return nil
	}
	var out []KeyState
	s.shards[i].m.Range(func(k, v any) bool {
		e := v.(*entry)
		e.mu.Lock()
		if len(e.versions) > 0 {
			lv := e.versions[len(e.versions)-1]
			if since.Less(lv.WTS) || since.Less(e.rts) || (sinceWall > 0 && e.appliedAt >= sinceWall) {
				out = append(out, KeyState{Key: k.(string), Value: lv.Value, WTS: lv.WTS, RTS: e.rts})
			}
		} else if !e.rts.IsZero() && (since.Less(e.rts) || (sinceWall > 0 && e.appliedAt >= sinceWall)) {
			// A key that was read (rts raised) but never written has state
			// worth transferring too: dropping the rts would let the importer
			// later validate a write below it, un-serializing the read. Export
			// it with a zero WTS; ImportState installs only the rts.
			out = append(out, KeyState{Key: k.(string), RTS: e.rts})
		}
		e.mu.Unlock()
		return true
	})
	return out
}

// ImportState installs transferred key states: each key's latest version
// and read timestamp. Imports are idempotent and monotone (Thomas rule for
// versions, max for rts), so overlapping transfers are safe.
func (s *Store) ImportState(states []KeyState) {
	for i := range states {
		st := &states[i]
		if st.WTS.IsZero() {
			// rts-only export (read but never written): installing a version
			// at timestamp zero would fabricate a committed nil write, so
			// only the read timestamp transfers.
			if !st.RTS.IsZero() {
				s.CommitRead(st.Key, st.RTS)
			}
			continue
		}
		e := s.getOrCreate(st.Key)
		e.mu.Lock()
		e.installLocked(st.Value, st.WTS, s.maxVersions)
		// A transferred state carries only the materialized latest value —
		// the history beneath it lives on the exporting replica. Mark the
		// base unknown so a commutative op replayed from below the imported
		// version folds arithmetically instead of trusting a missing prefix.
		e.baseTrimmed = true
		e.mu.Unlock()
		if !st.RTS.IsZero() {
			s.CommitRead(st.Key, st.RTS)
		}
	}
}

// Range calls fn for every key's latest committed version until fn returns
// false. Iteration order is unspecified. Keys with no committed version are
// skipped. Versions are read from the lock-free snapshots, so Range never
// blocks concurrent transactions.
func (s *Store) Range(fn func(key string, v Version) bool) {
	for i := range s.shards {
		stop := false
		s.shards[i].m.Range(func(k, v any) bool {
			lv := v.(*entry).latest.Load()
			if lv == nil {
				return true
			}
			if !fn(k.(string), *lv) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}
