package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func scrape(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return string(body)
}

func TestPrometheusEndpoint(t *testing.T) {
	r := NewRegistry()
	s := r.NewShard()
	s.Add(TxnCommitFast, 12)
	s.Inc(TxnAbortValidation)
	s.Observe(HistCommit, 2*time.Millisecond)
	r.RegisterGauge("vstore_keys", func() uint64 { return 99 })

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	body := scrape(t, srv, "/metrics")
	for _, want := range []string{
		"meerkat_txn_commit_fast_total 12",
		"meerkat_txn_abort_validation_total 1",
		"meerkat_vstore_keys 99",
		"meerkat_commit_latency_seconds_count 1",
		`meerkat_commit_latency_seconds{quantile="0.5"}`,
		"# TYPE meerkat_txn_commit_fast_total counter",
		"# TYPE meerkat_vstore_keys gauge",
		"# TYPE meerkat_commit_latency_seconds summary",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}

func TestExpvarEndpoint(t *testing.T) {
	r := NewRegistry()
	r.NewShard().Add(TxnCommitSlow, 4)

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	body := scrape(t, srv, "/debug/vars")
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v\n%s", err, body)
	}
	// The standard expvar vars and our snapshot must both be present.
	if _, ok := doc["memstats"]; !ok {
		t.Error("/debug/vars missing memstats")
	}
	raw, ok := doc["meerkat"]
	if !ok {
		t.Fatal("/debug/vars missing meerkat object")
	}
	var m struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("meerkat object: %v", err)
	}
	if m.Counters["txn_commit_slow"] != 4 {
		t.Fatalf("txn_commit_slow = %d, want 4", m.Counters["txn_commit_slow"])
	}
}

func TestPprofEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry()))
	defer srv.Close()
	if body := scrape(t, srv, "/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index unexpected:\n%s", body)
	}
}

func TestServe(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "meerkat_txn_commit_fast_total") {
		t.Fatalf("served metrics unexpected:\n%s", body)
	}
}
