// Package obs is Meerkat's observability subsystem: per-core (more
// precisely, per-recorder) sharded counters and latency histograms for the
// transaction lifecycle, plus scrape-time gauges, aggregated only when a
// snapshot is taken.
//
// The design obeys the Zero-Coordination Principle the rest of the system is
// built on: there is no shared hot-path counter anywhere. Every recorder — a
// replica core, a client coordinator, an epoch-change run — owns a private
// Shard and records into it with uncontended atomic adds on cache lines no
// other recorder writes. The Registry only walks the shards at scrape time
// (an HTTP scrape or a benchmark snapshot), paying the aggregation cost on
// the cold path where it belongs. A shared counter here would re-create
// exactly the cross-core cache-line ping-pong that Figure 1 of the paper
// demonstrates destroys multicore scaling.
//
// The record path (Inc/Add/Observe) is allocation-free and nil-safe: an
// un-instrumented component carries a nil *Shard and pays one predictable
// branch. TestRecordPathZeroAllocs pins the path at 0 allocs/op.
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"meerkat/internal/stats"
)

// Counter identifies one lifecycle counter. The taxonomy follows the
// protocol's decision structure (§5.2): which coordination path a
// transaction took, and why it aborted if it did.
type Counter int

// Coordinator-side transaction lifecycle counters (one increment per
// transaction at Commit, plus per-resend retry counters).
const (
	// TxnCommitFast counts transactions committed on the fast path: a
	// supermajority of matching VALIDATED-OK replies in every partition,
	// one round trip, no accept round.
	TxnCommitFast Counter = iota
	// TxnCommitSlow counts transactions committed through the Paxos-like
	// slow path (an accept round) in at least one partition.
	TxnCommitSlow
	// TxnAbortValidation counts aborts decided by validation conflicts on
	// the fast path: a supermajority of VALIDATED-ABORT replies (or a final
	// ABORTED learned from another coordinator).
	TxnAbortValidation
	// TxnAbortAcceptAbort counts aborts decided through the slow path: an
	// ACCEPT-ABORT proposal accepted by a majority.
	TxnAbortAcceptAbort
	// TxnAbortTimeout counts commits whose outcome could not be determined
	// within the retry budget (ErrTimeout; a backup coordinator finishes
	// the transaction).
	TxnAbortTimeout
	// TxnRetry counts validate/accept round resends beyond the first
	// attempt; ReadRetry the same for execution-phase reads.
	TxnRetry
	ReadRetry
	// ReadMultiRound counts batched multi-read round trips issued (one per
	// partition per ReadMany call); ReadMultiRetry the resends beyond each
	// round's first attempt.
	ReadMultiRound
	ReadMultiRetry
	// TxnResolveCommit/TxnResolveAbort count unknown-outcome transactions
	// (Commit returned ErrTimeout) whose final outcome the client then
	// learned — or forced — by driving the cooperative-termination recovery
	// procedure itself (Txn.Resolve).
	TxnResolveCommit
	TxnResolveAbort
	// TxnCommitRO counts read-only transactions committed on the
	// validation-free fast path: every touched partition confirmed the
	// snapshot timestamp, so no validate round was issued at all.
	TxnCommitRO
	// ROReadRetry counts snapshot-read rounds re-issued at the same
	// snapshot timestamp because a partition was unconfirmed; RORoundDown
	// counts second attempts at a lower (rounded-down) snapshot;
	// ROFallback counts read-only transactions that gave up on the fast
	// path and demoted to the classic validated commit.
	ROReadRetry
	RORoundDown
	ROFallback

	// Replica-side per-core counters (one per message handled).
	ValidateOK       // validations that passed the OCC checks
	ValidateAbort    // validations that failed the OCC checks
	AcceptAcked      // accept requests adopted (slow path / recovery)
	AcceptRejected   // accept requests refused for a stale view
	CommitApplied    // write phases applied for committed transactions
	AbortApplied     // finalized aborts (registrations backed out)
	CoordChange      // coordinator-change promises granted (backup recovery)
	SweepRecovery    // stalled transactions handed to the backup coordinator
	EpochChangePause // cores paused and snapshotted by an epoch change
	MultiReadServed  // multi-read requests answered (keys served in batches)
	OpCommitApplied  // committed transactions carrying commutative ops
	OpMerged         // commutative ops folded into version chains on commit
	SnapshotRead     // snapshot multi-read requests answered (RO fast path)

	// Recovery-coordinator counters (internal/recovery).
	EpochChangeRun   // epoch changes driven to completion
	EpochMergedTxn   // transaction records in installed merged trecords
	EpochRevalidated // rule-4 candidates re-validated during a merge

	// Shard-routing counters. WrongShardRedirect counts replica-side
	// requests refused with a redirect (the group no longer owns the key);
	// TxnWrongShard counts client-side transaction attempts that hit a
	// redirect; MapRefresh counts shard-map cache refreshes that advanced
	// the cached version.
	WrongShardRedirect
	TxnWrongShard
	MapRefresh

	// NumCounters sizes shard arrays; keep it last.
	NumCounters
)

// counterNames are the export names (prefixed meerkat_ and suffixed _total
// by the Prometheus exporter).
var counterNames = [NumCounters]string{
	TxnCommitFast:       "txn_commit_fast",
	TxnCommitSlow:       "txn_commit_slow",
	TxnAbortValidation:  "txn_abort_validation",
	TxnAbortAcceptAbort: "txn_abort_accept_abort",
	TxnAbortTimeout:     "txn_abort_timeout",
	TxnRetry:            "txn_retry",
	ReadRetry:           "read_retry",
	ReadMultiRound:      "read_multi_round",
	ReadMultiRetry:      "read_multi_retry",
	TxnResolveCommit:    "txn_resolve_commit",
	TxnResolveAbort:     "txn_resolve_abort",
	TxnCommitRO:         "txn_commit_ro",
	ROReadRetry:         "ro_read_retry",
	RORoundDown:         "ro_round_down",
	ROFallback:          "ro_fallback",
	ValidateOK:          "replica_validate_ok",
	ValidateAbort:       "replica_validate_abort",
	AcceptAcked:         "replica_accept_acked",
	AcceptRejected:      "replica_accept_rejected",
	CommitApplied:       "replica_commit_applied",
	AbortApplied:        "replica_abort_applied",
	CoordChange:         "replica_coord_change",
	SweepRecovery:       "replica_sweep_recovery",
	EpochChangePause:    "replica_epoch_change_pause",
	MultiReadServed:     "replica_multi_read_served",
	OpCommitApplied:     "replica_op_commit_applied",
	OpMerged:            "replica_op_merged",
	SnapshotRead:        "replica_snapshot_read_served",
	EpochChangeRun:      "recovery_epoch_change_run",
	EpochMergedTxn:      "recovery_epoch_merged_txn",
	EpochRevalidated:    "recovery_epoch_revalidated",
	WrongShardRedirect:  "replica_wrong_shard_redirect",
	TxnWrongShard:       "txn_wrong_shard",
	MapRefresh:          "map_refresh",
}

// Name returns the counter's export name.
func (c Counter) Name() string { return counterNames[c] }

// Hist identifies one latency histogram.
type Hist int

const (
	// HistCommit is end-to-end commit latency of committed transactions
	// (Begin-to-decision as measured at the coordinator's Commit call).
	HistCommit Hist = iota
	// HistAbort is the same for transactions that aborted.
	HistAbort

	// NumHists sizes shard arrays; keep it last.
	NumHists
)

var histNames = [NumHists]string{
	HistCommit: "commit_latency",
	HistAbort:  "abort_latency",
}

// Name returns the histogram's export name.
func (h Hist) Name() string { return histNames[h] }

// cacheLine padding keeps one shard's hot counters from sharing a line with
// an allocator neighbor (shards are individually heap-allocated, so
// cross-shard false sharing can only happen at the object's edges).
const cacheLine = 64

// Shard is one recorder's private slice of the metrics space. Exactly one
// goroutine-at-a-time records into a shard in the intended wiring (a replica
// core's delivery goroutine, a client's coordinator), but the record path
// uses atomic adds so scrapes — and any sharing a caller does choose — are
// race-free. A nil *Shard is valid and discards records.
type Shard struct {
	_        [cacheLine]byte
	counters [NumCounters]uint64
	hists    [NumHists][stats.NumBuckets]uint64
	_        [cacheLine]byte
}

// Inc adds 1 to counter c. Allocation-free; nil-safe.
func (s *Shard) Inc(c Counter) {
	if s == nil {
		return
	}
	atomic.AddUint64(&s.counters[c], 1)
}

// Add adds n to counter c. Allocation-free; nil-safe.
func (s *Shard) Add(c Counter, n uint64) {
	if s == nil {
		return
	}
	atomic.AddUint64(&s.counters[c], n)
}

// Observe records one latency observation into histogram h, using the same
// log bucketing as stats.Histogram. Allocation-free; nil-safe.
func (s *Shard) Observe(h Hist, d time.Duration) {
	if s == nil {
		return
	}
	atomic.AddUint64(&s.hists[h][stats.BucketIndex(uint64(d))], 1)
}

// Gauge is a scrape-time sampled value: the function runs only when a
// snapshot is taken, so gauges add zero hot-path cost no matter what they
// read (a vstore key walk, a transport counter, a queue depth).
type Gauge struct {
	Name string
	Fn   func() uint64
}

// Registry holds the shards and gauges of one deployment (a cluster, a
// server process, a benchmark run). All methods are safe for concurrent use;
// registration is a cold path taken at component construction.
type Registry struct {
	mu     sync.Mutex
	shards []*Shard
	gauges []Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// NewShard allocates a shard and registers it for aggregation. Shards live
// for the registry's lifetime; components that churn (benchmark clients)
// leave their final values behind, which is exactly what cumulative counters
// want. Nil-safe: a nil registry returns a nil shard, so un-instrumented
// wiring needs no guards anywhere.
func (r *Registry) NewShard() *Shard {
	if r == nil {
		return nil
	}
	s := &Shard{}
	r.mu.Lock()
	r.shards = append(r.shards, s)
	r.mu.Unlock()
	return s
}

// RegisterGauge registers (or, by name, replaces) a scrape-time gauge.
// Replacement keeps re-created components (benchmark clusters sharing one
// registry across runs) from piling up duplicate export names. Nil-safe.
func (r *Registry) RegisterGauge(name string, fn func() uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.gauges {
		if r.gauges[i].Name == name {
			r.gauges[i].Fn = fn
			return
		}
	}
	r.gauges = append(r.gauges, Gauge{Name: name, Fn: fn})
}

// GaugeValue is one sampled gauge in a snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// HistSnapshot is the raw bucket counts of one histogram at snapshot time.
type HistSnapshot struct {
	Counts [stats.NumBuckets]uint64
}

// Histogram converts the raw buckets into a stats.Histogram (midpoint
// semantics) for percentile queries.
func (h *HistSnapshot) Histogram() stats.Histogram {
	var out stats.Histogram
	for b, n := range h.Counts {
		out.AddBucket(b, n)
	}
	return out
}

// Count returns the histogram's total observation count.
func (h *HistSnapshot) Count() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Snapshot is a consistent-enough point-in-time aggregate: counters and
// buckets are summed shard by shard with atomic loads, so each value is
// exact, though values recorded during the walk may land on either side.
type Snapshot struct {
	Counters [NumCounters]uint64
	Hists    [NumHists]HistSnapshot
	Gauges   []GaugeValue
}

// Snapshot aggregates all shards and samples all gauges. Cold path only.
// Nil-safe: a nil registry yields a zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	shards := r.shards
	gauges := make([]Gauge, len(r.gauges))
	copy(gauges, r.gauges)
	r.mu.Unlock()

	for _, s := range shards {
		for c := range s.counters {
			snap.Counters[c] += atomic.LoadUint64(&s.counters[c])
		}
		for h := range s.hists {
			for b := range s.hists[h] {
				snap.Hists[h].Counts[b] += atomic.LoadUint64(&s.hists[h][b])
			}
		}
	}
	snap.Gauges = make([]GaugeValue, len(gauges))
	for i, g := range gauges {
		snap.Gauges[i] = GaugeValue{Name: g.Name, Value: g.Fn()}
	}
	return snap
}

// Counter returns one aggregated counter value.
func (s Snapshot) Counter(c Counter) uint64 { return s.Counters[c] }

// Sub returns the counter/histogram delta s - prev (windowed measurements:
// a benchmark's measured interval). Gauges are point samples, not
// cumulative, so the receiver's values are kept as-is.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := s
	for c := range out.Counters {
		out.Counters[c] -= prev.Counters[c]
	}
	for h := range out.Hists {
		for b := range out.Hists[h].Counts {
			out.Hists[h].Counts[b] -= prev.Hists[h].Counts[b]
		}
	}
	return out
}

// JSONMap renders the snapshot as a flat, stable-keyed structure for expvar
// and file export: counters and gauges by name, histograms as count plus
// nanosecond percentiles.
func (s *Snapshot) JSONMap() map[string]any {
	counters := make(map[string]uint64, NumCounters)
	for c := Counter(0); c < NumCounters; c++ {
		counters[c.Name()] = s.Counters[c]
	}
	gauges := make(map[string]uint64, len(s.Gauges))
	for _, g := range s.Gauges {
		gauges[g.Name] = g.Value
	}
	hists := make(map[string]any, NumHists)
	for h := Hist(0); h < NumHists; h++ {
		hg := s.Hists[h].Histogram()
		hists[Hist(h).Name()] = map[string]any{
			"count":   hg.Count(),
			"mean_ns": uint64(hg.Mean()),
			"p50_ns":  uint64(hg.Percentile(0.50)),
			"p99_ns":  uint64(hg.Percentile(0.99)),
			"p999_ns": uint64(hg.Percentile(0.999)),
			"max_ns":  uint64(hg.Max()),
		}
	}
	return map[string]any{
		"counters":   counters,
		"gauges":     gauges,
		"histograms": hists,
	}
}
