package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the registry's HTTP surface:
//
//	/metrics       Prometheus text exposition (counters, gauges, summaries)
//	/debug/vars    expvar-style JSON (standard vars plus a "meerkat" object)
//	/debug/pprof/  the net/http/pprof profile index
//
// Every endpoint aggregates at request time; serving metrics costs the
// running system nothing between scrapes.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap := r.Snapshot()
		WritePrometheus(w, &snap)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		writeExpvars(w, r)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// WritePrometheus writes the snapshot in Prometheus text format. Counters
// export as meerkat_<name>_total, gauges as meerkat_<name>, histograms as
// summary metrics in seconds with quantile labels (quantiles are exact to
// within the fixed log-bucket width, <9%).
func WritePrometheus(w io.Writer, snap *Snapshot) {
	for c := Counter(0); c < NumCounters; c++ {
		name := "meerkat_" + c.Name() + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, snap.Counters[c])
	}
	for _, g := range snap.Gauges {
		name := "meerkat_" + g.Name
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, g.Value)
	}
	for h := Hist(0); h < NumHists; h++ {
		name := "meerkat_" + h.Name() + "_seconds"
		hg := snap.Hists[h].Histogram()
		fmt.Fprintf(w, "# TYPE %s summary\n", name)
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			fmt.Fprintf(w, "%s{quantile=%q} %g\n", name, fmt.Sprintf("%g", q),
				hg.Percentile(q).Seconds())
		}
		fmt.Fprintf(w, "%s_sum %g\n", name,
			hg.Mean().Seconds()*float64(hg.Count()))
		fmt.Fprintf(w, "%s_count %d\n", name, hg.Count())
	}
}

// writeExpvars emulates the expvar handler's JSON document — all
// process-wide published vars (cmdline, memstats, anything the host program
// added) — and appends this registry's snapshot under the "meerkat" key.
// Building the document here instead of expvar.Publish keeps registries
// process-local: tests and benchmarks can create as many as they like
// without fighting over expvar's global namespace.
func writeExpvars(w io.Writer, r *Registry) {
	fmt.Fprintf(w, "{\n")
	expvar.Do(func(kv expvar.KeyValue) {
		fmt.Fprintf(w, "%q: %s,\n", kv.Key, kv.Value.String())
	})
	snap := r.Snapshot()
	b, err := json.Marshal(snap.JSONMap())
	if err != nil {
		b = []byte("{}")
	}
	fmt.Fprintf(w, "%q: %s\n}\n", "meerkat", b)
}

// Serve binds addr (host:port; port 0 picks a free one) and serves the
// registry's HTTP surface until the returned server is shut down. It
// returns the bound address, so callers can print or scrape it.
func Serve(addr string, r *Registry) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}
