package obs

import (
	"sync"
	"testing"
	"time"
)

// TestRecordPathZeroAllocs is the gate the whole subsystem hangs on: the
// record path must never allocate, so instrumentation cannot re-introduce
// the hot-path allocation overhead PR 1 removed.
func TestRecordPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	s := r.NewShard()
	allocs := testing.AllocsPerRun(1000, func() {
		s.Inc(TxnCommitFast)
		s.Add(ValidateOK, 3)
		s.Observe(HistCommit, 123*time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %v allocs/op, want 0", allocs)
	}

	// The nil (un-instrumented) path must be free too.
	var nilShard *Shard
	allocs = testing.AllocsPerRun(1000, func() {
		nilShard.Inc(TxnCommitFast)
		nilShard.Add(ValidateOK, 3)
		nilShard.Observe(HistCommit, time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("nil-shard record path allocates %v allocs/op, want 0", allocs)
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	s := r.NewShard()
	if s != nil {
		t.Fatal("nil registry must hand out nil shards")
	}
	r.RegisterGauge("x", func() uint64 { return 1 })
	snap := r.Snapshot()
	if snap.Counter(TxnCommitFast) != 0 || len(snap.Gauges) != 0 {
		t.Fatal("nil registry snapshot must be zero")
	}
}

func TestAggregateOnScrape(t *testing.T) {
	r := NewRegistry()
	a, b := r.NewShard(), r.NewShard()
	a.Inc(TxnCommitFast)
	a.Inc(TxnCommitFast)
	b.Inc(TxnCommitFast)
	b.Add(TxnAbortValidation, 5)
	a.Observe(HistCommit, time.Millisecond)
	b.Observe(HistCommit, time.Millisecond)
	b.Observe(HistAbort, time.Microsecond)

	snap := r.Snapshot()
	if got := snap.Counter(TxnCommitFast); got != 3 {
		t.Fatalf("fast commits = %d, want 3", got)
	}
	if got := snap.Counter(TxnAbortValidation); got != 5 {
		t.Fatalf("validation aborts = %d, want 5", got)
	}
	if got := snap.Hists[HistCommit].Count(); got != 2 {
		t.Fatalf("commit latency count = %d, want 2", got)
	}
	h := snap.Hists[HistCommit].Histogram()
	p50 := h.Percentile(0.5)
	if p50 < 900*time.Microsecond || p50 > 1100*time.Microsecond {
		t.Fatalf("commit p50 = %v, want ~1ms", p50)
	}
}

func TestGauges(t *testing.T) {
	r := NewRegistry()
	v := uint64(7)
	r.RegisterGauge("queue_depth", func() uint64 { return v })
	snap := r.Snapshot()
	if len(snap.Gauges) != 1 || snap.Gauges[0].Name != "queue_depth" || snap.Gauges[0].Value != 7 {
		t.Fatalf("gauges = %+v", snap.Gauges)
	}
	// Re-registering by name replaces, so re-created components don't pile
	// up duplicate export names.
	r.RegisterGauge("queue_depth", func() uint64 { return 42 })
	snap = r.Snapshot()
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != 42 {
		t.Fatalf("replaced gauge = %+v", snap.Gauges)
	}
}

func TestSnapshotSub(t *testing.T) {
	r := NewRegistry()
	s := r.NewShard()
	s.Add(TxnCommitFast, 10)
	s.Observe(HistCommit, time.Millisecond)
	before := r.Snapshot()
	s.Add(TxnCommitFast, 5)
	s.Observe(HistCommit, time.Millisecond)
	delta := r.Snapshot().Sub(before)
	if got := delta.Counter(TxnCommitFast); got != 5 {
		t.Fatalf("delta fast commits = %d, want 5", got)
	}
	if got := delta.Hists[HistCommit].Count(); got != 1 {
		t.Fatalf("delta hist count = %d, want 1", got)
	}
}

// TestConcurrentRecordAndScrape exercises the race surface: many recorders,
// concurrent scrapes. Run under -race in CI.
func TestConcurrentRecordAndScrape(t *testing.T) {
	r := NewRegistry()
	const shards, per = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		s := r.NewShard()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				s.Inc(TxnCommitFast)
				s.Observe(HistCommit, time.Duration(j))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := r.Snapshot().Counter(TxnCommitFast); got != shards*per {
		t.Fatalf("total = %d, want %d", got, shards*per)
	}
}

func TestCounterNamesComplete(t *testing.T) {
	for c := Counter(0); c < NumCounters; c++ {
		if c.Name() == "" {
			t.Fatalf("counter %d has no export name", c)
		}
	}
	for h := Hist(0); h < NumHists; h++ {
		if h.Name() == "" {
			t.Fatalf("histogram %d has no export name", h)
		}
	}
}
