// Package sim is a discrete-event simulator of the paper's testbed: three
// multicore replica servers and a population of closed-loop clients
// connected by either a kernel-bypass (eRPC-class) or a kernel-UDP network.
//
// Why it exists: the paper's headline figures (1, 4, 5) are *multicore
// scaling* curves measured on 80 hyperthreads with NIC flow steering. Those
// curves cannot be produced by wall-clock measurement on a small host — the
// calibration note for this reproduction already flags that Go's runtime
// hinders per-core scalability claims, and the build machine may have as
// little as one CPU. Following the substitution rule, the simulator models
// the hardware the paper had: cores are FIFO servers in virtual time,
// cross-core coordination points (mutexes, atomic counters) are serialized
// resources whose waiting stretches the holder's core occupancy exactly as
// a spinlock does, and the network charges per-message CPU costs that
// differ between kernel-bypass and kernel-UDP stacks.
//
// The protocol flows simulated are the ones this repository actually
// implements (validate/commit broadcasts, primary-backup rounds, shared log
// appends), and the service-time parameters are calibrated by running the
// real code (see Calibrate). What the simulator adds is only the thing the
// host lacks: truly parallel cores.
package sim

import (
	"container/heap"
)

// Time is virtual time in nanoseconds.
type Time int64

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64 // FIFO tie-break for simultaneous events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Engine is the discrete-event core: a clock and an event queue.
type Engine struct {
	now Time
	pq  eventHeap
	seq uint64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn at time at (>= now). Events at equal times run in
// scheduling order.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.pq, event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn d after now.
func (e *Engine) After(d Time, fn func()) { e.Schedule(e.now+d, fn) }

// Run processes events until the queue empties or virtual time exceeds
// until. It returns the number of events processed.
func (e *Engine) Run(until Time) int {
	n := 0
	for len(e.pq) > 0 {
		ev := e.pq[0]
		if ev.at > until {
			break
		}
		heap.Pop(&e.pq)
		e.now = ev.at
		ev.fn()
		n++
	}
	if e.now < until {
		e.now = until
	}
	return n
}

// Resource is a single-server FIFO resource in virtual time: a core, a
// mutex, an atomic cache line. Work is reserved in arrival order (the
// engine pops events in time order, so callers invoke Process in arrival
// order).
type Resource struct {
	freeAt Time
	busy   Time // total occupied time, for utilization reporting
}

// Process reserves the resource for service starting no earlier than
// arrival and returns the completion time.
func (r *Resource) Process(arrival, service Time) Time {
	start := arrival
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start + service
	r.busy += service
	return r.freeAt
}

// acquire takes the lock at request time t (FIFO in request order, like a
// ticket spinlock) for hold, returning the release time.
func (r *Resource) acquire(t, hold Time) Time {
	start := t
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start + hold
	r.busy += hold
	return r.freeAt
}

// Utilization returns the fraction of [0, now] the resource was busy.
func (r *Resource) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(r.busy) / float64(now)
}

// Core is a server thread: a FIFO job queue processed one handler at a
// time. Unlike Resource's eager reservation, a Core acquires any lock its
// handler needs at the virtual time the handler actually reaches the
// critical section, so a deep queue on one core never blocks other cores'
// earlier lock requests (the bug class that motivates this type).
type Core struct {
	e       *Engine
	queue   []job
	running bool
	busy    Time
}

type job struct {
	service  Time
	lock     *Resource
	lockHold Time
	done     func(fin Time)
}

// NewCore returns an idle core on engine e.
func NewCore(e *Engine) *Core { return &Core{e: e} }

// Submit enqueues a handler of CPU cost service at the current virtual
// time. If lock is non-nil the handler ends with a critical section of
// lockHold held under lock (spinning stretches the handler, as a
// contended mutex does in the implementation). done, if non-nil, runs at
// completion.
func (c *Core) Submit(service Time, lock *Resource, lockHold Time, done func(fin Time)) {
	if lockHold > service {
		lockHold = service
	}
	c.queue = append(c.queue, job{service: service, lock: lock, lockHold: lockHold, done: done})
	if !c.running {
		c.running = true
		c.startNext()
	}
}

func (c *Core) startNext() {
	if len(c.queue) == 0 {
		c.running = false
		return
	}
	j := c.queue[0]
	c.queue = c.queue[1:]
	start := c.e.Now()
	if j.lock == nil {
		fin := start + j.service
		c.busy += j.service
		c.e.Schedule(fin, func() {
			if j.done != nil {
				j.done(fin)
			}
			c.startNext()
		})
		return
	}
	// Run the pre-critical-section work, then take the lock at the time
	// the handler actually reaches it.
	pre := start + (j.service - j.lockHold)
	c.e.Schedule(pre, func() {
		fin := j.lock.acquire(c.e.Now(), j.lockHold)
		c.busy += fin - start // spin-waiting occupies the core
		c.e.Schedule(fin, func() {
			if j.done != nil {
				j.done(fin)
			}
			c.startNext()
		})
	})
}

// QueueLen returns the number of jobs waiting (not including the running
// one).
func (c *Core) QueueLen() int { return len(c.queue) }

// Utilization returns the fraction of [0, now] the core was busy (including
// lock spinning).
func (c *Core) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(c.busy) / float64(now)
}
