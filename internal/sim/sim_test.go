package sim

import (
	"io"
	"math"
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Schedule(10, func() { order = append(order, 11) }) // same time: FIFO
	e.Run(100)
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %d", e.Now())
	}
}

func TestEngineRunUntilStopsEarly(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(1000, func() { ran = true })
	e.Run(500)
	if ran {
		t.Fatal("event past the horizon ran")
	}
	e.Run(1500)
	if !ran {
		t.Fatal("event never ran")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	hits := 0
	var loop func()
	loop = func() {
		hits++
		if hits < 5 {
			e.After(10, loop)
		}
	}
	e.Schedule(0, loop)
	e.Run(1000)
	if hits != 5 {
		t.Fatalf("hits = %d", hits)
	}
}

func TestResourceFIFO(t *testing.T) {
	r := &Resource{}
	d1 := r.Process(0, 100)
	d2 := r.Process(50, 100) // arrives while busy: queues
	d3 := r.Process(500, 100)
	if d1 != 100 || d2 != 200 || d3 != 600 {
		t.Fatalf("done times %d %d %d", d1, d2, d3)
	}
	if r.Utilization(600) != 0.5 {
		t.Fatalf("utilization %f", r.Utilization(600))
	}
}

func TestCoreLockedSerializes(t *testing.T) {
	// Two cores, one lock: concurrent handlers must serialize on the lock
	// portion only (pre-sections overlap, critical sections queue).
	e := NewEngine()
	lock := &Resource{}
	c1, c2 := NewCore(e), NewCore(e)
	var d1, d2 Time
	e.Schedule(0, func() {
		c1.Submit(100, lock, 40, func(fin Time) { d1 = fin })
		c2.Submit(100, lock, 40, func(fin Time) { d2 = fin })
	})
	e.Run(1000)
	if d1 != 100 {
		t.Fatalf("d1 = %d, want 100", d1)
	}
	if d2 != 140 { // 60 pre + wait until 100 + 40 hold
		t.Fatalf("d2 = %d, want 140", d2)
	}
}

func TestDeepQueueDoesNotBlockOtherCoresLock(t *testing.T) {
	// A backlog on core 1 must not pre-reserve the lock into the future:
	// core 2's handler, arriving later but reaching the critical section
	// first, takes the lock first.
	e := NewEngine()
	lock := &Resource{}
	c1, c2 := NewCore(e), NewCore(e)
	var d2 Time
	e.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			c1.Submit(1000, lock, 10, nil) // deep backlog on core 1
		}
	})
	e.Schedule(100, func() {
		c2.Submit(100, lock, 10, func(fin Time) { d2 = fin })
	})
	e.Run(100000)
	// Core 2 starts at 100, pre-section ends at 190, lock is held by core
	// 1 only in [990,1000], [1990,2000], ...; at 190 it is free.
	if d2 != 200 {
		t.Fatalf("d2 = %d, want 200 (no false serialization)", d2)
	}
}

func TestLockBoundThroughputCap(t *testing.T) {
	// Amdahl check: with a 100ns critical section per op, total throughput
	// across any core count caps near 10M ops/s.
	e := NewEngine()
	lock := &Resource{}
	ops := 0
	for i := 0; i < 16; i++ {
		core := NewCore(e)
		var spawn func()
		spawn = func() {
			core.Submit(200, lock, 100, func(Time) {
				ops++
				spawn()
			})
		}
		e.Schedule(Time(i), spawn)
	}
	e.Run(10_000_000)           // 10 virtual ms
	rate := float64(ops) / 0.01 // ops per second
	if rate > 10.5e6 {
		t.Fatalf("lock-bound rate %.0f exceeds 1/hold", rate)
	}
	if rate < 8e6 {
		t.Fatalf("lock-bound rate %.0f too far below cap", rate)
	}
}

func TestDisjointCoresScaleLinearly(t *testing.T) {
	// Without shared resources, doubling cores doubles throughput.
	tput := func(cores int) float64 {
		r := RunSim(Config{System: Meerkat, Params: DefaultParams(), Cores: cores, Clients: 8 * cores, Seed: 1})
		return r.Throughput()
	}
	t4, t8 := tput(4), tput(8)
	if ratio := t8 / t4; ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("meerkat 4->8 cores scaled by %.2f, want ~2", ratio)
	}
}

func TestSimDeterministic(t *testing.T) {
	a := RunSim(Config{System: TAPIR, Params: DefaultParams(), Cores: 4, Seed: 42})
	b := RunSim(Config{System: TAPIR, Params: DefaultParams(), Cores: 4, Seed: 42})
	if a.Committed != b.Committed {
		t.Fatalf("same seed, different results: %d vs %d", a.Committed, b.Committed)
	}
}

func TestFigure4Shape(t *testing.T) {
	// The paper's headline comparisons at high thread counts:
	//   Meerkat > Meerkat-PB > TAPIR and KuaFu++;
	//   Meerkat keeps scaling, TAPIR/KuaFu++ plateau early.
	p := DefaultParams()
	at := func(sys System, cores int) float64 {
		r := RunSim(Config{System: sys, Params: p, Cores: cores, Seed: 1})
		return r.Throughput()
	}
	const cores = 32
	meerkat := at(Meerkat, cores)
	pb := at(MeerkatPB, cores)
	tapir := at(TAPIR, cores)
	kuafu := at(KuaFu, cores)

	if !(meerkat > pb && pb > tapir && tapir > kuafu) {
		t.Fatalf("ordering violated: meerkat=%.0f pb=%.0f tapir=%.0f kuafu=%.0f",
			meerkat, pb, tapir, kuafu)
	}
	// Meerkat at 32 cores should be several times KuaFu++ (paper: 12x at 80).
	if meerkat/kuafu < 3 {
		t.Fatalf("meerkat/kuafu = %.1f, want >= 3", meerkat/kuafu)
	}

	// TAPIR plateaus: 8 -> 32 cores gains little.
	tapir8 := at(TAPIR, 8)
	if tapir/tapir8 > 1.8 {
		t.Fatalf("tapir kept scaling 8->32: %.0f -> %.0f", tapir8, tapir)
	}
	// Meerkat does not plateau there.
	meerkat8 := at(Meerkat, 8)
	if meerkat/meerkat8 < 2.5 {
		t.Fatalf("meerkat stopped scaling 8->32: %.0f -> %.0f", meerkat8, meerkat)
	}
}

func TestFigure1Shape(t *testing.T) {
	p := DefaultParams()
	at := func(udp, counter bool, threads int) float64 {
		r := RunFig1Sim(Fig1Config{Params: p, Threads: threads, UDP: udp, Counter: counter, Seed: 1})
		return r.Throughput()
	}
	// Kernel bypass is many times faster than UDP (paper: ~8x).
	erpc20, udp20 := at(false, false, 20), at(true, false, 20)
	if erpc20/udp20 < 4 {
		t.Fatalf("erpc/udp = %.1f, want >= 4", erpc20/udp20)
	}
	// The shared counter caps the bypass stack...
	erpcCtr20 := at(false, true, 20)
	if erpcCtr20 >= erpc20*0.9 {
		t.Fatalf("counter did not bottleneck erpc: %.0f vs %.0f", erpcCtr20, erpc20)
	}
	// ...but has no discernible effect on the kernel stack (masked).
	udpCtr20 := at(true, true, 20)
	if math.Abs(udpCtr20-udp20)/udp20 > 0.1 {
		t.Fatalf("counter visibly affected udp: %.0f vs %.0f", udpCtr20, udp20)
	}
}

func TestRetwisLowerThroughput(t *testing.T) {
	// Longer Retwis transactions yield lower txn throughput than YCSB-T
	// for every system (Figure 5 vs Figure 4).
	p := DefaultParams()
	for _, sys := range AllSystems {
		y := RunSim(Config{System: sys, Params: p, Cores: 8, Workload: "ycsb-t", Seed: 1})
		r := RunSim(Config{System: sys, Params: p, Cores: 8, Workload: "retwis", Seed: 1})
		if r.Throughput() >= y.Throughput() {
			t.Fatalf("%s: retwis %.0f >= ycsb-t %.0f", sys, r.Throughput(), y.Throughput())
		}
	}
}

func TestSweepPrinters(t *testing.T) {
	p := DefaultParams()
	if pts := ThreadSweep(io.Discard, p, "ycsb-t", []int{2}); len(pts) != len(AllSystems) {
		t.Fatalf("ThreadSweep returned %d points", len(pts))
	}
	if pts := Fig1Sweep(io.Discard, p, []int{2}); len(pts) != 4 {
		t.Fatalf("Fig1Sweep returned %d points", len(pts))
	}
}

func TestCalibrateProducesSaneParams(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration takes ~1s")
	}
	p := Calibrate()
	if p.ValidateBase <= 0 || p.SharedRecordHold <= 0 || p.RxTxCost <= 0 {
		t.Fatalf("calibrated params not positive: %+v", p)
	}
	// Kernel UDP must be costlier than the in-process transport.
	if p.UDPRxTxCost <= p.RxTxCost {
		t.Fatalf("udp per-message cost %d <= inproc %d", p.UDPRxTxCost, p.RxTxCost)
	}
	// The calibrated model must preserve the Figure 4 ordering.
	at := func(sys System) float64 {
		r := RunSim(Config{System: sys, Params: p, Cores: 16, Seed: 1})
		return r.Throughput()
	}
	if !(at(Meerkat) > at(TAPIR)) {
		t.Fatal("calibrated params lost meerkat > tapir")
	}
}

func TestFigure6and7Shape(t *testing.T) {
	// Simulated Figures 6a/7a at 64 threads: abort rates rise with the
	// Zipf coefficient, Meerkat aborts more than Meerkat-PB (it needs
	// matching votes from independently lagging replicas), Meerkat wins
	// at uniform access, and the gap closes or inverts when contention
	// is extreme.
	p := DefaultParams()
	at := func(sys System, theta float64) Result {
		return RunSim(Config{
			System: sys, Params: p, Cores: 64,
			Workload: "ycsb-t", Zipf: theta, Keys: 1 << 16,
			ModelConflicts: true, Seed: 1,
		})
	}
	mkLow, mkHigh := at(Meerkat, 0), at(Meerkat, 0.99)
	pbLow, pbHigh := at(MeerkatPB, 0), at(MeerkatPB, 0.99)

	if mkHigh.AbortRate() <= mkLow.AbortRate() {
		t.Fatalf("meerkat abort rate did not rise: %.3f -> %.3f",
			mkLow.AbortRate(), mkHigh.AbortRate())
	}
	if mkHigh.AbortRate() < 0.05 {
		t.Fatalf("meerkat abort rate at theta=0.99 implausibly low: %.3f", mkHigh.AbortRate())
	}
	if mkHigh.AbortRate() <= pbHigh.AbortRate() {
		t.Fatalf("meerkat (%.3f) should abort more than meerkat-pb (%.3f) at high contention",
			mkHigh.AbortRate(), pbHigh.AbortRate())
	}
	if mkLow.Throughput() <= pbLow.Throughput() {
		t.Fatalf("meerkat (%.0f) should beat meerkat-pb (%.0f) at uniform access",
			mkLow.Throughput(), pbLow.Throughput())
	}
	// The advantage must shrink under contention (the paper's trade-off).
	lowGap := mkLow.Throughput() / pbLow.Throughput()
	highGap := mkHigh.Throughput() / pbHigh.Throughput()
	if highGap >= lowGap {
		t.Fatalf("contention did not erode meerkat's advantage: %.2f -> %.2f", lowGap, highGap)
	}
}
