package sim

import (
	"math/rand"

	"meerkat/internal/workload"
)

// System names the four prototypes (mirroring internal/bench, without
// importing it).
type System string

// The simulated systems.
const (
	Meerkat   System = "meerkat"
	MeerkatPB System = "meerkat-pb"
	TAPIR     System = "tapir"
	KuaFu     System = "kuafu++"
)

// AllSystems lists the simulated systems in presentation order.
var AllSystems = []System{Meerkat, MeerkatPB, TAPIR, KuaFu}

// Params are the calibrated cost parameters of the simulated testbed, all
// in virtual nanoseconds. Defaults (DefaultParams) are anchored so the
// simulated testbed reproduces the paper's absolute operating points;
// Calibrate rebuilds them from microbenchmarks of this repository's real
// code, preserving ratios measured on the host.
type Params struct {
	// Network.
	NetDelay    Time // one-way delay, kernel-bypass fabric
	UDPNetDelay Time // one-way delay through the kernel UDP stack
	RxTxCost    Time // per-message CPU at a core, kernel-bypass
	UDPRxTxCost Time // per-message CPU at a core, kernel UDP

	// Transaction protocol handler costs (CPU beyond RxTx).
	ReadCost      Time // execution-phase GET
	ValidateBase  Time // OCC validation fixed cost
	ValidatePerOp Time // per read/write-set element
	CommitBase    Time // write-phase fixed cost
	CommitPerOp   Time
	ApplyBase     Time // backup apply (PB systems)
	ApplyPerOp    Time
	AckCost       Time // primary-side replication-ack processing

	// Cross-core coordination points.
	SharedRecordHold Time // TAPIR/KuaFu++ shared-record critical section
	AtomicCost       Time // contended atomic counter (cache-line transfer)
	LogHold          Time // shared log append critical section

	// Figure 1 micro-benchmark.
	PutCost     Time // PUT handler beyond RxTx
	Fig1RxTx    Time // per-message CPU for the tiny PUT RPCs, bypass stack
	Fig1UDPRxTx Time // and through the kernel stack

	ClientThink Time // closed-loop client turnaround
}

// DefaultParams returns parameters anchored to the paper's testbed
// operating points: eRPC-class small-RPC cost of ~1–2µs of CPU per message,
// kernel-UDP per-message cost several times higher, sub-microsecond
// critical sections for the shared structures, and validation costs that
// put Meerkat at roughly 100k transactions/second/thread — the paper's
// 8.3M/s at 80 threads.
func DefaultParams() Params {
	return Params{
		NetDelay:    2000,
		UDPNetDelay: 15000,
		RxTxCost:    1800,
		UDPRxTxCost: 7000,

		ReadCost:      800,
		ValidateBase:  2500,
		ValidatePerOp: 200,
		CommitBase:    1500,
		CommitPerOp:   150,
		ApplyBase:     1200,
		ApplyPerOp:    150,
		AckCost:       600,

		SharedRecordHold: 600,
		AtomicCost:       90,
		LogHold:          150,

		PutCost:     200,
		Fig1RxTx:    900,
		Fig1UDPRxTx: 7000,

		ClientThink: 500,
	}
}

// Config sizes one simulation run.
type Config struct {
	System   System
	Params   Params
	Replicas int // default 3
	Cores    int // server threads per replica
	Clients  int // closed-loop clients; default 6x cores
	// Workload selects the transaction shape generator: "ycsb-t" or
	// "retwis".
	Workload string
	// Keys is the keyspace size and Zipf its skew coefficient. With
	// ModelConflicts, key popularity drives simulated OCC aborts.
	Keys int
	Zipf float64
	// ModelConflicts enables the optimistic-concurrency conflict model:
	// each replica tracks the latest committed version time per key
	// (updated when that replica's commit handler runs, so replicas lag
	// independently); a validation votes abort when any read is stale at
	// that replica. Meerkat needs every replica's vote to be fresh, the
	// primary-backup systems only the primary's — exactly the trade-off
	// Figures 6 and 7 measure.
	ModelConflicts bool
	Seed           int64
	// Warmup and Measure are virtual durations.
	Warmup  Time
	Measure Time
}

func (c *Config) fill() {
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.Clients == 0 {
		c.Clients = 6 * c.Cores
	}
	if c.Keys == 0 {
		c.Keys = 1 << 20
	}
	if c.Warmup == 0 {
		c.Warmup = 10_000_000 // 10 virtual ms
	}
	if c.Measure == 0 {
		c.Measure = 50_000_000 // 50 virtual ms
	}
	if c.Workload == "" {
		c.Workload = "ycsb-t"
	}
}

// Result is one simulated data point.
type Result struct {
	System    System
	Cores     int
	Committed uint64
	Aborted   uint64
	Elapsed   Time
	// CoreUtilization is the mean utilization of replica cores over the
	// run, and LockUtilization that of the most contended shared
	// resource (zero for ZCP-clean systems).
	CoreUtilization float64
	LockUtilization float64
}

// Throughput returns simulated committed transactions per second (goodput).
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Committed) * 1e9 / float64(r.Elapsed)
}

// AbortRate returns aborted/(committed+aborted).
func (r *Result) AbortRate() float64 {
	den := r.Committed + r.Aborted
	if den == 0 {
		return 0
	}
	return float64(r.Aborted) / float64(den)
}

// run carries one simulation's state. The engine is single-threaded, so no
// synchronization appears anywhere.
type run struct {
	cfg Config
	p   Params
	e   *Engine
	rng *rand.Rand
	gen workload.Generator

	cores [][]*Core // [replica][core]

	// Shared coordination points (nil when the system has none).
	recordLock []*Resource // per replica: TAPIR and KuaFu++
	logLock    []*Resource // per replica: KuaFu++
	counter    *Resource   // primary: KuaFu++

	measuring bool
	committed uint64
	aborted   uint64

	// lastWrite[replica][key] is the commit time of the newest version
	// that replica has applied (the conflict model's vstore).
	lastWrite []map[string]Time
}

// RunSim simulates one configuration and returns its data point.
func RunSim(cfg Config) Result {
	cfg.fill()
	r := &run{
		cfg: cfg,
		p:   cfg.Params,
		e:   NewEngine(),
		rng: rand.New(rand.NewSource(cfg.Seed + 1)),
	}
	chooser := workload.NewChooser(cfg.Keys, cfg.Zipf)
	if cfg.Workload == "retwis" {
		r.gen = workload.NewRetwis(chooser)
	} else {
		r.gen = workload.NewYCSBT(chooser)
	}
	if cfg.ModelConflicts {
		r.lastWrite = make([]map[string]Time, cfg.Replicas)
		for i := range r.lastWrite {
			r.lastWrite[i] = make(map[string]Time)
		}
	}
	for rep := 0; rep < cfg.Replicas; rep++ {
		cores := make([]*Core, cfg.Cores)
		for c := range cores {
			cores[c] = NewCore(r.e)
		}
		r.cores = append(r.cores, cores)
		r.recordLock = append(r.recordLock, &Resource{})
		r.logLock = append(r.logLock, &Resource{})
	}
	r.counter = &Resource{}

	for c := 0; c < cfg.Clients; c++ {
		// Stagger client starts to avoid lockstep artifacts.
		r.e.Schedule(Time(c)*37, r.clientLoop)
	}

	r.e.Run(cfg.Warmup)
	r.measuring = true
	start := r.e.Now()
	end := cfg.Warmup + cfg.Measure
	r.e.Run(end)
	r.measuring = false

	res := Result{System: cfg.System, Cores: cfg.Cores, Committed: r.committed, Aborted: r.aborted, Elapsed: r.e.Now() - start}
	var busy float64
	for _, cores := range r.cores {
		for _, c := range cores {
			busy += c.Utilization(r.e.Now())
		}
	}
	res.CoreUtilization = busy / float64(cfg.Replicas*cfg.Cores)
	for _, l := range r.recordLock {
		if u := l.Utilization(r.e.Now()); u > res.LockUtilization {
			res.LockUtilization = u
		}
	}
	if u := r.counter.Utilization(r.e.Now()); u > res.LockUtilization {
		res.LockUtilization = u
	}
	return res
}

func (r *run) pickCore() int    { return r.rng.Intn(r.cfg.Cores) }
func (r *run) pickReplica() int { return r.rng.Intn(r.cfg.Replicas) }

// txnState carries one in-flight transaction through its phases.
type txnState struct {
	readKeys  []string // keys read (reads + rmws)
	writeKeys []string // keys written (rmws + writes)
	versions  []Time   // conflict model: version time observed per readKeys[i]
}

// clientLoop runs one closed-loop client forever: sample a transaction,
// perform its execution-phase reads as sequential round trips, then run the
// system's commit protocol, then loop.
func (r *run) clientLoop() {
	spec := r.gen.Next(r.rng)
	st := &txnState{}
	st.readKeys = append(append(st.readKeys, spec.Reads...), spec.RMWs...)
	st.writeKeys = append(append(st.writeKeys, spec.RMWs...), spec.Writes...)
	if r.lastWrite != nil {
		st.versions = make([]Time, len(st.readKeys))
	}
	gets := len(st.readKeys)
	puts := len(st.writeKeys)
	r.e.After(r.p.ClientThink, func() {
		r.execReads(st, 0, func() {
			r.commitPhase(st, gets, puts, func(committed bool) {
				if r.measuring {
					if committed {
						r.committed++
					} else {
						r.aborted++
					}
				}
				r.clientLoop()
			})
		})
	})
}

// execReads performs the transaction's sequential GET round trips against
// uniformly chosen replica cores, recording the observed version times for
// the conflict model, then calls done.
func (r *run) execReads(st *txnState, i int, done func()) {
	if i >= len(st.readKeys) {
		done()
		return
	}
	rep := r.pickReplica()
	core := r.cores[rep][r.pickCore()]
	r.e.After(r.p.NetDelay, func() {
		core.Submit(r.p.RxTxCost+r.p.ReadCost, nil, 0, func(Time) {
			if r.lastWrite != nil {
				st.versions[i] = r.lastWrite[rep][st.readKeys[i]]
			}
			r.e.After(r.p.NetDelay, func() {
				r.execReads(st, i+1, done)
			})
		})
	})
}

// freshAt reports whether every read of st is still the latest committed
// version at replica rep (the read-set half of Algorithm 1).
func (r *run) freshAt(rep int, st *txnState) bool {
	for i, k := range st.readKeys {
		if r.lastWrite[rep][k] != st.versions[i] {
			return false
		}
	}
	return true
}

// applyAt installs st's writes at replica rep under version id — the
// transaction's (replica-independent) commit timestamp, so a version reads
// equal at every replica that has applied it even though replicas apply at
// different virtual times.
func (r *run) applyAt(rep int, st *txnState, id Time) {
	for _, k := range st.writeKeys {
		if r.lastWrite[rep][k] < id {
			r.lastWrite[rep][k] = id
		}
	}
}

// commitPhase dispatches on the system under simulation.
func (r *run) commitPhase(st *txnState, gets, puts int, done func(bool)) {
	switch r.cfg.System {
	case Meerkat, TAPIR:
		r.meerkatCommit(st, gets, puts, done)
	case MeerkatPB:
		r.pbCommit(st, gets, puts, done, false)
	case KuaFu:
		r.pbCommit(st, gets, puts, done, true)
	}
}

// meerkatCommit models the leaderless validate/commit protocol: a validate
// broadcast to the chosen core of every replica, the fast-path wait for all
// replies, and an asynchronous commit broadcast. TAPIR is the identical
// flow with every record access funneled through the replica-wide record
// lock.
func (r *run) meerkatCommit(st *txnState, gets, puts int, done func(bool)) {
	coreID := r.pickCore()
	ops := Time(gets + puts)
	valService := r.p.RxTxCost + r.p.ValidateBase + r.p.ValidatePerOp*ops
	comService := r.p.RxTxCost + r.p.CommitBase + r.p.CommitPerOp*ops

	n := r.cfg.Replicas
	replies := 0
	okVotes := 0
	for rep := 0; rep < n; rep++ {
		rep := rep
		core := r.cores[rep][coreID]
		var lock *Resource
		var hold Time
		if r.cfg.System == TAPIR {
			lock, hold = r.recordLock[rep], r.p.SharedRecordHold
		}
		r.e.After(r.p.NetDelay, func() {
			core.Submit(valService, lock, hold, func(fin Time) {
				// The OCC vote is taken when the validate handler runs.
				vote := r.lastWrite == nil || r.freshAt(rep, st)
				r.e.After(r.p.NetDelay, func() {
					replies++
					if vote {
						okVotes++
					}
					if replies != n {
						return
					}
					// Unanimous OK votes: fast path. A bare majority of
					// OKs: the coordinator pays an extra accept round
					// (slow path) before committing. Fewer: abort.
					majority := n/2 + 1
					committed := okVotes >= majority
					versionID := r.e.Now() // replica-independent commit ts
					finish := func() {
						for rep2 := 0; rep2 < n; rep2++ {
							rep2 := rep2
							core2 := r.cores[rep2][coreID]
							var lock2 *Resource
							var hold2 Time
							if r.cfg.System == TAPIR {
								lock2, hold2 = r.recordLock[rep2], r.p.SharedRecordHold
							}
							r.e.After(r.p.NetDelay, func() {
								core2.Submit(comService, lock2, hold2, func(Time) {
									if committed && r.lastWrite != nil {
										r.applyAt(rep2, st, versionID)
									}
								})
							})
						}
						done(committed)
					}
					if committed && okVotes < n {
						// Slow path: an accept round trip to a majority.
						acks := 0
						for rep2 := 0; rep2 < n; rep2++ {
							core2 := r.cores[rep2][coreID]
							r.e.After(r.p.NetDelay, func() {
								core2.Submit(r.p.RxTxCost+r.p.AckCost, nil, 0, func(Time) {
									r.e.After(r.p.NetDelay, func() {
										acks++
										if acks == majority {
											finish()
										}
									})
								})
							})
						}
						return
					}
					finish()
				})
			})
		})
	}
}

// pbCommit models the primary-backup commit used by Meerkat-PB and KuaFu++:
// submit to the primary, validation there, a replication round to the
// backups, and the client release after f acks. KuaFu++ additionally funnels
// the submit through the shared record, the atomic ordering counter, and
// the shared log, and each backup through its shared log.
func (r *run) pbCommit(st *txnState, gets, puts int, done func(bool), kuafu bool) {
	coreID := r.pickCore()
	ops := Time(gets + puts)
	subService := r.p.RxTxCost + r.p.ValidateBase + r.p.ValidatePerOp*ops
	appService := r.p.RxTxCost + r.p.ApplyBase + r.p.ApplyPerOp*Time(puts)
	ackService := r.p.RxTxCost + r.p.AckCost

	primary := r.cores[0][coreID]
	f := (r.cfg.Replicas - 1) / 2

	var subLock, ackLock *Resource
	var subHold, ackHold Time
	if kuafu {
		// Record lock + counter + log append, acquired back to back at the
		// primary; modeled as one combined critical section.
		subLock, subHold = r.recordLock[0], r.p.SharedRecordHold+r.p.AtomicCost+r.p.LogHold
		ackLock, ackHold = r.recordLock[0], r.p.SharedRecordHold
	}

	r.e.After(r.p.NetDelay, func() {
		primary.Submit(subService, subLock, subHold, func(fin Time) {
			// Centralized validation: only the primary's view matters.
			if r.lastWrite != nil && !r.freshAt(0, st) {
				r.e.After(r.p.NetDelay, func() { done(false) })
				return
			}
			versionID := r.e.Now() // replica-independent commit ts
			acks := 0
			for b := 1; b < r.cfg.Replicas; b++ {
				b := b
				backup := r.cores[b][coreID]
				var bLock *Resource
				var bHold Time
				if kuafu {
					bLock, bHold = r.logLock[b], r.p.LogHold
				}
				r.e.After(r.p.NetDelay, func() {
					backup.Submit(appService, bLock, bHold, func(bfin Time) {
						if r.lastWrite != nil {
							r.applyAt(b, st, versionID)
						}
						r.e.After(r.p.NetDelay, func() {
							primary.Submit(ackService, ackLock, ackHold, func(afin Time) {
								acks++
								if acks == f {
									if r.lastWrite != nil {
										r.applyAt(0, st, versionID)
									}
									r.e.After(r.p.NetDelay, func() { done(true) })
								}
							})
						})
					})
				})
			}
		})
	})
}
