package sim

import (
	"fmt"
	"io"
	"math/rand"
)

// Fig1Config sizes one simulated Figure 1 data point: a PUT-only KV server
// with T threads behind either the kernel-bypass or the kernel-UDP stack,
// optionally incrementing a shared atomic counter on every PUT.
type Fig1Config struct {
	Params  Params
	Threads int
	Clients int // default 4x threads
	UDP     bool
	Counter bool
	Seed    int64
	Warmup  Time
	Measure Time
}

// Fig1Result is one simulated Figure 1 data point.
type Fig1Result struct {
	Stack   string
	Threads int
	Counter bool
	Puts    uint64
	Elapsed Time
}

// Throughput returns simulated PUTs per second.
func (r *Fig1Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Puts) * 1e9 / float64(r.Elapsed)
}

// RunFig1Sim simulates one Figure 1 configuration.
func RunFig1Sim(cfg Fig1Config) Fig1Result {
	if cfg.Clients == 0 {
		// Enough closed-loop clients to drive the servers to peak (the
		// paper measures peak throughput).
		cfg.Clients = 12 * cfg.Threads
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 5_000_000
	}
	if cfg.Measure == 0 {
		cfg.Measure = 50_000_000
	}
	p := cfg.Params

	e := NewEngine()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	cores := make([]*Core, cfg.Threads)
	for i := range cores {
		cores[i] = NewCore(e)
	}
	counter := &Resource{}

	delay := p.NetDelay
	rxtx := p.Fig1RxTx
	if cfg.UDP {
		delay = p.UDPNetDelay
		rxtx = p.Fig1UDPRxTx
	}

	measuring := false
	var puts uint64
	var loop func()
	loop = func() {
		core := cores[rng.Intn(cfg.Threads)]
		e.After(p.ClientThink+delay, func() {
			var lock *Resource
			var hold Time
			if cfg.Counter {
				lock, hold = counter, p.AtomicCost
			}
			core.Submit(rxtx+p.PutCost, lock, hold, func(Time) {
				e.After(delay, func() {
					if measuring {
						puts++
					}
					loop()
				})
			})
		})
	}
	for c := 0; c < cfg.Clients; c++ {
		e.Schedule(Time(c)*29, loop)
	}

	e.Run(cfg.Warmup)
	measuring = true
	start := e.Now()
	e.Run(cfg.Warmup + cfg.Measure)

	stack := "erpc"
	if cfg.UDP {
		stack = "udp"
	}
	return Fig1Result{Stack: stack, Threads: cfg.Threads, Counter: cfg.Counter, Puts: puts, Elapsed: e.Now() - start}
}

// Fig1Sweep simulates the full Figure 1: both stacks, with and without the
// shared counter, across thread counts.
func Fig1Sweep(w io.Writer, p Params, threads []int) []Fig1Result {
	var out []Fig1Result
	fmt.Fprintln(w, "# simulated Figure 1: PUT throughput (Mops/sec) vs server threads")
	fmt.Fprintf(w, "%-8s %9s %8s %12s\n", "stack", "counter", "threads", "Mputs/sec")
	for _, udp := range []bool{false, true} {
		for _, counter := range []bool{false, true} {
			for _, th := range threads {
				r := RunFig1Sim(Fig1Config{Params: p, Threads: th, UDP: udp, Counter: counter})
				out = append(out, r)
				fmt.Fprintf(w, "%-8s %9v %8d %12.2f\n", r.Stack, counter, th, r.Throughput()/1e6)
			}
		}
	}
	return out
}

// ThreadSweep simulates Figures 4 (workload "ycsb-t") and 5 ("retwis"):
// goodput versus server threads for the four systems.
func ThreadSweep(w io.Writer, p Params, wl string, threads []int) []Result {
	var out []Result
	fmt.Fprintf(w, "# simulated %s uniform: goodput (Mtxns/sec) vs server threads\n", wl)
	fmt.Fprintf(w, "%-12s %8s %12s %10s %10s\n", "system", "threads", "Mtxns/sec", "core-util", "lock-util")
	for _, sys := range AllSystems {
		for _, th := range threads {
			r := RunSim(Config{System: sys, Params: p, Cores: th, Workload: wl})
			out = append(out, r)
			fmt.Fprintf(w, "%-12s %8d %12.3f %9.0f%% %9.0f%%\n",
				sys, th, r.Throughput()/1e6, 100*r.CoreUtilization, 100*r.LockUtilization)
		}
	}
	return out
}

// ZipfSweep simulates Figures 6 and 7 at the paper's setting (64 server
// threads): goodput and abort rate for Meerkat vs Meerkat-PB as the Zipf
// coefficient sweeps from uniform to highly contended. The conflict model
// is enabled; key count follows the paper's per-core loading rule (1M keys
// per core would swamp the model's maps, so a proportional smaller space is
// used — contention depends on the popularity mass of the hot keys, which
// the Zipf coefficient fixes independent of scale).
func ZipfSweep(w io.Writer, p Params, wl string, thetas []float64, threads int) []Result {
	var out []Result
	fmt.Fprintf(w, "# simulated %s, %d server threads: goodput and abort rate vs zipf\n", wl, threads)
	fmt.Fprintf(w, "%-12s %8s %12s %9s\n", "system", "zipf", "Mtxns/sec", "abort%")
	for _, sys := range []System{Meerkat, MeerkatPB} {
		for _, theta := range thetas {
			r := RunSim(Config{
				System: sys, Params: p, Cores: threads,
				Workload: wl, Zipf: theta, Keys: 1 << 16,
				ModelConflicts: true,
			})
			out = append(out, r)
			fmt.Fprintf(w, "%-12s %8.2f %12.3f %8.1f%%\n",
				sys, theta, r.Throughput()/1e6, 100*r.AbortRate())
		}
	}
	return out
}
