package sim

import (
	"fmt"
	"sync/atomic"
	"time"

	"meerkat/internal/message"
	"meerkat/internal/occ"
	"meerkat/internal/timestamp"
	"meerkat/internal/transport"
	"meerkat/internal/trecord"
	"meerkat/internal/vstore"
)

// Calibrate builds simulation parameters from microbenchmarks of this
// repository's real code, so the simulated cores execute the host's actual
// handler costs rather than the paper-anchored defaults. Shapes (who
// bottlenecks where) are unchanged; absolute throughputs then reflect "this
// host's code on the paper's core counts".
//
// It measures: the OCC validate+apply cycle on the real versioned store,
// the shared-record critical section, per-message cost of the in-process
// transport, and the one-way cost of real loopback UDP. Costs the host
// cannot exhibit (a contended atomic's cache-line transfer needs two
// sockets) keep their defaults.
func Calibrate() Params {
	p := DefaultParams()

	// OCC validate + write phase for a 1-RMW transaction (YCSB-T shape).
	store := vstore.New(vstore.Config{})
	const keys = 4096
	for i := 0; i < keys; i++ {
		store.Load(fmt.Sprintf("key-%d", i), []byte("value"), timestamp.Timestamp{Time: 1})
	}
	validate := measure(func(i int) {
		k := fmt.Sprintf("key-%d", i%keys)
		ts := timestamp.Timestamp{Time: int64(i + 2), ClientID: 1}
		txn := &message.Txn{
			ReadSet:  []message.ReadSetEntry{{Key: k, WTS: timestamp.Timestamp{Time: 1}}},
			WriteSet: []message.WriteSetEntry{{Key: k, Value: []byte("value")}},
		}
		v, _ := store.Read(k)
		txn.ReadSet[0].WTS = v.WTS
		txn.ReadSet[0].VHash = message.HashValue(v.Value)
		if occ.Validate(store, txn, ts) == message.StatusValidatedOK {
			occ.ApplyCommit(store, txn, ts)
		}
	})
	p.ValidateBase = validate
	p.CommitBase = validate / 2
	p.ApplyBase = validate / 2
	p.ReadCost = validate / 4
	p.ValidatePerOp = validate / 10
	p.CommitPerOp = validate / 20
	p.ApplyPerOp = validate / 20
	p.AckCost = validate / 8

	// Shared-record critical section (what TAPIR/KuaFu++ serialize on).
	shared := trecord.NewShared()
	hold := measure(func(i int) {
		shared.Do(func(part *trecord.Partition) {
			rec, _ := part.GetOrCreate(timestamp.TxnID{Seq: uint64(i % 8192), ClientID: 1})
			rec.Status = message.StatusValidatedOK
		})
	})
	p.SharedRecordHold = hold
	p.LogHold = hold / 3

	// Per-message cost of the in-process transport (send + dispatch).
	inproc := transport.NewInproc(transport.InprocConfig{})
	done := make(chan struct{}, 1)
	sink, _ := inproc.Listen(message.Addr{Node: 0, Core: 0}, func(*message.Message) {
		select {
		case done <- struct{}{}:
		default:
		}
	})
	src, _ := inproc.Listen(message.Addr{Node: 1, Core: 0}, func(*message.Message) {})
	_ = sink
	msg := measure(func(i int) {
		src.Send(message.Addr{Node: 0, Core: 0}, &message.Message{Type: message.TypePut})
	})
	<-done
	inproc.Close()
	p.RxTxCost = msg * 2 // send + receive dispatch
	p.Fig1RxTx = msg * 2

	// Real loopback UDP round trip, including serialization.
	udp := transport.NewUDP("127.0.0.1", 34800, 4)
	var echoEp atomic.Pointer[transport.Endpoint]
	echo, err := udp.Listen(message.Addr{Node: 0, Core: 0}, func(m *message.Message) {
		if ep := echoEp.Load(); ep != nil {
			(*ep).Send(m.Src, &message.Message{Type: message.TypePutReply, Seq: m.Seq})
		}
	})
	if err == nil {
		echoEp.Store(&echo)
		replies := make(chan *message.Message, 1)
		cli, err := udp.Listen(message.Addr{Node: 1, Core: 0}, func(m *message.Message) {
			select {
			case replies <- m:
			default:
			}
		})
		if err == nil {
			// Measure request-reply RTTs synchronously.
			const rounds = 2000
			start := time.Now()
			got := 0
			for i := 0; i < rounds; i++ {
				cli.Send(message.Addr{Node: 0, Core: 0}, &message.Message{Type: message.TypePut, Seq: uint64(i)})
				select {
				case <-replies:
					got++
				case <-time.After(20 * time.Millisecond):
				}
			}
			if got > rounds/2 {
				rtt := Time(time.Since(start).Nanoseconds() / int64(got))
				// Half the RTT is per-direction cost; attribute it to CPU
				// (syscalls+copies dominate on loopback).
				p.UDPRxTxCost = rtt / 2
				p.Fig1UDPRxTx = rtt / 2
				p.UDPNetDelay = rtt / 4
			}
		}
	}
	udp.Close()

	return p
}

// measure times fn over enough iterations to smooth scheduler noise and
// returns the per-iteration cost, floored at 10ns.
func measure(fn func(i int)) Time {
	// Warm up.
	for i := 0; i < 1000; i++ {
		fn(i)
	}
	const iters = 200000
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn(i)
	}
	per := time.Since(start).Nanoseconds() / iters
	if per < 10 {
		per = 10
	}
	return Time(per)
}
