//go:build race

package meerkat_test

// raceEnabled reports whether the race detector is on. Race instrumentation
// adds bookkeeping allocations, so allocation-count gates skip themselves
// under -race.
const raceEnabled = true
