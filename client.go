package meerkat

import (
	"errors"

	"meerkat/internal/coordinator"
)

// Client executes transactions against a Cluster. Each client embeds its own
// Meerkat transaction coordinator (§4.1): it proposes timestamps from its
// local clock and drives the commit protocol itself, so adding clients adds
// no coordination anywhere.
//
// A Client is not safe for concurrent use; create one per goroutine.
type Client struct {
	coord *coordinator.Coordinator
	id    uint64

	committed uint64
	aborted   uint64
}

// NewClient registers a new client with the cluster.
func (c *Cluster) NewClient() (*Client, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("meerkat: cluster closed")
	}
	c.nextCli++
	id := c.nextCli
	c.mu.Unlock()

	coord, err := coordinator.New(coordinator.Config{
		Topo:            c.topo,
		ClientID:        id,
		Net:             c.net,
		Clock:           c.clientClock(id),
		Timeout:         c.cfg.CommitTimeout,
		Retries:         c.cfg.Retries,
		DisableFastPath: c.cfg.DisableFastPath,
		Seed:            c.cfg.Seed + int64(id),
		Obs:             c.obs.NewShard(),
	})
	if err != nil {
		return nil, err
	}
	return &Client{coord: coord, id: id}, nil
}

// ID returns the client's unique id.
func (cl *Client) ID() uint64 { return cl.id }

// Stats reports how many of this client's transactions committed and how
// many aborted in validation. (Clients are single-goroutine, so these are
// plain counters.)
func (cl *Client) Stats() (committed, aborted uint64) {
	return cl.committed, cl.aborted
}

// Close releases the client's endpoints.
func (cl *Client) Close() { cl.coord.Close() }

// Txn is an in-progress interactive transaction. Reads see the latest
// committed versions (plus the transaction's own writes); writes are
// buffered client-side until Commit.
type Txn struct {
	inner *coordinator.Txn
	cl    *Client
}

// Begin starts a transaction.
func (cl *Client) Begin() *Txn {
	return &Txn{inner: cl.coord.Begin(), cl: cl}
}

// Read returns the value of key within the transaction. A key that has
// never been written reads as nil (and the absence is validated at commit:
// if another transaction creates the key concurrently, this transaction
// aborts).
func (t *Txn) Read(key string) ([]byte, error) {
	return t.inner.Read(key)
}

// ReadMany reads a batch of keys in one execution-phase round trip per
// touched partition (values index-aligned with keys), with the same snapshot
// semantics as per-key Read. Use it when a transaction's read set is known
// up front — a timeline fetch, a multi-get — to avoid paying one network
// round trip per key.
func (t *Txn) ReadMany(keys []string) ([][]byte, error) {
	return t.inner.ReadMany(keys)
}

// Write buffers a write of key=value.
func (t *Txn) Write(key string, value []byte) {
	t.inner.Write(key, value)
}

// Commit runs Meerkat's validation and write phases. It returns true if the
// transaction committed and false if optimistic validation failed because a
// conflicting transaction won; in the latter case the caller usually retries.
// A non-nil error means the outcome could not be determined within the retry
// budget (e.g. no quorum was reachable).
func (t *Txn) Commit() (bool, error) {
	ok, err := t.inner.Commit()
	if err == nil {
		if ok {
			t.cl.committed++
		} else {
			t.cl.aborted++
		}
	}
	return ok, err
}

// ErrTxnAborted is returned by RunTxn when the transaction body asked to
// abort.
var ErrTxnAborted = errors.New("meerkat: transaction aborted by caller")

// RunTxn executes fn inside a transaction and commits it, retrying
// validation aborts up to maxAttempts times (0 means a single attempt).
// It returns true once a run of fn commits. If fn returns an error the
// transaction is abandoned and that error is returned.
func (cl *Client) RunTxn(maxAttempts int, fn func(*Txn) error) (bool, error) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	for i := 0; i < maxAttempts; i++ {
		txn := cl.Begin()
		if err := fn(txn); err != nil {
			return false, err
		}
		committed, err := txn.Commit()
		if err != nil {
			return false, err
		}
		if committed {
			return true, nil
		}
	}
	return false, nil
}

// Get is a convenience bare read: it returns the committed value of key as
// seen by one replica. Because commit messages propagate asynchronously, a
// bare read may briefly lag the latest commit. For a read that is guaranteed
// serializable with respect to all committed transactions, use GetStrong or
// read inside a transaction.
func (cl *Client) Get(key string) ([]byte, error) {
	val, _, _, err := cl.coord.Read(key)
	return val, err
}

// GetStrong reads key inside a validated transaction, so the returned value
// is serializable with respect to every committed transaction.
func (cl *Client) GetStrong(key string) ([]byte, error) {
	var val []byte
	ok, err := cl.RunTxn(64, func(t *Txn) error {
		v, err := t.Read(key)
		val = v
		return err
	})
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, errors.New("meerkat: strong read did not validate")
	}
	return val, nil
}

// Put is a convenience single-write transaction. It retries validation
// aborts until the write commits or the retry budget is exhausted.
func (cl *Client) Put(key string, value []byte) error {
	ok, err := cl.RunTxn(16, func(t *Txn) error {
		t.Write(key, value)
		return nil
	})
	if err != nil {
		return err
	}
	if !ok {
		return errors.New("meerkat: put did not commit")
	}
	return nil
}
