package meerkat

import (
	"context"
	"errors"
	"fmt"

	"meerkat/internal/coordinator"
	"meerkat/internal/message"
	"meerkat/internal/shardmap"
	"meerkat/internal/timestamp"
)

// Client executes transactions against a Cluster. Each client embeds its own
// Meerkat transaction coordinator (§4.1): it proposes timestamps from its
// local clock and drives the commit protocol itself, so adding clients adds
// no coordination anywhere.
//
// A Client is not safe for concurrent use; create one per goroutine.
type Client struct {
	coord *coordinator.Coordinator
	id    uint64

	// roDefault marks every transaction read-only at Begin (overridden the
	// moment it writes); set by DB.Client's WithReadOnlyDefault option.
	roDefault bool

	committed uint64
	aborted   uint64
}

// NewClient registers a new client with the cluster.
//
// Deprecated for sharded deployments: a client created this way routes by
// static key hash and cannot follow shard splits. Open the cluster with
// meerkat.Open and use DB.Client instead.
func (c *Cluster) NewClient() (*Client, error) {
	return c.newClient(nil, false)
}

// newClient is NewClient with the sharded-routing knobs: sm, when non-nil, is
// the client's private shard-map cache (DB.Client wires one per client).
func (c *Cluster) newClient(sm *shardmap.Cache, roDefault bool) (*Client, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClusterClosed
	}
	c.nextCli++
	id := c.nextCli
	c.mu.Unlock()

	coord, err := coordinator.New(coordinator.Config{
		Topo:                    c.topo,
		ClientID:                id,
		Net:                     c.net,
		Clock:                   c.clientClock(id),
		Timeout:                 c.cfg.CommitTimeout,
		Retries:                 c.cfg.Retries,
		BackoffBase:             c.cfg.BackoffBase,
		BackoffMax:              c.cfg.BackoffMax,
		DisableFastPath:         c.cfg.DisableFastPath,
		DisableReadOnlyFastPath: c.cfg.DisableReadOnlyFastPath,
		ShardMap:                sm,
		Seed:                    c.cfg.Seed + int64(id),
		Obs:                     c.obs.NewShard(),
	})
	if err != nil {
		return nil, err
	}
	return &Client{coord: coord, id: id, roDefault: roDefault}, nil
}

// ID returns the client's unique id.
func (cl *Client) ID() uint64 { return cl.id }

// Stats reports how many of this client's transactions committed and how
// many aborted in validation. (Clients are single-goroutine, so these are
// plain counters.)
func (cl *Client) Stats() (committed, aborted uint64) {
	return cl.committed, cl.aborted
}

// Close releases the client's endpoints.
func (cl *Client) Close() { cl.coord.Close() }

// Txn is an in-progress interactive transaction. Reads see the latest
// committed versions (plus the transaction's own writes); writes are
// buffered client-side until Commit.
type Txn struct {
	inner *coordinator.Txn
	cl    *Client
}

// Begin starts a transaction. Clients opened with WithReadOnlyDefault start
// it read-only (see Txn.ReadOnly; a later write demotes it transparently).
func (cl *Client) Begin() *Txn {
	inner := cl.coord.Begin()
	if cl.roDefault {
		inner.ReadOnly()
	}
	return &Txn{inner: inner, cl: cl}
}

// Read returns the value of key within the transaction. A key that has
// never been written reads as nil (and the absence is validated at commit:
// if another transaction creates the key concurrently, this transaction
// aborts).
func (t *Txn) Read(key string) ([]byte, error) {
	return t.inner.Read(key)
}

// ReadMany reads a batch of keys in one execution-phase round trip per
// touched partition (values index-aligned with keys), with the same snapshot
// semantics as per-key Read. Use it when a transaction's read set is known
// up front — a timeline fetch, a multi-get — to avoid paying one network
// round trip per key.
func (t *Txn) ReadMany(keys []string) ([][]byte, error) {
	return t.inner.ReadMany(keys)
}

// ReadManyCtx is ReadMany under a context: per-attempt waits shrink to the
// context's remaining time and cancellation ends the read early. Reads are
// idempotent, so a context-expired read is always safe to retry.
func (t *Txn) ReadManyCtx(ctx context.Context, keys []string) ([][]byte, error) {
	vals, err := t.inner.ReadManyCtx(ctx, keys)
	return vals, mapErr(err)
}

// Write buffers a write of key=value.
func (t *Txn) Write(key string, value []byte) {
	t.inner.Write(key, value)
}

// ReadOnly declares the transaction read-only, routing its reads through the
// snapshot fast path: every read is served at one snapshot timestamp and,
// when each touched replica group confirms the snapshot, Commit succeeds
// locally with zero validation rounds and zero messages. Call it before the
// first read. The declaration is advisory: a marked transaction that goes on
// to write (or whose snapshot cannot be confirmed) silently demotes to the
// classic validated commit.
func (t *Txn) ReadOnly() { t.inner.ReadOnly() }

// Add buffers a server-side increment of key by delta (negative deltas
// decrement; a missing or non-numeric value counts as 0). Unlike a
// read-increment-write, the operation itself ships to the replicas and
// carries no read version, so concurrent Adds to the same key merge in
// timestamp order instead of aborting one another — a hot counter stops
// being an abort hotspot. Values are decimal ASCII, interoperable with
// Read/Write.
func (t *Txn) Add(key string, delta int64) { t.inner.Add(key, delta) }

// Append buffers a server-side append of b to key's value, with the same
// merge-not-abort semantics as Add. The caller must not mutate b until
// Commit returns.
func (t *Txn) Append(key string, b []byte) { t.inner.Append(key, b) }

// MergeMax buffers a server-side monotone merge: key's value becomes
// max(current, v), treating a missing or non-numeric current value as v.
// Useful for high-water marks maintained by many writers.
func (t *Txn) MergeMax(key string, v int64) { t.inner.MergeMax(key, v) }

// MergeMin is the min-merge counterpart of MergeMax (low-water marks).
func (t *Txn) MergeMin(key string, v int64) { t.inner.MergeMin(key, v) }

// Commit runs Meerkat's validation and write phases. It returns true if the
// transaction committed and false if optimistic validation failed because a
// conflicting transaction won; in the latter case the caller usually retries
// (Client.Run automates this). A non-nil error always unwraps to one of the
// package sentinels — almost always ErrTimeout, meaning the outcome is
// unknown until Resolve learns it.
func (t *Txn) Commit() (bool, error) {
	return t.CommitCtx(context.Background())
}

// CommitCtx is Commit under a context: the context's deadline bounds the
// commit protocol's waits and cancellation ends its retries early. A
// context-expired commit is outcome-unknown exactly like a retry-budget
// timeout — the error unwraps to both ErrTimeout and the context's error.
func (t *Txn) CommitCtx(ctx context.Context) (bool, error) {
	ok, err := t.inner.CommitCtx(ctx)
	if err == nil {
		if ok {
			t.cl.committed++
		} else {
			t.cl.aborted++
		}
	}
	return ok, mapErr(err)
}

// Resolve learns — or, if still undecided, forces — the final outcome of a
// transaction whose Commit returned ErrTimeout, by running the coordinator
// recovery procedure (§5.3.2) in every partition the commit touched. It
// reports whether the transaction committed; after Resolve the outcome is
// final and the uncertainty ErrTimeout left behind is gone.
func (t *Txn) Resolve() (bool, error) {
	ok, err := t.inner.Resolve()
	if err == nil {
		if ok {
			t.cl.committed++
		} else {
			t.cl.aborted++
		}
	}
	return ok, mapErr(err)
}

// ID returns the transaction id assigned at commit time.
func (t *Txn) ID() timestamp.TxnID { return t.inner.ID() }

// Timestamp returns the transaction's serialization timestamp (meaningful
// once Commit returned true): committed transactions are one-copy
// serializable in timestamp order.
func (t *Txn) Timestamp() timestamp.Timestamp { return t.inner.Timestamp() }

// CommittedReadOnly reports whether Commit went through the read-only fast
// path (zero validation rounds; see ReadOnly), in which case Timestamp is
// the snapshot timestamp.
func (t *Txn) CommittedReadOnly() bool { return t.inner.CommittedReadOnly() }

// ReadSet, WriteSet, and OpSet expose the transaction's sets for verification
// tooling (e.g. the serializability checker); callers must not mutate them.
func (t *Txn) ReadSet() []message.ReadSetEntry   { return t.inner.ReadSet() }
func (t *Txn) WriteSet() []message.WriteSetEntry { return t.inner.WriteSet() }
func (t *Txn) OpSet() []message.OpSetEntry       { return t.inner.OpSet() }

// ErrTxnAborted is returned by RunTxn when the transaction body asked to
// abort.
var ErrTxnAborted = errors.New("meerkat: transaction aborted by caller")

// Run executes fn inside transactions until one commits: the canonical retry
// loop. fn builds the transaction — reads, writes — and returns; Run commits
// it, retrying conflict aborts (and timed-out reads, which are idempotent)
// with capped exponential backoff and full jitter, and resolving timed-out
// commits through the recovery procedure rather than guessing. Run returns
// nil once a transaction commits; an error unwrapping to ErrTimeout once ctx
// expires; and fn's own error, unretried, for anything else (return
// ErrTxnAborted from fn to abandon the transaction).
//
// fn may run many times and must be safe to re-execute; it must not call
// Commit itself.
func (cl *Client) Run(ctx context.Context, fn func(*Txn) error) error {
	attempts := 0
	err := cl.coord.Run(ctx, func(inner *coordinator.Txn) error {
		attempts++
		if cl.roDefault {
			inner.ReadOnly()
		}
		return fn(&Txn{inner: inner, cl: cl})
	})
	if err == nil {
		cl.committed++
		cl.aborted += uint64(attempts - 1)
		return nil
	}
	if attempts > 0 {
		cl.aborted += uint64(attempts)
	}
	return mapErr(err)
}

// RunTxn executes fn inside a transaction and commits it, retrying
// validation aborts up to maxAttempts times with no backoff.
//
// Deprecated: Use Run, which adds backoff, context support, and resolution
// of unknown-outcome commits. RunTxn remains for callers that need a strict
// attempt budget.
func (cl *Client) RunTxn(maxAttempts int, fn func(*Txn) error) (bool, error) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	for i := 0; i < maxAttempts; i++ {
		txn := cl.Begin()
		if err := fn(txn); err != nil {
			return false, err
		}
		committed, err := txn.Commit()
		if err != nil {
			return false, err
		}
		if committed {
			return true, nil
		}
	}
	return false, nil
}

// Get is a convenience bare read: it returns the committed value of key as
// seen by one replica. Because commit messages propagate asynchronously, a
// bare read may briefly lag the latest commit. For a read that is guaranteed
// serializable with respect to all committed transactions, use GetStrong or
// read inside a transaction.
func (cl *Client) Get(key string) ([]byte, error) {
	val, _, _, err := cl.coord.Read(key)
	return val, err
}

// GetStrong returns a value of key serializable with respect to every
// committed transaction. It rides the read-only fast path — one snapshot
// round, no validation — and demotes to a validated read-only transaction
// when the snapshot cannot be confirmed. A failure unwraps to ErrTimeout or
// ErrClusterClosed.
func (cl *Client) GetStrong(key string) ([]byte, error) {
	val, _, _, err := cl.coord.SnapshotRead(key)
	if err != nil {
		return nil, mapErr(err)
	}
	return val, nil
}

// Put is a convenience single-write transaction. It retries validation
// aborts until the write commits or the attempt budget is exhausted; a
// failure unwraps to ErrConflict, ErrTimeout, or ErrClusterClosed.
func (cl *Client) Put(key string, value []byte) error {
	ok, err := cl.RunTxn(16, func(t *Txn) error {
		t.Write(key, value)
		return nil
	})
	if err != nil {
		return mapErr(err)
	}
	if !ok {
		return fmt.Errorf("%w: put did not commit", ErrConflict)
	}
	return nil
}
