// Package meerkat is a multicore-scalable, replicated, in-memory,
// transactional key-value store — an implementation of the system described
// in "Meerkat: Multicore-Scalable Replicated Transactions Following the
// Zero-Coordination Principle" (Szekeres et al., EuroSys 2020).
//
// Meerkat provides one-copy serializable interactive transactions over
// n = 2f+1 replicas, tolerating f crash failures, and is designed so that
// non-conflicting transactions require no cross-core and no cross-replica
// coordination (the Zero-Coordination Principle): transaction state is
// partitioned per core, storage metadata per key, timestamps come from
// client clocks, and the commit protocol's fast path decides in a single
// round trip to the replicas.
//
// # Quick start
//
//	cluster, err := meerkat.NewCluster(meerkat.Config{})
//	if err != nil { ... }
//	defer cluster.Close()
//
//	client, err := cluster.NewClient()
//	if err != nil { ... }
//
//	txn := client.Begin()
//	balance, _ := txn.Read("alice")
//	txn.Write("alice", newBalance)
//	committed, err := txn.Commit()
//
// Commit returns false when optimistic validation failed (a conflicting
// transaction won); retry the transaction. See the examples directory for
// complete programs.
package meerkat

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"meerkat/internal/clock"
	"meerkat/internal/faultnet"
	"meerkat/internal/obs"
	"meerkat/internal/recovery"
	"meerkat/internal/replica"
	"meerkat/internal/shardmap"
	"meerkat/internal/timestamp"
	"meerkat/internal/topo"
	"meerkat/internal/transport"
	"meerkat/internal/vstore"
	"meerkat/internal/wal"
)

// SyncPolicy selects when the durability layer fsyncs appended commit
// records; see internal/wal for the exact semantics of each policy.
type SyncPolicy = wal.SyncPolicy

// Re-exported sync policies, so callers configure durability without
// importing internal packages.
const (
	// SyncBatch groups fsyncs off the commit path (default).
	SyncBatch = wal.SyncBatch
	// SyncNone never fsyncs; survives process crashes only.
	SyncNone = wal.SyncNone
	// SyncAlways fsyncs inside every commit before it is applied.
	SyncAlways = wal.SyncAlways
)

// ParseSyncPolicy parses "none", "batch", or "always" (command-line flags).
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// Durability configures the optional persistence layer: one write-ahead log
// per replica core (the zero-coordination principle extended to disk — no
// shared log), group-commit fsync batching, periodic snapshots with log
// truncation, and crash-restart recovery that replays local state before
// fetching only the delta from a live replica. The zero value (empty
// DataDir) disables persistence entirely.
type Durability struct {
	// DataDir is the root directory for all replicas' logs and snapshots;
	// each replica uses the subdirectory "p<partition>-r<index>". Setting
	// it enables durability.
	DataDir string
	// Sync is the fsync policy: SyncBatch (default), SyncNone, SyncAlways.
	Sync SyncPolicy
	// GroupCommitInterval is the SyncBatch fsync cadence. Default 2ms.
	GroupCommitInterval time.Duration
	// SnapshotInterval is how often each replica snapshots its store and
	// truncates its logs. Default 30s; negative disables the periodic
	// snapshotter (logs grow until Snapshot is called another way).
	SnapshotInterval time.Duration
	// MaxLogSegment rotates a core's log file beyond this size; snapshot
	// truncation deletes whole segments. Default 64 MiB.
	MaxLogSegment int64
	// DeltaMargin is subtracted from the replayed-log watermark when a
	// recovering replica asks a donor for the post-crash delta, covering
	// commits that were applied out of timestamp order around the crash.
	// The default is derived from the protocol knobs that bound how long a
	// commit's finalization can trail its timestamp assignment (StaleAfter/
	// SweepInterval, CommitTimeout, Retries, BackoffMax, ClockSkew), with a
	// 10s floor. Donors additionally ship keys whose commit they applied
	// (wall clock) after the replica crashed, so even a finalization
	// exceeding the margin — a coordinator outage longer than the sweeper
	// bound — cannot silently strand stale keys. The epoch change that
	// follows recovery reconciles in-flight transactions regardless.
	DeltaMargin time.Duration
}

// Enabled reports whether durability is configured.
func (d *Durability) Enabled() bool { return d.DataDir != "" }

// walOptions translates the validated config into internal/wal options.
// sched is the cluster-wide group-commit scheduler: every replica the
// process hosts shares one, so their per-core log fsyncs coalesce into
// (almost) one journal commit per tick instead of replicas×cores.
func (d *Durability) walOptions(sched *wal.Scheduler) wal.Options {
	return wal.Options{
		Sync:                d.Sync,
		GroupCommitInterval: d.GroupCommitInterval,
		SnapshotInterval:    d.SnapshotInterval,
		MaxSegmentBytes:     d.MaxLogSegment,
		Scheduler:           sched,
	}
}

// replicaDir is the durability directory of one replica.
func (d *Durability) replicaDir(p, r int) string {
	return filepath.Join(d.DataDir, fmt.Sprintf("p%d-r%d", p, r))
}

// TransportKind selects the message fabric of a cluster.
type TransportKind int

const (
	// TransportInproc runs all replicas in this process over per-core
	// delivery queues — the kernel-bypass-class transport. Default.
	TransportInproc TransportKind = iota
	// TransportUDP runs all replicas in this process but exchanges every
	// message over real loopback UDP sockets, paying full serialization
	// and kernel costs (the paper's "traditional stack" regime).
	TransportUDP
)

// Config describes a cluster. The zero value is a usable 3-replica,
// 4-cores-per-replica, single-partition in-process deployment.
type Config struct {
	// Replicas per partition group; must be odd. Default 3 (f=1).
	Replicas int
	// Cores is the number of server threads per replica. Default 4.
	Cores int
	// Partitions splits the keyspace across independent replica groups
	// (distributed transactions, §5.2.4). Default 1.
	Partitions int

	// Shards and MaxShards configure the sharded deployment built by Open:
	// Shards replica groups initially own the hash-range shard map, and
	// MaxShards groups are provisioned in total, the headroom Admin.Split
	// grows into by moving half a shard's range onto an idle group.
	// Defaults: Shards 1, MaxShards = Shards. NewCluster ignores both (a
	// cluster built directly has no shard map); Open derives Partitions
	// from MaxShards and rejects a conflicting explicit Partitions.
	Shards    int
	MaxShards int

	// shardOwn, set only by Open, is the per-group ownership view shared
	// between a group's replicas: each replica checks incoming keys against
	// its group's current view and redirects what it does not own. The
	// array outlives any individual replica, so crash-recovered replicas
	// rejoin with the group's current (possibly post-split) view.
	shardOwn []*shardmap.Ownership

	// Transport selects the fabric. Default TransportInproc.
	Transport TransportKind
	// UDPHost/UDPBasePort place TransportUDP sockets. Defaults:
	// 127.0.0.1, 29000.
	UDPHost     string
	UDPBasePort int
	// UDPMaxClients is the client budget the UDP port map is validated
	// against: Validate fails with ErrPortMap if that many clients (plus
	// all replica and recovery slots) cannot fit the 16-bit port range.
	// Creating more clients than this is still caught, at NewClient time,
	// by the transport's own typed port checks. Default 64.
	UDPMaxClients int
	// UDPFlushDelay, when positive, lets UDP endpoints hold buffered
	// outgoing datagrams up to this long waiting for more to share a
	// sendmmsg with (a micro-Nagle for the batched syscall path). Zero
	// flushes on every send boundary. Only meaningful with TransportUDP.
	UDPFlushDelay time.Duration
	// UDPNoBatch forces the UDP transport onto its one-syscall-per-
	// datagram path even where sendmmsg/recvmmsg are available. It exists
	// so benchmarks can measure the per-message baseline; leave it off.
	UDPNoBatch bool

	// DropProb injects random message loss on the inproc transport, and
	// Delay adds constant per-message latency, for fault-tolerance tests.
	DropProb float64
	Delay    time.Duration

	// InprocServiceTime, when positive, caps every replica endpoint of the
	// inproc transport at one message per this much time (client endpoints
	// are exempt) — a service-capacity model for benchmarks run on machines
	// with fewer CPUs than simulated server cores, where shard scaling
	// would otherwise be invisible. Leave zero outside such benchmarks.
	InprocServiceTime time.Duration

	// SharedTRecord replaces Meerkat's per-core transaction records with
	// one mutex-protected record per replica — the TAPIR-like baseline of
	// the paper's evaluation. For measurement, not production use.
	SharedTRecord bool
	// DisableFastPath forces all commits through the slow path (ablation).
	DisableFastPath bool
	// DisableReadOnlyFastPath forces read-only transactions through the
	// classic validated two-round commit instead of the one-round snapshot
	// path (ablation; see Txn.ReadOnly).
	DisableReadOnlyFastPath bool

	// CommitTimeout bounds each protocol round-trip wait; Retries bounds
	// resends. Defaults: 100ms, 10.
	CommitTimeout time.Duration
	Retries       int

	// BackoffBase and BackoffMax bound the capped exponential backoff with
	// full jitter that clients insert before protocol resends and between
	// Client.Run attempts: attempt k waits a uniform duration in
	// (0, min(BackoffBase<<k, BackoffMax)]. Defaults: 500µs, 50ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// Faults, when non-nil, wraps the cluster's transport in the
	// deterministic fault-injection layer (internal/faultnet) running this
	// schedule: per-link drop/delay/reorder/duplicate rules, partitions,
	// and crash/restart black-holes triggered at global message counts.
	// Crash/restart events black-hole the node's traffic; pair them with
	// Cluster.FaultEvents to also stop and recover the real replica. The
	// plan must pass its Validate; NewCluster rejects the config otherwise.
	Faults *faultnet.Plan

	// SweepInterval enables replica-side coordinator-failure detection:
	// stalled transactions older than StaleAfter are finished by a backup
	// coordinator. Zero disables.
	SweepInterval time.Duration
	StaleAfter    time.Duration

	// CompactOnEpochChange trims finalized transaction records whenever an
	// epoch change runs (checkpointing, §5.3.1).
	CompactOnEpochChange bool

	// ClockSkew, if set, gives client i a static clock offset of
	// (i - clients/2) * ClockSkew, exercising the loose-synchronization
	// tolerance. Correctness never depends on it.
	ClockSkew time.Duration

	// Durability, when its DataDir is set, persists every replica's
	// committed state: per-core write-ahead logs with the configured
	// SyncPolicy, periodic snapshots, and crash-restart recovery
	// (local replay first, then a delta state transfer).
	Durability Durability

	// Seed makes load-balancing decisions reproducible.
	Seed int64

	// Obs, when non-nil, is the observability registry the cluster wires
	// through every component (replica cores, client coordinators, epoch
	// changes, transport and storage gauges). When nil, NewCluster creates
	// one; retrieve it with Cluster.Obs.
	Obs *obs.Registry
}

// Validate checks the configuration and normalizes it in place, applying the
// documented defaults to zero-valued fields:
//
//	Replicas 3 (must be odd), Cores 4, Partitions 1,
//	Transport inproc (UDPHost 127.0.0.1, UDPBasePort 29000 when UDP),
//	CommitTimeout 100ms, Retries 10, BackoffBase 500µs, BackoffMax 50ms,
//	and, with Durability.DataDir set: Sync batch, GroupCommitInterval 2ms,
//	SnapshotInterval 30s, MaxLogSegment 64MiB, DeltaMargin derived from the
//	protocol knobs (see deriveDeltaMargin; 10s with the other defaults).
//
// It rejects negative knobs, even replica counts, out-of-range fault
// probabilities, and malformed fault plans. NewCluster calls it, so explicit
// calls are needed only to validate a config without starting a cluster.
func (c *Config) Validate() error {
	if c.Replicas < 0 || c.Cores < 0 || c.Partitions < 0 || c.Retries < 0 ||
		c.Shards < 0 || c.MaxShards < 0 {
		return fmt.Errorf("meerkat: negative size in config %+v", *c)
	}
	if c.CommitTimeout < 0 || c.BackoffBase < 0 || c.BackoffMax < 0 ||
		c.SweepInterval < 0 || c.StaleAfter < 0 || c.Delay < 0 || c.InprocServiceTime < 0 {
		return errors.New("meerkat: negative duration in config")
	}
	if c.DropProb < 0 || c.DropProb > 1 {
		return fmt.Errorf("meerkat: DropProb %v out of [0,1]", c.DropProb)
	}
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.Partitions == 0 {
		c.Partitions = 1
	}
	if c.Replicas%2 == 0 {
		return fmt.Errorf("meerkat: Replicas must be odd, got %d", c.Replicas)
	}
	if c.UDPHost == "" {
		c.UDPHost = "127.0.0.1"
	}
	if c.UDPBasePort == 0 {
		c.UDPBasePort = 29000
	}
	if c.UDPMaxClients == 0 {
		c.UDPMaxClients = 64
	}
	if c.Transport == TransportUDP {
		// Statically check the port map before anything binds: replica ids
		// must stay clear of the recovery-coordinator slots, and the
		// highest client address must fit 16 bits. The throwaway network
		// only does arithmetic here; no socket is created.
		probe := transport.NewUDP(c.UDPHost, c.UDPBasePort, c.udpCoresPerNode())
		if err := probe.ValidatePortMap(c.Partitions, c.Replicas, c.UDPMaxClients); err != nil {
			return fmt.Errorf("%w: %w", ErrPortMap, err)
		}
	}
	if c.CommitTimeout == 0 {
		c.CommitTimeout = 100 * time.Millisecond
	}
	if c.Retries == 0 {
		c.Retries = 10
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 500 * time.Microsecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 50 * time.Millisecond
	}
	if c.BackoffMax < c.BackoffBase {
		return fmt.Errorf("meerkat: BackoffMax %v below BackoffBase %v", c.BackoffMax, c.BackoffBase)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if err := c.Durability.validate(); err != nil {
		return err
	}
	if c.Durability.Enabled() && c.Durability.DeltaMargin == 0 {
		c.Durability.DeltaMargin = c.deriveDeltaMargin()
	}
	return nil
}

// validate checks and normalizes the durability options. Without a DataDir
// it only rejects nonsensical values (so a half-filled config fails fast).
func (d *Durability) validate() error {
	if d.GroupCommitInterval < 0 || d.DeltaMargin < 0 {
		return errors.New("meerkat: negative duration in Durability config")
	}
	if d.MaxLogSegment < 0 {
		return fmt.Errorf("meerkat: negative Durability.MaxLogSegment %d", d.MaxLogSegment)
	}
	if d.Sync != SyncBatch && d.Sync != SyncNone && d.Sync != SyncAlways {
		return fmt.Errorf("meerkat: unknown Durability.Sync policy %d", d.Sync)
	}
	if !d.Enabled() {
		return nil
	}
	if d.GroupCommitInterval == 0 {
		d.GroupCommitInterval = 2 * time.Millisecond
	}
	if d.SnapshotInterval == 0 {
		d.SnapshotInterval = 30 * time.Second
	}
	if d.MaxLogSegment == 0 {
		d.MaxLogSegment = 64 << 20
	}
	// DeltaMargin's default is derived from protocol knobs the Durability
	// struct cannot see; Config.Validate fills it after calling this.
	return nil
}

// deriveDeltaMargin bounds how long a commit's finalization can trail its
// timestamp assignment on a healthy group, so the recovering replica's
// TS-delta filter cannot miss it: the sweeper declares a coordinator dead
// after StaleAfter (default 5x SweepInterval), the original coordinator may
// have retried for (Retries+1) timeouts with backoff before that, recovery
// itself runs more rounds, and client clocks may disagree by ClockSkew. The
// sum is padded generously — the margin only sizes a state-transfer delta,
// so over-estimating costs bytes, never correctness — and floored at the
// long-standing 10s default, which already covers configs without a sweeper.
func (c *Config) deriveDeltaMargin() time.Duration {
	staleAfter := c.StaleAfter
	if staleAfter == 0 && c.SweepInterval > 0 {
		staleAfter = 5 * c.SweepInterval
	}
	skew := c.ClockSkew
	if skew < 0 {
		skew = -skew
	}
	m := 2*staleAfter +
		time.Duration(c.Retries+1)*c.CommitTimeout +
		time.Duration(c.Retries)*c.BackoffMax +
		30*c.CommitTimeout + // recovery rounds initiated by backup coordinators
		16*skew
	if m < 10*time.Second {
		m = 10 * time.Second
	}
	return m
}

func (c *Config) fill() error { return c.Validate() }

// udpCoresPerNode is the ports-per-node stride of the UDP port map: cores
// per node must also cover the highest client core index (1+Partitions).
func (c *Config) udpCoresPerNode() int { return maxInt(c.Cores, 2+c.Partitions) }

// Cluster is a running Meerkat deployment: Partitions replica groups of
// Replicas nodes each, plus the transport fabric connecting them to clients.
type Cluster struct {
	cfg  Config
	topo topo.Topology
	net  transport.Network
	inet *transport.Inproc // non-nil iff inproc transport
	unet *transport.UDP    // non-nil iff UDP transport
	fnet *faultnet.Network // non-nil iff cfg.Faults was set

	obs      *obs.Registry  // never nil after NewCluster
	recObs   *obs.Shard     // epoch-change recorder
	walSched *wal.Scheduler // shared group-commit driver (durable clusters)

	mu        sync.Mutex
	replicas  [][]*replica.Replica // [partition][index]
	epochs    []uint64             // per-partition epoch counters
	crashedAt map[[2]int]int64     // wall clock (UnixNano) of each CrashReplica
	nextCli   uint64
	closed    bool
}

// NewCluster starts a cluster per cfg.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	t := topo.Topology{Partitions: cfg.Partitions, Replicas: cfg.Replicas, Cores: cfg.Cores}
	if !t.Validate() {
		return nil, fmt.Errorf("meerkat: invalid configuration %+v", cfg)
	}

	c := &Cluster{
		cfg: cfg, topo: t,
		epochs:    make([]uint64, cfg.Partitions),
		crashedAt: make(map[[2]int]int64),
	}
	c.obs = cfg.Obs
	if c.obs == nil {
		c.obs = obs.NewRegistry()
	}
	c.recObs = c.obs.NewShard()
	switch cfg.Transport {
	case TransportInproc:
		var delay func() time.Duration
		if cfg.Delay > 0 {
			d := cfg.Delay
			delay = func() time.Duration { return d }
		}
		c.inet = transport.NewInproc(transport.InprocConfig{
			DropProb:         cfg.DropProb,
			Delay:            delay,
			Seed:             cfg.Seed,
			ServiceTime:      cfg.InprocServiceTime,
			ServiceNodeLimit: topo.ClientNodeBase,
		})
		c.net = c.inet
	case TransportUDP:
		// One port per (node, core); cores per node must cover the
		// highest client core index (1+Partitions).
		c.unet = transport.NewUDP(cfg.UDPHost, cfg.UDPBasePort, cfg.udpCoresPerNode())
		c.unet.SetFlushDelay(cfg.UDPFlushDelay)
		c.unet.SetBatchDisabled(cfg.UDPNoBatch)
		c.net = c.unet
	default:
		return nil, fmt.Errorf("meerkat: unknown transport %d", cfg.Transport)
	}

	switch n := c.net.(type) {
	case *transport.Inproc:
		n.RegisterObs(c.obs)
	case *transport.UDP:
		n.RegisterObs(c.obs)
	}
	if cfg.Faults != nil {
		// The injector wraps the fabric: every send — replica and client
		// alike — passes through the fault schedule. Validate() already
		// vetted the plan, so Wrap cannot panic here.
		c.fnet = faultnet.Wrap(c.net, cfg.Faults)
		c.fnet.RegisterObs(c.obs)
		c.net = c.fnet
	}
	// Storage gauges sum over all live replica stores (each replica holds a
	// full copy, so totals scale with the replication factor by design).
	c.obs.RegisterGauge("vstore_keys", func() uint64 { k, _ := c.storeCounts(); return k })
	c.obs.RegisterGauge("vstore_versions", func() uint64 { _, v := c.storeCounts(); return v })
	c.obs.RegisterGauge("vstore_ops_merged", func() uint64 { m, _ := c.storeOpStats(); return m })
	c.obs.RegisterGauge("vstore_ops_recovered", func() uint64 { _, r := c.storeOpStats(); return r })

	if cfg.Durability.Enabled() {
		c.walSched = wal.NewScheduler(cfg.Durability.GroupCommitInterval)
	}
	for p := 0; p < cfg.Partitions; p++ {
		group := make([]*replica.Replica, cfg.Replicas)
		stores := make([]*vstore.Store, cfg.Replicas)
		wals := make([]*wal.Store, cfg.Replicas)
		if cfg.Durability.Enabled() {
			// Open (or create) every replica's durability directory and
			// replay whatever it holds: a whole-cluster restart comes back
			// with every committed transaction.
			replayed := false
			for r := 0; r < cfg.Replicas; r++ {
				w, recov, err := wal.Open(cfg.Durability.replicaDir(p, r), cfg.Cores, cfg.Durability.walOptions(c.walSched))
				if err != nil {
					for i := 0; i < r; i++ {
						wals[i].Close()
					}
					c.Close()
					return nil, err
				}
				wals[r] = w
				stores[r] = recov.Store
				replayed = replayed || recov.Records > 0 || recov.SnapshotKeys > 0
			}
			if replayed {
				// Reconcile the group before serving traffic. After a
				// non-graceful whole-cluster crash under SyncBatch each
				// replica lost a different unfsynced log suffix, so the
				// replayed stores diverge: an acknowledged write may exist
				// on one replica and not another, and single-replica reads
				// would return inconsistent values. The union merge is
				// sound because imports are idempotent and monotone (Thomas
				// rule for versions, max for rts): fold every store into
				// the first, then fan the union back out.
				for r := 1; r < cfg.Replicas; r++ {
					recovery.SyncStore(stores[0], stores[r])
				}
				for r := 1; r < cfg.Replicas; r++ {
					recovery.SyncStore(stores[r], stores[0])
				}
				// Make the reconciled state durable: keys merged from peers
				// exist only in memory until a snapshot covers them, and a
				// later lone crash would lose them again. Best-effort — on
				// failure the logs simply keep growing and the periodic
				// snapshotter retries.
				for r := 0; r < cfg.Replicas; r++ {
					wals[r].Snapshot(stores[r])
				}
			}
		}
		for r := 0; r < cfg.Replicas; r++ {
			rep, err := c.newReplica(p, r, stores[r], wals[r], false)
			if err != nil {
				for i := r; i < cfg.Replicas; i++ {
					if wals[i] != nil {
						wals[i].Close()
					}
				}
				for i := 0; i < r; i++ {
					group[i].Stop()
				}
				c.Close()
				return nil, err
			}
			group[r] = rep
		}
		c.replicas = append(c.replicas, group)
	}
	return c, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (c *Cluster) newReplica(p, r int, store *vstore.Store, w *wal.Store, recovering bool) (*replica.Replica, error) {
	var own *shardmap.Ownership
	if c.cfg.shardOwn != nil {
		own = c.cfg.shardOwn[p]
	}
	rep, err := replica.New(replica.Config{
		Topo:                 c.topo,
		Partition:            p,
		Index:                r,
		Net:                  c.net,
		Store:                store,
		WAL:                  w,
		Ownership:            own,
		SharedRecord:         c.cfg.SharedTRecord,
		SweepInterval:        c.cfg.SweepInterval,
		StaleAfter:           c.cfg.StaleAfter,
		CompactOnEpochChange: c.cfg.CompactOnEpochChange,
		Obs:                  c.obs,
		Recovering:           recovering,
	})
	if err != nil {
		return nil, err
	}
	if err := rep.Start(); err != nil {
		return nil, err
	}
	return rep, nil
}

// Load installs key=value on every replica, bypassing the transaction
// protocol. Use it to pre-load a database before serving traffic. With
// durability enabled the load is logged, so preloaded data survives
// restarts like committed writes do.
func (c *Cluster) Load(key string, value []byte) {
	c.loadPartition(c.topo.PartitionForKey(key), key, value)
}

// loadPartition is Load with the owning partition already decided — the
// sharded DB routes by shard map, the legacy path by static key hash.
func (c *Cluster) loadPartition(p int, key string, value []byte) {
	ts := timestamp.Timestamp{Time: 1, ClientID: 0}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rep := range c.replicas[p] {
		if rep != nil {
			rep.Load(key, value, ts)
		}
	}
}

// Close shuts the cluster down. With durability enabled it first drains each
// partition with an epoch change — the merge finalizes every transaction the
// group had acknowledged but not yet applied, writing it to the logs — and
// then stops every replica gracefully, which flushes and fsyncs all core
// logs. A durable cluster closed this way reopens with zero committed-
// transaction loss.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	reps := c.replicas
	c.mu.Unlock()
	if c.cfg.Durability.Enabled() {
		for p := 0; p < c.cfg.Partitions; p++ {
			// Best-effort: without a quorum (mid-chaos shutdown) in-flight
			// transactions stay in-flight; committed state is already logged.
			c.EpochChange(p)
		}
	}
	for _, group := range reps {
		for _, rep := range group {
			if rep != nil {
				rep.Stop()
			}
		}
	}
	if c.net != nil {
		c.net.Close()
	}
	if c.walSched != nil {
		// Replica stops flushed and closed every log; the shared group-commit
		// driver has no registrants left and can retire.
		c.walSched.Stop()
	}
}

// CrashReplica stops replica r of partition p, simulating a process crash:
// its endpoints close, in-flight messages to it are dropped, and — with
// durability enabled — its write-ahead logs are abandoned without a final
// flush, exactly as a killed process would leave them. The cluster keeps
// serving as long as a majority of each group survives (transactions fall
// back to the slow path once a fast quorum is unreachable).
func (c *Cluster) CrashReplica(p, r int) {
	c.mu.Lock()
	rep := c.replicas[p][r]
	c.replicas[p][r] = nil
	if rep != nil {
		// Stamp the crash instant: RecoverReplica hands it to donors as the
		// wall-clock delta bound (ship every key whose commit you applied
		// since), which catches commits finalized during the outage with
		// timestamps older than any TS margin.
		c.crashedAt[[2]int{p, r}] = time.Now().UnixNano()
	}
	c.mu.Unlock()
	if rep != nil {
		rep.Crash()
	}
}

// RecoverReplica brings replica r of partition p back. Without durability
// the replica restarts without state and copies the donor's whole committed
// store, per §5.3.1. With durability it first reopens its data directory and
// replays the local snapshot + logs, then fetches only the delta — keys the
// donor saw change after the replayed watermark (minus Durability.
// DeltaMargin, covering out-of-timestamp-order applies) plus keys whose
// commit the donor applied, by its wall clock, since just before the crash
// (covering sweeper/backup-coordinator outcomes whose timestamps are older
// than any margin). Either way the epoch change that follows reconciles
// every in-flight transaction, so the rejoined replica is exactly
// consistent with the group.
func (c *Cluster) RecoverReplica(p, r int) error {
	c.mu.Lock()
	if c.replicas[p][r] != nil {
		c.mu.Unlock()
		return errors.New("meerkat: replica is not crashed")
	}
	crashStamp := c.crashedAt[[2]int{p, r}]
	donor := -1
	for i, rep := range c.replicas[p] {
		if i != r && rep != nil {
			donor = i
			break
		}
	}
	c.mu.Unlock()
	if donor < 0 {
		return errors.New("meerkat: no live replica to recover from")
	}

	// Local replay first (durable clusters), then state transfer over the
	// wire (shard-paginated, delta-filtered); the epoch change below
	// reconciles any in-flight transactions.
	var store *vstore.Store
	var w *wal.Store
	var since timestamp.Timestamp
	var sinceWall int64
	if c.cfg.Durability.Enabled() {
		var recov *wal.Recovered
		var err error
		w, recov, err = wal.Open(c.cfg.Durability.replicaDir(p, r), c.cfg.Cores, c.cfg.Durability.walOptions(c.walSched))
		if err != nil {
			return err
		}
		store = recov.Store
		if margin := c.cfg.Durability.DeltaMargin.Nanoseconds(); recov.Watermark.Time > margin {
			since = timestamp.Timestamp{Time: recov.Watermark.Time - margin}
		}
		if crashStamp > 0 {
			// Second delta axis: donors also ship keys whose commit they
			// applied (their wall clock) since just before the crash. The
			// slack absorbs group-commit buffering around the crash instant
			// and inter-replica apply latency; over-shipping is only bytes.
			slack := 5*c.cfg.CommitTimeout + 10*c.cfg.Durability.GroupCommitInterval
			if slack < time.Second {
				slack = time.Second
			}
			sinceWall = crashStamp - slack.Nanoseconds()
		}
	} else {
		store = vstore.New(vstore.Config{})
	}
	if err := recovery.SyncStoreRemote(c.net, c.topo, p, donor, store, recovery.Options{
		Timeout:   c.cfg.CommitTimeout * 5,
		Since:     since,
		SinceWall: sinceWall,
	}); err != nil {
		if w != nil {
			w.Close()
		}
		return err
	}
	rep, err := c.newReplica(p, r, store, w, true)
	if err != nil {
		if w != nil {
			w.Close()
		}
		return err
	}
	c.mu.Lock()
	c.replicas[p][r] = rep
	delete(c.crashedAt, [2]int{p, r})
	c.mu.Unlock()
	if err := c.EpochChange(p); err != nil {
		return err
	}
	if w != nil {
		// Best-effort snapshot: the delta just fetched lives only in memory
		// until a snapshot covers it; taking one now makes the recovery
		// itself durable (failure is fine — the next crash simply fetches
		// the delta again).
		go w.Snapshot(rep.Store())
	}
	return nil
}

// EpochChange runs the epoch change protocol on partition p, pausing the
// group, merging trecords, and resuming. It is invoked automatically by
// RecoverReplica and may be called directly (e.g. to checkpoint).
func (c *Cluster) EpochChange(p int) error {
	c.mu.Lock()
	c.epochs[p]++
	epoch := c.epochs[p]
	c.mu.Unlock()
	_, err := recovery.RunEpochChange(c.net, c.topo, p, epoch, recovery.Options{
		Timeout: c.cfg.CommitTimeout * 5,
		Obs:     c.recObs,
	})
	return err
}

// Obs returns the cluster's observability registry. Snapshot it for
// programmatic metrics, or serve it over HTTP with obs.Handler / obs.Serve.
func (c *Cluster) Obs() *obs.Registry { return c.obs }

// storeCounts sums keys and committed versions across all live replica
// stores. Scrape path only.
func (c *Cluster) storeCounts() (keys, versions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, group := range c.replicas {
		for _, rep := range group {
			if rep == nil {
				continue
			}
			k, v := rep.Store().Counts()
			keys += k
			versions += v
		}
	}
	return
}

// storeOpStats sums commutative-op merge counters across all live replica
// stores. Scrape path only.
func (c *Cluster) storeOpStats() (merged, recovered uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, group := range c.replicas {
		for _, rep := range group {
			if rep == nil {
				continue
			}
			m, r := rep.Store().OpStats()
			merged += m
			recovered += r
		}
	}
	return
}

// replicaAt returns the live replica instance (tests, stats); nil if
// crashed.
func (c *Cluster) replicaAt(p, r int) *replica.Replica {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replicas[p][r]
}

// NetworkStats reports transport counters (inproc transport only).
func (c *Cluster) NetworkStats() (sent, delivered, dropped uint64) {
	if c.inet == nil {
		return
	}
	s := c.inet.Stats()
	return s.Sent.Load(), s.Delivered.Load(), s.Dropped.Load()
}

// UDPNetStats is a point-in-time aggregate of the UDP transport's
// socket-level counters. The syscall counters are what the batched transport
// amortizes: datagrams moved per send syscall is Sent/SendSyscalls.
type UDPNetStats struct {
	Sent         uint64 // datagrams handed to the kernel
	Delivered    uint64 // datagrams decoded and delivered
	Dropped      uint64 // local send errors + corrupt inbound datagrams
	SendSyscalls uint64 // sendmmsg/sendto calls
	RecvSyscalls uint64 // recvmmsg/recvfrom calls
}

// Syscalls returns total socket syscalls issued.
func (s UDPNetStats) Syscalls() uint64 { return s.SendSyscalls + s.RecvSyscalls }

// WALStats aggregates durability counters (record appends, fsyncs, bytes,
// segment rotations) across all live replicas; ok is false when durability
// is disabled. Fsyncs per committed transaction in a benchmark window is
// Syncs / committed count.
func (c *Cluster) WALStats() (s wal.Stats, ok bool) {
	if !c.cfg.Durability.Enabled() {
		return s, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, group := range c.replicas {
		for _, rep := range group {
			if rep == nil || rep.WAL() == nil {
				continue
			}
			st := rep.WAL().Stats()
			s.Appends += st.Appends
			s.Syncs += st.Syncs
			s.BytesWritten += st.BytesWritten
			s.Segments += st.Segments
			s.Failures += st.Failures
		}
	}
	return s, true
}

// UDPStats reports socket-level counters; ok is false unless the cluster
// runs on TransportUDP. Counters survive Cluster.Close, so post-run scrapes
// stay truthful.
func (c *Cluster) UDPStats() (s UDPNetStats, ok bool) {
	if c.unet == nil {
		return s, false
	}
	t := c.unet.Stats()
	return UDPNetStats{
		Sent:         t.Sent,
		Delivered:    t.Delivered,
		Dropped:      t.Dropped,
		SendSyscalls: t.SendCalls,
		RecvSyscalls: t.RecvCalls,
	}, true
}

// clientClock builds the clock for a new client, applying configured skew.
func (c *Cluster) clientClock(id uint64) clock.Clock {
	base := clock.NewReal()
	if c.cfg.ClockSkew == 0 {
		return base
	}
	offset := (int64(id) - 4) * int64(c.cfg.ClockSkew)
	return clock.NewSkewed(base, offset, 0)
}

// nodeOf maps (partition, replica index) to the transport node id, for
// tests that inject faults.
func (c *Cluster) nodeOf(p, r int) uint32 { return c.topo.ReplicaNode(p, r) }

// NodeOf maps (partition, replica index) to the transport node id — the id
// space fault plans (Config.Faults) address crashes, partitions, and link
// rules in.
func (c *Cluster) NodeOf(p, r int) uint32 { return c.nodeOf(p, r) }

// ReplicaOf inverts NodeOf: the (partition, replica index) behind a
// transport node id, for harnesses mapping fault events onto replica
// lifecycle calls. ok is false for ids that are not replica nodes.
func (c *Cluster) ReplicaOf(node uint32) (p, r int, ok bool) {
	for p = 0; p < c.cfg.Partitions; p++ {
		for r = 0; r < c.cfg.Replicas; r++ {
			if c.topo.ReplicaNode(p, r) == node {
				return p, r, true
			}
		}
	}
	return 0, 0, false
}

// FaultNetwork returns the fault-injection layer, or nil when the cluster
// runs without one (Config.Faults == nil).
func (c *Cluster) FaultNetwork() *faultnet.Network { return c.fnet }

// FaultEvents returns the channel carrying fired fault events, in firing
// order, or nil without a fault plan. A chaos harness consumes it to mirror
// OpCrash/OpRestart black-holes onto the real replica lifecycle
// (CrashReplica / RecoverReplica).
func (c *Cluster) FaultEvents() <-chan faultnet.Event {
	if c.fnet == nil {
		return nil
	}
	return c.fnet.Events()
}
