package meerkat

import (
	"fmt"

	"meerkat/internal/faultnet"
	"meerkat/internal/obs"
	"meerkat/internal/replica"
	"meerkat/internal/shardmap"
	"meerkat/internal/timestamp"
	"meerkat/internal/wal"
)

// Admin is the DB's administrative facade: shard-map introspection, online
// resharding, and the cluster-level controls (fault injection, replica
// lifecycle, metrics) that used to live as ad-hoc Cluster methods. Obtain it
// with DB.Admin.
type Admin struct {
	db *DB
}

// ShardMap returns the current authoritative shard map (immutable; never
// nil). Its version increases by one per completed Split.
func (a *Admin) ShardMap() *shardmap.Map { return a.db.source.Current() }

// Shards reports how many groups currently own a range and how many are
// provisioned in total (the Split headroom).
func (a *Admin) Shards() (owned, provisioned int) {
	return len(a.db.source.Current().Groups()), len(a.db.own)
}

// Split moves the upper half of shard src's widest hash range onto an idle
// provisioned group, live, and returns the new owner. The migration uses the
// epoch change as its fence:
//
//  1. Seal: src's replicas install the successor map and start redirecting
//     the moved range. New transactions on moved keys abort with a redirect.
//  2. Fence: an epoch change on src pauses the group, merges its transaction
//     records, and finalizes every in-flight transaction — after it, the
//     moved range's committed state is complete and frozen on src's live
//     replicas (reads can no longer raise it either; sealed replicas reject
//     reads too).
//  3. Migrate: the union of the moved range's committed state across src's
//     live replicas (max-timestamp per key — imports are monotone, so the
//     union is safe) is installed on dst's live replicas. Read timestamps
//     move with the data, so a read serialized before the split stays
//     serialized after it.
//  4. Open: dst's replicas install the successor map and begin serving the
//     range.
//  5. Publish: the map is persisted (durable clusters), then published;
//     client caches refresh on their next redirect.
//
// Split is safe to retry after a mid-sequence failure: re-running it from
// the same source map recomputes the same successor version, and installs,
// imports, and publishes are all idempotent and monotone. While a failed
// split is un-retried the moved range is sealed but unowned — transactions
// touching it abort with ErrWrongShard until a retry completes the handoff.
//
// Concurrent Splits serialize; routing and running transactions never block
// on one (only transactions touching the moved range are affected).
func (a *Admin) Split(src int) (dst int, err error) {
	db := a.db
	db.splitMu.Lock()
	defer db.splitMu.Unlock()

	cur := db.source.Current()
	if src < 0 || src >= len(db.own) {
		return -1, fmt.Errorf("meerkat: split source %d out of range [0,%d)", src, len(db.own))
	}
	owned := make(map[int]bool)
	for _, g := range cur.Groups() {
		owned[g] = true
	}
	dst = -1
	for p := 0; p < len(db.own); p++ {
		if !owned[p] {
			dst = p
			break
		}
	}
	if dst < 0 {
		return -1, errNoIdleShard
	}
	next, lo, hi, err := cur.Split(src, dst)
	if err != nil {
		return -1, err
	}

	// 1. Seal. From here on src's replicas redirect the moved range; the
	// install is monotone, so a crash-and-retry cannot roll it back.
	db.own[src].Install(next)

	// 2. Fence. The epoch change finalizes every transaction in flight on
	// src — including ones that validated the moved range before the seal —
	// so after it the range's committed state is complete.
	if err := db.c.EpochChange(src); err != nil {
		return -1, fmt.Errorf("meerkat: split fence (epoch change on shard %d): %w", src, err)
	}

	// 3. Migrate the moved range's committed state.
	if err := db.migrate(src, dst, lo, hi); err != nil {
		return -1, err
	}

	// 4. Open the range on its new owner.
	db.own[dst].Install(next)

	// 5. Durable before visible: persist the map, then publish it. A crash
	// between the two re-runs the split idempotently on restart (the
	// persisted map already names dst as owner; Open rebuilds views from it).
	if db.mapPath != "" {
		if err := next.Save(db.mapPath); err != nil {
			return -1, fmt.Errorf("meerkat: persisting shard map after split: %w", err)
		}
	}
	db.source.Publish(next)
	return dst, nil
}

// migrate copies the committed state of the hash range [lo, hi) from shard
// src's live replicas onto shard dst's live replicas. It runs after the
// fence, so the range is frozen; the union across live source replicas (max
// WTS picks each key's value — the Thomas rule — and read timestamps take
// the max) covers replicas that individually missed an apply.
func (db *DB) migrate(src, dst int, lo, hi uint32) error {
	type keyState struct {
		value []byte
		wts   timestamp.Timestamp
		rts   timestamp.Timestamp
		hasV  bool
	}

	db.c.mu.Lock()
	srcReps := append([]*replica.Replica(nil), db.c.replicas[src]...)
	dstReps := append([]*replica.Replica(nil), db.c.replicas[dst]...)
	db.c.mu.Unlock()

	union := make(map[string]*keyState)
	live := 0
	for _, rep := range srcReps {
		if rep == nil {
			continue
		}
		live++
		st := rep.Store()
		for i := 0; i < st.NumShards(); i++ {
			for _, ks := range st.ExportShard(i) {
				if !shardmap.InRange(shardmap.Hash(ks.Key), lo, hi) {
					continue
				}
				u := union[ks.Key]
				if u == nil {
					u = &keyState{}
					union[ks.Key] = u
				}
				if !ks.WTS.IsZero() && (!u.hasV || u.wts.Less(ks.WTS)) {
					u.value, u.wts, u.hasV = ks.Value, ks.WTS, true
				}
				if u.rts.Less(ks.RTS) {
					u.rts = ks.RTS
				}
			}
		}
	}
	if live == 0 {
		return fmt.Errorf("meerkat: shard %d has no live replica to migrate from", src)
	}

	liveDst := 0
	for _, rep := range dstReps {
		if rep == nil {
			continue
		}
		liveDst++
		for k, u := range union {
			if u.hasV {
				// Load logs to the WAL like a committed write, so migrated
				// data survives restarts on its new owner.
				rep.Load(k, u.value, u.wts)
			}
			if !u.rts.IsZero() {
				// The read timestamp travels with the key: without it the
				// new owner could validate a write below a read it never
				// saw, un-serializing that read.
				rep.Store().CommitRead(k, u.rts)
			}
		}
	}
	if liveDst == 0 {
		return fmt.Errorf("meerkat: shard %d has no live replica to migrate to", dst)
	}
	return nil
}

// Obs returns the observability registry shared by every component of the
// deployment.
func (a *Admin) Obs() *obs.Registry { return a.db.c.Obs() }

// EpochChange runs the epoch-change protocol on one shard (checkpointing,
// post-recovery reconciliation; see Cluster.EpochChange).
func (a *Admin) EpochChange(shard int) error { return a.db.c.EpochChange(shard) }

// CrashReplica stops replica r of shard s, simulating a process crash (see
// Cluster.CrashReplica).
func (a *Admin) CrashReplica(s, r int) { a.db.c.CrashReplica(s, r) }

// RecoverReplica brings replica r of shard s back, state-transferring from a
// live peer (see Cluster.RecoverReplica). The recovered replica adopts its
// group's current ownership view, post-split included.
func (a *Admin) RecoverReplica(s, r int) error { return a.db.c.RecoverReplica(s, r) }

// WALStats aggregates durability counters across all live replicas; ok is
// false when durability is disabled.
func (a *Admin) WALStats() (wal.Stats, bool) { return a.db.c.WALStats() }

// NetworkStats reports transport counters (inproc transport only).
func (a *Admin) NetworkStats() (sent, delivered, dropped uint64) { return a.db.c.NetworkStats() }

// UDPStats reports socket-level counters; ok is false unless the deployment
// runs on TransportUDP.
func (a *Admin) UDPStats() (UDPNetStats, bool) { return a.db.c.UDPStats() }

// NodeOf maps (shard, replica index) to the transport node id fault plans
// address.
func (a *Admin) NodeOf(s, r int) uint32 { return a.db.c.NodeOf(s, r) }

// ReplicaOf inverts NodeOf; ok is false for ids that are not replica nodes.
func (a *Admin) ReplicaOf(node uint32) (s, r int, ok bool) { return a.db.c.ReplicaOf(node) }

// FaultNetwork returns the fault-injection layer, or nil without one.
func (a *Admin) FaultNetwork() *faultnet.Network { return a.db.c.FaultNetwork() }

// FaultEvents returns the channel carrying fired fault events, or nil
// without a fault plan.
func (a *Admin) FaultEvents() <-chan faultnet.Event { return a.db.c.FaultEvents() }
