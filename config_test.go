package meerkat

import (
	"testing"
	"time"
)

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	if cfg.Replicas != 3 || cfg.Cores != 4 || cfg.Partitions != 1 {
		t.Fatalf("defaults %+v", cfg)
	}
	if cfg.CommitTimeout != 100*time.Millisecond || cfg.Retries != 10 {
		t.Fatalf("timeout defaults %+v", cfg)
	}
	if cfg.UDPHost != "127.0.0.1" || cfg.UDPBasePort != 29000 {
		t.Fatalf("udp defaults %+v", cfg)
	}
}

func TestUnknownTransportRejected(t *testing.T) {
	if _, err := NewCluster(Config{Transport: TransportKind(42)}); err == nil {
		t.Fatal("unknown transport accepted")
	}
}

func TestFiveReplicaCluster(t *testing.T) {
	c := newTestCluster(t, Config{Replicas: 5, Cores: 1})
	cl := newTestClient(t, c)
	if err := cl.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := cl.GetStrong("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("got %q, %v", v, err)
	}
}

func TestSingleReplicaCluster(t *testing.T) {
	// n=1, f=0: both quorums are 1; the system degenerates to a
	// single-node store and must still work.
	c := newTestCluster(t, Config{Replicas: 1, Cores: 2})
	cl := newTestClient(t, c)
	if err := cl.Put("k", []byte("solo")); err != nil {
		t.Fatal(err)
	}
	v, err := cl.GetStrong("k")
	if err != nil || string(v) != "solo" {
		t.Fatalf("got %q, %v", v, err)
	}
}

func TestNetworkStats(t *testing.T) {
	c := newTestCluster(t, Config{})
	cl := newTestClient(t, c)
	if err := cl.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	sent, delivered, _ := c.NetworkStats()
	if sent == 0 || delivered == 0 {
		t.Fatalf("stats sent=%d delivered=%d", sent, delivered)
	}
}

func TestClientAfterClusterClose(t *testing.T) {
	c, err := NewCluster(Config{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.NewClient(); err == nil {
		t.Fatal("NewClient on closed cluster succeeded")
	}
	c.Close() // double close is safe
}

func TestRecoverNonCrashedReplicaRejected(t *testing.T) {
	c := newTestCluster(t, Config{})
	if err := c.RecoverReplica(0, 1); err == nil {
		t.Fatal("recovering a live replica succeeded")
	}
}

func TestDropConfigStillCommits(t *testing.T) {
	c := newTestCluster(t, Config{
		DropProb:      0.05,
		Seed:          5,
		CommitTimeout: 20 * time.Millisecond,
		Retries:       30,
	})
	cl := newTestClient(t, c)
	for i := 0; i < 10; i++ {
		if err := cl.Put("k", []byte("v")); err != nil {
			t.Fatalf("put %d under loss: %v", i, err)
		}
	}
}
