package meerkat

import (
	"testing"
	"time"
)

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	if cfg.Replicas != 3 || cfg.Cores != 4 || cfg.Partitions != 1 {
		t.Fatalf("defaults %+v", cfg)
	}
	if cfg.CommitTimeout != 100*time.Millisecond || cfg.Retries != 10 {
		t.Fatalf("timeout defaults %+v", cfg)
	}
	if cfg.UDPHost != "127.0.0.1" || cfg.UDPBasePort != 29000 {
		t.Fatalf("udp defaults %+v", cfg)
	}
}

func TestUnknownTransportRejected(t *testing.T) {
	if _, err := NewCluster(Config{Transport: TransportKind(42)}); err == nil {
		t.Fatal("unknown transport accepted")
	}
}

func TestFiveReplicaCluster(t *testing.T) {
	c := newTestCluster(t, Config{Replicas: 5, Cores: 1})
	cl := newTestClient(t, c)
	if err := cl.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := cl.GetStrong("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("got %q, %v", v, err)
	}
}

func TestSingleReplicaCluster(t *testing.T) {
	// n=1, f=0: both quorums are 1; the system degenerates to a
	// single-node store and must still work.
	c := newTestCluster(t, Config{Replicas: 1, Cores: 2})
	cl := newTestClient(t, c)
	if err := cl.Put("k", []byte("solo")); err != nil {
		t.Fatal(err)
	}
	v, err := cl.GetStrong("k")
	if err != nil || string(v) != "solo" {
		t.Fatalf("got %q, %v", v, err)
	}
}

func TestNetworkStats(t *testing.T) {
	c := newTestCluster(t, Config{})
	cl := newTestClient(t, c)
	if err := cl.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	sent, delivered, _ := c.NetworkStats()
	if sent == 0 || delivered == 0 {
		t.Fatalf("stats sent=%d delivered=%d", sent, delivered)
	}
}

func TestClientAfterClusterClose(t *testing.T) {
	c, err := NewCluster(Config{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.NewClient(); err == nil {
		t.Fatal("NewClient on closed cluster succeeded")
	}
	c.Close() // double close is safe
}

func TestRecoverNonCrashedReplicaRejected(t *testing.T) {
	c := newTestCluster(t, Config{})
	if err := c.RecoverReplica(0, 1); err == nil {
		t.Fatal("recovering a live replica succeeded")
	}
}

func TestDropConfigStillCommits(t *testing.T) {
	c := newTestCluster(t, Config{
		DropProb:      0.05,
		Seed:          5,
		CommitTimeout: 20 * time.Millisecond,
		Retries:       30,
	})
	cl := newTestClient(t, c)
	for i := 0; i < 10; i++ {
		if err := cl.Put("k", []byte("v")); err != nil {
			t.Fatalf("put %d under loss: %v", i, err)
		}
	}
}

func TestDurabilityConfigDefaults(t *testing.T) {
	cfg := Config{Durability: Durability{DataDir: t.TempDir()}}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	d := cfg.Durability
	if d.Sync != SyncBatch || d.GroupCommitInterval != 2*time.Millisecond ||
		d.SnapshotInterval != 30*time.Second || d.MaxLogSegment != 64<<20 ||
		d.DeltaMargin != 10*time.Second {
		t.Fatalf("durability defaults %+v", d)
	}

	// Without a DataDir no defaults are applied (durability stays off) but
	// nonsense is still rejected.
	cfg = Config{}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	if cfg.Durability.Enabled() || cfg.Durability.SnapshotInterval != 0 {
		t.Fatalf("disabled durability was normalized: %+v", cfg.Durability)
	}
}

func TestDurabilityConfigRejected(t *testing.T) {
	bad := []Config{
		{Durability: Durability{DataDir: "x", GroupCommitInterval: -1}},
		{Durability: Durability{DataDir: "x", DeltaMargin: -1}},
		{Durability: Durability{DataDir: "x", MaxLogSegment: -1}},
		{Durability: Durability{DataDir: "x", Sync: SyncPolicy(9)}},
		{Durability: Durability{Sync: SyncPolicy(9)}}, // even with durability off
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad durability config %d accepted: %+v", i, cfg.Durability)
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"none", SyncNone}, {"batch", SyncBatch}, {"always", SyncAlways}, {"", SyncBatch}, {"ALWAYS", SyncAlways}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("bogus sync policy accepted")
	}
}
