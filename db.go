package meerkat

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"meerkat/internal/shardmap"
)

// DB is a sharded Meerkat deployment: Config.MaxShards independent replica
// groups behind a versioned hash-range shard map. Clients obtained from
// DB.Client / DB.Session route every key locally against a cached copy of the
// map and follow shard splits automatically (a redirect refreshes the cache
// and retries); the single-shard fast path is exactly the unsharded protocol,
// so a one-shard DB costs nothing over a plain Cluster.
//
// Open builds a DB; Admin exposes introspection and online resharding
// (Admin.Split). The embedded Cluster remains reachable through Cluster()
// for tooling that predates the sharded API.
type DB struct {
	c      *Cluster
	source *shardmap.Source
	own    []*shardmap.Ownership
	admin  *Admin

	// mapPath persists the shard map across restarts (durable clusters
	// only); "" disables persistence.
	mapPath string

	// splitMu serializes Admin.Split; routing never takes it.
	splitMu sync.Mutex
}

// Open starts a sharded deployment per cfg: Config.Shards replica groups own
// the initial shard map and Config.MaxShards groups are provisioned in total
// (the headroom Admin.Split grows into). Partitions is derived from
// MaxShards; setting it explicitly to a conflicting value is an error. With
// durability enabled the shard map itself persists (DataDir/shardmap.json),
// so a restarted cluster comes back with its post-split ownership intact.
//
// All other Config knobs mean exactly what they mean for NewCluster.
func Open(cfg Config) (*DB, error) {
	if cfg.Shards < 0 || cfg.MaxShards < 0 {
		return nil, fmt.Errorf("meerkat: negative shard count in config (Shards %d, MaxShards %d)", cfg.Shards, cfg.MaxShards)
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.MaxShards == 0 {
		cfg.MaxShards = cfg.Shards
	}
	if cfg.MaxShards < cfg.Shards {
		return nil, fmt.Errorf("meerkat: MaxShards %d below Shards %d", cfg.MaxShards, cfg.Shards)
	}
	if cfg.Partitions != 0 && cfg.Partitions != cfg.MaxShards {
		return nil, fmt.Errorf("meerkat: Partitions %d conflicts with MaxShards %d (Open derives Partitions; leave it zero)", cfg.Partitions, cfg.MaxShards)
	}
	cfg.Partitions = cfg.MaxShards

	var m *shardmap.Map
	mapPath := ""
	if cfg.Durability.Enabled() {
		mapPath = filepath.Join(cfg.Durability.DataDir, "shardmap.json")
		pm, err := shardmap.LoadFile(mapPath)
		if err != nil {
			return nil, fmt.Errorf("meerkat: loading persisted shard map: %w", err)
		}
		m = pm
	}
	if m == nil {
		m = shardmap.New(cfg.Shards)
	} else {
		for _, g := range m.Groups() {
			if g >= cfg.MaxShards {
				return nil, fmt.Errorf("meerkat: persisted shard map (version %d) references group %d beyond MaxShards %d", m.Version(), g, cfg.MaxShards)
			}
		}
	}

	// Every provisioned group gets an ownership view — including groups that
	// own no range yet; they redirect everything until a split assigns them
	// one. The views are shared with the replicas via the config (they
	// outlive replica crash/recovery).
	own := make([]*shardmap.Ownership, cfg.MaxShards)
	for p := range own {
		own[p] = shardmap.NewOwnership(m, p)
	}
	cfg.shardOwn = own

	c, err := NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	db := &DB{c: c, source: shardmap.NewSource(m), own: own, mapPath: mapPath}
	db.admin = &Admin{db: db}
	if mapPath != "" && m.Version() == 1 {
		// Persist the initial map so a restart after splits-then-crash can
		// distinguish "fresh" from "file lost". Best-effort: a failure here
		// only costs the persisted default, which Open reconstructs anyway.
		m.Save(mapPath)
	}
	return db, nil
}

// RoutingMode selects how a client maps keys to replica groups.
type RoutingMode int

const (
	// RouteShardMap routes against the client's cached shard map, following
	// splits via redirect-refresh-retry. Default.
	RouteShardMap RoutingMode = iota
	// RouteStatic routes by static key hash modulo partitions, the
	// pre-sharding behaviour. Only valid on a DB provisioned with
	// MaxShards == 1 (with more, a split would strand the client: static
	// routing cannot follow the map).
	RouteStatic
)

// ClientOption configures a client or session built by DB.Client/DB.Session.
type ClientOption func(*clientOptions)

type clientOptions struct {
	window    int
	roDefault bool
	mode      RoutingMode
}

// WithPipeline sets the pipeline window: how many transactions the handle
// keeps in flight concurrently. DB.Session defaults to 4; DB.Client only
// accepts 1 (use DB.Session for pipelining — a Client is stop-and-wait by
// construction).
func WithPipeline(n int) ClientOption {
	return func(o *clientOptions) { o.window = n }
}

// WithReadOnlyDefault marks every transaction read-only at Begin, routing
// reads through the one-round snapshot fast path; a transaction that writes
// demotes itself transparently. For read-mostly clients it saves declaring
// Txn.ReadOnly in every body.
func WithReadOnlyDefault() ClientOption {
	return func(o *clientOptions) { o.roDefault = true }
}

// WithRoutingMode overrides the routing mode (default RouteShardMap).
func WithRoutingMode(m RoutingMode) ClientOption {
	return func(o *clientOptions) { o.mode = m }
}

// resolveOptions folds opts over the defaults and validates the combination
// against this DB's shape.
func (db *DB) resolveOptions(defWindow int, opts []ClientOption) (clientOptions, *shardmap.Cache, error) {
	o := clientOptions{window: defWindow}
	for _, opt := range opts {
		opt(&o)
	}
	if o.window < 1 {
		o.window = 1
	}
	switch o.mode {
	case RouteShardMap:
		return o, shardmap.NewCache(db.source), nil
	case RouteStatic:
		if len(db.own) != 1 {
			return o, nil, fmt.Errorf("meerkat: RouteStatic is only valid with MaxShards == 1 (have %d): static routing cannot follow shard splits", len(db.own))
		}
		return o, nil, nil
	default:
		return o, nil, fmt.Errorf("meerkat: unknown routing mode %d", o.mode)
	}
}

// Client returns a new single-transaction client. It routes by the shard map
// (its own private cache) unless WithRoutingMode says otherwise; it rejects
// WithPipeline windows above 1 — pipelining is DB.Session's job.
func (db *DB) Client(opts ...ClientOption) (*Client, error) {
	o, sm, err := db.resolveOptions(1, opts)
	if err != nil {
		return nil, err
	}
	if o.window > 1 {
		return nil, fmt.Errorf("meerkat: Client does not pipeline (window %d); use DB.Session", o.window)
	}
	return db.c.newClient(sm, o.roDefault)
}

// Session returns a pipelined client session (default window 4; set it with
// WithPipeline). All workers share one shard-map cache, so one worker's
// redirect re-routes the whole pipeline.
func (db *DB) Session(opts ...ClientOption) (*Session, error) {
	o, sm, err := db.resolveOptions(4, opts)
	if err != nil {
		return nil, err
	}
	return db.c.newSession(o.window, sm, o.roDefault)
}

// Load installs key=value on every replica of the key's owning shard,
// bypassing the transaction protocol — the sharded counterpart of
// Cluster.Load for pre-loading a database.
func (db *DB) Load(key string, value []byte) {
	db.c.loadPartition(db.source.Current().GroupForKey(key), key, value)
}

// Admin returns the DB's administrative facade: shard-map introspection,
// online resharding, fault injection, and per-shard lifecycle.
func (db *DB) Admin() *Admin { return db.admin }

// Cluster returns the underlying cluster, the escape hatch for tooling built
// against the pre-sharding API. Clients created via Cluster.NewClient route
// statically and will be redirected forever once a split moves their keys;
// prefer DB.Client.
func (db *DB) Cluster() *Cluster { return db.c }

// Close shuts the deployment down (see Cluster.Close). The shard map was
// persisted at each split, so no map state is lost.
func (db *DB) Close() { db.c.Close() }

// errNoIdleShard is returned by Admin.Split when every provisioned group
// already owns a range.
var errNoIdleShard = errors.New("meerkat: no idle shard group to split into; raise MaxShards")
