package meerkat_test

import (
	"fmt"
	"testing"

	"meerkat"
)

// newHotpathCluster builds a default single-partition cluster with nkeys
// pre-loaded keys and one client, for the end-to-end hot-path benchmarks.
func newHotpathCluster(tb testing.TB, nkeys int) (*meerkat.Cluster, *meerkat.Client, []string) {
	tb.Helper()
	cluster, err := meerkat.NewCluster(meerkat.Config{})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(cluster.Close)
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%08d", i)
		cluster.Load(keys[i], []byte("v"))
	}
	cl, err := cluster.NewClient()
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(cl.Close)
	return cluster, cl, keys
}

// BenchmarkCommitSinglePartition is the end-to-end commit hot path in its
// cheapest shape: one read, one write, single partition — so the validate
// phase runs inline with the coordinator's reusable timers and scratch.
// Allocation counts here gate the churn-free fan-out (see EXPERIMENTS.md).
func BenchmarkCommitSinglePartition(b *testing.B) {
	_, cl, keys := newHotpathCluster(b, 1)
	val := []byte("v2")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := cl.Begin()
		if _, err := txn.Read(keys[0]); err != nil {
			b.Fatal(err)
		}
		txn.Write(keys[0], val)
		if _, err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTxnTimeline10 is the Retwis get-timeline shape: a read-only
// transaction over ten keys, batched through ReadMany into one execution
// round trip.
func BenchmarkTxnTimeline10(b *testing.B) {
	_, cl, keys := newHotpathCluster(b, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := cl.Begin()
		if _, err := txn.ReadMany(keys); err != nil {
			b.Fatal(err)
		}
		if _, err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCommitSinglePartitionAllocGate pins the single-partition commit's
// allocation count, end to end (coordinator + transport + all three
// replicas' handler goroutines, since AllocsPerRun counts global mallocs).
// The pre-batching baseline was 39 allocs/op; the churn-free fan-out must
// stay at or below half that.
func TestCommitSinglePartitionAllocGate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; gate runs without -race")
	}
	_, cl, keys := newHotpathCluster(t, 1)
	val := []byte("v2")
	commit := func() {
		txn := cl.Begin()
		if _, err := txn.Read(keys[0]); err != nil {
			t.Fatal(err)
		}
		txn.Write(keys[0], val)
		if _, err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	commit() // warm the coordinator's reusable timers and scratch
	allocs := testing.AllocsPerRun(200, commit)
	if allocs > 19 {
		t.Fatalf("single-partition commit allocated %v objects/op, want <= 19 (baseline before de-churn: 39)", allocs)
	}
}

// BenchmarkCommitIncrement is the op-only commit shape: one server-side
// increment, no read round trip — the hot-counter pattern the commutative
// ops exist for.
func BenchmarkCommitIncrement(b *testing.B) {
	_, cl, keys := newHotpathCluster(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := cl.Begin()
		txn.Add(keys[0], 1)
		if _, err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCommitIncrementAllocGate pins the op-only commit's allocation count to
// the same ceiling as the read-modify-write gate: shipping the operation
// instead of read-version + blind write must not add hot-path churn (the op
// entries ride the same pooled messages and scratch buffers).
func TestCommitIncrementAllocGate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; gate runs without -race")
	}
	_, cl, keys := newHotpathCluster(t, 1)
	commit := func() {
		txn := cl.Begin()
		txn.Add(keys[0], 1)
		if _, err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	commit() // warm the coordinator's reusable timers and scratch
	allocs := testing.AllocsPerRun(200, commit)
	if allocs > 19 {
		t.Fatalf("op-only commit allocated %v objects/op, want <= 19 (same gate as the RMW commit)", allocs)
	}
}
