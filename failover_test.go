package meerkat

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"meerkat/internal/checker"
	"meerkat/internal/timestamp"
)

func TestCrashedReplicaTxnsContinue(t *testing.T) {
	// With one of three replicas down, the fast quorum (3) is unreachable
	// but the majority (2) is: every transaction takes the slow path and
	// still commits.
	c := newTestCluster(t, Config{CommitTimeout: 50 * time.Millisecond})
	cl := newTestClient(t, c)

	if err := cl.Put("before", []byte("1")); err != nil {
		t.Fatal(err)
	}
	c.CrashReplica(0, 2)

	for i := 0; i < 10; i++ {
		if err := cl.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatalf("put %d with crashed replica: %v", i, err)
		}
	}
	v, err := cl.GetStrong("k5")
	if err != nil || string(v) != "v" {
		t.Fatalf("get after crash: %q, %v", v, err)
	}
}

func TestMinorityCrashTolerated5Replicas(t *testing.T) {
	c := newTestCluster(t, Config{Replicas: 5, CommitTimeout: 50 * time.Millisecond})
	cl := newTestClient(t, c)
	c.CrashReplica(0, 1)
	c.CrashReplica(0, 3)
	for i := 0; i < 5; i++ {
		if err := cl.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatalf("put with 2/5 crashed: %v", err)
		}
	}
}

func TestReplicaRecoveryRestoresState(t *testing.T) {
	c := newTestCluster(t, Config{CommitTimeout: 50 * time.Millisecond})
	cl := newTestClient(t, c)

	for i := 0; i < 20; i++ {
		if err := cl.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.CrashReplica(0, 1)
	for i := 20; i < 40; i++ {
		if err := cl.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.RecoverReplica(0, 1); err != nil {
		t.Fatalf("RecoverReplica: %v", err)
	}

	// The recovered replica must hold all committed data, including what
	// committed while it was down.
	rep := c.replicaAt(0, 1)
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("k%d", i)
		v, ok := rep.Store().Read(key)
		if !ok {
			t.Fatalf("recovered replica missing %s", key)
		}
		if string(v.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("recovered replica has %s=%q", key, v.Value)
		}
	}

	// And the cluster keeps serving (fast path available again).
	for i := 40; i < 50; i++ {
		if err := cl.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatalf("put after recovery: %v", err)
		}
	}
}

func TestEpochChangeIdle(t *testing.T) {
	c := newTestCluster(t, Config{})
	cl := newTestClient(t, c)
	if err := cl.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := c.EpochChange(0); err != nil {
		t.Fatalf("EpochChange: %v", err)
	}
	// State survives; traffic resumes.
	v, err := cl.GetStrong("k")
	if err != nil || string(v) != "v1" {
		t.Fatalf("after epoch change: %q, %v", v, err)
	}
	if err := cl.Put("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if c.replicaAt(0, 0).Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", c.replicaAt(0, 0).Epoch())
	}
}

func TestEpochChangeUnderLoad(t *testing.T) {
	// Run epoch changes while clients hammer a counter: no lost updates
	// allowed even though validation pauses and in-flight transactions get
	// reconciled by the merge.
	c := newTestCluster(t, Config{Cores: 2, CommitTimeout: 50 * time.Millisecond})
	c.Load("ctr", []byte("0"))

	stop := make(chan struct{})
	var committed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		cl := newTestClient(t, c)
		wg.Add(1)
		go func(cl *Client) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ok, err := cl.RunTxn(1, func(txn *Txn) error {
					v, err := txn.Read("ctr")
					if err != nil {
						return err
					}
					n, _ := strconv.Atoi(string(v))
					txn.Write("ctr", []byte(strconv.Itoa(n+1)))
					return nil
				})
				if err == nil && ok {
					mu.Lock()
					committed++
					mu.Unlock()
				}
			}
		}(cl)
	}

	for e := 0; e < 3; e++ {
		time.Sleep(30 * time.Millisecond)
		if err := c.EpochChange(0); err != nil {
			t.Errorf("epoch change %d: %v", e, err)
		}
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()

	cl := newTestClient(t, c)
	v, err := cl.GetStrong("ctr")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := strconv.Atoi(string(v))
	mu.Lock()
	want := committed
	mu.Unlock()
	// The counter may exceed the client-visible commit count: an increment
	// whose commit decision raced the epoch change can be committed by the
	// merge after its client observed only a timeout. It must never be
	// below (that would be a lost update).
	if int64(n) < want {
		t.Fatalf("ctr = %d < %d committed increments (lost update)", n, want)
	}
	if want == 0 {
		t.Fatal("no increments committed during the run")
	}
}

func TestSerializabilityUnderMessageLoss(t *testing.T) {
	// 2% message loss, concurrent clients on a small hot keyspace, sweeper
	// enabled to finish orphaned transactions. The committed history must
	// be one-copy serializable in timestamp order.
	c := newTestCluster(t, Config{
		Cores:         2,
		DropProb:      0.02,
		Seed:          7,
		CommitTimeout: 20 * time.Millisecond,
		Retries:       20,
		SweepInterval: 25 * time.Millisecond,
		StaleAfter:    50 * time.Millisecond,
	})
	const keys = 5
	initial := make(map[string]timestamp.Timestamp, keys)
	loadTS := timestamp.Timestamp{Time: 1, ClientID: 0}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k%d", i)
		c.Load(k, []byte("0"))
		initial[k] = loadTS
	}

	hist := checker.New()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		cl := newTestClient(t, c)
		wg.Add(1)
		go func(cl *Client, seed int) {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				key := fmt.Sprintf("k%d", (seed+j)%keys)
				txn := cl.Begin()
				if _, err := txn.Read(key); err != nil {
					continue // timed out under loss; try next
				}
				txn.Write(key, []byte(fmt.Sprintf("c%d-%d", seed, j)))
				ok, err := txn.Commit()
				if err != nil || !ok {
					continue
				}
				hist.Add(checker.CommittedTxn{
					ID: txn.inner.ID(), TS: txn.inner.Timestamp(),
					ReadSet: txn.inner.ReadSet(), WriteSet: txn.inner.WriteSet(),
				})
			}
		}(cl, i)
	}
	wg.Wait()

	if hist.Len() == 0 {
		t.Fatal("nothing committed under message loss")
	}
	if dups := hist.CheckUniqueTimestamps(); dups != nil {
		t.Fatalf("duplicate commit timestamps: %v", dups)
	}
	if v := hist.Check(initial); v != nil {
		for _, violation := range v {
			t.Error(violation)
		}
	}
	t.Logf("committed %d transactions under 2%% loss", hist.Len())
}

func TestSerializabilityUnderCrashRecovery(t *testing.T) {
	c := newTestCluster(t, Config{
		Cores:         2,
		CommitTimeout: 30 * time.Millisecond,
		Retries:       20,
	})
	const keys = 5
	initial := make(map[string]timestamp.Timestamp, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k%d", i)
		c.Load(k, []byte("0"))
		initial[k] = timestamp.Timestamp{Time: 1, ClientID: 0}
	}

	hist := checker.New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		cl := newTestClient(t, c)
		wg.Add(1)
		go func(cl *Client, seed int) {
			defer wg.Done()
			j := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				j++
				key := fmt.Sprintf("k%d", (seed+j)%keys)
				txn := cl.Begin()
				if _, err := txn.Read(key); err != nil {
					continue
				}
				txn.Write(key, []byte(fmt.Sprintf("c%d-%d", seed, j)))
				if ok, err := txn.Commit(); err == nil && ok {
					hist.Add(checker.CommittedTxn{
						ID: txn.inner.ID(), TS: txn.inner.Timestamp(),
						ReadSet: txn.inner.ReadSet(), WriteSet: txn.inner.WriteSet(),
					})
				}
			}
		}(cl, i)
	}

	time.Sleep(50 * time.Millisecond)
	c.CrashReplica(0, 2)
	time.Sleep(50 * time.Millisecond)
	if err := c.RecoverReplica(0, 2); err != nil {
		t.Errorf("recover: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	if hist.Len() == 0 {
		t.Fatal("nothing committed across crash/recovery")
	}
	if v := hist.Check(initial); v != nil {
		for _, violation := range v {
			t.Error(violation)
		}
	}
	t.Logf("committed %d transactions across crash and recovery", hist.Len())
}

func TestSweeperFinishesOrphanedTxns(t *testing.T) {
	// Stop a client mid-protocol is hard from the public API, so approximate
	// a failed coordinator with heavy message loss and verify the sweeper
	// keeps the system live: after the noise, fresh transactions commit.
	c := newTestCluster(t, Config{
		Cores:         2,
		DropProb:      0.3,
		Seed:          11,
		CommitTimeout: 10 * time.Millisecond,
		Retries:       3,
		SweepInterval: 20 * time.Millisecond,
		StaleAfter:    40 * time.Millisecond,
	})
	c.Load("k", []byte("0"))
	cl := newTestClient(t, c)
	for i := 0; i < 30; i++ {
		txn := cl.Begin()
		if _, err := txn.Read("k"); err != nil {
			continue
		}
		txn.Write("k", []byte(strconv.Itoa(i)))
		txn.Commit() // outcome may be unknown; that's the point
	}

	// Let the sweeper finish stragglers (its retries ride out the loss).
	time.Sleep(200 * time.Millisecond)

	// Fresh clean cluster traffic must proceed.
	c2 := newTestCluster(t, Config{SweepInterval: 20 * time.Millisecond})
	cl2 := newTestClient(t, c2)
	if err := cl2.Put("fresh", []byte("v")); err != nil {
		t.Fatal(err)
	}
}
