// Failover: watch Meerkat's leaderless replication ride through a replica
// crash and recovery.
//
// With 3 replicas, the fast path needs all 3 (f + ceil(f/2) + 1 = 3 for
// f=1); after a crash the cluster keeps committing on the slow path (any 2
// of 3). Recovery restarts the replica without state, copies committed
// storage from a live peer, and runs the epoch change protocol (§5.3.1) so
// every in-flight transaction gets one consistent outcome.
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"time"

	"meerkat"
)

func main() {
	db, err := meerkat.Open(meerkat.Config{
		Cores:         2,
		CommitTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	db.Load("ctr", []byte("0"))

	client, err := db.Client()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Run retries conflicts with backoff and — key under failures — resolves
	// commits whose outcome timed out unknown through the recovery
	// procedure, so an increment is never silently doubled or dropped.
	ctx := context.Background()
	incr := func(times int) {
		for i := 0; i < times; i++ {
			err := client.Run(ctx, func(t *meerkat.Txn) error {
				v, err := t.Read("ctr")
				if err != nil {
					return err
				}
				n, _ := strconv.Atoi(string(v))
				t.Write("ctr", []byte(strconv.Itoa(n+1)))
				return nil
			})
			if err != nil {
				log.Fatalf("increment failed: %v", err)
			}
		}
	}

	read := func() int {
		v, err := client.GetStrong("ctr")
		if err != nil {
			log.Fatal(err)
		}
		n, _ := strconv.Atoi(string(v))
		return n
	}

	fmt.Println("healthy cluster: 20 increments (fast path, 1 round trip)")
	incr(20)
	fmt.Printf("  ctr = %d\n", read())

	fmt.Println("crashing replica 2 ...")
	db.Admin().CrashReplica(0, 2)
	start := time.Now()
	incr(20)
	fmt.Printf("  20 increments with 2/3 replicas (slow path) in %v, ctr = %d\n",
		time.Since(start).Round(time.Millisecond), read())

	fmt.Println("recovering replica 2 (state transfer + epoch change) ...")
	if err := db.Admin().RecoverReplica(0, 2); err != nil {
		log.Fatal(err)
	}
	incr(20)
	fmt.Printf("  back to full strength, ctr = %d\n", read())

	if got := read(); got != 60 {
		log.Fatalf("lost updates across failover: ctr = %d, want 60", got)
	}
	fmt.Println("no update lost across crash and recovery")
}
