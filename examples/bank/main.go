// Bank: concurrent balance transfers across a partitioned keyspace.
//
// The invariant — total money is conserved — only holds if transactions are
// serializable and multi-partition commits are atomic, so this example
// exercises both Meerkat's OCC validation and its distributed-transaction
// support (§5.2.4). Run it and watch the final audit.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"meerkat"
)

const (
	accounts       = 64
	initialBalance = 1000
	tellers        = 8
	transfersEach  = 200
)

func acct(i int) string { return fmt.Sprintf("acct-%03d", i) }

func main() {
	// Two shards: transfers routinely span both, so commits must be atomic
	// across replica groups. (Open replaces the old NewCluster+Partitions
	// pairing; each shard is an independent replica group behind the
	// versioned shard map.)
	db, err := meerkat.Open(meerkat.Config{Shards: 2, Cores: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < accounts; i++ {
		db.Load(acct(i), []byte(strconv.Itoa(initialBalance)))
	}

	// Each transfer runs through Client.Run: conflicts retry with backoff
	// until the transfer commits, so under a generous deadline the only way
	// a transfer fails is infrastructure trouble — and then the error
	// unwraps to a package sentinel (ErrTimeout, ErrClusterClosed).
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var committed, failed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for tlr := 0; tlr < tellers; tlr++ {
		client, err := db.Client()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(client *meerkat.Client, seed int64) {
			defer wg.Done()
			defer client.Close()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < transfersEach; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amount := 1 + rng.Intn(50)
				err := client.Run(ctx, func(t *meerkat.Txn) error {
					fv, err := t.Read(acct(from))
					if err != nil {
						return err
					}
					tv, err := t.Read(acct(to))
					if err != nil {
						return err
					}
					fb, _ := strconv.Atoi(string(fv))
					tb, _ := strconv.Atoi(string(tv))
					if fb < amount {
						return nil // insufficient funds: commit a no-op
					}
					t.Write(acct(from), []byte(strconv.Itoa(fb-amount)))
					t.Write(acct(to), []byte(strconv.Itoa(tb+amount)))
					return nil
				})
				mu.Lock()
				if err == nil {
					committed++
				} else {
					failed++
				}
				mu.Unlock()
			}
		}(client, int64(tlr))
	}
	wg.Wait()

	// Audit inside one transaction so the sum is a consistent snapshot.
	client, err := db.Client()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	total := 0
	err = client.Run(ctx, func(t *meerkat.Txn) error {
		total = 0
		for i := 0; i < accounts; i++ {
			v, err := t.Read(acct(i))
			if err != nil {
				return err
			}
			b, _ := strconv.Atoi(string(v))
			total += b
		}
		return nil
	})
	if err != nil {
		log.Fatalf("audit failed: %v", err)
	}

	fmt.Printf("transfers committed: %d, failed: %d\n", committed, failed)
	fmt.Printf("audit: total = %d (expected %d)\n", total, accounts*initialBalance)
	if total != accounts*initialBalance {
		log.Fatal("MONEY WAS CREATED OR DESTROYED — serializability violated")
	}
	fmt.Println("invariant holds: serializable, atomic across shards")
}
