// Retwis: a miniature Twitter clone on Meerkat — the workload the paper's
// evaluation models with Table 2. Users are created, follow each other,
// post tweets, and load their timelines, all as interactive serializable
// transactions over the replicated store.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"meerkat"
)

// Keys: user:<name> (profile), followers:<name> (comma list),
// tweets:<name> (count), tweet:<name>:<n> (body), timeline:<name>.

type app struct {
	cl  *meerkat.Client
	ctx context.Context
}

// addUser creates a profile (1 get + writes, the "Add User" transaction).
// Run retries conflicts; the duplicate-user error is fn's own, so it
// surfaces unretried.
func (a *app) addUser(name string) error {
	return a.cl.Run(a.ctx, func(t *meerkat.Txn) error {
		existing, err := t.Read("user:" + name)
		if err != nil {
			return err
		}
		if existing != nil {
			return fmt.Errorf("user %s already exists", name)
		}
		t.Write("user:"+name, []byte(`{"name":"`+name+`"}`))
		t.Write("followers:"+name, nil)
		t.Write("tweets:"+name, []byte("0"))
		return nil
	})
}

// follow adds follower to followee's follower list ("Follow/Unfollow").
func (a *app) follow(follower, followee string) error {
	return a.cl.Run(a.ctx, func(t *meerkat.Txn) error {
		lst, err := t.Read("followers:" + followee)
		if err != nil {
			return err
		}
		set := map[string]bool{}
		for _, f := range strings.Split(string(lst), ",") {
			if f != "" {
				set[f] = true
			}
		}
		if set[follower] {
			delete(set, follower) // unfollow toggles
		} else {
			set[follower] = true
		}
		var out []string
		for f := range set {
			out = append(out, f)
		}
		t.Write("followers:"+followee, []byte(strings.Join(out, ",")))
		return nil
	})
}

// post publishes a tweet and fans it out to followers' timelines
// ("Post Tweet": reads + several writes).
func (a *app) post(user, text string) error {
	return a.cl.Run(a.ctx, func(t *meerkat.Txn) error {
		cntRaw, err := t.Read("tweets:" + user)
		if err != nil {
			return err
		}
		cnt := 0
		fmt.Sscanf(string(cntRaw), "%d", &cnt)
		id := fmt.Sprintf("tweet:%s:%d", user, cnt)
		body, _ := json.Marshal(map[string]string{"user": user, "text": text})
		t.Write(id, body)
		t.Write("tweets:"+user, []byte(fmt.Sprintf("%d", cnt+1)))

		followersRaw, err := t.Read("followers:" + user)
		if err != nil {
			return err
		}
		for _, f := range strings.Split(string(followersRaw), ",") {
			if f == "" {
				continue
			}
			tl, err := t.Read("timeline:" + f)
			if err != nil {
				return err
			}
			entry := id
			if len(tl) > 0 {
				entry = string(tl) + "," + id
			}
			t.Write("timeline:"+f, []byte(entry))
		}
		return nil
	})
}

// timeline loads a user's timeline ("Load Timeline": 1–10 gets).
func (a *app) timeline(user string) ([]string, error) {
	var tweets []string
	err := a.cl.Run(a.ctx, func(t *meerkat.Txn) error {
		tweets = tweets[:0]
		tl, err := t.Read("timeline:" + user)
		if err != nil {
			return err
		}
		ids := strings.Split(string(tl), ",")
		if len(ids) > 10 {
			ids = ids[len(ids)-10:] // newest ten
		}
		for _, id := range ids {
			if id == "" {
				continue
			}
			body, err := t.Read(id)
			if err != nil {
				return err
			}
			var tw map[string]string
			if json.Unmarshal(body, &tw) == nil {
				tweets = append(tweets, fmt.Sprintf("@%s: %s", tw["user"], tw["text"]))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tweets, nil
}

func main() {
	// One shard serving, a second provisioned: MaxShards is the headroom a
	// live split (below) grows into.
	db, err := meerkat.Open(meerkat.Config{Cores: 2, Shards: 1, MaxShards: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	client, err := db.Client()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	a := &app{cl: client, ctx: context.Background()}

	users := []string{"ada", "grace", "barbara", "edsger"}
	for _, u := range users {
		if err := a.addUser(u); err != nil {
			log.Fatal(err)
		}
	}
	// Everyone follows ada; ada follows grace.
	for _, u := range users[1:] {
		if err := a.follow(u, "ada"); err != nil {
			log.Fatal(err)
		}
	}
	if err := a.follow("ada", "grace"); err != nil {
		log.Fatal(err)
	}

	// Grow the deployment online: move half the keyspace onto the idle
	// shard. Existing clients keep working — their first request for a moved
	// key is redirected, refreshes their cached shard map, and retries.
	if dst, err := db.Admin().Split(0); err != nil {
		log.Fatal(err)
	} else {
		m := db.Admin().ShardMap()
		fmt.Printf("split shard 0 -> %d live (map v%d, %d ranges)\n\n", dst, m.Version(), m.NumRanges())
	}

	rng := rand.New(rand.NewSource(1))
	lines := []string{
		"the analytical engine weaves algebraic patterns",
		"a bug is just a moth in the relay",
		"COBOL will outlive us all",
		"testing shows the presence, not the absence of bugs",
	}
	for i, u := range users {
		if err := a.post(u, lines[i%len(lines)]); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		u := users[rng.Intn(len(users))]
		if err := a.post(u, fmt.Sprintf("hot take #%d", i)); err != nil {
			log.Fatal(err)
		}
	}

	for _, u := range users {
		tl, err := a.timeline(u)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("timeline of %s (%d tweets):\n", u, len(tl))
		for _, line := range tl {
			fmt.Printf("  %s\n", line)
		}
	}
}
