// Quickstart: start an in-process 3-replica Meerkat cluster, run a few
// serializable transactions, and read the results back.
package main

import (
	"context"
	"fmt"
	"log"

	"meerkat"
)

func main() {
	// A zero-value Config gives a single-shard deployment of 3 replicas x
	// 4 cores on the in-process kernel-bypass-class transport. Open is the
	// sharding-aware entry point; clients it hands out route by the shard
	// map and follow splits automatically.
	db, err := meerkat.Open(meerkat.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	client, err := db.Client()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// A blind write.
	txn := client.Begin()
	txn.Write("greeting", []byte("hello, meerkat"))
	committed, err := txn.Commit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("write committed: %v\n", committed)

	// A read-modify-write through the canonical retry loop: Run re-executes
	// the body on optimistic-validation conflicts (with backoff) until a
	// transaction commits, and any error it returns unwraps to one of the
	// package sentinels (ErrConflict, ErrTimeout, ErrClusterClosed).
	err = client.Run(context.Background(), func(t *meerkat.Txn) error {
		v, err := t.Read("greeting")
		if err != nil {
			return err
		}
		t.Write("greeting", append(v, '!'))
		return nil
	})
	if err != nil {
		log.Fatalf("rmw: %v", err)
	}

	// A strong (transactionally validated) read.
	v, err := client.GetStrong("greeting")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greeting = %q\n", v)
}
