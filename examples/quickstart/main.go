// Quickstart: start an in-process 3-replica Meerkat cluster, run a few
// serializable transactions, and read the results back.
package main

import (
	"fmt"
	"log"

	"meerkat"
)

func main() {
	// A zero-value Config gives 3 replicas x 4 cores on the in-process
	// kernel-bypass-class transport.
	cluster, err := meerkat.NewCluster(meerkat.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// A blind write.
	txn := client.Begin()
	txn.Write("greeting", []byte("hello, meerkat"))
	committed, err := txn.Commit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("write committed: %v\n", committed)

	// A read-modify-write with optimistic retry: Commit returns false when
	// a conflicting transaction won, so retry until it sticks.
	ok, err := client.RunTxn(16, func(t *meerkat.Txn) error {
		v, err := t.Read("greeting")
		if err != nil {
			return err
		}
		t.Write("greeting", append(v, '!'))
		return nil
	})
	if err != nil || !ok {
		log.Fatalf("rmw: ok=%v err=%v", ok, err)
	}

	// A strong (transactionally validated) read.
	v, err := client.GetStrong("greeting")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greeting = %q\n", v)
}
