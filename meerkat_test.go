package meerkat

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"
)

func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.Cores == 0 {
		cfg.Cores = 2
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func newTestClient(t *testing.T, c *Cluster) *Client {
	t.Helper()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func TestCommitAndReadBack(t *testing.T) {
	c := newTestCluster(t, Config{})
	cl := newTestClient(t, c)

	txn := cl.Begin()
	txn.Write("k", []byte("v1"))
	committed, err := txn.Commit()
	if err != nil || !committed {
		t.Fatalf("commit = %v, %v", committed, err)
	}

	got, err := cl.GetStrong("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1" {
		t.Fatalf("Get = %q, want %q", got, "v1")
	}
}

func TestReadMissingKey(t *testing.T) {
	c := newTestCluster(t, Config{})
	cl := newTestClient(t, c)

	txn := cl.Begin()
	v, err := txn.Read("missing")
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("missing key read %q", v)
	}
	committed, err := txn.Commit()
	if err != nil || !committed {
		t.Fatalf("read-only txn on missing key: %v, %v", committed, err)
	}
}

func TestReadYourWrites(t *testing.T) {
	c := newTestCluster(t, Config{})
	cl := newTestClient(t, c)
	c.Load("k", []byte("old"))

	txn := cl.Begin()
	txn.Write("k", []byte("new"))
	v, err := txn.Read("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "new" {
		t.Fatalf("read-your-writes got %q", v)
	}
	if ok, err := txn.Commit(); !ok || err != nil {
		t.Fatalf("commit = %v, %v", ok, err)
	}
}

func TestRMWSequence(t *testing.T) {
	c := newTestCluster(t, Config{})
	cl := newTestClient(t, c)
	c.Load("ctr", []byte("0"))

	for i := 0; i < 20; i++ {
		ok, err := cl.RunTxn(8, func(txn *Txn) error {
			v, err := txn.Read("ctr")
			if err != nil {
				return err
			}
			n, _ := strconv.Atoi(string(v))
			txn.Write("ctr", []byte(strconv.Itoa(n+1)))
			return nil
		})
		if err != nil || !ok {
			t.Fatalf("iteration %d: %v, %v", i, ok, err)
		}
	}
	v, _ := cl.GetStrong("ctr")
	if string(v) != "20" {
		t.Fatalf("ctr = %q, want 20", v)
	}
}

func TestConflictingWritersSerialized(t *testing.T) {
	// Concurrent counter increments from many clients: the final value
	// must equal the number of committed increments (no lost updates).
	c := newTestCluster(t, Config{Cores: 4})
	c.Load("ctr", []byte("0"))

	const clients = 8
	const perClient = 25
	var committedTotal int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		cl := newTestClient(t, c)
		wg.Add(1)
		go func(cl *Client) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				ok, err := cl.RunTxn(50, func(txn *Txn) error {
					v, err := txn.Read("ctr")
					if err != nil {
						return err
					}
					n, _ := strconv.Atoi(string(v))
					txn.Write("ctr", []byte(strconv.Itoa(n+1)))
					return nil
				})
				if err != nil {
					t.Errorf("RunTxn: %v", err)
					return
				}
				if ok {
					mu.Lock()
					committedTotal++
					mu.Unlock()
				}
			}
		}(cl)
	}
	wg.Wait()

	cl := newTestClient(t, c)
	v, err := cl.GetStrong("ctr")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := strconv.Atoi(string(v))
	if int64(n) != committedTotal {
		t.Fatalf("ctr = %d, but %d increments committed (lost updates!)", n, committedTotal)
	}
	if n == 0 {
		t.Fatal("no increments committed at all")
	}
}

func TestReplicasConverge(t *testing.T) {
	c := newTestCluster(t, Config{})
	cl := newTestClient(t, c)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i%10)
		if err := cl.Put(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Commit messages are async; give them a moment to land everywhere.
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		var vals []string
		for r := 0; r < 3; r++ {
			rep := c.replicaAt(0, r)
			v, ok := rep.Store().Read(key)
			if !ok {
				t.Fatalf("replica %d missing key %s", r, key)
			}
			vals = append(vals, string(v.Value))
		}
		if vals[0] != vals[1] || vals[1] != vals[2] {
			t.Fatalf("replicas diverge on %s: %v", key, vals)
		}
	}
}

func TestWriteSkewPrevented(t *testing.T) {
	// Serializable isolation must prevent write skew: invariant a+b >= 0,
	// each txn checks the sum then decrements one of the two keys.
	c := newTestCluster(t, Config{Cores: 4})
	c.Load("a", []byte("50"))
	c.Load("b", []byte("50"))

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		cl := newTestClient(t, c)
		key := "a"
		if i%2 == 1 {
			key = "b"
		}
		wg.Add(1)
		go func(cl *Client, key string) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				cl.RunTxn(1, func(txn *Txn) error {
					av, err := txn.Read("a")
					if err != nil {
						return err
					}
					bv, err := txn.Read("b")
					if err != nil {
						return err
					}
					a, _ := strconv.Atoi(string(av))
					b, _ := strconv.Atoi(string(bv))
					if a+b >= 10 {
						cur := a
						if key == "b" {
							cur = b
						}
						txn.Write(key, []byte(strconv.Itoa(cur-10)))
					}
					return nil
				})
			}
		}(cl, key)
	}
	wg.Wait()

	cl := newTestClient(t, c)
	av, _ := cl.GetStrong("a")
	bv, _ := cl.GetStrong("b")
	a, _ := strconv.Atoi(string(av))
	b, _ := strconv.Atoi(string(bv))
	if a+b < 0 {
		t.Fatalf("write skew violated invariant: a=%d b=%d", a, b)
	}
}

func TestEmptyTxnCommits(t *testing.T) {
	c := newTestCluster(t, Config{})
	cl := newTestClient(t, c)
	txn := cl.Begin()
	ok, err := txn.Commit()
	if !ok || err != nil {
		t.Fatalf("empty txn: %v, %v", ok, err)
	}
}

func TestEvenReplicasRejected(t *testing.T) {
	if _, err := NewCluster(Config{Replicas: 4}); err == nil {
		t.Fatal("even replica count accepted")
	}
}

func TestSharedTRecordMode(t *testing.T) {
	// The TAPIR-like baseline must be just as correct, only slower.
	c := newTestCluster(t, Config{SharedTRecord: true, Cores: 2})
	cl := newTestClient(t, c)
	c.Load("ctr", []byte("0"))
	for i := 0; i < 10; i++ {
		ok, err := cl.RunTxn(8, func(txn *Txn) error {
			v, _ := txn.Read("ctr")
			n, _ := strconv.Atoi(string(v))
			txn.Write("ctr", []byte(strconv.Itoa(n+1)))
			return nil
		})
		if err != nil || !ok {
			t.Fatalf("iteration %d: %v, %v", i, ok, err)
		}
	}
	v, _ := cl.GetStrong("ctr")
	if string(v) != "10" {
		t.Fatalf("ctr = %q", v)
	}
}

func TestDisableFastPath(t *testing.T) {
	c := newTestCluster(t, Config{DisableFastPath: true})
	cl := newTestClient(t, c)
	if err := cl.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, _ := cl.GetStrong("k")
	if string(v) != "v" {
		t.Fatalf("got %q", v)
	}
}

func TestMultiPartitionTxn(t *testing.T) {
	c := newTestCluster(t, Config{Partitions: 3})
	cl := newTestClient(t, c)

	// Write a batch of keys that necessarily spans partitions.
	txn := cl.Begin()
	for i := 0; i < 12; i++ {
		txn.Write(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	ok, err := txn.Commit()
	if err != nil || !ok {
		t.Fatalf("multi-partition commit: %v, %v", ok, err)
	}
	for i := 0; i < 12; i++ {
		v, err := cl.GetStrong(fmt.Sprintf("key-%d", i))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key-%d = %q, %v", i, v, err)
		}
	}
}

func TestMultiPartitionAtomicity(t *testing.T) {
	// Transfer between keys in different partitions: the sum is invariant.
	c := newTestCluster(t, Config{Partitions: 2, Cores: 2})
	c.Load("acct-a", []byte("100"))
	c.Load("acct-b", []byte("100"))

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		cl := newTestClient(t, c)
		wg.Add(1)
		go func(cl *Client) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				cl.RunTxn(20, func(txn *Txn) error {
					av, err := txn.Read("acct-a")
					if err != nil {
						return err
					}
					bv, err := txn.Read("acct-b")
					if err != nil {
						return err
					}
					a, _ := strconv.Atoi(string(av))
					b, _ := strconv.Atoi(string(bv))
					txn.Write("acct-a", []byte(strconv.Itoa(a-1)))
					txn.Write("acct-b", []byte(strconv.Itoa(b+1)))
					return nil
				})
			}
		}(cl)
	}
	wg.Wait()

	// Audit inside a validated transaction. Note the assertion happens only
	// after the transaction commits: optimistic reads taken before
	// validation may legitimately observe a non-serializable snapshot,
	// which validation then rejects and retries.
	cl := newTestClient(t, c)
	var a, b int
	ok, err := cl.RunTxn(20, func(txn *Txn) error {
		av, err := txn.Read("acct-a")
		if err != nil {
			return err
		}
		bv, err := txn.Read("acct-b")
		if err != nil {
			return err
		}
		a, _ = strconv.Atoi(string(av))
		b, _ = strconv.Atoi(string(bv))
		return nil
	})
	if err != nil || !ok {
		t.Fatalf("check txn: %v, %v", ok, err)
	}
	if a+b != 200 {
		t.Fatalf("committed audit saw sum = %d, want 200 (a=%d b=%d)", a+b, a, b)
	}
}

func TestClockSkewDoesNotBreakCorrectness(t *testing.T) {
	// Meerkat requires synchronized clocks only for performance. With
	// wildly skewed client clocks, counters must still not lose updates.
	c := newTestCluster(t, Config{ClockSkew: 500 * time.Millisecond, Cores: 2})
	c.Load("ctr", []byte("0"))
	var committed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		cl := newTestClient(t, c)
		wg.Add(1)
		go func(cl *Client) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				ok, err := cl.RunTxn(30, func(txn *Txn) error {
					v, err := txn.Read("ctr")
					if err != nil {
						return err
					}
					n, _ := strconv.Atoi(string(v))
					txn.Write("ctr", []byte(strconv.Itoa(n+1)))
					return nil
				})
				if err == nil && ok {
					mu.Lock()
					committed++
					mu.Unlock()
				}
			}
		}(cl)
	}
	wg.Wait()
	cl := newTestClient(t, c)
	v, _ := cl.GetStrong("ctr")
	n, _ := strconv.Atoi(string(v))
	if int64(n) != committed {
		t.Fatalf("ctr = %d, committed = %d", n, committed)
	}
}
