package meerkat

import (
	"fmt"
	"testing"
	"time"

	"meerkat/internal/obs"
)

// TestReadOnlyFastPathZeroValidation is the tentpole's proof obligation: a
// read-only workload on the fast path must issue ZERO validation rounds. The
// obs counters are the witness — every RO commit shows up in txn_commit_ro,
// and the replicas' validate counters (and the classic commit-path counters)
// stay exactly at zero.
func TestReadOnlyFastPathZeroValidation(t *testing.T) {
	c := newTestCluster(t, Config{Partitions: 2, Cores: 2})
	for i := 0; i < 8; i++ {
		c.Load(fmt.Sprintf("k%d", i), []byte("v"))
	}
	cl := newTestClient(t, c)

	const n = 50
	for i := 0; i < n; i++ {
		txn := cl.Begin()
		txn.ReadOnly()
		// Mix single reads and batched reads across both partitions.
		if _, err := txn.Read(fmt.Sprintf("k%d", i%8)); err != nil {
			t.Fatal(err)
		}
		if _, err := txn.ReadMany([]string{"k0", "k3", "k6"}); err != nil {
			t.Fatal(err)
		}
		ok, err := txn.Commit()
		if err != nil || !ok {
			t.Fatalf("ro commit %d: ok=%v err=%v", i, ok, err)
		}
		if !txn.CommittedReadOnly() {
			t.Fatalf("txn %d did not take the read-only fast path", i)
		}
	}

	snap := c.Obs().Snapshot()
	if got := snap.Counters[obs.TxnCommitRO]; got != n {
		t.Errorf("txn_commit_ro = %d, want %d", got, n)
	}
	if v := snap.Counters[obs.ValidateOK] + snap.Counters[obs.ValidateAbort]; v != 0 {
		t.Errorf("replicas ran %d validations for a pure RO workload, want 0", v)
	}
	if v := snap.Counters[obs.TxnCommitFast] + snap.Counters[obs.TxnCommitSlow]; v != 0 {
		t.Errorf("%d transactions took the classic commit path, want 0", v)
	}
	if snap.Counters[obs.SnapshotRead] == 0 {
		t.Error("replicas served no snapshot reads")
	}
}

// TestReadOnlySeesCommittedWrites pins the semantics: a snapshot read-only
// transaction observes every transaction that committed before it began.
func TestReadOnlySeesCommittedWrites(t *testing.T) {
	c := newTestCluster(t, Config{})
	cl := newTestClient(t, c)
	for i := 0; i < 10; i++ {
		want := []byte(fmt.Sprintf("v%d", i))
		if err := cl.Put("k", want); err != nil {
			t.Fatal(err)
		}
		txn := cl.Begin()
		txn.ReadOnly()
		got, err := txn.Read("k")
		if err != nil {
			t.Fatal(err)
		}
		if ok, err := txn.Commit(); err != nil || !ok {
			t.Fatalf("ro commit: ok=%v err=%v", ok, err)
		}
		if string(got) != string(want) {
			t.Fatalf("round %d: snapshot read %q, want %q", i, got, want)
		}
	}
}

// TestReadOnlyDemotesOnWrite verifies the advisory nature of ReadOnly: a
// marked transaction that writes silently becomes a classic validated
// transaction, and its snapshot reads validate like any others.
func TestReadOnlyDemotesOnWrite(t *testing.T) {
	c := newTestCluster(t, Config{})
	c.Load("k", []byte("1"))
	cl := newTestClient(t, c)

	txn := cl.Begin()
	txn.ReadOnly()
	if _, err := txn.Read("k"); err != nil {
		t.Fatal(err)
	}
	txn.Write("k", []byte("2"))
	ok, err := txn.Commit()
	if err != nil || !ok {
		t.Fatalf("demoted commit: ok=%v err=%v", ok, err)
	}
	if txn.CommittedReadOnly() {
		t.Fatal("a writing transaction claims the read-only fast path")
	}
	v, err := cl.GetStrong("k")
	if err != nil || string(v) != "2" {
		t.Fatalf("after demoted commit: %q, %v", v, err)
	}
	snap := c.Obs().Snapshot()
	if v := snap.Counters[obs.ValidateOK]; v == 0 {
		t.Error("demoted transaction skipped validation")
	}
}

// TestReadOnlyFastPathDisabled checks the ablation knob: with
// DisableReadOnlyFastPath, ReadOnly is a no-op and everything commits
// through the validated path.
func TestReadOnlyFastPathDisabled(t *testing.T) {
	c := newTestCluster(t, Config{DisableReadOnlyFastPath: true})
	c.Load("k", []byte("v"))
	cl := newTestClient(t, c)

	txn := cl.Begin()
	txn.ReadOnly()
	if _, err := txn.Read("k"); err != nil {
		t.Fatal(err)
	}
	ok, err := txn.Commit()
	if err != nil || !ok {
		t.Fatalf("commit: ok=%v err=%v", ok, err)
	}
	if txn.CommittedReadOnly() {
		t.Fatal("fast path taken despite DisableReadOnlyFastPath")
	}
	snap := c.Obs().Snapshot()
	if snap.Counters[obs.TxnCommitRO] != 0 {
		t.Error("txn_commit_ro incremented under the ablation")
	}
	if snap.Counters[obs.TxnCommitFast]+snap.Counters[obs.TxnCommitSlow] == 0 {
		t.Error("no classic commit recorded")
	}
}

// TestEmptyTxnZeroMessages pins the empty-transaction short-circuit: a
// transaction that read and wrote nothing commits without a single message
// on the wire.
func TestEmptyTxnZeroMessages(t *testing.T) {
	c := newTestCluster(t, Config{})
	cl := newTestClient(t, c)
	// One Put settles any lazily-sent setup traffic before the measurement.
	if err := cl.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	before, _, _ := c.NetworkStats()
	txn := cl.Begin()
	ok, err := txn.Commit()
	if err != nil || !ok {
		t.Fatalf("empty commit: ok=%v err=%v", ok, err)
	}
	after, _, _ := c.NetworkStats()
	if after != before {
		t.Fatalf("empty transaction sent %d messages, want 0", after-before)
	}

	// An empty transaction MARKED read-only is equally free.
	before = after
	txn = cl.Begin()
	txn.ReadOnly()
	if ok, err := txn.Commit(); err != nil || !ok {
		t.Fatalf("empty ro commit: ok=%v err=%v", ok, err)
	}
	after, _, _ = c.NetworkStats()
	if after != before {
		t.Fatalf("empty read-only transaction sent %d messages, want 0", after-before)
	}
}

// TestGetStrongUsesSnapshotPath verifies the rerouted strong read: one
// snapshot round, counted as a read-only fast-path commit, no validation.
func TestGetStrongUsesSnapshotPath(t *testing.T) {
	c := newTestCluster(t, Config{})
	cl := newTestClient(t, c)
	if err := cl.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	base := c.Obs().Snapshot()
	for i := 0; i < 10; i++ {
		v, err := cl.GetStrong("k")
		if err != nil || string(v) != "v1" {
			t.Fatalf("get strong: %q, %v", v, err)
		}
	}
	snap := c.Obs().Snapshot()
	if got := snap.Counters[obs.TxnCommitRO] - base.Counters[obs.TxnCommitRO]; got != 10 {
		t.Errorf("txn_commit_ro advanced by %d, want 10", got)
	}
	if got := snap.Counters[obs.ValidateOK] - base.Counters[obs.ValidateOK]; got != 0 {
		t.Errorf("strong reads ran %d validations, want 0", got)
	}

	// A never-written key reads as nil without error.
	v, err := cl.GetStrong("missing")
	if err != nil || v != nil {
		t.Fatalf("missing key: %q, %v", v, err)
	}
}

// TestReadOnlyUnderWriteContention drives RO snapshot transactions while
// writers hammer the same keys, on a larger replica group (n=5, where the
// confirmation quorum of Replicas-ceil(f/2)=4 exceeds a bare majority).
// Every RO transaction must return a consistent pair: both keys are always
// written together, so a snapshot must never see the halves split.
func TestReadOnlyUnderWriteContention(t *testing.T) {
	c := newTestCluster(t, Config{Replicas: 5, Cores: 2, CommitTimeout: 50 * time.Millisecond})
	c.Load("a", []byte("0"))
	c.Load("b", []byte("0"))
	wcl := newTestClient(t, c)
	rcl := newTestClient(t, c)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= 60; i++ {
			v := []byte(fmt.Sprintf("%d", i))
			wcl.RunTxn(16, func(t *Txn) error {
				t.Write("a", v)
				t.Write("b", v)
				return nil
			})
		}
	}()

	for {
		select {
		case <-done:
			return
		default:
		}
		txn := rcl.Begin()
		txn.ReadOnly()
		vals, err := txn.ReadMany([]string{"a", "b"})
		if err != nil {
			t.Fatal(err)
		}
		if ok, err := txn.Commit(); err != nil || !ok {
			t.Fatalf("ro commit: ok=%v err=%v", ok, err)
		}
		if string(vals[0]) != string(vals[1]) {
			t.Fatalf("torn snapshot: a=%q b=%q", vals[0], vals[1])
		}
	}
}
