package meerkat

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"meerkat/internal/checker"
	"meerkat/internal/obs"
	"meerkat/internal/timestamp"
)

// stressConfig drives one randomized serializability stress run.
type stressConfig struct {
	cluster  Config
	clients  int
	txnsEach int
	keys     int
	// readOnlyFrac of transactions are pure reads; the rest are RMWs over
	// 1-3 keys.
	seed int64
	// ops mixes server-side increments into the traffic: roughly a third
	// of non-read-only transactions carry an Add on a random key alongside
	// their reads and writes, so the checker's value replay covers
	// commutative merges interleaved with plain OCC transactions.
	ops bool
	// roSnapshot routes the read-only transactions through the snapshot
	// fast path (Txn.ReadOnly): they commit with zero validation rounds
	// when confirmed and demote when not, and either way their reads join
	// the history for the checker to verify against the concurrent writes.
	roSnapshot bool
}

// runSerializabilityStress hammers the cluster with random multi-key
// transactions from concurrent clients and checks the committed history is
// one-copy serializable in timestamp order.
func runSerializabilityStress(t *testing.T, cfg stressConfig) (*checker.History, *Cluster) {
	t.Helper()
	c := newTestCluster(t, cfg.cluster)
	initial := make(map[string]timestamp.Timestamp, cfg.keys)
	loadTS := timestamp.Timestamp{Time: 1, ClientID: 0}
	for i := 0; i < cfg.keys; i++ {
		k := fmt.Sprintf("k%d", i)
		c.Load(k, []byte("0"))
		initial[k] = loadTS
	}

	hist := checker.New()
	for i := 0; i < cfg.keys; i++ {
		hist.SetInitialValue(fmt.Sprintf("k%d", i), []byte("0"))
	}
	var wg sync.WaitGroup
	for i := 0; i < cfg.clients; i++ {
		cl := newTestClient(t, c)
		wg.Add(1)
		go func(cl *Client, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < cfg.txnsEach; j++ {
				txn := cl.Begin()
				nKeys := 1 + rng.Intn(3)
				readOnly := rng.Intn(4) == 0
				if readOnly && cfg.roSnapshot {
					txn.ReadOnly()
				}
				ok := true
				seen := map[int]bool{}
				for k := 0; k < nKeys; k++ {
					ki := rng.Intn(cfg.keys)
					if seen[ki] {
						continue
					}
					seen[ki] = true
					key := fmt.Sprintf("k%d", ki)
					if _, err := txn.Read(key); err != nil {
						ok = false
						break
					}
					if !readOnly {
						txn.Write(key, []byte(fmt.Sprintf("c%d-%d", seed, j)))
					}
				}
				if !ok {
					continue
				}
				if cfg.ops && !readOnly && rng.Intn(3) == 0 {
					txn.Add(fmt.Sprintf("k%d", rng.Intn(cfg.keys)), 1)
				}
				if committed, err := txn.Commit(); err == nil && committed {
					hist.Add(checker.CommittedTxn{
						ID: txn.inner.ID(), TS: txn.inner.Timestamp(),
						ReadSet: txn.inner.ReadSet(), WriteSet: txn.inner.WriteSet(),
						OpSet:    txn.inner.OpSet(),
						ReadOnly: txn.CommittedReadOnly(),
					})
				}
			}
		}(cl, cfg.seed+int64(i))
	}
	wg.Wait()

	if hist.Len() == 0 {
		t.Fatal("nothing committed")
	}
	if dups := hist.CheckUniqueTimestamps(); dups != nil {
		t.Fatalf("duplicate commit timestamps: %v", dups)
	}
	if violations := hist.Check(initial); violations != nil {
		for _, v := range violations {
			t.Error(v)
		}
	}
	t.Logf("committed %d transactions", hist.Len())
	return hist, c
}

func TestSerializabilityMultiPartition(t *testing.T) {
	// Random multi-key transactions routinely span the three partitions;
	// the timestamp-order replay catches any fractured atomic commit.
	runSerializabilityStress(t, stressConfig{
		cluster:  Config{Partitions: 3, Cores: 2, CommitTimeout: 50 * time.Millisecond},
		clients:  6,
		txnsEach: 40,
		keys:     8,
		seed:     100,
	})
}

func TestSerializabilityUnderReordering(t *testing.T) {
	// Randomized per-message delays reorder deliveries; the protocol must
	// stay serializable (timestamps, not arrival order, decide).
	runSerializabilityStress(t, stressConfig{
		cluster: Config{
			Cores:         2,
			Delay:         500 * time.Microsecond, // base; jitter comes from scheduling
			CommitTimeout: 50 * time.Millisecond,
			Retries:       20,
		},
		clients:  6,
		txnsEach: 30,
		keys:     6,
		seed:     200,
	})
}

func TestSerializabilityHighContention(t *testing.T) {
	// Two keys, many writers: worst case for OCC. Lots of aborts are fine;
	// any serializability violation is not.
	hist, _ := runSerializabilityStress(t, stressConfig{
		cluster:  Config{Cores: 2, CommitTimeout: 50 * time.Millisecond},
		clients:  8,
		txnsEach: 50,
		keys:     2,
		seed:     300,
	})
	_ = hist
}

func TestSerializabilityMixedOps(t *testing.T) {
	// Commutative increments interleaved with plain RMWs and writes across
	// two partitions. The checker's value replay recomputes every merge in
	// timestamp order and verifies each read's value hash, so a merge that
	// rewrote a version some reader had already observed would be flagged.
	runSerializabilityStress(t, stressConfig{
		cluster:  Config{Partitions: 2, Cores: 2, CommitTimeout: 50 * time.Millisecond},
		clients:  6,
		txnsEach: 40,
		keys:     4,
		seed:     400,
		ops:      true,
	})
}

func TestSerializabilityReadOnlySnapshots(t *testing.T) {
	// Snapshot read-only transactions racing plain writes AND commutative
	// increments across two partitions. The dangerous interleavings are (a)
	// an RO snapshot straddling a prepared-but-undecided writer — the per-key
	// rts guard must either show the write or prevent it from committing at
	// or below the snapshot — and (b) an increment merging below a version an
	// RO transaction already read, which the checker's value replay catches
	// by hash. RO transactions that demote still land in the history as
	// validated reads, so every path is checked.
	hist, c := runSerializabilityStress(t, stressConfig{
		cluster:    Config{Partitions: 2, Cores: 2, CommitTimeout: 50 * time.Millisecond},
		clients:    8,
		txnsEach:   50,
		keys:       4,
		seed:       500,
		ops:        true,
		roSnapshot: true,
	})
	snap := c.Obs().Snapshot()
	if snap.Counters[obs.TxnCommitRO] == 0 {
		t.Fatal("no transaction committed on the read-only fast path; the stress exercised nothing")
	}
	t.Logf("ro commits %d, fallbacks %d, of %d total",
		snap.Counters[obs.TxnCommitRO], snap.Counters[obs.ROFallback], hist.Len())
}

func TestClientStats(t *testing.T) {
	c := newTestCluster(t, Config{})
	cl := newTestClient(t, c)
	for i := 0; i < 5; i++ {
		if err := cl.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	committed, _ := cl.Stats()
	if committed < 5 {
		t.Fatalf("committed = %d, want >= 5", committed)
	}
}
