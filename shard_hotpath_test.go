package meerkat_test

import (
	"fmt"
	"testing"

	"meerkat"
)

// newShardedHotpath opens a sharded DB and one shard-map-routing client with
// nkeys pre-loaded keys, for the sharded hot-path gates.
func newShardedHotpath(tb testing.TB, cfg meerkat.Config, nkeys int) (*meerkat.DB, *meerkat.Client, []string) {
	tb.Helper()
	db, err := meerkat.Open(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(db.Close)
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%08d", i)
		db.Load(keys[i], []byte("v"))
	}
	cl, err := db.Client()
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(cl.Close)
	return db, cl, keys
}

// TestShardedCommitAllocGate pins the sharded single-shard commit to the same
// allocation ceiling as the unsharded gate (TestCommitSinglePartitionAllocGate):
// shard-map routing is an atomic load, a hash, and a binary search — it must
// add zero hot-path allocations over static routing.
func TestShardedCommitAllocGate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation adds allocations; gate runs without -race")
	}
	_, cl, keys := newShardedHotpath(t, meerkat.Config{}, 1)
	val := []byte("v2")
	commit := func() {
		txn := cl.Begin()
		if _, err := txn.Read(keys[0]); err != nil {
			t.Fatal(err)
		}
		txn.Write(keys[0], val)
		if _, err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	commit() // warm the coordinator's reusable timers and scratch
	allocs := testing.AllocsPerRun(200, commit)
	if allocs > 19 {
		t.Fatalf("sharded single-shard commit allocated %v objects/op, want <= 19 (routing must be allocation-free)", allocs)
	}
}

// BenchmarkShardedCommitSingleShard is the sharded counterpart of
// BenchmarkCommitSinglePartition: identical traffic, routed by shard map.
func BenchmarkShardedCommitSingleShard(b *testing.B) {
	_, cl, keys := newShardedHotpath(b, meerkat.Config{}, 1)
	val := []byte("v2")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := cl.Begin()
		if _, err := txn.Read(keys[0]); err != nil {
			b.Fatal(err)
		}
		txn.Write(keys[0], val)
		if _, err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
