package meerkat

import (
	"fmt"
	"strconv"
	"testing"
	"time"
)

func TestUDPTransportCluster(t *testing.T) {
	// The full protocol over real loopback UDP sockets: serialization,
	// kernel stack, and all.
	c, err := NewCluster(Config{
		Transport:   TransportUDP,
		UDPBasePort: 27500,
		Cores:       2,
	})
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer c.Close()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Put("k", []byte("over-udp")); err != nil {
		t.Fatal(err)
	}
	v, err := cl.GetStrong("k")
	if err != nil || string(v) != "over-udp" {
		t.Fatalf("get: %q, %v", v, err)
	}

	// A short RMW sequence exercises validation over the lossy-capable
	// stack too.
	c.Load("ctr", []byte("0"))
	for i := 0; i < 5; i++ {
		ok, err := cl.RunTxn(16, func(txn *Txn) error {
			v, err := txn.Read("ctr")
			if err != nil {
				return err
			}
			n, _ := strconv.Atoi(string(v))
			txn.Write("ctr", []byte(strconv.Itoa(n+1)))
			return nil
		})
		if err != nil || !ok {
			t.Fatalf("rmw %d over udp: %v %v", i, ok, err)
		}
	}
	v, _ = cl.GetStrong("ctr")
	if string(v) != "5" {
		t.Fatalf("ctr = %q", v)
	}
}

func TestEpochChangeCompaction(t *testing.T) {
	c := newTestCluster(t, Config{CompactOnEpochChange: true})
	cl := newTestClient(t, c)
	for i := 0; i < 30; i++ {
		if err := cl.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Let async commits land so records are final before the checkpoint.
	time.Sleep(50 * time.Millisecond)
	before := c.replicaAt(0, 0).Records()
	if before == 0 {
		t.Fatal("no records accumulated")
	}
	if err := c.EpochChange(0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	after := c.replicaAt(0, 0).Records()
	if after >= before {
		t.Fatalf("compaction did not trim: %d -> %d records", before, after)
	}
	// The data survives trimming, and the cluster keeps serving.
	v, err := cl.GetStrong("k7")
	if err != nil || string(v) != "v" {
		t.Fatalf("read after compaction: %q, %v", v, err)
	}
	if err := cl.Put("fresh", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestRecordsAccumulateWithoutCompaction(t *testing.T) {
	c := newTestCluster(t, Config{})
	cl := newTestClient(t, c)
	for i := 0; i < 10; i++ {
		if err := cl.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(30 * time.Millisecond)
	if got := c.replicaAt(0, 0).Records(); got != 10 {
		t.Fatalf("records = %d, want 10", got)
	}
}
