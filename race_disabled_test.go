//go:build !race

package meerkat_test

// raceEnabled reports whether the race detector is on; see race_enabled_test.go.
const raceEnabled = false
