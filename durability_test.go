package meerkat

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"meerkat/internal/message"
	"meerkat/internal/timestamp"
	"meerkat/internal/wal"
)

// durableConfig is the base cluster config for durability tests: small core
// count, fast group commit, snapshots driven explicitly by the tests.
func durableConfig(dir string) Config {
	return Config{
		Cores:         2,
		CommitTimeout: 50 * time.Millisecond,
		Durability: Durability{
			DataDir:             dir,
			GroupCommitInterval: time.Millisecond,
			SnapshotInterval:    -1, // tests call Snapshot explicitly
		},
	}
}

func dkey(i int) string { return fmt.Sprintf("dk%03d", i) }
func dval(i int) []byte { return []byte(fmt.Sprintf("dv%03d", i)) }

// TestDurableCrashRecoveryEquivalence is the acceptance-criteria test: a
// cluster with durability enabled survives CrashReplica (a process-level
// crash that abandons unflushed log buffers) → reopen from disk → delta
// state transfer → epoch change with zero committed-transaction loss, and
// the recovered replica's store is exactly equal to a replica that never
// crashed.
func TestDurableCrashRecoveryEquivalence(t *testing.T) {
	c := newTestCluster(t, durableConfig(t.TempDir()))
	cl := newTestClient(t, c)

	for i := 0; i < 30; i++ {
		if err := cl.Put(dkey(i), dval(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	c.CrashReplica(0, 1)
	// Commits during the outage take the slow path (majority 2/3) and the
	// crashed replica must learn them all during recovery.
	for i := 30; i < 60; i++ {
		if err := cl.Put(dkey(i), dval(i)); err != nil {
			t.Fatalf("put %d with replica down: %v", i, err)
		}
	}
	if err := c.RecoverReplica(0, 1); err != nil {
		t.Fatalf("RecoverReplica: %v", err)
	}
	for i := 60; i < 70; i++ {
		if err := cl.Put(dkey(i), dval(i)); err != nil {
			t.Fatalf("put %d after recovery: %v", i, err)
		}
	}
	// The commit fan-out is asynchronous; an epoch change finalizes every
	// in-flight transaction on every replica so stores are comparable.
	if err := c.EpochChange(0); err != nil {
		t.Fatalf("EpochChange: %v", err)
	}
	time.Sleep(50 * time.Millisecond)

	healthy := c.replicaAt(0, 0).Store()
	recovered := c.replicaAt(0, 1).Store()
	for i := 0; i < 70; i++ {
		k := dkey(i)
		// Zero loss: every acknowledged Put is present on the recovered
		// replica with its committed value.
		rv, ok := recovered.Read(k)
		if !ok || string(rv.Value) != string(dval(i)) {
			t.Fatalf("recovered replica lost %s: %q ok=%v, want %q", k, rv.Value, ok, dval(i))
		}
		// Equivalence: identical to the never-crashed replica, version
		// timestamp included.
		hv, ok := healthy.Read(k)
		if !ok || string(hv.Value) != string(rv.Value) || hv.WTS != rv.WTS {
			t.Fatalf("divergence on %s: healthy %q@%v (ok=%v), recovered %q@%v",
				k, hv.Value, hv.WTS, ok, rv.Value, rv.WTS)
		}
	}

	if s, ok := c.WALStats(); !ok || s.Appends == 0 {
		t.Fatalf("WALStats = %+v ok=%v, want appends > 0", s, ok)
	}
}

// TestDurableFullClusterRestart closes a durable cluster gracefully and
// reopens the same data directory: every committed write and every preloaded
// key must come back, with no surviving donor to copy from.
func TestDurableFullClusterRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)

	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Load("preloaded", []byte("pl"))
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := cl.Put(dkey(i), dval(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	cl.Close()
	c.Close() // graceful: flushes and fsyncs every core's log

	c2, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer c2.Close()
	cl2, err := c2.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	for i := 0; i < 25; i++ {
		v, err := cl2.GetStrong(dkey(i))
		if err != nil || string(v) != string(dval(i)) {
			t.Fatalf("after restart %s = %q, %v; want %q", dkey(i), v, err, dval(i))
		}
	}
	if v, err := cl2.GetStrong("preloaded"); err != nil || string(v) != "pl" {
		t.Fatalf("preloaded key after restart = %q, %v", v, err)
	}
}

// TestDurableSnapshotRestart snapshots every replica mid-run (truncating the
// logs), keeps committing, restarts the whole cluster, and verifies both the
// pre- and post-snapshot writes come back.
func TestDurableSnapshotRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)

	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		if err := cl.Put(dkey(i), dval(i)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond) // let async commit fan-out apply
	for r := 0; r < cfg.Replicas; r++ {
		rep := c.replicaAt(0, r)
		if err := rep.WAL().Snapshot(rep.Store()); err != nil {
			t.Fatalf("snapshot replica %d: %v", r, err)
		}
	}
	for i := 15; i < 30; i++ {
		if err := cl.Put(dkey(i), dval(i)); err != nil {
			t.Fatal(err)
		}
	}
	cl.Close()
	c.Close()

	c2, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("reopen after snapshot: %v", err)
	}
	defer c2.Close()
	cl2, err := c2.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	for i := 0; i < 30; i++ {
		v, err := cl2.GetStrong(dkey(i))
		if err != nil || string(v) != string(dval(i)) {
			t.Fatalf("after snapshot+restart %s = %q, %v; want %q", dkey(i), v, err, dval(i))
		}
	}
}

// TestDurableBootReconcile pins the whole-cluster-restart reconciliation:
// after a non-graceful crash under SyncBatch each replica loses a different
// unfsynced log suffix, so the replayed stores diverge. NewCluster must
// union-merge the group's stores before serving traffic, or single-replica
// reads would return inconsistent values for acknowledged writes. The test
// constructs the divergent directories directly — each replica's log holds a
// common record plus one record only it retained.
func TestDurableBootReconcile(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	tsAt := func(n int64) timestamp.Timestamp { return timestamp.Timestamp{Time: n, ClientID: 1} }
	for r := 0; r < cfg.Replicas; r++ {
		w, _, err := wal.Open(filepath.Join(dir, fmt.Sprintf("p0-r%d", r)), cfg.Cores, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		common := message.Txn{
			ID:       timestamp.TxnID{Seq: 1, ClientID: 1},
			WriteSet: []message.WriteSetEntry{{Key: "common", Value: []byte("c")}},
		}
		w.Log(0).AppendCommit(&common, tsAt(50))
		only := message.Txn{
			ID:       timestamp.TxnID{Seq: uint64(10 + r), ClientID: 1},
			WriteSet: []message.WriteSetEntry{{Key: fmt.Sprintf("only%d", r), Value: []byte("v")}},
		}
		w.Log(0).AppendCommit(&only, tsAt(int64(100+r)))
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}

	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for r := 0; r < cfg.Replicas; r++ {
		store := c.replicaAt(0, r).Store()
		for _, key := range []string{"common", "only0", "only1", "only2"} {
			if v, ok := store.Read(key); !ok || len(v.Value) == 0 {
				t.Fatalf("replica %d missing %q after boot reconcile (ok=%v)", r, key, ok)
			}
		}
	}
}

// TestDurableOldTimestampDelta pins the wall-clock delta axis: a commit
// applied on the donors during the outage with a timestamp far older than
// any TS margin (the sweeper/backup-coordinator case — finalization long
// after timestamp assignment) must still reach the recovering replica, or it
// would permanently serve stale data for that key.
func TestDurableOldTimestampDelta(t *testing.T) {
	c := newTestCluster(t, durableConfig(t.TempDir()))
	cl := newTestClient(t, c)

	for i := 0; i < 20; i++ {
		if err := cl.Put(dkey(i), dval(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Let the group commit fsync so the crashed replica replays a recent
	// watermark (forcing the TS delta filter to actually filter).
	time.Sleep(20 * time.Millisecond)
	c.CrashReplica(0, 1)

	// During the outage, the live replicas apply a commit whose timestamp is
	// an hour old — far beyond DeltaMargin, so the TS filter alone would
	// never ship it.
	oldTS := timestamp.Timestamp{Time: time.Now().Add(-time.Hour).UnixNano(), ClientID: 99}
	for _, r := range []int{0, 2} {
		c.replicaAt(0, r).Store().CommitWrite("stale-sweep", []byte("late"), oldTS)
	}

	if err := c.RecoverReplica(0, 1); err != nil {
		t.Fatalf("RecoverReplica: %v", err)
	}
	v, ok := c.replicaAt(0, 1).Store().Read("stale-sweep")
	if !ok || string(v.Value) != "late" || v.WTS != oldTS {
		t.Fatalf("recovered replica has stale-sweep = %q@%v ok=%v, want %q@%v",
			v.Value, v.WTS, ok, "late", oldTS)
	}
}

// TestDurableSyncPolicies smoke-tests each sync policy end to end.
func TestDurableSyncPolicies(t *testing.T) {
	for _, sync := range []SyncPolicy{SyncNone, SyncBatch, SyncAlways} {
		t.Run(sync.String(), func(t *testing.T) {
			dir := t.TempDir()
			cfg := durableConfig(dir)
			cfg.Durability.Sync = sync
			c, err := NewCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cl, err := c.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				if err := cl.Put(dkey(i), dval(i)); err != nil {
					t.Fatal(err)
				}
			}
			cl.Close()
			c.Close()

			c2, err := NewCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c2.Close()
			cl2, err := c2.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			defer cl2.Close()
			for i := 0; i < 8; i++ {
				v, err := cl2.GetStrong(dkey(i))
				if err != nil || string(v) != string(dval(i)) {
					t.Fatalf("%v restart: %s = %q, %v", sync, dkey(i), v, err)
				}
			}
		})
	}
}
