package meerkat

import (
	"errors"
	"fmt"

	"meerkat/internal/coordinator"
	"meerkat/internal/transport"
)

// Sentinel errors of the public API. Every error returned by Txn.Commit,
// Client.Run, Put, and GetStrong unwraps (errors.Is) to exactly one of
// these, so callers branch on kind instead of matching message strings.
var (
	// ErrConflict means optimistic validation lost to a conflicting
	// transaction. The transaction had no effect; retrying it (Client.Run
	// does this automatically, with backoff) usually succeeds.
	ErrConflict = errors.New("meerkat: transaction conflict")

	// ErrTimeout means the protocol could not assemble the quorums it
	// needed — within the retry budget, or before the caller's context
	// expired (the context's error is wrapped alongside, so
	// errors.Is(err, context.DeadlineExceeded) also works). After a
	// timed-out Commit the outcome is UNKNOWN: the writes may yet commit.
	// Txn.Resolve learns the final outcome.
	ErrTimeout = errors.New("meerkat: timed out, outcome unknown")

	// ErrClusterClosed means the cluster (or this client's endpoints) has
	// been shut down; no retry can succeed.
	ErrClusterClosed = errors.New("meerkat: cluster closed")

	// ErrPortMap means a TransportUDP configuration cannot fit the UDP
	// port map: node-id slot ranges collide (e.g. too many
	// partition×replica nodes reaching into the recovery-coordinator
	// slots) or the highest address overflows the 16-bit port space.
	// Returned by Config.Validate / NewCluster before any socket binds.
	ErrPortMap = errors.New("meerkat: UDP port map invalid")

	// ErrWrongShard means a request reached a replica group that does not
	// own the key under the cluster's current shard map. The operation had
	// no effect. Client.Run handles this internally — it refreshes the
	// client's cached map and re-routes — so callers see it only from bare
	// operations (Get, a direct Commit) issued while a shard split is
	// moving the key's range.
	ErrWrongShard = errors.New("meerkat: wrong shard for key")

	// ErrStaleShardMap is the client-side cause behind ErrWrongShard: the
	// client routed with a shard map older than the cluster's. Errors
	// carrying it unwrap to ErrWrongShard too, so callers may branch on
	// either. Retrying (after the automatic cache refresh) re-routes
	// correctly once the new map is published.
	ErrStaleShardMap = fmt.Errorf("%w: shard map is stale", ErrWrongShard)
)

// mapErr translates internal protocol errors into the public sentinels.
// Errors already carrying a sentinel (or foreign errors like ErrTxnAborted
// and fn-supplied errors) pass through unchanged.
func mapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrConflict), errors.Is(err, ErrTimeout), errors.Is(err, ErrClusterClosed):
		return err
	case errors.Is(err, coordinator.ErrWrongShard):
		// Unwraps to ErrStaleShardMap, ErrWrongShard, and the internal
		// sentinel. Checked before ErrTimeout: a wrong-shard abort is a
		// known outcome, never outcome-unknown.
		return fmt.Errorf("%w: %w", ErrStaleShardMap, err)
	case errors.Is(err, coordinator.ErrTimeout):
		// Multi-%w: the result unwraps to ErrTimeout and to whatever the
		// internal error carries (e.g. context.DeadlineExceeded).
		return fmt.Errorf("%w: %w", ErrTimeout, err)
	case errors.Is(err, transport.ErrClosed):
		return fmt.Errorf("%w: %w", ErrClusterClosed, err)
	default:
		return err
	}
}
