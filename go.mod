module meerkat

go 1.22
