package meerkat

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"
)

// driveSession runs every session worker concurrently, each incrementing one
// shared counter key `perWorker` times through the full retry loop, then
// checks the counter's final value. With all workers demultiplexed over one
// socket set, a routing bug (a reply delivered to the wrong worker) shows up
// as a lost or doubled increment, or a worker stuck on a foreign reply.
func driveSession(t *testing.T, c *Cluster, s *Session, perWorker int) {
	t.Helper()
	c.Load("counter", []byte("0"))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errs := make([]error, s.Window())
	for i, cl := range s.Clients() {
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				err := cl.Run(ctx, func(txn *Txn) error {
					cur, err := txn.Read("counter")
					if err != nil {
						return err
					}
					n, _ := strconv.Atoi(string(cur))
					txn.Write("counter", []byte(strconv.Itoa(n+1)))
					return nil
				})
				if err != nil {
					errs[i] = err
					return
				}
			}
		}(i, cl)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	reader, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	val, err := reader.GetStrong("counter")
	if err != nil {
		t.Fatal(err)
	}
	want := s.Window() * perWorker
	if got, _ := strconv.Atoi(string(val)); got != want {
		t.Fatalf("counter = %d after %d workers x %d increments, want %d", got, s.Window(), perWorker, want)
	}
	committed, _ := s.Stats()
	if committed < uint64(want) {
		t.Fatalf("session stats report %d commits, want >= %d", committed, want)
	}
}

func TestSessionPipelinedIncrements(t *testing.T) {
	c, err := NewCluster(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.NewSession(4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Window() != 4 || len(s.Clients()) != 4 {
		t.Fatalf("window = %d, clients = %d, want 4", s.Window(), len(s.Clients()))
	}
	driveSession(t, c, s, 25)
}

func TestSessionPipelinedIncrementsUDP(t *testing.T) {
	c, err := NewCluster(Config{Transport: TransportUDP, UDPBasePort: 23000})
	if err != nil {
		t.Skipf("cannot start UDP cluster: %v", err)
	}
	defer c.Close()
	s, err := c.NewSession(4)
	if err != nil {
		t.Skipf("cannot bind session sockets: %v", err)
	}
	defer s.Close()
	driveSession(t, c, s, 10)
}

func TestSessionWindowClamp(t *testing.T) {
	c, err := NewCluster(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Zero and negative clamp up to a one-worker session.
	s, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Window() != 1 {
		t.Fatalf("window = %d, want 1", s.Window())
	}
	s.Close()
	// Absurd windows are rejected, not clamped down silently.
	if _, err := c.NewSession(1 << 20); err == nil {
		t.Fatal("oversized window accepted")
	}
}

func TestConfigUDPPortMapValidation(t *testing.T) {
	// 65 partitions x 3 replicas pushes replica node ids into the
	// recovery-coordinator slot range.
	cfg := Config{Transport: TransportUDP, Partitions: 65}
	if err := cfg.Validate(); !errors.Is(err, ErrPortMap) {
		t.Fatalf("Validate = %v, want ErrPortMap", err)
	}
	// A client budget that overflows the 16-bit port space.
	cfg = Config{Transport: TransportUDP, UDPMaxClients: 10000}
	if err := cfg.Validate(); !errors.Is(err, ErrPortMap) {
		t.Fatalf("Validate = %v, want ErrPortMap", err)
	}
	// The defaults fit.
	cfg = Config{Transport: TransportUDP}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default UDP config rejected: %v", err)
	}
}
