// Command meerkat-client talks to a meerkat-server cluster over real UDP:
// single gets/puts, read-modify-write transactions, or a small closed-loop
// benchmark.
//
//	meerkat-client -op put -key hello -value world
//	meerkat-client -op get -key hello
//	meerkat-client -op incr -key counter
//	meerkat-client -op bench -duration 5s
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"meerkat/internal/clock"
	"meerkat/internal/coordinator"
	"meerkat/internal/topo"
	"meerkat/internal/transport"
	"meerkat/internal/workload"
)

func main() {
	var (
		host       = flag.String("host", "127.0.0.1", "cluster address")
		port       = flag.Int("port", 29000, "base UDP port of the address map")
		replicas   = flag.Int("replicas", 3, "replicas per partition group")
		partitions = flag.Int("partitions", 1, "number of partitions")
		cores      = flag.Int("cores", 4, "server threads per replica")
		clientID   = flag.Uint64("id", uint64(os.Getpid()), "unique client id")
		op         = flag.String("op", "get", "operation: get|mget|put|incr|bench")
		key        = flag.String("key", "", "key (for mget: comma-separated keys)")
		value      = flag.String("value", "", "value (put)")
		duration   = flag.Duration("duration", 3*time.Second, "bench duration")
		benchKeys  = flag.Int("bench-keys", 1024, "bench keyspace (pre-load with meerkat-server -keys)")
	)
	flag.Parse()

	t := topo.Topology{Partitions: *partitions, Replicas: *replicas, Cores: *cores}
	coresPerNode := *cores
	if coresPerNode < 2+*partitions {
		coresPerNode = 2 + *partitions
	}
	net := transport.NewUDP(*host, *port, coresPerNode)
	defer net.Close()

	coord, err := coordinator.New(coordinator.Config{
		Topo:     t,
		ClientID: *clientID,
		Net:      net,
		Clock:    clock.NewReal(),
		Timeout:  200 * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer coord.Close()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch *op {
	case "get":
		val, ver, ok, err := coord.Read(*key)
		if err != nil {
			fail(err)
		}
		if !ok {
			fmt.Printf("%s: (not found)\n", *key)
			return
		}
		fmt.Printf("%s = %q (version %v)\n", *key, val, ver)

	case "mget":
		keys := strings.Split(*key, ",")
		res, err := coord.ReadMany(keys)
		if err != nil {
			fail(err)
		}
		for i, k := range keys {
			if !res[i].OK {
				fmt.Printf("%s: (not found)\n", k)
				continue
			}
			fmt.Printf("%s = %q (version %v)\n", k, res[i].Value, res[i].WTS)
		}

	case "put":
		txn := coord.Begin()
		txn.Write(*key, []byte(*value))
		committed, err := txn.Commit()
		if err != nil {
			fail(err)
		}
		fmt.Printf("put %s: committed=%v\n", *key, committed)

	case "incr":
		// The coordinator's Run loop retries contention with backoff and
		// resolves unknown-outcome commits; the deadline bounds the whole
		// retry loop over real UDP.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		var n int
		if err := coord.Run(ctx, func(txn *coordinator.Txn) error {
			cur, err := txn.ReadCtx(ctx, *key)
			if err != nil {
				return err
			}
			n, _ = strconv.Atoi(string(cur))
			txn.Write(*key, []byte(strconv.Itoa(n+1)))
			return nil
		}); err != nil {
			fail(fmt.Errorf("incr: %w", err))
		}
		fmt.Printf("%s = %d\n", *key, n+1)

	case "bench":
		gen := workload.NewYCSBT(workload.NewUniform(*benchKeys))
		rng := newRng(*clientID)
		val := workload.Value(64)
		var committed, aborted uint64
		deadline := time.Now().Add(*duration)
		for time.Now().Before(deadline) {
			spec := gen.Next(rng)
			txn := coord.Begin()
			bad := false
			for _, k := range spec.RMWs {
				if _, err := txn.Read(k); err != nil {
					bad = true
					break
				}
				txn.Write(k, val)
			}
			if bad {
				continue
			}
			ok, err := txn.Commit()
			switch {
			case err != nil:
			case ok:
				committed++
			default:
				aborted++
			}
		}
		secs := duration.Seconds()
		fmt.Printf("committed %d (%.0f txns/sec), aborted %d (%.1f%%)\n",
			committed, float64(committed)/secs, aborted,
			100*float64(aborted)/float64(committed+aborted+1))

	default:
		fail(fmt.Errorf("unknown op %q", *op))
	}
}

// newRng seeds per-client randomness from the client id.
func newRng(id uint64) *rand.Rand { return rand.New(rand.NewSource(int64(id) + 1)) }
