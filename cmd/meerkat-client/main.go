// Command meerkat-client talks to a meerkat-server cluster over real UDP:
// single gets/puts, read-modify-write transactions, or a small closed-loop
// benchmark.
//
//	meerkat-client -op put -key hello -value world
//	meerkat-client -op get -key hello
//	meerkat-client -op incr -key counter          (server-side commutative Add)
//	meerkat-client -op append -key log -value x   (server-side commutative Append)
//	meerkat-client -op bench -duration 5s
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"meerkat/internal/clock"
	"meerkat/internal/coordinator"
	"meerkat/internal/shardmap"
	"meerkat/internal/topo"
	"meerkat/internal/transport"
	"meerkat/internal/workload"
)

func main() {
	var (
		host       = flag.String("host", "127.0.0.1", "cluster address")
		port       = flag.Int("port", 29000, "base UDP port of the address map")
		replicas   = flag.Int("replicas", 3, "replicas per partition group")
		partitions = flag.Int("partitions", 1, "number of partitions (deprecated static routing; prefer -shards)")
		shards     = flag.Int("shards", 0, "route by the versioned hash-range shard map over this many shards (must match the servers' -shards); 0 keeps static -partitions routing")
		cores      = flag.Int("cores", 4, "server threads per replica")
		clientID   = flag.Uint64("id", uint64(os.Getpid()), "unique client id")
		op         = flag.String("op", "get", "operation: get|mget|put|incr|append|bench")
		key        = flag.String("key", "", "key (for mget: comma-separated keys)")
		value      = flag.String("value", "", "value (put)")
		duration   = flag.Duration("duration", 3*time.Second, "bench duration")
		benchKeys  = flag.Int("bench-keys", 1024, "bench keyspace (pre-load with meerkat-server -keys)")
		pipeline   = flag.Int("pipeline", 1, "bench: transactions kept in flight over one socket set (pipelined session workers)")
	)
	flag.Parse()

	// -shards selects shard-map routing: every process that agrees on the
	// shard count derives the same version-1 map (splits need a shared map
	// service, which multi-process deployments don't have yet), and servers
	// started with the same -shards enforce ownership, so a mismatched
	// client is redirected instead of silently misrouted.
	var sm *shardmap.Cache
	if *shards > 0 {
		*partitions = *shards
		sm = shardmap.NewCache(shardmap.NewSource(shardmap.New(*shards)))
	}

	t := topo.Topology{Partitions: *partitions, Replicas: *replicas, Cores: *cores}
	coresPerNode := *cores
	if coresPerNode < 2+*partitions {
		coresPerNode = 2 + *partitions
	}
	net := transport.NewUDP(*host, *port, coresPerNode)
	defer net.Close()

	ccfg := coordinator.Config{
		Topo:     t,
		ClientID: *clientID % (1 << 32), // keep the session worker-demux bits clear
		Net:      net,
		Clock:    clock.NewReal(),
		Timeout:  200 * time.Millisecond,
		ShardMap: sm,
	}
	// A pipelined bench multiplexes *pipeline workers over one socket set;
	// everything else drives a single stop-and-wait coordinator. Both paths
	// bind the same client address, so they are built mutually exclusively.
	var workers []*coordinator.Coordinator
	if *op == "bench" && *pipeline > 1 {
		sess, err := coordinator.NewSession(ccfg, *pipeline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer sess.Close()
		for i := 0; i < sess.Window(); i++ {
			workers = append(workers, sess.Worker(i))
		}
	} else {
		c, err := coordinator.New(ccfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer c.Close()
		workers = []*coordinator.Coordinator{c}
	}
	coord := workers[0]

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch *op {
	case "get":
		val, ver, ok, err := coord.Read(*key)
		if err != nil {
			fail(err)
		}
		if !ok {
			fmt.Printf("%s: (not found)\n", *key)
			return
		}
		fmt.Printf("%s = %q (version %v)\n", *key, val, ver)

	case "mget":
		keys := strings.Split(*key, ",")
		res, err := coord.ReadMany(keys)
		if err != nil {
			fail(err)
		}
		for i, k := range keys {
			if !res[i].OK {
				fmt.Printf("%s: (not found)\n", k)
				continue
			}
			fmt.Printf("%s = %q (version %v)\n", k, res[i].Value, res[i].WTS)
		}

	case "put":
		txn := coord.Begin()
		txn.Write(*key, []byte(*value))
		committed, err := txn.Commit()
		if err != nil {
			fail(err)
		}
		fmt.Printf("put %s: committed=%v\n", *key, committed)

	case "incr":
		// Server-side increment: the transaction ships Add(key, delta)
		// instead of read + write-back, so concurrent increments merge at
		// the replicas rather than aborting each other. -value overrides
		// the delta (default 1). The commit carries no read set, so the
		// Run loop's retry path is only for lost messages, never for
		// contention.
		delta := int64(1)
		if *value != "" {
			d, err := strconv.ParseInt(*value, 10, 64)
			if err != nil {
				fail(fmt.Errorf("incr: -value must be a decimal delta: %w", err))
			}
			delta = d
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := coord.Run(ctx, func(txn *coordinator.Txn) error {
			txn.Add(*key, delta)
			return nil
		}); err != nil {
			fail(fmt.Errorf("incr: %w", err))
		}
		// Report the merged value with a follow-up read (other clients may
		// merge concurrently, so this is a floor, not the exact result).
		if cur, _, ok, err := coord.Read(*key); err == nil && ok {
			fmt.Printf("%s = %s\n", *key, cur)
		} else {
			fmt.Printf("%s += %d: committed\n", *key, delta)
		}

	case "append":
		// Server-side append: ships the bytes as a commutative op, merged
		// into the value in commit-timestamp order.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := coord.Run(ctx, func(txn *coordinator.Txn) error {
			txn.Append(*key, []byte(*value))
			return nil
		}); err != nil {
			fail(fmt.Errorf("append: %w", err))
		}
		if cur, _, ok, err := coord.Read(*key); err == nil && ok {
			fmt.Printf("%s = %q\n", *key, cur)
		} else {
			fmt.Printf("append %s: committed\n", *key)
		}

	case "bench":
		// One goroutine per pipelined worker; with -pipeline 1 this is the
		// original single closed loop. All workers share the socket set, so
		// their concurrent round trips batch into shared sendmmsg calls.
		val := workload.Value(64)
		var committed, aborted atomic.Uint64
		deadline := time.Now().Add(*duration)
		var wg sync.WaitGroup
		for i, w := range workers {
			wg.Add(1)
			go func(i int, w *coordinator.Coordinator) {
				defer wg.Done()
				gen := workload.NewYCSBT(workload.NewUniform(*benchKeys))
				rng := newRng(*clientID + uint64(i)*0x9e3779b9)
				for time.Now().Before(deadline) {
					spec := gen.Next(rng)
					txn := w.Begin()
					bad := false
					for _, k := range spec.RMWs {
						if _, err := txn.Read(k); err != nil {
							bad = true
							break
						}
						txn.Write(k, val)
					}
					if bad {
						continue
					}
					ok, err := txn.Commit()
					switch {
					case err != nil:
					case ok:
						committed.Add(1)
					default:
						aborted.Add(1)
					}
				}
			}(i, w)
		}
		wg.Wait()
		secs := duration.Seconds()
		c, a := committed.Load(), aborted.Load()
		fmt.Printf("committed %d (%.0f txns/sec), aborted %d (%.1f%%), pipeline %d\n",
			c, float64(c)/secs, a, 100*float64(a)/float64(c+a+1), len(workers))

	default:
		fail(fmt.Errorf("unknown op %q", *op))
	}
}

// newRng seeds per-client randomness from the client id.
func newRng(id uint64) *rand.Rand { return rand.New(rand.NewSource(int64(id) + 1)) }
